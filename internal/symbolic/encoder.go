package symbolic

import (
	"fmt"

	"symmeter/internal/timeseries"
)

// Encoder is the online conversion pipeline of §2: it consumes raw
// measurements one at a time, applies time-aligned vertical segmentation
// (averaging within fixed windows of Window seconds) and horizontal
// segmentation with a fixed lookup table, and emits symbols as windows
// complete. It never looks at future data.
//
// The lookup table must be learned from historical data before streaming
// starts ("the first horizontal segmentation has to be performed before the
// system can start to process any data", §2.2); see TableBuilder.
type Encoder struct {
	table  *Table
	window int64

	// Current window state.
	winStart int64
	sum      float64
	count    int
	started  bool
}

// NewEncoder returns an online encoder emitting one symbol per `window`
// seconds of input. window <= 0 disables vertical segmentation (one symbol
// per measurement).
func NewEncoder(table *Table, window int64) *Encoder {
	if table == nil {
		panic("symbolic: NewEncoder needs a table")
	}
	return &Encoder{table: table, window: window}
}

// Table returns the lookup table, which a sensor would transmit to the
// aggregation server before sending symbolic data.
func (e *Encoder) Table() *Table { return e.table }

// Window returns the vertical aggregation window in seconds.
func (e *Encoder) Window() int64 { return e.window }

// Push feeds one measurement. If it completes a vertical window, the
// window's symbol is returned with ok=true. Measurements must arrive in
// timestamp order; out-of-order points return an error.
func (e *Encoder) Push(p timeseries.Point) (out SymbolPoint, ok bool, err error) {
	out, _, ok, err = e.PushWithValue(p)
	return out, ok, err
}

// PushWithValue is Push, additionally returning the completed window's
// average value — the quantity a sensor still has in hand before it is
// quantised away (the adaptive relearning path needs it).
func (e *Encoder) PushWithValue(p timeseries.Point) (out SymbolPoint, avg float64, ok bool, err error) {
	if e.window <= 0 {
		return SymbolPoint{T: p.T, S: e.table.Encode(p.V)}, p.V, true, nil
	}
	ws := p.T - mod64(p.T, e.window)
	if !e.started {
		e.winStart = ws
		e.started = true
	}
	if ws < e.winStart {
		return SymbolPoint{}, 0, false, fmt.Errorf("symbolic: out-of-order point at t=%d (window starts %d)", p.T, e.winStart)
	}
	if ws > e.winStart {
		out, avg, ok = e.emit()
		e.winStart = ws
	}
	e.sum += p.V
	e.count++
	return out, avg, ok, nil
}

// Flush emits the symbol for the current partial window, if any. Call at
// end of stream.
func (e *Encoder) Flush() (SymbolPoint, bool) {
	out, _, ok := e.FlushWithValue()
	return out, ok
}

// FlushWithValue is Flush, additionally returning the partial window's
// average value — the same quantity PushWithValue exposes for completed
// windows.
func (e *Encoder) FlushWithValue() (SymbolPoint, float64, bool) {
	out, avg, ok := e.emit()
	e.started = false
	return out, avg, ok
}

// emit finalises the current window into a symbol and its average.
func (e *Encoder) emit() (SymbolPoint, float64, bool) {
	if e.count == 0 {
		return SymbolPoint{}, 0, false
	}
	avg := e.sum / float64(e.count)
	sp := SymbolPoint{T: e.winStart + e.window, S: e.table.Encode(avg)}
	e.sum, e.count = 0, 0
	return sp, avg, true
}

// EncodeSeries runs the whole online pipeline over a series and collects the
// symbolic output. It is equivalent to Horizontal(s.Resample(window), table)
// up to window alignment (Resample aligns windows to the series start; the
// Encoder aligns to absolute multiples of window, which is what the
// experiment pipeline wants for 15-minute/1-hour boundaries).
func EncodeSeries(s *timeseries.Series, table *Table, window int64) (*SymbolSeries, error) {
	e := NewEncoder(table, window)
	out := &SymbolSeries{Name: s.Name, Table: table}
	if n := len(s.Points); n > 0 {
		// Pre-size the output from the series' time span: one symbol per
		// window plus the trailing flush, so appends below never reallocate.
		// The encoder can emit at most n+1 symbols regardless of span, so
		// clamp the estimate — a sparse series must not over-allocate, and a
		// negative span (out-of-order input, surfaced as an error by Push
		// below) must not panic makeslice.
		want := n + 1
		if window > 0 {
			if est := (s.Points[n-1].T-s.Points[0].T)/window + 2; est >= 0 && est < int64(want) {
				want = int(est)
			}
		}
		out.Points = make([]SymbolPoint, 0, want)
	}
	for _, p := range s.Points {
		sp, ok, err := e.Push(p)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Points = append(out.Points, sp)
		}
	}
	if sp, ok := e.Flush(); ok {
		out.Points = append(out.Points, sp)
	}
	return out, nil
}

func mod64(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// TableBuilder accumulates historical measurements and learns a lookup
// table from them — the paper's bootstrap phase where "historical data"
// (the first two days per house) determines the separators.
type TableBuilder struct {
	values []float64
}

// Push records one historical measurement value.
func (b *TableBuilder) Push(v float64) { b.values = append(b.values, v) }

// PushSeries records all values of a series.
func (b *TableBuilder) PushSeries(s *timeseries.Series) {
	for _, p := range s.Points {
		b.values = append(b.values, p.V)
	}
}

// Count returns how many values were recorded.
func (b *TableBuilder) Count() int { return len(b.values) }

// Build learns the lookup table. The builder can keep accumulating and
// build again later (e.g. periodic table refresh when the distribution
// drifts, §2.2).
func (b *TableBuilder) Build(method Method, k int) (*Table, error) {
	return Learn(method, b.values, k)
}
