package symbolic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	syms := []Symbol{
		NewSymbol(0, 4), NewSymbol(15, 4), NewSymbol(7, 4), NewSymbol(8, 4), NewSymbol(1, 4),
	}
	data, err := Pack(syms)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatalf("round trip = %v, want %v", got, syms)
	}
}

func TestPackEmptyAndErrors(t *testing.T) {
	data, err := Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
	if _, err := Pack([]Symbol{NewSymbol(0, 2), NewSymbol(0, 3)}); err == nil {
		t.Fatal("mixed levels must error")
	}
	if _, err := Pack([]Symbol{{}}); err == nil {
		t.Fatal("level-0 symbols must error")
	}
}

func TestUnpackErrors(t *testing.T) {
	if _, err := Unpack([]byte{1, 2}); err == nil {
		t.Fatal("short data")
	}
	if _, err := Unpack([]byte{'X', 4, 0, 0, 1, 0}); err == nil {
		t.Fatal("bad magic")
	}
	if _, err := Unpack([]byte{'S', 0, 0, 0, 1, 0}); err == nil {
		t.Fatal("bad level")
	}
	if _, err := Unpack([]byte{'S', 31, 0, 0, 1, 0, 0, 0, 0}); err == nil {
		t.Fatal("level > MaxLevel")
	}
	if _, err := Unpack([]byte{'S', 8, 0, 0, 10, 1}); err == nil {
		t.Fatal("truncated payload")
	}
}

func TestPackedSizeArithmetic(t *testing.T) {
	// §2.3: 96 symbols (one day at 15 min) × 4 bits = 384 bits = 48 bytes.
	if got := PackedSize(96, 4); got != 5+48 {
		t.Fatalf("PackedSize(96,4) = %d, want 53", got)
	}
	if got := RawSize(86400); got != 691200 {
		t.Fatalf("RawSize(86400) = %d", got)
	}
}

func TestPackDensity(t *testing.T) {
	// 1000 level-4 symbols should take 5 + 500 bytes exactly.
	syms := make([]Symbol, 1000)
	for i := range syms {
		syms[i] = NewSymbol(i%16, 4)
	}
	data, err := Pack(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 505 {
		t.Fatalf("packed size = %d, want 505", len(data))
	}
}

// Property: Pack/Unpack round-trips arbitrary fixed-level sequences.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(seed int64, lvl uint8, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		level := int(lvl%10) + 1
		count := int(n % 2000)
		syms := make([]Symbol, count)
		for i := range syms {
			syms[i] = NewSymbol(rng.Intn(1<<uint(level)), level)
		}
		data, err := Pack(syms)
		if err != nil {
			return false
		}
		got, err := Unpack(data)
		if err != nil || len(got) != count {
			return false
		}
		for i := range got {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionPaperNumbers(t *testing.T) {
	// §2.3: 1 Hz doubles ≈ 680 kB/day; 16 symbols at 15 min = 384 bit;
	// "three orders of magnitude lower".
	st, err := Compression(1, 900, 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.RawBytes != 691200 {
		t.Fatalf("RawBytes = %d", st.RawBytes)
	}
	if st.Symbols != 96 || st.SymbolBits != 384 {
		t.Fatalf("Symbols=%d SymbolBits=%d, want 96/384", st.Symbols, st.SymbolBits)
	}
	if st.Ratio < 1e3 || st.Ratio > 1e5 {
		t.Fatalf("Ratio = %v, want ~1.4e4 (three orders of magnitude)", st.Ratio)
	}
}

func TestCompressionErrors(t *testing.T) {
	if _, err := Compression(0, 900, 16); err == nil {
		t.Fatal("zero sample period")
	}
	if _, err := Compression(1, 0, 16); err == nil {
		t.Fatal("zero window")
	}
	if _, err := Compression(1, 900, 3); err == nil {
		t.Fatal("non-power-of-two k")
	}
}

func TestMarshalTableRoundTrip(t *testing.T) {
	vals := []float64{5, 100, 230, 1000, 2400, 7, 90}
	tab, err := Learn(MethodDistinctMedian, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := MarshalTable(tab)
	got, err := UnmarshalTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != tab.K() || got.Method() != tab.Method() {
		t.Fatalf("k/method mismatch: %v vs %v", got, tab)
	}
	if !reflect.DeepEqual(got.Separators(), tab.Separators()) {
		t.Fatalf("separators: %v vs %v", got.Separators(), tab.Separators())
	}
	gmin, gmax := got.Range()
	tmin, tmax := tab.Range()
	if gmin != tmin || gmax != tmax {
		t.Fatal("range mismatch")
	}
	// Representatives survive, including NaN bins.
	for _, s := range []int{0, 1, 2, 3} {
		sym := NewSymbol(s, 2)
		a, _ := tab.Value(sym)
		b, _ := got.Value(sym)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("representative mismatch for %v: %v vs %v", sym, a, b)
		}
	}
}

func TestUnmarshalTableErrors(t *testing.T) {
	if _, err := UnmarshalTable(nil); err == nil {
		t.Fatal("nil data")
	}
	if _, err := UnmarshalTable([]byte{'X', 1, 0}); err == nil {
		t.Fatal("bad magic")
	}
	if _, err := UnmarshalTable([]byte{'T', 2, 0, 1, 2, 3}); err == nil {
		t.Fatal("truncated")
	}
}

func TestTableWireSizeMatchesMarshal(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, k := range []int{2, 4, 8, 16} {
		tab, err := Learn(MethodMedian, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(MarshalTable(tab)), TableWireSize(k); got != want {
			t.Fatalf("k=%d: frame %d bytes, TableWireSize says %d", k, got, want)
		}
	}
}
