//go:build noasm || (!amd64 && !arm64)

package symbolic

// Scalar-only builds: the noasm tag, or an architecture without an assembly
// tier. The use* booleans stay false forever, so these stubs are never
// reached — they exist only to satisfy the hook sites' references.

func histL4Native([]byte, *uint64)    { panic("symbolic: histL4Native in scalar-only build") }
func unpackL4Native([]byte, []Symbol) { panic("symbolic: unpackL4Native in scalar-only build") }
func packL4Native([]Symbol, []byte) bool {
	panic("symbolic: packL4Native in scalar-only build")
}
