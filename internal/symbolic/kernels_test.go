package symbolic

import (
	"math"
	"math/rand"
	"testing"
)

// packPayload packs n random symbols at the given level and returns both the
// headerless payload and the symbol indices.
func packPayload(t testing.TB, rng *rand.Rand, n, level int) ([]byte, []uint32) {
	t.Helper()
	payload := make([]byte, (n*level+7)/8)
	idxs := make([]uint32, n)
	for i := range idxs {
		idxs[i] = uint32(rng.Intn(1 << uint(level)))
		PackSymbolAt(payload, level, i, idxs[i])
	}
	return payload, idxs
}

// TestPackSymbolAtMatchesCodec pins the block store's incremental packing to
// the codec's batch layout: packing one symbol at a time must produce the
// exact payload AppendPack would, for every level.
func TestPackSymbolAtMatchesCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for level := 1; level <= 12; level++ {
		for _, n := range []int{1, 2, 7, 8, 9, 96, 137} {
			syms := make([]Symbol, n)
			payload := make([]byte, (n*level+7)/8)
			for i := range syms {
				idx := rng.Intn(1 << uint(level))
				syms[i] = NewSymbol(idx, level)
				PackSymbolAt(payload, level, i, uint32(idx))
			}
			packed, err := Pack(syms)
			if err != nil {
				t.Fatal(err)
			}
			want := packed[5:] // strip codec header
			for i := range want {
				if payload[i] != want[i] {
					t.Fatalf("level %d n %d: payload[%d] = %#x, codec has %#x", level, n, i, payload[i], want[i])
				}
			}
			for i := range syms {
				if got := PackedSymbolAt(payload, level, i); got != uint32(syms[i].Index()) {
					t.Fatalf("level %d: PackedSymbolAt(%d) = %d, want %d", level, i, got, syms[i].Index())
				}
			}
		}
	}
}

// TestPackedRangeHistogramDifferential checks every level's histogram kernel
// against a naive per-symbol count over random ranges, including empty,
// single-symbol, unaligned and full ranges.
func TestPackedRangeHistogramDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, level := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12} {
		k := 1 << uint(level)
		const n = 531 // prime-ish, not word aligned
		payload, idxs := packPayload(t, rng, n, level)
		ranges := [][2]int{{0, 0}, {0, n}, {1, 2}, {0, 1}, {n - 1, n}, {3, 3}}
		for i := 0; i < 40; i++ {
			a, b := rng.Intn(n+1), rng.Intn(n+1)
			if a > b {
				a, b = b, a
			}
			ranges = append(ranges, [2]int{a, b})
		}
		for _, r := range ranges {
			start, end := r[0], r[1]
			hist := make([]uint64, k)
			PackedRangeHistogram(hist, payload, level, start, end)
			want := make([]uint64, k)
			for _, idx := range idxs[start:end] {
				want[idx]++
			}
			for s := range want {
				if hist[s] != want[s] {
					t.Fatalf("level %d range [%d,%d): hist[%d] = %d, want %d", level, start, end, s, hist[s], want[s])
				}
			}
		}
	}
}

// TestPackedRangeAggregateDifferential checks sum/min/max against a naive
// decode-then-aggregate loop.
func TestPackedRangeAggregateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, level := range []int{1, 2, 3, 4, 6, 8, 10} {
		k := 1 << uint(level)
		values := make([]float64, k)
		for i := range values {
			values[i] = rng.Float64()*1000 - 200
		}
		const n = 300
		payload, idxs := packPayload(t, rng, n, level)
		for i := 0; i < 30; i++ {
			a, b := rng.Intn(n), rng.Intn(n+1)
			if a >= b {
				b = a + 1
			}
			sum, minV, maxV := PackedRangeAggregate(values, payload, level, a, b)
			var wantSum float64
			wantMin, wantMax := math.Inf(1), math.Inf(-1)
			for _, idx := range idxs[a:b] {
				v := values[idx]
				wantSum += v
				wantMin = math.Min(wantMin, v)
				wantMax = math.Max(wantMax, v)
			}
			if minV != wantMin || maxV != wantMax {
				t.Fatalf("level %d [%d,%d): min/max = %v/%v, want %v/%v", level, a, b, minV, maxV, wantMin, wantMax)
			}
			if math.Abs(sum-wantSum) > 1e-9*(1+math.Abs(wantSum)) {
				t.Fatalf("level %d [%d,%d): sum = %v, want %v", level, a, b, sum, wantSum)
			}
		}
	}
}

// TestPackedRangeSumLUTDifferential checks the per-byte LUT sum kernel
// against the general aggregate walk on the byte-aligned levels.
func TestPackedRangeSumLUTDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, level := range []int{1, 2, 4} {
		k := 1 << uint(level)
		values := make([]float64, k)
		byteSums := make([]float64, 256)
		for i := range values {
			values[i] = float64(i*i) + 0.25
		}
		spb := 8 / level
		mask := 1<<uint(level) - 1
		for b := 0; b < 256; b++ {
			for j := 0; j < spb; j++ {
				byteSums[b] += values[b>>uint(8-(j+1)*level)&mask]
			}
		}
		const n = 413
		payload, idxs := packPayload(t, rng, n, level)
		for i := 0; i < 50; i++ {
			a, b := rng.Intn(n+1), rng.Intn(n+1)
			if a > b {
				a, b = b, a
			}
			got := PackedRangeSumLUT(byteSums, values, payload, level, a, b)
			var want float64
			for _, idx := range idxs[a:b] {
				want += values[idx]
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("level %d [%d,%d): LUT sum = %v, want %v", level, a, b, got, want)
			}
		}
	}
}

// TestAppendUnpackRange checks range unpacking against the recorded indices.
func TestAppendUnpackRange(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, level := range []int{1, 3, 4, 8, 11} {
		const n = 150
		payload, idxs := packPayload(t, rng, n, level)
		for _, r := range [][2]int{{0, n}, {0, 0}, {5, 6}, {17, 93}, {n - 1, n}} {
			got := AppendUnpackRange(nil, payload, level, r[0], r[1])
			if len(got) != r[1]-r[0] {
				t.Fatalf("level %d range %v: %d symbols, want %d", level, r, len(got), r[1]-r[0])
			}
			for i, s := range got {
				if uint32(s.Index()) != idxs[r[0]+i] || s.Level() != level {
					t.Fatalf("level %d range %v: symbol %d = %v, want index %d", level, r, i, s, idxs[r[0]+i])
				}
			}
		}
	}
}

// TestTableByteSums pins the per-table LUT to the reconstruction values and
// its absence at non-byte-aligned levels.
func TestTableByteSums(t *testing.T) {
	vals := make([]float64, 2048)
	rng := rand.New(rand.NewSource(23))
	for i := range vals {
		vals[i] = rng.Float64() * 500
	}
	for _, k := range []int{2, 4, 16} {
		table, err := Learn(MethodMedian, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		bs := table.ByteSums()
		if bs == nil {
			t.Fatalf("k=%d: no byte sums", k)
		}
		level := table.Level()
		spb := 8 / level
		values := table.ReconstructionValues()
		for _, b := range []int{0, 1, 0x5A, 0xFF} {
			var want float64
			for j := 0; j < spb; j++ {
				want += values[b>>uint(8-(j+1)*level)&(1<<uint(level)-1)]
			}
			if math.Abs(bs[b]-want) > 1e-12 {
				t.Fatalf("k=%d byteSums[%#x] = %v, want %v", k, b, bs[b], want)
			}
		}
	}
	t8, err := Learn(MethodMedian, vals, 8) // level 3: not byte aligned
	if err != nil {
		t.Fatal(err)
	}
	if t8.ByteSums() != nil {
		t.Fatal("level-3 table should have no byte-sum LUT")
	}
}

// TestKernelsZeroAlloc pins the LUT edge-block kernels to zero allocations —
// the query path's contract.
func TestKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	payload, _ := packPayload(t, rng, 512, 4)
	values := make([]float64, 16)
	byteSums := make([]float64, 256)
	var hist [16]uint64
	allocs := testing.AllocsPerRun(100, func() {
		PackedRangeHistogram(hist[:], payload, 4, 3, 509)
		PackedRangeSumLUT(byteSums, values, payload, 4, 3, 509)
		if s, _, _ := PackedRangeAggregate(values, payload, 4, 3, 509); s < 0 {
			t.Fatal("negative sum")
		}
	})
	if allocs != 0 {
		t.Fatalf("kernels allocate %.1f times per run, want 0", allocs)
	}
}
