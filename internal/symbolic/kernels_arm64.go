//go:build arm64 && !noasm

package symbolic

import "os"

// NEON kernel entry points (kernels_arm64.s). ASIMD is architecturally
// baseline on arm64, so unlike amd64 there is no feature probe — only the
// SYMMETER_NOASM escape hatch. The pack kernel stays scalar on arm64: its
// scalar fast path is already word-at-a-time, and the NEON surface is kept
// to the two kernels that dominate query and cold-read profiles.

// histPackedL4NEON adds the nibble-value counts of p[0:n] into hist[0..15].
// n must be a positive multiple of 16.
//
//go:noescape
func histPackedL4NEON(p *byte, n int, hist *uint64)

// unpackPackedL4NEON expands p[0:n] into 2n level-4 Symbols at dst. n must
// be a positive multiple of 8.
//
//go:noescape
func unpackPackedL4NEON(p *byte, n int, dst *Symbol)

func init() {
	// SYMMETER_NOASM is the runtime escape hatch mirroring the noasm build
	// tag: operators can force the portable scalar kernels without a rebuild.
	if os.Getenv("SYMMETER_NOASM") != "" {
		return
	}
	nativePath = "neon"
	enableNative = enableNEON
	enableNEON()
	activePath = "neon"
}

func enableNEON() {
	histL4Stride, unpackL4Stride, packL4Stride = 16, 8, 1
	useHistL4, useUnpackL4, usePackL4 = true, true, false
}

func histL4Native(bs []byte, hist *uint64)   { histPackedL4NEON(&bs[0], len(bs), hist) }
func unpackL4Native(bs []byte, dst []Symbol) { unpackPackedL4NEON(&bs[0], len(bs), &dst[0]) }

// packL4Native is never reached on arm64 (usePackL4 stays false: the scalar
// word-at-a-time pack path is kept; see the package comment above).
func packL4Native([]Symbol, []byte) bool { panic("symbolic: packL4Native without native pack path") }
