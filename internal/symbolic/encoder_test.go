package symbolic

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/timeseries"
)

func testTable(t *testing.T, k int) *Table {
	t.Helper()
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = float64(i * 10)
	}
	tab, err := Learn(MethodMedian, vals, k)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestEncoderEmitsPerWindow(t *testing.T) {
	tab := testTable(t, 4)
	e := NewEncoder(tab, 10)
	var got []SymbolPoint
	for i := int64(0); i < 25; i++ {
		sp, ok, err := e.Push(timeseries.Point{T: i, V: float64(i * 100)})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got = append(got, sp)
		}
	}
	if sp, ok := e.Flush(); ok {
		got = append(got, sp)
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d symbols, want 3", len(got))
	}
	// Window [0,10): mean 450; [10,20): mean 1450; [20,25): mean 2200.
	if got[0].T != 10 || got[1].T != 20 || got[2].T != 30 {
		t.Fatalf("timestamps = %v", got)
	}
	if got[0].S == got[2].S {
		t.Fatal("low and high windows should encode differently")
	}
}

func TestEncoderWindowAlignment(t *testing.T) {
	// Windows align to absolute multiples of the window length, so 15-minute
	// symbols land on quarter hours regardless of when the stream starts.
	tab := testTable(t, 4)
	e := NewEncoder(tab, 900)
	sp, ok, err := e.Push(timeseries.Point{T: 1000, V: 1})
	if err != nil || ok {
		t.Fatalf("first push should buffer: %v %v %v", sp, ok, err)
	}
	sp, ok, err = e.Push(timeseries.Point{T: 1800, V: 1})
	if err != nil || !ok {
		t.Fatalf("crossing window boundary should emit: %v", err)
	}
	if sp.T != 1800 { // window [900,1800) stamped with its end
		t.Fatalf("emitted timestamp = %d, want 1800", sp.T)
	}
}

func TestEncoderRejectsOutOfOrder(t *testing.T) {
	tab := testTable(t, 4)
	e := NewEncoder(tab, 10)
	if _, _, err := e.Push(timeseries.Point{T: 100, V: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Push(timeseries.Point{T: 50, V: 1}); err == nil {
		t.Fatal("out-of-order point must error")
	}
}

func TestEncoderNoWindow(t *testing.T) {
	tab := testTable(t, 4)
	e := NewEncoder(tab, 0)
	sp, ok, err := e.Push(timeseries.Point{T: 7, V: 500})
	if err != nil || !ok || sp.T != 7 {
		t.Fatalf("windowless push = %v,%v,%v", sp, ok, err)
	}
	if _, ok := e.Flush(); ok {
		t.Fatal("nothing to flush in windowless mode")
	}
}

func TestEncoderFlushResets(t *testing.T) {
	tab := testTable(t, 4)
	e := NewEncoder(tab, 10)
	if _, _, err := e.Push(timeseries.Point{T: 5, V: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Flush(); !ok {
		t.Fatal("flush should emit buffered window")
	}
	if _, ok := e.Flush(); ok {
		t.Fatal("second flush should be empty")
	}
	// After flush, earlier timestamps are accepted again (new stream).
	if _, _, err := e.Push(timeseries.Point{T: 0, V: 1}); err != nil {
		t.Fatalf("restart after flush: %v", err)
	}
}

func TestNewEncoderNilTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEncoder(nil, 10)
}

func TestEncodeSeriesMatchesManualPipeline(t *testing.T) {
	// EncodeSeries over a gapless aligned series equals Resample+Horizontal.
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 3600)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	s := timeseries.FromValues("x", 0, 1, vals)
	tab, err := Learn(MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	online, err := EncodeSeries(s, tab, 900)
	if err != nil {
		t.Fatal(err)
	}
	batch := Horizontal(s.Resample(900), tab)
	if online.Len() != batch.Len() {
		t.Fatalf("lengths: online %d, batch %d", online.Len(), batch.Len())
	}
	for i := range online.Points {
		if online.Points[i] != batch.Points[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, online.Points[i], batch.Points[i])
		}
	}
}

func TestEncodeSeriesHandlesGaps(t *testing.T) {
	// A gap larger than the window: the empty window emits nothing.
	pts := []timeseries.Point{
		{T: 0, V: 100}, {T: 1, V: 100},
		{T: 35, V: 900}, // windows [10,20) and [20,30) are empty
	}
	s := timeseries.MustNew("g", pts)
	tab := testTable(t, 4)
	ss, err := EncodeSeries(s, tab, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (gap windows skipped)", ss.Len())
	}
	if ss.Points[0].T != 10 || ss.Points[1].T != 40 {
		t.Fatalf("timestamps = %v", ss.Points)
	}
}

func TestTableBuilder(t *testing.T) {
	var b TableBuilder
	if _, err := b.Build(MethodMedian, 4); err == nil {
		t.Fatal("empty builder must not build")
	}
	s := timeseries.FromValues("h", 0, 1, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	b.PushSeries(s)
	b.Push(100)
	if b.Count() != 9 {
		t.Fatalf("Count = %d", b.Count())
	}
	tab, err := b.Build(MethodMedian, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.K() != 4 {
		t.Fatalf("k = %d", tab.K())
	}
	// Builder keeps accumulating for periodic refresh.
	b.Push(200)
	tab2, err := b.Build(MethodMedian, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Separators()[2] <= tab.Separators()[2] {
		t.Fatal("refreshed table should reflect the new high value")
	}
}

func TestOnlineEqualsOfflineOnDataset(t *testing.T) {
	// End-to-end invariant used by the experiments: learning on two days
	// then streaming the rest equals batch encoding of the rest.
	rng := rand.New(rand.NewSource(31))
	n := 4 * 86400 / 60 // four days at one-minute samples
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64() + 5)
	}
	s := timeseries.FromValues("h", 0, 60, vals)
	twoDays := s.Slice(0, 2*86400)
	rest := s.Slice(2*86400, math.MaxInt64)

	var b TableBuilder
	b.PushSeries(twoDays)
	tab, err := b.Build(MethodDistinctMedian, 16)
	if err != nil {
		t.Fatal(err)
	}
	online, err := EncodeSeries(rest, tab, 3600)
	if err != nil {
		t.Fatal(err)
	}
	batch := Horizontal(rest.Resample(3600), tab)
	if online.Len() != batch.Len() {
		t.Fatalf("lengths differ: %d vs %d", online.Len(), batch.Len())
	}
	for i := range online.Points {
		if online.Points[i].S != batch.Points[i].S {
			t.Fatalf("symbol mismatch at %d", i)
		}
	}
}

// TestEncodeSeriesPresizeClamp guards the output pre-sizing against
// pathological inputs: out-of-order points must surface the encoder's error
// (not a makeslice panic from a negative span), and a sparse series must
// not allocate capacity proportional to its time span.
func TestEncodeSeriesPresizeClamp(t *testing.T) {
	table, err := NewTable(2, []float64{5}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	outOfOrder := &timeseries.Series{Name: "x", Points: []timeseries.Point{{T: 100000, V: 1}, {T: 10, V: 2}}}
	if _, err := EncodeSeries(outOfOrder, table, 900); err == nil {
		t.Fatal("out-of-order series must error")
	}
	sparse := &timeseries.Series{Name: "y", Points: []timeseries.Point{{T: 0, V: 1}, {T: 1 << 40, V: 2}}}
	ss, err := EncodeSeries(sparse, table, 900)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Points) != 2 {
		t.Fatalf("sparse series encoded %d symbols, want 2", len(ss.Points))
	}
	if c := cap(ss.Points); c > 3 {
		t.Fatalf("sparse series allocated capacity %d, want ≤ 3 (n+1 clamp)", c)
	}
}
