package symbolic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// restoreKernelPath registers cleanup back to the currently active dispatch
// path. Tests in this package never run in parallel, so flipping the
// package-global dispatch is race-free.
func restoreKernelPath(t testing.TB) {
	t.Helper()
	prev := KernelPath()
	t.Cleanup(func() {
		if err := SetKernelPath(prev); err != nil {
			t.Fatal(err)
		}
	})
}

func mustSetKernelPath(t testing.TB, path string) {
	t.Helper()
	if err := SetKernelPath(path); err != nil {
		t.Fatal(err)
	}
}

// TestKernelPathControls pins the dispatch control surface: scalar first in
// KernelPaths, round-tripping through SetKernelPath, and a typed error for
// unknown paths.
func TestKernelPathControls(t *testing.T) {
	paths := KernelPaths()
	if len(paths) == 0 || paths[0] != "scalar" {
		t.Fatalf("KernelPaths() = %v, want scalar first", paths)
	}
	active := KernelPath()
	found := false
	for _, p := range paths {
		if p == active {
			found = true
		}
	}
	if !found {
		t.Fatalf("active path %q not among supported %v", active, paths)
	}
	if err := SetKernelPath("mmx"); err == nil {
		t.Fatal("SetKernelPath accepted a bogus path")
	}
	restoreKernelPath(t)
	for _, p := range paths {
		if err := SetKernelPath(p); err != nil {
			t.Fatalf("SetKernelPath(%q): %v", p, err)
		}
		if got := KernelPath(); got != p {
			t.Fatalf("KernelPath() = %q after SetKernelPath(%q)", got, p)
		}
	}
}

// edgeOffsets returns a boundary-straddling set of positions for a stream of
// n level-bit symbols: around sampled byte, 32-bit-word and 64-bit-word
// boundaries of the payload (leading, middle and trailing multiples), in
// symbol units, plus the extremes.
func edgeOffsets(n, level int) []int {
	set := map[int]bool{0: true, 1: true, n - 1: true, n: true}
	for _, bits := range []int{8, 32, 64} {
		last := n * level / bits
		for _, mult := range []int{1, 2, 3, last / 2, last - 1, last} {
			if mult < 1 {
				continue
			}
			// Symbol positions whose bit offset straddles the boundary.
			p := mult * bits / level
			for _, q := range []int{p - 1, p, p + 1} {
				if q >= 0 && q <= n {
					set[q] = true
				}
			}
		}
	}
	offs := make([]int, 0, len(set))
	for p := range set {
		offs = append(offs, p)
	}
	return offs
}

// TestPackedRangeKernelsEdgeMatrix runs every PackedRange* kernel at every
// level 1–30 over ranges whose ends straddle byte and word boundaries,
// including empty ranges, against naive per-symbol oracles. Above level 12
// symbol indices are confined to the low 4096 so the oracle tables stay
// allocatable; the kernels only ever touch bins/values for indices that are
// actually present.
func TestPackedRangeKernelsEdgeMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for level := 1; level <= MaxLevel; level++ {
		maxIdx := 1 << uint(level)
		if maxIdx > 1<<12 {
			maxIdx = 1 << 12
		}
		n := 400 + 3*level // not aligned to anything
		payload := make([]byte, (n*level+7)/8)
		idxs := make([]uint32, n)
		for i := range idxs {
			idxs[i] = uint32(rng.Intn(maxIdx))
			PackSymbolAt(payload, level, i, idxs[i])
		}
		values := make([]float64, maxIdx)
		for i := range values {
			values[i] = rng.Float64()*100 - 50
		}
		offs := edgeOffsets(n, level)
		hist := make([]uint64, maxIdx)
		want := make([]uint64, maxIdx)
		for _, start := range offs {
			for _, end := range offs {
				if start > end {
					continue
				}
				clear(hist)
				PackedRangeHistogram(hist, payload, level, start, end)
				clear(want)
				for _, idx := range idxs[start:end] {
					want[idx]++
				}
				for s := range want {
					if hist[s] != want[s] {
						t.Fatalf("level %d [%d,%d): hist[%d] = %d, want %d", level, start, end, s, hist[s], want[s])
					}
				}
				if start >= end {
					continue // PackedRangeAggregate requires a non-empty range
				}
				sum, minV, maxV := PackedRangeAggregate(values, payload, level, start, end)
				var wantSum float64
				wantMin, wantMax := math.Inf(1), math.Inf(-1)
				for _, idx := range idxs[start:end] {
					v := values[idx]
					wantSum += v
					wantMin = math.Min(wantMin, v)
					wantMax = math.Max(wantMax, v)
				}
				if minV != wantMin || maxV != wantMax {
					t.Fatalf("level %d [%d,%d): min/max = %v/%v, want %v/%v", level, start, end, minV, maxV, wantMin, wantMax)
				}
				if math.Abs(sum-wantSum) > 1e-9*(1+math.Abs(wantSum)) {
					t.Fatalf("level %d [%d,%d): sum = %v, want %v", level, start, end, sum, wantSum)
				}
			}
		}
	}
}

// TestKernelsSIMDvsScalarDeterministic drives the native dispatch path
// against the scalar oracle on sizes crossing every stride and accumulator
// flush boundary, requiring bit-exact histograms and identical codec bytes.
// Skipped (vacuously passing) on scalar-only builds.
func TestKernelsSIMDvsScalarDeterministic(t *testing.T) {
	paths := KernelPaths()
	if len(paths) < 2 {
		t.Skip("no native kernel path on this build/CPU")
	}
	native := paths[1]
	restoreKernelPath(t)
	rng := rand.New(rand.NewSource(37))
	// Byte sizes around the asm strides (32 for AVX2 hist, 16/4/8 for the
	// others) and past the 120-chunk accumulator flush of the histogram
	// kernels (120·32 = 3840 bytes).
	sizes := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 256, 511, 512, 513, 3839, 3840, 3841, 4096, 8000}
	for _, nbytes := range sizes {
		payload := make([]byte, nbytes)
		rng.Read(payload)
		n := 2 * nbytes // level-4 symbols
		starts := []int{0, 1, 2, 3}
		for _, start := range starts {
			if start > n {
				continue
			}
			for _, end := range []int{n, n - 1, n - 3, start} {
				if end < start {
					continue
				}
				histScalar := make([]uint64, 16)
				histNative := make([]uint64, 16)
				mustSetKernelPath(t, "scalar")
				PackedRangeHistogram(histScalar, payload, 4, start, end)
				mustSetKernelPath(t, native)
				PackedRangeHistogram(histNative, payload, 4, start, end)
				for s := range histScalar {
					if histScalar[s] != histNative[s] {
						t.Fatalf("n=%d [%d,%d): hist[%d] scalar %d != %s %d", nbytes, start, end, s, histScalar[s], native, histNative[s])
					}
				}
			}
		}
		// Codec round trip: pack under each path must produce identical bytes,
		// unpack identical symbols.
		syms := make([]Symbol, n)
		for i := range syms {
			syms[i] = NewSymbol(int(payload[i/2]>>(4*(1-uint(i)%2)))&0xF, 4)
		}
		mustSetKernelPath(t, "scalar")
		packedScalar, err := Pack(syms)
		if err != nil {
			t.Fatal(err)
		}
		unpackedScalar, err := Unpack(packedScalar)
		if err != nil {
			t.Fatal(err)
		}
		mustSetKernelPath(t, native)
		packedNative, err := Pack(syms)
		if err != nil {
			t.Fatal(err)
		}
		unpackedNative, err := Unpack(packedNative)
		if err != nil {
			t.Fatal(err)
		}
		if string(packedScalar) != string(packedNative) {
			t.Fatalf("n=%d: packed bytes differ between scalar and %s", n, native)
		}
		for i := range unpackedScalar {
			if unpackedScalar[i] != unpackedNative[i] {
				t.Fatalf("n=%d: unpacked symbol %d differs: %v vs %v", n, i, unpackedScalar[i], unpackedNative[i])
			}
		}
	}
}

// TestPackNativeMixedLevelError pins the native pack path's error contract:
// a level mismatch anywhere — including deep inside an asm-handled prefix —
// must produce the same positioned error as the scalar walk and leave dst's
// original bytes intact.
func TestPackNativeMixedLevelError(t *testing.T) {
	restoreKernelPath(t)
	for _, path := range KernelPaths() {
		mustSetKernelPath(t, path)
		// bad=0 would change the whole sequence's level (the first symbol
		// defines it), so start at 1.
		for _, bad := range []int{1, 15, 16, 17, 40, 63} {
			syms := make([]Symbol, 64)
			for i := range syms {
				syms[i] = NewSymbol(i%16, 4)
			}
			syms[bad] = NewSymbol(1, 5)
			dst := []byte{0xAA, 0xBB}
			got, err := AppendPack(dst, syms)
			if err == nil {
				t.Fatalf("path %s bad=%d: no error for mixed levels", path, bad)
			}
			want := fmt.Sprintf("symbol %d has level 5", bad)
			if !contains(err.Error(), want) {
				t.Fatalf("path %s bad=%d: error %q does not name the symbol (%q)", path, bad, err, want)
			}
			if len(got) != 2 || got[0] != 0xAA || got[1] != 0xBB {
				t.Fatalf("path %s bad=%d: dst not restored: %v", path, bad, got)
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestKernelsZeroAllocNative re-pins the zero-allocation contract on the
// native dispatch path (TestKernelsZeroAlloc covers whatever path is active
// by default; this one forces each available path in turn).
func TestKernelsZeroAllocNative(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	payload := make([]byte, 512)
	rng.Read(payload)
	values := make([]float64, 16)
	spans := []PackedSpan{{Payload: payload, Start: 3, End: 509}, {Payload: payload, Start: 0, End: 1024}}
	var hist [16]uint64
	restoreKernelPath(t)
	for _, path := range KernelPaths() {
		mustSetKernelPath(t, path)
		allocs := testing.AllocsPerRun(100, func() {
			PackedRangeHistogram(hist[:], payload, 4, 3, 1021)
			PackedRangeHistogramBatch(hist[:], 4, spans)
			if c, _, _, _ := HistogramAggregate(hist[:], values); c == 0 {
				t.Fatal("empty aggregate")
			}
		})
		if allocs != 0 {
			t.Fatalf("path %s: kernels allocate %.1f times per run, want 0", path, allocs)
		}
	}
}
