package symbolic

import (
	"fmt"
	"sort"
)

// Motif and discord discovery over symbol sequences — the analytics the SAX
// line of work (which the paper positions itself against) is best known
// for, ported to symmeter's data-driven alphabet. Because symbols are plain
// nominal strings, subsequences can be grouped by exact word match (motifs)
// and ranked by nearest-neighbour distance (discords) without touching raw
// values — one more instance of the paper's claim that algorithms "which
// usually work on nominal and string" apply directly.

// Motif is a repeated symbol word and where it occurs.
type Motif struct {
	// Word is the symbol subsequence, as its binary-string form.
	Word string
	// Positions are the starting indices of each occurrence.
	Positions []int
}

// Count returns the number of occurrences.
func (m Motif) Count() int { return len(m.Positions) }

// FindMotifs returns the most frequent length-w symbol words in the series,
// most frequent first (ties broken lexicographically); words occurring only
// once are omitted. Overlapping occurrences of the same word are counted
// once per starting position but trivial self-overlaps (next position
// inside the previous occurrence) are skipped, the standard convention.
func FindMotifs(ss *SymbolSeries, w int, top int) ([]Motif, error) {
	if w <= 0 || w > ss.Len() {
		return nil, fmt.Errorf("symbolic: motif length %d out of range [1,%d]", w, ss.Len())
	}
	if top <= 0 {
		top = 3
	}
	strs := ss.Strings()
	occurrences := make(map[string][]int)
	lastAt := make(map[string]int)
	for i := 0; i+w <= len(strs); i++ {
		key := joinWord(strs[i : i+w])
		if prev, seen := lastAt[key]; seen && i < prev+w {
			continue // trivial overlap
		}
		occurrences[key] = append(occurrences[key], i)
		lastAt[key] = i
	}
	motifs := make([]Motif, 0, len(occurrences))
	for word, pos := range occurrences {
		if len(pos) < 2 {
			continue
		}
		motifs = append(motifs, Motif{Word: word, Positions: pos})
	}
	sort.Slice(motifs, func(i, j int) bool {
		if len(motifs[i].Positions) != len(motifs[j].Positions) {
			return len(motifs[i].Positions) > len(motifs[j].Positions)
		}
		return motifs[i].Word < motifs[j].Word
	})
	if len(motifs) > top {
		motifs = motifs[:top]
	}
	return motifs, nil
}

func joinWord(parts []string) string {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	buf := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, p...)
	}
	return string(buf)
}

// Discord is the subsequence most distant from its nearest non-overlapping
// neighbour — the series' strongest anomaly (HOT SAX semantics).
type Discord struct {
	// Position is the starting index of the discord subsequence.
	Position int
	// Distance is the ValueDistance to its nearest non-overlapping
	// neighbour.
	Distance float64
}

// FindDiscord scans all length-w subsequences with the brute-force
// nearest-neighbour search and returns the one whose nearest
// non-overlapping neighbour is farthest (by the table's value-gap
// distance). O(n²·w); fine at day-vector scales (n ≤ a few thousand).
func FindDiscord(ss *SymbolSeries, w int) (Discord, error) {
	n := ss.Len()
	if w <= 0 || n < 2*w {
		return Discord{}, fmt.Errorf("symbolic: need at least 2w=%d symbols, have %d", 2*w, n)
	}
	syms := ss.Symbols()
	best := Discord{Position: -1, Distance: -1}
	for i := 0; i+w <= n; i++ {
		nearest := -1.0
		for j := 0; j+w <= n; j++ {
			if abs(i-j) < w {
				continue // overlapping subsequences are not neighbours
			}
			d, err := ValueDistance(ss.Table, syms[i:i+w], syms[j:j+w])
			if err != nil {
				return Discord{}, err
			}
			if nearest < 0 || d < nearest {
				nearest = d
				if nearest == 0 {
					break // cannot be a discord; early abandon
				}
			}
		}
		if nearest > best.Distance {
			best = Discord{Position: i, Distance: nearest}
		}
	}
	return best, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
