//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 kernels for the level-4 (k=16, the paper's headline alphabet) packed
// payload layout: two symbols per byte, first symbol in the high nibble.
// All three kernels are pure integer transforms — float aggregates are
// derived from their results in Go — so dispatch-path bit-exactness reduces
// to these producing the same integers as the scalar loops, which the
// differential fuzz enforces.

// nibbleEq is 16 rows of 32 identical bytes: row s is VPCMPEQB's memory
// operand when counting symbol value s.
DATA nibbleEq<>+0x000(SB)/8, $0x0000000000000000
DATA nibbleEq<>+0x008(SB)/8, $0x0000000000000000
DATA nibbleEq<>+0x010(SB)/8, $0x0000000000000000
DATA nibbleEq<>+0x018(SB)/8, $0x0000000000000000
DATA nibbleEq<>+0x020(SB)/8, $0x0101010101010101
DATA nibbleEq<>+0x028(SB)/8, $0x0101010101010101
DATA nibbleEq<>+0x030(SB)/8, $0x0101010101010101
DATA nibbleEq<>+0x038(SB)/8, $0x0101010101010101
DATA nibbleEq<>+0x040(SB)/8, $0x0202020202020202
DATA nibbleEq<>+0x048(SB)/8, $0x0202020202020202
DATA nibbleEq<>+0x050(SB)/8, $0x0202020202020202
DATA nibbleEq<>+0x058(SB)/8, $0x0202020202020202
DATA nibbleEq<>+0x060(SB)/8, $0x0303030303030303
DATA nibbleEq<>+0x068(SB)/8, $0x0303030303030303
DATA nibbleEq<>+0x070(SB)/8, $0x0303030303030303
DATA nibbleEq<>+0x078(SB)/8, $0x0303030303030303
DATA nibbleEq<>+0x080(SB)/8, $0x0404040404040404
DATA nibbleEq<>+0x088(SB)/8, $0x0404040404040404
DATA nibbleEq<>+0x090(SB)/8, $0x0404040404040404
DATA nibbleEq<>+0x098(SB)/8, $0x0404040404040404
DATA nibbleEq<>+0x0a0(SB)/8, $0x0505050505050505
DATA nibbleEq<>+0x0a8(SB)/8, $0x0505050505050505
DATA nibbleEq<>+0x0b0(SB)/8, $0x0505050505050505
DATA nibbleEq<>+0x0b8(SB)/8, $0x0505050505050505
DATA nibbleEq<>+0x0c0(SB)/8, $0x0606060606060606
DATA nibbleEq<>+0x0c8(SB)/8, $0x0606060606060606
DATA nibbleEq<>+0x0d0(SB)/8, $0x0606060606060606
DATA nibbleEq<>+0x0d8(SB)/8, $0x0606060606060606
DATA nibbleEq<>+0x0e0(SB)/8, $0x0707070707070707
DATA nibbleEq<>+0x0e8(SB)/8, $0x0707070707070707
DATA nibbleEq<>+0x0f0(SB)/8, $0x0707070707070707
DATA nibbleEq<>+0x0f8(SB)/8, $0x0707070707070707
DATA nibbleEq<>+0x100(SB)/8, $0x0808080808080808
DATA nibbleEq<>+0x108(SB)/8, $0x0808080808080808
DATA nibbleEq<>+0x110(SB)/8, $0x0808080808080808
DATA nibbleEq<>+0x118(SB)/8, $0x0808080808080808
DATA nibbleEq<>+0x120(SB)/8, $0x0909090909090909
DATA nibbleEq<>+0x128(SB)/8, $0x0909090909090909
DATA nibbleEq<>+0x130(SB)/8, $0x0909090909090909
DATA nibbleEq<>+0x138(SB)/8, $0x0909090909090909
DATA nibbleEq<>+0x140(SB)/8, $0x0a0a0a0a0a0a0a0a
DATA nibbleEq<>+0x148(SB)/8, $0x0a0a0a0a0a0a0a0a
DATA nibbleEq<>+0x150(SB)/8, $0x0a0a0a0a0a0a0a0a
DATA nibbleEq<>+0x158(SB)/8, $0x0a0a0a0a0a0a0a0a
DATA nibbleEq<>+0x160(SB)/8, $0x0b0b0b0b0b0b0b0b
DATA nibbleEq<>+0x168(SB)/8, $0x0b0b0b0b0b0b0b0b
DATA nibbleEq<>+0x170(SB)/8, $0x0b0b0b0b0b0b0b0b
DATA nibbleEq<>+0x178(SB)/8, $0x0b0b0b0b0b0b0b0b
DATA nibbleEq<>+0x180(SB)/8, $0x0c0c0c0c0c0c0c0c
DATA nibbleEq<>+0x188(SB)/8, $0x0c0c0c0c0c0c0c0c
DATA nibbleEq<>+0x190(SB)/8, $0x0c0c0c0c0c0c0c0c
DATA nibbleEq<>+0x198(SB)/8, $0x0c0c0c0c0c0c0c0c
DATA nibbleEq<>+0x1a0(SB)/8, $0x0d0d0d0d0d0d0d0d
DATA nibbleEq<>+0x1a8(SB)/8, $0x0d0d0d0d0d0d0d0d
DATA nibbleEq<>+0x1b0(SB)/8, $0x0d0d0d0d0d0d0d0d
DATA nibbleEq<>+0x1b8(SB)/8, $0x0d0d0d0d0d0d0d0d
DATA nibbleEq<>+0x1c0(SB)/8, $0x0e0e0e0e0e0e0e0e
DATA nibbleEq<>+0x1c8(SB)/8, $0x0e0e0e0e0e0e0e0e
DATA nibbleEq<>+0x1d0(SB)/8, $0x0e0e0e0e0e0e0e0e
DATA nibbleEq<>+0x1d8(SB)/8, $0x0e0e0e0e0e0e0e0e
DATA nibbleEq<>+0x1e0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleEq<>+0x1e8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleEq<>+0x1f0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleEq<>+0x1f8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleEq<>(SB), RODATA|NOPTR, $512

// loNibbleMask is 0x0F in every byte lane.
DATA loNibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA loNibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA loNibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA loNibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL loNibbleMask<>(SB), RODATA|NOPTR, $32

// level4Qword is the qword image of a level-4 Symbol with index 0:
// index:uint32(0) | level:uint8(4) at byte 4.
DATA level4Qword<>+0(SB)/8, $0x0000000400000000
GLOBL level4Qword<>(SB), RODATA|NOPTR, $8

// qwordLoNibble is 0x0F in every qword lane's low byte.
DATA qwordLoNibble<>+0(SB)/8, $0x000000000000000f
GLOBL qwordLoNibble<>(SB), RODATA|NOPTR, $8

// dword4 / dwordFF are VPCMPEQD/VPAND operands for the pack level check.
DATA dword4<>+0(SB)/4, $0x00000004
GLOBL dword4<>(SB), RODATA|NOPTR, $4
DATA dwordFF<>+0(SB)/4, $0x000000ff
GLOBL dwordFF<>(SB), RODATA|NOPTR, $4

// packMul16 weights even dwords (first symbol of each output byte) by 16.
DATA packMul16<>+0(SB)/8, $0x0000000100000010
DATA packMul16<>+8(SB)/8, $0x0000000100000010
DATA packMul16<>+16(SB)/8, $0x0000000100000010
DATA packMul16<>+24(SB)/8, $0x0000000100000010
GLOBL packMul16<>(SB), RODATA|NOPTR, $32

// packGather collects each dword's low byte into the lane's first 4 bytes.
DATA packGather<>+0(SB)/8, $0x808080800c080400
DATA packGather<>+8(SB)/8, $0x8080808080808080
DATA packGather<>+16(SB)/8, $0x808080800c080400
DATA packGather<>+24(SB)/8, $0x8080808080808080
GLOBL packGather<>(SB), RODATA|NOPTR, $32

// packPerm interleaves the two lanes' gathered dwords: out = [l0.d0, l1.d0].
DATA packPerm<>+0(SB)/8, $0x0000000400000000
DATA packPerm<>+8(SB)/8, $0x0000000000000000
DATA packPerm<>+16(SB)/8, $0x0000000000000000
DATA packPerm<>+24(SB)/8, $0x0000000000000000
GLOBL packPerm<>(SB), RODATA|NOPTR, $32

// func histPackedL4AVX2(p *byte, n int, hist *uint64)
//
// Adds the count of every nibble value of p[0:n] into hist[0..15]. Two
// passes over the data (symbols 0–7, then 8–15), each keeping 8 per-symbol
// byte-lane accumulators: per 32-byte chunk, VPCMPEQB against an in-memory
// broadcast of the symbol value turns matches into -1 byte lanes and VPSUBB
// accumulates them. Lanes are flushed through VPSADBW into the uint64 bins
// every 120 chunks (each chunk adds at most 2 per lane, so 120 stays clear
// of the 255 ceiling). n must be a positive multiple of 32.
TEXT ·histPackedL4AVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), R8
	MOVQ n+8(FP), R9
	MOVQ hist+16(FP), DI
	VMOVDQU loNibbleMask<>(SB), Y11
	LEAQ nibbleEq<>(SB), R10
	XORQ R12, R12 // pass: 0 counts symbols 0-7, 1 counts 8-15

pass:
	MOVQ R12, AX
	SHLQ $8, AX
	LEAQ (R10)(AX*1), DX // this pass's 8 rows of nibbleEq
	MOVQ R12, AX
	SHLQ $6, AX
	LEAQ (DI)(AX*1), R13 // this pass's 8 hist bins
	MOVQ R8, SI
	MOVQ R9, CX

group:
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	MOVQ CX, BX
	SHRQ $5, BX
	CMPQ BX, $120
	JBE  sized
	MOVQ $120, BX

sized:
	MOVQ BX, AX
	SHLQ $5, AX
	SUBQ AX, CX

chunk:
	VMOVDQU (SI), Y8
	VPSRLW $4, Y8, Y9
	VPAND Y11, Y8, Y8 // low nibbles (second symbol of each byte)
	VPAND Y11, Y9, Y9 // high nibbles (first symbol)
	VPCMPEQB (DX), Y8, Y10
	VPSUBB Y10, Y0, Y0
	VPCMPEQB (DX), Y9, Y10
	VPSUBB Y10, Y0, Y0
	VPCMPEQB 32(DX), Y8, Y10
	VPSUBB Y10, Y1, Y1
	VPCMPEQB 32(DX), Y9, Y10
	VPSUBB Y10, Y1, Y1
	VPCMPEQB 64(DX), Y8, Y10
	VPSUBB Y10, Y2, Y2
	VPCMPEQB 64(DX), Y9, Y10
	VPSUBB Y10, Y2, Y2
	VPCMPEQB 96(DX), Y8, Y10
	VPSUBB Y10, Y3, Y3
	VPCMPEQB 96(DX), Y9, Y10
	VPSUBB Y10, Y3, Y3
	VPCMPEQB 128(DX), Y8, Y10
	VPSUBB Y10, Y4, Y4
	VPCMPEQB 128(DX), Y9, Y10
	VPSUBB Y10, Y4, Y4
	VPCMPEQB 160(DX), Y8, Y10
	VPSUBB Y10, Y5, Y5
	VPCMPEQB 160(DX), Y9, Y10
	VPSUBB Y10, Y5, Y5
	VPCMPEQB 192(DX), Y8, Y10
	VPSUBB Y10, Y6, Y6
	VPCMPEQB 192(DX), Y9, Y10
	VPSUBB Y10, Y6, Y6
	VPCMPEQB 224(DX), Y8, Y10
	VPSUBB Y10, Y7, Y7
	VPCMPEQB 224(DX), Y9, Y10
	VPSUBB Y10, Y7, Y7
	ADDQ $32, SI
	DECQ BX
	JNZ  chunk

	// Flush the 8 byte-lane accumulators into the uint64 bins.
	VPXOR Y12, Y12, Y12
	VPSADBW Y12, Y0, Y0
	VEXTRACTI128 $1, Y0, X10
	VPADDQ X10, X0, X0
	VPSRLDQ $8, X0, X10
	VPADDQ X10, X0, X0
	VMOVQ X0, AX
	ADDQ AX, 0(R13)
	VPSADBW Y12, Y1, Y1
	VEXTRACTI128 $1, Y1, X10
	VPADDQ X10, X1, X1
	VPSRLDQ $8, X1, X10
	VPADDQ X10, X1, X1
	VMOVQ X1, AX
	ADDQ AX, 8(R13)
	VPSADBW Y12, Y2, Y2
	VEXTRACTI128 $1, Y2, X10
	VPADDQ X10, X2, X2
	VPSRLDQ $8, X2, X10
	VPADDQ X10, X2, X2
	VMOVQ X2, AX
	ADDQ AX, 16(R13)
	VPSADBW Y12, Y3, Y3
	VEXTRACTI128 $1, Y3, X10
	VPADDQ X10, X3, X3
	VPSRLDQ $8, X3, X10
	VPADDQ X10, X3, X3
	VMOVQ X3, AX
	ADDQ AX, 24(R13)
	VPSADBW Y12, Y4, Y4
	VEXTRACTI128 $1, Y4, X10
	VPADDQ X10, X4, X4
	VPSRLDQ $8, X4, X10
	VPADDQ X10, X4, X4
	VMOVQ X4, AX
	ADDQ AX, 32(R13)
	VPSADBW Y12, Y5, Y5
	VEXTRACTI128 $1, Y5, X10
	VPADDQ X10, X5, X5
	VPSRLDQ $8, X5, X10
	VPADDQ X10, X5, X5
	VMOVQ X5, AX
	ADDQ AX, 40(R13)
	VPSADBW Y12, Y6, Y6
	VEXTRACTI128 $1, Y6, X10
	VPADDQ X10, X6, X6
	VPSRLDQ $8, X6, X10
	VPADDQ X10, X6, X6
	VMOVQ X6, AX
	ADDQ AX, 48(R13)
	VPSADBW Y12, Y7, Y7
	VEXTRACTI128 $1, Y7, X10
	VPADDQ X10, X7, X7
	VPSRLDQ $8, X7, X10
	VPADDQ X10, X7, X7
	VMOVQ X7, AX
	ADDQ AX, 56(R13)

	TESTQ CX, CX
	JNZ   group

	INCQ R12
	CMPQ R12, $2
	JNE  pass
	VZEROUPPER
	RET

// func unpackPackedL4AVX2(p *byte, n int, dst *Symbol)
//
// Expands p[0:n] into 2n level-4 Symbols at dst: 4 payload bytes become 4
// zero-extended qwords (VPMOVZXBQ), the nibble halves are split, interleaved
// back into stream order (high nibble first), and OR'd with the level-4
// Symbol image. n must be a positive multiple of 4.
TEXT ·unpackPackedL4AVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ dst+16(FP), DI
	VPBROADCASTQ level4Qword<>(SB), Y11
	VPBROADCASTQ qwordLoNibble<>(SB), Y12

unpackLoop:
	VPMOVZXBQ (SI), Y0
	VPSRLQ $4, Y0, Y1 // high nibbles: first symbol of each byte
	VPAND Y12, Y0, Y2 // low nibbles: second symbol
	VPUNPCKLQDQ Y2, Y1, Y3 // [h0 l0 | h2 l2]
	VPUNPCKHQDQ Y2, Y1, Y4 // [h1 l1 | h3 l3]
	VPERM2I128 $0x20, Y4, Y3, Y5 // [h0 l0 h1 l1]
	VPERM2I128 $0x31, Y4, Y3, Y6 // [h2 l2 h3 l3]
	VPOR Y11, Y5, Y5
	VPOR Y11, Y6, Y6
	VMOVDQU Y5, (DI)
	VMOVDQU Y6, 32(DI)
	ADDQ $4, SI
	ADDQ $64, DI
	SUBQ $4, CX
	JNZ  unpackLoop
	VZEROUPPER
	RET

// func packPackedL4AVX2(syms *Symbol, n int, dst *byte) (ok uint64)
//
// Packs syms[0:n] (8-byte Symbol structs) into n/2 payload bytes at dst.
// Per 16 symbols: the four 32-byte loads are compacted to their index dwords
// (VPSHUFD+VPERMQ), arranged so one VPMULLD-by-[16,1] plus VPHADDD fuses
// nibble pairs into output-byte dwords already in stream order, then
// VPSHUFB+VPERMD squeeze them into 8 bytes. Level bytes are accumulated
// through VPCMPEQD; any symbol whose level is not 4 makes ok 0 (the written
// output is then garbage the caller discards). n must be a positive
// multiple of 16.
TEXT ·packPackedL4AVX2(SB), NOSPLIT, $0-32
	MOVQ syms+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ dst+16(FP), DI
	VPBROADCASTD dword4<>(SB), Y14
	VPBROADCASTD dwordFF<>(SB), Y13
	VMOVDQU packMul16<>(SB), Y12
	VMOVDQU packGather<>(SB), Y11
	VPCMPEQB Y15, Y15, Y15 // validity accumulator, all-ones = valid

packLoop:
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3

	// Level check: dwords 1,3 of each qword pair hold level|padding; mask
	// to the level byte and require 4.
	VPSHUFD $0xdd, Y0, Y10
	VPAND Y13, Y10, Y10
	VPCMPEQD Y14, Y10, Y10
	VPAND Y10, Y15, Y15
	VPSHUFD $0xdd, Y1, Y10
	VPAND Y13, Y10, Y10
	VPCMPEQD Y14, Y10, Y10
	VPAND Y10, Y15, Y15
	VPSHUFD $0xdd, Y2, Y10
	VPAND Y13, Y10, Y10
	VPCMPEQD Y14, Y10, Y10
	VPAND Y10, Y15, Y15
	VPSHUFD $0xdd, Y3, Y10
	VPAND Y13, Y10, Y10
	VPCMPEQD Y14, Y10, Y10
	VPAND Y10, Y15, Y15

	// Compact each load to its 4 index dwords in the low 128 bits.
	VPSHUFD $0x88, Y0, Y4
	VPERMQ $0x08, Y4, Y4
	VPSHUFD $0x88, Y1, Y5
	VPERMQ $0x08, Y5, Y5
	VPSHUFD $0x88, Y2, Y6
	VPERMQ $0x08, Y6, Y6
	VPSHUFD $0x88, Y3, Y7
	VPERMQ $0x08, Y7, Y7

	// s1 = indices 0-3 | 8-11, s2 = indices 4-7 | 12-15: this interleave is
	// exactly what makes VPHADDD's lane-wise pair sums come out in stream
	// order.
	VINSERTI128 $1, X6, Y4, Y8
	VINSERTI128 $1, X7, Y5, Y9
	VPMULLD Y12, Y8, Y8
	VPMULLD Y12, Y9, Y9
	VPHADDD Y9, Y8, Y8 // output bytes 0-3 | 4-7, one per dword
	VPSHUFB Y11, Y8, Y8 // each lane: its 4 bytes packed into dword 0
	VMOVDQU packPerm<>(SB), Y10
	VPERMD Y8, Y10, Y8 // dword 0 = lane-0 bytes, dword 1 = lane-1 bytes
	VMOVQ X8, (DI)

	ADDQ $128, SI
	ADDQ $8, DI
	SUBQ $16, CX
	JNZ  packLoop

	VPMOVMSKB Y15, AX
	XORQ BX, BX
	CMPL AX, $-1
	SETEQ BL
	MOVQ BX, ok+24(FP)
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
