package symbolic_test

import (
	"bytes"
	"math/rand"
	"testing"

	"symmeter/internal/benchref"
	"symmeter/internal/symbolic"
)

// FuzzPackUnpack round-trips random fixed-level symbol sequences at every
// level 1..MaxLevel through Pack/Unpack and the buffer-reusing
// AppendPack/UnpackInto forms, cross-checking the packed bytes against the
// bit-at-a-time oracle preserved in internal/benchref. Counts near
// multiples of 8/level exercise the kernel's 32-bit flush boundaries and
// tail-byte handling.
func FuzzPackUnpack(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(96))
	f.Add(int64(2), uint8(1), uint16(1))
	f.Add(int64(3), uint8(3), uint16(11))   // level not dividing 8: straddles bytes
	f.Add(int64(4), uint8(30), uint16(7))   // MaxLevel: two refills per flush
	f.Add(int64(5), uint8(7), uint16(9))    // odd level, tail bits
	f.Add(int64(6), uint8(8), uint16(32))   // byte-aligned, word-aligned
	f.Add(int64(7), uint8(5), uint16(0))    // empty
	f.Add(int64(8), uint8(13), uint16(513)) // long run, odd level
	f.Fuzz(func(t *testing.T, seed int64, lvl uint8, n uint16) {
		level := int(lvl)%symbolic.MaxLevel + 1
		count := int(n) % 4096
		rng := rand.New(rand.NewSource(seed))
		syms := make([]symbolic.Symbol, count)
		for i := range syms {
			syms[i] = symbolic.NewSymbol(rng.Intn(1<<uint(level)), level)
		}

		data, err := symbolic.Pack(syms)
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		ref, err := benchref.Pack(syms)
		if err != nil {
			t.Fatalf("benchref.Pack: %v", err)
		}
		if !bytes.Equal(data, ref) {
			t.Fatalf("level %d count %d: packed bytes diverge from bit-at-a-time oracle:\nword %x\nref  %x", level, count, data, ref)
		}

		got, err := symbolic.Unpack(data)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		if len(got) != count {
			t.Fatalf("Unpack returned %d symbols, want %d", len(got), count)
		}
		for i := range got {
			if got[i] != syms[i] {
				t.Fatalf("round trip diverges at %d: %v != %v", i, got[i], syms[i])
			}
		}

		// Buffer-reusing forms: AppendPack onto a dirty prefix must leave the
		// prefix intact and append exactly the Pack bytes; UnpackInto into a
		// dirty undersized buffer must still decode correctly.
		prefix := []byte{0xAA, 0x55, 0xFF}
		appended, err := symbolic.AppendPack(append([]byte(nil), prefix...), syms)
		if err != nil {
			t.Fatalf("AppendPack: %v", err)
		}
		if !bytes.Equal(appended[:3], prefix) || !bytes.Equal(appended[3:], data) {
			t.Fatalf("AppendPack output diverges from Pack")
		}
		dirty := make([]symbolic.Symbol, 5, 8)
		for i := range dirty {
			dirty[i] = symbolic.NewSymbol(1, 1)
		}
		got2, err := symbolic.UnpackInto(dirty, data)
		if err != nil {
			t.Fatalf("UnpackInto: %v", err)
		}
		if len(got2) != count {
			t.Fatalf("UnpackInto returned %d symbols, want %d", len(got2), count)
		}
		for i := range got2 {
			if got2[i] != syms[i] {
				t.Fatalf("UnpackInto diverges at %d", i)
			}
		}
	})
}

// TestAppendPackUnpackIntoZeroAlloc enforces the codec's zero-allocation
// contract: once scratch buffers have grown to the working size, the
// steady-state pack→unpack cycle must not allocate at all.
func TestAppendPackUnpackIntoZeroAlloc(t *testing.T) {
	syms := make([]symbolic.Symbol, 96)
	for i := range syms {
		syms[i] = symbolic.NewSymbol(i%16, 4)
	}
	var (
		buf []byte
		out []symbolic.Symbol
		err error
	)
	allocs := testing.AllocsPerRun(200, func() {
		buf, err = symbolic.AppendPack(buf[:0], syms)
		if err != nil {
			t.Fatal(err)
		}
		out, err = symbolic.UnpackInto(out, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(syms) {
			t.Fatal("length mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendPack+UnpackInto allocates %.1f times per run, want 0", allocs)
	}
}
