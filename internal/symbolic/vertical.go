package symbolic

import (
	"fmt"

	"symmeter/internal/timeseries"
)

// VerticalAverage implements Definition 2 exactly: it aggregates every n
// consecutive measurements of S into one averaged measurement, stamping each
// aggregate with the timestamp of its last constituent (t̄_i = t_{i·n}).
// A trailing partial group of fewer than n measurements is dropped, matching
// the definition (which only defines complete groups).
//
// This is the count-based form of vertical segmentation. For wall-clock
// aligned aggregation over gappy data, use timeseries.Series.Resample, which
// the experiment pipeline uses so that 15-minute symbols stay aligned to the
// quarter hour across missing data.
func VerticalAverage(s *timeseries.Series, n int) (*timeseries.Series, error) {
	if n <= 0 {
		return nil, fmt.Errorf("symbolic: vertical segmentation needs n > 0, got %d", n)
	}
	count := s.Len() / n
	pts := make([]timeseries.Point, 0, count)
	for g := 0; g < count; g++ {
		var sum float64
		for i := g * n; i < (g+1)*n; i++ {
			sum += s.Points[i].V
		}
		pts = append(pts, timeseries.Point{
			T: s.Points[(g+1)*n-1].T,
			V: sum / float64(n),
		})
	}
	return &timeseries.Series{Name: fmt.Sprintf("VA(%s,%d)", s.Name, n), Points: pts}, nil
}
