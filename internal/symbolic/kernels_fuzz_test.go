package symbolic_test

import (
	"bytes"
	"testing"

	"symmeter/internal/symbolic"
)

// FuzzKernelsSIMDvsScalar differentially fuzzes every native dispatch path
// (AVX2 on amd64, NEON on arm64) against the portable scalar kernels: for an
// arbitrary level-4 payload and range, the histogram bins must be bit-equal,
// and the codec fast paths must produce byte-identical packed output and
// symbol-identical unpacked output. On builds with no native path (noasm tag,
// or a CPU without the required features) the loop body never runs and the
// target degenerates to a scalar smoke test — that is intentional, so the CI
// fuzz smoke can run unconditionally.
func FuzzKernelsSIMDvsScalar(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Add([]byte{0xAB}, uint16(0), uint16(2))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78}, uint16(1), uint16(7))
	f.Add(bytes.Repeat([]byte{0xF0}, 33), uint16(3), uint16(61))
	// Past the AVX2 histogram kernel's 120-chunk accumulator flush
	// (120 chunks × 32 bytes = 3840 payload bytes).
	f.Add(bytes.Repeat([]byte{0x9C, 0x27}, 2000), uint16(5), uint16(7995))
	f.Fuzz(func(t *testing.T, payload []byte, s, e uint16) {
		paths := symbolic.KernelPaths()
		prev := symbolic.KernelPath()
		defer func() {
			if err := symbolic.SetKernelPath(prev); err != nil {
				t.Fatal(err)
			}
		}()

		n := 2 * len(payload) // level-4 symbols in payload
		start, end := int(s), int(e)
		if n == 0 {
			start, end = 0, 0
		} else {
			start %= n
			end %= n + 1
		}
		if start > end {
			start, end = end, start
		}

		// Scalar reference pass.
		if err := symbolic.SetKernelPath("scalar"); err != nil {
			t.Fatal(err)
		}
		wantHist := make([]uint64, 16)
		symbolic.PackedRangeHistogram(wantHist, payload, 4, start, end)
		syms := make([]symbolic.Symbol, n)
		for i := range syms {
			syms[i] = symbolic.NewSymbol(int(payload[i/2]>>(4*(1-uint(i)%2)))&0xF, 4)
		}
		wantPacked, err := symbolic.Pack(syms)
		if err != nil {
			t.Fatalf("scalar Pack: %v", err)
		}
		wantSyms, err := symbolic.Unpack(wantPacked)
		if err != nil {
			t.Fatalf("scalar Unpack: %v", err)
		}

		for _, path := range paths[1:] {
			if err := symbolic.SetKernelPath(path); err != nil {
				t.Fatal(err)
			}
			hist := make([]uint64, 16)
			symbolic.PackedRangeHistogram(hist, payload, 4, start, end)
			for bin := range hist {
				if hist[bin] != wantHist[bin] {
					t.Fatalf("%s hist[%d] = %d, scalar %d (n=%d range [%d,%d))", path, bin, hist[bin], wantHist[bin], n, start, end)
				}
			}
			packed, err := symbolic.Pack(syms)
			if err != nil {
				t.Fatalf("%s Pack: %v", path, err)
			}
			if !bytes.Equal(packed, wantPacked) {
				t.Fatalf("%s packed bytes diverge from scalar (n=%d)", path, n)
			}
			got, err := symbolic.Unpack(packed)
			if err != nil {
				t.Fatalf("%s Unpack: %v", path, err)
			}
			for i := range got {
				if got[i] != wantSyms[i] {
					t.Fatalf("%s unpacked symbol %d = %v, scalar %v", path, i, got[i], wantSyms[i])
				}
			}
		}
	})
}
