package symbolic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"symmeter/internal/timeseries"
)

func symsOf(t *testing.T, tab *Table, vals ...float64) []Symbol {
	t.Helper()
	return tab.EncodeAll(vals)
}

func TestHammingBasics(t *testing.T) {
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	a := symsOf(t, tab, 5, 15, 25, 35)
	b := symsOf(t, tab, 5, 25, 25, 5)
	d, err := Hamming(a, b)
	if err != nil || d != 2 {
		t.Fatalf("Hamming = %d, %v", d, err)
	}
	if _, err := Hamming(a, b[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
	if d, _ := Hamming(a, a); d != 0 {
		t.Fatal("self distance")
	}
}

func TestIndexDistance(t *testing.T) {
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	a := symsOf(t, tab, 5, 35) // bins 0, 3
	b := symsOf(t, tab, 25, 5) // bins 2, 0
	d, err := IndexDistance(a, b)
	if err != nil || d != 5 {
		t.Fatalf("IndexDistance = %d, %v", d, err)
	}
	mixed := []Symbol{NewSymbol(0, 1), NewSymbol(1, 2)}
	if _, err := IndexDistance(mixed[:1], []Symbol{NewSymbol(1, 2)}); err == nil {
		t.Fatal("level mismatch should error")
	}
	if _, err := IndexDistance(a, b[:1]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSymbolGap(t *testing.T) {
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	cases := []struct {
		a, b float64
		want float64
	}{
		{5, 5, 0},   // same bin
		{5, 15, 0},  // adjacent bins
		{5, 25, 10}, // bins 0 and 2: gap = β2 - β1 = 20-10
		{5, 35, 20}, // bins 0 and 3: β3 - β1 = 30-10
		{35, 5, 20}, // symmetric
	}
	for _, c := range cases {
		g, err := tab.SymbolGap(tab.Encode(c.a), tab.Encode(c.b))
		if err != nil || g != c.want {
			t.Fatalf("SymbolGap(%v,%v) = %v,%v want %v", c.a, c.b, g, err, c.want)
		}
	}
	if _, err := tab.SymbolGap(NewSymbol(0, 1), tab.Encode(5)); err == nil {
		t.Fatal("level mismatch should error")
	}
}

// Property: ValueDistance lower-bounds the true L1 distance of the encoded
// values — the MINDIST guarantee.
func TestValueDistanceLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		train := make([]float64, 300)
		for i := range train {
			train[i] = rng.Float64() * 1000
		}
		tab, err := Learn(MethodMedian, train, 8)
		if err != nil {
			return false
		}
		n := 20
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64() * 1000
			b[i] = rng.Float64() * 1000
		}
		d, err := ValueDistance(tab, tab.EncodeAll(a), tab.EncodeAll(b))
		if err != nil {
			return false
		}
		var l1 float64
		for i := range a {
			l1 += math.Abs(a[i] - b[i])
		}
		return d <= l1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three distances satisfy symmetry and identity.
func TestDistanceAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		train := make([]float64, 100)
		for i := range train {
			train[i] = rng.Float64() * 100
		}
		tab, err := Learn(MethodMedian, train, 4)
		if err != nil {
			return false
		}
		n := 10
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64() * 100
			b[i] = rng.Float64() * 100
		}
		sa, sb := tab.EncodeAll(a), tab.EncodeAll(b)
		h1, _ := Hamming(sa, sb)
		h2, _ := Hamming(sb, sa)
		i1, _ := IndexDistance(sa, sb)
		i2, _ := IndexDistance(sb, sa)
		v1, _ := ValueDistance(tab, sa, sb)
		v2, _ := ValueDistance(tab, sb, sa)
		self, _ := ValueDistance(tab, sa, sa)
		return h1 == h2 && i1 == i2 && v1 == v2 && self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesDistance(t *testing.T) {
	vals := []float64{5, 15, 25, 35, 10, 30}
	tab, err := Learn(MethodMedian, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Horizontal(timeseries.FromValues("a", 0, 1, []float64{5, 35}), tab)
	s2 := Horizontal(timeseries.FromValues("b", 0, 1, []float64{35, 5}), tab)
	d, err := SeriesDistance(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("distance = %v, want > 0", d)
	}
	other, _ := Learn(MethodMedian, vals, 4)
	s3 := Horizontal(timeseries.FromValues("c", 0, 1, []float64{5, 35}), other)
	if _, err := SeriesDistance(s1, s3); err == nil {
		t.Fatal("different tables should error")
	}
}

func TestNearestSymbol(t *testing.T) {
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	query := tab.EncodeAll([]float64{5, 5})
	candidates := [][]Symbol{
		tab.EncodeAll([]float64{35, 35}),
		tab.EncodeAll([]float64{15, 5}),
		tab.EncodeAll([]float64{25, 25}),
	}
	best, err := NearestSymbol(tab, query, candidates)
	if err != nil || best != 1 {
		t.Fatalf("NearestSymbol = %d, %v", best, err)
	}
	if best, _ := NearestSymbol(tab, query, nil); best != -1 {
		t.Fatal("no candidates should give -1")
	}
	bad := [][]Symbol{{NewSymbol(0, 1)}}
	if _, err := NearestSymbol(tab, query, bad); err == nil {
		t.Fatal("mismatched candidate should error")
	}
}
