//go:build amd64 && !noasm

package symbolic

import "os"

// AVX2 kernel entry points (kernels_amd64.s). All of them are pure integer
// transforms over memory the wrapper has already bounds-checked; none touch
// floats, allocate, or call back into Go, so they are declared noescape and
// nosplit-safe.

// histPackedL4AVX2 adds the nibble-value counts of p[0:n] into hist[0..15].
// n must be a positive multiple of 32.
//
//go:noescape
func histPackedL4AVX2(p *byte, n int, hist *uint64)

// unpackPackedL4AVX2 expands p[0:n] into 2n level-4 Symbols at dst. n must
// be a positive multiple of 4.
//
//go:noescape
func unpackPackedL4AVX2(p *byte, n int, dst *Symbol)

// packPackedL4AVX2 packs syms[0:n] into n/2 bytes at dst, returning 0 if any
// symbol's level byte is not 4 (output bytes already written are garbage the
// caller discards by re-walking scalar). n must be a positive multiple of 16.
//
//go:noescape
func packPackedL4AVX2(syms *Symbol, n int, dst *byte) (ok uint64)

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports CPU and OS support for the AVX2 kernels: AVX2 in the
// feature leaf, and the OS saving YMM state (OSXSAVE plus XCR0 SSE|AVX).
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b&avx2 != 0
}

func init() {
	// SYMMETER_NOASM is the runtime escape hatch mirroring the noasm build
	// tag: operators can force the portable scalar kernels without a rebuild.
	if !hasAVX2() || os.Getenv("SYMMETER_NOASM") != "" {
		return
	}
	nativePath = "avx2"
	enableNative = enableAVX2
	enableAVX2()
	activePath = "avx2"
}

func enableAVX2() {
	histL4Stride, unpackL4Stride, packL4Stride = 32, 4, 16
	useHistL4, useUnpackL4, usePackL4 = true, true, true
}

// The native wrappers stay direct (and inlinable) so the //go:noescape
// annotations on the assembly declarations reach the callers' escape
// analysis — see the dispatch-design note in kernels_dispatch.go.

func histL4Native(bs []byte, hist *uint64)   { histPackedL4AVX2(&bs[0], len(bs), hist) }
func unpackL4Native(bs []byte, dst []Symbol) { unpackPackedL4AVX2(&bs[0], len(bs), &dst[0]) }
func packL4Native(syms []Symbol, dst []byte) bool {
	return packPackedL4AVX2(&syms[0], len(syms), &dst[0]) != 0
}
