package symbolic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec packs fixed-level symbol sequences into dense bit strings, realising
// the paper's storage arithmetic (§2.3): k symbols cost log2(k) bits each,
// so a day of 16-symbol/15-minute data is 96 symbols × 4 bits = 384 bits.
//
// Wire format: a 5-byte header (magic 'S', level byte, uint24 count) followed
// by ceil(count·level/8) payload bytes, symbols packed MSB-first.

const codecMagic = 'S'

// maxPackCount bounds a packed sequence (uint24 count field).
const maxPackCount = 1<<24 - 1

// Pack encodes a fixed-level symbol sequence. All symbols must share the
// same level (mixed-resolution streams should be coarsened first or packed
// in separate runs).
func Pack(symbols []Symbol) ([]byte, error) {
	if len(symbols) > maxPackCount {
		return nil, fmt.Errorf("symbolic: cannot pack %d symbols (max %d)", len(symbols), maxPackCount)
	}
	level := 0
	if len(symbols) > 0 {
		level = symbols[0].Level()
	}
	if level == 0 && len(symbols) > 0 {
		return nil, errors.New("symbolic: cannot pack level-0 symbols")
	}
	for i, s := range symbols {
		if s.Level() != level {
			return nil, fmt.Errorf("symbolic: mixed levels: symbol %d has level %d, want %d", i, s.Level(), level)
		}
	}
	payloadBits := len(symbols) * level
	out := make([]byte, 5+(payloadBits+7)/8)
	out[0] = codecMagic
	out[1] = byte(level)
	out[2] = byte(len(symbols) >> 16)
	out[3] = byte(len(symbols) >> 8)
	out[4] = byte(len(symbols))
	bitPos := 0
	payload := out[5:]
	for _, s := range symbols {
		idx := uint32(s.Index())
		for b := level - 1; b >= 0; b-- {
			if idx>>uint(b)&1 == 1 {
				payload[bitPos/8] |= 1 << uint(7-bitPos%8)
			}
			bitPos++
		}
	}
	return out, nil
}

// Unpack decodes a packed symbol sequence.
func Unpack(data []byte) ([]Symbol, error) {
	if len(data) < 5 {
		return nil, errors.New("symbolic: packed data too short")
	}
	if data[0] != codecMagic {
		return nil, fmt.Errorf("symbolic: bad magic byte %#x", data[0])
	}
	level := int(data[1])
	count := int(data[2])<<16 | int(data[3])<<8 | int(data[4])
	if count == 0 {
		return []Symbol{}, nil
	}
	if level < 1 || level > MaxLevel {
		return nil, fmt.Errorf("symbolic: bad level %d", level)
	}
	need := 5 + (count*level+7)/8
	if len(data) < need {
		return nil, fmt.Errorf("symbolic: truncated payload: have %d bytes, need %d", len(data), need)
	}
	payload := data[5:]
	out := make([]Symbol, count)
	bitPos := 0
	for i := 0; i < count; i++ {
		var idx uint32
		for b := 0; b < level; b++ {
			idx <<= 1
			if payload[bitPos/8]>>uint(7-bitPos%8)&1 == 1 {
				idx |= 1
			}
			bitPos++
		}
		out[i] = Symbol{index: idx, level: uint8(level)}
	}
	return out, nil
}

// PackedSize returns the packed byte size of n symbols at the given level,
// including the header.
func PackedSize(n, level int) int { return 5 + (n*level+7)/8 }

// RawSize returns the byte size of n raw float64 measurements.
func RawSize(n int) int { return 8 * n }

// CompressionStats reproduces the §2.3 arithmetic for one day of data.
type CompressionStats struct {
	// RawSamples is the number of raw measurements per day.
	RawSamples int
	// RawBytes is RawSamples × 8 (measurements stored as doubles).
	RawBytes int
	// Symbols is the number of symbols per day after vertical segmentation.
	Symbols int
	// SymbolBits is Symbols × log2(k), the §2.3 payload size.
	SymbolBits int
	// PackedBytes includes this codec's framing header.
	PackedBytes int
	// Ratio is RawBytes / (SymbolBits/8): the headline numerosity reduction.
	Ratio float64
}

// Compression computes the compression achieved by encoding data sampled
// every samplePeriod seconds with alphabet size k and vertical window
// `window` seconds, over one day.
func Compression(samplePeriod, window int64, k int) (CompressionStats, error) {
	if samplePeriod <= 0 || window <= 0 {
		return CompressionStats{}, errors.New("symbolic: sample period and window must be positive")
	}
	a, err := NewAlphabet(k)
	if err != nil {
		return CompressionStats{}, err
	}
	var st CompressionStats
	st.RawSamples = int(86400 / samplePeriod)
	st.RawBytes = RawSize(st.RawSamples)
	st.Symbols = int(86400 / window)
	st.SymbolBits = st.Symbols * a.Level()
	st.PackedBytes = PackedSize(st.Symbols, a.Level())
	st.Ratio = float64(st.RawBytes) / (float64(st.SymbolBits) / 8)
	return st, nil
}

// TableWireSize returns the bytes needed to ship a lookup table to the
// aggregation server: a 3-byte header, min/max, k-1 separators and k
// representative values as float64. The paper notes this cost "can be
// amortized over time".
func TableWireSize(k int) int {
	return 3 + (2+(k-1)+k)*8
}

// MarshalTable serialises a table for transmission (header, level, min,
// max, separators, representatives).
func MarshalTable(t *Table) []byte {
	buf := make([]byte, 0, TableWireSize(t.K())+2)
	buf = append(buf, 'T', byte(t.Level()), byte(t.method))
	le := binary.LittleEndian
	appendF := func(v float64) {
		var tmp [8]byte
		le.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	appendF(t.min)
	appendF(t.max)
	for _, s := range t.separators {
		appendF(s)
	}
	for _, r := range t.repr {
		appendF(r)
	}
	return buf
}

// UnmarshalTable parses a table serialised by MarshalTable.
func UnmarshalTable(data []byte) (*Table, error) {
	if len(data) < 3 || data[0] != 'T' {
		return nil, errors.New("symbolic: bad table frame")
	}
	level := int(data[1])
	method := Method(data[2])
	k := 1 << uint(level)
	need := 3 + (2+k-1+k)*8
	if len(data) != need {
		return nil, fmt.Errorf("symbolic: table frame size %d, want %d", len(data), need)
	}
	le := binary.LittleEndian
	off := 3
	readF := func() float64 {
		v := math.Float64frombits(le.Uint64(data[off : off+8]))
		off += 8
		return v
	}
	min := readF()
	max := readF()
	seps := make([]float64, k-1)
	for i := range seps {
		seps[i] = readF()
	}
	t, err := NewTable(k, seps, min, max)
	if err != nil {
		return nil, err
	}
	t.method = method
	for i := 0; i < k; i++ {
		t.repr[i] = readF()
	}
	return t, nil
}
