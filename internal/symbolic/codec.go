package symbolic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec packs fixed-level symbol sequences into dense bit strings, realising
// the paper's storage arithmetic (§2.3): k symbols cost log2(k) bits each,
// so a day of 16-symbol/15-minute data is 96 symbols × 4 bits = 384 bits.
//
// Wire format: a 5-byte header (magic 'S', level byte, uint24 count) followed
// by ceil(count·level/8) payload bytes, symbols packed MSB-first.

const codecMagic = 'S'

// maxPackCount bounds a packed sequence (uint24 count field).
const maxPackCount = 1<<24 - 1

// Pack encodes a fixed-level symbol sequence. All symbols must share the
// same level (mixed-resolution streams should be coarsened first or packed
// in separate runs).
func Pack(symbols []Symbol) ([]byte, error) {
	return AppendPack(nil, symbols)
}

// AppendPack appends the packed encoding of symbols to dst and returns the
// extended slice, reallocating only when dst lacks capacity. It is the
// zero-allocation form of Pack for callers that reuse a scratch buffer
// across batches. On error dst is returned truncated to its original
// length with its original contents intact.
//
// The kernel packs word-at-a-time: symbol indices are shifted into a 64-bit
// accumulator and drained 32 bits per store, instead of testing and setting
// one bit per loop iteration.
func AppendPack(dst []byte, symbols []Symbol) ([]byte, error) {
	if len(symbols) > maxPackCount {
		return dst, fmt.Errorf("symbolic: cannot pack %d symbols (max %d)", len(symbols), maxPackCount)
	}
	level := 0
	if len(symbols) > 0 {
		level = symbols[0].Level()
		if level == 0 {
			return dst, errors.New("symbolic: cannot pack level-0 symbols")
		}
	}
	base := len(dst)
	payloadBits := len(symbols) * level
	need := 5 + (payloadBits+7)/8
	if cap(dst)-base < need {
		grown := make([]byte, base+need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:base+need]
	}
	dst[base] = codecMagic
	dst[base+1] = byte(level)
	dst[base+2] = byte(len(symbols) >> 16)
	dst[base+3] = byte(len(symbols) >> 8)
	dst[base+4] = byte(len(symbols))
	payload := dst[base+5:]
	// Word-at-a-time kernel. Invariant: accBits < 32 at the top of the loop,
	// so acc holds at most 31 + MaxLevel = 61 valid bits and never overflows.
	// Level validation is fused into the loop; on a mismatch only bytes past
	// the caller's original length have been touched, so truncating back to
	// base leaves dst intact.
	lvl := uint8(level)
	shift := uint(level)
	pos := 0
	off := 0
	if level == 4 {
		// Fast path for the paper's headline k=16 configuration: eight
		// 4-bit symbols per 32-bit store, unrolled, one fused level check
		// per word. The <8-symbol remainder falls through to the general
		// accumulator loop below at a byte-aligned position.
		if usePackL4 && len(symbols) >= packL4Stride {
			n := len(symbols) &^ (packL4Stride - 1)
			if packL4Native(symbols[:n:n], payload[:n/2]) {
				off, pos = n, n/2
			}
			// On a level mismatch the asm reports false and the scalar walk
			// below re-runs from 0 to produce the positioned error; the
			// garbage bytes it wrote are past base and truncated away.
		}
		for ; off+8 <= len(symbols); off += 8 {
			s := symbols[off : off+8 : off+8]
			if (s[0].level^4)|(s[1].level^4)|(s[2].level^4)|(s[3].level^4)|
				(s[4].level^4)|(s[5].level^4)|(s[6].level^4)|(s[7].level^4) != 0 {
				for j := range s {
					if s[j].level != 4 {
						return dst[:base], fmt.Errorf("symbolic: mixed levels: symbol %d has level %d, want %d", off+j, s[j].Level(), level)
					}
				}
			}
			w := s[0].index<<28 | s[1].index<<24 | s[2].index<<20 | s[3].index<<16 |
				s[4].index<<12 | s[5].index<<8 | s[6].index<<4 | s[7].index
			binary.BigEndian.PutUint32(payload[pos:], w)
			pos += 4
		}
	}
	var acc uint64
	accBits := 0
	for i := off; i < len(symbols); i++ {
		s := symbols[i]
		if s.level != lvl {
			return dst[:base], fmt.Errorf("symbolic: mixed levels: symbol %d has level %d, want %d", i, s.Level(), level)
		}
		acc = acc<<shift | uint64(s.index)
		accBits += level
		if accBits >= 32 {
			accBits -= 32
			binary.BigEndian.PutUint32(payload[pos:], uint32(acc>>uint(accBits)))
			pos += 4
		}
	}
	for accBits >= 8 {
		accBits -= 8
		payload[pos] = byte(acc >> uint(accBits))
		pos++
	}
	if accBits > 0 {
		// Tail byte: remaining bits MSB-aligned, zero padding on the right.
		payload[pos] = byte(acc << uint(8-accBits))
	}
	return dst, nil
}

// Unpack decodes a packed symbol sequence.
func Unpack(data []byte) ([]Symbol, error) {
	return UnpackInto(nil, data)
}

// UnpackInto decodes a packed symbol sequence into dst's backing array
// (overwriting from index 0) and returns the decoded slice, reallocating
// only when dst lacks capacity. It is the zero-allocation form of Unpack
// for callers that reuse a symbol buffer across batches. On error dst is
// returned with its original contents intact.
func UnpackInto(dst []Symbol, data []byte) ([]Symbol, error) {
	if len(data) < 5 {
		return dst, errors.New("symbolic: packed data too short")
	}
	if data[0] != codecMagic {
		return dst, fmt.Errorf("symbolic: bad magic byte %#x", data[0])
	}
	level := int(data[1])
	count := int(data[2])<<16 | int(data[3])<<8 | int(data[4])
	if count == 0 {
		return dst[:0], nil
	}
	if level < 1 || level > MaxLevel {
		return dst, fmt.Errorf("symbolic: bad level %d", level)
	}
	need := 5 + (count*level+7)/8
	if len(data) < need {
		return dst, fmt.Errorf("symbolic: truncated payload: have %d bytes, need %d", len(data), need)
	}
	payload := data[5:]
	if cap(dst) < count {
		dst = make([]Symbol, count)
	} else {
		dst = dst[:count]
	}
	// Word-at-a-time kernel, mirror of AppendPack: refill the accumulator
	// 32 bits at a time (one byte at a time only near the payload tail) and
	// mask each symbol out. accBits < level <= MaxLevel < 32 before a refill,
	// so acc holds at most 61 valid bits; high stale bits are masked off.
	mask := uint64(1)<<uint(level) - 1
	lvl := uint8(level)
	pos := 0
	off := 0
	if level == 4 {
		// Fast path mirroring AppendPack's: one 32-bit load yields eight
		// 4-bit symbols; the remainder continues in the general loop at a
		// byte-aligned position.
		if useUnpackL4 && count >= 2*unpackL4Stride {
			n := count / (2 * unpackL4Stride) * unpackL4Stride // whole payload bytes
			unpackL4Native(payload[:n:n], dst[:2*n])
			off, pos = 2*n, n
		}
		for ; off+8 <= count && pos+4 <= len(payload); off += 8 {
			w := binary.BigEndian.Uint32(payload[pos:])
			pos += 4
			dst[off] = Symbol{index: w >> 28, level: 4}
			dst[off+1] = Symbol{index: w >> 24 & 0xF, level: 4}
			dst[off+2] = Symbol{index: w >> 20 & 0xF, level: 4}
			dst[off+3] = Symbol{index: w >> 16 & 0xF, level: 4}
			dst[off+4] = Symbol{index: w >> 12 & 0xF, level: 4}
			dst[off+5] = Symbol{index: w >> 8 & 0xF, level: 4}
			dst[off+6] = Symbol{index: w >> 4 & 0xF, level: 4}
			dst[off+7] = Symbol{index: w & 0xF, level: 4}
		}
	}
	var acc uint64
	accBits := 0
	for i := off; i < count; i++ {
		for accBits < level {
			if pos+4 <= len(payload) {
				acc = acc<<32 | uint64(binary.BigEndian.Uint32(payload[pos:]))
				accBits += 32
				pos += 4
			} else {
				acc = acc<<8 | uint64(payload[pos])
				accBits += 8
				pos++
			}
		}
		accBits -= level
		dst[i] = Symbol{index: uint32(acc >> uint(accBits) & mask), level: lvl}
	}
	return dst, nil
}

// PackedSize returns the packed byte size of n symbols at the given level,
// including the header.
func PackedSize(n, level int) int { return 5 + (n*level+7)/8 }

// RawSize returns the byte size of n raw float64 measurements.
func RawSize(n int) int { return 8 * n }

// CompressionStats reproduces the §2.3 arithmetic for one day of data.
type CompressionStats struct {
	// RawSamples is the number of raw measurements per day.
	RawSamples int
	// RawBytes is RawSamples × 8 (measurements stored as doubles).
	RawBytes int
	// Symbols is the number of symbols per day after vertical segmentation.
	Symbols int
	// SymbolBits is Symbols × log2(k), the §2.3 payload size.
	SymbolBits int
	// PackedBytes includes this codec's framing header.
	PackedBytes int
	// Ratio is RawBytes / (SymbolBits/8): the headline numerosity reduction.
	Ratio float64
}

// Compression computes the compression achieved by encoding data sampled
// every samplePeriod seconds with alphabet size k and vertical window
// `window` seconds, over one day.
func Compression(samplePeriod, window int64, k int) (CompressionStats, error) {
	if samplePeriod <= 0 || window <= 0 {
		return CompressionStats{}, errors.New("symbolic: sample period and window must be positive")
	}
	a, err := NewAlphabet(k)
	if err != nil {
		return CompressionStats{}, err
	}
	var st CompressionStats
	st.RawSamples = int(86400 / samplePeriod)
	st.RawBytes = RawSize(st.RawSamples)
	st.Symbols = int(86400 / window)
	st.SymbolBits = st.Symbols * a.Level()
	st.PackedBytes = PackedSize(st.Symbols, a.Level())
	st.Ratio = float64(st.RawBytes) / (float64(st.SymbolBits) / 8)
	return st, nil
}

// TableWireSize returns the bytes needed to ship a lookup table to the
// aggregation server: a 3-byte header, min/max, k-1 separators and k
// representative values as float64. The paper notes this cost "can be
// amortized over time".
func TableWireSize(k int) int {
	return 3 + (2+(k-1)+k)*8
}

// MarshalTable serialises a table for transmission (header, level, min,
// max, separators, representatives).
func MarshalTable(t *Table) []byte {
	buf := make([]byte, 0, TableWireSize(t.K())+2)
	buf = append(buf, 'T', byte(t.Level()), byte(t.method))
	le := binary.LittleEndian
	appendF := func(v float64) {
		var tmp [8]byte
		le.PutUint64(tmp[:], math.Float64bits(v))
		buf = append(buf, tmp[:]...)
	}
	appendF(t.min)
	appendF(t.max)
	for _, s := range t.separators {
		appendF(s)
	}
	for _, r := range t.repr {
		appendF(r)
	}
	return buf
}

// UnmarshalTable parses a table serialised by MarshalTable.
func UnmarshalTable(data []byte) (*Table, error) {
	if len(data) < 3 || data[0] != 'T' {
		return nil, errors.New("symbolic: bad table frame")
	}
	level := int(data[1])
	method := Method(data[2])
	k := 1 << uint(level)
	need := 3 + (2+k-1+k)*8
	if len(data) != need {
		return nil, fmt.Errorf("symbolic: table frame size %d, want %d", len(data), need)
	}
	le := binary.LittleEndian
	off := 3
	readF := func() float64 {
		v := math.Float64frombits(le.Uint64(data[off : off+8]))
		off += 8
		return v
	}
	min := readF()
	max := readF()
	seps := make([]float64, k-1)
	for i := range seps {
		seps[i] = readF()
	}
	t, err := NewTable(k, seps, min, max)
	if err != nil {
		return nil, err
	}
	t.method = method
	for i := 0; i < k; i++ {
		t.repr[i] = readF()
	}
	t.refreshValues()
	return t, nil
}
