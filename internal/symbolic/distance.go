package symbolic

import (
	"errors"
	"fmt"
	"math"
)

// Distance measures over symbol sequences. The paper's customer-segmentation
// scenario ("identifying customers having a similar consumption profile")
// needs a notion of similarity between symbolic day-vectors; these measures
// give the clustering substrate three options with different semantics:
//
//   - Hamming: positional disagreement count — purely nominal;
//   - IndexDistance: L1 over bin indices — ordinal, cheap;
//   - ValueDistance: L1 over the separators' value gaps — the analogue of
//     SAX's MINDIST, lower-bounding the L1 distance of the underlying
//     (vertically segmented) series.

// ErrLengthMismatch reports sequences of different lengths.
var ErrLengthMismatch = errors.New("symbolic: sequences have different lengths")

// Hamming returns the number of positions where the sequences disagree.
func Hamming(a, b []Symbol) (int, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}

// IndexDistance returns the L1 distance between bin indices. Both sequences
// must be single-level; mixed levels should be coarsened first.
func IndexDistance(a, b []Symbol) (int, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	d := 0
	for i := range a {
		if a[i].Level() != b[i].Level() {
			return 0, fmt.Errorf("symbolic: level mismatch at %d: %d vs %d", i, a[i].Level(), b[i].Level())
		}
		diff := a[i].Index() - b[i].Index()
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d, nil
}

// ValueDistance returns the MINDIST-style lower bound on the L1 distance of
// the underlying series: for each position, the gap between the two
// symbols' value ranges under the table (0 when ranges touch or overlap).
// Both sequences must be encoded with the given table.
func ValueDistance(t *Table, a, b []Symbol) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var sum float64
	for i := range a {
		d, err := t.SymbolGap(a[i], b[i])
		if err != nil {
			return 0, fmt.Errorf("symbolic: position %d: %w", i, err)
		}
		sum += d
	}
	return sum, nil
}

// SymbolGap returns the value gap between two symbols' ranges: zero for
// equal or adjacent bins, otherwise the distance between the facing
// separators — the cell distance of the SAX dist table generalised to
// data-driven separators.
func (t *Table) SymbolGap(a, b Symbol) (float64, error) {
	if a.Level() != t.Level() || b.Level() != t.Level() {
		return 0, fmt.Errorf("symbolic: symbol levels %d/%d do not match table level %d",
			a.Level(), b.Level(), t.Level())
	}
	lo, hi := a.Index(), b.Index()
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi-lo <= 1 {
		return 0, nil
	}
	return t.separators[hi-1] - t.separators[lo], nil
}

// SeriesDistance computes ValueDistance between two symbol series sharing a
// table, matching points by position.
func SeriesDistance(a, b *SymbolSeries) (float64, error) {
	if a.Table != b.Table {
		// Different table pointers may still be equal tables; require exact
		// sharing to keep semantics unambiguous.
		return 0, errors.New("symbolic: series must share one lookup table")
	}
	return ValueDistance(a.Table, a.Symbols(), b.Symbols())
}

// NearestSymbol returns the index (into candidates) of the candidate
// sequence closest to the query by ValueDistance, breaking ties toward the
// lower index. It returns -1 for no candidates.
func NearestSymbol(t *Table, query []Symbol, candidates [][]Symbol) (int, error) {
	best := -1
	bestD := math.Inf(1)
	for i, c := range candidates {
		d, err := ValueDistance(t, query, c)
		if err != nil {
			return 0, err
		}
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best, nil
}
