package symbolic

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/timeseries"
)

// driftStream builds a stream whose level doubles halfway through.
func driftStream(n int, period int64, base float64, rng *rand.Rand) []timeseries.Point {
	pts := make([]timeseries.Point, n)
	for i := range pts {
		level := base
		if i >= n/2 {
			level = base * 4
		}
		pts[i] = timeseries.Point{
			T: int64(i) * period,
			V: level * math.Exp(rng.NormFloat64()*0.2),
		}
	}
	return pts
}

func adaptiveFixture(t *testing.T) (*Table, []timeseries.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	// History at the pre-drift level.
	hist := make([]float64, 2000)
	for i := range hist {
		hist[i] = 100 * math.Exp(rng.NormFloat64()*0.2)
	}
	table, err := Learn(MethodMedian, hist, 8)
	if err != nil {
		t.Fatal(err)
	}
	return table, driftStream(4000, 60, 100, rng)
}

func TestAdaptiveEncoderRelearnsOnDrift(t *testing.T) {
	table, stream := adaptiveFixture(t)
	ae, err := NewAdaptiveEncoder(table, AdaptiveConfig{
		Window: 600, CheckEvery: 48, BufferSize: 96, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var updates []*TableUpdate
	for _, p := range stream {
		_, _, up, err := ae.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		if up != nil {
			updates = append(updates, up)
		}
	}
	if len(updates) == 0 {
		t.Fatal("4x level drift should trigger at least one table update")
	}
	if ae.Updates() != len(updates) {
		t.Fatalf("Updates() = %d, want %d", ae.Updates(), len(updates))
	}
	// The relearned table's top separator should sit far above the original.
	origTop := table.Separators()[table.K()-2]
	newTop := ae.Table().Separators()[ae.Table().K()-2]
	if newTop <= origTop*1.5 {
		t.Fatalf("new top separator %v not adapted above original %v", newTop, origTop)
	}
	// The first update should fire after the drift midpoint, not before.
	mid := stream[len(stream)/2].T
	if updates[0].At < mid {
		t.Fatalf("update at %d fired before the drift at %d", updates[0].At, mid)
	}
	if updates[0].Divergence < 0.5 {
		t.Fatalf("divergence %v below threshold", updates[0].Divergence)
	}
}

func TestAdaptiveEncoderQuietWithoutDrift(t *testing.T) {
	table, _ := adaptiveFixture(t)
	ae, err := NewAdaptiveEncoder(table, AdaptiveConfig{
		Window: 600, CheckEvery: 48, BufferSize: 96, Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		p := timeseries.Point{T: int64(i) * 60, V: 100 * math.Exp(rng.NormFloat64()*0.2)}
		if _, _, up, err := ae.Push(p); err != nil {
			t.Fatal(err)
		} else if up != nil {
			t.Fatalf("spurious table update at t=%d (divergence %v)", up.At, up.Divergence)
		}
	}
}

func TestAdaptiveEncoderImprovesReconstruction(t *testing.T) {
	// After drift, adaptive reconstruction must beat the static table's.
	table, stream := adaptiveFixture(t)
	ae, err := NewAdaptiveEncoder(table, AdaptiveConfig{
		Window: 600, CheckEvery: 24, BufferSize: 96, Threshold: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	static := NewEncoder(table, 600)

	var adaptErr, staticErr float64
	n := 0
	// Track true window means to compare against.
	half := len(stream) / 2
	for i, p := range stream {
		inPostDrift := i > half+600/60*24 // give the adaptive encoder time to react
		sp, ok, _, err := ae.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		if ok && inPostDrift {
			v, err := ae.Table().Value(sp.S)
			if err == nil {
				adaptErr += math.Abs(v - 400)
				n++
			}
		}
		sp2, ok2, err := static.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		if ok2 && inPostDrift {
			v, err := table.Value(sp2.S)
			if err == nil {
				staticErr += math.Abs(v - 400)
			}
		}
	}
	if n == 0 {
		t.Fatal("no post-drift windows observed")
	}
	if adaptErr >= staticErr {
		t.Fatalf("adaptive error %v not below static %v after drift", adaptErr, staticErr)
	}
}

func TestNewAdaptiveEncoderValidation(t *testing.T) {
	if _, err := NewAdaptiveEncoder(nil, AdaptiveConfig{}); err == nil {
		t.Fatal("nil table should error")
	}
	raw, err := NewTable(2, []float64{5}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdaptiveEncoder(raw, AdaptiveConfig{}); err == nil {
		t.Fatal("hand-built table without a method should error")
	}
}

func TestAdaptiveConfigDefaults(t *testing.T) {
	c := AdaptiveConfig{}.withDefaults()
	if c.BufferSize != 960 || c.CheckEvery != 96 || c.Threshold != 0.12 || c.Patience != 3 {
		t.Fatalf("defaults = %+v", c)
	}
}
