package symbolic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, k int, seps []float64, min, max float64) *Table {
	t.Helper()
	tab, err := NewTable(k, seps, min, max)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(3, []float64{1, 2}, 0, 10); err == nil {
		t.Fatal("k=3 should be rejected")
	}
	if _, err := NewTable(4, []float64{1, 2}, 0, 10); err == nil {
		t.Fatal("wrong separator count should be rejected")
	}
	if _, err := NewTable(4, []float64{3, 2, 1}, 0, 10); err == nil {
		t.Fatal("decreasing separators should be rejected")
	}
	if _, err := NewTable(4, []float64{1, 2, 3}, 10, 0); err == nil {
		t.Fatal("min > max should be rejected")
	}
	if _, err := NewTable(4, []float64{1, 2, 3}, 0, 10); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
}

func TestEncodeDefinition3(t *testing.T) {
	// k=4, separators {10, 20, 30}; Definition 3 bins are (βj-1, βj].
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	cases := []struct {
		v    float64
		want string
	}{
		{-5, "00"}, // below range → a1
		{10, "00"}, // v <= β1 → a1 (boundary belongs to lower bin)
		{10.1, "01"},
		{20, "01"},
		{25, "10"},
		{30, "10"},
		{30.1, "11"}, // v > βk-1 → ak
		{1e9, "11"},
	}
	for _, c := range cases {
		if got := tab.Encode(c.v).String(); got != c.want {
			t.Errorf("Encode(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEncodeAll(t *testing.T) {
	tab := mustTable(t, 2, []float64{5}, 0, 10)
	got := tab.EncodeAll([]float64{1, 9})
	if got[0].String() != "0" || got[1].String() != "1" {
		t.Fatalf("EncodeAll = %v", got)
	}
}

func TestBoundsAndCenter(t *testing.T) {
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	checks := []struct {
		sym    string
		lo, hi float64
		center float64
	}{
		{"00", 0, 10, 5},
		{"01", 10, 20, 15},
		{"10", 20, 30, 25},
		{"11", 30, 40, 35},
	}
	for _, c := range checks {
		s, _ := ParseSymbol(c.sym)
		lo, hi, err := tab.Bounds(s)
		if err != nil || lo != c.lo || hi != c.hi {
			t.Errorf("Bounds(%s) = %v,%v,%v want %v,%v", c.sym, lo, hi, err, c.lo, c.hi)
		}
		ctr, err := tab.Center(s)
		if err != nil || ctr != c.center {
			t.Errorf("Center(%s) = %v,%v want %v", c.sym, ctr, err, c.center)
		}
	}
	wrong, _ := ParseSymbol("0")
	if _, _, err := tab.Bounds(wrong); err == nil {
		t.Fatal("Bounds must reject level mismatch")
	}
	if _, err := tab.Value(wrong); err == nil {
		t.Fatal("Value must reject level mismatch")
	}
}

func TestValueFallsBackToCenter(t *testing.T) {
	tab := mustTable(t, 2, []float64{10}, 0, 20)
	s0, _ := ParseSymbol("0")
	v, err := tab.Value(s0)
	if err != nil || v != 5 {
		t.Fatalf("Value = %v,%v want 5 (center fallback)", v, err)
	}
	if err := tab.SetRepresentatives([]float64{3, 17}); err != nil {
		t.Fatal(err)
	}
	v, _ = tab.Value(s0)
	if v != 3 {
		t.Fatalf("Value = %v, want 3 (representative)", v)
	}
	if err := tab.SetRepresentatives([]float64{1}); err == nil {
		t.Fatal("wrong representative count must error")
	}
}

func TestCoarsenTable(t *testing.T) {
	tab := mustTable(t, 8, []float64{1, 2, 3, 4, 5, 6, 7}, 0, 8)
	c, err := tab.Coarsen(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Separators(), []float64{2, 4, 6}) {
		t.Fatalf("coarse separators = %v", c.Separators())
	}
	c2, err := tab.Coarsen(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c2.Separators(), []float64{4}) {
		t.Fatalf("coarse separators = %v", c2.Separators())
	}
	if _, err := tab.Coarsen(16); err == nil {
		t.Fatal("cannot coarsen upward")
	}
	if _, err := tab.Coarsen(3); err == nil {
		t.Fatal("cannot coarsen to non-power-of-two")
	}
}

// The paper's §4 flexibility claim, as a property: encoding with a fine
// table then coarsening the symbol equals encoding directly with the
// coarsened table.
func TestCoarsenCommutesWithEncode(t *testing.T) {
	f := func(seed int64, kExp, k2Exp uint8, raw []float64) bool {
		rng := rand.New(rand.NewSource(seed))
		kE := int(kExp%4) + 2    // k in {4..32}
		k2E := int(k2Exp)%kE + 1 // k2 exponent in {1..kE}
		k, k2 := 1<<uint(kE), 1<<uint(k2E)
		// Training data.
		n := 50 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		for _, m := range []Method{MethodUniform, MethodMedian, MethodDistinctMedian} {
			fine, err := Learn(m, vals, k)
			if err != nil {
				return false
			}
			coarse, err := fine.Coarsen(k2)
			if err != nil {
				return false
			}
			probe := append(append([]float64(nil), raw...), vals[:10]...)
			probe = append(probe, -1, 0, 1e12, vals[0])
			for _, v := range probe {
				if math.IsNaN(v) {
					continue
				}
				a, err := fine.Encode(v).Coarsen(coarse.Level())
				if err != nil {
					return false
				}
				b := coarse.Encode(v)
				if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode respects separator boundaries — the returned symbol's
// Bounds always contain the value (within the table's range).
func TestEncodeBoundsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 300)
		for i := range vals {
			vals[i] = rng.NormFloat64()*50 + 200
		}
		tab, err := Learn(MethodMedian, vals, 16)
		if err != nil {
			return false
		}
		for _, v := range vals {
			s := tab.Encode(v)
			lo, hi, err := tab.Bounds(s)
			if err != nil {
				return false
			}
			// Definition 3: bins are (lo, hi]; the extreme bins absorb
			// out-of-range values, and the global min sits in bin 0.
			if s.Index() > 0 && v <= lo {
				return false
			}
			if s.Index() < tab.K()-1 && v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableString(t *testing.T) {
	tab := mustTable(t, 2, []float64{5}, 0, 10)
	if s := tab.String(); s == "" {
		t.Fatal("String should not be empty")
	}
}
