package symbolic

import (
	"fmt"
	"strings"

	"symmeter/internal/timeseries"
)

// SymbolPoint is one timestamped symbol.
type SymbolPoint struct {
	T int64
	S Symbol
}

// SymbolSeries is a symbolic time series Ĥ(S, L): the result of horizontal
// segmentation of a (usually vertically segmented) series with a lookup
// table. It retains the table so the series can be reconstructed, coarsened
// or re-expressed.
type SymbolSeries struct {
	Name   string
	Table  *Table
	Points []SymbolPoint
}

// Horizontal implements Definition 3 over a whole series: each measurement
// value is replaced by its symbol under the lookup table.
func Horizontal(s *timeseries.Series, table *Table) *SymbolSeries {
	pts := make([]SymbolPoint, s.Len())
	for i, p := range s.Points {
		pts[i] = SymbolPoint{T: p.T, S: table.Encode(p.V)}
	}
	return &SymbolSeries{Name: s.Name, Table: table, Points: pts}
}

// Len returns the number of symbols.
func (ss *SymbolSeries) Len() int { return len(ss.Points) }

// Symbols returns the symbols in order.
func (ss *SymbolSeries) Symbols() []Symbol {
	out := make([]Symbol, len(ss.Points))
	for i, p := range ss.Points {
		out[i] = p.S
	}
	return out
}

// Reconstruct maps each symbol back to its representative value, producing
// an approximate real-valued series (the aggregation-server view).
func (ss *SymbolSeries) Reconstruct() (*timeseries.Series, error) {
	pts := make([]timeseries.Point, len(ss.Points))
	for i, p := range ss.Points {
		v, err := ss.Table.Value(p.S)
		if err != nil {
			return nil, fmt.Errorf("symbolic: reconstruct point %d: %w", i, err)
		}
		pts[i] = timeseries.Point{T: p.T, V: v}
	}
	return &timeseries.Series{Name: ss.Name + "/reconstructed", Points: pts}, nil
}

// Centers maps each symbol to the center of its range — the forecasting
// semantics of §3.2.
func (ss *SymbolSeries) Centers() (*timeseries.Series, error) {
	pts := make([]timeseries.Point, len(ss.Points))
	for i, p := range ss.Points {
		v, err := ss.Table.Center(p.S)
		if err != nil {
			return nil, fmt.Errorf("symbolic: center of point %d: %w", i, err)
		}
		pts[i] = timeseries.Point{T: p.T, V: v}
	}
	return &timeseries.Series{Name: ss.Name + "/centers", Points: pts}, nil
}

// Coarsen converts the symbolic series to a smaller alphabet k2 by
// truncating symbols and deriving the coarse lookup table — the §4
// flexibility claim ("higher resolution symbols can easily be converted to
// lower resolution").
func (ss *SymbolSeries) Coarsen(k2 int) (*SymbolSeries, error) {
	t2, err := ss.Table.Coarsen(k2)
	if err != nil {
		return nil, err
	}
	pts := make([]SymbolPoint, len(ss.Points))
	for i, p := range ss.Points {
		s2, err := p.S.Coarsen(t2.Level())
		if err != nil {
			return nil, err
		}
		pts[i] = SymbolPoint{T: p.T, S: s2}
	}
	return &SymbolSeries{Name: ss.Name, Table: t2, Points: pts}, nil
}

// Strings returns the symbols as binary strings, the nominal-attribute view
// consumed by classifiers ("allow also algorithms which usually work on
// nominal and string to be run on top of smart meter data").
func (ss *SymbolSeries) Strings() []string {
	out := make([]string, len(ss.Points))
	for i, p := range ss.Points {
		out[i] = p.S.String()
	}
	return out
}

// String renders the symbol sequence, space-separated.
func (ss *SymbolSeries) String() string {
	return strings.Join(ss.Strings(), " ")
}
