package symbolic

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's §4 "utility-driven horizontal
// segmentation" direction in two forms:
//
//   - ExpertTable builds a table from expert-chosen thresholds, the §3.2
//     example ("an expert who is interested on two segmentation: low and
//     high consumption ... an alphabet of size 2");
//   - LearnSupervised chooses separators to maximise information gain about
//     a supervision signal (class labels, e.g. house identity or peak/
//     off-peak periods) via recursive entropy-minimising binary splits —
//     quantisation optimised for "the performances of a chosen analytics".

// ExpertTable builds a lookup table from explicit separators supplied by a
// domain expert. The number of separators must be k-1 for a power-of-two k.
// min/max close the outer ranges for reconstruction centers.
func ExpertTable(separators []float64, min, max float64) (*Table, error) {
	k := len(separators) + 1
	t, err := NewTable(k, separators, min, max)
	if err != nil {
		return nil, err
	}
	t.method = MethodNone
	return t, nil
}

// LearnSupervised learns a k-symbol table whose separators maximise the
// information gain about the provided labels: the value range is split
// recursively, each time placing a separator at the boundary that minimises
// the label entropy of the two sides (the Fayyad–Irani style cut), always
// refining the current interval with the highest weighted impurity.
//
// values and labels must have equal length; labels are arbitrary small
// non-negative ints.
func LearnSupervised(values []float64, labels []int, k int) (*Table, error) {
	if len(values) == 0 || len(values) != len(labels) {
		return nil, fmt.Errorf("symbolic: supervised learning needs equal, non-zero values and labels")
	}
	if _, err := NewAlphabet(k); err != nil {
		return nil, err
	}
	nl := 0
	for _, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("symbolic: negative label %d", l)
		}
		if l >= nl {
			nl = l + 1
		}
	}

	// Sort once by value, carrying labels.
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sv := make([]float64, len(values))
	sl := make([]int, len(values))
	for i, j := range idx {
		sv[i] = values[j]
		sl[i] = labels[j]
	}

	// Greedy recursive splitting: maintain intervals [lo, hi) over the
	// sorted arrays; repeatedly split the interval whose split yields the
	// largest entropy reduction until k bins exist.
	type interval struct {
		lo, hi   int
		cut      int     // best cut position (index of first right element)
		gain     float64 // weighted entropy reduction of the best cut
		hasCut   bool
		cutValue float64
	}
	evaluate := func(lo, hi int) interval {
		iv := interval{lo: lo, hi: hi}
		n := hi - lo
		if n < 2 {
			return iv
		}
		total := make([]float64, nl)
		for i := lo; i < hi; i++ {
			total[sl[i]]++
		}
		parent := entropyCounts(total)
		left := make([]float64, nl)
		bestGain := 0.0
		bestCut := -1
		var nLeft float64
		for i := lo; i < hi-1; i++ {
			left[sl[i]]++
			nLeft++
			if sv[i] == sv[i+1] {
				continue
			}
			right := make([]float64, nl)
			for c := 0; c < nl; c++ {
				right[c] = total[c] - left[c]
			}
			w := nLeft / float64(n)
			info := w*entropyCounts(left) + (1-w)*entropyCounts(right)
			if g := parent - info; g > bestGain {
				bestGain = g
				bestCut = i + 1
			}
		}
		if bestCut >= 0 {
			iv.hasCut = true
			iv.cut = bestCut
			iv.gain = bestGain * float64(n) // weight by interval size
			iv.cutValue = (sv[bestCut-1] + sv[bestCut]) / 2
		}
		return iv
	}

	intervals := []interval{evaluate(0, len(sv))}
	var seps []float64
	for len(intervals) < k {
		// Pick the interval with the best weighted gain.
		best := -1
		for i, iv := range intervals {
			if iv.hasCut && (best < 0 || iv.gain > intervals[best].gain) {
				best = i
			}
		}
		if best < 0 {
			// No informative cut remains: fall back to median splits of the
			// largest interval so the alphabet still has k symbols.
			largest := 0
			for i, iv := range intervals {
				if iv.hi-iv.lo > intervals[largest].hi-intervals[largest].lo {
					largest = i
				}
			}
			iv := intervals[largest]
			mid := (iv.lo + iv.hi) / 2
			// Move mid to a value boundary.
			for mid > iv.lo && mid < iv.hi && sv[mid] == sv[mid-1] {
				mid++
			}
			if mid <= iv.lo || mid >= iv.hi {
				return nil, fmt.Errorf("symbolic: cannot find %d distinct bins (only %d distinct value groups)", k, len(intervals))
			}
			cutValue := (sv[mid-1] + sv[mid]) / 2
			seps = append(seps, cutValue)
			intervals[largest] = evaluate(iv.lo, mid)
			intervals = append(intervals, evaluate(mid, iv.hi))
			continue
		}
		iv := intervals[best]
		seps = append(seps, iv.cutValue)
		intervals[best] = evaluate(iv.lo, iv.cut)
		intervals = append(intervals, evaluate(iv.cut, iv.hi))
	}

	sort.Float64s(seps)
	min, max := sv[0], sv[len(sv)-1]
	t, err := NewTable(k, seps, min, max)
	if err != nil {
		return nil, err
	}
	t.method = MethodNone
	t.learnRepresentatives(values)
	return t, nil
}

func entropyCounts(counts []float64) float64 {
	var n float64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := c / n
			h -= p * math.Log2(p)
		}
	}
	return h
}
