package symbolic

import (
	"fmt"
	"sync"
)

// Kernel dispatch.
//
// The packed-symbol kernels have three tiers: portable scalar Go (always
// compiled, the only tier under the `noasm` build tag), AVX2 assembly on
// amd64, and NEON assembly on arm64. Dispatch is per-operation booleans
// resolved once at init from runtime CPU detection, guarding direct calls to
// per-arch native wrappers (histL4Native and friends) — deliberately NOT
// function-pointer variables: an indirect call is opaque to escape analysis,
// which would force every caller's stack histogram to the heap and break the
// query engine's zero-alloc pins.
//
// Every assembly kernel computes integers only (nibble histograms, symbol
// expansion, symbol packing). Floating-point aggregates are always derived
// from those integers in shared Go code (see HistogramAggregate), which is
// what makes query results bit-exact across all three dispatch paths: the
// integer intermediates are required to be identical, and the float folds
// that consume them are literally the same code.
//
// SetKernelPath exists for tests and benchmarks: the differential fuzz runs
// every input through "scalar" and the native path and requires bit-equal
// results, and cmd/bench measures both so BENCH_N.json records the SIMD win
// against the same-run scalar twin.

var (
	// useHistL4 etc. gate the native fast paths; all false means scalar.
	// The native wrappers themselves (histL4Native, unpackL4Native,
	// packL4Native) are defined per arch and must only be called when the
	// corresponding boolean is true.
	useHistL4   bool
	useUnpackL4 bool
	usePackL4   bool

	// Minimum granules the assembly bodies process per call, always a power
	// of two; the Go hook sites hand the native wrapper a multiple and
	// finish remainders scalar. histL4Stride is in payload bytes,
	// unpackL4Stride in payload bytes, packL4Stride in symbols.
	histL4Stride   = 1
	unpackL4Stride = 1
	packL4Stride   = 1

	// nativePath names the arch path compiled in and supported by this CPU
	// ("avx2", "neon"); empty when only scalar exists (noasm, other arches,
	// or missing CPU features).
	nativePath string
	// enableNative re-installs the native dispatch state; set alongside
	// nativePath by the arch init.
	enableNative func()

	kernelMu   sync.Mutex
	activePath = "scalar"
)

// KernelPath returns the dispatch path the packed-symbol kernels currently
// take: "avx2", "neon" or "scalar".
func KernelPath() string {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return activePath
}

// KernelPaths returns every dispatch path this binary supports on this CPU,
// scalar first. A binary built with the noasm tag, or running on hardware
// without the required features, reports only "scalar".
func KernelPaths() []string {
	if nativePath != "" {
		return []string{"scalar", nativePath}
	}
	return []string{"scalar"}
}

// SetKernelPath forces the kernel dispatch to the named path: "scalar" is
// always accepted; the native path only when the binary and CPU support it
// (see KernelPaths). It exists so tests and benchmarks can run both tiers on
// one machine; it must not be called concurrently with running kernels.
func SetKernelPath(path string) error {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	switch {
	case path == "scalar":
		useHistL4, useUnpackL4, usePackL4 = false, false, false
		histL4Stride, unpackL4Stride, packL4Stride = 1, 1, 1
	case path == nativePath && nativePath != "":
		enableNative()
	default:
		return fmt.Errorf("symbolic: kernel path %q not available (have %v)", path, KernelPaths())
	}
	activePath = path
	return nil
}
