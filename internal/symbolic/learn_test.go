package symbolic

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/stats"
)

func TestLearnUniform(t *testing.T) {
	// max = 800: β = {200, 400, 600} for k=4 (paper §2.2a).
	vals := []float64{100, 300, 800, 50}
	tab, err := Learn(MethodUniform, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{200, 400, 600}
	got := tab.Separators()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("separators = %v, want %v", got, want)
		}
	}
	min, max := tab.Range()
	if min != 0 || max != 800 {
		t.Fatalf("range = [%v,%v], want [0,800]", min, max)
	}
	if tab.Method() != MethodUniform {
		t.Fatalf("method = %v", tab.Method())
	}
}

func TestLearnMedianEqualMass(t *testing.T) {
	// 1..100: separators at quartiles; each symbol gets ~25 values.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	tab, err := Learn(MethodMedian, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, v := range vals {
		counts[tab.Encode(v).Index()]++
	}
	for i, c := range counts {
		if c < 23 || c > 27 {
			t.Fatalf("bin %d count = %d, want ~25 (counts=%v)", i, c, counts)
		}
	}
}

func TestLearnDistinctMedianIgnoresFrequency(t *testing.T) {
	// Standby-dominated data: 90% zeros. Median puts all separators at 0;
	// distinctmedian spreads them.
	vals := make([]float64, 0, 1000)
	for i := 0; i < 900; i++ {
		vals = append(vals, 0)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(i+1)*10)
	}
	med, _ := Learn(MethodMedian, vals, 4)
	dm, _ := Learn(MethodDistinctMedian, vals, 4)
	if med.Separators()[2] != 0 {
		t.Fatalf("median separators = %v, expected all zero", med.Separators())
	}
	if dm.Separators()[0] <= 0 {
		t.Fatalf("distinctmedian separators = %v, expected positive", dm.Separators())
	}
}

func TestLearnEquivalenceOnUniformData(t *testing.T) {
	// The paper: "if the overall distribution of the real values is
	// perfectly uniform and limited to a fixed range, these three methods
	// are equivalent". Use a dense uniform grid over (0, max].
	n := 4096
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i+1) / float64(n) * 1000 // (0, 1000]
	}
	u, _ := Learn(MethodUniform, vals, 8)
	m, _ := Learn(MethodMedian, vals, 8)
	d, _ := Learn(MethodDistinctMedian, vals, 8)
	for i := 0; i < 7; i++ {
		if math.Abs(u.Separators()[i]-m.Separators()[i]) > 1 ||
			math.Abs(u.Separators()[i]-d.Separators()[i]) > 1 {
			t.Fatalf("methods disagree on uniform data:\nu=%v\nm=%v\nd=%v",
				u.Separators(), m.Separators(), d.Separators())
		}
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn(MethodMedian, nil, 4); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := Learn(MethodMedian, []float64{1, 2}, 3); err == nil {
		t.Fatal("k=3 should error")
	}
	if _, err := Learn(MethodUniform, []float64{1, 2}, 5); err == nil {
		t.Fatal("k=5 should error for uniform")
	}
	if _, err := Learn(MethodNone, []float64{1}, 2); err == nil {
		t.Fatal("MethodNone should error")
	}
	if _, err := Learn(Method(99), []float64{1}, 2); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestMethodStringAndParse(t *testing.T) {
	for _, m := range []Method{MethodUniform, MethodMedian, MethodDistinctMedian} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMethod(%q) = %v,%v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
	if MethodNone.String() != "none" || Method(42).String() == "" {
		t.Fatal("String() coverage")
	}
}

func TestRepresentativesAreBinMeans(t *testing.T) {
	vals := []float64{1, 2, 9, 10}
	tab, err := Learn(MethodMedian, vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Median separator = 5.5; bin 0 = {1,2} mean 1.5; bin 1 = {9,10} mean 9.5.
	s0, _ := ParseSymbol("0")
	s1, _ := ParseSymbol("1")
	v0, _ := tab.Value(s0)
	v1, _ := tab.Value(s1)
	if math.Abs(v0-1.5) > 1e-9 || math.Abs(v1-9.5) > 1e-9 {
		t.Fatalf("representatives = %v,%v want 1.5,9.5", v0, v1)
	}
}

func TestMedianMaximisesEntropyOnSkewedData(t *testing.T) {
	// Log-normal data (like Fig. 2): the median table's symbol entropy must
	// beat the uniform table's, supporting the paper's entropy argument.
	rng := rand.New(rand.NewSource(21))
	d := stats.LogNormal{Mu: 5.5, Sigma: 0.8}
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = d.Rand(rng)
	}
	med, _ := Learn(MethodMedian, vals, 16)
	uni, _ := Learn(MethodUniform, vals, 16)
	hm, hu := med.SymbolEntropy(vals), uni.SymbolEntropy(vals)
	if hm <= hu {
		t.Fatalf("median entropy %v <= uniform entropy %v", hm, hu)
	}
	// Median entropy should be close to the maximum log2(16) = 4.
	if hm < 3.9 {
		t.Fatalf("median entropy %v, want ~4", hm)
	}
	if (&Table{alphabet: Alphabet{level: 2}}).SymbolEntropy(nil) != 0 {
		t.Fatal("entropy of empty data should be 0")
	}
}
