package symbolic_test

import (
	"fmt"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

// The basic pipeline: learn a table from history, encode a stream, recover
// approximate values.
func Example() {
	history := []float64{120, 130, 125, 2200, 2300, 140, 135, 2250}
	table, err := symbolic.Learn(symbolic.MethodMedian, history, 2)
	if err != nil {
		panic(err)
	}

	live := timeseries.FromValues("house", 0, 1, []float64{118, 2280, 131})
	encoded := symbolic.Horizontal(live, table)
	fmt.Println("symbols:", encoded.String())

	recon, err := encoded.Reconstruct()
	if err != nil {
		panic(err)
	}
	for _, p := range recon.Points {
		fmt.Printf("t=%d ≈ %.0f W\n", p.T, p.V)
	}
	// Output:
	// symbols: 0 1 0
	// t=0 ≈ 128 W
	// t=1 ≈ 1722 W
	// t=2 ≈ 128 W
}

// Symbols form a refinement hierarchy: coarsening keeps leading bits, and a
// coarse symbol covers all its refinements (the paper's partial order).
func ExampleSymbol_Coarsen() {
	s, _ := symbolic.ParseSymbol("101")
	c, _ := s.Coarsen(1)
	fmt.Println(c)
	fmt.Println(c.Covers(s))
	// Output:
	// 1
	// true
}

// Online encoding emits one symbol per aggregation window as measurements
// stream in.
func ExampleEncoder() {
	table, _ := symbolic.Learn(symbolic.MethodUniform, []float64{0, 100, 200, 400}, 4)
	enc := symbolic.NewEncoder(table, 10) // 10-second windows

	for t := int64(0); t < 30; t++ {
		v := float64(t * 10) // rising load
		if sp, ok, _ := enc.Push(timeseries.Point{T: t, V: v}); ok {
			fmt.Printf("window ending %d -> %s\n", sp.T, sp.S)
		}
	}
	if sp, ok := enc.Flush(); ok {
		fmt.Printf("window ending %d -> %s\n", sp.T, sp.S)
	}
	// Output:
	// window ending 10 -> 00
	// window ending 20 -> 01
	// window ending 30 -> 10
}

// Compression per the paper's §2.3: a day of 1 Hz doubles versus 16 symbols
// every 15 minutes.
func ExampleCompression() {
	st, _ := symbolic.Compression(1, 900, 16)
	fmt.Printf("raw: %d bytes/day\n", st.RawBytes)
	fmt.Printf("symbols: %d bits/day\n", st.SymbolBits)
	fmt.Printf("ratio: %.0fx\n", st.Ratio)
	// Output:
	// raw: 691200 bytes/day
	// symbols: 384 bits/day
	// ratio: 14400x
}
