package symbolic

import (
	"math/rand"
	"testing"

	"symmeter/internal/timeseries"
)

// motifFixture builds a symbol series over a noisy base with a planted
// repeating pattern and one planted anomaly.
func motifFixture(t *testing.T) *SymbolSeries {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	vals := make([]float64, 0, 400)
	pattern := []float64{100, 100, 900, 900, 100}
	for block := 0; block < 20; block++ {
		if block == 13 {
			// The anomaly: an inverted, extreme excursion.
			vals = append(vals, 2900, 2900, 50, 50, 2900)
			continue
		}
		for _, p := range pattern {
			vals = append(vals, p+rng.Float64()*20)
		}
	}
	// A uniform table keeps each pattern level inside one wide bin, so the
	// planted repeats produce identical words despite the noise. (A median
	// table would deliberately split the dense low band across several bins
	// — maximum-entropy symbols are the wrong tool for exact-match motifs,
	// which is itself a §4 "optimal segmentation is task-relative" fact.)
	table, err := Learn(MethodUniform, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Horizontal(timeseries.FromValues("m", 0, 1, vals), table)
}

func TestFindMotifsFindsPlantedPattern(t *testing.T) {
	ss := motifFixture(t)
	motifs, err := FindMotifs(ss, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs found")
	}
	// The planted 5-symbol pattern repeats 19 times; the top motif must
	// cover most of those blocks.
	if motifs[0].Count() < 10 {
		t.Fatalf("top motif occurs %d times, want >= 10 (%q)", motifs[0].Count(), motifs[0].Word)
	}
	// Occurrences must be non-trivially separated.
	for i := 1; i < len(motifs[0].Positions); i++ {
		if motifs[0].Positions[i]-motifs[0].Positions[i-1] < 5 {
			t.Fatalf("overlapping occurrences: %v", motifs[0].Positions[:i+1])
		}
	}
}

func TestFindMotifsValidation(t *testing.T) {
	ss := motifFixture(t)
	if _, err := FindMotifs(ss, 0, 3); err == nil {
		t.Fatal("w=0 should error")
	}
	if _, err := FindMotifs(ss, ss.Len()+1, 3); err == nil {
		t.Fatal("w>n should error")
	}
	// top defaults to 3.
	motifs, err := FindMotifs(ss, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) > 3 {
		t.Fatalf("default top = %d", len(motifs))
	}
}

func TestFindDiscordFindsPlantedAnomaly(t *testing.T) {
	ss := motifFixture(t)
	d, err := FindDiscord(ss, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The anomaly occupies positions 65..69 (block 13 × 5).
	if d.Position < 60 || d.Position > 69 {
		t.Fatalf("discord at %d, want within the planted anomaly block (65±5)", d.Position)
	}
	if d.Distance <= 0 {
		t.Fatalf("discord distance = %v", d.Distance)
	}
}

func TestFindDiscordValidation(t *testing.T) {
	ss := motifFixture(t)
	if _, err := FindDiscord(ss, 0); err == nil {
		t.Fatal("w=0 should error")
	}
	if _, err := FindDiscord(ss, ss.Len()); err == nil {
		t.Fatal("w too large should error")
	}
}

func TestFindDiscordUniformSeriesHasZeroDistance(t *testing.T) {
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 100
	}
	table, err := Learn(MethodUniform, append(vals, 1000), 4)
	if err != nil {
		t.Fatal(err)
	}
	ss := Horizontal(timeseries.FromValues("u", 0, 1, vals), table)
	d, err := FindDiscord(ss, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Distance != 0 {
		t.Fatalf("constant series discord distance = %v, want 0", d.Distance)
	}
}
