package symbolic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"symmeter/internal/timeseries"
)

func TestVerticalAverageDefinition2(t *testing.T) {
	// Definition 2: v̄_i averages n values, t̄_i = t_{i·n}.
	s := timeseries.FromValues("x", 100, 1, []float64{1, 3, 5, 7, 9, 11, 13})
	va, err := VerticalAverage(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []timeseries.Point{{T: 101, V: 2}, {T: 103, V: 6}, {T: 105, V: 10}}
	if !reflect.DeepEqual(va.Points, want) {
		t.Fatalf("VA = %v, want %v", va.Points, want)
	}
}

func TestVerticalAverageN1Identity(t *testing.T) {
	s := timeseries.FromValues("x", 0, 5, []float64{2, 4, 8})
	va, err := VerticalAverage(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(va.Points, s.Points) {
		t.Fatalf("VA(S,1) = %v, want identity", va.Points)
	}
}

func TestVerticalAverageErrors(t *testing.T) {
	s := timeseries.FromValues("x", 0, 1, []float64{1})
	if _, err := VerticalAverage(s, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := VerticalAverage(s, -2); err == nil {
		t.Fatal("negative n should error")
	}
	va, err := VerticalAverage(s, 5)
	if err != nil || va.Len() != 0 {
		t.Fatalf("partial-only group should yield empty series: %v %v", va, err)
	}
}

// Property: VA preserves the overall mean when n divides the length.
func TestVerticalAverageMeanPreserved(t *testing.T) {
	f := func(seed int64, nn, gg uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nn%10) + 1
		groups := int(gg%20) + 1
		vals := make([]float64, n*groups)
		var sum float64
		for i := range vals {
			vals[i] = rng.Float64() * 100
			sum += vals[i]
		}
		s := timeseries.FromValues("p", 0, 1, vals)
		va, err := VerticalAverage(s, n)
		if err != nil || va.Len() != groups {
			return false
		}
		var vaSum float64
		for _, p := range va.Points {
			vaSum += p.V
		}
		return math.Abs(vaSum/float64(groups)-sum/float64(len(vals))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHorizontalSeries(t *testing.T) {
	tab := mustTable(t, 4, []float64{10, 20, 30}, 0, 40)
	s := timeseries.FromValues("x", 0, 1, []float64{5, 15, 25, 35})
	ss := Horizontal(s, tab)
	if ss.Len() != 4 {
		t.Fatalf("Len = %d", ss.Len())
	}
	if got := ss.String(); got != "00 01 10 11" {
		t.Fatalf("String = %q", got)
	}
	if !reflect.DeepEqual(ss.Strings(), []string{"00", "01", "10", "11"}) {
		t.Fatalf("Strings = %v", ss.Strings())
	}
	if ss.Points[2].T != 2 {
		t.Fatal("timestamps must be preserved")
	}
}

func TestReconstructAndCenters(t *testing.T) {
	vals := []float64{5, 15, 25, 35, 5, 15}
	tab, err := Learn(MethodMedian, vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := timeseries.FromValues("x", 0, 1, vals)
	ss := Horizontal(s, tab)
	rec, err := ss.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction error must be bounded by the largest bin width.
	for i := range vals {
		if math.Abs(rec.Points[i].V-vals[i]) > 20 {
			t.Fatalf("reconstruction too far at %d: %v vs %v", i, rec.Points[i].V, vals[i])
		}
	}
	ctr, err := ss.Centers()
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Len() != ss.Len() {
		t.Fatal("centers length mismatch")
	}
	for i := range ctr.Points {
		if ctr.Points[i].T != ss.Points[i].T {
			t.Fatal("centers must preserve timestamps")
		}
	}
}

func TestSymbolSeriesCoarsen(t *testing.T) {
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	tab, err := Learn(MethodMedian, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := timeseries.FromValues("x", 0, 1, vals)
	fine := Horizontal(s, tab)
	coarse, err := fine.Coarsen(4)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Table.K() != 4 {
		t.Fatalf("coarse table k = %d", coarse.Table.K())
	}
	// Coarse series must equal encoding directly with the coarse table.
	direct := Horizontal(s, coarse.Table)
	for i := range coarse.Points {
		if coarse.Points[i].S != direct.Points[i].S {
			t.Fatalf("coarsen/encode mismatch at %d: %v vs %v",
				i, coarse.Points[i].S, direct.Points[i].S)
		}
	}
	if _, err := fine.Coarsen(32); err == nil {
		t.Fatal("cannot coarsen upward")
	}
}

func TestReconstructionErrorShrinksWithK(t *testing.T) {
	// Larger alphabets must reconstruct more accurately (the Fig. 5/6
	// "accuracy improves with the size of the alphabet" mechanism).
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64()*0.8 + 5)
	}
	s := timeseries.FromValues("x", 0, 1, vals)
	var prev = math.Inf(1)
	for _, k := range []int{2, 4, 8, 16} {
		tab, err := Learn(MethodMedian, vals, k)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Horizontal(s, tab).Reconstruct()
		if err != nil {
			t.Fatal(err)
		}
		var mae float64
		for i := range vals {
			mae += math.Abs(rec.Points[i].V - vals[i])
		}
		mae /= float64(len(vals))
		if mae >= prev {
			t.Fatalf("MAE did not shrink at k=%d: %v >= %v", k, mae, prev)
		}
		prev = mae
	}
}
