package symbolic

import (
	"fmt"
	"math"

	"symmeter/internal/timeseries"
)

// AdaptiveEncoder implements the paper's §4 extension: "when the consumer
// consumption pattern changes drastically, e.g., due to seasonal change, or
// having an additional family member, on the fly symbol table modification
// could be useful."
//
// It wraps the online Encoder with drift detection: an exponentially
// smoothed baseline of the per-evaluation-window symbol histograms tracks
// "normal" behaviour, and each new window's histogram is compared to it
// with the Jensen–Shannon divergence (bounded in [0,1] bits, robust to
// empty bins). Smoothing matters: a single day's histogram is noisy —
// occupancy swings would masquerade as drift and churn the table. When the
// divergence exceeds Threshold for Patience consecutive windows, the table
// is relearned from a sliding buffer of recent window averages — the values
// the sensor still has before quantisation — and a TableUpdate is emitted,
// the event a sensor would use to resend its lookup table (§2: "rebuilding
// and resending the lookup table periodically or if the distribution of the
// data changes too much").
type AdaptiveEncoder struct {
	cfg AdaptiveConfig

	enc     *Encoder
	method  Method
	k       int
	updates int

	// buffer holds recent true window averages for relearning.
	buffer []float64
	// counts is the symbol histogram of the current evaluation window.
	counts  []int
	emitted int
	// baseline is the calibrated histogram (probabilities); nil until the
	// first evaluation window completes.
	baseline []float64
	// drifted counts consecutive evaluation windows above the threshold;
	// relearning requires Patience of them, so ordinary day-to-day
	// variation (occupancy swings) does not churn the table.
	drifted int
}

// AdaptiveConfig controls drift detection and relearning.
type AdaptiveConfig struct {
	// Window is the vertical aggregation in seconds.
	Window int64
	// BufferSize is how many recent window averages are kept for
	// relearning (default 960: ten days of 15-minute windows — enough that
	// a relearned table is not overfit to the last few days).
	BufferSize int
	// CheckEvery is how many symbols form one evaluation window
	// (default 96: one day of 15-minute windows).
	CheckEvery int
	// Threshold is the Jensen–Shannon divergence (bits, over the coarse
	// evaluation histogram) above which an evaluation window counts as
	// drifted (default 0.12).
	Threshold float64
	// Patience is how many consecutive drifted evaluation windows trigger a
	// relearn (default 3). Day-to-day occupancy swings produce isolated
	// drifted days; only sustained change should resend the table.
	Patience int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.BufferSize <= 0 {
		c.BufferSize = 10 * 96
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 96
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.12
	}
	if c.Patience <= 0 {
		c.Patience = 3
	}
	return c
}

// TableUpdate reports a relearned table and when it took effect.
type TableUpdate struct {
	// At is the timestamp of the last symbol encoded with the old table.
	At int64
	// Table is the new lookup table.
	Table *Table
	// Divergence is the drift measure that triggered the update.
	Divergence float64
}

// NewAdaptiveEncoder wraps an initial table (learned from history with a
// recorded method) in drift-aware encoding.
func NewAdaptiveEncoder(initial *Table, cfg AdaptiveConfig) (*AdaptiveEncoder, error) {
	if initial == nil {
		return nil, fmt.Errorf("symbolic: adaptive encoder needs an initial table")
	}
	if initial.Method() == MethodNone {
		return nil, fmt.Errorf("symbolic: adaptive encoder needs a learned table (method recorded)")
	}
	cfg = cfg.withDefaults()
	bins := initial.K()
	if bins > 1<<evalLevel {
		bins = 1 << evalLevel
	}
	return &AdaptiveEncoder{
		cfg:    cfg,
		enc:    NewEncoder(initial, cfg.Window),
		method: initial.Method(),
		k:      initial.K(),
		counts: make([]int, bins),
	}, nil
}

// Table returns the current lookup table.
func (a *AdaptiveEncoder) Table() *Table { return a.enc.Table() }

// Updates returns how many times the table has been relearned.
func (a *AdaptiveEncoder) Updates() int { return a.updates }

// evalLevel is the histogram resolution used for drift detection: drift is
// measured on symbols coarsened to at most 2^evalLevel bins, because a
// day's worth of fine-grained (k=16) histogram is dominated by sampling
// noise, while structural change shows up at 4 bins just as clearly.
const evalLevel = 2

// Push feeds one raw measurement. When a vertical window completes, its
// symbol is returned with ok=true; when drift triggered a relearn, the
// update (affecting subsequent symbols) is returned as well.
func (a *AdaptiveEncoder) Push(p timeseries.Point) (sp SymbolPoint, ok bool, update *TableUpdate, err error) {
	sp, avg, ok, err := a.enc.PushWithValue(p)
	if err != nil || !ok {
		return sp, ok, nil, err
	}
	coarse := sp.S
	if coarse.Level() > evalLevel {
		coarse, _ = coarse.Coarsen(evalLevel)
	}
	a.counts[coarse.Index()]++
	a.emitted++
	a.buffer = append(a.buffer, avg)
	if len(a.buffer) > a.cfg.BufferSize {
		a.buffer = a.buffer[len(a.buffer)-a.cfg.BufferSize:]
	}
	if a.emitted >= a.cfg.CheckEvery {
		update = a.evaluate(sp.T)
	}
	return sp, true, update, nil
}

// evaluate closes an evaluation window: calibrate the baseline if missing,
// otherwise test for drift and relearn when it exceeds the threshold.
func (a *AdaptiveEncoder) evaluate(at int64) *TableUpdate {
	hist := normalise(a.counts)
	a.emitted = 0
	for i := range a.counts {
		a.counts[i] = 0
	}
	if a.baseline == nil {
		a.baseline = hist
		return nil
	}
	div := jensenShannon(hist, a.baseline)
	if div < a.cfg.Threshold {
		// Normal window: fold it into the smoothed baseline.
		const alpha = 0.2
		for i := range a.baseline {
			a.baseline[i] = (1-alpha)*a.baseline[i] + alpha*hist[i]
		}
		a.drifted = 0
		return nil
	}
	a.drifted++
	if a.drifted < a.cfg.Patience || len(a.buffer) < a.k*4 {
		return nil
	}
	newTable, err := Learn(a.method, a.buffer, a.k)
	if err != nil {
		return nil
	}
	a.enc = NewEncoder(newTable, a.cfg.Window)
	a.updates++
	a.baseline = nil // recalibrate against the new table
	a.drifted = 0
	return &TableUpdate{At: at, Table: newTable, Divergence: div}
}

func normalise(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// jensenShannon returns the JS divergence between two distributions in
// bits; it is symmetric and bounded by 1.
func jensenShannon(p, q []float64) float64 {
	var d float64
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 {
			d += 0.5 * p[i] * math.Log2(p[i]/m)
		}
		if q[i] > 0 {
			d += 0.5 * q[i] * math.Log2(q[i]/m)
		}
	}
	return d
}

// JSDiv exposes the Jensen–Shannon divergence for diagnostics and tests.
func JSDiv(p, q []float64) float64 { return jensenShannon(p, q) }
