package symbolic

import (
	"math"
	"math/rand"
	"testing"
)

// batchFixture builds a set of spans over several independent payloads, with
// deliberate empty and inverted spans mixed in, plus the flat index sequence
// covered by the valid spans for oracle folds.
func batchFixture(t *testing.T, rng *rand.Rand, level, nPayloads int) ([]PackedSpan, []uint32) {
	t.Helper()
	var spans []PackedSpan
	var flat []uint32
	k := 1 << uint(level)
	for p := 0; p < nPayloads; p++ {
		n := 50 + rng.Intn(200)
		payload := make([]byte, (n*level+7)/8)
		idxs := make([]uint32, n)
		for i := range idxs {
			idxs[i] = uint32(rng.Intn(k))
			PackSymbolAt(payload, level, i, idxs[i])
		}
		start := rng.Intn(n)
		end := start + rng.Intn(n-start+1)
		spans = append(spans, PackedSpan{Payload: payload, Start: start, End: end})
		flat = append(flat, idxs[start:end]...)
		if p%2 == 0 { // empty and inverted spans must contribute nothing
			spans = append(spans, PackedSpan{Payload: payload, Start: n / 2, End: n / 2})
			spans = append(spans, PackedSpan{Payload: payload, Start: n - 1, End: 0})
		}
	}
	return spans, flat
}

func TestPackedRangeHistogramBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, level := range []int{1, 2, 4, 5, 8, 11} {
		spans, flat := batchFixture(t, rng, level, 7)
		k := 1 << uint(level)
		hist := make([]uint64, k)
		PackedRangeHistogramBatch(hist, level, spans)
		want := make([]uint64, k)
		for _, idx := range flat {
			want[idx]++
		}
		for s := range want {
			if hist[s] != want[s] {
				t.Fatalf("level %d: hist[%d] = %d, want %d", level, s, hist[s], want[s])
			}
		}
	}
	// No spans at all: hist untouched.
	hist := []uint64{7, 7}
	PackedRangeHistogramBatch(hist, 1, nil)
	if hist[0] != 7 || hist[1] != 7 {
		t.Fatalf("empty batch modified hist: %v", hist)
	}
}

func TestPackedRangeAggregateBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, level := range []int{2, 4, 9, 14} {
		spans, flat := batchFixture(t, rng, level, 5)
		k := 1 << uint(level)
		values := make([]float64, k)
		for i := range values {
			values[i] = rng.NormFloat64() * 10
		}
		count, sum, minV, maxV := PackedRangeAggregateBatch(values, level, spans)
		if count != uint64(len(flat)) {
			t.Fatalf("level %d: count = %d, want %d", level, count, len(flat))
		}
		if len(flat) == 0 {
			continue
		}
		var wantSum float64
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		for _, idx := range flat {
			v := values[idx]
			wantSum += v
			wantMin = math.Min(wantMin, v)
			wantMax = math.Max(wantMax, v)
		}
		if minV != wantMin || maxV != wantMax {
			t.Fatalf("level %d: min/max = %v/%v, want %v/%v", level, minV, maxV, wantMin, wantMax)
		}
		if math.Abs(sum-wantSum) > 1e-9*(1+math.Abs(wantSum)) {
			t.Fatalf("level %d: sum = %v, want %v", level, sum, wantSum)
		}
	}
	// All-empty batch: count 0.
	if c, s, _, _ := PackedRangeAggregateBatch(make([]float64, 4), 2, []PackedSpan{{Payload: []byte{0xFF}, Start: 2, End: 2}}); c != 0 || s != 0 {
		t.Fatalf("empty batch: count %d sum %v, want 0 0", c, s)
	}
}

func TestHistogramAggregate(t *testing.T) {
	values := []float64{-3.5, 0, 2.25, 100, -8, 4, 4, 1}
	hist := []uint64{0, 2, 3, 0, 1, 0, 5, 0}
	count, sum, minV, maxV := HistogramAggregate(hist, values)
	if count != 11 {
		t.Fatalf("count = %d, want 11", count)
	}
	wantSum := 0*2 + 2.25*3 + (-8)*1 + 4*5.0
	if sum != wantSum {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
	// Extremes come only from occupied bins: -3.5 (bin 0) and 100 (bin 3)
	// have zero counts and must not leak in.
	if minV != -8 || maxV != 4 {
		t.Fatalf("min/max = %v/%v, want -8/4", minV, maxV)
	}
	if c, s, _, _ := HistogramAggregate(make([]uint64, 8), values); c != 0 || s != 0 {
		t.Fatalf("empty histogram: count %d sum %v, want 0 0", c, s)
	}
	// Large counts: sum uses v·c, so a single bin with a big count must not
	// lose precision against repeated addition within float64 exactness.
	if _, s, _, _ := HistogramAggregate([]uint64{0, 1 << 20}, []float64{0, 0.5}); s != float64(1<<20)*0.5 {
		t.Fatalf("big-count sum = %v", s)
	}
}
