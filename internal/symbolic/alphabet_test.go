package symbolic

import (
	"testing"
	"testing/quick"
)

func TestSymbolString(t *testing.T) {
	cases := []struct {
		index, level int
		want         string
	}{
		{0, 1, "0"}, {1, 1, "1"},
		{0, 2, "00"}, {1, 2, "01"}, {2, 2, "10"}, {3, 2, "11"},
		{5, 3, "101"}, {5, 5, "00101"},
		{0, 0, "ε"},
	}
	for _, c := range cases {
		if got := NewSymbol(c.index, c.level).String(); got != c.want {
			t.Errorf("NewSymbol(%d,%d) = %q, want %q", c.index, c.level, got, c.want)
		}
	}
}

func TestParseSymbolRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1", "101", "00101", "111111"} {
		sym, err := ParseSymbol(s)
		if err != nil {
			t.Fatalf("ParseSymbol(%q): %v", s, err)
		}
		if sym.String() != s {
			t.Fatalf("round trip %q -> %q", s, sym.String())
		}
	}
}

func TestParseSymbolErrors(t *testing.T) {
	if _, err := ParseSymbol("012"); err == nil {
		t.Fatal("expected error on invalid bit")
	}
	long := make([]byte, MaxLevel+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := ParseSymbol(string(long)); err == nil {
		t.Fatal("expected error on too-long symbol")
	}
	if s, err := ParseSymbol(""); err != nil || s.Level() != 0 {
		t.Fatalf("empty symbol: %v %v", s, err)
	}
}

func TestNewSymbolPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSymbol(2, 1) },
		func() { NewSymbol(-1, 1) },
		func() { NewSymbol(0, -1) },
		func() { NewSymbol(0, MaxLevel+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestCoarsenKeepsLeadingBits(t *testing.T) {
	s, _ := ParseSymbol("101")
	c, err := s.Coarsen(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "1" {
		t.Fatalf("Coarsen = %q, want \"1\"", c.String())
	}
	c2, _ := s.Coarsen(3)
	if c2 != s {
		t.Fatal("coarsen to same level should be identity")
	}
	if _, err := s.Coarsen(4); err == nil {
		t.Fatal("cannot coarsen upward")
	}
	if _, err := s.Coarsen(-1); err == nil {
		t.Fatal("negative level")
	}
}

func TestCoversPartialOrder(t *testing.T) {
	s0, _ := ParseSymbol("0")
	s01, _ := ParseSymbol("01")
	s00, _ := ParseSymbol("00")
	s1, _ := ParseSymbol("1")
	s101, _ := ParseSymbol("101")

	// The paper: "'0' being equal to '01', '00' and so on".
	if !s0.Covers(s01) || !s0.Covers(s00) {
		t.Fatal("'0' must cover '01' and '00'")
	}
	if s0.Covers(s1) || s0.Covers(s101) {
		t.Fatal("'0' must not cover '1' or '101'")
	}
	if !s1.Covers(s101) {
		t.Fatal("'1' must cover '101'")
	}
	if s01.Covers(s0) {
		t.Fatal("finer symbol cannot cover coarser")
	}
	if !s0.Covers(s0) {
		t.Fatal("Covers must be reflexive")
	}
	if !s0.Comparable(s01) || !s01.Comparable(s0) || s00.Comparable(s01) {
		t.Fatal("Comparable symmetry/incomparability wrong")
	}
}

func TestRefinements(t *testing.T) {
	s, _ := ParseSymbol("10")
	lo, hi := s.Refinements()
	if lo.String() != "100" || hi.String() != "101" {
		t.Fatalf("Refinements = %q,%q", lo.String(), hi.String())
	}
	if !s.Covers(lo) || !s.Covers(hi) {
		t.Fatal("a symbol must cover its refinements")
	}
}

func TestAlphabet(t *testing.T) {
	a, err := NewAlphabet(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 8 || a.Level() != 3 {
		t.Fatalf("alphabet = %+v", a)
	}
	syms := a.Symbols()
	if len(syms) != 8 || syms[0].String() != "000" || syms[7].String() != "111" {
		t.Fatalf("Symbols = %v", syms)
	}
}

func TestNewAlphabetRejectsNonPowers(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, 6, 7, 9, 100, -4} {
		if _, err := NewAlphabet(k); err == nil {
			t.Errorf("NewAlphabet(%d) should fail", k)
		}
	}
	for _, k := range []int{2, 4, 8, 16, 32, 1024} {
		if _, err := NewAlphabet(k); err != nil {
			t.Errorf("NewAlphabet(%d): %v", k, err)
		}
	}
}

// Property: Coarsen then Coarsen equals one-shot Coarsen (composition).
func TestCoarsenComposesProperty(t *testing.T) {
	f := func(idx uint32, l1, l2, l3 uint8) bool {
		a := int(l1%20) + 10 // start level 10..29
		b := int(l2) % (a + 1)
		c := int(l3) % (b + 1)
		s := Symbol{index: idx & (1<<uint(a) - 1), level: uint8(a)}
		viaB, err1 := s.Coarsen(b)
		if err1 != nil {
			return false
		}
		viaBC, err2 := viaB.Coarsen(c)
		direct, err3 := s.Coarsen(c)
		if err2 != nil || err3 != nil {
			return false
		}
		return viaBC == direct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a coarsened symbol covers the original.
func TestCoarsenCoversProperty(t *testing.T) {
	f := func(idx uint32, l1, l2 uint8) bool {
		a := int(l1%20) + 5
		b := int(l2) % (a + 1)
		s := Symbol{index: idx & (1<<uint(a) - 1), level: uint8(a)}
		c, err := s.Coarsen(b)
		if err != nil {
			return false
		}
		return c.Covers(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
