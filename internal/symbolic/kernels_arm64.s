//go:build arm64 && !noasm

#include "textflag.h"

// NEON kernels for the level-4 packed payload layout (two symbols per byte,
// first symbol in the high nibble). Like the AVX2 kernels these are pure
// integer transforms; float aggregates are derived from their results in Go,
// which is what keeps dispatch paths bit-exact.

// func histPackedL4NEON(p *byte, n int, hist *uint64)
//
// Two passes over p[0:n] (symbols 0-7, then 8-15), each keeping 8 per-symbol
// byte-lane accumulators V0-V7: per 16-byte chunk, VCMEQ against a
// broadcast of the symbol value turns matches into -1 lanes and VSUB
// accumulates them. Lanes flush through VUADDLV into the uint64 bins every
// 120 chunks (each chunk adds at most 2 per lane; 240 < 255). n must be a
// positive multiple of 16.
TEXT ·histPackedL4NEON(SB), NOSPLIT, $0-24
	MOVD p+0(FP), R8
	MOVD n+8(FP), R9
	MOVD hist+16(FP), R10
	MOVD $0x0f, R11
	VDUP R11, V28.B16 // low-nibble mask
	MOVD $0, R12      // pass: 0 counts symbols 0-7, 1 counts 8-15

pass:
	// Broadcast this pass's 8 symbol values into V8-V15.
	LSL  $3, R12, R13 // first symbol value of the pass
	VDUP R13, V8.B16
	ADD  $1, R13
	VDUP R13, V9.B16
	ADD  $1, R13
	VDUP R13, V10.B16
	ADD  $1, R13
	VDUP R13, V11.B16
	ADD  $1, R13
	VDUP R13, V12.B16
	ADD  $1, R13
	VDUP R13, V13.B16
	ADD  $1, R13
	VDUP R13, V14.B16
	ADD  $1, R13
	VDUP R13, V15.B16
	LSL  $6, R12, R13
	ADD  R13, R10, R14 // this pass's 8 hist bins
	MOVD R8, R0
	MOVD R9, R1

group:
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	LSR  $4, R1, R2 // chunks left
	MOVD $120, R3
	CMP  R3, R2
	CSEL LT, R2, R3, R2 // chunks this group = min(chunks left, 120)
	LSL  $4, R2, R3
	SUB  R3, R1, R1

chunk:
	VLD1.P 16(R0), [V16.B16]
	VUSHR $4, V16.B16, V17.B16 // high nibbles: first symbol of each byte
	VAND V28.B16, V16.B16, V16.B16 // low nibbles: second symbol
	VCMEQ V8.B16, V16.B16, V18.B16
	VSUB V18.B16, V0.B16, V0.B16
	VCMEQ V8.B16, V17.B16, V18.B16
	VSUB V18.B16, V0.B16, V0.B16
	VCMEQ V9.B16, V16.B16, V18.B16
	VSUB V18.B16, V1.B16, V1.B16
	VCMEQ V9.B16, V17.B16, V18.B16
	VSUB V18.B16, V1.B16, V1.B16
	VCMEQ V10.B16, V16.B16, V18.B16
	VSUB V18.B16, V2.B16, V2.B16
	VCMEQ V10.B16, V17.B16, V18.B16
	VSUB V18.B16, V2.B16, V2.B16
	VCMEQ V11.B16, V16.B16, V18.B16
	VSUB V18.B16, V3.B16, V3.B16
	VCMEQ V11.B16, V17.B16, V18.B16
	VSUB V18.B16, V3.B16, V3.B16
	VCMEQ V12.B16, V16.B16, V18.B16
	VSUB V18.B16, V4.B16, V4.B16
	VCMEQ V12.B16, V17.B16, V18.B16
	VSUB V18.B16, V4.B16, V4.B16
	VCMEQ V13.B16, V16.B16, V18.B16
	VSUB V18.B16, V5.B16, V5.B16
	VCMEQ V13.B16, V17.B16, V18.B16
	VSUB V18.B16, V5.B16, V5.B16
	VCMEQ V14.B16, V16.B16, V18.B16
	VSUB V18.B16, V6.B16, V6.B16
	VCMEQ V14.B16, V17.B16, V18.B16
	VSUB V18.B16, V6.B16, V6.B16
	VCMEQ V15.B16, V16.B16, V18.B16
	VSUB V18.B16, V7.B16, V7.B16
	VCMEQ V15.B16, V17.B16, V18.B16
	VSUB V18.B16, V7.B16, V7.B16
	SUB  $1, R2, R2
	CBNZ R2, chunk

	// Flush the 8 byte-lane accumulators into the uint64 bins.
	VUADDLV V0.B16, V19
	VMOV V19.D[0], R3
	MOVD 0(R14), R4
	ADD  R3, R4
	MOVD R4, 0(R14)
	VUADDLV V1.B16, V19
	VMOV V19.D[0], R3
	MOVD 8(R14), R4
	ADD  R3, R4
	MOVD R4, 8(R14)
	VUADDLV V2.B16, V19
	VMOV V19.D[0], R3
	MOVD 16(R14), R4
	ADD  R3, R4
	MOVD R4, 16(R14)
	VUADDLV V3.B16, V19
	VMOV V19.D[0], R3
	MOVD 24(R14), R4
	ADD  R3, R4
	MOVD R4, 24(R14)
	VUADDLV V4.B16, V19
	VMOV V19.D[0], R3
	MOVD 32(R14), R4
	ADD  R3, R4
	MOVD R4, 32(R14)
	VUADDLV V5.B16, V19
	VMOV V19.D[0], R3
	MOVD 40(R14), R4
	ADD  R3, R4
	MOVD R4, 40(R14)
	VUADDLV V6.B16, V19
	VMOV V19.D[0], R3
	MOVD 48(R14), R4
	ADD  R3, R4
	MOVD R4, 48(R14)
	VUADDLV V7.B16, V19
	VMOV V19.D[0], R3
	MOVD 56(R14), R4
	ADD  R3, R4
	MOVD R4, 56(R14)

	CBNZ R1, group

	ADD  $1, R12
	CMP  $2, R12
	BNE  pass
	RET

// func unpackPackedL4NEON(p *byte, n int, dst *Symbol)
//
// Expands p[0:n] into 2n level-4 Symbols at dst. Per 8 payload bytes: split
// nibbles, VZIP1/VZIP2 interleave them back into stream order (high nibble
// first), widen bytes to qwords through the VUSHLL ladder, OR in the level-4
// Symbol image, store 16 Symbols. n must be a positive multiple of 8.
TEXT ·unpackPackedL4NEON(SB), NOSPLIT, $0-24
	MOVD p+0(FP), R8
	MOVD n+8(FP), R9
	MOVD dst+16(FP), R10
	MOVD $0x0f, R11
	VDUP R11, V28.B16 // low-nibble mask
	MOVD $0x400000000, R11
	VDUP R11, V30.D2  // level-4 Symbol image: index 0, level byte 4

unpackLoop:
	MOVD.P 8(R8), R12
	VMOV R12, V0.D[0]
	VUSHR $4, V0.B8, V1.B8 // high nibbles
	VAND V28.B8, V0.B8, V0.B8 // low nibbles
	VZIP1 V0.B8, V1.B8, V2.B8 // [h0 l0 .. h3 l3]: symbols 0-7
	VZIP2 V0.B8, V1.B8, V3.B8 // symbols 8-15

	VUSHLL $0, V2.B8, V4.H8
	VUSHLL $0, V4.H4, V5.S4
	VUSHLL2 $0, V4.H8, V6.S4
	VUSHLL $0, V5.S2, V16.D2
	VUSHLL2 $0, V5.S4, V17.D2
	VUSHLL $0, V6.S2, V18.D2
	VUSHLL2 $0, V6.S4, V19.D2
	VORR V30.B16, V16.B16, V16.B16
	VORR V30.B16, V17.B16, V17.B16
	VORR V30.B16, V18.B16, V18.B16
	VORR V30.B16, V19.B16, V19.B16
	VST1.P [V16.B16, V17.B16, V18.B16, V19.B16], 64(R10)

	VUSHLL $0, V3.B8, V4.H8
	VUSHLL $0, V4.H4, V5.S4
	VUSHLL2 $0, V4.H8, V6.S4
	VUSHLL $0, V5.S2, V16.D2
	VUSHLL2 $0, V5.S4, V17.D2
	VUSHLL $0, V6.S2, V18.D2
	VUSHLL2 $0, V6.S4, V19.D2
	VORR V30.B16, V16.B16, V16.B16
	VORR V30.B16, V17.B16, V17.B16
	VORR V30.B16, V18.B16, V18.B16
	VORR V30.B16, V19.B16, V19.B16
	VST1.P [V16.B16, V17.B16, V18.B16, V19.B16], 64(R10)

	SUBS $8, R9, R9
	BNE  unpackLoop
	RET
