// Package symbolic implements the paper's core contribution: converting
// smart-meter time series into sequences of variable-length binary symbols
// via vertical segmentation (temporal averaging, Definition 2) and
// horizontal segmentation (value quantization through a learned lookup
// table, Definition 3), with online conversion, reconstruction, resolution
// conversion, and bit-level compression.
package symbolic

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Symbol is one variable-length binary symbol, e.g. '0', '101' or '00101'
// (paper §2). A symbol at level L (length L bits) names one of 2^L subranges
// produced by recursively halving the value range L times (paper Fig. 1).
//
// The alphabet has a partial order: '0' covers '00' and '01' — a shorter
// symbol is a coarser version of any symbol it prefixes. The zero value is
// the empty symbol (level 0), which covers everything.
type Symbol struct {
	// index is the bin number within the symbol's level, in [0, 2^level).
	index uint32
	// level is the number of bits.
	level uint8
}

// MaxLevel bounds the symbol length; 30 bits ≈ one-billion-bin resolution is
// far beyond any practical lookup table.
const MaxLevel = 30

// NewSymbol returns the symbol for bin `index` at the given level.
// It panics if index or level are out of range (programmer error: indices
// come from lookup-table encoding which is range-checked).
func NewSymbol(index, level int) Symbol {
	if level < 0 || level > MaxLevel {
		panic(fmt.Sprintf("symbolic: level %d out of range [0,%d]", level, MaxLevel))
	}
	if index < 0 || index >= 1<<uint(level) {
		panic(fmt.Sprintf("symbolic: index %d out of range for level %d", index, level))
	}
	return Symbol{index: uint32(index), level: uint8(level)}
}

// ParseSymbol parses a binary string like "101" into a Symbol.
func ParseSymbol(s string) (Symbol, error) {
	if len(s) > MaxLevel {
		return Symbol{}, fmt.Errorf("symbolic: symbol %q longer than %d bits", s, MaxLevel)
	}
	var idx uint32
	for _, c := range s {
		switch c {
		case '0':
			idx <<= 1
		case '1':
			idx = idx<<1 | 1
		default:
			return Symbol{}, fmt.Errorf("symbolic: invalid bit %q in symbol %q", c, s)
		}
	}
	return Symbol{index: idx, level: uint8(len(s))}, nil
}

// Index returns the bin number within the symbol's level.
func (s Symbol) Index() int { return int(s.index) }

// Level returns the number of bits (the resolution).
func (s Symbol) Level() int { return int(s.level) }

// String renders the symbol as its binary string, e.g. "011". The empty
// symbol renders as "ε".
func (s Symbol) String() string {
	if s.level == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := int(s.level) - 1; i >= 0; i-- {
		if s.index>>uint(i)&1 == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Coarsen returns the symbol truncated to the given lower level — the
// paper's "higher resolution symbols can easily be converted to lower
// resolution". Coarsening keeps the leading bits: '101' coarsened to level 1
// is '1'.
func (s Symbol) Coarsen(toLevel int) (Symbol, error) {
	if toLevel < 0 || toLevel > int(s.level) {
		return Symbol{}, fmt.Errorf("symbolic: cannot coarsen level-%d symbol to level %d", s.level, toLevel)
	}
	return Symbol{index: s.index >> uint(int(s.level)-toLevel), level: uint8(toLevel)}, nil
}

// Covers reports whether s is an equal-or-coarser version of t, i.e. whether
// the binary string of s is a prefix of t's — the paper's partial order
// where '0' equals '01', '00' and so on.
func (s Symbol) Covers(t Symbol) bool {
	if s.level > t.level {
		return false
	}
	return t.index>>uint(int(t.level)-int(s.level)) == s.index
}

// Comparable reports whether s and t are ordered by the partial order in
// either direction (one covers the other).
func (s Symbol) Comparable(t Symbol) bool { return s.Covers(t) || t.Covers(s) }

// Refinements returns the two immediate refinements of s (one level deeper):
// appending '0' and '1'.
func (s Symbol) Refinements() (lo, hi Symbol) {
	if int(s.level) >= MaxLevel {
		panic("symbolic: cannot refine past MaxLevel")
	}
	return Symbol{index: s.index << 1, level: s.level + 1},
		Symbol{index: s.index<<1 | 1, level: s.level + 1}
}

// Alphabet describes the symbol set A of a lookup table: all 2^Level symbols
// at a fixed level. The paper stores symbols as binary numbers and uses only
// power-of-two alphabet sizes.
type Alphabet struct {
	level int
}

// ErrNotPowerOfTwo reports an alphabet size that is not a power of two.
var ErrNotPowerOfTwo = errors.New("symbolic: alphabet size must be a power of two >= 2")

// NewAlphabet returns the alphabet of the given size k (a power of two >= 2).
func NewAlphabet(k int) (Alphabet, error) {
	if k < 2 || bits.OnesCount(uint(k)) != 1 {
		return Alphabet{}, fmt.Errorf("%w: got %d", ErrNotPowerOfTwo, k)
	}
	return Alphabet{level: bits.TrailingZeros(uint(k))}, nil
}

// Size returns k = 2^Level.
func (a Alphabet) Size() int { return 1 << uint(a.level) }

// Level returns log2(k), the symbol length in bits.
func (a Alphabet) Level() int { return a.level }

// Symbols enumerates all symbols of the alphabet in value order.
func (a Alphabet) Symbols() []Symbol {
	out := make([]Symbol, a.Size())
	for i := range out {
		out[i] = Symbol{index: uint32(i), level: uint8(a.level)}
	}
	return out
}
