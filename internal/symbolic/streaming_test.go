package symbolic

import (
	"math"
	"math/rand"
	"testing"
)

func TestStreamingBuilderApproximatesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sb, err := NewStreamingTableBuilder(8)
	if err != nil {
		t.Fatal(err)
	}
	var values []float64
	for i := 0; i < 30000; i++ {
		v := math.Exp(rng.NormFloat64()*0.7 + 5)
		sb.Push(v)
		values = append(values, v)
	}
	approx, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Learn(MethodMedian, values, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The encodings must agree on the vast majority of values.
	agree := 0
	for _, v := range values[:5000] {
		if approx.Encode(v) == exact.Encode(v) {
			agree++
		}
	}
	if agree < 4700 {
		t.Fatalf("streaming/batch encodings agree on %d/5000", agree)
	}
	// And the memory story must hold: O(k), not O(n).
	if sb.MemoryFootprint() > 200 {
		t.Fatalf("memory footprint = %d floats", sb.MemoryFootprint())
	}
	if sb.Count() != 30000 {
		t.Fatalf("Count = %d", sb.Count())
	}
}

func TestStreamingBuilderValidation(t *testing.T) {
	if _, err := NewStreamingTableBuilder(3); err == nil {
		t.Fatal("k=3 should error")
	}
	sb, err := NewStreamingTableBuilder(4)
	if err != nil {
		t.Fatal(err)
	}
	sb.Push(1)
	sb.Push(math.NaN()) // ignored
	if sb.Count() != 1 {
		t.Fatalf("NaN must be ignored; Count = %d", sb.Count())
	}
	if _, err := sb.Build(); err == nil {
		t.Fatal("too little data should error")
	}
}

func TestStreamingBuilderReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sb, _ := NewStreamingTableBuilder(16)
	var values []float64
	for i := 0; i < 20000; i++ {
		v := rng.Float64() * 1000
		sb.Push(v)
		values = append(values, v)
	}
	table, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if table.Method() != MethodMedian {
		t.Fatalf("method = %v", table.Method())
	}
	var mae float64
	for _, v := range values[:2000] {
		r, err := table.Value(table.Encode(v))
		if err != nil {
			t.Fatal(err)
		}
		mae += math.Abs(r - v)
	}
	mae /= 2000
	// 16 equal-mass bins over U[0,1000]: expected |err| ≈ width/4 ≈ 15.6.
	if mae > 25 {
		t.Fatalf("reconstruction MAE = %v, want < 25", mae)
	}
}

func TestLloydMaxBeatsHeuristicsOnMSE(t *testing.T) {
	// Lloyd–Max is the MSE-optimal scalar quantiser; on bimodal data it must
	// beat uniform and median on squared reconstruction error.
	rng := rand.New(rand.NewSource(9))
	values := make([]float64, 8000)
	for i := range values {
		if i%2 == 0 {
			values[i] = rng.NormFloat64()*20 + 100
		} else {
			values[i] = rng.NormFloat64()*50 + 2000
		}
	}
	mse := func(m Method) float64 {
		tab, err := Learn(m, values, 4)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range values {
			r, err := tab.Value(tab.Encode(v))
			if err != nil {
				t.Fatal(err)
			}
			d := r - v
			sum += d * d
		}
		return sum / float64(len(values))
	}
	lm, med, uni := mse(MethodLloydMax), mse(MethodMedian), mse(MethodUniform)
	if lm > med || lm > uni {
		t.Fatalf("Lloyd-Max MSE %v not best (median %v, uniform %v)", lm, med, uni)
	}
}

func TestLloydMaxMethodPlumbing(t *testing.T) {
	m, err := ParseMethod("lloydmax")
	if err != nil || m != MethodLloydMax {
		t.Fatalf("ParseMethod = %v, %v", m, err)
	}
	if MethodLloydMax.String() != "lloydmax" {
		t.Fatal("String")
	}
	tab, err := Learn(MethodLloydMax, []float64{1, 2, 3, 100, 200, 300}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Encode(2).Index() != 0 || tab.Encode(200).Index() != 1 {
		t.Fatalf("Lloyd-Max separators = %v", tab.Separators())
	}
}
