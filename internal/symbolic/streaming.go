package symbolic

import (
	"fmt"
	"math"

	"symmeter/internal/stats"
)

// StreamingTableBuilder learns a median lookup table in O(k) memory using
// one P² quantile estimator per separator — the sensor-side variant of
// TableBuilder, which buffers every historical value. The paper's setting
// is exactly this: "the lookup table is built once at the sensor level",
// and a meter has kilobytes, not two days of 1 Hz floats.
//
// Only MethodMedian is supported: uniform needs just the maximum (track it
// yourself) and distinctmedian needs a distinct-value set, which has no
// bounded-memory sketch with exact semantics.
type StreamingTableBuilder struct {
	k          int
	estimators []*stats.P2Quantile
	// binSum/binCount approximate per-bin representatives against the
	// *current* estimates; exactness is not required (representatives are a
	// reconstruction nicety, re-estimated continuously).
	binSum   []float64
	binCount []int
	min, max float64
	count    int
}

// NewStreamingTableBuilder prepares k-1 P² estimators for a k-symbol
// median table.
func NewStreamingTableBuilder(k int) (*StreamingTableBuilder, error) {
	if _, err := NewAlphabet(k); err != nil {
		return nil, err
	}
	b := &StreamingTableBuilder{
		k:        k,
		binSum:   make([]float64, k),
		binCount: make([]int, k),
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
	for i := 1; i < k; i++ {
		e, err := stats.NewP2Quantile(float64(i) / float64(k))
		if err != nil {
			return nil, err
		}
		b.estimators = append(b.estimators, e)
	}
	return b, nil
}

// Push feeds one historical measurement value.
func (b *StreamingTableBuilder) Push(v float64) {
	if math.IsNaN(v) {
		return
	}
	b.count++
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	for _, e := range b.estimators {
		e.Add(v)
	}
	// Approximate representative accumulation against current estimates.
	bin := 0
	for i, e := range b.estimators {
		if v > e.Value() {
			bin = i + 1
		}
	}
	b.binSum[bin] += v
	b.binCount[bin]++
}

// Count returns how many values were pushed.
func (b *StreamingTableBuilder) Count() int { return b.count }

// MemoryFootprint returns the approximate number of float64 values held —
// the quantity the sensor cares about (contrast with TableBuilder, which
// holds Count() floats).
func (b *StreamingTableBuilder) MemoryFootprint() int {
	// 15 floats per P² estimator (markers, positions, desired positions)
	// plus the per-bin accumulators and min/max.
	return 15*len(b.estimators) + 2*b.k + 2
}

// Build produces the approximate median table. It needs enough data for
// the P² estimators to be meaningful (at least ~5k values).
func (b *StreamingTableBuilder) Build() (*Table, error) {
	if b.count < 5*b.k {
		return nil, fmt.Errorf("symbolic: streaming builder needs at least %d values, has %d", 5*b.k, b.count)
	}
	seps := make([]float64, b.k-1)
	for i, e := range b.estimators {
		seps[i] = e.Value()
	}
	// P² estimates are independent; enforce monotonicity defensively.
	for i := 1; i < len(seps); i++ {
		if seps[i] < seps[i-1] {
			seps[i] = seps[i-1]
		}
	}
	t, err := NewTable(b.k, seps, b.min, b.max)
	if err != nil {
		return nil, err
	}
	t.method = MethodMedian
	repr := make([]float64, b.k)
	for i := range repr {
		if b.binCount[i] > 0 {
			repr[i] = b.binSum[i] / float64(b.binCount[i])
		} else {
			repr[i] = math.NaN()
		}
	}
	if err := t.SetRepresentatives(repr); err != nil {
		return nil, err
	}
	return t, nil
}
