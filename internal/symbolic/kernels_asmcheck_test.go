package symbolic

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAssemblyReferenced cross-references every assembly file against its
// architecture's Go declarations, in both directions: a TEXT symbol with no
// Go declaration is dead weight that would bit-rot silently (the linker only
// complains in the opposite direction), and a body-less Go declaration with
// no TEXT symbol is a link error waiting for that arch's build. The check is
// purely textual, so it runs — and guards both architectures — regardless of
// the host GOARCH.
func TestAssemblyReferenced(t *testing.T) {
	textRE := regexp.MustCompile(`(?m)^TEXT ·([A-Za-z0-9_]+)\(SB\)`)
	// A declaration line: "func name(...)" with a result list or nothing at
	// the end, but no opening brace — an assembly-backed prototype.
	declRE := regexp.MustCompile(`(?m)^func ([A-Za-z0-9_]+)\([^{\n]*$`)

	asmFiles, err := filepath.Glob("*.s")
	if err != nil {
		t.Fatal(err)
	}
	if len(asmFiles) == 0 {
		t.Skip("no assembly files in package")
	}
	for _, asmFile := range asmFiles {
		arch := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(asmFile), "kernels_"), ".s")
		goFile := "kernels_" + arch + ".go"
		asmSrc, err := os.ReadFile(asmFile)
		if err != nil {
			t.Fatal(err)
		}
		goSrc, err := os.ReadFile(goFile)
		if err != nil {
			t.Fatalf("%s has no companion %s: %v", asmFile, goFile, err)
		}

		texts := map[string]bool{}
		for _, m := range textRE.FindAllStringSubmatch(string(asmSrc), -1) {
			texts[m[1]] = true
		}
		decls := map[string]bool{}
		for _, m := range declRE.FindAllStringSubmatch(string(goSrc), -1) {
			decls[m[1]] = true
		}
		if len(texts) == 0 {
			t.Errorf("%s defines no TEXT symbols", asmFile)
		}
		for name := range texts {
			if !decls[name] {
				t.Errorf("%s: TEXT ·%s has no declaration in %s — unreferenced assembly", asmFile, name, goFile)
			}
		}
		for name := range decls {
			if !texts[name] {
				t.Errorf("%s: func %s declared without body but %s has no TEXT ·%s", goFile, name, asmFile, name)
			}
		}
	}
}
