//go:build unix

package symbolic

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// The compressed-domain kernels operate on whatever []byte the block store
// hands them — which, once the storage layer spills sealed blocks, is a
// read-only shared mapping of a segment file. This test pins that contract
// at the kernel level: every kernel must produce bit-identical results over
// an mmapped copy of a payload, including the word-at-a-time paths that
// read the payload 8 bytes at a time via binary.BigEndian.Uint64.
func TestKernelsOverMmappedPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, level := range []int{1, 2, 4, 8, 12} {
		k := 1 << uint(level)
		const n = 1337
		heap := make([]byte, (n*level+7)/8)
		for pos := 0; pos < n; pos++ {
			PackSymbolAt(heap, level, pos, uint32(rng.Intn(k)))
		}
		values := make([]float64, k)
		for i := range values {
			values[i] = float64(i)*1.5 - 3
		}

		path := filepath.Join(t.TempDir(), "payload.bin")
		if err := os.WriteFile(path, heap, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := syscall.Mmap(int(f.Fd()), 0, len(heap), syscall.PROT_READ, syscall.MAP_SHARED)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		defer syscall.Munmap(mapped)

		ranges := [][2]int{{0, n}, {3, n - 5}, {17, 18}, {130, 1031}}
		for _, r := range ranges {
			start, end := r[0], r[1]
			hh := make([]uint64, k)
			hm := make([]uint64, k)
			PackedRangeHistogram(hh, heap, level, start, end)
			PackedRangeHistogram(hm, mapped, level, start, end)
			for s := range hh {
				if hh[s] != hm[s] {
					t.Fatalf("level %d range %v symbol %d: heap %d, mmap %d", level, r, s, hh[s], hm[s])
				}
			}
			sh, minH, maxH := PackedRangeAggregate(values, heap, level, start, end)
			sm, minM, maxM := PackedRangeAggregate(values, mapped, level, start, end)
			if math.Float64bits(sh) != math.Float64bits(sm) ||
				math.Float64bits(minH) != math.Float64bits(minM) ||
				math.Float64bits(maxH) != math.Float64bits(maxM) {
				t.Fatalf("level %d range %v: aggregate heap (%v,%v,%v) vs mmap (%v,%v,%v)",
					level, r, sh, minH, maxH, sm, minM, maxM)
			}
			if level == 1 || level == 2 || level == 4 {
				byteSums := make([]float64, 256)
				spb := 8 / level
				mask := k - 1
				for b := 0; b < 256; b++ {
					var sum float64
					for j := 0; j < spb; j++ {
						sum += values[b>>uint(8-(j+1)*level)&mask]
					}
					byteSums[b] = sum
				}
				lh := PackedRangeSumLUT(byteSums, values, heap, level, start, end)
				lm := PackedRangeSumLUT(byteSums, values, mapped, level, start, end)
				if math.Float64bits(lh) != math.Float64bits(lm) {
					t.Fatalf("level %d range %v: LUT sum heap %v vs mmap %v", level, r, lh, lm)
				}
			}
		}
	}
}
