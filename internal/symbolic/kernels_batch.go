package symbolic

// Batch kernel entry points. The query engine used to fold one VisitRange
// callback — one kernel call, one closure dispatch — per block; these let it
// gather a whole sealed chain's worth of spans per meter and make one kernel
// call, so per-call overhead (bounds checks, dispatch, edge handling) is
// amortized across blocks and the assembly tiers see long contiguous runs.
//
// The float aggregate is deliberately NOT computed span-by-span: the batch
// path folds every span into one integer histogram and derives (count, sum,
// min, max) from it in HistogramAggregate. Since the assembly kernels only
// ever produce integer histograms, every dispatch path feeds bit-identical
// integers into the same Go float fold — cross-path bit-exactness is
// structural, not a rounding coincidence.

// PackedSpan names the half-open symbol range [Start, End) of one headerless
// packed payload.
type PackedSpan struct {
	Payload []byte
	Start   int
	End     int
}

// PackedRangeHistogramBatch adds the symbol counts of every span into hist,
// which must have at least 1<<level entries. All spans must share the same
// level. Empty or inverted spans contribute nothing.
func PackedRangeHistogramBatch(hist []uint64, level int, spans []PackedSpan) {
	for _, sp := range spans {
		PackedRangeHistogram(hist, sp.Payload, level, sp.Start, sp.End)
	}
}

// PackedRangeAggregateBatch folds every span into (count, sum, min, max)
// over values[idx]. It is the batch fold for levels too fine-grained for a
// histogram; values must have 1<<level entries. count is 0 when every span
// is empty, and minV/maxV are then meaningless.
func PackedRangeAggregateBatch(values []float64, level int, spans []PackedSpan) (count uint64, sum, minV, maxV float64) {
	first := true
	for _, sp := range spans {
		if sp.Start >= sp.End {
			continue
		}
		s, lo, hi := PackedRangeAggregate(values, sp.Payload, level, sp.Start, sp.End)
		count += uint64(sp.End - sp.Start)
		sum += s
		if first {
			minV, maxV = lo, hi
			first = false
			continue
		}
		if lo < minV {
			minV = lo
		}
		if hi > maxV {
			maxV = hi
		}
	}
	return count, sum, minV, maxV
}

// HistogramAggregate derives (count, sum, min, max) over values from an
// integer histogram: sum is the histogram–value dot product, extremes scan
// the values of occupied bins (no monotonicity of values is assumed). This
// is the one float fold shared by every kernel dispatch path. count is 0 for
// an all-zero histogram, and minV/maxV are then meaningless.
func HistogramAggregate(hist []uint64, values []float64) (count uint64, sum, minV, maxV float64) {
	first := true
	for i, c := range hist {
		if c == 0 {
			continue
		}
		v := values[i]
		count += c
		sum += v * float64(c)
		if first {
			minV, maxV = v, v
			first = false
			continue
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return count, sum, minV, maxV
}
