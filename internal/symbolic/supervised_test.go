package symbolic

import (
	"math/rand"
	"testing"
)

func TestExpertTableLowHigh(t *testing.T) {
	// The paper's §3.2 example: "low" below a threshold, "high" above it.
	tab, err := ExpertTable([]float64{500}, 0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.K() != 2 {
		t.Fatalf("k = %d", tab.K())
	}
	if tab.Encode(100).String() != "0" || tab.Encode(900).String() != "1" {
		t.Fatal("threshold semantics wrong")
	}
	if tab.Encode(500).String() != "0" {
		t.Fatal("boundary belongs to the low symbol (Definition 3)")
	}
}

func TestExpertTableValidation(t *testing.T) {
	if _, err := ExpertTable([]float64{1, 2}, 0, 10); err == nil {
		t.Fatal("k=3 should be rejected")
	}
	if _, err := ExpertTable([]float64{2, 1, 3}, 0, 10); err == nil {
		t.Fatal("unsorted separators should be rejected")
	}
}

func TestLearnSupervisedSeparatesClasses(t *testing.T) {
	// Two labels living in different value bands with a noisy boundary:
	// the learned k=2 separator should land near the band boundary (1000),
	// unlike the unsupervised median which lands at the data median (≈550
	// here because the classes are imbalanced).
	rng := rand.New(rand.NewSource(5))
	var values []float64
	var labels []int
	for i := 0; i < 900; i++ {
		values = append(values, 100+rng.Float64()*800) // 100..900
		labels = append(labels, 0)
	}
	for i := 0; i < 300; i++ {
		values = append(values, 1100+rng.Float64()*800) // 1100..1900
		labels = append(labels, 1)
	}
	sup, err := LearnSupervised(values, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	sep := sup.Separators()[0]
	if sep < 900 || sep > 1100 {
		t.Fatalf("supervised separator %v should sit in the class gap (900,1100)", sep)
	}
	med, err := Learn(MethodMedian, values, 2)
	if err != nil {
		t.Fatal(err)
	}
	if medSep := med.Separators()[0]; medSep > 900 {
		t.Fatalf("median separator %v unexpectedly in the gap — test setup broken", medSep)
	}
}

func TestLearnSupervisedK4RefinesInformatively(t *testing.T) {
	// Four labelled bands; k=4 should place all three separators between
	// bands.
	var values []float64
	var labels []int
	bands := []struct{ lo, hi float64 }{{0, 10}, {20, 30}, {40, 50}, {60, 70}}
	rng := rand.New(rand.NewSource(6))
	for li, b := range bands {
		for i := 0; i < 100; i++ {
			values = append(values, b.lo+rng.Float64()*(b.hi-b.lo))
			labels = append(labels, li)
		}
	}
	tab, err := LearnSupervised(values, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	seps := tab.Separators()
	wantGaps := [][2]float64{{10, 20}, {30, 40}, {50, 60}}
	for i, s := range seps {
		if s < wantGaps[i][0] || s > wantGaps[i][1] {
			t.Fatalf("separator %d = %v outside gap %v", i, s, wantGaps[i])
		}
	}
	// Encoding should almost perfectly predict the label.
	correct := 0
	for i, v := range values {
		if tab.Encode(v).Index() == labels[i] {
			correct++
		}
	}
	if correct < len(values)*99/100 {
		t.Fatalf("supervised encoding matches labels %d/%d", correct, len(values))
	}
}

func TestLearnSupervisedUninformativeLabelsFallsBack(t *testing.T) {
	// All labels equal: no informative cut exists; the learner falls back
	// to median-style splits but still delivers k bins.
	values := make([]float64, 64)
	labels := make([]int, 64)
	for i := range values {
		values[i] = float64(i)
	}
	tab, err := LearnSupervised(values, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.K() != 4 {
		t.Fatalf("k = %d", tab.K())
	}
	seps := tab.Separators()
	for i := 1; i < len(seps); i++ {
		if seps[i] <= seps[i-1] {
			t.Fatalf("separators not increasing: %v", seps)
		}
	}
}

func TestLearnSupervisedErrors(t *testing.T) {
	if _, err := LearnSupervised(nil, nil, 2); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := LearnSupervised([]float64{1}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := LearnSupervised([]float64{1, 2}, []int{0, -1}, 2); err == nil {
		t.Fatal("negative label should error")
	}
	if _, err := LearnSupervised([]float64{1, 2}, []int{0, 1}, 3); err == nil {
		t.Fatal("k=3 should error")
	}
	// Too few distinct values for k bins.
	if _, err := LearnSupervised([]float64{1, 1, 1, 1}, []int{0, 0, 1, 1}, 4); err == nil {
		t.Fatal("indivisible data should error")
	}
}

func TestLearnSupervisedRepresentatives(t *testing.T) {
	values := []float64{1, 2, 100, 200}
	labels := []int{0, 0, 1, 1}
	tab, err := LearnSupervised(values, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := tab.Value(NewSymbol(0, 1))
	if err != nil || v0 != 1.5 {
		t.Fatalf("representative = %v, %v", v0, err)
	}
}
