package symbolic

import (
	"fmt"
	"math"
	"sort"
)

// Table is the lookup table L = (A, B) of Definition 3: an alphabet of
// k = 2^Level symbols and k-1 separators β1 ≤ β2 ≤ ... ≤ βk-1.
//
// The table also carries the per-symbol representative values used for
// reconstruction ("the lookup table will match each symbol to the average
// real value of its corresponding range", §2) and the observed [Min, Max]
// of the training data, which defines the outer range centers used for
// forecasting semantics ("the center of its range", §3.2).
type Table struct {
	alphabet   Alphabet
	separators []float64
	// repr[i] is the mean training value in bin i; NaN when the bin saw no
	// training data (Value falls back to the bin center).
	repr []float64
	// values[i] is the resolved reconstruction value for bin i — repr[i]
	// when known, otherwise the bin center. It is rebuilt by refreshValues
	// after every repr mutation so the hot ingest path can resolve
	// symbol→value by direct index with no NaN test, bounds math or error
	// allocation per point.
	values []float64
	// byteSums[b] is the sum of reconstruction values of the symbols packed
	// into payload byte b, for the byte-aligned levels 1, 2 and 4 (nil
	// otherwise). The compressed-domain sum kernel (PackedRangeSumLUT)
	// aggregates a whole byte of packed symbols per table lookup with it.
	byteSums []float64
	// min and max of the training data, closing the outer bins for centers.
	min, max float64
	// method records which learner produced the table (for reporting).
	method Method
}

// NewTable builds a table directly from separators. The separators must be
// non-decreasing and count exactly k-1 for the alphabet size k. min/max
// bound the value range for bin centers. Representative values default to
// bin centers.
func NewTable(k int, separators []float64, min, max float64) (*Table, error) {
	a, err := NewAlphabet(k)
	if err != nil {
		return nil, err
	}
	if len(separators) != k-1 {
		return nil, fmt.Errorf("symbolic: need %d separators for k=%d, got %d", k-1, k, len(separators))
	}
	if !sort.Float64sAreSorted(separators) {
		return nil, fmt.Errorf("symbolic: separators must be non-decreasing")
	}
	if min > max {
		return nil, fmt.Errorf("symbolic: min %v > max %v", min, max)
	}
	t := &Table{
		alphabet:   a,
		separators: append([]float64(nil), separators...),
		repr:       make([]float64, k),
		min:        min,
		max:        max,
	}
	for i := range t.repr {
		t.repr[i] = math.NaN()
	}
	t.refreshValues()
	return t, nil
}

// refreshValues rebuilds the resolved reconstruction cache. Every code path
// that mutates t.repr must call it before the table is used for decoding.
func (t *Table) refreshValues() {
	if t.values == nil {
		t.values = make([]float64, len(t.repr))
	}
	level := uint8(t.alphabet.Level())
	for i := range t.values {
		if r := t.repr[i]; !math.IsNaN(r) {
			t.values[i] = r
			continue
		}
		lo, hi, _ := t.Bounds(Symbol{index: uint32(i), level: level})
		t.values[i] = (lo + hi) / 2
	}
	if lv := t.alphabet.Level(); lv == 1 || lv == 2 || lv == 4 {
		if t.byteSums == nil {
			t.byteSums = make([]float64, 256)
		}
		spb := 8 / lv
		mask := 1<<uint(lv) - 1
		for b := 0; b < 256; b++ {
			var sum float64
			for j := 0; j < spb; j++ {
				sum += t.values[b>>uint(8-(j+1)*lv)&mask]
			}
			t.byteSums[b] = sum
		}
	}
}

// ByteSums returns the per-payload-byte partial-sum table for this table's
// reconstruction values, or nil when the level is not byte-aligned (only
// levels 1, 2 and 4 pack a whole number of symbols per byte). The slice is
// owned by the table and valid until the next SetRepresentatives call.
func (t *Table) ByteSums() []float64 { return t.byteSums }

// ReconstructionValues returns the per-bin reconstruction values indexed by
// symbol index: repr means where training data was seen, bin centers
// otherwise. The returned slice is owned by the table and must not be
// modified; it stays valid until the next SetRepresentatives call. Batch
// decoders use it to resolve symbol→value by direct index on the hot path.
func (t *Table) ReconstructionValues() []float64 { return t.values }

// K returns the alphabet size.
func (t *Table) K() int { return t.alphabet.Size() }

// Level returns the symbol length in bits.
func (t *Table) Level() int { return t.alphabet.Level() }

// Separators returns a copy of the separators.
func (t *Table) Separators() []float64 {
	return append([]float64(nil), t.separators...)
}

// Method returns the learner that produced this table (MethodNone for
// hand-built tables).
func (t *Table) Method() Method { return t.method }

// Range returns the [min, max] of the training data.
func (t *Table) Range() (min, max float64) { return t.min, t.max }

// Encode maps a value to its symbol per Definition 3:
//
//	(i)  v <= β1          → a1
//	(ii) v > βk-1         → ak
//	(iii) βj-1 < v <= βj  → aj
func (t *Table) Encode(v float64) Symbol {
	// sort.SearchFloat64s finds the first separator >= v; Definition 3 bins
	// are left-open/right-closed (βj-1 < v <= βj), so search for the first
	// separator that is >= v.
	idx := sort.Search(len(t.separators), func(i int) bool { return t.separators[i] >= v })
	return Symbol{index: uint32(idx), level: uint8(t.alphabet.Level())}
}

// EncodeAll maps a slice of values to symbols.
func (t *Table) EncodeAll(vs []float64) []Symbol {
	return t.AppendEncode(make([]Symbol, 0, len(vs)), vs)
}

// AppendEncode appends the symbols for vs to dst and returns the extended
// slice — the allocation-free form of EncodeAll for streaming callers that
// reuse an output buffer across chunks.
func (t *Table) AppendEncode(dst []Symbol, vs []float64) []Symbol {
	for _, v := range vs {
		dst = append(dst, t.Encode(v))
	}
	return dst
}

// Bounds returns the half-open value interval (lo, hi] covered by the given
// symbol at this table's level. The outer bins extend to the training min
// and max.
func (t *Table) Bounds(s Symbol) (lo, hi float64, err error) {
	if s.Level() != t.Level() {
		return 0, 0, fmt.Errorf("symbolic: symbol level %d does not match table level %d", s.Level(), t.Level())
	}
	i := s.Index()
	if i == 0 {
		lo = t.min
	} else {
		lo = t.separators[i-1]
	}
	if i == t.K()-1 {
		hi = t.max
	} else {
		hi = t.separators[i]
	}
	return lo, hi, nil
}

// Center returns the center of the symbol's range — the forecasting
// semantics of §3.2.
func (t *Table) Center(s Symbol) (float64, error) {
	lo, hi, err := t.Bounds(s)
	if err != nil {
		return 0, err
	}
	return (lo + hi) / 2, nil
}

// Value returns the reconstruction value for a symbol: the mean training
// value of its bin when known, otherwise the bin center.
func (t *Table) Value(s Symbol) (float64, error) {
	if s.Level() != t.Level() {
		return 0, fmt.Errorf("symbolic: symbol level %d does not match table level %d", s.Level(), t.Level())
	}
	return t.values[s.Index()], nil
}

// SetRepresentatives installs per-bin reconstruction values (one per
// symbol). Learners call this with bin means.
func (t *Table) SetRepresentatives(repr []float64) error {
	if len(repr) != t.K() {
		return fmt.Errorf("symbolic: need %d representatives, got %d", t.K(), len(repr))
	}
	copy(t.repr, repr)
	t.refreshValues()
	return nil
}

// Coarsen derives the table for a smaller alphabet size k2 (a power of two
// dividing k) by keeping every (k/k2)-th separator. A value encoded with the
// original table and then symbol-coarsened equals the value encoded directly
// with the coarsened table — the paper's resolution-conversion property
// (§4); property-tested in coarsen_test.go.
func (t *Table) Coarsen(k2 int) (*Table, error) {
	if _, err := NewAlphabet(k2); err != nil {
		return nil, err
	}
	k := t.K()
	if k2 > k || k%k2 != 0 {
		return nil, fmt.Errorf("symbolic: cannot coarsen k=%d table to k=%d", k, k2)
	}
	step := k / k2
	seps := make([]float64, 0, k2-1)
	for i := step - 1; i < len(t.separators); i += step {
		seps = append(seps, t.separators[i])
	}
	out, err := NewTable(k2, seps, t.min, t.max)
	if err != nil {
		return nil, err
	}
	out.method = t.method
	// Coarse representatives: average the fine-bin representatives that are
	// known, weighting equally (training counts are not retained).
	for i := 0; i < k2; i++ {
		var sum float64
		var n int
		for j := i * step; j < (i+1)*step; j++ {
			if !math.IsNaN(t.repr[j]) {
				sum += t.repr[j]
				n++
			}
		}
		if n > 0 {
			out.repr[i] = sum / float64(n)
		}
	}
	out.refreshValues()
	return out, nil
}

// String summarises the table.
func (t *Table) String() string {
	return fmt.Sprintf("Table{k=%d, method=%s, range=[%.4g,%.4g], separators=%v}",
		t.K(), t.method, t.min, t.max, t.separators)
}
