package symbolic

import (
	"fmt"
	"math"
	"sort"

	"symmeter/internal/stats"
)

// Method identifies a separator-learning strategy (paper §2.2).
type Method int

const (
	// MethodNone marks hand-built tables.
	MethodNone Method = iota
	// MethodUniform assigns each symbol an equal-width slice of [0, max].
	MethodUniform
	// MethodMedian places separators at the k-quantiles of the training
	// values, so each symbol represents the same number of values
	// (maximum-entropy symbols).
	MethodMedian
	// MethodDistinctMedian places separators at the k-quantiles of the
	// *distinct* training values, avoiding bias toward very frequent values.
	MethodDistinctMedian
	// MethodLloydMax places separators by 1-D k-means (Lloyd–Max), the
	// MSE-optimal scalar quantiser — not in the paper, provided as an
	// ablation against its three heuristics (DESIGN.md §5).
	MethodLloydMax
)

// Methods lists the learners in the order the paper's figures report them.
var Methods = []Method{MethodDistinctMedian, MethodMedian, MethodUniform}

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "none"
	case MethodUniform:
		return "uniform"
	case MethodMedian:
		return "median"
	case MethodDistinctMedian:
		return "distinctmedian"
	case MethodLloydMax:
		return "lloydmax"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts the paper's method name to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "uniform":
		return MethodUniform, nil
	case "median":
		return MethodMedian, nil
	case "distinctmedian":
		return MethodDistinctMedian, nil
	case "lloydmax":
		return MethodLloydMax, nil
	default:
		return MethodNone, fmt.Errorf("symbolic: unknown method %q", s)
	}
}

// Learn builds a lookup table with alphabet size k from historical training
// values using the given method. The paper learns tables from the first two
// days of each house's data (§3).
func Learn(method Method, values []float64, k int) (*Table, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("symbolic: cannot learn a table from no data")
	}
	var seps []float64
	var err error
	switch method {
	case MethodUniform:
		seps = uniformSeparators(values, k)
		if seps == nil {
			return nil, ErrNotPowerOfTwo
		}
	case MethodMedian:
		seps, err = stats.KQuantiles(values, k)
	case MethodDistinctMedian:
		seps, err = stats.KQuantilesDistinct(values, k)
	case MethodLloydMax:
		seps, err = lloydMaxSeparators(values, k)
	default:
		return nil, fmt.Errorf("symbolic: cannot learn with method %s", method)
	}
	if err != nil {
		return nil, err
	}
	min, max := stats.Min(values), stats.Max(values)
	if method == MethodUniform {
		// Uniform ranges run from zero to max per the paper.
		min = math.Min(0, min)
	}
	t, err := NewTable(k, seps, min, max)
	if err != nil {
		return nil, err
	}
	t.method = method
	t.learnRepresentatives(values)
	return t, nil
}

// uniformSeparators divides [0, max] into k equal subranges:
// βi = i·max/k (paper §2.2a). Returns nil when k is invalid.
func uniformSeparators(values []float64, k int) []float64 {
	if _, err := NewAlphabet(k); err != nil {
		return nil
	}
	max := stats.Max(values)
	seps := make([]float64, k-1)
	for i := 1; i < k; i++ {
		seps[i-1] = float64(i) * max / float64(k)
	}
	return seps
}

// lloydMaxSeparators runs 1-D k-means (Lloyd–Max) and returns the k-1
// midpoints between sorted centroids. Centroids initialise at the
// k-quantiles (a good 1-D seeding) and iterate to a local MSE optimum.
func lloydMaxSeparators(values []float64, k int) ([]float64, error) {
	centroids, err := stats.KQuantiles(values, 2*k) // odd positions seed the k centroids
	if err != nil {
		return nil, err
	}
	cent := make([]float64, k)
	for i := 0; i < k; i++ {
		cent[i] = centroids[2*i] // quantiles at (2i+1)/(2k)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for iter := 0; iter < 100; iter++ {
		// Assignment boundaries are centroid midpoints; recompute means by
		// sweeping the sorted values once.
		sums := make([]float64, k)
		counts := make([]int, k)
		c := 0
		for _, v := range sorted {
			for c+1 < k && v > (cent[c]+cent[c+1])/2 {
				c++
			}
			sums[c] += v
			counts[c]++
		}
		moved := 0.0
		for i := 0; i < k; i++ {
			if counts[i] == 0 {
				continue // keep an empty centroid where it is
			}
			next := sums[i] / float64(counts[i])
			moved += math.Abs(next - cent[i])
			cent[i] = next
		}
		if moved < 1e-9 {
			break
		}
	}
	seps := make([]float64, k-1)
	for i := 0; i < k-1; i++ {
		seps[i] = (cent[i] + cent[i+1]) / 2
	}
	return seps, nil
}

// learnRepresentatives sets each bin's reconstruction value to the mean of
// the training values that encode into it.
func (t *Table) learnRepresentatives(values []float64) {
	sums := make([]float64, t.K())
	counts := make([]int, t.K())
	for _, v := range values {
		i := t.Encode(v).Index()
		sums[i] += v
		counts[i]++
	}
	for i := range sums {
		if counts[i] > 0 {
			t.repr[i] = sums[i] / float64(counts[i])
		} else {
			t.repr[i] = math.NaN()
		}
	}
	t.refreshValues()
}

// SymbolEntropy returns the empirical entropy (bits) of the symbols produced
// by encoding values with the table. The paper argues median segmentation
// "aims to maximize the entropy of the generated symbols"; tests verify the
// median table's entropy dominates the uniform table's on skewed data.
func (t *Table) SymbolEntropy(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	counts := make([]int, t.K())
	for _, v := range values {
		counts[t.Encode(v).Index()]++
	}
	var h float64
	n := float64(len(values))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
