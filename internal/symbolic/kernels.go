package symbolic

import (
	"encoding/binary"
	"math/bits"
)

// Compressed-domain aggregation kernels.
//
// These operate on *headerless* packed payloads — the bit layout AppendPack
// produces after its 5-byte header: symbols at a fixed level, MSB-first,
// position p occupying bits [p·level, (p+1)·level). The block store keeps
// symbols in this form at rest, and the query engine answers aggregates by
// running these kernels over the edge blocks of a time range, so a query
// never materializes a float64 (or even a Symbol) slice.
//
// For the byte-aligned levels (1, 2 and 4 — the paper's k=2/4/16 tables) the
// kernels work a 64-bit word at a time with per-byte lookup tables: one
// uint64 load yields 8 payload bytes = 16 level-4 symbols, histogrammed or
// summed without ever unpacking a symbol. Other levels fall back to the
// shift-accumulator walk the codec uses, which still touches only integers.

// PackSymbolAt writes the symbol index into position pos of a headerless
// packed payload. The target bits must still be zero (the block store's
// payloads are append-only, so every position is written exactly once).
func PackSymbolAt(payload []byte, level, pos int, index uint32) {
	bit := pos * level
	rem := level
	for rem > 0 {
		byteIdx, bitIdx := bit>>3, bit&7
		take := 8 - bitIdx
		if take > rem {
			take = rem
		}
		chunk := index >> uint(rem-take) & (1<<uint(take) - 1)
		payload[byteIdx] |= byte(chunk << uint(8-bitIdx-take))
		bit += take
		rem -= take
	}
}

// PackedSymbolAt reads the symbol index at position pos of a headerless
// packed payload.
func PackedSymbolAt(payload []byte, level, pos int) uint32 {
	bit := pos * level
	var idx uint32
	rem := level
	for rem > 0 {
		byteIdx, bitIdx := bit>>3, bit&7
		take := 8 - bitIdx
		if take > rem {
			take = rem
		}
		chunk := uint32(payload[byteIdx]) >> uint(8-bitIdx-take) & (1<<uint(take) - 1)
		idx = idx<<uint(take) | chunk
		bit += take
		rem -= take
	}
	return idx
}

// AppendUnpackRange appends the symbols at positions [start, end) of a
// headerless packed payload to dst — the reconstruction path snapshots use
// to rebuild points outside the shard lock.
func AppendUnpackRange(dst []Symbol, payload []byte, level, start, end int) []Symbol {
	lvl := uint8(level)
	walkPacked(payload, level, start, end, func(idx uint32) {
		dst = append(dst, Symbol{index: idx, level: lvl})
	})
	return dst
}

// walkPacked invokes fn with each symbol index at positions [start, end),
// using the codec's 32-bit-refill accumulator. It is the general path behind
// the kernels for levels without a byte-aligned fast path.
func walkPacked(payload []byte, level, start, end int, fn func(idx uint32)) {
	if start >= end {
		return
	}
	bit := start * level
	pos := bit >> 3
	// Seed the accumulator with the tail of the first byte so the loop below
	// always starts symbol-aligned.
	accBits := 8 - bit&7
	acc := uint64(payload[pos]) & (1<<uint(accBits) - 1)
	pos++
	mask := uint64(1)<<uint(level) - 1
	for i := start; i < end; i++ {
		for accBits < level {
			if pos+4 <= len(payload) {
				acc = acc<<32 | uint64(binary.BigEndian.Uint32(payload[pos:]))
				accBits += 32
				pos += 4
			} else {
				acc = acc<<8 | uint64(payload[pos])
				accBits += 8
				pos++
			}
		}
		accBits -= level
		fn(uint32(acc >> uint(accBits) & mask))
	}
}

// laneLUT2 maps a payload byte to the counts of its four level-2 symbols,
// packed one count per byte lane (lane s = symbol s). Summing lanes across
// up to 63 bytes cannot overflow a lane (4·63 < 256), so the level-2
// histogram kernel does one table add per byte and flushes lanes in chunks.
var laneLUT2 [256]uint32

func init() {
	for b := 0; b < 256; b++ {
		var v uint32
		for j := 0; j < 4; j++ {
			sym := b >> uint(6-2*j) & 3
			v += 1 << uint(8*sym)
		}
		laneLUT2[b] = v
	}
}

// PackedRangeHistogram adds the symbol counts of positions [start, end) of a
// headerless packed payload into hist, which must have at least 1<<level
// entries. Levels 1, 2, 4 and 8 use word-at-a-time byte kernels; other
// levels use the accumulator walk.
func PackedRangeHistogram(hist []uint64, payload []byte, level, start, end int) {
	if start >= end {
		return
	}
	switch level {
	case 1:
		n := end - start
		ones := 0
		// Leading partial byte, bit by bit.
		if lead := start & 7; lead != 0 {
			stop := start + (8 - lead)
			if stop > end {
				stop = end
			}
			for p := start; p < stop; p++ {
				ones += int(payload[p>>3] >> uint(7-p&7) & 1)
			}
			start = stop
		}
		// Trailing partial byte, masked popcount.
		if tail := end & 7; start < end && tail != 0 {
			ones += bits.OnesCount8(payload[end>>3] & (0xFF << uint(8-tail)))
			end -= tail
		}
		bs := payload[start>>3 : end>>3]
		for len(bs) >= 8 {
			ones += bits.OnesCount64(binary.BigEndian.Uint64(bs))
			bs = bs[8:]
		}
		for _, b := range bs {
			ones += bits.OnesCount8(b)
		}
		hist[1] += uint64(ones)
		hist[0] += uint64(n - ones)
	case 2:
		// Leading edge to a byte boundary.
		for ; start < end && start&3 != 0; start++ {
			hist[payload[start>>2]>>uint(6-2*(start&3))&3]++
		}
		// Trailing edge from the last byte boundary.
		for ; end > start && end&3 != 0; end-- {
			p := end - 1
			hist[payload[p>>2]>>uint(6-2*(p&3))&3]++
		}
		bs := payload[start>>2 : end>>2]
		for len(bs) > 0 {
			chunk := bs
			if len(chunk) > 63 {
				chunk = chunk[:63]
			}
			var acc uint32
			for _, b := range chunk {
				acc += laneLUT2[b]
			}
			hist[0] += uint64(acc & 0xFF)
			hist[1] += uint64(acc >> 8 & 0xFF)
			hist[2] += uint64(acc >> 16 & 0xFF)
			hist[3] += uint64(acc >> 24 & 0xFF)
			bs = bs[len(chunk):]
		}
	case 4:
		if start&1 != 0 {
			hist[payload[start>>1]&0xF]++
			start++
		}
		if end > start && end&1 != 0 {
			hist[payload[(end-1)>>1]>>4]++
			end--
		}
		bs := payload[start>>1 : end>>1]
		if useHistL4 && len(bs) >= histL4Stride {
			n := len(bs) &^ (histL4Stride - 1)
			histL4Native(bs[:n], &hist[0])
			bs = bs[n:]
		}
		for len(bs) >= 8 {
			w := binary.BigEndian.Uint64(bs)
			hist[w>>60]++
			hist[w>>56&0xF]++
			hist[w>>52&0xF]++
			hist[w>>48&0xF]++
			hist[w>>44&0xF]++
			hist[w>>40&0xF]++
			hist[w>>36&0xF]++
			hist[w>>32&0xF]++
			hist[w>>28&0xF]++
			hist[w>>24&0xF]++
			hist[w>>20&0xF]++
			hist[w>>16&0xF]++
			hist[w>>12&0xF]++
			hist[w>>8&0xF]++
			hist[w>>4&0xF]++
			hist[w&0xF]++
			bs = bs[8:]
		}
		for _, b := range bs {
			hist[b>>4]++
			hist[b&0xF]++
		}
	case 8:
		for _, b := range payload[start:end] {
			hist[b]++
		}
	default:
		walkPacked(payload, level, start, end, func(idx uint32) { hist[idx]++ })
	}
}

// PackedRangeAggregate folds positions [start, end) of a headerless packed
// payload into (sum, min, max) over values[idx] without materializing any
// intermediate slice. Extremes are tracked in the value domain, so no
// monotonicity of values is assumed. It works at every level — the query
// engine uses it for blocks too fine-grained to carry a histogram
// (level > 8). start must be < end; values must have 1<<level entries.
func PackedRangeAggregate(values []float64, payload []byte, level, start, end int) (sum, minV, maxV float64) {
	first := true
	walkPacked(payload, level, start, end, func(idx uint32) {
		v := values[idx]
		sum += v
		if first {
			minV, maxV = v, v
			first = false
			return
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	})
	return sum, minV, maxV
}

// PackedRangeSumLUT sums values over positions [start, end) of a headerless
// packed payload using a per-byte partial-sum table (Table.ByteSums): one
// table lookup covers a whole byte — 8, 4 or 2 symbols at levels 1, 2 and 4
// — so a 64-bit word's worth of payload costs 8 float adds regardless of
// level. Unaligned edge symbols are resolved through values. Only valid for
// levels 1, 2 and 4.
func PackedRangeSumLUT(byteSums, values []float64, payload []byte, level, start, end int) float64 {
	spb := 8 / level // symbols per byte
	var sum float64
	for ; start < end && start%spb != 0; start++ {
		sum += values[PackedSymbolAt(payload, level, start)]
	}
	for ; end > start && end%spb != 0; end-- {
		sum += values[PackedSymbolAt(payload, level, end-1)]
	}
	for _, b := range payload[start/spb : end/spb] {
		sum += byteSums[b]
	}
	return sum
}
