package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunLearningWindow(t *testing.T) {
	rows, err := RunLearningWindow(3, 4, 8, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].TrainDays != 1 || rows[1].TrainDays != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.F1 <= 0 || r.F1 > 1 {
			t.Fatalf("F1 out of range: %+v", r)
		}
	}
}

func TestRunQuantizerComparison(t *testing.T) {
	p := testPipeline(t)
	rows, err := p.RunQuantizerComparison(0, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 methods × 2 alphabet sizes
		t.Fatalf("rows = %d", len(rows))
	}
	type key struct {
		m string
		k int
	}
	byKey := map[key]QuantizerRow{}
	for _, r := range rows {
		byKey[key{r.Method.String(), r.K}] = r
		if r.MAE <= 0 || r.RMSE < r.MAE {
			t.Fatalf("implausible errors: %+v", r)
		}
	}
	// Lloyd–Max minimises RMSE among the methods at each k.
	for _, k := range []int{4, 16} {
		lm := byKey[key{"lloydmax", k}]
		for _, m := range []string{"uniform", "median", "distinctmedian"} {
			if other := byKey[key{m, k}]; lm.RMSE > other.RMSE*1.02 {
				t.Fatalf("k=%d: lloydmax RMSE %v worse than %s %v", k, lm.RMSE, m, other.RMSE)
			}
		}
	}
	// Larger alphabets reconstruct better for every method.
	for _, m := range []string{"uniform", "median", "distinctmedian", "lloydmax"} {
		if byKey[key{m, 4}].MAE < byKey[key{m, 16}].MAE {
			t.Fatalf("%s: k=4 MAE below k=16", m)
		}
	}
	var buf bytes.Buffer
	if err := WriteAblation(&buf, nil, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lloydmax") {
		t.Fatal("report missing lloydmax row")
	}
}

func TestRunQuantizerComparisonNoData(t *testing.T) {
	p := testPipeline(t)
	if _, err := p.RunQuantizerComparison(99, nil); err == nil {
		t.Fatal("nonexistent house should error")
	}
}
