package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunClusteringRecoversHouses(t *testing.T) {
	p := NewPipeline(Config{Seed: 2, Houses: 4, Days: 8, DisableGaps: true})
	rows, err := p.RunClustering(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Instances != 32 {
			t.Fatalf("instances = %d", r.Instances)
		}
		if r.Purity < 1.0/4 || r.Purity > 1 {
			t.Fatalf("purity out of range: %+v", r)
		}
	}
	// The symbolic value-gap clustering must be substantially better than
	// chance (purity 0.25 for 4 balanced houses).
	if rows[1].Purity < 0.5 {
		t.Fatalf("symbolic clustering purity = %v, want > 0.5", rows[1].Purity)
	}
	var buf bytes.Buffer
	if err := WriteClustering(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "purity") {
		t.Fatal("header missing")
	}
}

func TestRunClusteringAgglomerative(t *testing.T) {
	p := NewPipeline(Config{Seed: 3, Houses: 3, Days: 6, DisableGaps: true})
	rows, err := p.RunClustering(ClusterConfig{Algorithm: "agglomerative", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestClusterConfigDefaults(t *testing.T) {
	c := ClusterConfig{}.withDefaults()
	if c.Window != Window1h || c.K != 8 || c.Algorithm != "kmedoids" {
		t.Fatalf("defaults = %+v", c)
	}
}
