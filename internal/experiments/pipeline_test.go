package experiments

import (
	"math"
	"testing"

	"symmeter/internal/symbolic"
)

// testPipeline is small enough to build in well under a second per test.
func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	return NewPipeline(Config{Seed: 42, Houses: 4, Days: 6, DisableGaps: true})
}

func TestConfigDefaults(t *testing.T) {
	p := NewPipeline(Config{})
	c := p.Config()
	if c.Houses != 6 || c.Days != 24 || c.TrainDays != 2 || c.CoverageThreshold != 72000 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestBuildRejectsBadWindow(t *testing.T) {
	p := testPipeline(t)
	if err := p.Build(7); err == nil {
		t.Fatal("window not dividing a day should error")
	}
	if err := p.Build(0); err == nil {
		t.Fatal("window 0 should error")
	}
}

func TestVectorsShape(t *testing.T) {
	p := testPipeline(t)
	vecs, err := p.Vectors(Window1h)
	if err != nil {
		t.Fatal(err)
	}
	// Gapless: every house-day is eligible.
	if len(vecs) != 4*6 {
		t.Fatalf("len(vecs) = %d, want 24", len(vecs))
	}
	for _, v := range vecs {
		if len(v.Values) != 24 {
			t.Fatalf("1h vector has %d slots", len(v.Values))
		}
		for i, x := range v.Values {
			if math.IsNaN(x) {
				t.Fatalf("gapless data must have no NaN (house %d day %d slot %d)", v.House, v.Day, i)
			}
			if x <= 0 {
				t.Fatalf("non-positive power %v", x)
			}
		}
	}
	vecs15, err := p.Vectors(Window15m)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs15[0].Values) != 96 {
		t.Fatalf("15m vector has %d slots", len(vecs15[0].Values))
	}
}

func TestVectorsCachedAcrossCalls(t *testing.T) {
	p := testPipeline(t)
	a, err := p.Vectors(Window1h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Vectors(Window1h)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second call should return the cached slice")
	}
}

func TestGapsMakeDaysIneligible(t *testing.T) {
	// With gaps on, the chronically gappy house 5 (index 4) loses most days.
	p := NewPipeline(Config{Seed: 9, Houses: 6, Days: 8})
	okDays, err := p.EligibleDays(0)
	if err != nil {
		t.Fatal(err)
	}
	gappy, err := p.EligibleDays(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gappy) >= len(okDays) {
		t.Fatalf("house5 has %d eligible days vs house1's %d; want fewer", len(gappy), len(okDays))
	}
}

func TestTablesPerHouseDiffer(t *testing.T) {
	p := testPipeline(t)
	t0, err := p.Table(symbolic.MethodMedian, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.Table(symbolic.MethodMedian, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := t0.Separators(), t1.Separators()
	same := true
	for i := range s0 {
		if s0[i] != s1[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different houses should learn different separators")
	}
}

func TestGlobalTableCachedAndDistinct(t *testing.T) {
	p := testPipeline(t)
	g1, err := p.Table(symbolic.MethodMedian, 8, -1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p.Table(symbolic.MethodMedian, 8, -1)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("global table should be cached")
	}
	h0, _ := p.Table(symbolic.MethodMedian, 8, 0)
	diff := false
	for i, s := range g1.Separators() {
		if s != h0.Separators()[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("global table should differ from a single house's table")
	}
}

func TestTableHouseOutOfRange(t *testing.T) {
	p := testPipeline(t)
	if _, err := p.Table(symbolic.MethodMedian, 8, 99); err == nil {
		t.Fatal("house out of range should error")
	}
}

func TestHouseNames(t *testing.T) {
	p := testPipeline(t)
	names := p.HouseNames()
	if len(names) != 4 || names[0] != "house1" || names[3] != "house4" {
		t.Fatalf("HouseNames = %v", names)
	}
}

func TestDayVectorNaNOnMissingSlots(t *testing.T) {
	// Build with gaps and verify NaN slots appear in some eligible day
	// (a day can pass 20 h coverage yet miss individual windows).
	p := NewPipeline(Config{Seed: 3, Houses: 2, Days: 10})
	vecs, err := p.Vectors(Window15m)
	if err != nil {
		t.Fatal(err)
	}
	sawNaN := false
	for _, v := range vecs {
		for _, x := range v.Values {
			if math.IsNaN(x) {
				sawNaN = true
			}
		}
	}
	if !sawNaN {
		t.Log("no NaN slots in this configuration (acceptable but unusual)")
	}
}
