package experiments

import (
	"fmt"
	"io"
	"math"

	"symmeter/internal/sax"
	"symmeter/internal/stats"
	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

// Fig1SymbolConstruction reproduces Fig. 1: the recursive division of the
// value range into variable-length binary symbols. It learns uniform tables
// at k = 2, 4, 8 over the house's training data and reports, per level, each
// symbol with its value range — showing that level-l symbols refine level-
// (l-1) symbols.
type Fig1Row struct {
	Symbol   symbolic.Symbol
	Lo, Hi   float64
	ParentOf []symbolic.Symbol
}

// Fig1SymbolConstruction returns rows grouped by level.
func (p *Pipeline) Fig1SymbolConstruction(house int) (map[int][]Fig1Row, error) {
	out := make(map[int][]Fig1Row)
	fine, err := p.Table(symbolic.MethodUniform, 8, house)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{2, 4, 8} {
		t := fine
		if k != 8 {
			if t, err = fine.Coarsen(k); err != nil {
				return nil, err
			}
		}
		level := t.Level()
		alpha, err := symbolic.NewAlphabet(k)
		if err != nil {
			return nil, err
		}
		for _, s := range alpha.Symbols() {
			lo, hi, err := t.Bounds(s)
			if err != nil {
				return nil, err
			}
			row := Fig1Row{Symbol: s, Lo: lo, Hi: hi}
			if level < 3 {
				a, b := s.Refinements()
				row.ParentOf = []symbolic.Symbol{a, b}
			}
			out[level] = append(out[level], row)
		}
	}
	return out, nil
}

// Fig2Histogram reproduces Fig. 2: the distribution of 1 Hz power levels in
// 100 W bins from 0 to 2400 W, which should be right-skewed (log-normal).
func (p *Pipeline) Fig2Histogram(house, days int) (*stats.Histogram, error) {
	if err := p.Build(); err != nil {
		return nil, err
	}
	h := stats.NewHistogram(0, 100, 24)
	for d := 0; d < days && d < p.cfg.Days; d++ {
		day := p.Generator().HouseDay(house, d)
		for _, pt := range day.Points {
			h.Add(pt.V)
		}
	}
	return h, nil
}

// Fig3Consumer is one of the four consumers A-D of Fig. 3.
type Fig3Consumer struct {
	Name   string
	Values []float64
}

// Fig3Consumers builds the four consumers of the paper's Fig. 3: A and B
// are big consumers with slightly different profiles; C and D are their
// small-consumer counterparts — C shares A's exact shape at a tenth of the
// level, D shares B's. Without normalisation A and B (resp. C and D) are
// more similar; with per-series normalisation A and C (resp. B and D) are
// put together, losing the big/small distinction.
func Fig3Consumers() []Fig3Consumer {
	shapeA := []float64{1, 1, 6, 6, 2, 1, 1, 1}
	shapeB := []float64{1, 1, 5, 6, 3, 1, 1, 1}
	scale := func(shape []float64, f float64) []float64 {
		out := make([]float64, len(shape))
		for i, v := range shape {
			out[i] = v * f
		}
		return out
	}
	return []Fig3Consumer{
		{Name: "A", Values: scale(shapeA, 100)},
		{Name: "B", Values: scale(shapeB, 90)},
		{Name: "C", Values: scale(shapeA, 12)},
		{Name: "D", Values: scale(shapeB, 11)},
	}
}

// Fig3Result reports which consumers group together under each encoding:
// per-consumer symbol words plus the pairing induced by nearest-neighbour
// Hamming distance.
type Fig3Result struct {
	// Words maps consumer name to its symbol word.
	Words map[string]string
	// NearestTo maps consumer name to its nearest other consumer.
	NearestTo map[string]string
}

// Fig3Compare encodes the four consumers with (a) SAX (z-normalised) and
// (b) the paper's uniform table over the pooled range, and reports the
// induced groupings. SAX groups by shape (A~B wrong pairing per the paper's
// argument: A groups with C); the absolute encoding groups by level (A~B).
func Fig3Compare() (saxRes, symRes Fig3Result, err error) {
	consumers := Fig3Consumers()

	enc, err := sax.NewEncoder(8, 4)
	if err != nil {
		return saxRes, symRes, err
	}
	saxWords := make(map[string][]int)
	saxRes.Words = make(map[string]string)
	for _, c := range consumers {
		w, err := enc.Encode(c.Values)
		if err != nil {
			return saxRes, symRes, err
		}
		saxWords[c.Name] = w.Symbols
		saxRes.Words[c.Name] = w.String()
	}
	saxRes.NearestTo = nearestByHamming(saxWords)

	// Paper-style absolute encoding: one uniform table over the pooled data.
	var pooled []float64
	for _, c := range consumers {
		pooled = append(pooled, c.Values...)
	}
	table, err := symbolic.Learn(symbolic.MethodUniform, pooled, 4)
	if err != nil {
		return saxRes, symRes, err
	}
	symWords := make(map[string][]int)
	symRes.Words = make(map[string]string)
	for _, c := range consumers {
		series := timeseries.FromValues(c.Name, 0, 1, c.Values)
		ss := symbolic.Horizontal(series, table)
		idx := make([]int, ss.Len())
		for i, sp := range ss.Points {
			idx[i] = sp.S.Index()
		}
		symWords[c.Name] = idx
		symRes.Words[c.Name] = ss.String()
	}
	symRes.NearestTo = nearestByHamming(symWords)
	return saxRes, symRes, nil
}

// nearestByHamming pairs each word with its closest other word.
func nearestByHamming(words map[string][]int) map[string]string {
	out := make(map[string]string)
	for a, wa := range words {
		best := ""
		bestD := math.MaxInt32
		for b, wb := range words {
			if a == b {
				continue
			}
			d := 0
			for i := range wa {
				if wa[i] != wb[i] {
					d++
				}
			}
			if d < bestD || (d == bestD && b < best) {
				bestD = d
				best = b
			}
		}
		out[a] = best
	}
	return out
}

// Fig4Point is one snapshot of the accumulative statistics.
type Fig4Point struct {
	Seconds                      int
	Mean, Median, DistinctMedian float64
}

// Fig4AccumulativeStats reproduces Fig. 4: accumulative mean, median and
// distinctmedian over the first `days` days of a house, snapshotted every
// `every` seconds of data.
func (p *Pipeline) Fig4AccumulativeStats(house, days int, every int) ([]Fig4Point, error) {
	if err := p.Build(); err != nil {
		return nil, err
	}
	if every <= 0 {
		every = 5000
	}
	var acc stats.Accumulative
	var out []Fig4Point
	n := 0
	for d := 0; d < days && d < p.cfg.Days; d++ {
		day := p.Generator().HouseDay(house, d)
		for _, pt := range day.Points {
			acc.Add(pt.V)
			n++
			if n%every == 0 {
				s := acc.Snapshot()
				out = append(out, Fig4Point{
					Seconds: n, Mean: s.Mean, Median: s.Median, DistinctMedian: s.DistinctMedian,
				})
			}
		}
	}
	return out, nil
}

// CompressionRow is one row of the §2.3 compression table.
type CompressionRow struct {
	Window int64
	K      int
	Stats  symbolic.CompressionStats
}

// CompressionTable sweeps the paper's windows and alphabets over 1 Hz data.
func CompressionTable() ([]CompressionRow, error) {
	var out []CompressionRow
	for _, w := range Windows {
		for _, k := range Alphabets {
			st, err := symbolic.Compression(1, w, k)
			if err != nil {
				return nil, err
			}
			out = append(out, CompressionRow{Window: w, K: k, Stats: st})
		}
	}
	return out, nil
}

// WriteCompressionTable renders the table.
func WriteCompressionTable(w io.Writer, rows []CompressionRow) error {
	if _, err := fmt.Fprintf(w, "%-8s %-4s %12s %12s %12s %10s\n",
		"window", "k", "raw bytes", "symbol bits", "packed B", "ratio"); err != nil {
		return err
	}
	for _, r := range rows {
		win := fmt.Sprintf("%ds", r.Window)
		if r.Window == Window1h {
			win = "1h"
		} else if r.Window == Window15m {
			win = "15m"
		}
		if _, err := fmt.Fprintf(w, "%-8s %-4d %12d %12d %12d %10.0f\n",
			win, r.K, r.Stats.RawBytes, r.Stats.SymbolBits, r.Stats.PackedBytes, r.Stats.Ratio); err != nil {
			return err
		}
	}
	return nil
}
