package experiments

import (
	"fmt"
	"io"
	"math"

	"symmeter/internal/dataset"
	"symmeter/internal/symbolic"
)

// DriftConfig parameterises the §4 extension study: a house whose
// consumption pattern "changes drastically" — the paper's additional-
// family-member scenario, modelled as a lasting level shift partway through
// the span (plus optional seasonal modulation) — encoded by a static lookup
// table learned once versus the adaptive encoder that relearns when the
// symbol distribution drifts.
type DriftConfig struct {
	Seed int64
	// Days is the span length (default 45).
	Days int
	// ShiftDay is when the household changes (default Days/3).
	ShiftDay int
	// ShiftFactor is the lasting consumption multiplier (default 2).
	ShiftFactor float64
	// SeasonalAmplitude optionally adds seasonal HVAC modulation on top
	// (default 0: isolate the structural change).
	SeasonalAmplitude float64
	// Window is the vertical aggregation (default 15 minutes).
	Window int64
	// K is the alphabet size (default 16).
	K int
	// Method learns both the initial and the relearned tables (default
	// median).
	Method symbolic.Method
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Days <= 0 {
		c.Days = 45
	}
	if c.ShiftDay <= 0 {
		c.ShiftDay = c.Days / 3
	}
	if c.ShiftFactor <= 0 {
		c.ShiftFactor = 2
	}
	if c.Window <= 0 {
		c.Window = Window15m
	}
	if c.K <= 0 {
		c.K = 16
	}
	if c.Method == symbolic.MethodNone {
		c.Method = symbolic.MethodMedian
	}
	return c
}

// DriftPeriod is one reporting bucket of the drift study.
type DriftPeriod struct {
	// Days is the inclusive day range of the bucket.
	FromDay, ToDay int
	// StaticMAE and AdaptiveMAE are reconstruction errors against the true
	// window averages.
	StaticMAE, AdaptiveMAE float64
}

// DriftResult is the outcome of the drift study.
type DriftResult struct {
	Periods []DriftPeriod
	// Updates is how many times the adaptive encoder relearned its table.
	Updates int
	// StaticMAE and AdaptiveMAE aggregate over the whole post-training span.
	StaticMAE, AdaptiveMAE float64
}

// RunDrift generates a house whose consumption shifts lastingly at
// ShiftDay, learns a table from the first two days, and streams the
// remaining days through (a) a static encoder and (b) the adaptive encoder,
// comparing reconstruction error in 10-day buckets.
func RunDrift(cfg DriftConfig) (DriftResult, error) {
	cfg = cfg.withDefaults()
	gen := dataset.New(dataset.Config{
		Seed: cfg.Seed, Houses: 1, Days: cfg.Days, DisableGaps: true,
		SeasonalAmplitude: cfg.SeasonalAmplitude,
		ShiftDay:          cfg.ShiftDay, ShiftFactor: cfg.ShiftFactor,
	})

	var builder symbolic.TableBuilder
	builder.PushSeries(gen.HouseDay(0, 0))
	builder.PushSeries(gen.HouseDay(0, 1))
	initial, err := builder.Build(cfg.Method, cfg.K)
	if err != nil {
		return DriftResult{}, err
	}
	static := symbolic.NewEncoder(initial, cfg.Window)
	adaptive, err := symbolic.NewAdaptiveEncoder(initial, symbolic.AdaptiveConfig{
		Window: cfg.Window,
	})
	if err != nil {
		return DriftResult{}, err
	}

	const bucketDays = 10
	var res DriftResult
	var bucket DriftPeriod
	bucket.FromDay = 2
	var bucketN, totalN int
	var bucketStatic, bucketAdaptive float64
	flush := func(lastDay int) {
		if bucketN == 0 {
			return
		}
		bucket.ToDay = lastDay
		bucket.StaticMAE = bucketStatic / float64(bucketN)
		bucket.AdaptiveMAE = bucketAdaptive / float64(bucketN)
		res.Periods = append(res.Periods, bucket)
		bucket = DriftPeriod{FromDay: lastDay + 1}
		bucketStatic, bucketAdaptive = 0, 0
		bucketN = 0
	}

	for d := 2; d < cfg.Days; d++ {
		day := gen.HouseDay(0, d)
		for _, p := range day.Points {
			ssp, savg, sok, err := static.PushWithValue(p)
			if err != nil {
				return DriftResult{}, err
			}
			asp, aok, up, err := adaptive.Push(p)
			if err != nil {
				return DriftResult{}, err
			}
			if up != nil {
				res.Updates++
			}
			if sok {
				v, err := static.Table().Value(ssp.S)
				if err != nil {
					return DriftResult{}, err
				}
				bucketStatic += math.Abs(v - savg)
				res.StaticMAE += math.Abs(v - savg)
			}
			if aok {
				v, err := adaptive.Table().Value(asp.S)
				if err != nil {
					return DriftResult{}, err
				}
				bucketAdaptive += math.Abs(v - savg)
				res.AdaptiveMAE += math.Abs(v - savg)
				bucketN++
				totalN++
			}
		}
		if (d-1)%bucketDays == 0 && d > 2 {
			flush(d)
		}
	}
	flush(cfg.Days - 1)
	if totalN > 0 {
		res.StaticMAE /= float64(totalN)
		res.AdaptiveMAE /= float64(totalN)
	}
	return res, nil
}

// WriteDrift renders the drift study.
func WriteDrift(w io.Writer, res DriftResult) error {
	if _, err := fmt.Fprintf(w, "%-12s %14s %14s\n", "days", "static MAE", "adaptive MAE"); err != nil {
		return err
	}
	for _, p := range res.Periods {
		if _, err := fmt.Fprintf(w, "%4d..%-6d %14.1f %14.1f\n",
			p.FromDay, p.ToDay, p.StaticMAE, p.AdaptiveMAE); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "overall: static %.1f W, adaptive %.1f W, %d table update(s)\n",
		res.StaticMAE, res.AdaptiveMAE, res.Updates)
	return err
}
