package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFig1SymbolConstruction(t *testing.T) {
	p := testPipeline(t)
	rows, err := p.Fig1SymbolConstruction(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[1]) != 2 || len(rows[2]) != 4 || len(rows[3]) != 8 {
		t.Fatalf("level sizes = %d/%d/%d", len(rows[1]), len(rows[2]), len(rows[3]))
	}
	// Level-1 '0' must cover exactly the union of level-2 '00' and '01'.
	l1, l2 := rows[1], rows[2]
	if l1[0].Lo != l2[0].Lo || l1[0].Hi != l2[1].Hi {
		t.Fatalf("'0' range [%v,%v] != union of '00','01' [%v,%v]",
			l1[0].Lo, l1[0].Hi, l2[0].Lo, l2[1].Hi)
	}
	// Refinement links are present below the deepest level.
	if len(l1[0].ParentOf) != 2 {
		t.Fatalf("level-1 symbols should list refinements: %+v", l1[0])
	}
	if l1[0].ParentOf[0].String() != "00" || l1[0].ParentOf[1].String() != "01" {
		t.Fatalf("refinements = %v", l1[0].ParentOf)
	}
}

func TestFig2HistogramSkew(t *testing.T) {
	p := testPipeline(t)
	h, err := p.Fig2Histogram(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() == 0 {
		t.Fatal("histogram is empty")
	}
	// Log-normal-like: the mode sits in the lower half of the range.
	if h.Mode() > 1200 {
		t.Fatalf("mode = %v, expected low-power mode", h.Mode())
	}
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("rendered histogram should contain bars")
	}
}

func TestFig3Groupings(t *testing.T) {
	saxRes, symRes, err := Fig3Compare()
	if err != nil {
		t.Fatal(err)
	}
	// SAX (z-normalised) groups by shape: A pairs with C, B with D.
	if saxRes.NearestTo["A"] != "C" || saxRes.NearestTo["C"] != "A" {
		t.Fatalf("SAX grouping = %v; normalisation should pair A with C", saxRes.NearestTo)
	}
	if saxRes.Words["A"] != saxRes.Words["C"] {
		t.Fatalf("z-normalised words of A and C should be identical: %v", saxRes.Words)
	}
	// Absolute encoding groups by level: A pairs with B, C with D.
	if symRes.NearestTo["A"] != "B" || symRes.NearestTo["B"] != "A" {
		t.Fatalf("symbolic grouping = %v; absolute encoding should pair A with B", symRes.NearestTo)
	}
	if symRes.NearestTo["C"] != "D" {
		t.Fatalf("C should pair with D: %v", symRes.NearestTo)
	}
}

func TestFig4Convergence(t *testing.T) {
	p := testPipeline(t)
	points, err := p.Fig4AccumulativeStats(0, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("only %d snapshots", len(points))
	}
	// The paper: "statistics start to converge after day one". For a
	// cumulative mean, consecutive-snapshot steps shrink like 1/n, so the
	// average relative step over the last third must be below the average
	// over the first third. (Endpoint-to-endpoint comparisons are too
	// sensitive to which day happens to be high-consumption.)
	if points[0].Seconds >= points[len(points)-1].Seconds {
		t.Fatal("snapshots must advance")
	}
	step := func(from, to int) float64 {
		var sum float64
		n := 0
		for i := from + 1; i <= to; i++ {
			sum += math.Abs(points[i].Mean-points[i-1].Mean) / points[i].Mean
			n++
		}
		return sum / float64(n)
	}
	third := len(points) / 3
	early := step(0, third)
	late := step(len(points)-third-1, len(points)-1)
	if late > early {
		t.Fatalf("mean step size grew late: early %v, late %v", early, late)
	}
	for _, pt := range points {
		if pt.Mean <= 0 || pt.Median <= 0 || pt.DistinctMedian <= 0 {
			t.Fatalf("non-positive statistic: %+v", pt)
		}
	}
}

func TestCompressionTable(t *testing.T) {
	rows, err := CompressionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper's headline cell: 15m window, 16 symbols → 384 bits.
	found := false
	for _, r := range rows {
		if r.Window == Window15m && r.K == 16 {
			found = true
			if r.Stats.SymbolBits != 384 {
				t.Fatalf("SymbolBits = %d, want 384", r.Stats.SymbolBits)
			}
			if r.Stats.Ratio < 1000 {
				t.Fatalf("ratio = %v, want three orders of magnitude", r.Stats.Ratio)
			}
		}
	}
	if !found {
		t.Fatal("missing 15m/16 row")
	}
	var buf bytes.Buffer
	if err := WriteCompressionTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ratio") {
		t.Fatal("table header missing")
	}
}
