package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrivacyAttackDegradesWithCoarsening(t *testing.T) {
	p := NewPipeline(Config{Seed: 4, Houses: 1, Days: 8, DisableGaps: true})
	rows, err := p.RunPrivacy(PrivacyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 windows × 3 alphabets)", len(rows))
	}
	// Index rows by (window, k).
	f1 := map[[2]int64]float64{}
	for _, r := range rows {
		f1[[2]int64{r.Window, int64(r.K)}] = r.F1
	}
	// The finest encoding must leak the most; the coarsest must leak
	// substantially less.
	finest := f1[[2]int64{60, 16}]
	coarsest := f1[[2]int64{Window1h, 2}]
	if finest <= coarsest {
		t.Fatalf("attack F1: finest %v <= coarsest %v — coarsening should hurt the attack", finest, coarsest)
	}
	if finest < 0.5 {
		t.Fatalf("finest encoding attack F1 = %v; the attack should mostly work there", finest)
	}
	if coarsest > 0.6 {
		t.Fatalf("coarsest encoding attack F1 = %v; 1h/2-symbol data should obscure events", coarsest)
	}
	var buf bytes.Buffer
	if err := WritePrivacy(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "attack F1") {
		t.Fatal("header missing")
	}
}

func TestDetectEventsAndMatch(t *testing.T) {
	events := detectEvents([]float64{0, 100, 1500, 1500, 0, 2000}, 1000)
	if len(events) != 2 || events[0] != 2 || events[1] != 5 {
		t.Fatalf("events = %v", events)
	}
	precision, recall := matchEvents([]int{2, 5}, []int{3, 20}, 1)
	if precision != 0.5 || recall != 0.5 {
		t.Fatalf("p/r = %v/%v", precision, recall)
	}
	if p, r := matchEvents([]int{1}, nil, 1); p != 0 || r != 0 {
		t.Fatal("no detections gives 0/0")
	}
}

func TestPrivacyConfigDefaults(t *testing.T) {
	c := PrivacyConfig{}.withDefaults()
	if c.Days != 5 || c.EventThreshold != 1000 {
		t.Fatalf("defaults = %+v", c)
	}
}
