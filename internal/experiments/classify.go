package experiments

import (
	"fmt"
	"math"
	"time"

	"symmeter/internal/eval"
	"symmeter/internal/ml"
	"symmeter/internal/ml/forest"
	"symmeter/internal/ml/logistic"
	"symmeter/internal/ml/naivebayes"
	"symmeter/internal/ml/tree"
	"symmeter/internal/symbolic"
)

// Encoding names a data representation for the classification experiments.
type Encoding struct {
	// Method is the separator learner; MethodNone means raw (un-encoded)
	// values.
	Method symbolic.Method
	// Window is the vertical aggregation in seconds.
	Window int64
	// K is the alphabet size (ignored for raw).
	K int
	// GlobalTable selects the single-lookup-table variant (the paper's "+"
	// columns) instead of per-house tables.
	GlobalTable bool
}

// String renders like the paper's row labels, e.g. "median 1h 16s" or
// "raw 15m".
func (e Encoding) String() string {
	w := fmt.Sprintf("%ds", e.Window)
	switch e.Window {
	case Window1h:
		w = "1h"
	case Window15m:
		w = "15m"
	case WindowRaw1s:
		w = "1sec"
	}
	if e.Method == symbolic.MethodNone {
		return fmt.Sprintf("raw %s", w)
	}
	suffix := ""
	if e.GlobalTable {
		suffix = "+"
	}
	return fmt.Sprintf("%s%s %s %ds", e.Method, suffix, w, e.K)
}

// ModelName identifies a classifier for reports.
type ModelName string

// The classifiers the paper evaluates.
const (
	ModelRandomForest ModelName = "RandomForest"
	ModelJ48          ModelName = "J48"
	ModelNaiveBayes   ModelName = "NaiveBayes"
	ModelLogistic     ModelName = "Logistic"
)

// AllModels lists the Table 1 classifiers in the paper's column order.
var AllModels = []ModelName{ModelRandomForest, ModelJ48, ModelNaiveBayes, ModelLogistic}

// NewModel constructs a fresh untrained classifier by name. The seed makes
// stochastic models (Random Forest) reproducible.
func NewModel(name ModelName, seed int64) ml.Classifier {
	switch name {
	case ModelRandomForest:
		return forest.New(forest.Config{Trees: 10, Seed: seed})
	case ModelJ48:
		return tree.NewDefault()
	case ModelNaiveBayes:
		return naivebayes.New()
	case ModelLogistic:
		return logistic.NewDefault()
	default:
		panic(fmt.Sprintf("experiments: unknown model %q", name))
	}
}

// ClassResult is one cell of Figs. 5–7 / Table 1.
type ClassResult struct {
	Encoding  Encoding
	Model     ModelName
	F1        float64
	Accuracy  float64
	Instances int
	// ProcTime is the paper's "processing time": train+test wall clock of
	// one full cross-validation.
	ProcTime time.Duration
}

// ClassificationDataset builds the ml dataset for an encoding: one instance
// per eligible house-day, class = house. Symbolic encodings produce nominal
// attributes whose categories are the binary symbol strings; raw produces
// numeric attributes. Missing slots stay NaN (missing).
func (p *Pipeline) ClassificationDataset(enc Encoding) (*ml.Dataset, error) {
	vectors, err := p.Vectors(enc.Window)
	if err != nil {
		return nil, err
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("experiments: no eligible days at window %d", enc.Window)
	}
	slots := len(vectors[0].Values)

	attrs := make([]ml.Attribute, slots)
	raw := enc.Method == symbolic.MethodNone
	var symbolNames []string
	if !raw {
		alpha, err := symbolic.NewAlphabet(enc.K)
		if err != nil {
			return nil, err
		}
		symbolNames = make([]string, alpha.Size())
		for i, s := range alpha.Symbols() {
			symbolNames[i] = s.String()
		}
	}
	for i := range attrs {
		name := fmt.Sprintf("t%d", i)
		if raw {
			attrs[i] = ml.NumericAttr(name)
		} else {
			attrs[i] = ml.NominalAttr(name, symbolNames)
		}
	}
	schema, err := ml.NewSchema(attrs, p.HouseNames())
	if err != nil {
		return nil, err
	}
	d := ml.NewDataset(schema)

	// Per-house tables are fetched lazily; the global table once.
	tables := make([]*symbolic.Table, p.cfg.Houses)
	var global *symbolic.Table
	if !raw {
		if enc.GlobalTable {
			if global, err = p.Table(enc.Method, enc.K, -1); err != nil {
				return nil, err
			}
		} else {
			for h := 0; h < p.cfg.Houses; h++ {
				if tables[h], err = p.Table(enc.Method, enc.K, h); err != nil {
					return nil, err
				}
			}
		}
	}

	for _, vec := range vectors {
		x := make([]float64, slots)
		table := global
		if !raw && !enc.GlobalTable {
			table = tables[vec.House]
		}
		for i, v := range vec.Values {
			switch {
			case math.IsNaN(v):
				x[i] = math.NaN()
			case raw:
				x[i] = v
			default:
				x[i] = float64(table.Encode(v).Index())
			}
		}
		if err := d.Add(x, vec.House); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Classify runs the paper's 10-fold cross-validation for one encoding and
// model, returning the weighted F-measure and processing time.
func (p *Pipeline) Classify(enc Encoding, model ModelName) (ClassResult, error) {
	d, err := p.ClassificationDataset(enc)
	if err != nil {
		return ClassResult{}, err
	}
	folds := 10
	if d.Len() < folds {
		folds = d.Len()
	}
	seed := p.cfg.Seed + 1000
	res, err := eval.CrossValidate(d, folds, seed, func() ml.Classifier {
		return NewModel(model, seed)
	})
	if err != nil {
		return ClassResult{}, err
	}
	return ClassResult{
		Encoding:  enc,
		Model:     model,
		F1:        res.F1(),
		Accuracy:  res.Accuracy(),
		Instances: d.Len(),
		ProcTime:  res.ProcessingTime(),
	}, nil
}

// EncodingGrid returns the paper's full sweep for a given table mode:
// {distinctmedian, median, uniform} × {1h, 15m} × {2,4,8,16}, in the order
// the figures' x-axes use.
func EncodingGrid(global bool) []Encoding {
	var out []Encoding
	for _, m := range symbolic.Methods {
		for _, w := range Windows {
			for _, k := range Alphabets {
				out = append(out, Encoding{Method: m, Window: w, K: k, GlobalTable: global})
			}
		}
	}
	return out
}

// RawEncodings returns the raw (aggregated) comparison rows.
func RawEncodings() []Encoding {
	return []Encoding{
		{Method: symbolic.MethodNone, Window: Window1h},
		{Method: symbolic.MethodNone, Window: Window15m},
	}
}
