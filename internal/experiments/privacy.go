package experiments

import (
	"fmt"
	"io"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

// The paper motivates symbolic representation partly by privacy: "smart
// meter data contains very detailed energy consumption measurement which
// can lead to customer privacy breach", and the symbols "obscure smart
// meter detail measurements". This runner quantifies that claim with a
// concrete adversary: appliance-event detection. An eavesdropper sees only
// the symbol stream (plus the lookup table) and tries to detect high-power
// appliance activations — the signal behind occupancy and habit inference.
// We measure the attack's precision/recall from reconstructed values as the
// alphabet shrinks and the window grows, against the same attack run on the
// raw data.

// PrivacyConfig parameterises the event-detection study.
type PrivacyConfig struct {
	Seed int64
	// Days is how many days to attack after the two training days
	// (default 5).
	Days int
	// EventThreshold is the power step (W) that counts as an appliance
	// event in the reference attack on raw data (default 1000).
	EventThreshold float64
}

func (c PrivacyConfig) withDefaults() PrivacyConfig {
	if c.Days <= 0 {
		c.Days = 5
	}
	if c.EventThreshold <= 0 {
		c.EventThreshold = 1000
	}
	return c
}

// PrivacyRow reports the attack quality for one encoding.
type PrivacyRow struct {
	Encoding  string
	Window    int64
	K         int
	Precision float64
	Recall    float64
	F1        float64
}

// RunPrivacy generates one house, establishes reference events from the raw
// 1 Hz stream (step detector on minute averages), then runs the same
// detector on each encoding's reconstruction and scores it against the
// reference.
func (p *Pipeline) RunPrivacy(cfg PrivacyConfig) ([]PrivacyRow, error) {
	cfg = cfg.withDefaults()
	if err := p.Build(); err != nil {
		return nil, err
	}
	gen := p.Generator()
	days := cfg.Days
	if days > p.cfg.Days-p.cfg.TrainDays {
		days = p.cfg.Days - p.cfg.TrainDays
	}

	// Assemble the attacked span at one-minute resolution (fine enough for
	// event timing, coarse enough to be cheap).
	var span []timeseries.Point
	for d := p.cfg.TrainDays; d < p.cfg.TrainDays+days; d++ {
		day := gen.HouseDay(0, d).Resample(60)
		span = append(span, day.Points...)
	}
	series := timeseries.MustNew("attack", span)
	refEvents := detectEvents(series.Values(), cfg.EventThreshold)
	if len(refEvents) == 0 {
		return nil, fmt.Errorf("experiments: no reference events at threshold %v", cfg.EventThreshold)
	}

	var rows []PrivacyRow
	for _, window := range []int64{60, Window15m, Window1h} {
		for _, k := range []int{16, 4, 2} {
			table, err := p.Table(symbolic.MethodMedian, k, 0)
			if err != nil {
				return nil, err
			}
			encoded, err := symbolic.EncodeSeries(series, table, window)
			if err != nil {
				return nil, err
			}
			recon, err := encoded.Reconstruct()
			if err != nil {
				return nil, err
			}
			// Upsample the reconstruction back to minute slots by holding
			// each window's value, so event indices are comparable.
			up := upsample(recon, window, series)
			got := detectEvents(up, cfg.EventThreshold)
			precision, recall := matchEvents(refEvents, got, int(window/60)+2)
			f1 := 0.0
			if precision+recall > 0 {
				f1 = 2 * precision * recall / (precision + recall)
			}
			rows = append(rows, PrivacyRow{
				Encoding: fmt.Sprintf("median k=%d @%s", k, windowName(window)),
				Window:   window, K: k,
				Precision: precision, Recall: recall, F1: f1,
			})
		}
	}
	return rows, nil
}

func windowName(w int64) string {
	switch w {
	case 60:
		return "1m"
	case Window15m:
		return "15m"
	case Window1h:
		return "1h"
	}
	return fmt.Sprintf("%ds", w)
}

// detectEvents returns indices where the value steps up by at least
// threshold relative to the previous sample.
func detectEvents(values []float64, threshold float64) []int {
	var events []int
	for i := 1; i < len(values); i++ {
		if values[i]-values[i-1] >= threshold {
			events = append(events, i)
		}
	}
	return events
}

// upsample expands a window-aggregated reconstruction back onto the minute
// grid of the original series by holding values.
func upsample(recon *timeseries.Series, window int64, original *timeseries.Series) []float64 {
	out := make([]float64, original.Len())
	j := 0
	for i, p := range original.Points {
		for j+1 < recon.Len() && recon.Points[j].T <= p.T {
			j++
		}
		out[i] = recon.Points[j].V
	}
	return out
}

// matchEvents greedily matches detected events to reference events within
// a tolerance (minutes) and returns precision and recall.
func matchEvents(ref, got []int, tolerance int) (precision, recall float64) {
	if len(got) == 0 {
		return 0, 0
	}
	usedRef := make([]bool, len(ref))
	matched := 0
	for _, g := range got {
		for ri, r := range ref {
			if usedRef[ri] {
				continue
			}
			if abs(g-r) <= tolerance {
				usedRef[ri] = true
				matched++
				break
			}
		}
	}
	return float64(matched) / float64(len(got)), float64(matched) / float64(len(ref))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// WritePrivacy renders the attack table; F1 should fall as k shrinks and
// the window grows — quantifying the paper's "obscure detail measurements".
func WritePrivacy(w io.Writer, rows []PrivacyRow) error {
	if _, err := fmt.Fprintf(w, "%-22s %10s %10s %10s\n", "encoding", "precision", "recall", "attack F1"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-22s %10.2f %10.2f %10.2f\n",
			r.Encoding, r.Precision, r.Recall, r.F1); err != nil {
			return err
		}
	}
	return nil
}
