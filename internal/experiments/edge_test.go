package experiments

import (
	"math"
	"strings"
	"testing"

	"symmeter/internal/symbolic"
)

// Failure-injection and edge-condition tests for the experiment pipeline.

func TestClassificationSingleHouseErrors(t *testing.T) {
	// One house means one class: the schema must reject it rather than
	// silently producing a degenerate classifier.
	p := NewPipeline(Config{Seed: 1, Houses: 1, Days: 4, DisableGaps: true})
	_, err := p.ClassificationDataset(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 4})
	if err == nil {
		t.Fatal("single-house classification should error")
	}
	if !strings.Contains(err.Error(), "classes") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestClassifyBadAlphabet(t *testing.T) {
	p := testPipeline(t)
	if _, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 3}, ModelNaiveBayes); err == nil {
		t.Fatal("k=3 should error")
	}
}

func TestClassifyBadWindow(t *testing.T) {
	p := testPipeline(t)
	if _, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: 7, K: 4}, ModelNaiveBayes); err == nil {
		t.Fatal("window not dividing a day should error")
	}
}

func TestForecastHouseOutOfRange(t *testing.T) {
	p := testPipeline(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for house out of range")
		}
	}()
	// hourlySeries filters by house, so an out-of-range house yields an
	// all-NaN series -> skip; but Table() must reject it first on the
	// symbolic path. Either way the generator panics when asked directly.
	p.Generator().HouseDay(99, 0)
}

func TestForecastOutOfRangeHouseSkipsOrErrors(t *testing.T) {
	p := testPipeline(t)
	res, err := p.ForecastHouse(7, ForecastConfig{Method: symbolic.MethodNone})
	// House 7 does not exist in a 4-house pipeline; the hourly series is
	// all NaN, so the split finds no run and the house is skipped.
	if err != nil {
		t.Fatalf("expected graceful skip, got %v", err)
	}
	if !res.Skipped {
		t.Fatal("nonexistent house should be skipped")
	}
}

func TestVectorsAllNaNDayExcluded(t *testing.T) {
	// Days failing the coverage threshold never enter Vectors, so no
	// instance can be entirely NaN.
	p := NewPipeline(Config{Seed: 8, Houses: 6, Days: 8})
	vecs, err := p.Vectors(Window1h)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs {
		allNaN := true
		for _, x := range v.Values {
			if !math.IsNaN(x) {
				allNaN = false
				break
			}
		}
		if allNaN {
			t.Fatalf("house %d day %d is all NaN yet eligible", v.House, v.Day)
		}
	}
}

func TestClassifyFewInstancesReducedFolds(t *testing.T) {
	// Two days per house: fewer instances than 10 folds; the runner reduces
	// fold count instead of failing.
	p := NewPipeline(Config{Seed: 9, Houses: 2, Days: 2, DisableGaps: true})
	res, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 4}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 4 {
		t.Fatalf("instances = %d", res.Instances)
	}
}

func TestRunPrivacyTooFewDays(t *testing.T) {
	// Days beyond the dataset are clamped; the run must still work.
	p := NewPipeline(Config{Seed: 10, Houses: 1, Days: 4, DisableGaps: true})
	rows, err := p.RunPrivacy(PrivacyConfig{Days: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("expected rows")
	}
}

func TestRunClusteringOneHouseErrors(t *testing.T) {
	p := NewPipeline(Config{Seed: 11, Houses: 1, Days: 4, DisableGaps: true})
	if _, err := p.RunClustering(ClusterConfig{}); err == nil {
		t.Fatal("clustering one house should error")
	}
}

func TestTableCacheSharedAcrossEncodings(t *testing.T) {
	p := testPipeline(t)
	t1, err := p.Table(symbolic.MethodMedian, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.Table(symbolic.MethodMedian, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("per-house table should be cached")
	}
}
