// Package experiments wires the substrates into the paper's evaluation
// pipeline and regenerates every table and figure of §3: the synthetic
// REDD-like dataset feeds per-house (or global) lookup-table learning from
// two days of history, day-vectors are built at 15-minute and 1-hour
// aggregation, and the ml classifiers are scored with 10-fold
// cross-validated weighted F-measure (classification) or MAE (forecasting).
package experiments

import (
	"fmt"
	"math"
	"sync"

	"symmeter/internal/dataset"
	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

// Window constants used by the paper.
const (
	Window15m = 900
	Window1h  = 3600
	// WindowRaw1s marks un-aggregated 1 Hz vectors (the "raw 1sec" row).
	WindowRaw1s = 1
)

// Alphabets lists the alphabet sizes the paper sweeps (2 to 16, powers of 2).
var Alphabets = []int{2, 4, 8, 16}

// Windows lists the aggregation lengths the paper uses.
var Windows = []int64{Window1h, Window15m}

// Config parameterises the pipeline.
type Config struct {
	// Seed drives the synthetic dataset.
	Seed int64
	// Houses and Days size the dataset (defaults 6 and 24).
	Houses, Days int
	// TrainDays is how many leading days feed the separator statistics
	// (the paper uses the first two days).
	TrainDays int
	// CoverageThreshold is the paper's "enough data" bar in seconds of
	// coverage per day (default 20 h).
	CoverageThreshold int64
	// DisableGaps turns off missing-data simulation (for tests that need
	// every day eligible).
	DisableGaps bool
}

func (c Config) withDefaults() Config {
	if c.Houses <= 0 {
		c.Houses = 6
	}
	if c.Days <= 0 {
		c.Days = 24
	}
	if c.TrainDays <= 0 {
		c.TrainDays = 2
	}
	if c.CoverageThreshold <= 0 {
		c.CoverageThreshold = 20 * 3600
	}
	return c
}

// DayVector is one day of one house aggregated at a fixed window: the raw
// day-vector the classification experiments consume. Slots with no data are
// NaN.
type DayVector struct {
	House int
	Day   int
	// Values has 86400/window entries.
	Values []float64
}

// Pipeline generates the dataset once and caches everything the experiment
// runners need.
type Pipeline struct {
	cfg Config
	gen *dataset.Generator

	mu sync.Mutex
	// trainValues[h] holds the raw 1 Hz values of house h's training days.
	trainValues [][]float64
	// vectors[window] holds eligible day-vectors for all houses.
	vectors map[int64][]DayVector
	// eligibleDays[h] lists day indices passing the coverage threshold.
	eligibleDays [][]int
	// tables caches learned lookup tables.
	tables map[tableKey]*symbolic.Table
	built  bool
}

type tableKey struct {
	method symbolic.Method
	k      int
	house  int // -1 for the global (single) table
}

// NewPipeline returns an unbuilt pipeline.
func NewPipeline(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{
		cfg: cfg,
		gen: dataset.New(dataset.Config{
			Seed: cfg.Seed, Houses: cfg.Houses, Days: cfg.Days,
			DisableGaps: cfg.DisableGaps,
		}),
		vectors: make(map[int64][]DayVector),
		tables:  make(map[tableKey]*symbolic.Table),
	}
}

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Generator exposes the underlying dataset generator (for figure runners).
func (p *Pipeline) Generator() *dataset.Generator { return p.gen }

// Build generates every house-day once, accumulating training statistics
// and day-vectors for the requested windows. Build is idempotent for
// windows already built.
func (p *Pipeline) Build(windows ...int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var missing []int64
	for _, w := range windows {
		if _, ok := p.vectors[w]; !ok {
			missing = append(missing, w)
		}
	}
	if p.built && len(missing) == 0 {
		return nil
	}
	for _, w := range missing {
		if w <= 0 || timeseries.SecondsPerDay%w != 0 {
			return fmt.Errorf("experiments: window %d must divide a day", w)
		}
		p.vectors[w] = nil
	}
	if !p.built {
		p.trainValues = make([][]float64, p.cfg.Houses)
		p.eligibleDays = make([][]int, p.cfg.Houses)
	}

	for h := 0; h < p.cfg.Houses; h++ {
		for d := 0; d < p.cfg.Days; d++ {
			day := p.gen.HouseDay(h, d)
			if !p.built {
				if d < p.cfg.TrainDays {
					for _, pt := range day.Points {
						p.trainValues[h] = append(p.trainValues[h], pt.V)
					}
				}
				if p.coverage(day) >= p.cfg.CoverageThreshold {
					p.eligibleDays[h] = append(p.eligibleDays[h], d)
				}
			}
			if p.coverage(day) < p.cfg.CoverageThreshold {
				continue
			}
			for _, w := range missing {
				p.vectors[w] = append(p.vectors[w], DayVector{
					House:  h,
					Day:    d,
					Values: dayVector(day, w),
				})
			}
		}
	}
	p.built = true
	return nil
}

// coverage counts seconds with data in a one-day series.
func (p *Pipeline) coverage(day *timeseries.Series) int64 {
	return int64(day.Len()) // 1 Hz generation: one point per covered second
}

// dayVector aggregates one day into 86400/window slots, NaN where the slot
// has no data.
func dayVector(day *timeseries.Series, window int64) []float64 {
	slots := int(timeseries.SecondsPerDay / window)
	sums := make([]float64, slots)
	counts := make([]int, slots)
	if !day.Empty() {
		dayStart := day.Start() - mod64(day.Start(), timeseries.SecondsPerDay)
		for _, pt := range day.Points {
			s := int((pt.T - dayStart) / window)
			if s >= 0 && s < slots {
				sums[s] += pt.V
				counts[s]++
			}
		}
	}
	out := make([]float64, slots)
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

func mod64(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// Vectors returns the eligible day-vectors at the given window, building if
// needed.
func (p *Pipeline) Vectors(window int64) ([]DayVector, error) {
	if err := p.Build(window); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vectors[window], nil
}

// EligibleDays returns the day indices of house h passing the coverage
// threshold.
func (p *Pipeline) EligibleDays(h int) ([]int, error) {
	if err := p.Build(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.eligibleDays[h], nil
}

// Table returns the lookup table for (method, k) learned from house h's
// training days; pass house = -1 for the single global table learned from
// all houses' training days pooled (the paper's "+" variants).
func (p *Pipeline) Table(method symbolic.Method, k, house int) (*symbolic.Table, error) {
	if err := p.Build(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := tableKey{method: method, k: k, house: house}
	if t, ok := p.tables[key]; ok {
		return t, nil
	}
	var values []float64
	if house >= 0 {
		if house >= p.cfg.Houses {
			return nil, fmt.Errorf("experiments: house %d out of range", house)
		}
		values = p.trainValues[house]
	} else {
		for _, vs := range p.trainValues {
			values = append(values, vs...)
		}
	}
	t, err := symbolic.Learn(method, values, k)
	if err != nil {
		return nil, fmt.Errorf("experiments: learn %s k=%d house=%d: %w", method, k, house, err)
	}
	p.tables[key] = t
	return t, nil
}

// HouseNames returns the class labels ("house1", ...).
func (p *Pipeline) HouseNames() []string {
	names := make([]string, p.cfg.Houses)
	for h := range names {
		names[h] = fmt.Sprintf("house%d", h+1)
	}
	return names
}
