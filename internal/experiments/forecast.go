package experiments

import (
	"fmt"
	"math"

	"symmeter/internal/eval"
	"symmeter/internal/ml"
	"symmeter/internal/ml/ar"
	"symmeter/internal/ml/svm"
	"symmeter/internal/symbolic"
)

// ForecastConfig parameterises the §3.2 experiment: next-day hourly load
// forecasting from one week of history, reduced to classification over 12
// lag symbols (symbolic) or regression over 12 lag values (raw SVR).
type ForecastConfig struct {
	// Method selects the symbolic encoding; MethodNone runs the raw-value
	// SVR baseline.
	Method symbolic.Method
	// K is the alphabet size (the paper uses 16).
	K int
	// Lags is the number of lag attributes (the paper uses 12).
	Lags int
	// TrainDays is the history length in days (the paper uses 7).
	TrainDays int
	// Model picks the classifier for symbolic forecasting (ignored for raw).
	Model ModelName
}

func (c ForecastConfig) withDefaults() ForecastConfig {
	if c.K <= 0 {
		c.K = 16
	}
	if c.Lags <= 0 {
		c.Lags = 12
	}
	if c.TrainDays <= 0 {
		c.TrainDays = 7
	}
	if c.Model == "" {
		c.Model = ModelNaiveBayes
	}
	return c
}

// ForecastResult is one bar of Figs. 8/9.
type ForecastResult struct {
	House int
	// MAE is the mean absolute error in watts over the test day.
	MAE float64
	// Skipped marks houses without enough contiguous data (house 5 in the
	// paper).
	Skipped bool
	Reason  string
}

// hourlySeries assembles house h's hourly consumption across days as a flat
// slice indexed by absolute hour (day*24 + slot); NaN where data is missing
// or the day is ineligible.
func (p *Pipeline) hourlySeries(h int) ([]float64, error) {
	vectors, err := p.Vectors(Window1h)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.cfg.Days*24)
	for i := range out {
		out[i] = math.NaN()
	}
	for _, vec := range vectors {
		if vec.House != h {
			continue
		}
		copy(out[vec.Day*24:], vec.Values)
	}
	return out, nil
}

// forecastSplit finds the first run of TrainDays+1 consecutive days whose
// hourly series is mostly present (the paper's "enough data" bar: at least
// 20 of 24 hourly slots per day), returning the train hours and test-day
// hours. Hours still missing inside the run stay NaN; lag windows touching
// them are skipped downstream. A house with no such run is skipped — house
// 5 in the paper.
func (p *Pipeline) forecastSplit(h int, cfg ForecastConfig) (train, test []float64, err error) {
	hours, err := p.hourlySeries(h)
	if err != nil {
		return nil, nil, err
	}
	need := (cfg.TrainDays + 1) * 24
	dayOK := func(d int) bool {
		present := 0
		for i := d * 24; i < (d+1)*24; i++ {
			if !math.IsNaN(hours[i]) {
				present++
			}
		}
		return present >= 20
	}
	for d := 0; d+cfg.TrainDays+1 <= p.cfg.Days; d++ {
		ok := true
		for dd := d; dd <= d+cfg.TrainDays; dd++ {
			if !dayOK(dd) {
				ok = false
				break
			}
		}
		if ok {
			start := d * 24
			return hours[start : start+cfg.TrainDays*24],
				hours[start+cfg.TrainDays*24 : start+need], nil
		}
	}
	return nil, nil, nil // no run found: skip
}

// hasNaN reports whether any value in xs is NaN.
func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// ForecastHouse forecasts one house and reports the MAE over its test day.
func (p *Pipeline) ForecastHouse(h int, cfg ForecastConfig) (ForecastResult, error) {
	cfg = cfg.withDefaults()
	train, test, err := p.forecastSplit(h, cfg)
	if err != nil {
		return ForecastResult{}, err
	}
	if train == nil {
		return ForecastResult{House: h, Skipped: true,
			Reason: "not enough contiguous data"}, nil
	}
	if cfg.Method == symbolic.MethodNone {
		return p.forecastRaw(h, cfg, train, test)
	}
	return p.forecastSymbolic(h, cfg, train, test)
}

// forecastRaw is the paper's baseline: ε-SVR over 12 numeric lags.
func (p *Pipeline) forecastRaw(h int, cfg ForecastConfig, train, test []float64) (ForecastResult, error) {
	var xs [][]float64
	var ys []float64
	for i := cfg.Lags; i < len(train); i++ {
		if hasNaN(train[i-cfg.Lags:i]) || math.IsNaN(train[i]) {
			continue
		}
		xs = append(xs, train[i-cfg.Lags:i])
		ys = append(ys, train[i])
	}
	if len(xs) == 0 {
		return ForecastResult{House: h, Skipped: true, Reason: "no complete lag windows"}, nil
	}
	model := svm.New(svm.Config{C: 1, Iters: 600})
	if err := model.FitRegression(xs, ys); err != nil {
		return ForecastResult{}, fmt.Errorf("experiments: SVR house %d: %w", h+1, err)
	}
	// One-step-ahead over the test day: lags use actual history; hours with
	// missing lags or target are skipped.
	history := append(append([]float64(nil), train...), test...)
	var pred, actual []float64
	offset := len(train)
	for i := 0; i < len(test); i++ {
		lag := history[offset+i-cfg.Lags : offset+i]
		if hasNaN(lag) || math.IsNaN(test[i]) {
			continue
		}
		pred = append(pred, model.PredictValue(lag))
		actual = append(actual, test[i])
	}
	if len(pred) == 0 {
		return ForecastResult{House: h, Skipped: true, Reason: "no predictable test hours"}, nil
	}
	mae, err := eval.MAE(pred, actual)
	if err != nil {
		return ForecastResult{}, err
	}
	return ForecastResult{House: h, MAE: mae}, nil
}

// forecastSymbolic reduces forecasting to next-symbol classification, then
// maps predicted symbols to the centers of their ranges (§3.2 semantics).
func (p *Pipeline) forecastSymbolic(h int, cfg ForecastConfig, train, test []float64) (ForecastResult, error) {
	table, err := p.Table(cfg.Method, cfg.K, h)
	if err != nil {
		return ForecastResult{}, err
	}
	// Encode the hourly values; missing hours become -1 and any lag window
	// touching one is skipped.
	encode := func(vals []float64) []int {
		out := make([]int, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) {
				out[i] = -1
				continue
			}
			out[i] = table.Encode(v).Index()
		}
		return out
	}
	trainSym := encode(train)
	testSym := encode(test)

	// Schema: Lags nominal attributes, class = next symbol.
	alpha, err := symbolic.NewAlphabet(cfg.K)
	if err != nil {
		return ForecastResult{}, err
	}
	names := make([]string, alpha.Size())
	for i, s := range alpha.Symbols() {
		names[i] = s.String()
	}
	attrs := make([]ml.Attribute, cfg.Lags)
	for i := range attrs {
		attrs[i] = ml.NominalAttr(fmt.Sprintf("lag%d", cfg.Lags-i), names)
	}
	schema, err := ml.NewSchema(attrs, names)
	if err != nil {
		return ForecastResult{}, err
	}
	d := ml.NewDataset(schema)
	for i := cfg.Lags; i < len(trainSym); i++ {
		if trainSym[i] < 0 {
			continue
		}
		x := make([]float64, cfg.Lags)
		complete := true
		for j := 0; j < cfg.Lags; j++ {
			s := trainSym[i-cfg.Lags+j]
			if s < 0 {
				complete = false
				break
			}
			x[j] = float64(s)
		}
		if !complete {
			continue
		}
		if err := d.Add(x, trainSym[i]); err != nil {
			return ForecastResult{}, err
		}
	}
	if d.Len() == 0 {
		return ForecastResult{House: h, Skipped: true, Reason: "no complete lag windows"}, nil
	}
	model := NewModel(cfg.Model, p.cfg.Seed+int64(h))
	if err := model.Fit(d); err != nil {
		return ForecastResult{}, fmt.Errorf("experiments: %s house %d: %w", cfg.Model, h+1, err)
	}

	// One-step-ahead next-symbol prediction over the test day.
	historySym := append(append([]int(nil), trainSym...), testSym...)
	offset := len(trainSym)
	var pred, actual []float64
	for i := 0; i < len(testSym); i++ {
		if testSym[i] < 0 || math.IsNaN(test[i]) {
			continue
		}
		x := make([]float64, cfg.Lags)
		complete := true
		for j := 0; j < cfg.Lags; j++ {
			s := historySym[offset+i-cfg.Lags+j]
			if s < 0 {
				complete = false
				break
			}
			x[j] = float64(s)
		}
		if !complete {
			continue
		}
		symIdx := model.Predict(x)
		center, err := table.Center(symbolic.NewSymbol(symIdx, table.Level()))
		if err != nil {
			return ForecastResult{}, err
		}
		pred = append(pred, center)
		actual = append(actual, test[i])
	}
	if len(pred) == 0 {
		return ForecastResult{House: h, Skipped: true, Reason: "no predictable test hours"}, nil
	}
	mae, err := eval.MAE(pred, actual)
	if err != nil {
		return ForecastResult{}, err
	}
	return ForecastResult{House: h, MAE: mae}, nil
}

// ForecastAll runs the forecasting experiment for every house, skipping
// those without enough data (the paper skips house 5).
func (p *Pipeline) ForecastAll(cfg ForecastConfig) ([]ForecastResult, error) {
	out := make([]ForecastResult, 0, p.cfg.Houses)
	for h := 0; h < p.cfg.Houses; h++ {
		r, err := p.ForecastHouse(h, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ForecastMethods lists the Figs. 8/9 series: raw SVR plus the three
// symbolic methods.
func ForecastMethods() []symbolic.Method {
	return []symbolic.Method{symbolic.MethodNone, symbolic.MethodDistinctMedian,
		symbolic.MethodMedian, symbolic.MethodUniform}
}

// ForecastARBaseline runs the AR(24) and seasonal-naive baselines the load-
// forecasting literature the paper cites builds on (Huang & Shih 2003;
// Taylor 2010), under the same split as ForecastHouse.
func (p *Pipeline) ForecastARBaseline(h int, cfg ForecastConfig) (arRes, naiveRes ForecastResult, err error) {
	cfg = cfg.withDefaults()
	train, test, err := p.forecastSplit(h, cfg)
	if err != nil {
		return ForecastResult{}, ForecastResult{}, err
	}
	if train == nil {
		skipped := ForecastResult{House: h, Skipped: true, Reason: "not enough contiguous data"}
		return skipped, skipped, nil
	}
	// AR needs a contiguous series: fill residual NaNs with the train mean.
	filled := make([]float64, len(train))
	var mean float64
	var n int
	for _, v := range train {
		if !math.IsNaN(v) {
			mean += v
			n++
		}
	}
	if n == 0 {
		skipped := ForecastResult{House: h, Skipped: true, Reason: "no training data"}
		return skipped, skipped, nil
	}
	mean /= float64(n)
	for i, v := range train {
		if math.IsNaN(v) {
			filled[i] = mean
		} else {
			filled[i] = v
		}
	}

	maeOf := func(pred []float64) (float64, bool) {
		var sum float64
		cnt := 0
		for i := range test {
			if math.IsNaN(test[i]) {
				continue
			}
			sum += math.Abs(pred[i] - test[i])
			cnt++
		}
		if cnt == 0 {
			return 0, false
		}
		return sum / float64(cnt), true
	}

	model, err := ar.Fit(filled, 24)
	if err != nil {
		return ForecastResult{}, ForecastResult{}, fmt.Errorf("experiments: AR house %d: %w", h+1, err)
	}
	arPred, err := model.Forecast(filled, len(test))
	if err != nil {
		return ForecastResult{}, ForecastResult{}, err
	}
	if mae, ok := maeOf(arPred); ok {
		arRes = ForecastResult{House: h, MAE: mae}
	} else {
		arRes = ForecastResult{House: h, Skipped: true, Reason: "no test hours"}
	}

	naivePred, err := ar.SeasonalNaive(filled, 24, len(test))
	if err != nil {
		return ForecastResult{}, ForecastResult{}, err
	}
	if mae, ok := maeOf(naivePred); ok {
		naiveRes = ForecastResult{House: h, MAE: mae}
	} else {
		naiveRes = ForecastResult{House: h, Skipped: true, Reason: "no test hours"}
	}
	return arRes, naiveRes, nil
}
