package experiments

import (
	"testing"

	"symmeter/internal/stats"
	"symmeter/internal/symbolic"
)

func forecastPipeline(t *testing.T) *Pipeline {
	t.Helper()
	// 7 train days + 1 test day requires at least 8 days.
	return NewPipeline(Config{Seed: 7, Houses: 3, Days: 9, DisableGaps: true})
}

func TestForecastConfigDefaults(t *testing.T) {
	c := ForecastConfig{}.withDefaults()
	if c.K != 16 || c.Lags != 12 || c.TrainDays != 7 || c.Model != ModelNaiveBayes {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestForecastSymbolicRuns(t *testing.T) {
	p := forecastPipeline(t)
	res, err := p.ForecastHouse(0, ForecastConfig{Method: symbolic.MethodMedian})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatalf("gapless house skipped: %s", res.Reason)
	}
	if res.MAE <= 0 {
		t.Fatalf("MAE = %v", res.MAE)
	}
	// Sanity: MAE should be well below the house's mean consumption.
	mean := p.Generator().HouseDay(0, 8).Summary().Mean
	if res.MAE > mean*1.5 {
		t.Fatalf("MAE %v exceeds 1.5× mean consumption %v", res.MAE, mean)
	}
}

func TestForecastRawSVRRuns(t *testing.T) {
	p := forecastPipeline(t)
	res, err := p.ForecastHouse(0, ForecastConfig{Method: symbolic.MethodNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.MAE <= 0 {
		t.Fatalf("raw forecast = %+v", res)
	}
}

func TestForecastBeatsNaiveConstant(t *testing.T) {
	// Symbolic forecasting should beat predicting the overall train mean —
	// the weakest plausible baseline.
	p := forecastPipeline(t)
	res, err := p.ForecastHouse(0, ForecastConfig{Method: symbolic.MethodMedian, Model: ModelRandomForest})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := p.forecastSplit(0, ForecastConfig{}.withDefaults())
	if err != nil || train == nil {
		t.Fatalf("split: %v", err)
	}
	mean := stats.Mean(train)
	var constMAE float64
	for _, v := range test {
		constMAE += abs64(v - mean)
	}
	constMAE /= float64(len(test))
	// Hourly residential load is genuinely hard (the paper makes the same
	// point); demand only that the model is not pathologically broken.
	if res.MAE > constMAE*2 {
		t.Fatalf("forecast MAE %v more than 2× constant-mean baseline %v", res.MAE, constMAE)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestForecastAllSkipsGappyHouse(t *testing.T) {
	// With gaps on and house index 4 chronically gappy, ForecastAll must
	// mark it skipped — the paper's "House 5 is skipped because there is
	// not enough data".
	p := NewPipeline(Config{Seed: 11, Houses: 6, Days: 12})
	results, err := p.ForecastAll(ForecastConfig{Method: symbolic.MethodMedian})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	if !results[4].Skipped {
		t.Fatal("house 5 (index 4) should be skipped for lack of data")
	}
	ran := 0
	for _, r := range results {
		if !r.Skipped {
			ran++
		}
	}
	if ran < 3 {
		t.Fatalf("only %d houses ran; want most of them", ran)
	}
}

func TestForecastARBaseline(t *testing.T) {
	p := forecastPipeline(t)
	arRes, naiveRes, err := p.ForecastARBaseline(0, ForecastConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if arRes.Skipped || naiveRes.Skipped {
		t.Fatalf("gapless house skipped: %+v %+v", arRes, naiveRes)
	}
	if arRes.MAE <= 0 || naiveRes.MAE <= 0 {
		t.Fatalf("MAE = %v / %v", arRes.MAE, naiveRes.MAE)
	}
	// Both baselines should be in a sane range relative to mean consumption.
	mean := p.Generator().HouseDay(0, 8).Summary().Mean
	if arRes.MAE > mean*2 || naiveRes.MAE > mean*2 {
		t.Fatalf("baseline MAEs implausible: AR %v, naive %v, mean %v", arRes.MAE, naiveRes.MAE, mean)
	}
}

func TestForecastARBaselineSkipsGappy(t *testing.T) {
	p := NewPipeline(Config{Seed: 11, Houses: 6, Days: 12})
	arRes, naiveRes, err := p.ForecastARBaseline(4, ForecastConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !arRes.Skipped || !naiveRes.Skipped {
		t.Fatal("chronically gappy house should be skipped")
	}
}

func TestForecastMethodsList(t *testing.T) {
	ms := ForecastMethods()
	if len(ms) != 4 || ms[0] != symbolic.MethodNone {
		t.Fatalf("ForecastMethods = %v", ms)
	}
}

func TestForecastAllSymbolicMethods(t *testing.T) {
	p := forecastPipeline(t)
	for _, m := range []symbolic.Method{symbolic.MethodDistinctMedian, symbolic.MethodUniform} {
		res, err := p.ForecastHouse(1, ForecastConfig{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Skipped || res.MAE <= 0 {
			t.Fatalf("%s: %+v", m, res)
		}
	}
}
