package experiments

import (
	"math"
	"strings"
	"testing"

	"symmeter/internal/ml"
	"symmeter/internal/symbolic"
)

func TestEncodingString(t *testing.T) {
	cases := []struct {
		enc  Encoding
		want string
	}{
		{Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 16}, "median 1h 16s"},
		{Encoding{Method: symbolic.MethodUniform, Window: Window15m, K: 2}, "uniform 15m 2s"},
		{Encoding{Method: symbolic.MethodDistinctMedian, Window: Window1h, K: 8, GlobalTable: true}, "distinctmedian+ 1h 8s"},
		{Encoding{Method: symbolic.MethodNone, Window: Window1h}, "raw 1h"},
		{Encoding{Method: symbolic.MethodNone, Window: WindowRaw1s}, "raw 1sec"},
	}
	for _, c := range cases {
		if got := c.enc.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestEncodingGrid(t *testing.T) {
	grid := EncodingGrid(false)
	if len(grid) != 3*2*4 {
		t.Fatalf("grid size = %d, want 24", len(grid))
	}
	for _, e := range grid {
		if e.GlobalTable {
			t.Fatal("per-house grid must not set GlobalTable")
		}
	}
	plus := EncodingGrid(true)
	if !plus[0].GlobalTable {
		t.Fatal("global grid must set GlobalTable")
	}
	if len(RawEncodings()) != 2 {
		t.Fatal("raw encodings")
	}
}

func TestNewModelKnownAndUnknown(t *testing.T) {
	for _, m := range AllModels {
		if NewModel(m, 1) == nil {
			t.Fatalf("NewModel(%s) = nil", m)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown model should panic")
		}
	}()
	NewModel("nope", 1)
}

func TestClassificationDatasetSymbolic(t *testing.T) {
	p := testPipeline(t)
	enc := Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 4}
	d, err := p.ClassificationDataset(enc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 24 { // 4 houses × 6 days, gapless
		t.Fatalf("instances = %d", d.Len())
	}
	if d.Schema.NumAttrs() != 24 {
		t.Fatalf("attrs = %d", d.Schema.NumAttrs())
	}
	for _, a := range d.Schema.Attrs {
		if a.Kind != ml.Nominal || a.NumValues() != 4 {
			t.Fatalf("attr = %+v", a)
		}
		if a.Values[0] != "00" || a.Values[3] != "11" {
			t.Fatalf("symbol categories = %v", a.Values)
		}
	}
	// Every value must be a valid category index.
	for _, in := range d.Instances {
		for _, v := range in.X {
			if math.IsNaN(v) {
				continue
			}
			if v != math.Trunc(v) || v < 0 || v > 3 {
				t.Fatalf("bad nominal index %v", v)
			}
		}
	}
}

func TestClassificationDatasetRaw(t *testing.T) {
	p := testPipeline(t)
	d, err := p.ClassificationDataset(Encoding{Method: symbolic.MethodNone, Window: Window1h})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range d.Schema.Attrs {
		if a.Kind != ml.Numeric {
			t.Fatal("raw encoding must produce numeric attributes")
		}
	}
}

func TestGlobalVsPerHouseEncodingsDiffer(t *testing.T) {
	p := testPipeline(t)
	per, err := p.ClassificationDataset(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	glob, err := p.ClassificationDataset(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 8, GlobalTable: true})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range per.Instances {
		for j := range per.Instances[i].X {
			if per.Instances[i].X[j] != glob.Instances[i].X[j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("global and per-house encodings should differ somewhere")
	}
}

func TestClassifyEndToEnd(t *testing.T) {
	p := testPipeline(t)
	res, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 16}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 24 {
		t.Fatalf("instances = %d", res.Instances)
	}
	// 4 distinctive houses, k=16 per-house tables: far better than the 0.25
	// chance level.
	if res.F1 < 0.5 {
		t.Fatalf("F1 = %v, want > 0.5", res.F1)
	}
	if res.ProcTime <= 0 {
		t.Fatal("processing time must be positive")
	}
	if !strings.Contains(res.Encoding.String(), "median") {
		t.Fatalf("result encoding = %v", res.Encoding)
	}
}

func TestClassifyPaperShapeAlphabetHelps(t *testing.T) {
	// The Fig. 5/6 mechanism: k=16 beats k=2 for the median method (allowing
	// equality, which can happen on tiny test datasets).
	p := testPipeline(t)
	lo, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 2}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 16}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	if hi.F1 < lo.F1-0.05 {
		t.Fatalf("k=16 F1 %v noticeably below k=2 F1 %v", hi.F1, lo.F1)
	}
}

func TestClassifyPerHouseBeatsGlobal(t *testing.T) {
	// The paper's Fig. 7 finding: per-house tables leak house identity into
	// the encoding, so the "+" (global) variant scores lower. This holds at
	// realistic dataset sizes (the tiny gapless fixtures used elsewhere can
	// go either way), so this test uses a full-size pipeline.
	p := NewPipeline(Config{Seed: 2, Houses: 6, Days: 14})
	per, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 16}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 16, GlobalTable: true}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	if glob.F1 >= per.F1 {
		t.Fatalf("global table F1 %v not below per-house %v — contradicts the paper's Fig. 7", glob.F1, per.F1)
	}
}

func TestClassifyMedianBeatsUniform(t *testing.T) {
	// Fig. 5/6 ordering: the uniform method wastes symbols on the sparse
	// high-power tail and scores well below median at small k.
	p := NewPipeline(Config{Seed: 2, Houses: 6, Days: 14})
	med, err := p.Classify(Encoding{Method: symbolic.MethodMedian, Window: Window1h, K: 4}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := p.Classify(Encoding{Method: symbolic.MethodUniform, Window: Window1h, K: 4}, ModelNaiveBayes)
	if err != nil {
		t.Fatal(err)
	}
	if med.F1 <= uni.F1 {
		t.Fatalf("median F1 %v not above uniform %v", med.F1, uni.F1)
	}
}
