package experiments

import (
	"fmt"
	"io"
	"math"

	"symmeter/internal/ml/cluster"
	"symmeter/internal/symbolic"
)

// Customer segmentation in its unsupervised form: cluster house-days and
// check how well clusters recover houses. The paper frames segmentation as
// classification because REDD has only six houses; this runner adds the
// clustering view, and demonstrates the complement of the Fig. 7 finding —
// classification profits from per-house tables, but *cross-customer
// clustering needs the single global table*, because distances are only
// meaningful when all series share one symbol vocabulary.

// ClusterConfig parameterises the segmentation-as-clustering experiment.
type ClusterConfig struct {
	// Window is the aggregation (default 1 hour).
	Window int64
	// K is the alphabet size for symbolic representations (default 8).
	K int
	// Method learns the shared global table (default median).
	Method symbolic.Method
	// Algorithm: "kmedoids" (default) or "agglomerative".
	Algorithm string
	// Seed drives k-medoids initialisation.
	Seed int64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Window <= 0 {
		c.Window = Window1h
	}
	if c.K <= 0 {
		c.K = 8
	}
	if c.Method == symbolic.MethodNone {
		c.Method = symbolic.MethodMedian
	}
	if c.Algorithm == "" {
		c.Algorithm = "kmedoids"
	}
	return c
}

// ClusterRow is one representation's clustering quality.
type ClusterRow struct {
	Representation string
	Purity         float64
	ARI            float64
	Instances      int
}

// RunClustering clusters eligible house-days under three representations —
// raw values (L1), symbolic with the shared global table (value-gap
// distance), and symbolic Hamming — and scores each against house labels.
func (p *Pipeline) RunClustering(cfg ClusterConfig) ([]ClusterRow, error) {
	cfg = cfg.withDefaults()
	vectors, err := p.Vectors(cfg.Window)
	if err != nil {
		return nil, err
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("experiments: no eligible days")
	}
	labels := make([]int, len(vectors))
	housesPresent := map[int]bool{}
	for i, v := range vectors {
		labels[i] = v.House
		housesPresent[v.House] = true
	}
	k := len(housesPresent)
	if k < 2 {
		return nil, fmt.Errorf("experiments: need at least two houses, have %d", k)
	}

	table, err := p.Table(cfg.Method, cfg.K, -1)
	if err != nil {
		return nil, err
	}
	// Pre-encode the symbolic views; missing slots become bin 0 vs bin max
	// sentinels — use the nearest real encoding by treating NaN as the
	// lowest bin (absent load).
	symbols := make([][]symbolic.Symbol, len(vectors))
	for i, v := range vectors {
		row := make([]symbolic.Symbol, len(v.Values))
		for j, x := range v.Values {
			if math.IsNaN(x) {
				x = 0
			}
			row[j] = table.Encode(x)
		}
		symbols[i] = row
	}

	rawDist := func(i, j int) float64 {
		var sum float64
		for s := range vectors[i].Values {
			a, b := vectors[i].Values[s], vectors[j].Values[s]
			if math.IsNaN(a) {
				a = 0
			}
			if math.IsNaN(b) {
				b = 0
			}
			sum += math.Abs(a - b)
		}
		return sum
	}
	valueDist := func(i, j int) float64 {
		d, err := symbolic.ValueDistance(table, symbols[i], symbols[j])
		if err != nil {
			return math.Inf(1)
		}
		return d
	}
	hammingDist := func(i, j int) float64 {
		d, err := symbolic.Hamming(symbols[i], symbols[j])
		if err != nil {
			return math.Inf(1)
		}
		return float64(d)
	}

	runOne := func(name string, dist cluster.DistanceFunc) (ClusterRow, error) {
		var res cluster.Result
		var err error
		if cfg.Algorithm == "agglomerative" {
			res, err = cluster.Agglomerative(len(vectors), k, dist)
		} else {
			res, err = cluster.KMedoids(len(vectors), k, dist, cfg.Seed)
		}
		if err != nil {
			return ClusterRow{}, err
		}
		purity, err := cluster.Purity(res.Assign, labels)
		if err != nil {
			return ClusterRow{}, err
		}
		ari, err := cluster.AdjustedRandIndex(res.Assign, labels)
		if err != nil {
			return ClusterRow{}, err
		}
		return ClusterRow{Representation: name, Purity: purity, ARI: ari, Instances: len(vectors)}, nil
	}

	var rows []ClusterRow
	for _, c := range []struct {
		name string
		d    cluster.DistanceFunc
	}{
		{"raw L1", rawDist},
		{fmt.Sprintf("%s+ k=%d value-gap", cfg.Method, cfg.K), valueDist},
		{fmt.Sprintf("%s+ k=%d hamming", cfg.Method, cfg.K), hammingDist},
	} {
		row, err := runOne(c.name, c.d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteClustering renders the clustering comparison.
func WriteClustering(w io.Writer, rows []ClusterRow) error {
	if _, err := fmt.Fprintf(w, "%-28s %8s %8s %10s\n", "representation", "purity", "ARI", "instances"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-28s %8.2f %8.2f %10d\n",
			r.Representation, r.Purity, r.ARI, r.Instances); err != nil {
			return err
		}
	}
	return nil
}
