package experiments

import (
	"fmt"
	"io"
	"math"

	"symmeter/internal/symbolic"
)

// Ablation studies for the design choices DESIGN.md §5 calls out, runnable
// as `cmd/experiments -run ablation`.

// LearningWindowRow reports downstream classification quality for one
// separator-learning history length — the practical consequence of the
// Fig. 4 convergence claim ("the statistics start to converge after day
// one").
type LearningWindowRow struct {
	TrainDays int
	F1        float64
}

// RunLearningWindow sweeps the history length used to learn separators and
// reports the median/1h/16-symbol Naive Bayes F-measure for each.
func RunLearningWindow(seed int64, houses, days int, trainDays []int) ([]LearningWindowRow, error) {
	if len(trainDays) == 0 {
		trainDays = []int{1, 2, 4}
	}
	var rows []LearningWindowRow
	for _, td := range trainDays {
		p := NewPipeline(Config{Seed: seed, Houses: houses, Days: days, TrainDays: td})
		res, err := p.Classify(Encoding{
			Method: symbolic.MethodMedian, Window: Window1h, K: 16,
		}, ModelNaiveBayes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LearningWindowRow{TrainDays: td, F1: res.F1})
	}
	return rows, nil
}

// QuantizerRow compares separator-learning methods on pure reconstruction
// error (the quantiser view, independent of any classifier), including the
// Lloyd–Max ablation.
type QuantizerRow struct {
	Method symbolic.Method
	K      int
	// MAE and RMSE of reconstructing 15-minute window averages.
	MAE, RMSE float64
}

// RunQuantizerComparison learns each method's table from a house's two
// training days and measures reconstruction error over the following days.
func (p *Pipeline) RunQuantizerComparison(house int, ks []int) ([]QuantizerRow, error) {
	if len(ks) == 0 {
		ks = []int{4, 16}
	}
	vectors, err := p.Vectors(Window15m)
	if err != nil {
		return nil, err
	}
	var testVals []float64
	for _, v := range vectors {
		if v.House != house || v.Day < p.cfg.TrainDays {
			continue
		}
		for _, x := range v.Values {
			if !math.IsNaN(x) {
				testVals = append(testVals, x)
			}
		}
	}
	if len(testVals) == 0 {
		return nil, fmt.Errorf("experiments: no test values for house %d", house)
	}
	methods := []symbolic.Method{symbolic.MethodUniform, symbolic.MethodMedian,
		symbolic.MethodDistinctMedian, symbolic.MethodLloydMax}
	var rows []QuantizerRow
	for _, k := range ks {
		for _, m := range methods {
			table, err := p.Table(m, k, house)
			if err != nil {
				return nil, err
			}
			var absSum, sqSum float64
			for _, v := range testVals {
				r, err := table.Value(table.Encode(v))
				if err != nil {
					return nil, err
				}
				d := r - v
				if d < 0 {
					d = -d
				}
				absSum += d
				sqSum += d * d
			}
			n := float64(len(testVals))
			rows = append(rows, QuantizerRow{
				Method: m, K: k,
				MAE:  absSum / n,
				RMSE: math.Sqrt(sqSum / n),
			})
		}
	}
	return rows, nil
}

// WriteAblation renders both studies.
func WriteAblation(w io.Writer, lw []LearningWindowRow, qr []QuantizerRow) error {
	if _, err := fmt.Fprintf(w, "separator learning window (median 1h 16s, NaiveBayes):\n"); err != nil {
		return err
	}
	for _, r := range lw {
		if _, err := fmt.Fprintf(w, "  %d day(s) of history  F1 = %.2f\n", r.TrainDays, r.F1); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nquantiser reconstruction error (house 1, 15m averages):\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-16s %-4s %10s %10s\n", "method", "k", "MAE [W]", "RMSE [W]"); err != nil {
		return err
	}
	for _, r := range qr {
		if _, err := fmt.Fprintf(w, "  %-16s %-4d %10.1f %10.1f\n", r.Method, r.K, r.MAE, r.RMSE); err != nil {
			return err
		}
	}
	return nil
}
