package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDriftConfigDefaults(t *testing.T) {
	c := DriftConfig{}.withDefaults()
	if c.Days != 45 || c.K != 16 || c.Window != Window15m || c.ShiftDay != 15 || c.ShiftFactor != 2 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestRunDriftAdaptiveWins(t *testing.T) {
	// The §4 "additional family member" scenario: a lasting 2× consumption
	// shift at day 15. The adaptive encoder must relearn (at least once)
	// and end up with a lower overall reconstruction error than the static
	// table learned on days 0-1.
	res, err := RunDrift(DriftConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("a lasting 2x shift should trigger at least one table update")
	}
	if res.AdaptiveMAE >= res.StaticMAE {
		t.Fatalf("adaptive MAE %v not below static %v", res.AdaptiveMAE, res.StaticMAE)
	}
	if len(res.Periods) < 3 {
		t.Fatalf("only %d reporting buckets", len(res.Periods))
	}
	var buf bytes.Buffer
	if err := WriteDrift(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table update") {
		t.Fatal("report missing update count")
	}
}

func TestRunDriftStableHouseQuiet(t *testing.T) {
	// ShiftFactor 1 disables the change: the adaptive encoder should rarely
	// (ideally never) relearn, and must not be substantially worse than
	// static.
	res, err := RunDrift(DriftConfig{Seed: 1, ShiftFactor: 1, Days: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates > 2 {
		t.Fatalf("%d spurious updates on a stable house", res.Updates)
	}
	if res.AdaptiveMAE > res.StaticMAE*1.25 {
		t.Fatalf("adaptive MAE %v much worse than static %v on stable data",
			res.AdaptiveMAE, res.StaticMAE)
	}
}

func TestRunDriftSeasonalOnTop(t *testing.T) {
	// Seasonal modulation stacked on the structural shift still works.
	res, err := RunDrift(DriftConfig{Seed: 5, SeasonalAmplitude: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveMAE > res.StaticMAE*1.1 {
		t.Fatalf("adaptive %v much worse than static %v with seasonality",
			res.AdaptiveMAE, res.StaticMAE)
	}
}
