// Prometheus text exposition format, hand-rolled (version 0.0.4 line
// grammar): one # HELP and # TYPE line per family, then one sample line per
// series. Histograms emit cumulative le buckets plus _sum/_count; summaries
// emit the P² quantile series plus _sum/_count. The encoder is the scrape
// path — it may allocate and takes the registration lock, but it reads every
// sample through the same atomics the hot path writes, so a scrape racing a
// million records is just a slightly stale snapshot, never a torn one.
package metrics

import (
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus writes every registered family to w in the text exposition
// format. Families appear in registration order; series within a family in
// their registration order (quantile/le series in increasing order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	buf := make([]byte, 0, 4096)
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			buf = appendSeries(buf, f, s)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp applies the HELP-line escapes (backslash and newline; quotes
// are legal there).
func escapeHelp(h string) string {
	out := make([]byte, 0, len(h))
	for i := 0; i < len(h); i++ {
		switch c := h[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// appendSeries renders one series' sample line(s).
func appendSeries(buf []byte, f *family, s *series) []byte {
	switch {
	case s.counter != nil:
		return appendSample(buf, f.name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		return appendSample(buf, f.name, s.labels, float64(s.gauge.Value()))
	case s.fn != nil:
		return appendSample(buf, f.name, s.labels, s.fn())
	case s.lat != nil:
		if f.kind == kindSummary {
			return appendSummary(buf, f.name, s.lat)
		}
		return appendHistogram(buf, f.name, s.lat)
	}
	return buf
}

// appendSample renders `name{labels} value\n`.
func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	return append(buf, '\n')
}

// appendSummary renders the P² quantile series plus _sum and _count. The
// count/sum pair comes from the histogram-side atomics, so it covers every
// sample — including the ones try-lock contention kept out of the
// estimators.
func appendSummary(buf []byte, name string, l *Latency) []byte {
	l.p2mu.Lock()
	var qv [3]float64
	for i := range l.p2 {
		qv[i] = l.p2[i].Value() / 1e9
	}
	l.p2mu.Unlock()
	for i, q := range latQuantiles {
		buf = append(buf, name...)
		buf = append(buf, `{quantile="`...)
		buf = strconv.AppendFloat(buf, q, 'g', -1, 64)
		buf = append(buf, `"} `...)
		buf = strconv.AppendFloat(buf, qv[i], 'g', -1, 64)
		buf = append(buf, '\n')
	}
	buf = appendSample(buf, name+"_sum", "", l.SumSeconds())
	buf = append(buf, name+"_count "...)
	buf = strconv.AppendInt(buf, l.Count(), 10)
	return append(buf, '\n')
}

// appendHistogram renders the cumulative le buckets plus _sum and _count.
// Empty trailing buckets are still emitted — Prometheus rate() needs a
// stable series set — but the bound list is fixed and small (27 lines).
func appendHistogram(buf []byte, name string, l *Latency) []byte {
	var cum int64
	for i := 0; i <= latBuckets; i++ {
		cum += l.buckets[i].Load()
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		if i == latBuckets {
			buf = append(buf, "+Inf"...)
		} else {
			buf = strconv.AppendFloat(buf, upperBoundSeconds(i), 'g', -1, 64)
		}
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = appendSample(buf, name+"_sum", "", l.SumSeconds())
	buf = append(buf, name+"_count "...)
	// The histogram's count is the bucket total, which may momentarily lag
	// the count atomic under concurrent recording; using the cumulative sum
	// keeps le="+Inf" == _count, which scrapers validate.
	buf = strconv.AppendInt(buf, cum, 10)
	return append(buf, '\n')
}

// Handler returns the /metrics HTTP handler for the registry.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
