// Package metrics is the node's dependency-free telemetry registry: atomic
// counters, gauges, and streaming latency recorders, exposed in the
// Prometheus text exposition format by WritePrometheus (encoder hand-rolled
// in expo.go — no client library).
//
// The design constraint is the ingest hot path: recording a sample must stay
// zero-alloc and lock-free, because every instrumented layer (session batch
// commits, WAL appends, frame decode) sits on paths whose AllocsPerRun pins
// and benchdiff gates forbid regressions. Counters and gauges are single
// atomic adds. A Latency recorder is a fixed log-bucketed histogram (one
// atomic increment per sample, bucket chosen with bits.Len64) plus three P²
// streaming quantile estimators (internal/stats) guarded by a try-lock: a
// sample that would contend simply skips the estimators — the histogram
// still counts it — so Record never blocks and never allocates.
//
// Collection (WritePrometheus, Value/Quantile accessors) takes locks and may
// allocate; it runs on the scrape path, not the hot path.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"symmeter/internal/stats"
)

// Label is one key="value" pair attached to a series at registration time.
// Series within a family are distinguished by their label sets.
type Label struct {
	Key, Value string
}

// metric kinds, as emitted in # TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindSummary   = "summary"
	kindHistogram = "histogram"
)

// Registry holds an ordered set of metric families. Registration happens at
// startup (it locks and may panic on programmer error: malformed names,
// duplicate series, kind mismatches); recording through the returned handles
// is lock-free; collection walks the families under the registration lock.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// family is one metric name: its help, type, and every labeled series.
type family struct {
	name, help string
	kind       string
	series     []*series
}

// series is one sample stream within a family. Exactly one of the value
// sources is set.
type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	lat     *Latency
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter is a monotonically increasing value. The zero value is usable but
// only registry-created counters are exported.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter registers (or extends) the counter family name and returns the
// handle for the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers (or extends) the gauge family name and returns the handle
// for the given label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), gauge: g})
	return g
}

// CounterFunc registers a counter series whose value is read from fn at
// collection time — for layers that already maintain their own atomic
// counters (storage fault counters) and only need exposition.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a gauge series computed at collection time (health
// state, per-shard in-flight occupancy).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: renderLabels(labels), fn: fn})
}

// register validates and installs one series; all registration funnels here.
func (r *Registry) register(name, help, kind string, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// validName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName enforces [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels pre-renders a label set to its canonical {k="v",...} form
// (sorted by key, values escaped) so series identity is a string compare and
// the scrape path never re-renders.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := "{"
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label name %q", l.Key))
		}
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return out + "}"
}

// escapeLabelValue applies the exposition-format escapes: backslash, double
// quote, newline.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// --- Latency ---------------------------------------------------------------

// latency histogram geometry: bucket i counts samples in
// (256ns·2^(i-1), 256ns·2^i]; the final slot is the +Inf overflow. 256ns to
// ~8.6s in 26 doublings covers everything from an in-memory append to a
// wedged fsync.
const (
	latBuckets   = 26
	latFirstNS   = 256
	latFirstBits = 9 // bits.Len64(256) — samples at or under 256ns land in bucket 0
)

// latQuantiles are the P² estimators every Latency carries.
var latQuantiles = [3]float64{0.50, 0.95, 0.99}

// Latency records a stream of durations: a fixed log-bucketed histogram
// (lock-free, zero-alloc — safe on ingest hot paths) plus P² p50/p95/p99
// estimators fed behind a try-lock (a contended sample skips the estimators,
// never blocks). Handles come from Registry.Latency.
type Latency struct {
	buckets [latBuckets + 1]atomic.Int64
	sumNS   atomic.Int64
	count   atomic.Int64

	// p2mu guards the estimators; Record only TryLocks it, the collector
	// Locks. p2seen counts the samples that reached the estimators.
	p2mu   sync.Mutex
	p2     [3]*stats.P2Quantile
	p2seen atomic.Int64
}

// Latency registers a latency family under name (which should end in
// "_seconds"): a summary family `name` with quantile series from the P²
// estimators, and a histogram family derived by inserting "_hist" before the
// unit suffix (e.g. symmeter_ingest_batch_hist_seconds) with the log-bucket
// counts. Latency families do not take caller labels — the quantile/le
// labels own the label space.
func (r *Registry) Latency(name, help string) *Latency {
	l := &Latency{}
	for i, q := range latQuantiles {
		p2, err := stats.NewP2Quantile(q)
		if err != nil {
			panic(err) // unreachable: latQuantiles are all in (0,1)
		}
		l.p2[i] = p2
	}
	r.register(name, help, kindSummary, &series{lat: l})
	r.register(histName(name), help+" (log-bucketed histogram)", kindHistogram, &series{lat: l})
	return l
}

// histName inserts "_hist" before a trailing "_seconds" unit suffix so both
// families keep the unit-last naming convention.
func histName(name string) string {
	const unit = "_seconds"
	if len(name) > len(unit) && name[len(name)-len(unit):] == unit {
		return name[:len(name)-len(unit)] + "_hist" + unit
	}
	return name + "_hist"
}

// bucketOf maps a sample to its histogram slot: 0 for ≤256ns, then one per
// doubling, latBuckets for anything past the largest bound.
func bucketOf(ns int64) int {
	if ns <= latFirstNS {
		return 0
	}
	// bits.Len64(ns-1) is the index of the smallest power-of-two bound ≥ ns.
	b := bits.Len64(uint64(ns-1)) - latFirstBits + 1
	if b > latBuckets {
		return latBuckets
	}
	return b
}

// upperBoundSeconds is bucket i's inclusive upper bound in seconds.
func upperBoundSeconds(i int) float64 {
	return float64(int64(latFirstNS)<<uint(i)) / 1e9
}

// Record adds one duration sample. It is safe for concurrent use, performs
// no allocation, and never blocks: the histogram side is two atomic adds and
// an atomic increment, and the P² side is skipped when contended.
func (l *Latency) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	l.buckets[bucketOf(ns)].Add(1)
	l.sumNS.Add(ns)
	l.count.Add(1)
	if l.p2mu.TryLock() {
		x := float64(ns)
		for _, p2 := range l.p2 {
			p2.Add(x)
		}
		l.p2seen.Add(1)
		l.p2mu.Unlock()
	}
}

// Since records the elapsed time from start — the usual call-site shape
// `defer l.Since(time.Now())` or an explicit pair around a commit.
func (l *Latency) Since(start time.Time) { l.Record(time.Since(start)) }

// Count returns the total number of recorded samples.
func (l *Latency) Count() int64 { return l.count.Load() }

// SumSeconds returns the sum of all recorded samples in seconds.
func (l *Latency) SumSeconds() float64 { return float64(l.sumNS.Load()) / 1e9 }

// Quantile returns the current P² estimate for q, which must be one of the
// registered quantiles (0.5, 0.95, 0.99); it returns 0 before any sample.
// The estimate is in seconds.
func (l *Latency) Quantile(q float64) float64 {
	for i, lq := range latQuantiles {
		if lq == q {
			l.p2mu.Lock()
			v := l.p2[i].Value()
			l.p2mu.Unlock()
			return v / 1e9
		}
	}
	return 0
}
