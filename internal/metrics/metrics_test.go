package metrics

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildRegistry assembles one of every series kind, with enough recorded
// state that every output line has a meaningful value.
func buildRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New()
	c := r.Counter("symmeter_test_events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	r.Counter("symmeter_test_frames_total", "Frames by type.",
		Label{Key: "type", Value: "S"}, Label{Key: "dir", Value: "in"})
	r.Counter("symmeter_test_frames_total", "Frames by type.",
		Label{Key: "type", Value: "Q"}, Label{Key: "dir", Value: "in"}).Add(7)
	g := r.Gauge("symmeter_test_active", "Active sessions.")
	g.Set(3)
	g.Add(-1)
	r.GaugeFunc("symmeter_test_budget_bytes", "Configured budget.", func() float64 { return 1 << 20 })
	r.CounterFunc("symmeter_test_heals_total", "Heals.", func() float64 { return 2 })
	lat := r.Latency("symmeter_test_op_seconds", "Op latency.")
	for i := 0; i < 1000; i++ {
		lat.Record(time.Duration(i+1) * time.Microsecond)
	}
	return r
}

// Line grammar of the Prometheus text format 0.0.4, enough to catch a
// malformed hand-rolled encoder: comment lines and sample lines with an
// optional label block and a float value.
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
)

func TestWritePrometheusGrammar(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRegistry(t).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("exposition must end with a newline")
	}
	seenSeries := make(map[string]bool)
	typed := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
			f := strings.Fields(line)
			if typed[f[2]] != "" {
				t.Errorf("duplicate TYPE for family %s", f[2])
			}
			typed[f[2]] = f[3]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("bad sample line: %q", line)
				continue
			}
			key := m[1] + m[2]
			if seenSeries[key] {
				t.Errorf("duplicate series %q", key)
			}
			seenSeries[key] = true
		}
	}
	// Spot-check the families the registry must expose, with their kinds.
	want := map[string]string{
		"symmeter_test_events_total":    "counter",
		"symmeter_test_frames_total":    "counter",
		"symmeter_test_active":          "gauge",
		"symmeter_test_budget_bytes":    "gauge",
		"symmeter_test_heals_total":     "counter",
		"symmeter_test_op_seconds":      "summary",
		"symmeter_test_op_hist_seconds": "histogram",
	}
	for fam, kind := range want {
		if typed[fam] != kind {
			t.Errorf("family %s: TYPE %q, want %q", fam, typed[fam], kind)
		}
	}
	if !seenSeries[`symmeter_test_frames_total{dir="in",type="Q"}`] {
		t.Errorf("missing labeled series; got: %v", keys(seenSeries))
	}
}

func keys(m map[string]bool) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestHistogramCumulative checks the histogram invariants scrapers rely on:
// bucket counts are non-decreasing in le order, the +Inf bucket equals
// _count, and _count/_sum agree with the recorder's own accessors.
func TestHistogramCumulative(t *testing.T) {
	r := New()
	lat := r.Latency("symmeter_test_op_seconds", "Op latency.")
	const n = 10000
	for i := 0; i < n; i++ {
		lat.Record(time.Duration(i) * 100 * time.Nanosecond)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var prev float64
	var infCount, count float64 = -1, -1
	lastLe := math.Inf(-1)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "symmeter_test_op_hist_seconds_bucket{") {
			le := line[strings.Index(line, `le="`)+4 : strings.Index(line, `"}`)]
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("bad bucket value in %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %q after %g", line, prev)
			}
			prev = v
			if le == "+Inf" {
				infCount = v
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le bound %q: %v", le, err)
				}
				if b <= lastLe {
					t.Fatalf("le bounds not increasing: %g after %g", b, lastLe)
				}
				lastLe = b
			}
		}
		if strings.HasPrefix(line, "symmeter_test_op_hist_seconds_count ") {
			count, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
	}
	if infCount != float64(n) || count != float64(n) {
		t.Fatalf("le=+Inf bucket %g and _count %g must both equal %d", infCount, count, n)
	}
	if lat.Count() != n {
		t.Fatalf("Count() = %d, want %d", lat.Count(), n)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	r := New()
	lat := r.Latency("symmeter_test_op_seconds", "Op latency.")
	// A uniform 1..10000µs stream: p50 ≈ 5000µs, p99 ≈ 9900µs.
	for i := 1; i <= 10000; i++ {
		lat.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := lat.Quantile(0.50)
	p99 := lat.Quantile(0.99)
	if p50 < 4e-3 || p50 > 6e-3 {
		t.Errorf("p50 = %gs, want ~5ms", p50)
	}
	if p99 < 9e-3 || p99 > 10.5e-3 {
		t.Errorf("p99 = %gs, want ~9.9ms", p99)
	}
	if got := lat.Quantile(0.42); got != 0 {
		t.Errorf("untracked quantile must read 0, got %g", got)
	}
	wantSum := 0.0
	for i := 1; i <= 10000; i++ {
		wantSum += float64(i) * 1e-6
	}
	if got := lat.SumSeconds(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("SumSeconds = %g, want %g", got, wantSum)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("symmeter_test_weird_total", "Weird labels.",
		Label{Key: "path", Value: "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `symmeter_test_weird_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped sample %q missing from:\n%s", want, buf.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := New()
	mustPanic("bad metric name", func() { r.Counter("0bad", "h") })
	mustPanic("bad label name", func() { r.Counter("symmeter_ok_total", "h", Label{Key: "0bad", Value: "v"}) })
	r.Counter("symmeter_dup_total", "h")
	mustPanic("duplicate series", func() { r.Counter("symmeter_dup_total", "h") })
	mustPanic("kind mismatch", func() { r.Gauge("symmeter_dup_total", "h") })
}

// TestConcurrentRecordCollect hammers every handle kind from parallel
// goroutines while scraping continuously; run under -race this is the proof
// that recording is safe against collection.
func TestConcurrentRecordCollect(t *testing.T) {
	r := New()
	c := r.Counter("symmeter_stress_total", "stress")
	g := r.Gauge("symmeter_stress_active", "stress")
	lat := r.Latency("symmeter_stress_seconds", "stress")
	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				lat.Record(time.Duration(w*perW+i) * time.Nanosecond)
				g.Add(-1)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW/10; i++ {
				_ = lat.Quantile(0.95)
				_ = lat.Count()
			}
		}()
	}
	// Let the recorders finish, then stop the scraper (stress goroutines
	// above hold no reference to stop).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// The scraper loops until stop; wait for the recording goroutines by
	// polling the counter total.
	deadline := time.After(30 * time.Second)
	for c.Value() != workers*perW {
		select {
		case <-deadline:
			close(stop)
			t.Fatalf("counter stuck at %d", c.Value())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
	if got := lat.Count(); got != workers*perW {
		t.Fatalf("latency count %d, want %d", got, workers*perW)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge settled at %d, want 0", got)
	}
}

// TestRecordingAllocs pins the hot-path recording calls at zero allocations
// — the contract that lets session loops, WAL appends and frame decode carry
// these calls without breaking their own AllocsPerRun pins. The P²
// estimators' bootstrap (first five samples) is warmed first; it must not
// allocate either, but warming keeps the pin about steady state.
func TestRecordingAllocs(t *testing.T) {
	r := New()
	c := r.Counter("symmeter_allocs_total", "allocs")
	g := r.Gauge("symmeter_allocs_active", "allocs")
	lat := r.Latency("symmeter_allocs_seconds", "allocs")
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	d := 512 * time.Microsecond
	if n := testing.AllocsPerRun(1000, func() { lat.Record(d) }); n != 0 {
		t.Errorf("Latency.Record allocates %v/op", n)
	}
	// The very first records (P² bootstrap) must be clean too.
	fresh := New().Latency("symmeter_allocs_fresh_seconds", "allocs")
	if n := testing.AllocsPerRun(1, func() {
		for i := 1; i <= 8; i++ {
			fresh.Record(time.Duration(i) * time.Millisecond)
		}
	}); n != 0 {
		t.Errorf("Latency.Record bootstrap allocates %v/run", n)
	}
}

func TestHandler(t *testing.T) {
	r := buildRegistry(t)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmeter_test_events_total 42") {
		t.Fatalf("counter sample missing from body:\n%s", buf.String())
	}
}

func TestGaugeFuncLive(t *testing.T) {
	r := New()
	v := 5.0
	r.GaugeFunc("symmeter_live", "live", func() float64 { return v })
	read := func() string {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if !strings.Contains(read(), "symmeter_live 5") {
		t.Fatalf("first read: %s", read())
	}
	v = 9
	if !strings.Contains(read(), "symmeter_live 9") {
		t.Fatalf("gauge func must re-evaluate per scrape: %s", read())
	}
}

func ExampleRegistry_WritePrometheus() {
	r := New()
	r.Counter("symmeter_example_total", "Example events.").Add(3)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP symmeter_example_total Example events.
	// # TYPE symmeter_example_total counter
	// symmeter_example_total 3
}
