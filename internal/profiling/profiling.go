// Package profiling is the shared pprof plumbing behind the -cpuprofile and
// -memprofile flags of cmd/serve and cmd/bench, so the two binaries cannot
// drift in how profiles are opened, flushed and closed.
package profiling

import (
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile into path and returns a stop function that
// flushes and closes it. With an empty path it is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// AttachPprof mounts the live pprof surface (/debug/pprof/*) on mux — the
// explicit twin of net/http/pprof's DefaultServeMux side effect, so the
// telemetry listener gets the handlers without any package importing
// net/http/pprof for its init.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
}

// WriteHeap garbage-collects and writes a heap profile to path. With an
// empty path it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
