package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

func testTable(t *testing.T) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestRoundTripBuffer(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var want []symbolic.SymbolPoint
	enc := symbolic.NewEncoder(table, 60)
	for i := int64(0); i < 600; i++ {
		p := timeseries.Point{T: i, V: rng.Float64() * 1000}
		if err := sensor.Push(p); err != nil {
			t.Fatal(err)
		}
		if sp, ok, _ := enc.Push(p); ok {
			want = append(want, sp)
		}
	}
	if sp, ok := enc.Flush(); ok {
		want = append(want, sp)
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}

	server := NewServer(&buf)
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if len(server.Tables) != 1 {
		t.Fatalf("tables = %d", len(server.Tables))
	}
	if len(server.Points) != len(want) {
		t.Fatalf("points = %d, want %d", len(server.Points), len(want))
	}
	for i := range want {
		if server.Points[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, server.Points[i], want[i])
		}
	}
}

func TestGapStartsNewBatch(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Two windows, a 50-second hole, two more windows.
	for _, ts := range []int64{0, 5, 10, 15, 70, 75, 80, 85} {
		if err := sensor.Push(timeseries.Point{T: ts, V: 500}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	server := NewServer(&buf)
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}
	// Windows: [0,10) [10,20) [70,80) [80,90) → T = 10,20,80,90.
	wantT := []int64{10, 20, 80, 90}
	if len(server.Points) != len(wantT) {
		t.Fatalf("points = %d, want %d", len(server.Points), len(wantT))
	}
	for i, w := range wantT {
		if server.Points[i].T != w {
			t.Fatalf("T[%d] = %d, want %d", i, server.Points[i].T, w)
		}
	}
}

func TestTableUpdateMidStream(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 100}); err != nil {
			t.Fatal(err)
		}
	}
	// New table with a different range (drifted data).
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = 4000 + float64(i)*10
	}
	table2, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sensor.UpdateTable(table2); err != nil {
		t.Fatal(err)
	}
	for i := int64(100); i < 200; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 4500}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}

	server := NewServer(&buf)
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if len(server.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(server.Tables))
	}
	recon, err := server.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	// Early points decode near 100, late points near 4500: the server must
	// apply the right table per segment.
	early, _ := recon.At(10)
	late := recon.Points[recon.Len()-1].V
	if math.Abs(early-100) > 100 {
		t.Fatalf("early reconstruction = %v, want ~100", early)
	}
	if math.Abs(late-4500) > 300 {
		t.Fatalf("late reconstruction = %v, want ~4500", late)
	}
}

func TestOverNetPipe(t *testing.T) {
	table := testTable(t)
	client, srvConn := net.Pipe()
	// net.Pipe is fully synchronous; deadlines turn any protocol stall into
	// an error instead of a hang.
	deadline := time.Now().Add(30 * time.Second)
	_ = client.SetDeadline(deadline)
	_ = srvConn.SetDeadline(deadline)

	done := make(chan error, 1)
	server := NewServer(srvConn)
	go func() {
		done <- server.ReadAll()
	}()
	sensor, err := NewSensor(client, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(server.Points) != 20 {
		t.Fatalf("points = %d, want 20", len(server.Points))
	}
}

func TestServerErrors(t *testing.T) {
	// Symbol frame before any table.
	var buf bytes.Buffer
	payload := make([]byte, 16)
	if err := writeFrame(&buf, FrameSymbol, payload); err != nil {
		t.Fatal(err)
	}
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("symbol before table should error")
	}
	// Unknown frame type.
	buf.Reset()
	if err := writeFrame(&buf, 'X', nil); err != nil {
		t.Fatal(err)
	}
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("unknown frame should error")
	}
	// Truncated frame.
	buf.Reset()
	buf.Write([]byte{FrameTable, 0, 0, 1, 0}) // claims 256 bytes, has none
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("truncated frame should error")
	}
	// Oversized length field.
	buf.Reset()
	buf.Write([]byte{FrameTable, 0xFF, 0xFF, 0xFF, 0xFF})
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("oversized frame should error")
	}
	// Clean EOF without end frame is accepted (stream cut).
	buf.Reset()
	if err := NewServer(&buf).ReadAll(); err != nil {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestSensorValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewSensor(&buf, nil, 10, 4); err == nil {
		t.Fatal("nil table should error")
	}
	if _, err := NewSensor(&buf, testTable(t), 0, 4); err == nil {
		t.Fatal("zero window should error")
	}
	sensor, err := NewSensor(&buf, testTable(t), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sensor.batchSize != 96 {
		t.Fatalf("default batch size = %d", sensor.batchSize)
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sensor.Push(timeseries.Point{}); err == nil {
		t.Fatal("push after close should error")
	}
	if err := sensor.UpdateTable(testTable(t)); err == nil {
		t.Fatal("update after close should error")
	}
	if err := sensor.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestCorruptedPayloadSurfaces(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip the level byte of the table frame payload: the frame length no
	// longer matches the declared alphabet and decoding must fail loudly.
	data[6] ^= 0xFF
	if err := NewServer(bytes.NewReader(data)).ReadAll(); err == nil {
		t.Fatal("corrupted table frame should error")
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)

// --- Handshake + Decoder protocol edges ----------------------------------

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	hs, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Version != ProtocolVersion || hs.MeterID != 0xDEADBEEF {
		t.Fatalf("handshake = %+v", hs)
	}
}

func TestReadHandshakeWrongFrameType(t *testing.T) {
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, testTable(t), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = sensor
	// The buffer starts with a 'T' frame, not 'H'.
	if _, err := ReadHandshake(&buf); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
}

func TestReadHandshakeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, 7); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < buf.Len(); cut++ {
		_, err := ReadHandshake(bytes.NewReader(buf.Bytes()[:cut]))
		if !errors.Is(err, ErrBadHandshake) {
			t.Fatalf("cut=%d err = %v, want ErrBadHandshake", cut, err)
		}
	}
}

func TestReadHandshakeShortPayload(t *testing.T) {
	var buf bytes.Buffer
	// A well-formed frame of type 'H' whose payload is 3 bytes, not 9.
	buf.Write([]byte{FrameHandshake, 0, 0, 0, 3, ProtocolVersion, 0, 0})
	if _, err := ReadHandshake(&buf); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
}

func TestReadHandshakeVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{FrameHandshake, 0, 0, 0, 9, ProtocolVersion + 1, 0, 0, 0, 0, 0, 0, 0, 1})
	hs, err := ReadHandshake(&buf)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if hs.Version != ProtocolVersion+1 || hs.MeterID != 1 {
		t.Fatalf("mismatching handshake should still be parsed, got %+v", hs)
	}
}

func TestOversizedFrameTyped(t *testing.T) {
	var buf bytes.Buffer
	var hdr [5]byte
	hdr[0] = FrameTable
	binary.BigEndian.PutUint32(hdr[1:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := NewDecoder(&buf).Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("decoder err = %v, want ErrFrameTooLarge", err)
	}
	buf.Reset()
	buf.Write(hdr[:])
	if _, err := ReadHandshake(&buf); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("handshake err = %v, want ErrBadHandshake", err)
	}
}

func TestDecoderSymbolBeforeTable(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	// Skip the leading table frame so the first thing seen is 'S'.
	data := buf.Bytes()
	tableLen := binary.BigEndian.Uint32(data[1:5])
	stream := data[5+tableLen:]
	if _, err := NewDecoder(bytes.NewReader(stream)).Next(); !errors.Is(err, ErrSymbolBeforeTable) {
		t.Fatalf("err = %v, want ErrSymbolBeforeTable", err)
	}
}

func TestDecoderRejectsLateHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(&buf).Next(); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
}

func TestDecoderUnknownFrameTyped(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'Z', 0, 0, 0, 0})
	if _, err := NewDecoder(&buf).Next(); !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("err = %v, want ErrUnknownFrame", err)
	}
}

// TestDecoderMatchesServer replays one stream through both the incremental
// Decoder and the accumulating Server and requires identical results.
func TestDecoderMatchesServer(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := int64(0); i < 500; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: rng.Float64() * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.UpdateTable(testTable(t)); err != nil {
		t.Fatal(err)
	}
	for i := int64(500); i < 900; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: rng.Float64() * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	server := NewServer(bytes.NewReader(data))
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(bytes.NewReader(data))
	var tables int
	var pts []symbolic.SymbolPoint
	for {
		ev, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == FrameEnd {
			break
		}
		switch ev.Type {
		case FrameTable:
			tables++
		case FrameSymbol:
			pts = append(pts, ev.Points...)
		}
	}
	if tables != len(server.Tables) {
		t.Fatalf("decoder tables = %d, server = %d", tables, len(server.Tables))
	}
	if len(pts) != len(server.Points) {
		t.Fatalf("decoder points = %d, server = %d", len(pts), len(server.Points))
	}
	for i := range pts {
		if pts[i] != server.Points[i] {
			t.Fatalf("point %d: decoder %+v, server %+v", i, pts[i], server.Points[i])
		}
	}
}

// buildSymbolStream writes one table frame followed by `frames` identical
// symbol batches of `batch` consecutive windows each, returning the raw
// stream bytes.
func buildSymbolStream(t *testing.T, table *symbolic.Table, frames, batch int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames*batch; i++ {
		if err := sensor.Push(timeseries.Point{T: int64(i), V: float64(i % 500)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecoderNextZeroAlloc enforces the Decoder's buffer-reuse contract:
// after its scratch buffers reach the working size, decoding a symbol frame
// must not allocate.
func TestDecoderNextZeroAlloc(t *testing.T) {
	table := testTable(t)
	const frames = 300
	data := buildSymbolStream(t, table, frames, 96)
	dec := NewDecoder(bytes.NewReader(data))
	// Warm up: table frame plus a few symbol frames grow the scratch buffers.
	for i := 0; i < 4; i++ {
		if _, err := dec.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		ev, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != FrameSymbol || len(ev.Points) == 0 {
			t.Fatalf("unexpected event %c with %d points", ev.Type, len(ev.Points))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decoder.Next allocates %.1f times per run, want 0", allocs)
	}
}

// TestDecoderPointsReused pins the documented valid-until-next-call
// semantics: the Points slice aliases decoder scratch across calls, and
// ClonePoints detaches a batch from it.
func TestDecoderPointsReused(t *testing.T) {
	table := testTable(t)
	data := buildSymbolStream(t, table, 3, 8)
	dec := NewDecoder(bytes.NewReader(data))
	if _, err := dec.Next(); err != nil { // table frame
		t.Fatal(err)
	}
	ev1, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	first := ev1.Points[0]
	clone := ev1.ClonePoints()
	ev2, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if &ev1.Points[0] != &ev2.Points[0] {
		t.Fatal("decoder allocated a fresh Points slice; expected scratch reuse")
	}
	if ev1.Points[0] == first {
		t.Fatal("second Next did not overwrite the reused batch (test fixture too uniform)")
	}
	if clone[0] != first || len(clone) != 8 {
		t.Fatal("ClonePoints did not preserve the first batch")
	}
	if (Event{}).ClonePoints() != nil {
		t.Fatal("ClonePoints of empty event must be nil")
	}
}

// TestSensorSteadyStateZeroAlloc enforces the sensor-side contract: pushing
// measurements through completed windows and batch flushes must not
// allocate once the batch and frame scratch buffers exist.
func TestSensorSteadyStateZeroAlloc(t *testing.T) {
	table := testTable(t)
	const batch = 16
	sensor, err := NewSensor(io.Discard, table, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	next := int64(0)
	push := func() {
		// One run = one full batch: batch completed windows, one flush.
		for i := 0; i < batch; i++ {
			if err := sensor.Push(timeseries.Point{T: next, V: float64(next % 700)}); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	push() // grow scratch buffers
	allocs := testing.AllocsPerRun(200, push)
	if allocs != 0 {
		t.Fatalf("steady-state Sensor.Push allocates %.1f times per run, want 0", allocs)
	}
}

// --- Protocol v2: flags handshake, acks, sequenced frames -----------------

func TestHandshakeV1StillAccepted(t *testing.T) {
	var buf bytes.Buffer
	payload := make([]byte, 9)
	payload[0] = 1 // v1: version | meterID, no flags byte
	binary.BigEndian.PutUint64(payload[1:], 42)
	buf.Write([]byte{FrameHandshake, 0, 0, 0, 9})
	buf.Write(payload)
	hs, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatalf("v1 handshake refused: %v", err)
	}
	if hs.Version != 1 || hs.MeterID != 42 || hs.Sequenced() {
		t.Fatalf("hs = %+v, want v1 meter 42 unsequenced", hs)
	}
}

func TestHandshakeFlagsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshakeFlags(&buf, 7, FlagSequenced); err != nil {
		t.Fatal(err)
	}
	hs, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Version != ProtocolVersion || hs.MeterID != 7 || !hs.Sequenced() {
		t.Fatalf("hs = %+v, want v%d meter 7 sequenced", hs, ProtocolVersion)
	}
}

func TestHandshakeUnknownFlagBitsRejected(t *testing.T) {
	var buf bytes.Buffer
	payload := make([]byte, 10)
	payload[0] = ProtocolVersion
	payload[1] = FlagSequenced | 0x80
	binary.BigEndian.PutUint64(payload[2:], 1)
	buf.Write([]byte{FrameHandshake, 0, 0, 0, 10})
	buf.Write(payload)
	if _, err := ReadHandshake(&buf); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake for unknown flag bits", err)
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	frame := AppendAckFrame(nil, 0xCAFEBABE12345678)
	fr := NewFrameReader(bytes.NewReader(frame))
	typ, payload, err := fr.Next()
	if err != nil || typ != FrameAck {
		t.Fatalf("frame = (%#x, %v), want 'A'", typ, err)
	}
	seq, err := DecodeAck(payload)
	if err != nil || seq != 0xCAFEBABE12345678 {
		t.Fatalf("DecodeAck = (%#x, %v)", seq, err)
	}
	if _, err := DecodeAck(payload[:4]); err == nil {
		t.Fatal("truncated ack payload decoded")
	}
}

func TestDecoderSequencedFrames(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer

	// 'U' seq=1 carrying the table.
	body := symbolic.MarshalTable(table)
	hdr := []byte{FrameSeqTable, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(hdr[1:5], uint32(8+len(body)))
	buf.Write(hdr)
	var seq8 [8]byte
	binary.BigEndian.PutUint64(seq8[:], 1)
	buf.Write(seq8[:])
	buf.Write(body)

	// 'D' seq=2: firstT=100, window=10, three symbols.
	syms := []symbolic.Symbol{
		symbolic.NewSymbol(1, table.Level()),
		symbolic.NewSymbol(2, table.Level()),
		symbolic.NewSymbol(3, table.Level()),
	}
	packed, err := symbolic.Pack(syms)
	if err != nil {
		t.Fatal(err)
	}
	dhdr := []byte{FrameSeqSymbol, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(dhdr[1:5], uint32(24+len(packed)))
	buf.Write(dhdr)
	binary.BigEndian.PutUint64(seq8[:], 2)
	buf.Write(seq8[:])
	binary.BigEndian.PutUint64(seq8[:], 100)
	buf.Write(seq8[:])
	binary.BigEndian.PutUint64(seq8[:], 10)
	buf.Write(seq8[:])
	buf.Write(packed)

	dec := NewDecoder(&buf)
	ev, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != FrameSeqTable || ev.Seq != 1 || ev.Table == nil {
		t.Fatalf("first event = %+v, want seq table seq=1", ev)
	}
	ev, err = dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != FrameSeqSymbol || ev.Seq != 2 || len(ev.Points) != 3 {
		t.Fatalf("second event = %+v, want seq batch seq=2 with 3 points", ev)
	}
	for i, p := range ev.Points {
		if p.T != 100+int64(i)*10 {
			t.Fatalf("point %d at t=%d, want %d", i, p.T, 100+int64(i)*10)
		}
	}
}

func TestDecoderSeqSymbolBeforeTable(t *testing.T) {
	var buf bytes.Buffer
	hdr := []byte{FrameSeqSymbol, 0, 0, 0, 24}
	buf.Write(hdr)
	buf.Write(make([]byte, 24))
	if _, err := NewDecoder(&buf).Next(); !errors.Is(err, ErrSymbolBeforeTable) {
		t.Fatalf("err = %v, want ErrSymbolBeforeTable", err)
	}
}

func TestRetryablePredicate(t *testing.T) {
	for _, err := range []error{ErrServerDegraded, ErrServerOverloaded, ErrServerDraining, ErrMeterBusy} {
		if !Retryable(err) {
			t.Fatalf("Retryable(%v) = false, want true", err)
		}
	}
	for code, sentinel := range map[byte]error{
		VerdictDegraded:   ErrServerDegraded,
		VerdictOverloaded: ErrServerOverloaded,
		VerdictDraining:   ErrServerDraining,
		VerdictBusy:       ErrMeterBusy,
	} {
		qe := &QueryError{Code: code, Msg: "x"}
		if !errors.Is(qe, sentinel) {
			t.Fatalf("QueryError code %d does not match its sentinel", code)
		}
		if !Retryable(qe) {
			t.Fatalf("Retryable(code %d) = false, want true", code)
		}
	}
	if Retryable(&QueryError{Code: QErrInternal}) || Retryable(io.EOF) || Retryable(nil) {
		t.Fatal("non-retryable error classified retryable")
	}
}
