package transport

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

func testTable(t *testing.T) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestRoundTripBuffer(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var want []symbolic.SymbolPoint
	enc := symbolic.NewEncoder(table, 60)
	for i := int64(0); i < 600; i++ {
		p := timeseries.Point{T: i, V: rng.Float64() * 1000}
		if err := sensor.Push(p); err != nil {
			t.Fatal(err)
		}
		if sp, ok, _ := enc.Push(p); ok {
			want = append(want, sp)
		}
	}
	if sp, ok := enc.Flush(); ok {
		want = append(want, sp)
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}

	server := NewServer(&buf)
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if len(server.Tables) != 1 {
		t.Fatalf("tables = %d", len(server.Tables))
	}
	if len(server.Points) != len(want) {
		t.Fatalf("points = %d, want %d", len(server.Points), len(want))
	}
	for i := range want {
		if server.Points[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, server.Points[i], want[i])
		}
	}
}

func TestGapStartsNewBatch(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Two windows, a 50-second hole, two more windows.
	for _, ts := range []int64{0, 5, 10, 15, 70, 75, 80, 85} {
		if err := sensor.Push(timeseries.Point{T: ts, V: 500}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	server := NewServer(&buf)
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}
	// Windows: [0,10) [10,20) [70,80) [80,90) → T = 10,20,80,90.
	wantT := []int64{10, 20, 80, 90}
	if len(server.Points) != len(wantT) {
		t.Fatalf("points = %d, want %d", len(server.Points), len(wantT))
	}
	for i, w := range wantT {
		if server.Points[i].T != w {
			t.Fatalf("T[%d] = %d, want %d", i, server.Points[i].T, w)
		}
	}
}

func TestTableUpdateMidStream(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 100}); err != nil {
			t.Fatal(err)
		}
	}
	// New table with a different range (drifted data).
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = 4000 + float64(i)*10
	}
	table2, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sensor.UpdateTable(table2); err != nil {
		t.Fatal(err)
	}
	for i := int64(100); i < 200; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 4500}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}

	server := NewServer(&buf)
	if err := server.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if len(server.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(server.Tables))
	}
	recon, err := server.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	// Early points decode near 100, late points near 4500: the server must
	// apply the right table per segment.
	early, _ := recon.At(10)
	late := recon.Points[recon.Len()-1].V
	if math.Abs(early-100) > 100 {
		t.Fatalf("early reconstruction = %v, want ~100", early)
	}
	if math.Abs(late-4500) > 300 {
		t.Fatalf("late reconstruction = %v, want ~4500", late)
	}
}

func TestOverNetPipe(t *testing.T) {
	table := testTable(t)
	client, srvConn := net.Pipe()
	// net.Pipe is fully synchronous; deadlines turn any protocol stall into
	// an error instead of a hang.
	deadline := time.Now().Add(30 * time.Second)
	_ = client.SetDeadline(deadline)
	_ = srvConn.SetDeadline(deadline)

	done := make(chan error, 1)
	server := NewServer(srvConn)
	go func() {
		done <- server.ReadAll()
	}()
	sensor, err := NewSensor(client, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(server.Points) != 20 {
		t.Fatalf("points = %d, want 20", len(server.Points))
	}
}

func TestServerErrors(t *testing.T) {
	// Symbol frame before any table.
	var buf bytes.Buffer
	payload := make([]byte, 16)
	if err := writeFrame(&buf, frameSymbol, payload); err != nil {
		t.Fatal(err)
	}
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("symbol before table should error")
	}
	// Unknown frame type.
	buf.Reset()
	if err := writeFrame(&buf, 'X', nil); err != nil {
		t.Fatal(err)
	}
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("unknown frame should error")
	}
	// Truncated frame.
	buf.Reset()
	buf.Write([]byte{frameTable, 0, 0, 1, 0}) // claims 256 bytes, has none
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("truncated frame should error")
	}
	// Oversized length field.
	buf.Reset()
	buf.Write([]byte{frameTable, 0xFF, 0xFF, 0xFF, 0xFF})
	if err := NewServer(&buf).ReadAll(); err == nil {
		t.Fatal("oversized frame should error")
	}
	// Clean EOF without end frame is accepted (stream cut).
	buf.Reset()
	if err := NewServer(&buf).ReadAll(); err != nil {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestSensorValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewSensor(&buf, nil, 10, 4); err == nil {
		t.Fatal("nil table should error")
	}
	if _, err := NewSensor(&buf, testTable(t), 0, 4); err == nil {
		t.Fatal("zero window should error")
	}
	sensor, err := NewSensor(&buf, testTable(t), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sensor.batchSize != 96 {
		t.Fatalf("default batch size = %d", sensor.batchSize)
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sensor.Push(timeseries.Point{}); err == nil {
		t.Fatal("push after close should error")
	}
	if err := sensor.UpdateTable(testTable(t)); err == nil {
		t.Fatal("update after close should error")
	}
	if err := sensor.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestCorruptedPayloadSurfaces(t *testing.T) {
	table := testTable(t)
	var buf bytes.Buffer
	sensor, err := NewSensor(&buf, table, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := sensor.Push(timeseries.Point{T: i, V: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sensor.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip the level byte of the table frame payload: the frame length no
	// longer matches the declared alphabet and decoding must fail loudly.
	data[6] ^= 0xFF
	if err := NewServer(bytes.NewReader(data)).ReadAll(); err == nil {
		t.Fatal("corrupted table frame should error")
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
