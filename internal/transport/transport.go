// Package transport implements the sensor → aggregation-server protocol the
// paper sketches in §2: "the lookup table is built once at the sensor level
// and then sent to the aggregation server before starting to send the
// symbolic data", with support for "rebuilding and resending the lookup
// table periodically or if the distribution of the data changes too much".
//
// The wire format is length-prefixed frames over any io.Writer/io.Reader
// (tested over bytes.Buffer, net.Pipe and real TCP):
//
//	frame   = type(1) | length(uint32 BE) | payload
//	'H'     = session handshake; must be the first frame on a multi-meter
//	          session stream. v1: version(1) | meterID(uint64 BE).
//	          v2: version(1) | flags(1) | meterID(uint64 BE); servers
//	          accept both shapes.
//	'T'     = lookup table (symbolic.MarshalTable payload)
//	'S'     = symbol batch: firstT(int64 BE) | window(int64 BE) | packed
//	          symbols of consecutive windows (symbolic.Pack payload)
//	'E'     = end of stream (empty payload)
//
// A batch holds symbols of consecutive windows only; the sensor starts a
// new batch when a data gap breaks consecutiveness, so timestamps are
// reconstructed exactly.
//
// Protocol v2 adds the sequenced, acknowledged ingest family, negotiated by
// the FlagSequenced handshake flag (legacy streams stay one-way):
//
//	'U'     = sequenced table:  seq(uint64 BE) | marshaled table
//	'D'     = sequenced batch:  seq(uint64 BE) | firstT | window | packed
//	'A'     = ack:              seq(uint64 BE) — the server's committed
//	          per-meter high-water mark. Sent once as the handshake reply
//	          (so a reconnecting client learns what survived) and once per
//	          committed or duplicate-suppressed 'U'/'D' frame.
//
// Sequence numbers start at 1 and increase by exactly one per 'U'/'D'
// frame across the meter's lifetime (not per connection). The server
// commits seq == hwm+1 and advances, suppresses seq <= hwm as a duplicate
// (still acked — that is what makes retry-after-reset exactly-once), and
// tears the session on a gap. Per-frame refusals (storage degraded, shard
// overloaded) arrive as 'X' frames carrying the refused seq in the id
// field; the session survives them, so a client backs off and resends the
// same seq.
//
// The single-connection Sensor/Server pair predates the handshake and
// still works handshake-free over a dedicated stream; the concurrent
// aggregation service in internal/server requires the 'H' frame to route
// a connection to its per-meter session.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

// Frame types as they appear on the wire.
const (
	FrameHandshake byte = 'H'
	FrameTable     byte = 'T'
	FrameSymbol    byte = 'S'
	FrameEnd       byte = 'E'
	FrameSeqTable  byte = 'U'
	FrameSeqSymbol byte = 'D'
	FrameAck       byte = 'A'
)

// ProtocolVersion is the current sensor→server protocol version carried in
// the handshake frame. v2 adds the flags byte and the sequenced ingest
// family; servers still accept v1's flag-less handshake, and a v1 stream
// never sees the new frames. A server refuses other versions with
// ErrVersionMismatch rather than guessing at frame semantics.
const ProtocolVersion byte = 2

// Handshake flag bits (v2+). Unknown bits are rejected, not ignored — a
// future revision that needs more must bump ProtocolVersion.
const (
	// FlagSequenced requests a sequenced, acknowledged session: the server
	// replies to the handshake with an 'A' frame carrying the meter's
	// committed high-water mark and acks every 'U'/'D' frame.
	FlagSequenced byte = 1 << 0

	flagsKnown = FlagSequenced
)

// maxFrame bounds payload sizes against corrupted length fields.
const maxFrame = 16 << 20

// MaxFrame is the largest payload a peer may send; frames claiming more
// are rejected with ErrFrameTooLarge before any allocation.
const MaxFrame = maxFrame

// Typed protocol errors. Every malformed input maps onto one of these (via
// errors.Is) so servers can tell protocol abuse from transport failures.
var (
	// ErrFrameTooLarge reports a frame header whose length field exceeds
	// MaxFrame.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrVersionMismatch reports a handshake from an incompatible protocol
	// version.
	ErrVersionMismatch = errors.New("transport: protocol version mismatch")
	// ErrBadHandshake reports a missing, truncated, or malformed 'H' frame
	// where a session handshake was required.
	ErrBadHandshake = errors.New("transport: bad handshake frame")
	// ErrSymbolBeforeTable reports a symbol batch arriving before any
	// lookup table, which makes the stream undecodable.
	ErrSymbolBeforeTable = errors.New("transport: symbol frame before any table")
	// ErrUnknownFrame reports a frame type outside the protocol alphabet.
	ErrUnknownFrame = errors.New("transport: unknown frame type")
)

// writeFrame emits one frame. Empty payloads are never written separately:
// a zero-length Write would block forever on fully synchronous transports
// like net.Pipe, whose writes always wait for a matching read while
// ReadFull with an empty buffer never issues one.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. It returns io.EOF only for a clean stream end
// (no header bytes at all); a header without its payload is a truncated
// stream and surfaces as io.ErrUnexpectedEOF.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF for clean end, ErrUnexpectedEOF for torn header
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes (limit %d)", ErrFrameTooLarge, n, maxFrame)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("transport: truncated frame payload: %w", err)
	}
	return hdr[0], payload, nil
}

// Handshake identifies one meter's session stream.
type Handshake struct {
	Version byte
	Flags   byte
	MeterID uint64
}

// Sequenced reports whether the handshake requested a sequenced,
// acknowledged session.
func (hs Handshake) Sequenced() bool { return hs.Flags&FlagSequenced != 0 }

// Handshake payload sizes: v1 is version|meterID, v2 inserts a flags byte.
const (
	handshakeLenV1 = 9
	handshakeLenV2 = 10
)

// WriteHandshake opens a session stream by sending the 'H' frame for the
// given meter at the current protocol version with no flags set. It must
// precede every other frame on a multi-meter connection.
func WriteHandshake(w io.Writer, meterID uint64) error {
	return WriteHandshakeFlags(w, meterID, 0)
}

// WriteHandshakeFlags is WriteHandshake with explicit v2 flag bits —
// FlagSequenced opts the session into acknowledged, exactly-once ingest.
func WriteHandshakeFlags(w io.Writer, meterID uint64, flags byte) error {
	var payload [handshakeLenV2]byte
	payload[0] = ProtocolVersion
	payload[1] = flags
	binary.BigEndian.PutUint64(payload[2:], meterID)
	return writeFrame(w, FrameHandshake, payload[:])
}

// ReadHandshake reads and validates the 'H' frame that must open a session
// stream, accepting both the v1 (flag-less) and v2 shapes. Truncated or
// mistyped frames surface as ErrBadHandshake; incompatible versions as
// ErrVersionMismatch; unknown flag bits as ErrBadHandshake (a client that
// needs semantics this server lacks must not be half-understood).
func ReadHandshake(r io.Reader) (Handshake, error) {
	typ, payload, err := readFrame(r)
	if err != nil {
		return Handshake{}, fmt.Errorf("%w: %w", ErrBadHandshake, err)
	}
	if typ != FrameHandshake {
		return Handshake{}, fmt.Errorf("%w: got frame type %#x, want 'H'", ErrBadHandshake, typ)
	}
	var hs Handshake
	switch len(payload) {
	case handshakeLenV1:
		hs.Version = payload[0]
		hs.MeterID = binary.BigEndian.Uint64(payload[1:])
		if hs.Version != 1 {
			return hs, fmt.Errorf("%w: peer speaks v%d, server speaks v%d", ErrVersionMismatch, hs.Version, ProtocolVersion)
		}
	case handshakeLenV2:
		hs.Version = payload[0]
		hs.Flags = payload[1]
		hs.MeterID = binary.BigEndian.Uint64(payload[2:])
		if hs.Version != ProtocolVersion {
			return hs, fmt.Errorf("%w: peer speaks v%d, server speaks v%d", ErrVersionMismatch, hs.Version, ProtocolVersion)
		}
		if hs.Flags&^flagsKnown != 0 {
			return hs, fmt.Errorf("%w: unknown flag bits %#x", ErrBadHandshake, hs.Flags&^flagsKnown)
		}
	default:
		return Handshake{}, fmt.Errorf("%w: payload of %d bytes, want %d or %d", ErrBadHandshake, len(payload), handshakeLenV1, handshakeLenV2)
	}
	return hs, nil
}

// ackLen is the exact payload size of an 'A' frame.
const ackLen = 8

// AppendAckFrame appends the complete 'A' frame for seq to buf — the
// server's single-write ack path.
func AppendAckFrame(buf []byte, seq uint64) []byte {
	var p [5 + ackLen]byte
	p[0] = FrameAck
	binary.BigEndian.PutUint32(p[1:5], ackLen)
	binary.BigEndian.PutUint64(p[5:], seq)
	return append(buf, p[:]...)
}

// DecodeAck decodes an 'A' frame payload into the acked sequence number.
func DecodeAck(payload []byte) (uint64, error) {
	if len(payload) != ackLen {
		return 0, fmt.Errorf("transport: ack payload of %d bytes, want %d", len(payload), ackLen)
	}
	return binary.BigEndian.Uint64(payload), nil
}

// Event is one decoded protocol frame, as produced by Decoder.Next.
type Event struct {
	// Type is the frame type: FrameTable, FrameSymbol, FrameSeqTable,
	// FrameSeqSymbol or FrameEnd.
	Type byte
	// Seq is the batch sequence number for FrameSeqTable and FrameSeqSymbol
	// events; zero otherwise.
	Seq uint64
	// Table is set for FrameTable and FrameSeqTable events.
	Table *symbolic.Table
	// Points is set for FrameSymbol events: the batch's symbols with their
	// reconstructed window-end timestamps. The slice aliases the Decoder's
	// reusable scratch buffer and is valid only until the next call to Next;
	// callers that retain the slice itself (rather than copying its
	// elements) must take ClonePoints instead.
	Points []symbolic.SymbolPoint
}

// ClonePoints returns a copy of the event's point batch that stays valid
// after the next Decoder.Next call — the escape hatch for the rare caller
// that stores the slice instead of consuming it inline.
func (ev Event) ClonePoints() []symbolic.SymbolPoint {
	if ev.Points == nil {
		return nil
	}
	out := make([]symbolic.SymbolPoint, len(ev.Points))
	copy(out, ev.Points)
	return out
}

// Decoder incrementally decodes a sensor stream frame by frame. Unlike
// Server.ReadAll it hands each table and symbol batch to the caller as it
// arrives, which is what a concurrent per-meter session loop needs: state
// lands in a shared store batch-by-batch instead of accumulating per
// connection.
//
// The Decoder owns three scratch buffers — the FrameReader's payload, the
// unpacked symbols and the emitted points — that are reused across Next
// calls, so a steady-state session decodes symbol batches without
// allocating.
type Decoder struct {
	fr     FrameReader
	tables int

	syms []symbolic.Symbol
	pts  []symbolic.SymbolPoint
}

// NewDecoder wraps a reader positioned after any handshake.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{fr: FrameReader{r: r}} }

// TableEstablished marks the stream's symbol-before-table precondition as
// met out of band. A reconnecting sequenced session resumes against the
// table its meter already committed — the server seeds the fresh decoder
// instead of making the client re-announce a table the handshake's
// high-water mark proves is durable.
func (d *Decoder) TableEstablished() { d.tables++ }

// Next decodes one frame. It returns io.EOF only on a clean stream end
// between frames; an FrameEnd event signals orderly protocol shutdown.
//
// The returned event's Points slice is reused by the next call; see Event.
func (d *Decoder) Next() (Event, error) {
	typ, payload, err := d.fr.Next()
	if err != nil {
		return Event{}, err
	}
	switch typ {
	case FrameTable:
		t, err := symbolic.UnmarshalTable(payload)
		if err != nil {
			return Event{}, fmt.Errorf("transport: bad table frame: %w", err)
		}
		d.tables++
		return Event{Type: FrameTable, Table: t}, nil
	case FrameSeqTable:
		if len(payload) < 8 {
			return Event{}, errors.New("transport: short sequenced table frame")
		}
		seq := binary.BigEndian.Uint64(payload[0:8])
		t, err := symbolic.UnmarshalTable(payload[8:])
		if err != nil {
			return Event{}, fmt.Errorf("transport: bad table frame: %w", err)
		}
		d.tables++
		return Event{Type: FrameSeqTable, Seq: seq, Table: t}, nil
	case FrameSymbol:
		pts, err := d.decodeBatch(payload)
		if err != nil {
			return Event{}, err
		}
		return Event{Type: FrameSymbol, Points: pts}, nil
	case FrameSeqSymbol:
		if len(payload) < 8 {
			return Event{}, errors.New("transport: short sequenced symbol frame")
		}
		seq := binary.BigEndian.Uint64(payload[0:8])
		pts, err := d.decodeBatch(payload[8:])
		if err != nil {
			return Event{}, err
		}
		return Event{Type: FrameSeqSymbol, Seq: seq, Points: pts}, nil
	case FrameEnd:
		return Event{Type: FrameEnd}, nil
	case FrameHandshake:
		return Event{}, fmt.Errorf("%w: handshake after session start", ErrBadHandshake)
	default:
		return Event{}, fmt.Errorf("%w: %#x", ErrUnknownFrame, typ)
	}
}

// decodeBatch decodes the firstT | window | packed body shared by 'S' and
// 'D' frames into the reusable point scratch.
func (d *Decoder) decodeBatch(body []byte) ([]symbolic.SymbolPoint, error) {
	if d.tables == 0 {
		return nil, ErrSymbolBeforeTable
	}
	if len(body) < 16 {
		return nil, errors.New("transport: short symbol frame")
	}
	firstT := int64(binary.BigEndian.Uint64(body[0:8]))
	window := int64(binary.BigEndian.Uint64(body[8:16]))
	if window <= 0 {
		return nil, errors.New("transport: bad window in symbol frame")
	}
	var err error
	d.syms, err = symbolic.UnpackInto(d.syms, body[16:])
	if err != nil {
		return nil, fmt.Errorf("transport: bad symbol frame: %w", err)
	}
	if cap(d.pts) < len(d.syms) {
		d.pts = make([]symbolic.SymbolPoint, len(d.syms))
	}
	pts := d.pts[:len(d.syms)]
	for i, sym := range d.syms {
		pts[i] = symbolic.SymbolPoint{T: firstT + int64(i)*window, S: sym}
	}
	return pts, nil
}

// Sensor encodes raw measurements and streams table + symbol frames.
type Sensor struct {
	w         io.Writer
	enc       *symbolic.Encoder
	window    int64
	batchSize int

	batch       []symbolic.Symbol
	batchFirstT int64
	nextT       int64
	closed      bool
	// scratch is the reusable frame-assembly buffer: sendBatch builds the
	// whole symbol frame (header, timestamps, packed payload) into it and
	// issues a single Write, so steady-state streaming neither allocates
	// nor splits a frame across two writes.
	scratch []byte
}

// NewSensor writes the table frame and returns a streaming sensor emitting
// one symbol per window seconds, batching up to batchSize consecutive
// symbols per frame (default 96).
func NewSensor(w io.Writer, table *symbolic.Table, window int64, batchSize int) (*Sensor, error) {
	if table == nil {
		return nil, errors.New("transport: sensor needs a table")
	}
	if window <= 0 {
		return nil, errors.New("transport: window must be positive")
	}
	if batchSize <= 0 {
		batchSize = 96
	}
	if err := writeFrame(w, FrameTable, symbolic.MarshalTable(table)); err != nil {
		return nil, err
	}
	return &Sensor{
		w:         w,
		enc:       symbolic.NewEncoder(table, window),
		window:    window,
		batchSize: batchSize,
	}, nil
}

// Push feeds one measurement; completed windows are buffered and flushed as
// batches fill or gaps break consecutiveness.
func (s *Sensor) Push(p timeseries.Point) error {
	if s.closed {
		return errors.New("transport: sensor closed")
	}
	sp, ok, err := s.enc.Push(p)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	return s.buffer(sp)
}

func (s *Sensor) buffer(sp symbolic.SymbolPoint) error {
	if len(s.batch) > 0 && sp.T != s.nextT {
		if err := s.flushBatch(); err != nil {
			return err
		}
	}
	if len(s.batch) == 0 {
		s.batchFirstT = sp.T
	}
	s.batch = append(s.batch, sp.S)
	s.nextT = sp.T + s.window
	if len(s.batch) >= s.batchSize {
		return s.flushBatch()
	}
	return nil
}

// UpdateTable resends a new lookup table (the §2/§4 adaptive path). Pending
// symbols encoded with the old table are flushed first.
func (s *Sensor) UpdateTable(table *symbolic.Table) error {
	if s.closed {
		return errors.New("transport: sensor closed")
	}
	if err := s.flushBatch(); err != nil {
		return err
	}
	// Encoder state: a partially filled window was encoded by the old
	// encoder; flush it so no window straddles tables.
	if sp, ok := s.enc.Flush(); ok {
		if err := s.sendBatch(sp.T, []symbolic.Symbol{sp.S}); err != nil {
			return err
		}
	}
	if err := writeFrame(s.w, FrameTable, symbolic.MarshalTable(table)); err != nil {
		return err
	}
	s.enc = symbolic.NewEncoder(table, s.window)
	return nil
}

// flushBatch sends the pending batch frame, if any.
func (s *Sensor) flushBatch() error {
	if len(s.batch) == 0 {
		return nil
	}
	err := s.sendBatch(s.batchFirstT, s.batch)
	s.batch = s.batch[:0]
	return err
}

func (s *Sensor) sendBatch(firstT int64, symbols []symbolic.Symbol) error {
	// Frame layout: type(1) | length(4) | firstT(8) | window(8) | packed.
	buf := s.scratch[:0]
	var hdr [21]byte
	hdr[0] = FrameSymbol
	binary.BigEndian.PutUint64(hdr[5:13], uint64(firstT))
	binary.BigEndian.PutUint64(hdr[13:21], uint64(s.window))
	buf = append(buf, hdr[:]...)
	buf, err := symbolic.AppendPack(buf, symbols)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(buf)-5))
	s.scratch = buf
	_, err = s.w.Write(buf)
	return err
}

// Close flushes the trailing window and batch and writes the end frame.
func (s *Sensor) Close() error {
	if s.closed {
		return nil
	}
	if sp, ok := s.enc.Flush(); ok {
		if err := s.buffer(sp); err != nil {
			return err
		}
	}
	if err := s.flushBatch(); err != nil {
		return err
	}
	s.closed = true
	return writeFrame(s.w, FrameEnd, nil)
}

// Server decodes the sensor stream back into timestamped symbols, tracking
// table updates.
type Server struct {
	r io.Reader
	// Tables holds every table received, in order; the last is current.
	Tables []*symbolic.Table
	// Points holds the decoded symbol stream.
	Points []symbolic.SymbolPoint
	// TableAt[i] indexes Tables for Points[i] (symbols before a table
	// update decode against the older table).
	TableAt []int
}

// NewServer wraps a reader.
func NewServer(r io.Reader) *Server { return &Server{r: r} }

// ReadAll consumes frames until the end frame or EOF.
func (s *Server) ReadAll() error {
	dec := NewDecoder(s.r)
	for {
		ev, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch ev.Type {
		case FrameTable:
			s.Tables = append(s.Tables, ev.Table)
		case FrameSymbol:
			s.Points = append(s.Points, ev.Points...)
			for range ev.Points {
				s.TableAt = append(s.TableAt, len(s.Tables)-1)
			}
		case FrameEnd:
			return nil
		}
	}
}

// Reconstruct maps the decoded symbols to representative values using the
// table that was current when each symbol was sent.
func (s *Server) Reconstruct() (*timeseries.Series, error) {
	pts := make([]timeseries.Point, len(s.Points))
	for i, sp := range s.Points {
		table := s.Tables[s.TableAt[i]]
		v, err := table.Value(sp.S)
		if err != nil {
			return nil, err
		}
		pts[i] = timeseries.Point{T: sp.T, V: v}
	}
	return timeseries.New("reconstructed", pts)
}
