// Package transport implements the sensor → aggregation-server protocol the
// paper sketches in §2: "the lookup table is built once at the sensor level
// and then sent to the aggregation server before starting to send the
// symbolic data", with support for "rebuilding and resending the lookup
// table periodically or if the distribution of the data changes too much".
//
// The wire format is length-prefixed frames over any io.Writer/io.Reader
// (tested over bytes.Buffer and net.Pipe):
//
//	frame   = type(1) | length(uint32 BE) | payload
//	'T'     = lookup table (symbolic.MarshalTable payload)
//	'S'     = symbol batch: firstT(int64 BE) | window(int64 BE) | packed
//	          symbols of consecutive windows (symbolic.Pack payload)
//	'E'     = end of stream (empty payload)
//
// A batch holds symbols of consecutive windows only; the sensor starts a
// new batch when a data gap breaks consecutiveness, so timestamps are
// reconstructed exactly.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
)

// Frame types.
const (
	frameTable  = 'T'
	frameSymbol = 'S'
	frameEnd    = 'E'
)

// maxFrame bounds payload sizes against corrupted length fields.
const maxFrame = 16 << 20

// writeFrame emits one frame. Empty payloads are never written separately:
// a zero-length Write would block forever on fully synchronous transports
// like net.Pipe, whose writes always wait for a matching read while
// ReadFull with an empty buffer never issues one.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. It returns io.EOF only for a clean stream end
// (no header bytes at all); a header without its payload is a truncated
// stream and surfaces as io.ErrUnexpectedEOF.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF for clean end, ErrUnexpectedEOF for torn header
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("transport: truncated frame payload: %w", err)
	}
	return hdr[0], payload, nil
}

// Sensor encodes raw measurements and streams table + symbol frames.
type Sensor struct {
	w         io.Writer
	enc       *symbolic.Encoder
	window    int64
	batchSize int

	batch       []symbolic.Symbol
	batchFirstT int64
	nextT       int64
	closed      bool
}

// NewSensor writes the table frame and returns a streaming sensor emitting
// one symbol per window seconds, batching up to batchSize consecutive
// symbols per frame (default 96).
func NewSensor(w io.Writer, table *symbolic.Table, window int64, batchSize int) (*Sensor, error) {
	if table == nil {
		return nil, errors.New("transport: sensor needs a table")
	}
	if window <= 0 {
		return nil, errors.New("transport: window must be positive")
	}
	if batchSize <= 0 {
		batchSize = 96
	}
	if err := writeFrame(w, frameTable, symbolic.MarshalTable(table)); err != nil {
		return nil, err
	}
	return &Sensor{
		w:         w,
		enc:       symbolic.NewEncoder(table, window),
		window:    window,
		batchSize: batchSize,
	}, nil
}

// Push feeds one measurement; completed windows are buffered and flushed as
// batches fill or gaps break consecutiveness.
func (s *Sensor) Push(p timeseries.Point) error {
	if s.closed {
		return errors.New("transport: sensor closed")
	}
	sp, ok, err := s.enc.Push(p)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	return s.buffer(sp)
}

func (s *Sensor) buffer(sp symbolic.SymbolPoint) error {
	if len(s.batch) > 0 && sp.T != s.nextT {
		if err := s.flushBatch(); err != nil {
			return err
		}
	}
	if len(s.batch) == 0 {
		s.batchFirstT = sp.T
	}
	s.batch = append(s.batch, sp.S)
	s.nextT = sp.T + s.window
	if len(s.batch) >= s.batchSize {
		return s.flushBatch()
	}
	return nil
}

// UpdateTable resends a new lookup table (the §2/§4 adaptive path). Pending
// symbols encoded with the old table are flushed first.
func (s *Sensor) UpdateTable(table *symbolic.Table) error {
	if s.closed {
		return errors.New("transport: sensor closed")
	}
	if err := s.flushBatch(); err != nil {
		return err
	}
	// Encoder state: a partially filled window was encoded by the old
	// encoder; flush it so no window straddles tables.
	if sp, ok := s.enc.Flush(); ok {
		if err := s.sendBatch(sp.T, []symbolic.Symbol{sp.S}); err != nil {
			return err
		}
	}
	if err := writeFrame(s.w, frameTable, symbolic.MarshalTable(table)); err != nil {
		return err
	}
	s.enc = symbolic.NewEncoder(table, s.window)
	return nil
}

// flushBatch sends the pending batch frame, if any.
func (s *Sensor) flushBatch() error {
	if len(s.batch) == 0 {
		return nil
	}
	err := s.sendBatch(s.batchFirstT, s.batch)
	s.batch = s.batch[:0]
	return err
}

func (s *Sensor) sendBatch(firstT int64, symbols []symbolic.Symbol) error {
	packed, err := symbolic.Pack(symbols)
	if err != nil {
		return err
	}
	payload := make([]byte, 16+len(packed))
	binary.BigEndian.PutUint64(payload[0:8], uint64(firstT))
	binary.BigEndian.PutUint64(payload[8:16], uint64(s.window))
	copy(payload[16:], packed)
	return writeFrame(s.w, frameSymbol, payload)
}

// Close flushes the trailing window and batch and writes the end frame.
func (s *Sensor) Close() error {
	if s.closed {
		return nil
	}
	if sp, ok := s.enc.Flush(); ok {
		if err := s.buffer(sp); err != nil {
			return err
		}
	}
	if err := s.flushBatch(); err != nil {
		return err
	}
	s.closed = true
	return writeFrame(s.w, frameEnd, nil)
}

// Server decodes the sensor stream back into timestamped symbols, tracking
// table updates.
type Server struct {
	r io.Reader
	// Tables holds every table received, in order; the last is current.
	Tables []*symbolic.Table
	// Points holds the decoded symbol stream.
	Points []symbolic.SymbolPoint
	// TableAt[i] indexes Tables for Points[i] (symbols before a table
	// update decode against the older table).
	TableAt []int
}

// NewServer wraps a reader.
func NewServer(r io.Reader) *Server { return &Server{r: r} }

// ReadAll consumes frames until the end frame or EOF.
func (s *Server) ReadAll() error {
	for {
		typ, payload, err := readFrame(s.r)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch typ {
		case frameTable:
			t, err := symbolic.UnmarshalTable(payload)
			if err != nil {
				return fmt.Errorf("transport: bad table frame: %w", err)
			}
			s.Tables = append(s.Tables, t)
		case frameSymbol:
			if len(s.Tables) == 0 {
				return errors.New("transport: symbol frame before any table")
			}
			if len(payload) < 16 {
				return errors.New("transport: short symbol frame")
			}
			firstT := int64(binary.BigEndian.Uint64(payload[0:8]))
			window := int64(binary.BigEndian.Uint64(payload[8:16]))
			if window <= 0 {
				return errors.New("transport: bad window in symbol frame")
			}
			symbols, err := symbolic.Unpack(payload[16:])
			if err != nil {
				return fmt.Errorf("transport: bad symbol frame: %w", err)
			}
			for i, sym := range symbols {
				s.Points = append(s.Points, symbolic.SymbolPoint{
					T: firstT + int64(i)*window,
					S: sym,
				})
				s.TableAt = append(s.TableAt, len(s.Tables)-1)
			}
		case frameEnd:
			return nil
		default:
			return fmt.Errorf("transport: unknown frame type %#x", typ)
		}
	}
}

// Reconstruct maps the decoded symbols to representative values using the
// table that was current when each symbol was sent.
func (s *Server) Reconstruct() (*timeseries.Series, error) {
	pts := make([]timeseries.Point, len(s.Points))
	for i, sp := range s.Points {
		table := s.Tables[s.TableAt[i]]
		v, err := table.Value(sp.S)
		if err != nil {
			return nil, err
		}
		pts[i] = timeseries.Point{T: sp.T, V: v}
	}
	return timeseries.New("reconstructed", pts)
}
