package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// encodeDecodeRequest round-trips one request through the wire bytes.
func encodeDecodeRequest(t *testing.T, req QueryRequest) QueryRequest {
	t.Helper()
	frame := AppendQueryRequestFrame(nil, req)
	if frame[0] != FrameQuery {
		t.Fatalf("frame type %#x, want 'Q'", frame[0])
	}
	if n := binary.BigEndian.Uint32(frame[1:5]); int(n) != len(frame)-5 {
		t.Fatalf("frame claims %d payload bytes, has %d", n, len(frame)-5)
	}
	got, err := DecodeQueryRequest(frame[5:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestQueryRequestRoundTrip(t *testing.T) {
	for op := OpCount; op < opEnd; op++ {
		for _, fleet := range []bool{false, true} {
			req := QueryRequest{
				ID:      0xdeadbeef00 + uint64(op),
				Op:      op,
				Fleet:   fleet,
				MeterID: 77,
				T0:      -100,
				T1:      1 << 40,
			}
			if got := encodeDecodeRequest(t, req); got != req {
				t.Fatalf("round trip %+v -> %+v", req, got)
			}
		}
	}
}

func TestQueryRequestMalformed(t *testing.T) {
	good := AppendQueryRequestFrame(nil, QueryRequest{ID: 42, Op: OpSum, MeterID: 1, T0: 0, T1: 10})[5:]

	short := good[:len(good)-1]
	if req, err := DecodeQueryRequest(short); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("short payload: err = %v", err)
	} else if req.ID != 42 {
		t.Fatalf("short payload lost the id: %d", req.ID)
	}

	long := append(append([]byte(nil), good...), 0)
	if _, err := DecodeQueryRequest(long); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("long payload: err = %v", err)
	}

	badVer := append([]byte(nil), good...)
	badVer[0] = 99
	if req, err := DecodeQueryRequest(badVer); !errors.Is(err, ErrQueryVersionMismatch) {
		t.Fatalf("bad version: err = %v", err)
	} else if req.ID != 42 {
		t.Fatalf("bad version lost the id: %d", req.ID)
	}

	for _, op := range []byte{0, byte(opEnd), 0xff} {
		bad := append([]byte(nil), good...)
		bad[1] = op
		if _, err := DecodeQueryRequest(bad); !errors.Is(err, ErrUnknownOp) {
			t.Fatalf("op %#x: err = %v", op, err)
		}
	}

	badFlags := append([]byte(nil), good...)
	badFlags[2] = 0x80
	if _, err := DecodeQueryRequest(badFlags); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("unknown flags: err = %v", err)
	}
}

// roundTripResult encodes res and decodes it back through a fresh result.
func roundTripResult(t *testing.T, res *QueryResult) QueryResult {
	t.Helper()
	frame, err := AppendQueryResultFrame(nil, res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if frame[0] != FrameResult {
		t.Fatalf("frame type %#x, want 'R'", frame[0])
	}
	if n := binary.BigEndian.Uint32(frame[1:5]); int(n) != len(frame)-5 {
		t.Fatalf("frame claims %d payload bytes, has %d", n, len(frame)-5)
	}
	var got QueryResult
	if err := DecodeQueryResponse(frame[0], frame[5:], &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestQueryResultRoundTrip(t *testing.T) {
	cases := []QueryResult{
		{ID: 1, Op: OpCount, Count: 12345},
		{ID: 2, Op: OpSum, Count: 9, Sum: -1234.5625},
		{ID: 3, Op: OpMean, Count: 0, Value: math.NaN()},
		{ID: 4, Op: OpMin, Count: 3, Value: math.Inf(-1)},
		{ID: 5, Op: OpMax, Count: 3, Value: 4000},
		{ID: 6, Op: OpAggregate, Count: 7, Sum: 21.25, Min: -1, Max: 11},
		{ID: 7, Op: OpHistogram, Level: 2, Counts: []uint64{1, 0, 3, math.MaxUint64}},
		{ID: 8, Op: OpHistogram, Level: 0, Counts: nil}, // empty range
	}
	for _, want := range cases {
		got := roundTripResult(t, &want)
		if got.ID != want.ID || got.Op != want.Op || got.Count != want.Count {
			t.Fatalf("op %#x: got %+v want %+v", want.Op, got, want)
		}
		// Floats compare as bit patterns: the protocol promises bit-exact
		// transfer, including NaN and infinities.
		for _, pair := range [][2]float64{
			{got.Value, want.Value}, {got.Sum, want.Sum},
			{got.Min, want.Min}, {got.Max, want.Max},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("op %#x: float bits %x != %x", want.Op, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
		if got.Level != want.Level || len(got.Counts) != len(want.Counts) {
			t.Fatalf("op %#x: histogram %d/%v want %d/%v", want.Op, got.Level, got.Counts, want.Level, want.Counts)
		}
		for i := range got.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("bin %d: %d want %d", i, got.Counts[i], want.Counts[i])
			}
		}
	}
}

func TestQueryResultEncodeRejectsGarbage(t *testing.T) {
	if _, err := AppendQueryResultFrame(nil, &QueryResult{Op: 0xff}); err == nil {
		t.Fatal("unknown op encoded")
	}
	if _, err := AppendQueryResultFrame(nil, &QueryResult{Op: OpHistogram, Level: 3, Counts: make([]uint64, 5)}); err == nil {
		t.Fatal("bin/level mismatch encoded")
	}
	if _, err := AppendQueryResultFrame(nil, &QueryResult{Op: OpHistogram, Level: 64}); err == nil {
		t.Fatal("absurd level encoded")
	}
	// A failed encode must not leave partial frame bytes behind.
	buf := []byte("prefix")
	out, err := AppendQueryResultFrame(buf, &QueryResult{Op: 0xff})
	if err == nil || len(out) != len(buf) {
		t.Fatalf("failed encode left %d bytes (err %v)", len(out)-len(buf), err)
	}
}

func TestQueryErrorFrame(t *testing.T) {
	frame := AppendQueryErrorFrame(nil, 99, QErrUnknownMeter, "meter 5 not in store")
	var res QueryResult
	err := DecodeQueryResponse(frame[0], frame[5:], &res)
	if res.ID != 99 {
		t.Fatalf("id = %d, want 99", res.ID)
	}
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Code != QErrUnknownMeter || qe.Msg != "meter 5 not in store" {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, ErrQueryUnknownMeter) {
		t.Fatalf("err %v does not match ErrQueryUnknownMeter", err)
	}
	// Each code maps onto its sentinel and no other.
	codes := map[byte]error{
		QErrBadRange:     ErrQueryBadRange,
		QErrUnknownMeter: ErrQueryUnknownMeter,
		QErrMixedLevels:  ErrQueryMixedLevels,
		QErrLevelTooFine: ErrQueryLevelTooFine,
		QErrVersion:      ErrQueryVersionMismatch,
	}
	for code, sentinel := range codes {
		e := &QueryError{Code: code}
		if !errors.Is(e, sentinel) {
			t.Fatalf("code %d does not match %v", code, sentinel)
		}
		for other, os := range codes {
			if other != code && errors.Is(e, os) {
				t.Fatalf("code %d also matches %v", code, os)
			}
		}
	}
}

func TestQueryErrorCodeFlatten(t *testing.T) {
	if code, _ := QueryErrorCode(&QueryError{Code: QErrBadRange, Msg: "x"}); code != QErrBadRange {
		t.Fatalf("code = %d", code)
	}
	if code, msg := QueryErrorCode(errors.New("disk on fire")); code != QErrInternal || msg != "disk on fire" {
		t.Fatalf("internal mapping: %d %q", code, msg)
	}
}

func TestDecodeQueryResponseMalformed(t *testing.T) {
	var res QueryResult
	if err := DecodeQueryResponse(FrameResult, []byte{1, 2, 3}, &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("short payload: %v", err)
	}
	if err := DecodeQueryResponse(FrameTable, make([]byte, 16), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("wrong frame type: %v", err)
	}

	mk := func(op byte, body []byte) []byte {
		p := make([]byte, 9, 9+len(body))
		binary.BigEndian.PutUint64(p[0:8], 1)
		p[8] = op
		return append(p, body...)
	}
	if err := DecodeQueryResponse(FrameResult, mk(OpCount, make([]byte, 7)), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("short count body: %v", err)
	}
	if err := DecodeQueryResponse(FrameResult, mk(OpAggregate, make([]byte, 33)), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("long aggregate body: %v", err)
	}
	if err := DecodeQueryResponse(FrameResult, mk(0xee, make([]byte, 8)), &res); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("unknown op: %v", err)
	}

	// Histogram bodies: truncated header, lying bin count, absurd level.
	if err := DecodeQueryResponse(FrameResult, mk(OpHistogram, []byte{2, 0}), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("truncated histogram header: %v", err)
	}
	lying := []byte{2, 0, 0, 0, 3} // level 2 claims 3 bins
	if err := DecodeQueryResponse(FrameResult, mk(OpHistogram, lying), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("lying bin count: %v", err)
	}
	absurd := []byte{63, 0, 0, 0, 4} // level 63 would demand 2^63 bins
	if err := DecodeQueryResponse(FrameResult, mk(OpHistogram, absurd), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("absurd level: %v", err)
	}
	torn := append([]byte{2, 0, 0, 0, 4}, make([]byte, 3*8)...) // 4 bins claimed, 3 present
	if err := DecodeQueryResponse(FrameResult, mk(OpHistogram, torn), &res); !errors.Is(err, ErrBadQueryFrame) {
		t.Fatalf("torn histogram: %v", err)
	}
}

func TestFrameReader(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, FrameSymbol, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	typ, payload, err := fr.Next()
	if err != nil || typ != FrameEnd || len(payload) != 0 {
		t.Fatalf("first frame: %c %v %v", typ, payload, err)
	}
	typ, payload, err = fr.Next()
	if err != nil || typ != FrameSymbol || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("second frame: %c %v %v", typ, payload, err)
	}
	if _, _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: %v", err)
	}

	// Torn header and oversized claims.
	fr = NewFrameReader(bytes.NewReader([]byte{'S', 0, 0}))
	if _, _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header: %v", err)
	}
	var big bytes.Buffer
	big.WriteByte('S')
	binary.Write(&big, binary.BigEndian, uint32(maxFrame+1))
	fr = NewFrameReader(&big)
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
}

// TestDecodeQueryResponseZeroAlloc pins the steady-state response decode at
// zero allocations — the pkg/client hot path.
func TestDecodeQueryResponseZeroAlloc(t *testing.T) {
	agg, err := AppendQueryResultFrame(nil, &QueryResult{ID: 1, Op: OpAggregate, Count: 5, Sum: 10, Min: 1, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := AppendQueryResultFrame(nil, &QueryResult{ID: 2, Op: OpHistogram, Level: 4, Counts: make([]uint64, 16)})
	if err != nil {
		t.Fatal(err)
	}
	var res QueryResult
	// Warm the reusable bins before measuring.
	if err := DecodeQueryResponse(hist[0], hist[5:], &res); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeQueryResponse(agg[0], agg[5:], &res); err != nil {
			t.Fatal(err)
		}
		if err := DecodeQueryResponse(hist[0], hist[5:], &res); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("response decode allocates %v per run", n)
	}
}

// TestAppendQueryFramesZeroAlloc pins the request/response encode paths at
// zero allocations once the buffer has capacity.
func TestAppendQueryFramesZeroAlloc(t *testing.T) {
	res := &QueryResult{ID: 1, Op: OpAggregate, Count: 5, Sum: 10, Min: 1, Max: 3}
	buf := make([]byte, 0, 256)
	req := QueryRequest{ID: 9, Op: OpSum, MeterID: 3, T0: 0, T1: 100}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendQueryRequestFrame(buf[:0], req)
		var err error
		buf, err = AppendQueryResultFrame(buf[:0], res)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("frame encode allocates %v per run", n)
	}
}
