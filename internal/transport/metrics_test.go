package transport

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"symmeter/internal/metrics"
)

// TestFrameMetricsCounts checks the per-type routing: tracked frame types
// land on their own series, unknown bytes land on the "other" slot, and the
// byte counter includes the 5-byte header.
func TestFrameMetricsCounts(t *testing.T) {
	reg := metrics.New()
	fm := NewFrameMetrics(reg, "in")
	fm.Observe(FrameSymbol, 100)
	fm.Observe(FrameSymbol, 50)
	fm.Observe(FrameQuery, 0)
	fm.Observe('z', 10) // untracked
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`symmeter_transport_frames_total{dir="in",type="S"} 2`,
		`symmeter_transport_frame_bytes_total{dir="in",type="S"} 160`,
		`symmeter_transport_frames_total{dir="in",type="Q"} 1`,
		`symmeter_transport_frame_bytes_total{dir="in",type="Q"} 5`,
		`symmeter_transport_frames_total{dir="in",type="other"} 1`,
		`symmeter_transport_frame_bytes_total{dir="in",type="other"} 15`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestFrameMetricsNilSafe: a reader without an observer costs one branch.
func TestFrameMetricsNilSafe(t *testing.T) {
	var fm *FrameMetrics
	fm.Observe(FrameSymbol, 100) // must not panic
}

// TestFrameReaderObserves wires a FrameMetrics into a FrameReader and checks
// every decoded frame is counted once with its on-wire size.
func TestFrameReaderObserves(t *testing.T) {
	table := testTable(t)
	data := buildSymbolStream(t, table, 3, 8)
	reg := metrics.New()
	fm := NewFrameMetrics(reg, "in")
	dec := NewDecoder(bytes.NewReader(data))
	dec.SetFrameMetrics(fm)
	frames := 0
	for {
		_, err := dec.Next()
		if err != nil {
			break
		}
		frames++
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `symmeter_transport_frames_total{dir="in",type="S"} 3`) {
		t.Errorf("3 symbol frames decoded, counter disagrees:\n%s", out)
	}
	if !strings.Contains(out, `symmeter_transport_frames_total{dir="in",type="T"} 1`) {
		t.Errorf("table frame not counted:\n%s", out)
	}
	// Total observed bytes across types must equal the stream length (every
	// frame was decoded; the 'E' terminator is part of the stream too).
	var total int64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "symmeter_transport_frame_bytes_total{") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparseable %q: %v", line, err)
			}
			total += v
		}
	}
	if total != int64(len(data)) {
		t.Errorf("observed %d wire bytes, stream is %d", total, len(data))
	}
}

// TestFrameMetricsObserveZeroAlloc pins Observe at zero allocations — it
// sits inside FrameReader.Next, whose steady state is itself pinned.
func TestFrameMetricsObserveZeroAlloc(t *testing.T) {
	fm := NewFrameMetrics(metrics.New(), "in")
	if n := testing.AllocsPerRun(1000, func() {
		fm.Observe(FrameSymbol, 128)
		fm.Observe('z', 16)
	}); n != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", n)
	}
}

// TestInstrumentedDecoderZeroAlloc re-runs the decoder steady-state pin with
// a frame observer installed: instrumentation must not cost an allocation.
func TestInstrumentedDecoderZeroAlloc(t *testing.T) {
	table := testTable(t)
	data := buildSymbolStream(t, table, 300, 96)
	dec := NewDecoder(bytes.NewReader(data))
	dec.SetFrameMetrics(NewFrameMetrics(metrics.New(), "in"))
	for i := 0; i < 4; i++ {
		if _, err := dec.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		ev, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != FrameSymbol || len(ev.Points) == 0 {
			t.Fatalf("unexpected event %c with %d points", ev.Type, len(ev.Points))
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented Decoder.Next allocates %.1f times per run, want 0", allocs)
	}
}
