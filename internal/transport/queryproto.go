// Query frame family: the request/response half of the wire protocol.
//
// The ingest frames ('H','T','S','E') let a meter talk *to* the server; the
// frames here let any network peer ask questions *of* it — the paper's
// aggregation server finally answers aggregate queries over the wire instead
// of only in-process. Three frame types extend the same length-prefixed
// framing:
//
//	'Q' = query request: version(1) | op(1) | flags(1) | id(uint64 BE) |
//	      meterID(uint64 BE) | t0(int64 BE) | t1(int64 BE)
//	'R' = query result: id(uint64 BE) | op(1) | op-specific body (below)
//	'X' = query error: id(uint64 BE) | code(1) | message (UTF-8)
//
// A connection whose first frame is 'Q' is a query session: the server
// executes each request against the compressed-domain engine and answers
// with exactly one 'R' or 'X' carrying the request's id. Requests may be
// pipelined; responses may arrive in any order (the id is the correlator).
// 'E' ends a query session just as it ends an ingest stream.
//
// Result bodies (all integers big-endian, all floats as IEEE-754 bit
// patterns via math.Float64bits — responses are bit-exact, never formatted):
//
//	OpCount               count(8)
//	OpSum                 count(8) | sum(8)
//	OpMean                count(8) | mean(8)       mean is NaN when count=0
//	OpMin / OpMax         count(8) | value(8)      value valid when count>0
//	OpAggregate           count(8) | sum(8) | min(8) | max(8)
//	OpHistogram           level(1) | bins(uint32 BE) | count(8)×bins
//
// The flags field selects scope: bit 0 set = fleet-wide (meterID ignored),
// clear = the single meter in meterID. Unknown flag bits are rejected, not
// ignored — a future protocol revision must bump QueryProtocolVersion.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Query frame types as they appear on the wire.
const (
	FrameQuery      byte = 'Q'
	FrameResult     byte = 'R'
	FrameQueryError byte = 'X'
)

// QueryProtocolVersion is carried in every request frame; a server refuses
// other versions with a QErrVersion error response rather than guessing at
// request semantics.
const QueryProtocolVersion byte = 1

// Query operations. The zero value is invalid so a zeroed request cannot
// silently mean anything.
const (
	OpCount byte = iota + 1
	OpSum
	OpMean
	OpMin
	OpMax
	OpAggregate
	OpHistogram

	opEnd // one past the last valid op
)

// queryFlagFleet marks a fleet-wide request (meterID ignored).
const queryFlagFleet byte = 1 << 0

// queryRequestLen is the exact payload size of a 'Q' frame.
const queryRequestLen = 35

// maxWireHistLevel bounds the histogram level a response may claim, against
// corrupted or hostile level bytes sizing the bin allocation (2^20 bins =
// 8 MiB, still under MaxFrame; real levels top out at 12).
const maxWireHistLevel = 20

// Typed query-protocol errors, distinguishable with errors.Is. The first
// group reports malformed wire data; the second mirrors the server-side
// error codes so a client can match a QueryError without knowing codes.
var (
	// ErrBadQueryFrame reports a structurally malformed query request or
	// response payload.
	ErrBadQueryFrame = errors.New("transport: malformed query frame")
	// ErrQueryVersionMismatch reports a request from an incompatible query
	// protocol version.
	ErrQueryVersionMismatch = errors.New("transport: query protocol version mismatch")
	// ErrUnknownOp reports a request whose op byte is outside the alphabet.
	ErrUnknownOp = errors.New("transport: unknown query op")

	// ErrQueryBadRange reports a request with t0 >= t1 — the half-open range
	// is empty or inverted, which is a caller bug, not an empty result.
	ErrQueryBadRange = errors.New("transport: query range is empty or inverted")
	// ErrQueryUnknownMeter reports a per-meter query for a meter the store
	// has never seen.
	ErrQueryUnknownMeter = errors.New("transport: query for unknown meter")
	// ErrQueryMixedLevels reports a histogram over blocks whose symbol
	// levels disagree.
	ErrQueryMixedLevels = errors.New("transport: histogram over mixed symbol levels")
	// ErrQueryLevelTooFine reports a histogram at an impractically fine
	// symbol level.
	ErrQueryLevelTooFine = errors.New("transport: histogram level too fine")
	// ErrServerDegraded reports a server refusing to accept writes because
	// its durability layer is degraded: queries still work, ingest is
	// refused until the server heals. Clients should back off and retry —
	// nothing about the refused batch was written.
	ErrServerDegraded = errors.New("transport: server storage degraded, ingest refused")
	// ErrServerOverloaded reports an admission-control refusal: the shard's
	// in-flight ingest budget is exhausted. Retryable — nothing about the
	// refused batch was written, and the budget frees as in-flight work
	// drains.
	ErrServerOverloaded = errors.New("transport: server overloaded, ingest refused")
	// ErrServerDraining reports a server refusing new sessions because it
	// is shutting down gracefully. Retryable — a rolling restart looks like
	// backpressure, and a peer (or its replacement) comes back.
	ErrServerDraining = errors.New("transport: server draining, session refused")
	// ErrMeterBusy reports a session refused because the meter already has
	// an active session — the reconnect race, where the server has not yet
	// reaped the old connection. Retryable: the stale session is reaped by
	// its read failing or by the idle timeout.
	ErrMeterBusy = errors.New("transport: meter already has an active session")
)

// Error codes carried in 'X' frames.
const (
	QErrBadRequest   byte = 1 // malformed or unsupported request
	QErrVersion      byte = 2 // query protocol version mismatch
	QErrBadRange     byte = 3 // t0 >= t1
	QErrUnknownMeter byte = 4
	QErrMixedLevels  byte = 5
	QErrLevelTooFine byte = 6
	QErrInternal     byte = 7 // server-side failure outside the caller's control
	// VerdictDegraded reports the server's storage is degraded and the
	// operation (an ingest session, typically) was refused. Unlike the
	// QErr* codes it can arrive on an ingest connection too — the one 'X'
	// frame the legacy ingest protocol emits, so a sensor learns *why* its
	// stream ended instead of seeing a bare hangup. In a sequenced session
	// it arrives per batch (id = refused seq) and the session survives.
	VerdictDegraded byte = 8
	// VerdictOverloaded reports admission control refusing the operation:
	// the shard's in-flight ingest budget is exhausted. Retryable, distinct
	// from VerdictDegraded — the server is healthy, just saturated.
	VerdictOverloaded byte = 9
	// VerdictDraining reports a graceful shutdown refusing new sessions
	// (ingest handshakes and query requests alike). Retryable.
	VerdictDraining byte = 10
	// VerdictBusy reports an ingest handshake refused because the meter
	// already has an active session — the reconnect race. Retryable.
	VerdictBusy byte = 11
)

// QueryError is a server-reported query failure: the typed error response
// decoded from an 'X' frame (client side) or the value a query handler
// returns to pick the response code (server side). It matches the sentinel
// errors above through errors.Is.
type QueryError struct {
	Code byte
	Msg  string
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("query error (code %d): %s", e.Code, e.Msg)
}

// Is maps codes onto the package's sentinel errors so callers write
// errors.Is(err, transport.ErrQueryUnknownMeter) instead of switching on
// code bytes.
func (e *QueryError) Is(target error) bool {
	switch target {
	case ErrQueryBadRange:
		return e.Code == QErrBadRange
	case ErrQueryUnknownMeter:
		return e.Code == QErrUnknownMeter
	case ErrQueryMixedLevels:
		return e.Code == QErrMixedLevels
	case ErrQueryLevelTooFine:
		return e.Code == QErrLevelTooFine
	case ErrQueryVersionMismatch:
		return e.Code == QErrVersion
	case ErrUnknownOp, ErrBadQueryFrame:
		return e.Code == QErrBadRequest
	case ErrServerDegraded:
		return e.Code == VerdictDegraded
	case ErrServerOverloaded:
		return e.Code == VerdictOverloaded
	case ErrServerDraining:
		return e.Code == VerdictDraining
	case ErrMeterBusy:
		return e.Code == VerdictBusy
	}
	return false
}

// Retryable reports whether err is one of the typed "nothing was written,
// try again later" refusals — degraded storage, overload admission control,
// graceful drain, or the reconnect busy race. Raw transport errors are NOT
// retryable through this predicate: after one, only a sequenced session
// (which learns the committed high-water mark on re-handshake) can retry
// without risking duplication.
func Retryable(err error) bool {
	return errors.Is(err, ErrServerDegraded) || errors.Is(err, ErrServerOverloaded) ||
		errors.Is(err, ErrServerDraining) || errors.Is(err, ErrMeterBusy)
}

// QueryErrorCode flattens any error into an 'X'-frame code and message: a
// *QueryError passes through, everything else is an internal failure.
func QueryErrorCode(err error) (byte, string) {
	var qe *QueryError
	if errors.As(err, &qe) {
		return qe.Code, qe.Msg
	}
	return QErrInternal, err.Error()
}

// QueryRequest is one decoded 'Q' frame.
type QueryRequest struct {
	// ID correlates the response; the server echoes it verbatim. Pipelining
	// clients choose unique IDs per in-flight request.
	ID uint64
	// Op is the aggregate to compute (OpCount … OpHistogram).
	Op byte
	// Fleet selects fleet-wide scope; MeterID is ignored when set.
	Fleet bool
	// MeterID is the queried meter for per-meter scope.
	MeterID uint64
	// T0, T1 bound the half-open query range [T0, T1).
	T0, T1 int64
}

// AppendQueryRequestFrame appends the complete 'Q' frame (header included)
// for req to buf and returns the extended slice — one buffer, one Write,
// zero allocations once buf has capacity.
func AppendQueryRequestFrame(buf []byte, req QueryRequest) []byte {
	var p [5 + queryRequestLen]byte
	p[0] = FrameQuery
	binary.BigEndian.PutUint32(p[1:5], queryRequestLen)
	p[5] = QueryProtocolVersion
	p[6] = req.Op
	if req.Fleet {
		p[7] = queryFlagFleet
	}
	binary.BigEndian.PutUint64(p[8:16], req.ID)
	binary.BigEndian.PutUint64(p[16:24], req.MeterID)
	binary.BigEndian.PutUint64(p[24:32], uint64(req.T0))
	binary.BigEndian.PutUint64(p[32:40], uint64(req.T1))
	return append(buf, p[:]...)
}

// DecodeQueryRequest decodes a 'Q' frame payload. On error, the returned
// request still carries the ID when the payload was long enough to hold one,
// so the server can address its error response to the right request.
func DecodeQueryRequest(payload []byte) (QueryRequest, error) {
	var req QueryRequest
	if len(payload) >= 11 {
		req.ID = binary.BigEndian.Uint64(payload[3:11])
	}
	if len(payload) != queryRequestLen {
		return req, fmt.Errorf("%w: request payload of %d bytes, want %d", ErrBadQueryFrame, len(payload), queryRequestLen)
	}
	if v := payload[0]; v != QueryProtocolVersion {
		return req, fmt.Errorf("%w: peer speaks v%d, server speaks v%d", ErrQueryVersionMismatch, v, QueryProtocolVersion)
	}
	req.Op = payload[1]
	if req.Op == 0 || req.Op >= opEnd {
		return req, fmt.Errorf("%w: %#x", ErrUnknownOp, req.Op)
	}
	flags := payload[2]
	if flags&^queryFlagFleet != 0 {
		return req, fmt.Errorf("%w: unknown flag bits %#x", ErrBadQueryFrame, flags&^queryFlagFleet)
	}
	req.Fleet = flags&queryFlagFleet != 0
	req.MeterID = binary.BigEndian.Uint64(payload[11:19])
	req.T0 = int64(binary.BigEndian.Uint64(payload[19:27]))
	req.T1 = int64(binary.BigEndian.Uint64(payload[27:35]))
	return req, nil
}

// QueryResult is one decoded 'R' frame: the union of every op's result
// fields, with only the fields of its Op populated. The struct (including
// the Counts backing array) is reused across decodes, which is what makes
// the client's steady-state response path allocation-free.
type QueryResult struct {
	ID uint64
	Op byte
	// Count is set for every op except OpHistogram (whose mass is the bin
	// total).
	Count uint64
	// Value carries OpMean's mean and OpMin/OpMax's extreme; meaningful only
	// when Count > 0 (except Mean, which is NaN for an empty range).
	Value float64
	// Sum is set for OpSum and OpAggregate.
	Sum float64
	// Min and Max are set for OpAggregate.
	Min, Max float64
	// Level and Counts are set for OpHistogram; Counts has 1<<Level entries,
	// or none when the range covers no points.
	Level  int
	Counts []uint64
}

// AppendQueryResultFrame appends the complete 'R' frame for res to buf.
// res.Op must be a valid decoded op; anything else is a programming error
// reported loudly rather than put on the wire.
func AppendQueryResultFrame(buf []byte, res *QueryResult) ([]byte, error) {
	start := len(buf)
	var hdr [14]byte
	hdr[0] = FrameResult
	binary.BigEndian.PutUint64(hdr[5:13], res.ID)
	hdr[13] = res.Op
	buf = append(buf, hdr[:]...)
	switch res.Op {
	case OpCount:
		buf = binary.BigEndian.AppendUint64(buf, res.Count)
	case OpSum:
		buf = binary.BigEndian.AppendUint64(buf, res.Count)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(res.Sum))
	case OpMean, OpMin, OpMax:
		buf = binary.BigEndian.AppendUint64(buf, res.Count)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(res.Value))
	case OpAggregate:
		buf = binary.BigEndian.AppendUint64(buf, res.Count)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(res.Sum))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(res.Min))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(res.Max))
	case OpHistogram:
		if res.Level < 0 || res.Level > maxWireHistLevel {
			return buf[:start], fmt.Errorf("transport: histogram level %d not encodable", res.Level)
		}
		if n := len(res.Counts); n != 0 && n != 1<<res.Level {
			return buf[:start], fmt.Errorf("transport: histogram with %d bins at level %d", n, res.Level)
		}
		buf = append(buf, byte(res.Level))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(res.Counts)))
		for _, c := range res.Counts {
			buf = binary.BigEndian.AppendUint64(buf, c)
		}
	default:
		return buf[:start], fmt.Errorf("%w: %#x", ErrUnknownOp, res.Op)
	}
	binary.BigEndian.PutUint32(buf[start+1:start+5], uint32(len(buf)-start-5))
	return buf, nil
}

// AppendQueryErrorFrame appends the complete 'X' frame reporting code/msg
// for the request identified by id.
func AppendQueryErrorFrame(buf []byte, id uint64, code byte, msg string) []byte {
	var hdr [14]byte
	hdr[0] = FrameQueryError
	binary.BigEndian.PutUint32(hdr[1:5], uint32(9+len(msg)))
	binary.BigEndian.PutUint64(hdr[5:13], id)
	hdr[13] = code
	buf = append(buf, hdr[:]...)
	return append(buf, msg...)
}

// DecodeQueryResponse decodes one response frame ('R' or 'X') into res,
// reusing res.Counts' capacity. An 'X' frame decodes into a *QueryError
// return value (res.ID still carries the correlator); any other frame type
// is ErrBadQueryFrame.
func DecodeQueryResponse(typ byte, payload []byte, res *QueryResult) error {
	if len(payload) < 9 {
		return fmt.Errorf("%w: response payload of %d bytes", ErrBadQueryFrame, len(payload))
	}
	res.ID = binary.BigEndian.Uint64(payload[0:8])
	res.Count, res.Value, res.Sum, res.Min, res.Max = 0, 0, 0, 0, 0
	res.Level = 0
	res.Counts = res.Counts[:0]
	if typ == FrameQueryError {
		return &QueryError{Code: payload[8], Msg: string(payload[9:])}
	}
	if typ != FrameResult {
		return fmt.Errorf("%w: frame type %#x is not a query response", ErrBadQueryFrame, typ)
	}
	res.Op = payload[8]
	body := payload[9:]
	need := func(n int) error {
		if len(body) != n {
			return fmt.Errorf("%w: op %#x body of %d bytes, want %d", ErrBadQueryFrame, res.Op, len(body), n)
		}
		return nil
	}
	switch res.Op {
	case OpCount:
		if err := need(8); err != nil {
			return err
		}
		res.Count = binary.BigEndian.Uint64(body[0:8])
	case OpSum:
		if err := need(16); err != nil {
			return err
		}
		res.Count = binary.BigEndian.Uint64(body[0:8])
		res.Sum = math.Float64frombits(binary.BigEndian.Uint64(body[8:16]))
	case OpMean, OpMin, OpMax:
		if err := need(16); err != nil {
			return err
		}
		res.Count = binary.BigEndian.Uint64(body[0:8])
		res.Value = math.Float64frombits(binary.BigEndian.Uint64(body[8:16]))
	case OpAggregate:
		if err := need(32); err != nil {
			return err
		}
		res.Count = binary.BigEndian.Uint64(body[0:8])
		res.Sum = math.Float64frombits(binary.BigEndian.Uint64(body[8:16]))
		res.Min = math.Float64frombits(binary.BigEndian.Uint64(body[16:24]))
		res.Max = math.Float64frombits(binary.BigEndian.Uint64(body[24:32]))
	case OpHistogram:
		if len(body) < 5 {
			return fmt.Errorf("%w: truncated histogram body", ErrBadQueryFrame)
		}
		level := int(body[0])
		bins := int(binary.BigEndian.Uint32(body[1:5]))
		if level > maxWireHistLevel || (bins != 0 && bins != 1<<level) {
			return fmt.Errorf("%w: histogram claims %d bins at level %d", ErrBadQueryFrame, bins, level)
		}
		if len(body) != 5+8*bins {
			return fmt.Errorf("%w: histogram body of %d bytes, want %d", ErrBadQueryFrame, len(body), 5+8*bins)
		}
		res.Level = level
		if cap(res.Counts) < bins {
			res.Counts = make([]uint64, bins)
		}
		res.Counts = res.Counts[:bins]
		for i := range res.Counts {
			res.Counts[i] = binary.BigEndian.Uint64(body[5+8*i:])
		}
	default:
		return fmt.Errorf("%w: %#x in response", ErrUnknownOp, res.Op)
	}
	return nil
}

// FrameReader incrementally reads raw frames with a reusable payload buffer —
// the shared low-level loop under both the ingest Decoder and the query
// session paths (server request loop, client response loop). The returned
// payload aliases the reader's scratch buffer and is valid only until the
// next call.
type FrameReader struct {
	r io.Reader
	// hdr is a field so the slice passed to Read does not force a heap
	// allocation per frame.
	hdr     [5]byte
	payload []byte
	// fm, when set, counts every successfully decoded frame by type
	// (SetMetrics); nil costs one branch.
	fm *FrameMetrics
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads one frame. It returns io.EOF only for a clean stream end
// between frames; a torn header or payload surfaces as io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err // io.EOF for clean end, ErrUnexpectedEOF for torn header
	}
	n := binary.BigEndian.Uint32(fr.hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes (limit %d)", ErrFrameTooLarge, n, maxFrame)
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("transport: truncated frame payload: %w", err)
	}
	fr.fm.Observe(fr.hdr[0], int(n))
	return fr.hdr[0], payload, nil
}
