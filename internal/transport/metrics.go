package transport

import (
	"symmeter/internal/metrics"
)

// trackedFrames is the protocol alphabet FrameMetrics breaks out per type;
// anything else (garbage, future revisions) lands in the "other" slot so the
// totals still add up.
var trackedFrames = []byte{
	FrameHandshake, FrameTable, FrameSymbol, FrameEnd,
	FrameSeqTable, FrameSeqSymbol, FrameAck,
	FrameQuery, FrameResult, FrameQueryError,
}

// FrameMetrics counts frames and on-wire bytes by frame type for one
// direction (in or out). Observe is two atomic adds through a fixed lookup
// table — zero-alloc and lock-free, safe inside the decode loop whose
// steady state is pinned allocation-free.
type FrameMetrics struct {
	frames [256]*metrics.Counter
	bytes  [256]*metrics.Counter
	other  [2]*metrics.Counter // frames, bytes for untracked types
}

// NewFrameMetrics registers the per-type frame/byte counter families for one
// direction ("in" for client→server, "out" for server→client) and returns
// the recording handle.
func NewFrameMetrics(reg *metrics.Registry, direction string) *FrameMetrics {
	fm := &FrameMetrics{}
	for _, typ := range trackedFrames {
		lbls := []metrics.Label{
			{Key: "type", Value: string(typ)},
			{Key: "dir", Value: direction},
		}
		fm.frames[typ] = reg.Counter("symmeter_transport_frames_total",
			"Protocol frames by frame type and direction.", lbls...)
		fm.bytes[typ] = reg.Counter("symmeter_transport_frame_bytes_total",
			"On-wire frame bytes (header + payload) by frame type and direction.", lbls...)
	}
	olbls := []metrics.Label{
		{Key: "type", Value: "other"},
		{Key: "dir", Value: direction},
	}
	fm.other[0] = reg.Counter("symmeter_transport_frames_total",
		"Protocol frames by frame type and direction.", olbls...)
	fm.other[1] = reg.Counter("symmeter_transport_frame_bytes_total",
		"On-wire frame bytes (header + payload) by frame type and direction.", olbls...)
	return fm
}

// Observe counts one frame of the given type whose payload is payloadLen
// bytes (the 5-byte header is added here). Nil receivers are no-ops so
// uninstrumented readers cost a single branch.
func (fm *FrameMetrics) Observe(typ byte, payloadLen int) {
	if fm == nil {
		return
	}
	fc, bc := fm.frames[typ], fm.bytes[typ]
	if fc == nil {
		fc, bc = fm.other[0], fm.other[1]
	}
	fc.Inc()
	bc.Add(int64(payloadLen) + 5)
}

// SetMetrics installs a per-type frame observer on the reader; every
// successfully decoded frame is counted. Nil disables.
func (fr *FrameReader) SetMetrics(fm *FrameMetrics) { fr.fm = fm }

// SetFrameMetrics installs a per-type frame observer on the decoder's
// underlying reader.
func (d *Decoder) SetFrameMetrics(fm *FrameMetrics) { d.fr.SetMetrics(fm) }
