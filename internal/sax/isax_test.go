package sax

import "testing"

func TestISAXDemote(t *testing.T) {
	s := ISAXSymbol{Value: 5, Cardinality: 8} // binary 101
	d, err := s.Demote(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != 1 || d.Cardinality != 2 {
		t.Fatalf("Demote = %+v", d)
	}
	d4, _ := s.Demote(4)
	if d4.Value != 2 { // 10
		t.Fatalf("Demote(4) = %+v", d4)
	}
	if _, err := s.Demote(16); err == nil {
		t.Fatal("cannot demote upward")
	}
	if _, err := s.Demote(3); err == nil {
		t.Fatal("non-power-of-two cardinality")
	}
	if s.Bits() != 3 {
		t.Fatalf("Bits = %d", s.Bits())
	}
}

func TestISAXMatches(t *testing.T) {
	fine := ISAXSymbol{Value: 5, Cardinality: 8}
	coarse := ISAXSymbol{Value: 1, Cardinality: 2}
	if !fine.Matches(coarse) || !coarse.Matches(fine) {
		t.Fatal("101 at card 8 should match 1 at card 2")
	}
	other := ISAXSymbol{Value: 0, Cardinality: 2}
	if fine.Matches(other) {
		t.Fatal("101 should not match 0")
	}
	same := ISAXSymbol{Value: 5, Cardinality: 8}
	if !fine.Matches(same) {
		t.Fatal("identical symbols must match")
	}
}

func TestISAXWordOperations(t *testing.T) {
	w := ToISAX(Word{Symbols: []int{5, 2, 7}, K: 8})
	if len(w.Symbols) != 3 || w.Symbols[0].Cardinality != 8 {
		t.Fatalf("ToISAX = %+v", w)
	}
	if w.String() != "5^8 2^8 7^8" {
		t.Fatalf("String = %q", w.String())
	}
	demoted, err := w.Demote(2)
	if err != nil {
		t.Fatal(err)
	}
	if demoted.String() != "1^2 0^2 1^2" {
		t.Fatalf("Demote = %q", demoted.String())
	}
	if !w.Matches(demoted) {
		t.Fatal("a word must match its own demotion")
	}
	other := ToISAX(Word{Symbols: []int{5, 2}, K: 8})
	if w.Matches(other) {
		t.Fatal("length mismatch must not match")
	}
	if _, err := w.Demote(16); err == nil {
		t.Fatal("demote upward must error")
	}
}

func TestISAXMixedCardinalityMatch(t *testing.T) {
	// The iSAX use case: compare words encoded at different resolutions.
	a := ISAXWord{Symbols: []ISAXSymbol{
		{Value: 5, Cardinality: 8}, {Value: 0, Cardinality: 2},
	}}
	b := ISAXWord{Symbols: []ISAXSymbol{
		{Value: 2, Cardinality: 4}, {Value: 1, Cardinality: 4},
	}}
	// 5^8 = 101 vs 2^4 = 10: demote 101 -> 10: match.
	// 0^2 = 0 vs 1^4 = 01: demote 01 -> 0: match.
	if !a.Matches(b) {
		t.Fatal("mixed-cardinality words should match")
	}
}
