// Package sax implements SAX (Lin et al., DMKD 2007) and the variable-
// cardinality symbols of iSAX (Shieh & Keogh, KDD 2008) — the prior work
// the paper positions itself against (§2.2). SAX z-normalises each series,
// reduces dimensionality with PAA, and quantises with breakpoints that make
// symbols equiprobable under a standard normal distribution.
//
// The package exists for two reasons: as an ablation baseline, and to
// demonstrate the paper's Fig. 3 argument in code — per-series
// normalisation erases the consumption-level differences that distinguish
// big consumers from small ones, which is exactly the signal the paper's
// per-house quantile tables preserve.
package sax

import (
	"errors"
	"fmt"
	"math"

	"symmeter/internal/stats"
)

// Breakpoints returns the k-1 SAX breakpoints: the (i/k)-quantiles of the
// standard normal, "taken at pre-defined values from a table such that they
// divide equally the samples" — computed here rather than tabulated.
func Breakpoints(k int) ([]float64, error) {
	if k < 2 {
		return nil, errors.New("sax: alphabet size must be >= 2")
	}
	bps := make([]float64, k-1)
	for i := 1; i < k; i++ {
		bps[i-1] = stats.NormInv(float64(i) / float64(k))
	}
	return bps, nil
}

// ZNormalize returns (x - mean) / std per element. Constant series (std
// below epsilon) normalise to all zeros, the standard SAX convention.
func ZNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	m := stats.Mean(xs)
	s := stats.StdDev(xs)
	if s < 1e-12 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / s
	}
	return out
}

// PAA reduces xs to `segments` piecewise aggregate means. When len(xs) is
// not divisible by segments, frame boundaries distribute points as evenly
// as possible (the fractional-frame variant).
func PAA(xs []float64, segments int) ([]float64, error) {
	if segments <= 0 {
		return nil, errors.New("sax: segments must be positive")
	}
	n := len(xs)
	if n == 0 {
		return nil, errors.New("sax: empty input")
	}
	if segments > n {
		return nil, fmt.Errorf("sax: %d segments exceed %d points", segments, n)
	}
	out := make([]float64, segments)
	for s := 0; s < segments; s++ {
		lo := s * n / segments
		hi := (s + 1) * n / segments
		var sum float64
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
		out[s] = sum / float64(hi-lo)
	}
	return out, nil
}

// Word is a SAX word: symbol indices in [0, K) per PAA segment.
type Word struct {
	Symbols []int
	K       int
}

// String renders the word with letters 'a', 'b', ... like the SAX papers.
func (w Word) String() string {
	out := make([]byte, len(w.Symbols))
	for i, s := range w.Symbols {
		if s < 26 {
			out[i] = byte('a' + s)
		} else {
			out[i] = '?'
		}
	}
	return string(out)
}

// Encoder converts series to SAX words with fixed parameters.
type Encoder struct {
	// W is the word length (number of PAA segments).
	W int
	// K is the alphabet size.
	K int

	breakpoints []float64
}

// NewEncoder validates parameters and precomputes breakpoints.
func NewEncoder(w, k int) (*Encoder, error) {
	if w <= 0 {
		return nil, errors.New("sax: word length must be positive")
	}
	bps, err := Breakpoints(k)
	if err != nil {
		return nil, err
	}
	return &Encoder{W: w, K: k, breakpoints: bps}, nil
}

// Encode z-normalises, PAA-reduces and quantises a series.
func (e *Encoder) Encode(xs []float64) (Word, error) {
	paa, err := PAA(ZNormalize(xs), e.W)
	if err != nil {
		return Word{}, err
	}
	return e.quantise(paa), nil
}

// EncodeWithoutNormalization skips the z-normalisation step — used by the
// Fig. 3 demonstration to isolate exactly what normalisation destroys.
func (e *Encoder) EncodeWithoutNormalization(xs []float64) (Word, error) {
	paa, err := PAA(xs, e.W)
	if err != nil {
		return Word{}, err
	}
	return e.quantise(paa), nil
}

func (e *Encoder) quantise(paa []float64) Word {
	symbols := make([]int, len(paa))
	for i, v := range paa {
		symbols[i] = e.symbol(v)
	}
	return Word{Symbols: symbols, K: e.K}
}

// symbol maps a normalised value to its breakpoint bin.
func (e *Encoder) symbol(v float64) int {
	lo, hi := 0, len(e.breakpoints)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > e.breakpoints[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MinDist is the SAX lower-bounding distance between two equal-length words
// encoded with this encoder's parameters, for original series length n.
// It lower-bounds the Euclidean distance of the z-normalised series.
func (e *Encoder) MinDist(a, b Word, n int) (float64, error) {
	if len(a.Symbols) != len(b.Symbols) {
		return 0, errors.New("sax: word lengths differ")
	}
	if a.K != e.K || b.K != e.K {
		return 0, errors.New("sax: words use a different alphabet")
	}
	var sum float64
	for i := range a.Symbols {
		d := e.cellDist(a.Symbols[i], b.Symbols[i])
		sum += d * d
	}
	return math.Sqrt(float64(n)/float64(e.W)) * math.Sqrt(sum), nil
}

// cellDist is the breakpoint-gap distance between two symbols; adjacent or
// equal symbols are distance 0 (the SAX dist table).
func (e *Encoder) cellDist(r, c int) float64 {
	if abs(r-c) <= 1 {
		return 0
	}
	if r > c {
		r, c = c, r
	}
	return e.breakpoints[c-1] - e.breakpoints[r]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
