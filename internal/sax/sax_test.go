package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"symmeter/internal/stats"
)

func TestBreakpointsKnownTable(t *testing.T) {
	// The canonical SAX table for k=4: {-0.67, 0, 0.67}.
	bps, err := Breakpoints(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-0.6744897501960817, 0, 0.6744897501960817}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-9 {
			t.Fatalf("Breakpoints(4) = %v", bps)
		}
	}
	if _, err := Breakpoints(1); err == nil {
		t.Fatal("k=1 should error")
	}
}

func TestBreakpointsEquiprobable(t *testing.T) {
	// Symbols should be equally likely under standard normal data.
	e, err := NewEncoder(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[e.symbol(rng.NormFloat64())]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.125) > 0.01 {
			t.Fatalf("symbol %d frequency %v, want ~0.125", s, frac)
		}
	}
}

func TestZNormalize(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	z := ZNormalize(xs)
	if math.Abs(stats.Mean(z)) > 1e-12 {
		t.Fatalf("mean = %v", stats.Mean(z))
	}
	if math.Abs(stats.StdDev(z)-1) > 1e-12 {
		t.Fatalf("std = %v", stats.StdDev(z))
	}
	// Constant series normalises to zeros.
	for _, v := range ZNormalize([]float64{5, 5, 5}) {
		if v != 0 {
			t.Fatal("constant series should become zeros")
		}
	}
	if len(ZNormalize(nil)) != 0 {
		t.Fatal("empty input")
	}
}

func TestPAA(t *testing.T) {
	got, err := PAA([]float64{1, 2, 3, 4, 5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 5 {
		t.Fatalf("PAA = %v", got)
	}
	// Uneven division: 5 points, 2 segments → frames of 2 and 3.
	got, err = PAA([]float64{1, 1, 4, 4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 4 {
		t.Fatalf("uneven PAA = %v", got)
	}
	if _, err := PAA(nil, 2); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := PAA([]float64{1}, 0); err == nil {
		t.Fatal("0 segments should error")
	}
	if _, err := PAA([]float64{1}, 5); err == nil {
		t.Fatal("more segments than points should error")
	}
}

func TestEncodeWordAndString(t *testing.T) {
	e, err := NewEncoder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A rising ramp must produce non-decreasing symbols spanning the range.
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i)
	}
	w, err := e.Encode(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w.Symbols); i++ {
		if w.Symbols[i] < w.Symbols[i-1] {
			t.Fatalf("ramp gave non-monotone word %v", w)
		}
	}
	if w.Symbols[0] != 0 || w.Symbols[3] != 3 {
		t.Fatalf("ramp should span the alphabet: %v", w)
	}
	if w.String() != "abcd" {
		t.Fatalf("String = %q, want abcd", w.String())
	}
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, 4); err == nil {
		t.Fatal("w=0 should error")
	}
	if _, err := NewEncoder(4, 1); err == nil {
		t.Fatal("k=1 should error")
	}
}

// TestFig3NormalizationDestroysLevel demonstrates the paper's Fig. 3: a big
// consumer and a small consumer with the same *shape* get identical SAX
// words after z-normalisation, while non-normalised quantisation keeps them
// apart.
func TestFig3NormalizationDestroysLevel(t *testing.T) {
	shape := []float64{1, 1, 5, 5, 1, 1, 3, 3}
	big := make([]float64, len(shape))
	small := make([]float64, len(shape))
	for i, v := range shape {
		big[i] = v * 100  // consumer A: 100–500 W
		small[i] = v * 10 // consumer C: 10–50 W
	}
	e, err := NewEncoder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wBig, _ := e.Encode(big)
	wSmall, _ := e.Encode(small)
	if wBig.String() != wSmall.String() {
		t.Fatalf("z-normalised words differ: %v vs %v (normalisation should erase level)",
			wBig, wSmall)
	}
	// Without normalisation (quantising absolute watts against N(0,1)
	// breakpoints makes no sense, so scale to a shared range first), the
	// words must differ. Use a shared max-scale like the paper's uniform.
	sharedScale := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, v := range xs {
			out[i] = v/250 - 1 // map [0,500] roughly onto [-1,1]
		}
		return out
	}
	uBig, _ := e.EncodeWithoutNormalization(sharedScale(big))
	uSmall, _ := e.EncodeWithoutNormalization(sharedScale(small))
	if uBig.String() == uSmall.String() {
		t.Fatalf("shared-scale words identical: %v — level information lost", uBig)
	}
}

func TestMinDistLowerBoundsEuclidean(t *testing.T) {
	// Property: MinDist(SAX(a), SAX(b)) <= Euclid(znorm(a), znorm(b)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()*10 + 50
			b[i] = rng.NormFloat64()*25 + 30
		}
		e, err := NewEncoder(8, 8)
		if err != nil {
			return false
		}
		wa, err1 := e.Encode(a)
		wb, err2 := e.Encode(b)
		if err1 != nil || err2 != nil {
			return false
		}
		md, err := e.MinDist(wa, wb, n)
		if err != nil {
			return false
		}
		za, zb := ZNormalize(a), ZNormalize(b)
		var euclid float64
		for i := range za {
			d := za[i] - zb[i]
			euclid += d * d
		}
		euclid = math.Sqrt(euclid)
		return md <= euclid+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinDistErrorsAndIdentity(t *testing.T) {
	e, _ := NewEncoder(4, 4)
	w1 := Word{Symbols: []int{0, 1, 2, 3}, K: 4}
	w2 := Word{Symbols: []int{0, 1}, K: 4}
	if _, err := e.MinDist(w1, w2, 16); err == nil {
		t.Fatal("length mismatch should error")
	}
	w3 := Word{Symbols: []int{0, 1, 2, 3}, K: 8}
	if _, err := e.MinDist(w1, w3, 16); err == nil {
		t.Fatal("alphabet mismatch should error")
	}
	d, err := e.MinDist(w1, w1, 16)
	if err != nil || d != 0 {
		t.Fatalf("self distance = %v, %v", d, err)
	}
	// Adjacent symbols have distance 0 (SAX dist table).
	wAdj := Word{Symbols: []int{1, 2, 3, 3}, K: 4}
	d, _ = e.MinDist(w1, wAdj, 16)
	if d != 0 {
		t.Fatalf("adjacent-symbol distance = %v, want 0", d)
	}
}

func TestWordStringLargeAlphabet(t *testing.T) {
	w := Word{Symbols: []int{30}, K: 32}
	if w.String() != "?" {
		t.Fatalf("String = %q", w.String())
	}
}
