package sax

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// iSAX (Shieh & Keogh, 2008) extends SAX words with per-symbol cardinality:
// a symbol at cardinality 2^b keeps only the top b bits of its bin index,
// so words can be compared across resolutions — the same prefix-refinement
// idea the paper's variable-length binary alphabet generalises to
// data-driven separators.

// ISAXSymbol is one iSAX symbol: a bin index at some power-of-two
// cardinality.
type ISAXSymbol struct {
	// Value is the bin index in [0, Cardinality).
	Value int
	// Cardinality is a power of two >= 2.
	Cardinality int
}

// Bits returns log2(Cardinality).
func (s ISAXSymbol) Bits() int { return bits.TrailingZeros(uint(s.Cardinality)) }

// String renders "value^cardinality" like the iSAX literature.
func (s ISAXSymbol) String() string { return fmt.Sprintf("%d^%d", s.Value, s.Cardinality) }

// Demote reduces the symbol to a lower cardinality by dropping low bits.
func (s ISAXSymbol) Demote(toCardinality int) (ISAXSymbol, error) {
	if toCardinality < 2 || bits.OnesCount(uint(toCardinality)) != 1 {
		return ISAXSymbol{}, errors.New("sax: cardinality must be a power of two >= 2")
	}
	if toCardinality > s.Cardinality {
		return ISAXSymbol{}, fmt.Errorf("sax: cannot demote %v upward to %d", s, toCardinality)
	}
	shift := uint(s.Bits() - bits.TrailingZeros(uint(toCardinality)))
	return ISAXSymbol{Value: s.Value >> shift, Cardinality: toCardinality}, nil
}

// Matches reports whether the two symbols are compatible: equal after
// demoting the finer one to the coarser cardinality.
func (s ISAXSymbol) Matches(o ISAXSymbol) bool {
	if s.Cardinality > o.Cardinality {
		s, o = o, s
	}
	demoted, err := o.Demote(s.Cardinality)
	if err != nil {
		return false
	}
	return demoted.Value == s.Value
}

// ISAXWord is an iSAX word: one symbol per PAA segment, possibly at mixed
// cardinalities.
type ISAXWord struct {
	Symbols []ISAXSymbol
}

// String joins the symbols with spaces.
func (w ISAXWord) String() string {
	parts := make([]string, len(w.Symbols))
	for i, s := range w.Symbols {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// ToISAX converts a plain SAX word (cardinality K for every symbol).
func ToISAX(w Word) ISAXWord {
	out := ISAXWord{Symbols: make([]ISAXSymbol, len(w.Symbols))}
	for i, s := range w.Symbols {
		out.Symbols[i] = ISAXSymbol{Value: s, Cardinality: w.K}
	}
	return out
}

// Matches reports whether two words are compatible segment-by-segment —
// the iSAX containment test used for indexing.
func (w ISAXWord) Matches(o ISAXWord) bool {
	if len(w.Symbols) != len(o.Symbols) {
		return false
	}
	for i := range w.Symbols {
		if !w.Symbols[i].Matches(o.Symbols[i]) {
			return false
		}
	}
	return true
}

// Demote reduces every symbol to the given cardinality.
func (w ISAXWord) Demote(toCardinality int) (ISAXWord, error) {
	out := ISAXWord{Symbols: make([]ISAXSymbol, len(w.Symbols))}
	for i, s := range w.Symbols {
		d, err := s.Demote(toCardinality)
		if err != nil {
			return ISAXWord{}, err
		}
		out.Symbols[i] = d
	}
	return out, nil
}
