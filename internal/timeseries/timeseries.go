// Package timeseries implements the time-series model of Definition 1 in
// Wijaya et al. (EDBT 2013): a sequence of (timestamp, value) measurements
// ordered by time, together with the slicing, resampling and gap-handling
// operations the smart-meter pipeline needs.
//
// Timestamps are Unix seconds (int64). Smart-meter data in the paper is
// sampled at 1 Hz, so second resolution is exact, compact, and avoids
// time.Time allocation on hundreds of millions of points.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SecondsPerDay is the number of seconds in one day, used throughout the
// pipeline for day-based slicing (the paper splits houses "by days").
const SecondsPerDay = 86400

// Point is a single measurement: a timestamp (Unix seconds) and a value
// (power in watts for smart meters).
type Point struct {
	T int64
	V float64
}

// Series is a time series S = {s1, s2, ...} per Definition 1: points ordered
// by non-decreasing timestamp.
type Series struct {
	// Name identifies the series, e.g. "house1" or "house1/fridge".
	Name string
	// Points holds the measurements in timestamp order.
	Points []Point
}

// ErrUnordered reports that points violate the Definition 1 ordering.
var ErrUnordered = errors.New("timeseries: points not in timestamp order")

// New returns a Series over the given points, validating the Definition 1
// ordering requirement (tj <= ti whenever j <= i).
func New(name string, points []Point) (*Series, error) {
	for i := 1; i < len(points); i++ {
		if points[i].T < points[i-1].T {
			return nil, fmt.Errorf("%w: index %d has t=%d after t=%d",
				ErrUnordered, i, points[i].T, points[i-1].T)
		}
	}
	return &Series{Name: name, Points: points}, nil
}

// MustNew is New but panics on invalid input. Intended for tests and
// literals whose ordering is statically evident.
func MustNew(name string, points []Point) *Series {
	s, err := New(name, points)
	if err != nil {
		panic(err)
	}
	return s
}

// FromValues builds a regularly sampled series starting at start with the
// given period (seconds) between consecutive values.
func FromValues(name string, start, period int64, values []float64) *Series {
	pts := make([]Point, len(values))
	for i, v := range values {
		pts[i] = Point{T: start + int64(i)*period, V: v}
	}
	return &Series{Name: name, Points: pts}
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Empty reports whether the series has no points.
func (s *Series) Empty() bool { return len(s.Points) == 0 }

// Start returns the first timestamp. It panics on an empty series.
func (s *Series) Start() int64 { return s.Points[0].T }

// End returns the last timestamp. It panics on an empty series.
func (s *Series) End() int64 { return s.Points[len(s.Points)-1].T }

// Values returns the measurement values in order. The slice is freshly
// allocated; mutating it does not affect the series.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	pts := make([]Point, len(s.Points))
	copy(pts, s.Points)
	return &Series{Name: s.Name, Points: pts}
}

// Slice returns the sub-series with timestamps in [from, to). The returned
// series shares backing storage with s.
func (s *Series) Slice(from, to int64) *Series {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= to })
	return &Series{Name: s.Name, Points: s.Points[lo:hi]}
}

// At returns the value at exactly timestamp t and whether it exists.
func (s *Series) At(t int64) (float64, bool) {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= t })
	if i < len(s.Points) && s.Points[i].T == t {
		return s.Points[i].V, true
	}
	return 0, false
}

// Day holds one calendar day of data cut from a longer series.
type Day struct {
	// Index is the day number counting from the first day of the series.
	Index int
	// Start is the timestamp of the day boundary (midnight).
	Start int64
	// Series is the slice of the parent series within [Start, Start+86400).
	Series *Series
	// Coverage is the number of seconds of the day for which at least one
	// measurement exists (for the paper's "enough data" threshold).
	Coverage int64
}

// Days splits the series into calendar days aligned to multiples of 86400
// seconds from epoch. Empty days inside the span are included with an empty
// sub-series so callers can observe gaps.
func (s *Series) Days() []Day {
	if s.Empty() {
		return nil
	}
	first := s.Start() - mod(s.Start(), SecondsPerDay)
	last := s.End()
	var days []Day
	for idx, t := 0, first; t <= last; idx, t = idx+1, t+SecondsPerDay {
		sub := s.Slice(t, t+SecondsPerDay)
		days = append(days, Day{
			Index:    idx,
			Start:    t,
			Series:   sub,
			Coverage: coverage(sub.Points),
		})
	}
	return days
}

// mod is the non-negative remainder of a/b for b > 0.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// coverage counts distinct seconds with data, assuming second-resolution
// timestamps (duplicates at the same second count once).
func coverage(pts []Point) int64 {
	var n int64
	for i, p := range pts {
		if i == 0 || p.T != pts[i-1].T {
			n++
		}
	}
	return n
}

// HasEnoughData reports whether the day meets the paper's threshold of at
// least `threshold` seconds of coverage (the paper uses 20 h = 72000 s for
// 1 Hz data). For coarser sampling, callers should scale the threshold by
// the sampling period.
func (d Day) HasEnoughData(threshold int64) bool {
	return d.Coverage >= threshold
}

// Resample aggregates the series into fixed windows of `window` seconds,
// aligned to the series start, averaging the values in each window. Windows
// without any data are skipped (gaps propagate). The resulting point carries
// the timestamp of the *end* of its window, matching Definition 2 where
// t̄_i = t_{i·n}.
func (s *Series) Resample(window int64) *Series {
	if window <= 0 || s.Empty() {
		return &Series{Name: s.Name}
	}
	var out []Point
	start := s.Start()
	var sum float64
	var count int
	cur := start
	flush := func(winStart int64) {
		if count > 0 {
			out = append(out, Point{T: winStart + window, V: sum / float64(count)})
		}
		sum, count = 0, 0
	}
	for _, p := range s.Points {
		winStart := start + ((p.T-start)/window)*window
		if winStart != cur {
			flush(cur)
			cur = winStart
		}
		sum += p.V
		count++
	}
	flush(cur)
	return &Series{Name: s.Name + fmt.Sprintf("@%ds", window), Points: out}
}

// Sum returns the pointwise sum of the given series, matched by timestamp.
// Timestamps present in only some of the inputs contribute the values that
// exist (missing channels are treated as 0), mirroring how the paper sums
// the two REDD mains into total house consumption even around gaps.
func Sum(name string, series ...*Series) *Series {
	type cursor struct {
		pts []Point
		i   int
	}
	cs := make([]cursor, 0, len(series))
	for _, s := range series {
		if s != nil && !s.Empty() {
			cs = append(cs, cursor{pts: s.Points})
		}
	}
	var out []Point
	for {
		// Find the minimum current timestamp across cursors.
		t := int64(math.MaxInt64)
		alive := false
		for _, c := range cs {
			if c.i < len(c.pts) && c.pts[c.i].T < t {
				t = c.pts[c.i].T
				alive = true
			}
		}
		if !alive {
			break
		}
		var v float64
		for j := range cs {
			for cs[j].i < len(cs[j].pts) && cs[j].pts[cs[j].i].T == t {
				v += cs[j].pts[cs[j].i].V
				cs[j].i++
			}
		}
		out = append(out, Point{T: t, V: v})
	}
	return &Series{Name: name, Points: out}
}

// Gaps returns the half-open intervals [from, to) longer than minGap seconds
// during which the series has no data.
type Gap struct {
	From, To int64
}

// Gaps scans for runs of missing samples. period is the nominal sampling
// period of the series (1 for 1 Hz); any inter-point spacing strictly larger
// than period and at least minGap long is reported.
func (s *Series) Gaps(period, minGap int64) []Gap {
	var gaps []Gap
	for i := 1; i < len(s.Points); i++ {
		d := s.Points[i].T - s.Points[i-1].T
		if d > period && d >= minGap {
			gaps = append(gaps, Gap{From: s.Points[i-1].T + period, To: s.Points[i].T})
		}
	}
	return gaps
}

// Stats summarises a series for quick inspection.
type Stats struct {
	Count    int
	Min, Max float64
	Mean     float64
}

// Summary computes basic statistics over the values.
func (s *Series) Summary() Stats {
	st := Stats{Count: len(s.Points)}
	if st.Count == 0 {
		return st
	}
	st.Min, st.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, p := range s.Points {
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
		sum += p.V
	}
	st.Mean = sum / float64(st.Count)
	return st
}
