package timeseries

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsUnordered(t *testing.T) {
	_, err := New("x", []Point{{T: 2, V: 1}, {T: 1, V: 2}})
	if err == nil {
		t.Fatal("expected error for unordered points")
	}
	if !strings.Contains(err.Error(), "not in timestamp order") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestNewAcceptsDuplicatesAndOrdered(t *testing.T) {
	s, err := New("x", []Point{{T: 1}, {T: 1}, {T: 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestFromValues(t *testing.T) {
	s := FromValues("a", 100, 15, []float64{1, 2, 3})
	want := []Point{{100, 1}, {115, 2}, {130, 3}}
	if !reflect.DeepEqual(s.Points, want) {
		t.Fatalf("Points = %v, want %v", s.Points, want)
	}
}

func TestSliceHalfOpen(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{0, 1, 2, 3, 4})
	sub := s.Slice(1, 4)
	if got := sub.Values(); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Slice(1,4) = %v", got)
	}
	if sub2 := s.Slice(10, 20); !sub2.Empty() {
		t.Fatalf("expected empty slice, got %d points", sub2.Len())
	}
	if sub3 := s.Slice(-5, 0); !sub3.Empty() {
		t.Fatalf("Slice(-5,0) should be empty (half-open), got %d", sub3.Len())
	}
}

func TestAt(t *testing.T) {
	s := FromValues("a", 10, 10, []float64{5, 6, 7})
	if v, ok := s.At(20); !ok || v != 6 {
		t.Fatalf("At(20) = %v,%v", v, ok)
	}
	if _, ok := s.At(15); ok {
		t.Fatal("At(15) should not exist")
	}
}

func TestDaysSplitsAndCoverage(t *testing.T) {
	// Two days: day 0 fully covered at 1 Hz for 100 s, then a gap, then day 1
	// with 50 s of data.
	var pts []Point
	for i := int64(0); i < 100; i++ {
		pts = append(pts, Point{T: i, V: 1})
	}
	for i := int64(0); i < 50; i++ {
		pts = append(pts, Point{T: SecondsPerDay + i, V: 2})
	}
	s := MustNew("h", pts)
	days := s.Days()
	if len(days) != 2 {
		t.Fatalf("len(days) = %d, want 2", len(days))
	}
	if days[0].Coverage != 100 || days[1].Coverage != 50 {
		t.Fatalf("coverage = %d,%d want 100,50", days[0].Coverage, days[1].Coverage)
	}
	if days[0].Start != 0 || days[1].Start != SecondsPerDay {
		t.Fatalf("day starts = %d,%d", days[0].Start, days[1].Start)
	}
	if days[0].HasEnoughData(99) != true || days[0].HasEnoughData(101) != false {
		t.Fatal("HasEnoughData threshold semantics wrong")
	}
}

func TestDaysIncludesEmptyMiddleDay(t *testing.T) {
	pts := []Point{{T: 0, V: 1}, {T: 2 * SecondsPerDay, V: 2}}
	days := MustNew("h", pts).Days()
	if len(days) != 3 {
		t.Fatalf("len(days) = %d, want 3", len(days))
	}
	if days[1].Coverage != 0 || !days[1].Series.Empty() {
		t.Fatal("middle day should be empty")
	}
}

func TestDaysNegativeTimestampsAlign(t *testing.T) {
	pts := []Point{{T: -10, V: 1}, {T: 5, V: 2}}
	days := MustNew("h", pts).Days()
	if len(days) != 2 {
		t.Fatalf("len(days) = %d, want 2", len(days))
	}
	if days[0].Start != -SecondsPerDay || days[1].Start != 0 {
		t.Fatalf("day starts = %d,%d", days[0].Start, days[1].Start)
	}
}

func TestCoverageCountsDistinctSeconds(t *testing.T) {
	s := MustNew("h", []Point{{T: 1}, {T: 1}, {T: 2}, {T: 4}})
	days := s.Days()
	if days[0].Coverage != 3 {
		t.Fatalf("coverage = %d, want 3 (duplicate second counted once)", days[0].Coverage)
	}
}

func TestResampleAverages(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{1, 2, 3, 4, 5, 6})
	r := s.Resample(3)
	want := []Point{{T: 3, V: 2}, {T: 6, V: 5}}
	if !reflect.DeepEqual(r.Points, want) {
		t.Fatalf("Resample = %v, want %v", r.Points, want)
	}
}

func TestResampleSkipsEmptyWindows(t *testing.T) {
	s := MustNew("a", []Point{{T: 0, V: 1}, {T: 1, V: 3}, {T: 10, V: 5}})
	r := s.Resample(2)
	want := []Point{{T: 2, V: 2}, {T: 12, V: 5}}
	if !reflect.DeepEqual(r.Points, want) {
		t.Fatalf("Resample = %v, want %v", r.Points, want)
	}
}

func TestResamplePartialLastWindow(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{1, 2, 3, 4, 5})
	r := s.Resample(3)
	// Last window has only 2 samples: mean = 4.5.
	want := []Point{{T: 3, V: 2}, {T: 6, V: 4.5}}
	if !reflect.DeepEqual(r.Points, want) {
		t.Fatalf("Resample = %v, want %v", r.Points, want)
	}
}

func TestResampleDegenerate(t *testing.T) {
	if got := (&Series{}).Resample(10); !got.Empty() {
		t.Fatal("empty in, empty out")
	}
	s := FromValues("a", 0, 1, []float64{1})
	if got := s.Resample(0); !got.Empty() {
		t.Fatal("window 0 should produce empty series")
	}
}

func TestSumMatchedTimestamps(t *testing.T) {
	a := FromValues("a", 0, 1, []float64{1, 2, 3})
	b := FromValues("b", 0, 1, []float64{10, 20, 30})
	sum := Sum("total", a, b)
	if got := sum.Values(); !reflect.DeepEqual(got, []float64{11, 22, 33}) {
		t.Fatalf("Sum = %v", got)
	}
}

func TestSumUnevenChannels(t *testing.T) {
	a := MustNew("a", []Point{{T: 0, V: 1}, {T: 2, V: 3}})
	b := MustNew("b", []Point{{T: 1, V: 10}, {T: 2, V: 20}})
	sum := Sum("total", a, b)
	want := []Point{{T: 0, V: 1}, {T: 1, V: 10}, {T: 2, V: 23}}
	if !reflect.DeepEqual(sum.Points, want) {
		t.Fatalf("Sum = %v, want %v", sum.Points, want)
	}
}

func TestSumEmptyAndNil(t *testing.T) {
	a := FromValues("a", 0, 1, []float64{1})
	sum := Sum("total", a, nil, &Series{})
	if !reflect.DeepEqual(sum.Values(), []float64{1}) {
		t.Fatalf("Sum = %v", sum.Values())
	}
	if got := Sum("none"); !got.Empty() {
		t.Fatal("Sum of nothing should be empty")
	}
}

func TestGaps(t *testing.T) {
	s := MustNew("a", []Point{{T: 0}, {T: 1}, {T: 5}, {T: 6}, {T: 100}})
	gaps := s.Gaps(1, 3)
	want := []Gap{{From: 2, To: 5}, {From: 7, To: 100}}
	if !reflect.DeepEqual(gaps, want) {
		t.Fatalf("Gaps = %v, want %v", gaps, want)
	}
	if g := s.Gaps(1, 1000); g != nil {
		t.Fatalf("no gap should exceed 1000s, got %v", g)
	}
}

func TestSummary(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{2, 4, 6})
	st := s.Summary()
	if st.Count != 3 || st.Min != 2 || st.Max != 6 || st.Mean != 4 {
		t.Fatalf("Summary = %+v", st)
	}
	if z := (&Series{}).Summary(); z.Count != 0 {
		t.Fatalf("empty Summary = %+v", z)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustNew("rt", []Point{{T: 1, V: 0.5}, {T: 2, V: 1234.25}, {T: 3, V: -7}})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(got.Points, s.Points) {
		t.Fatalf("round trip = %v, want %v", got.Points, s.Points)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"missing comma", "timestamp,value\n123\n"},
		{"bad timestamp", "timestamp,value\nxx,1\nyy,2\n"},
		{"bad value", "timestamp,value\n1,zz\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV("x", strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Header-only and empty inputs are fine.
	if s, err := ReadCSV("x", strings.NewReader("timestamp,value\n")); err != nil || !s.Empty() {
		t.Fatalf("header only: %v %v", s, err)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromValues("a", 0, 1, []float64{1, 2})
	c := s.Clone()
	c.Points[0].V = 99
	if s.Points[0].V != 1 {
		t.Fatal("Clone must not share storage")
	}
}

// Property: Resample output is ordered and its count never exceeds input count.
func TestResamplePropertyOrdered(t *testing.T) {
	f := func(seed int64, n uint8, window uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%200) + 1
		w := int64(window%30) + 1
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		s := FromValues("p", rng.Int63n(1000), 1, vals)
		r := s.Resample(w)
		if r.Len() > s.Len() {
			return false
		}
		for i := 1; i < r.Len(); i++ {
			if r.Points[i].T <= r.Points[i-1].T {
				return false
			}
		}
		// Mass preservation: total weighted mean equals overall mean when the
		// window divides the count evenly.
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for any series, mean of Resample(1) equals mean of the original.
func TestResampleIdentityWindow(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		s := FromValues("p", 0, 1, vals)
		r := s.Resample(1)
		if r.Len() != s.Len() {
			return false
		}
		for i := range vals {
			if math.Abs(r.Points[i].V-vals[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum with a single argument is the identity on values.
func TestSumIdentityProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n % 100)
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		s := FromValues("p", 0, 7, vals)
		return reflect.DeepEqual(Sum("s", s).Values(), s.Values())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
