package timeseries

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the series as "timestamp,value" lines with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "timestamp,value\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", p.T, strconv.FormatFloat(p.V, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a series from "timestamp,value" lines. A single header line
// is skipped if its first field is not numeric.
func ReadCSV(name string, r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pts []Point
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, ',')
		if i < 0 {
			return nil, fmt.Errorf("timeseries: line %d: missing comma", lineNo)
		}
		tField, vField := line[:i], line[i+1:]
		t, err := strconv.ParseInt(strings.TrimSpace(tField), 10, 64)
		if err != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, fmt.Errorf("timeseries: line %d: bad timestamp %q", lineNo, tField)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(vField), 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: line %d: bad value %q", lineNo, vField)
		}
		pts = append(pts, Point{T: t, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(name, pts)
}
