// Package eval implements the paper's evaluation protocol: stratified
// 10-fold cross-validation, confusion matrices, the weighted F-measure
// ("the weighted harmonic mean of Precision and Recall") reported in
// Figs. 5–7 and Table 1, the MAE of Figs. 8–9, and wall-clock processing
// time averaged over repeated runs.
package eval

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"symmeter/internal/ml"
)

// ConfusionMatrix counts predictions: M[actual][predicted].
type ConfusionMatrix struct {
	Classes []string
	M       [][]int
}

// NewConfusionMatrix returns a zeroed matrix over the class labels.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	return &ConfusionMatrix{Classes: classes, M: m}
}

// Add records one (actual, predicted) observation.
func (c *ConfusionMatrix) Add(actual, predicted int) {
	c.M[actual][predicted]++
}

// Total returns the number of observations.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range c.M {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy is the fraction of correct predictions.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range c.M {
		correct += c.M[i][i]
	}
	return float64(correct) / float64(total)
}

// PrecisionRecallF1 returns the per-class precision, recall and F1. Classes
// with no predictions have precision 0; classes with no instances have
// recall 0 (Weka conventions).
func (c *ConfusionMatrix) PrecisionRecallF1(class int) (precision, recall, f1 float64) {
	var tp, fp, fn int
	tp = c.M[class][class]
	for other := range c.M {
		if other != class {
			fp += c.M[other][class]
			fn += c.M[class][other]
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// WeightedF1 is the class-support-weighted mean of per-class F1 — the
// "F-measure" the paper plots.
func (c *ConfusionMatrix) WeightedF1() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var sum float64
	for class := range c.M {
		support := 0
		for _, v := range c.M[class] {
			support += v
		}
		if support == 0 {
			continue
		}
		_, _, f1 := c.PrecisionRecallF1(class)
		sum += f1 * float64(support)
	}
	return sum / float64(total)
}

// String renders the matrix with row/column labels.
func (c *ConfusionMatrix) String() string {
	out := "actual\\pred"
	for _, cl := range c.Classes {
		out += fmt.Sprintf("%10s", cl)
	}
	out += "\n"
	for i, row := range c.M {
		out += fmt.Sprintf("%-11s", c.Classes[i])
		for _, v := range row {
			out += fmt.Sprintf("%10d", v)
		}
		out += "\n"
	}
	return out
}

// CVResult is the outcome of a cross-validation run.
type CVResult struct {
	Confusion *ConfusionMatrix
	// TrainTime and TestTime are total wall-clock across folds.
	TrainTime, TestTime time.Duration
}

// F1 is shorthand for the weighted F-measure.
func (r CVResult) F1() float64 { return r.Confusion.WeightedF1() }

// Accuracy is shorthand for overall accuracy.
func (r CVResult) Accuracy() float64 { return r.Confusion.Accuracy() }

// ProcessingTime is the total train+test wall-clock, the quantity the
// paper's secondary axis reports.
func (r CVResult) ProcessingTime() time.Duration { return r.TrainTime + r.TestTime }

// StratifiedFolds splits instance indices into k folds with approximately
// equal class proportions, shuffled by seed. Folds are as equal-sized as
// possible; every instance appears in exactly one fold.
func StratifiedFolds(d *ml.Dataset, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, errors.New("eval: need at least 2 folds")
	}
	if d.Len() < k {
		return nil, fmt.Errorf("eval: %d instances cannot fill %d folds", d.Len(), k)
	}
	rng := rand.New(rand.NewSource(seed))
	// Group indices by class, shuffle within class, then deal round-robin.
	byClass := make([][]int, d.Schema.NumClasses())
	for i, in := range d.Instances {
		byClass[in.Class] = append(byClass[in.Class], i)
	}
	folds := make([][]int, k)
	next := 0
	for _, group := range byClass {
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		for _, idx := range group {
			folds[next%k] = append(folds[next%k], idx)
			next++
		}
	}
	return folds, nil
}

// CrossValidate runs stratified k-fold cross-validation of a fresh model
// per fold. newModel must return an untrained classifier each call.
func CrossValidate(d *ml.Dataset, k int, seed int64, newModel func() ml.Classifier) (CVResult, error) {
	folds, err := StratifiedFolds(d, k, seed)
	if err != nil {
		return CVResult{}, err
	}
	res := CVResult{Confusion: NewConfusionMatrix(d.Schema.Classes)}
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		train := d.Subset(trainIdx)
		model := newModel()

		t0 := time.Now()
		if err := model.Fit(train); err != nil {
			return CVResult{}, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		res.TrainTime += time.Since(t0)

		t1 := time.Now()
		for _, i := range folds[f] {
			in := d.Instances[i]
			res.Confusion.Add(in.Class, model.Predict(in.X))
		}
		res.TestTime += time.Since(t1)
	}
	return res, nil
}

// MAE returns the mean absolute error between predictions and actuals.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, errors.New("eval: MAE needs equal, non-zero lengths")
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, errors.New("eval: RMSE needs equal, non-zero lengths")
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// TimeAveraged runs fn `runs` times and returns the mean wall-clock
// duration, following the paper's "timing value was computed as the average
// over 10 runs".
func TimeAveraged(runs int, fn func()) time.Duration {
	if runs <= 0 {
		runs = 1
	}
	start := time.Now()
	for i := 0; i < runs; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(runs)
}
