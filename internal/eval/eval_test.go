package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"symmeter/internal/ml"
	"symmeter/internal/ml/naivebayes"
)

func TestConfusionMatrixBasics(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	if cm.Total() != 4 {
		t.Fatalf("Total = %d", cm.Total())
	}
	if got := cm.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	p, r, f1 := cm.PrecisionRecallF1(0)
	if p != 1 || math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("P/R = %v/%v", p, r)
	}
	wantF1 := 2 * 1 * (2.0 / 3) / (1 + 2.0/3)
	if math.Abs(f1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", f1, wantF1)
	}
	if !strings.Contains(cm.String(), "a") {
		t.Fatal("String should include labels")
	}
}

func TestWeightedF1(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	// Class a: 3 instances, all correct. Class b: 1 instance, wrong.
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(1, 0)
	// F1(a): p=3/4, r=1 → 6/7. F1(b): 0. Weighted: (6/7*3 + 0*1)/4.
	want := (6.0 / 7 * 3) / 4
	if got := cm.WeightedF1(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WeightedF1 = %v, want %v", got, want)
	}
}

func TestEmptyMatrix(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	if cm.Accuracy() != 0 || cm.WeightedF1() != 0 {
		t.Fatal("empty matrix scores must be 0")
	}
}

func TestPerfectAndWorstF1(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	for i := 0; i < 5; i++ {
		cm.Add(0, 0)
		cm.Add(1, 1)
	}
	if cm.WeightedF1() != 1 {
		t.Fatalf("perfect F1 = %v", cm.WeightedF1())
	}
	cm2 := NewConfusionMatrix([]string{"a", "b"})
	for i := 0; i < 5; i++ {
		cm2.Add(0, 1)
		cm2.Add(1, 0)
	}
	if cm2.WeightedF1() != 0 {
		t.Fatalf("all-wrong F1 = %v", cm2.WeightedF1())
	}
}

func twoClassDataset(t *testing.T, n int) *ml.Dataset {
	t.Helper()
	schema, err := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("s", []string{"x", "y"}),
	}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		class := i % 2
		v := class
		if rng.Float64() < 0.05 {
			v = 1 - class
		}
		d.MustAdd([]float64{float64(v)}, class)
	}
	return d
}

func TestStratifiedFolds(t *testing.T) {
	d := twoClassDataset(t, 100)
	folds, err := StratifiedFolds(d, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("len(folds) = %d", len(folds))
	}
	seen := make(map[int]bool)
	for _, fold := range folds {
		if len(fold) != 10 {
			t.Fatalf("fold size %d, want 10", len(fold))
		}
		// Stratification: each fold should have both classes, ~5 each.
		counts := [2]int{}
		for _, i := range fold {
			if seen[i] {
				t.Fatalf("instance %d in two folds", i)
			}
			seen[i] = true
			counts[d.Instances[i].Class]++
		}
		if counts[0] < 3 || counts[1] < 3 {
			t.Fatalf("fold class balance = %v", counts)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("%d instances covered, want 100", len(seen))
	}
}

func TestStratifiedFoldsErrors(t *testing.T) {
	d := twoClassDataset(t, 5)
	if _, err := StratifiedFolds(d, 1, 0); err == nil {
		t.Fatal("k<2 should error")
	}
	if _, err := StratifiedFolds(d, 10, 0); err == nil {
		t.Fatal("more folds than instances should error")
	}
}

func TestCrossValidateNaiveBayes(t *testing.T) {
	d := twoClassDataset(t, 100)
	res, err := CrossValidate(d, 10, 3, func() ml.Classifier { return naivebayes.New() })
	if err != nil {
		t.Fatal(err)
	}
	if res.F1() < 0.85 {
		t.Fatalf("CV F1 = %v on a 95%% separable problem", res.F1())
	}
	if res.Accuracy() < 0.85 {
		t.Fatalf("CV accuracy = %v", res.Accuracy())
	}
	if res.Confusion.Total() != 100 {
		t.Fatalf("every instance tested once: total = %d", res.Confusion.Total())
	}
	if res.ProcessingTime() <= 0 {
		t.Fatal("processing time must be positive")
	}
}

func TestCrossValidateDeterministicSeed(t *testing.T) {
	d := twoClassDataset(t, 60)
	a, err := CrossValidate(d, 5, 11, func() ml.Classifier { return naivebayes.New() })
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(d, 5, 11, func() ml.Classifier { return naivebayes.New() })
	if err != nil {
		t.Fatal(err)
	}
	if a.F1() != b.F1() {
		t.Fatal("same seed must reproduce the folds")
	}
}

func TestMAEAndRMSE(t *testing.T) {
	mae, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if err != nil || math.Abs(mae-1) > 1e-12 {
		t.Fatalf("MAE = %v, %v", mae, err)
	}
	rmse, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || math.Abs(rmse-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v, %v", rmse, err)
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Fatal("empty MAE should error")
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := RMSE([]float64{1}, nil); err == nil {
		t.Fatal("RMSE mismatch should error")
	}
}

func TestTimeAveraged(t *testing.T) {
	calls := 0
	d := TimeAveraged(10, func() { calls++; time.Sleep(time.Microsecond) })
	if calls != 10 {
		t.Fatalf("calls = %d", calls)
	}
	if d <= 0 {
		t.Fatal("duration must be positive")
	}
	if TimeAveraged(0, func() {}) < 0 {
		t.Fatal("runs <= 0 treated as 1")
	}
}
