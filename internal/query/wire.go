package query

import (
	"errors"
	"fmt"
	"math"

	"symmeter/internal/transport"
)

// ServeQuery executes one decoded wire request against the engine and fills
// res — the adapter the server's query sessions run requests through. It
// implements server.QueryHandler.
//
// The method reuses res (including the Counts backing array) and allocates
// nothing on the steady state for per-meter ops; failures come back as
// *transport.QueryError so the session layer can answer with a typed 'X'
// frame. Per-meter float results are bit-identical to the corresponding
// in-process calls because both run the same folds in the same order
// (Sum/Mean share sumCount, Min/Max/Aggregate share Aggregate); fleet-wide
// floats are merged from worker partials whose meter order is scheduling-
// dependent, exactly as FleetSum/FleetAggregate themselves are.
func (e *Engine) ServeQuery(req transport.QueryRequest, res *transport.QueryResult) error {
	if req.T0 >= req.T1 {
		return &transport.QueryError{
			Code: transport.QErrBadRange,
			Msg:  fmt.Sprintf("empty or inverted range [%d, %d)", req.T0, req.T1),
		}
	}
	res.ID = req.ID
	res.Op = req.Op
	res.Count, res.Value, res.Sum, res.Min, res.Max = 0, 0, 0, 0, 0
	res.Level = 0
	res.Counts = res.Counts[:0]
	if req.Fleet {
		return e.serveFleet(req, res)
	}
	return e.serveMeter(req, res)
}

func (e *Engine) serveMeter(req transport.QueryRequest, res *transport.QueryResult) error {
	switch req.Op {
	case transport.OpCount:
		n, ok := e.Count(req.MeterID, req.T0, req.T1)
		if !ok {
			return unknownMeter(req.MeterID)
		}
		res.Count = n
	case transport.OpSum:
		sum, n, ok := e.sumCount(req.MeterID, req.T0, req.T1)
		if !ok {
			return unknownMeter(req.MeterID)
		}
		res.Count, res.Sum = n, sum
	case transport.OpMean:
		sum, n, ok := e.sumCount(req.MeterID, req.T0, req.T1)
		if !ok {
			return unknownMeter(req.MeterID)
		}
		res.Count = n
		if n == 0 {
			res.Value = math.NaN()
		} else {
			res.Value = sum / float64(n)
		}
	case transport.OpMin, transport.OpMax:
		a, ok := e.Aggregate(req.MeterID, req.T0, req.T1)
		if !ok {
			return unknownMeter(req.MeterID)
		}
		res.Count = a.Count
		if req.Op == transport.OpMin {
			res.Value = a.Min
		} else {
			res.Value = a.Max
		}
	case transport.OpAggregate:
		a, ok := e.Aggregate(req.MeterID, req.T0, req.T1)
		if !ok {
			return unknownMeter(req.MeterID)
		}
		res.Count, res.Sum, res.Min, res.Max = a.Count, a.Sum, a.Min, a.Max
	case transport.OpHistogram:
		h := Histogram{Counts: res.Counts}
		ok, err := e.HistogramInto(&h, req.MeterID, req.T0, req.T1)
		res.Level, res.Counts = h.Level, h.Counts
		if !ok {
			return unknownMeter(req.MeterID)
		}
		if err != nil {
			res.Counts = res.Counts[:0]
			return histogramError(err)
		}
	default:
		return &transport.QueryError{
			Code: transport.QErrBadRequest,
			Msg:  fmt.Sprintf("unknown op %#x", req.Op),
		}
	}
	return nil
}

func (e *Engine) serveFleet(req transport.QueryRequest, res *transport.QueryResult) error {
	switch req.Op {
	case transport.OpCount:
		_, n := e.FleetSum(req.T0, req.T1)
		res.Count = n
	case transport.OpSum:
		sum, n := e.FleetSum(req.T0, req.T1)
		res.Count, res.Sum = n, sum
	case transport.OpMean:
		sum, n := e.FleetSum(req.T0, req.T1)
		res.Count = n
		if n == 0 {
			res.Value = math.NaN()
		} else {
			res.Value = sum / float64(n)
		}
	case transport.OpMin, transport.OpMax:
		a := e.FleetAggregate(req.T0, req.T1)
		res.Count = a.Count
		if req.Op == transport.OpMin {
			res.Value = a.Min
		} else {
			res.Value = a.Max
		}
	case transport.OpAggregate:
		a := e.FleetAggregate(req.T0, req.T1)
		res.Count, res.Sum, res.Min, res.Max = a.Count, a.Sum, a.Min, a.Max
	case transport.OpHistogram:
		h, err := e.FleetHistogram(req.T0, req.T1)
		if err != nil {
			return histogramError(err)
		}
		res.Level = h.Level
		if cap(res.Counts) < len(h.Counts) {
			res.Counts = make([]uint64, len(h.Counts))
		}
		res.Counts = res.Counts[:len(h.Counts)]
		copy(res.Counts, h.Counts)
	default:
		return &transport.QueryError{
			Code: transport.QErrBadRequest,
			Msg:  fmt.Sprintf("unknown op %#x", req.Op),
		}
	}
	return nil
}

func unknownMeter(id uint64) error {
	return &transport.QueryError{
		Code: transport.QErrUnknownMeter,
		Msg:  fmt.Sprintf("meter %d not in store", id),
	}
}

// histogramError maps the engine's histogram failures onto wire error codes.
func histogramError(err error) error {
	code := transport.QErrInternal
	switch {
	case errors.Is(err, ErrMixedLevels):
		code = transport.QErrMixedLevels
	case errors.Is(err, ErrLevelTooFine):
		code = transport.QErrLevelTooFine
	}
	return &transport.QueryError{Code: code, Msg: err.Error()}
}
