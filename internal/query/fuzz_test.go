package query

import (
	"math/rand"
	"testing"

	"symmeter/internal/server"
)

// FuzzQueryVsOracle is the differential harness of the compressed-domain
// engine: a random table, a random gapped stream with mid-stream table
// re-pushes, and random time ranges — every aggregate must agree with the
// naive decode-then-aggregate oracle (Snapshot + point loop). Integer
// aggregates (Count, Min, Max, Histogram) must agree exactly; Sum and Mean
// within float re-association tolerance, since the engine adds per-block
// partial sums in a different order than the oracle's point loop.
//
// Levels are fuzzed over 1–16. Finer tables cannot exist in this system:
// a level-L table materializes 2^L−1 separators, so level 30 alone would
// need an 8.6 GB slice — the kernels underneath are range-fuzzed at every
// level the codec supports by the symbolic package's tests.
func FuzzQueryVsOracle(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(1500), uint8(10), uint16(400), int64(0), int64(1<<40))
	f.Add(int64(2), uint8(1), uint16(700), uint8(30), uint16(0), int64(900*511), int64(900*513))
	f.Add(int64(3), uint8(3), uint16(1), uint8(0), uint16(0), int64(0), int64(1))
	f.Add(int64(4), uint8(16), uint16(600), uint8(5), uint16(100), int64(900*100), int64(900*100))
	f.Add(int64(5), uint8(12), uint16(1100), uint8(15), uint16(0), int64(-4000), int64(900*2000))
	f.Fuzz(func(t *testing.T, seed int64, levelRaw uint8, nRaw uint16, gapRaw uint8, epochRaw uint16, t0, t1 int64) {
		level := 1 + int(levelRaw)%16
		n := 1 + int(nRaw)%2000 // crosses multiple 512-symbol block boundaries
		gapPct := int(gapRaw) % 50
		epochEvery := int(epochRaw) % 1000

		rng := rand.New(rand.NewSource(seed))
		st := server.NewStore(4)
		table := randTable(t, rng, level)
		last := seedMeter(t, st, rng, 77, table, n, gapPct, epochEvery)

		// Clamp the fuzzed range into the stream's neighborhood so most
		// iterations touch data; out-of-range and inverted ranges still
		// occur via the modulo and are part of the contract.
		span := last + 2*900
		t0 = t0 % span
		t1 = t1 % (span + 1)
		checkAgainstOracle(t, New(st), st, 77, table.K(), t0, t1)
	})
}
