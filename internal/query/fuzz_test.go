package query

import (
	"math/rand"
	"testing"

	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// FuzzQueryVsOracle is the differential harness of the compressed-domain
// engine: a random table, a random gapped stream with mid-stream table
// re-pushes, and random time ranges — every aggregate must agree with the
// naive decode-then-aggregate oracle (Snapshot + point loop). Integer
// aggregates (Count, Min, Max, Histogram) must agree exactly; Sum and Mean
// within float re-association tolerance, since the engine adds per-block
// partial sums in a different order than the oracle's point loop.
//
// Beyond the fuzzed range, every input is also checked on ranges that
// straddle the sealed/tail boundary (the published index ends exactly
// there, so an off-by-one in the publication or tail-fold protocol shows up
// only on such ranges), and queried *while* a concurrent appender keeps
// growing the same meter — counts over a fixed range must be monotone
// non-decreasing across successive reads, and the post-quiescence result
// must match the oracle exactly.
//
// Levels are fuzzed over 1–16. Finer tables cannot exist in this system:
// a level-L table materializes 2^L−1 separators, so level 30 alone would
// need an 8.6 GB slice — the kernels underneath are range-fuzzed at every
// level the codec supports by the symbolic package's tests.
func FuzzQueryVsOracle(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(1500), uint8(10), uint16(400), int64(0), int64(1<<40))
	f.Add(int64(2), uint8(1), uint16(700), uint8(30), uint16(0), int64(900*511), int64(900*513))
	f.Add(int64(3), uint8(3), uint16(1), uint8(0), uint16(0), int64(0), int64(1))
	f.Add(int64(4), uint8(16), uint16(600), uint8(5), uint16(100), int64(900*100), int64(900*100))
	f.Add(int64(5), uint8(12), uint16(1100), uint8(15), uint16(0), int64(-4000), int64(900*2000))
	f.Add(int64(6), uint8(4), uint16(1900), uint8(0), uint16(0), int64(900*500), int64(900*600))
	f.Fuzz(func(t *testing.T, seed int64, levelRaw uint8, nRaw uint16, gapRaw uint8, epochRaw uint16, t0, t1 int64) {
		level := 1 + int(levelRaw)%16
		n := 1 + int(nRaw)%2000 // crosses multiple 512-symbol block boundaries
		gapPct := int(gapRaw) % 50
		epochEvery := int(epochRaw) % 1000

		rng := rand.New(rand.NewSource(seed))
		st := server.NewStore(4)
		table := randTable(t, rng, level)
		last := seedMeter(t, st, rng, 77, table, n, gapPct, epochEvery)
		e := New(st)
		k := table.K()

		// Clamp the fuzzed range into the stream's neighborhood so most
		// iterations touch data; out-of-range and inverted ranges still
		// occur via the modulo and are part of the contract.
		span := last + 2*900
		t0 = t0 % span
		t1 = t1 % (span + 1)
		checkAgainstOracle(t, e, st, 77, k, t0, t1)

		// Ranges straddling the sealed/tail boundary: the published index
		// ends exactly at the live tail's first timestamp, so probe half-open
		// ranges around it from both sides and across it.
		if m, ok := st.Meter(77); ok {
			if tf, live := m.LiveTailStart(); live {
				const w = 900
				for _, r := range [][2]int64{
					{tf - 5*w, tf},         // sealed side only, ending at the boundary
					{tf, tf + 5*w},         // tail side only, starting at the boundary
					{tf - 3*w, tf + 3*w},   // across
					{tf - 1, tf + 1},       // tightest straddle
					{tf - 700*w, tf + 2*w}, // several sealed blocks plus the tail edge
				} {
					checkAgainstOracle(t, e, st, 77, k, r[0], r[1])
				}
			}
		}

		// Concurrent appends during the query: an appender extends the same
		// meter while we repeatedly Count a fixed range covering the whole
		// stream's future. Counts must never go backwards (a torn publication
		// would lose sealed blocks); after the appender joins, the engine
		// must agree with the oracle again, exactly.
		const extra = 300
		errc := make(chan error, 1)
		go func() {
			defer close(errc)
			ts := last + 900
			for sent := 0; sent < extra; {
				batch := 1 + int(ts%37)%60
				if batch > extra-sent {
					batch = extra - sent
				}
				pts := make([]symbolic.SymbolPoint, batch)
				for i := range pts {
					pts[i] = symbolic.SymbolPoint{T: ts, S: symbolic.NewSymbol(int(ts/900)%k, level)}
					ts += 900
				}
				if _, err := st.Append(77, pts); err != nil {
					errc <- err
					return
				}
				sent += batch
			}
		}()
		qt0, qt1 := int64(0), last+int64(extra+10)*900
		var prev uint64
		for i := 0; i < 50; i++ {
			c, ok := e.Count(77, qt0, qt1)
			if !ok {
				t.Fatal("meter vanished mid-ingest")
			}
			if c < prev {
				t.Fatalf("count went backwards during ingest: %d -> %d", prev, c)
			}
			prev = c
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		checkAgainstOracle(t, e, st, 77, k, qt0, qt1)
		checkAgainstOracle(t, e, st, 77, k, last-5*900, last+20*900)
	})
}
