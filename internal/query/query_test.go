package query

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// randTable builds a deterministic random table at the given level with
// default (bin-center) representatives, which are monotone in the symbol
// index — the property Min/Max-from-symbol-summaries relies on.
func randTable(t testing.TB, rng *rand.Rand, level int) *symbolic.Table {
	t.Helper()
	k := 1 << uint(level)
	seps := make([]float64, k-1)
	for i := range seps {
		seps[i] = rng.Float64() * 1000
	}
	sort.Float64s(seps)
	table, err := symbolic.NewTable(k, seps, -50, 1100)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// seedMeter streams n points into the store for one meter: window-strided
// timestamps with occasional gaps, random symbols, optional table re-pushes
// (epoch changes) mid-stream. Returns the last timestamp used.
func seedMeter(t testing.TB, st *server.Store, rng *rand.Rand, meterID uint64, table *symbolic.Table, n int, gapPct, epochEvery int) int64 {
	t.Helper()
	if err := st.StartSession(meterID); err != nil {
		t.Fatal(err)
	}
	defer st.EndSession(meterID)
	if err := st.PushTable(meterID, table); err != nil {
		t.Fatal(err)
	}
	level := table.Level()
	k := table.K()
	const window = 900
	var ts int64
	sent := 0
	for sent < n {
		batch := 1 + rng.Intn(96)
		if batch > n-sent {
			batch = n - sent
		}
		pts := make([]symbolic.SymbolPoint, batch)
		for i := range pts {
			pts[i] = symbolic.SymbolPoint{T: ts, S: symbolic.NewSymbol(rng.Intn(k), level)}
			ts += window
			if gapPct > 0 && rng.Intn(100) < gapPct {
				ts += window * int64(1+rng.Intn(3)) // missing windows
			}
		}
		if _, err := st.Append(meterID, pts); err != nil {
			t.Fatal(err)
		}
		sent += batch
		if epochEvery > 0 && sent < n && sent%epochEvery < batch {
			// Re-learned table mid-stream: same level, new separators.
			if err := st.PushTable(meterID, randTable(t, rng, level)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ts
}

// oracleAgg is the naive decode-then-aggregate reference: reconstruct the
// full stream via Snapshot, filter by time, aggregate point by point.
type oracleAgg struct {
	count uint64
	sum   float64
	min   float64
	max   float64
	hist  []uint64
}

func oracle(st server.MeterState, t0, t1 int64, k int) oracleAgg {
	o := oracleAgg{hist: make([]uint64, k)}
	for _, p := range st.Points {
		if p.T < t0 || p.T >= t1 {
			continue
		}
		if o.count == 0 || p.V < o.min {
			o.min = p.V
		}
		if o.count == 0 || p.V > o.max {
			o.max = p.V
		}
		o.count++
		o.sum += p.V
		o.hist[p.S.Index()]++
	}
	return o
}

func checkAgainstOracle(t *testing.T, e *Engine, st *server.Store, meterID uint64, k int, t0, t1 int64) {
	t.Helper()
	snap, ok := st.Snapshot(meterID)
	if !ok {
		t.Fatal("meter vanished")
	}
	o := oracle(snap, t0, t1, k)

	a, ok := e.Aggregate(meterID, t0, t1)
	if !ok {
		t.Fatal("Aggregate: meter unknown")
	}
	if a.Count != o.count {
		t.Fatalf("[%d,%d) Count = %d, oracle %d", t0, t1, a.Count, o.count)
	}
	if relDiff(a.Sum, o.sum) > 1e-9 {
		t.Fatalf("[%d,%d) Sum = %v, oracle %v", t0, t1, a.Sum, o.sum)
	}
	if o.count > 0 && (a.Min != o.min || a.Max != o.max) {
		t.Fatalf("[%d,%d) Min/Max = %v/%v, oracle %v/%v", t0, t1, a.Min, a.Max, o.min, o.max)
	}
	if n, _ := e.Count(meterID, t0, t1); n != o.count {
		t.Fatalf("[%d,%d) Count query = %d, oracle %d", t0, t1, n, o.count)
	}
	if s, _ := e.Sum(meterID, t0, t1); relDiff(s, o.sum) > 1e-9 {
		t.Fatalf("[%d,%d) Sum query = %v, oracle %v", t0, t1, s, o.sum)
	}
	m, _ := e.Mean(meterID, t0, t1)
	if o.count == 0 {
		if !math.IsNaN(m) {
			t.Fatalf("[%d,%d) Mean of empty range = %v, want NaN", t0, t1, m)
		}
	} else if relDiff(m, o.sum/float64(o.count)) > 1e-9 {
		t.Fatalf("[%d,%d) Mean = %v, oracle %v", t0, t1, m, o.sum/float64(o.count))
	}
	if k <= 1<<maxHistogramLevel {
		h, _, err := e.Histogram(meterID, t0, t1)
		if err != nil {
			t.Fatalf("[%d,%d) Histogram: %v", t0, t1, err)
		}
		if o.count == 0 {
			if len(h.Counts) != 0 {
				t.Fatalf("[%d,%d) empty-range histogram has %d bins", t0, t1, len(h.Counts))
			}
		} else {
			for s := range o.hist {
				if h.Counts[s] != o.hist[s] {
					t.Fatalf("[%d,%d) hist[%d] = %d, oracle %d", t0, t1, s, h.Counts[s], o.hist[s])
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(b))
}

// TestQueryMatchesOracle sweeps levels and range shapes deterministically:
// empty ranges, single-point ranges, block-boundary straddles, full cover.
func TestQueryMatchesOracle(t *testing.T) {
	for _, level := range []int{1, 2, 3, 4, 8, 10} {
		rng := rand.New(rand.NewSource(int64(100 + level)))
		st := server.NewStore(4)
		table := randTable(t, rng, level)
		last := seedMeter(t, st, rng, 9, table, 1500, 10, 400)
		e := New(st)
		const w = 900
		ranges := [][2]int64{
			{0, last + w},           // everything
			{0, 0},                  // empty
			{500, 100},              // inverted
			{0, w},                  // first point only
			{last - w, last + w},    // tail
			{512 * w, 513 * w},      // around the first block boundary
			{300 * w, 700 * w},      // straddles a block
			{-5000, 50},             // before the stream
			{last + w, last + 9000}, // after the stream
		}
		for i := 0; i < 25; i++ {
			a := rng.Int63n(last + 2*w)
			b := rng.Int63n(last + 2*w)
			ranges = append(ranges, [2]int64{a, b})
		}
		for _, r := range ranges {
			checkAgainstOracle(t, e, st, 9, table.K(), r[0], r[1])
		}
	}
}

// TestFleetMatchesPerMeter pins the sharded fan-out: fleet aggregates must
// equal the merge of every meter's individual aggregate.
func TestFleetMatchesPerMeter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := server.NewStore(8)
	const meters = 37 // not a multiple of the shard count
	var tables []*symbolic.Table
	for m := 1; m <= meters; m++ {
		table := randTable(t, rng, 4)
		tables = append(tables, table)
		seedMeter(t, st, rng, uint64(m), table, 300+rng.Intn(600), 5, 0)
	}
	e := New(st)
	t0, t1 := int64(100*900), int64(600*900)

	var want Agg
	var wantHist []uint64
	for m := 1; m <= meters; m++ {
		a, ok := e.Aggregate(uint64(m), t0, t1)
		if !ok {
			t.Fatalf("meter %d unknown", m)
		}
		want.merge(a)
		h, _, err := e.Histogram(uint64(m), t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		if wantHist == nil {
			wantHist = make([]uint64, 16)
		}
		for s, c := range h.Counts {
			wantHist[s] += c
		}
	}

	got := e.FleetAggregate(t0, t1)
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("fleet = %+v, merged per-meter = %+v", got, want)
	}
	if relDiff(got.Sum, want.Sum) > 1e-9 {
		t.Fatalf("fleet sum = %v, merged %v", got.Sum, want.Sum)
	}
	sum, count := e.FleetSum(t0, t1)
	if count != want.Count || relDiff(sum, want.Sum) > 1e-9 {
		t.Fatalf("FleetSum = %v/%d, want %v/%d", sum, count, want.Sum, want.Count)
	}
	fh, err := e.FleetHistogram(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	for s := range wantHist {
		if fh.Counts[s] != wantHist[s] {
			t.Fatalf("fleet hist[%d] = %d, want %d", s, fh.Counts[s], wantHist[s])
		}
	}
}

func TestUnknownMeter(t *testing.T) {
	e := New(server.NewStore(2))
	if _, ok := e.Aggregate(404, 0, 1000); ok {
		t.Fatal("Aggregate of unknown meter reported ok")
	}
	if _, ok := e.Sum(404, 0, 1000); ok {
		t.Fatal("Sum of unknown meter reported ok")
	}
	if _, ok := e.Min(404, 0, 1000); ok {
		t.Fatal("Min of unknown meter reported ok")
	}
}

// TestMixedLevelHistogram: meters with different alphabet sizes cannot be
// merged into one fleet histogram.
func TestMixedLevelHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := server.NewStore(2)
	seedMeter(t, st, rng, 1, randTable(t, rng, 4), 100, 0, 0)
	seedMeter(t, st, rng, 2, randTable(t, rng, 3), 100, 0, 0)
	e := New(st)
	if _, err := e.FleetHistogram(0, 1<<40); !errors.Is(err, ErrMixedLevels) {
		t.Fatalf("FleetHistogram error = %v, want ErrMixedLevels", err)
	}
	// The non-histogram aggregates still work across mixed levels.
	a := e.FleetAggregate(0, 1<<40)
	if a.Count != 200 {
		t.Fatalf("fleet count = %d, want 200", a.Count)
	}
}

// TestNonMonotoneRepresentatives pins Min/Max correctness for tables whose
// symbol→value mapping is NOT monotone in the symbol index (a wire table's
// representatives are arbitrary: UnmarshalTable does not, and cannot,
// enforce bin ordering). Extremes are tracked in the value domain at ingest
// and compared in the value domain at query time, so these must still
// match the oracle exactly — randTable can never generate this shape, which
// is why it gets a dedicated test instead of relying on the fuzzer.
func TestNonMonotoneRepresentatives(t *testing.T) {
	table, err := symbolic.NewTable(4, []float64{10, 20, 30}, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Symbol 0 reconstructs to the largest value, symbol 3 to the smallest.
	if err := table.SetRepresentatives([]float64{100, 7, 55, 1}); err != nil {
		t.Fatal(err)
	}
	st := server.NewStore(2)
	if err := st.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := st.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	// Enough points to seal a block plus a partial tail, cycling all symbols.
	n := server.BlockCap + 37
	pts := make([]symbolic.SymbolPoint, n)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 900, S: symbolic.NewSymbol(i%4, 2)}
	}
	if _, err := st.Append(1, pts); err != nil {
		t.Fatal(err)
	}
	e := New(st)
	// Full cover (summary path), and a range cutting inside both blocks
	// (kernel path).
	for _, r := range [][2]int64{{0, int64(n) * 900}, {3 * 900, int64(n-3)*900 - 450}} {
		checkAgainstOracle(t, e, st, 1, 4, r[0], r[1])
	}
	a, _ := e.Aggregate(1, 0, int64(n)*900)
	if a.Min != 1 || a.Max != 100 {
		t.Fatalf("non-monotone table: Min/Max = %v/%v, want 1/100", a.Min, a.Max)
	}
}

// TestExtremeTimestampQueries pins the engine against int64-edge streams:
// adversarial timestamps that once provoked span overflow (negative offsets
// wrapping into payload indices) must neither panic nor diverge from the
// oracle, for query ranges probing both ends of the int64 line.
func TestExtremeTimestampQueries(t *testing.T) {
	const maxInt64 = 1<<63 - 1
	const minInt64 = -1 << 63
	rng := rand.New(rand.NewSource(5))
	st := server.NewStore(2)
	table := randTable(t, rng, 4)
	if err := st.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := st.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	ts := []int64{minInt64 + 1, -(maxInt64 / 510), 0, maxInt64 / 510 * 2, maxInt64 - 900, maxInt64}
	for _, tt := range ts {
		pts := []symbolic.SymbolPoint{{T: tt, S: symbolic.NewSymbol(rng.Intn(16), 4)}}
		if _, err := st.Append(1, pts); err != nil {
			t.Fatal(err)
		}
	}
	e := New(st)
	for _, r := range [][2]int64{
		{minInt64, maxInt64},
		{maxInt64 - 1000, maxInt64},
		{minInt64, minInt64 + 10},
		{-1, 1},
		{maxInt64 / 510, maxInt64 / 510 * 3},
	} {
		checkAgainstOracle(t, e, st, 1, 16, r[0], r[1])
	}
}

// TestQueryZeroAlloc pins the satellite contract: block-summary queries and
// batched-kernel edge queries allocate nothing in steady state.
func TestQueryZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := server.NewStore(1)
	table := randTable(t, rng, 4) // level 4: packed-kernel fast path
	last := seedMeter(t, st, rng, 1, table, 3000, 0, 0)
	e := New(st)
	full := func() { // summary-only: covers every block exactly
		if a, ok := e.Aggregate(1, 0, last+900); !ok || a.Count == 0 {
			t.Fatal("bad aggregate")
		}
	}
	partial := func() { // cuts inside blocks on both ends: edge kernels
		if s, ok := e.Sum(1, 100*900, 2500*900+450); !ok || s == 0 {
			t.Fatal("bad sum")
		}
		if a, ok := e.Aggregate(1, 100*900, 2500*900+450); !ok || a.Count == 0 {
			t.Fatal("bad aggregate")
		}
	}
	var h Histogram
	hist := func() {
		if _, err := e.HistogramInto(&h, 1, 100*900, 2500*900+450); err != nil {
			t.Fatal(err)
		}
	}
	hist() // warm the reused counts buffer
	if a := testing.AllocsPerRun(100, full); a != 0 {
		t.Fatalf("summary query allocates %.1f times per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, partial); a != 0 {
		t.Fatalf("edge-kernel query allocates %.1f times per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, hist); a != 0 {
		t.Fatalf("HistogramInto allocates %.1f times per run, want 0", a)
	}
}

// TestPrunedQueryZeroAllocAndLockFree pins the read-path satellites
// together: a narrow range over sealed data resolves through the published
// time directory (no chain walk), allocates nothing in steady state, and
// takes zero shard-lock acquisitions.
func TestPrunedQueryZeroAllocAndLockFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := server.NewStore(2)
	table := randTable(t, rng, 4)
	seedMeter(t, st, rng, 1, table, 6*server.BlockCap+50, 0, 0) // 6 sealed blocks + tail
	e := New(st)
	m, ok := st.Meter(1)
	if !ok {
		t.Fatal("meter unknown")
	}
	tailT, ok := m.LiveTailStart()
	if !ok {
		t.Fatal("no live tail")
	}
	const w = 900
	t0, t1 := int64(2*server.BlockCap+7)*w, int64(3*server.BlockCap+90)*w // inside blocks 2-3
	if t1 >= tailT {
		t.Fatalf("test range %d reaches the tail start %d", t1, tailT)
	}
	before := st.QueryLockAcquisitions()
	pruned := func() {
		if a, ok := e.Aggregate(1, t0, t1); !ok || a.Count == 0 {
			t.Fatal("bad pruned aggregate")
		}
		if s, ok := e.Sum(1, t0, t1); !ok || s == 0 {
			t.Fatal("bad pruned sum")
		}
		if n, ok := e.Count(1, t0, t1); !ok || n == 0 {
			t.Fatal("bad pruned count")
		}
	}
	if a := testing.AllocsPerRun(100, pruned); a != 0 {
		t.Fatalf("pruned sealed query allocates %.1f times per run, want 0", a)
	}
	var h Histogram
	histPruned := func() {
		if _, err := e.HistogramInto(&h, 1, t0, t1); err != nil {
			t.Fatal(err)
		}
	}
	histPruned()
	if a := testing.AllocsPerRun(100, histPruned); a != 0 {
		t.Fatalf("pruned HistogramInto allocates %.1f times per run, want 0", a)
	}
	if locks := st.QueryLockAcquisitions() - before; locks != 0 {
		t.Fatalf("sealed-range engine queries took %d shard locks, want 0", locks)
	}
	// Sanity: the same queries still agree with the oracle.
	checkAgainstOracle(t, e, st, 1, 16, t0, t1)
	// And a range past the tail start does pay (only) tail-fold locks.
	if _, ok := e.Aggregate(1, t0, tailT+w); !ok {
		t.Fatal("tail aggregate failed")
	}
	if locks := st.QueryLockAcquisitions() - before; locks != 1 {
		t.Fatalf("tail-touching aggregate took %d locks, want 1", locks)
	}
}

// TestFleetWorkerPoolEquivalence pins the bounded pool: every worker count
// produces bit-identical integer aggregates and tolerance-identical sums,
// whether smaller, equal to, or larger than the shard count.
func TestFleetWorkerPoolEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	st := server.NewStore(8)
	for m := 1; m <= 23; m++ {
		seedMeter(t, st, rng, uint64(m), randTable(t, rng, 4), 200+rng.Intn(900), 8, 0)
	}
	e := New(st)
	t0, t1 := int64(50*900), int64(800*900)
	ref := e.FleetAggregate(t0, t1)
	refSum, refCount := e.FleetSum(t0, t1)
	refHist, err := e.FleetHistogram(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		e.SetWorkers(workers)
		a := e.FleetAggregate(t0, t1)
		if a.Count != ref.Count || a.Min != ref.Min || a.Max != ref.Max || relDiff(a.Sum, ref.Sum) > 1e-9 {
			t.Fatalf("workers=%d: FleetAggregate %+v, want %+v", workers, a, ref)
		}
		sum, count := e.FleetSum(t0, t1)
		if count != refCount || relDiff(sum, refSum) > 1e-9 {
			t.Fatalf("workers=%d: FleetSum %v/%d, want %v/%d", workers, sum, count, refSum, refCount)
		}
		h, err := e.FleetHistogram(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		for s := range refHist.Counts {
			if h.Counts[s] != refHist.Counts[s] {
				t.Fatalf("workers=%d: hist[%d] = %d, want %d", workers, s, h.Counts[s], refHist.Counts[s])
			}
		}
	}
}

// TestFleetQueryDuringIngest is the engine-level mixed-workload stress
// (-race): fleet aggregates and per-meter histograms run concurrently with
// appends that keep sealing and publishing blocks. Fleet counts over a
// fixed range must never go backwards (lost publications), and the final
// quiescent result must match the per-meter merge exactly.
func TestFleetQueryDuringIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st := server.NewStore(4)
	const meters = 6
	const batches = 50
	const batchPts = 40
	tables := make([]*symbolic.Table, meters+1)
	for m := 1; m <= meters; m++ {
		tables[m] = randTable(t, rng, 4)
		if err := st.StartSession(uint64(m)); err != nil {
			t.Fatal(err)
		}
		if err := st.PushTable(uint64(m), tables[m]); err != nil {
			t.Fatal(err)
		}
	}
	e := New(st)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for m := 1; m <= meters; m++ {
		writers.Add(1)
		go func(id uint64) {
			defer writers.Done()
			table := tables[id]
			var ts int64
			for b := 0; b < batches; b++ {
				pts := make([]symbolic.SymbolPoint, batchPts)
				for i := range pts {
					pts[i] = symbolic.SymbolPoint{T: ts, S: symbolic.NewSymbol(int(ts/900)%16, 4)}
					ts += 900
				}
				if b%9 == 4 {
					ts += 4 * 900 // gap: seal + publish mid-stream
				}
				if _, err := st.Append(id, pts); err != nil {
					t.Error(err)
					return
				}
				_ = table
			}
		}(uint64(m))
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			e := New(st)
			e.SetWorkers(1 + r)
			var lastCount uint64
			var h Histogram
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := e.FleetAggregate(0, 1<<60)
				if a.Count < lastCount {
					t.Errorf("fleet count went backwards: %d -> %d", lastCount, a.Count)
					return
				}
				lastCount = a.Count
				if _, err := e.HistogramInto(&h, uint64(i%meters+1), 0, 1<<60); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	var want Agg
	for m := 1; m <= meters; m++ {
		a, ok := e.Aggregate(uint64(m), 0, 1<<60)
		if !ok {
			t.Fatalf("meter %d unknown", m)
		}
		want.merge(a)
	}
	got := e.FleetAggregate(0, 1<<60)
	if got.Count != uint64(meters*batches*batchPts) {
		t.Fatalf("final fleet count = %d, want %d", got.Count, meters*batches*batchPts)
	}
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max || relDiff(got.Sum, want.Sum) > 1e-9 {
		t.Fatalf("fleet %+v != merged per-meter %+v", got, want)
	}
}
