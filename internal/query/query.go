// Package query is the compressed-domain query engine over the server's
// packed block store: Sum, Mean, Count, Min, Max and Histogram over a time
// range [t0, t1), per meter and fleet-wide, computed without ever
// reconstructing the float stream.
//
// The paper's premise is that smart-meter analytics can run on the symbolic
// representation directly; this package is that premise as a query path.
// Four mechanisms make it fast:
//
//   - Lock-free sealed reads: every aggregate runs against the meter's
//     RCU-published sealed-block index (server.Meter.CollectRange), so
//     queries never contend with ingest for shard locks — the only lock the
//     read path ever takes is a brief one to fold the live tail block, and
//     only when the range actually reaches it.
//   - Time-directory pruning: per-meter range resolution binary-searches the
//     published firstT directory, touching O(log B + blocks in range)
//     instead of walking the whole chain.
//   - Block summaries + batched kernels: a block fully covered by the range
//     contributes its precomputed count/sum/histogram/min/max in O(1);
//     partially-covered edge blocks are gathered as spans and handed to one
//     batch kernel call per meter (internal/symbolic's SIMD-dispatched
//     histogram kernels), folded into floats once per meter rather than once
//     per block.
//   - Bounded worker pool: fleet-wide queries run a fixed pool of workers
//     (SetWorkers, default GOMAXPROCS) pulling shards from a shared cursor,
//     so query parallelism scales with cores independently of shard count
//     and never holds a shard lock across a scan.
//
// Timestamps inside a block are arithmetic (firstT + i·stride), so range
// overlap is integer division, not search.
package query

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// maxFoldLevel bounds the stack histogram used to fold partial blocks in
// one payload scan; finer levels fall back to the general aggregate walk.
const maxFoldLevel = 8

// maxHistogramLevel bounds Histogram results (4096 bins); finer alphabets
// would return impractically wide histograms.
const maxHistogramLevel = 12

// Typed query errors, distinguishable with errors.Is.
var (
	// ErrMixedLevels reports a histogram over blocks or meters whose lookup
	// tables disagree on symbol level — the bins would not be comparable.
	ErrMixedLevels = errors.New("query: histogram over mixed symbol levels")
	// ErrLevelTooFine reports a histogram at a level above maxHistogramLevel.
	ErrLevelTooFine = errors.New("query: histogram level too fine")
)

// Agg is an order-insensitive aggregate over a time range. Min and Max are
// reconstruction values and only meaningful when Count > 0.
type Agg struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count, or NaN for an empty range.
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.Count)
}

// observe folds one (min,max) value pair into the aggregate.
func (a *Agg) observe(min, max float64) {
	if a.Count == 0 || min < a.Min {
		a.Min = min
	}
	if a.Count == 0 || max > a.Max {
		a.Max = max
	}
}

// merge folds another aggregate in.
func (a *Agg) merge(b Agg) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	a.Sum += b.Sum
	a.Count += b.Count
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// Histogram is a per-symbol count distribution at a single level.
type Histogram struct {
	// Level is the symbol width; Counts has 1<<Level entries.
	Level int
	// Counts[s] is the number of stored points whose symbol index is s.
	Counts []uint64
}

// Total returns the histogram mass.
func (h *Histogram) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Engine answers compressed-domain queries against one store.
type Engine struct {
	store *server.Store
	// workers bounds fleet-query parallelism (see SetWorkers).
	workers int
}

// New returns an engine over the store with fleet parallelism bounded by
// GOMAXPROCS.
func New(store *server.Store) *Engine {
	return &Engine{store: store, workers: runtime.GOMAXPROCS(0)}
}

// SetWorkers bounds the worker pool fleet-wide queries fan out to (clamped
// to ≥ 1). Workers read published indexes lock-free, so more workers scale
// query throughput with cores instead of multiplying lock contention.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers returns the current fleet-query parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// overlap returns the index range [i0, i1) of points in v whose timestamps
// fall inside [t0, t1). Pure integer arithmetic: point i lives at
// FirstT + i·Stride.
func overlap(v server.BlockView, t0, t1 int64) (int, int) {
	if t0 >= t1 || v.N == 0 || t1 <= v.FirstT || t0 > v.LastT() {
		return 0, 0
	}
	if v.Stride == 0 { // single-point block, FirstT already known in range
		return 0, 1
	}
	i0 := 0
	if t0 > v.FirstT {
		i0 = int(ceilDiv(t0-v.FirstT, v.Stride))
	}
	i1 := v.N
	if t1 <= v.LastT() {
		i1 = int(ceilDiv(t1-v.FirstT, v.Stride)) // first index at or past t1
	}
	if i0 >= i1 {
		return 0, 0
	}
	return i0, i1
}

// ceilDiv returns ceil(a/b) for b > 0 and any a.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a > 0 {
		q++
	}
	return q
}

// foldBlock adds one block's contribution over [t0, t1) to the aggregate:
// the precomputed summary when the block is fully covered, a single kernel
// scan of the covered positions otherwise.
func foldBlock(a *Agg, v server.BlockView, t0, t1 int64) {
	i0, i1 := overlap(v, t0, t1)
	if i0 == i1 {
		return
	}
	if i0 == 0 && i1 == v.N {
		a.observe(v.MinV, v.MaxV)
		a.Count += uint64(v.N)
		a.Sum += v.Sum
		return
	}
	sum, minV, maxV := foldEdge(v, i0, i1)
	a.observe(minV, maxV)
	a.Count += uint64(i1 - i0)
	a.Sum += sum
}

// foldEdge aggregates the partially-covered positions [i0, i1) of one block
// into (sum, min, max). For histogram-friendly levels it does one kernel
// scan of the payload and an O(k) fold; finer levels walk the accumulator.
// Extremes are compared in the value domain — no monotonicity of Values in
// the symbol index is assumed.
func foldEdge(v server.BlockView, i0, i1 int) (sum, minV, maxV float64) {
	if v.Level > maxFoldLevel {
		return symbolic.PackedRangeAggregate(v.Values, v.Payload, v.Level, i0, i1)
	}
	var histBuf [1 << maxFoldLevel]uint64
	h := histBuf[:1<<uint(v.Level)]
	symbolic.PackedRangeHistogram(h, v.Payload, v.Level, i0, i1)
	first := true
	for sym, c := range h {
		if c == 0 {
			continue
		}
		val := v.Values[sym]
		sum += float64(c) * val
		if first {
			minV, maxV = val, val
			first = false
			continue
		}
		if val < minV {
			minV = val
		}
		if val > maxV {
			maxV = val
		}
	}
	return sum, minV, maxV
}

// meterScratch is the reusable per-meter gather state of the batched fold:
// the sealed views CollectRange returns, the edge spans grouped for one
// batch kernel call, and the shared histogram those spans fold into. Pooled
// so steady-state queries allocate nothing once the slices have grown to
// the working set.
type meterScratch struct {
	views []server.BlockView
	spans []symbolic.PackedSpan
	hist  []uint64
}

// scratchFree is a fixed-capacity freelist of meterScratch, not a sync.Pool:
// under the race detector sync.Pool deliberately drops a fraction of Puts,
// which would fail the AllocsPerRun pins CI runs with -race. Channel ops
// never allocate, so steady-state queries stay at zero allocations on every
// build. Capacity covers the worker-pool bound with headroom.
var scratchFree = make(chan *meterScratch, 64)

func getScratch() *meterScratch {
	select {
	case sc := <-scratchFree:
		return sc
	default:
		return new(meterScratch)
	}
}

func putScratch(sc *meterScratch) {
	select {
	case scratchFree <- sc:
	default:
	}
}

// flushSpans folds the gathered edge spans — all at the same level, under
// the same reconstruction values — into a: one batch histogram kernel call,
// one histogram→float fold. Clears the span list.
func (sc *meterScratch) flushSpans(a *Agg, level int, values []float64) {
	if len(sc.spans) == 0 {
		return
	}
	k := 1 << uint(level)
	if cap(sc.hist) < k {
		sc.hist = make([]uint64, k)
	} else {
		sc.hist = sc.hist[:k]
		clear(sc.hist)
	}
	symbolic.PackedRangeHistogramBatch(sc.hist, level, sc.spans)
	if c, s, lo, hi := symbolic.HistogramAggregate(sc.hist, values); c > 0 {
		a.observe(lo, hi)
		a.Count += c
		a.Sum += s
	}
	sc.spans = sc.spans[:0]
}

// sameValues reports whether two reconstruction-value slices are the same
// array — the cheap identity check that decides whether edge spans may share
// one histogram fold. Tables are immutable, so identity implies equality.
func sameValues(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// aggregateMeter folds one meter's [t0, t1) contribution into a using the
// batch read path: sealed views are collected lock-free (retainable — they
// are immutable), fully-covered blocks contribute their summaries, and edge
// spans are gathered per (level, table) run and folded through one batch
// histogram kernel call per run. The live tail, which must not outlive the
// shard read lock, is folded inside the collect callback exactly as the
// per-block path used to.
func (e *Engine) aggregateMeter(a *Agg, sc *meterScratch, m server.Meter, t0, t1 int64) {
	sc.views = m.CollectRange(t0, t1, sc.views[:0], func(v server.BlockView) {
		foldBlock(a, v, t0, t1)
	})
	curLevel := -1
	var curValues []float64
	for i := range sc.views {
		v := &sc.views[i]
		i0, i1 := overlap(*v, t0, t1)
		if i0 == i1 {
			continue
		}
		if i0 == 0 && i1 == v.N {
			a.observe(v.MinV, v.MaxV)
			a.Count += uint64(v.N)
			a.Sum += v.Sum
			continue
		}
		if v.Level > maxFoldLevel {
			// Too fine for a histogram: accumulator walk, straight into a.
			sum, lo, hi := symbolic.PackedRangeAggregate(v.Values, v.Payload, v.Level, i0, i1)
			a.observe(lo, hi)
			a.Count += uint64(i1 - i0)
			a.Sum += sum
			continue
		}
		if v.Level != curLevel || !sameValues(v.Values, curValues) {
			sc.flushSpans(a, curLevel, curValues)
			curLevel, curValues = v.Level, v.Values
		}
		sc.spans = append(sc.spans, symbolic.PackedSpan{Payload: v.Payload, Start: i0, End: i1})
	}
	sc.flushSpans(a, curLevel, curValues)
}

// Aggregate computes count, sum, min and max for one meter over [t0, t1) in
// a single pruned pass over the published index. ok reports whether the
// meter exists.
func (e *Engine) Aggregate(meterID uint64, t0, t1 int64) (Agg, bool) {
	m, ok := e.store.Meter(meterID)
	if !ok {
		return Agg{}, false
	}
	var a Agg
	sc := getScratch()
	e.aggregateMeter(&a, sc, m, t0, t1)
	putScratch(sc)
	return a, true
}

// Count returns the number of stored points for the meter in [t0, t1).
// Count never touches a payload: fully-covered blocks contribute their
// stored count, edge blocks pure index arithmetic.
func (e *Engine) Count(meterID uint64, t0, t1 int64) (uint64, bool) {
	m, ok := e.store.Meter(meterID)
	if !ok {
		return 0, false
	}
	var n uint64
	m.VisitRange(t0, t1, func(v server.BlockView) {
		i0, i1 := overlap(v, t0, t1)
		n += uint64(i1 - i0)
	})
	return n, true
}

// sumCount is the shared fold under Sum, Mean and the wire path's
// OpSum/OpMean: the same batched aggregate fold Aggregate runs, so Sum,
// Mean and Aggregate.Sum are bit-identical floats by construction — one
// fold, not three reimplementations that happen to agree.
func (e *Engine) sumCount(meterID uint64, t0, t1 int64) (float64, uint64, bool) {
	a, ok := e.Aggregate(meterID, t0, t1)
	return a.Sum, a.Count, ok
}

// Sum returns the sum of reconstruction values for the meter in [t0, t1),
// using block summaries and the batched histogram kernels for edges. It is
// bit-identical to Aggregate's Sum by construction (one shared fold).
func (e *Engine) Sum(meterID uint64, t0, t1 int64) (float64, bool) {
	sum, _, ok := e.sumCount(meterID, t0, t1)
	return sum, ok
}

// Mean returns the mean reconstruction value in [t0, t1); NaN when the
// range is empty.
func (e *Engine) Mean(meterID uint64, t0, t1 int64) (float64, bool) {
	sum, n, ok := e.sumCount(meterID, t0, t1)
	if !ok {
		return 0, false
	}
	if n == 0 {
		return math.NaN(), true
	}
	return sum / float64(n), true
}

// Min returns the smallest reconstruction value in [t0, t1); ok is false
// when the meter is unknown or the range holds no points.
func (e *Engine) Min(meterID uint64, t0, t1 int64) (float64, bool) {
	a, ok := e.Aggregate(meterID, t0, t1)
	return a.Min, ok && a.Count > 0
}

// Max is Min's counterpart.
func (e *Engine) Max(meterID uint64, t0, t1 int64) (float64, bool) {
	a, ok := e.Aggregate(meterID, t0, t1)
	return a.Max, ok && a.Count > 0
}

// foldHistogram adds one block's covered counts into h, growing or checking
// h.Level. Fully-covered blocks with a stored histogram are O(k); everything
// else is one kernel scan.
func foldHistogram(h *Histogram, v server.BlockView, t0, t1 int64) error {
	i0, i1 := overlap(v, t0, t1)
	if i0 == i1 {
		return nil
	}
	if v.Level > maxHistogramLevel {
		return fmt.Errorf("%w: level %d > %d", ErrLevelTooFine, v.Level, maxHistogramLevel)
	}
	if len(h.Counts) == 0 {
		h.Level = v.Level
		k := 1 << uint(v.Level)
		if cap(h.Counts) >= k {
			h.Counts = h.Counts[:k]
			clear(h.Counts)
		} else {
			h.Counts = make([]uint64, k)
		}
	} else if h.Level != v.Level {
		return fmt.Errorf("%w: %d vs %d", ErrMixedLevels, h.Level, v.Level)
	}
	if i0 == 0 && i1 == v.N && v.Hist != nil {
		for s, c := range v.Hist {
			h.Counts[s] += uint64(c)
		}
		return nil
	}
	symbolic.PackedRangeHistogram(h.Counts, v.Payload, v.Level, i0, i1)
	return nil
}

// HistogramInto computes the per-symbol distribution for one meter over
// [t0, t1) into h, reusing h.Counts' capacity — the zero-allocation form of
// Histogram for callers that poll. ok reports whether the meter exists; a
// range that covers no points leaves h.Counts empty.
func (e *Engine) HistogramInto(h *Histogram, meterID uint64, t0, t1 int64) (bool, error) {
	h.Level = 0
	h.Counts = h.Counts[:0]
	m, ok := e.store.Meter(meterID)
	if !ok {
		return false, nil
	}
	sc := getScratch()
	err := histogramMeter(h, sc, m, t0, t1)
	putScratch(sc)
	return true, err
}

// histogramMeter folds one meter's [t0, t1) distribution into h over the
// batch read path: the tail inside the collect callback, sealed views from
// the collected slice. Fold order matches the aggregate path; counts are
// integers, so order never shows in the result.
func histogramMeter(h *Histogram, sc *meterScratch, m server.Meter, t0, t1 int64) error {
	var ferr error
	sc.views = m.CollectRange(t0, t1, sc.views[:0], func(v server.BlockView) {
		ferr = foldHistogram(h, v, t0, t1)
	})
	for i := range sc.views {
		if ferr != nil {
			return ferr
		}
		ferr = foldHistogram(h, sc.views[i], t0, t1)
	}
	return ferr
}

// Histogram computes the per-symbol distribution for one meter over [t0, t1).
func (e *Engine) Histogram(meterID uint64, t0, t1 int64) (Histogram, bool, error) {
	var h Histogram
	ok, err := e.HistogramInto(&h, meterID, t0, t1)
	if err != nil {
		return Histogram{}, ok, err
	}
	return h, ok, nil
}

// forMeters runs fold over every meter handle in the store through a
// bounded pool of nw workers pulling shards from a shared cursor. fold runs
// on worker w for each meter; meters of one shard are processed by a single
// worker, different shards land on different workers as they free up. This
// is pure read-side fan-out: no shard lock is held across any of it (each
// VisitRange inside fold locks at most briefly, for its own live tail).
func (e *Engine) forMeters(nw int, fold func(w int, m server.Meter)) {
	shards := e.store.NumShards()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= shards {
					return
				}
				for _, m := range e.store.ShardMeters(i) {
					fold(w, m)
				}
			}
		}(w)
	}
	wg.Wait()
}

// poolSize clamps the configured worker bound to the shard count (a worker
// per shard is the maximum useful fan-out for shard-granular work items).
func (e *Engine) poolSize() int {
	nw := e.workers
	if n := e.store.NumShards(); nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// FleetAggregate computes count/sum/min/max across every meter in [t0, t1)
// on the bounded worker pool, reading published indexes lock-free and
// merging per-worker partials. Each worker folds meters through the batched
// read path with one reused scratch — the per-block visitor closures the
// fleet fold used to rebuild per meter are gone.
func (e *Engine) FleetAggregate(t0, t1 int64) Agg {
	nw := e.poolSize()
	partials := make([]Agg, nw)
	scratches := make([]*meterScratch, nw)
	for i := range scratches {
		scratches[i] = getScratch()
	}
	e.forMeters(nw, func(w int, m server.Meter) {
		e.aggregateMeter(&partials[w], scratches[w], m, t0, t1)
	})
	var out Agg
	for i := range partials {
		out.merge(partials[i])
		putScratch(scratches[i])
	}
	return out
}

// FleetSum returns the fleet-wide sum and count over [t0, t1): the same
// batched fold as FleetAggregate, exposed in the shape the wire path's
// fleet opcodes serialize.
func (e *Engine) FleetSum(t0, t1 int64) (float64, uint64) {
	a := e.FleetAggregate(t0, t1)
	return a.Sum, a.Count
}

// FleetHistogram computes the fleet-wide per-symbol distribution over
// [t0, t1) on the bounded worker pool. All covered blocks must share one
// level.
func (e *Engine) FleetHistogram(t0, t1 int64) (Histogram, error) {
	nw := e.poolSize()
	partials := make([]Histogram, nw)
	errs := make([]error, nw)
	scratches := make([]*meterScratch, nw)
	for i := range scratches {
		scratches[i] = getScratch()
	}
	e.forMeters(nw, func(w int, m server.Meter) {
		if errs[w] != nil {
			return
		}
		errs[w] = histogramMeter(&partials[w], scratches[w], m, t0, t1)
	})
	for i := range scratches {
		putScratch(scratches[i])
	}
	var out Histogram
	for i := 0; i < nw; i++ {
		if errs[i] != nil {
			return Histogram{}, errs[i]
		}
		p := &partials[i]
		if len(p.Counts) == 0 {
			continue
		}
		if out.Counts == nil {
			out.Level = p.Level
			out.Counts = make([]uint64, len(p.Counts))
		} else if out.Level != p.Level {
			return Histogram{}, fmt.Errorf("%w: %d vs %d", ErrMixedLevels, out.Level, p.Level)
		}
		for s, c := range p.Counts {
			out.Counts[s] += c
		}
	}
	return out, nil
}
