package query

import (
	"math"
	"testing"

	"symmeter/internal/server"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
)

// Cold-read path: queries over blocks whose payloads were spilled to
// segment files and adopted back as mmapped regions must run through the
// same packed kernels with the same zero-allocation, lock-free
// properties as heap-resident sealed blocks — the BlockView contract does
// not care where the bytes live.

// coldFixture ingests enough regular data through a persistent engine to
// seal (and therefore spill) several blocks per meter, returning the engine
// plus an identically-fed in-memory store as the oracle.
func coldFixture(t *testing.T) (*storage.Engine, *server.Store, string) {
	t.Helper()
	dir := t.TempDir()
	eng, err := storage.Open(storage.Options{Dir: dir, Shards: 4, Sync: storage.SyncOff, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	mem := server.NewStore(4)
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, ing := range []server.Ingest{eng, mem} {
		for m := uint64(1); m <= 4; m++ {
			if err := ing.StartSession(m); err != nil {
				t.Fatal(err)
			}
			if err := ing.PushTable(m, table); err != nil {
				t.Fatal(err)
			}
			pts := make([]symbolic.SymbolPoint, 96)
			var ts int64
			for batch := 0; batch < 40; batch++ { // ~7.5 sealed blocks each
				for j := range pts {
					v := float64((int(m)*31 + batch*97 + j*13) % 4000)
					pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(v)}
					ts += 900
				}
				if _, err := ing.Append(m, pts); err != nil {
					t.Fatal(err)
				}
			}
			ing.EndSession(m)
		}
	}
	return eng, mem, dir
}

// TestColdQueryMatchesResident pins byte-identical results between the
// mmap-backed store and its in-memory twin across every aggregate, on
// ranges that hit summaries, edge kernels and the live tail.
func TestColdQueryMatchesResident(t *testing.T) {
	eng, mem, _ := coldFixture(t)
	cold, warm := New(eng.Store()), New(mem)
	windows := [][2]int64{
		{0, math.MaxInt64},
		{7 * 900, (3*server.BlockCap + 100) * 900},
		{(server.BlockCap + 13) * 900, (2*server.BlockCap - 9) * 900},
	}
	for m := uint64(1); m <= 4; m++ {
		for _, win := range windows {
			ca, _ := cold.Aggregate(m, win[0], win[1])
			wa, _ := warm.Aggregate(m, win[0], win[1])
			if ca.Count != wa.Count ||
				math.Float64bits(ca.Sum) != math.Float64bits(wa.Sum) ||
				math.Float64bits(ca.Min) != math.Float64bits(wa.Min) ||
				math.Float64bits(ca.Max) != math.Float64bits(wa.Max) {
				t.Fatalf("meter %d window %v: cold %+v, warm %+v", m, win, ca, wa)
			}
			cs, _ := cold.Sum(m, win[0], win[1])
			ws, _ := warm.Sum(m, win[0], win[1])
			if math.Float64bits(cs) != math.Float64bits(ws) {
				t.Fatalf("meter %d window %v: cold sum %v, warm %v", m, win, cs, ws)
			}
			var ch, wh Histogram
			if _, err := cold.HistogramInto(&ch, m, win[0], win[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.HistogramInto(&wh, m, win[0], win[1]); err != nil {
				t.Fatal(err)
			}
			for s := range wh.Counts {
				if ch.Counts[s] != wh.Counts[s] {
					t.Fatalf("meter %d window %v symbol %d: cold %d, warm %d", m, win, s, ch.Counts[s], wh.Counts[s])
				}
			}
		}
	}
	caf := cold.FleetAggregate(0, math.MaxInt64)
	waf := warm.FleetAggregate(0, math.MaxInt64)
	if caf.Count != waf.Count || math.Float64bits(caf.Sum) != math.Float64bits(waf.Sum) {
		t.Fatalf("fleet: cold %+v, warm %+v", caf, waf)
	}
}

// TestColdQueryZeroAllocAndLockFree is the acceptance pin for the
// mmap-backed range path: a pruned aggregate over spilled blocks takes zero
// allocations and zero shard-lock acquisitions, exactly like the resident
// sealed path it replaced.
func TestColdQueryZeroAllocAndLockFree(t *testing.T) {
	eng, _, _ := coldFixture(t)
	st := eng.Store()
	e := New(st)
	m, ok := st.Meter(2)
	if !ok {
		t.Fatal("meter unknown")
	}
	if m.SealedBlocks() < 3 {
		t.Fatalf("fixture sealed only %d blocks", m.SealedBlocks())
	}
	tailT, ok := m.LiveTailStart()
	if !ok {
		t.Fatal("no live tail")
	}
	const w = 900
	t0, t1 := int64(server.BlockCap+7)*w, int64(2*server.BlockCap+90)*w // cuts inside spilled blocks
	if t1 >= tailT {
		t.Fatalf("range end %d reaches tail start %d", t1, tailT)
	}
	before := st.QueryLockAcquisitions()
	coldRange := func() {
		if a, ok := e.Aggregate(2, t0, t1); !ok || a.Count == 0 {
			t.Fatal("bad cold aggregate")
		}
		if s, ok := e.Sum(2, t0, t1); !ok || s == 0 {
			t.Fatal("bad cold sum")
		}
	}
	if a := testing.AllocsPerRun(100, coldRange); a != 0 {
		t.Fatalf("mmap-backed range query allocates %.1f times per run, want 0", a)
	}
	var h Histogram
	coldHist := func() {
		if _, err := e.HistogramInto(&h, 2, t0, t1); err != nil {
			t.Fatal(err)
		}
	}
	coldHist()
	if a := testing.AllocsPerRun(100, coldHist); a != 0 {
		t.Fatalf("mmap-backed histogram allocates %.1f times per run, want 0", a)
	}
	if got := st.QueryLockAcquisitions(); got != before {
		t.Fatalf("cold sealed queries took %d shard locks, want 0", got-before)
	}
}

// TestColdQueryAfterRecovery runs the same pins over a store rebuilt by
// crash recovery, whose sealed payloads alias freshly-mapped finished
// segments rather than the writer's own mapping.
func TestColdQueryAfterRecovery(t *testing.T) {
	eng, mem, dir := coldFixture(t)
	if err := eng.Flush(); err != nil { // finish segments so recovery restores from footers
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := storage.Open(storage.Options{Dir: dir, Shards: 4, Sync: storage.SyncOff, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	if re.Recovery().SegmentPoints == 0 {
		t.Fatal("recovery restored nothing from segments")
	}
	cold, warm := New(re.Store()), New(mem)
	for m := uint64(1); m <= 4; m++ {
		ca, _ := cold.Aggregate(m, 0, math.MaxInt64)
		wa, _ := warm.Aggregate(m, 0, math.MaxInt64)
		if ca.Count != wa.Count || math.Float64bits(ca.Sum) != math.Float64bits(wa.Sum) {
			t.Fatalf("meter %d: recovered %+v, oracle %+v", m, ca, wa)
		}
	}
	pin := func() {
		if a, ok := cold.Aggregate(3, int64(server.BlockCap+5)*900, int64(2*server.BlockCap)*900); !ok || a.Count == 0 {
			t.Fatal("bad recovered cold aggregate")
		}
	}
	if a := testing.AllocsPerRun(100, pin); a != 0 {
		t.Fatalf("recovered cold query allocates %.1f times per run, want 0", a)
	}
}
