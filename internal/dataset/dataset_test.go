package dataset

import (
	"math"
	"testing"

	"symmeter/internal/stats"
	"symmeter/internal/timeseries"
)

func TestDeterminism(t *testing.T) {
	a := New(Config{Seed: 42, Days: 3}).HouseDay(0, 1)
	b := New(Config{Seed: 42, Days: 3}).HouseDay(0, 1)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	a := New(Config{Seed: 1, DisableGaps: true}).HouseDay(0, 0)
	b := New(Config{Seed: 2, DisableGaps: true}).HouseDay(0, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Points[i].V == b.Points[i].V {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds should give different data, %d/1000 equal", same)
	}
}

func TestFullCoverageWithoutGaps(t *testing.T) {
	g := New(Config{Seed: 7, DisableGaps: true})
	day := g.HouseDay(2, 0)
	if day.Len() != timeseries.SecondsPerDay {
		t.Fatalf("Len = %d, want %d", day.Len(), timeseries.SecondsPerDay)
	}
	if day.Start() != 0 || day.End() != timeseries.SecondsPerDay-1 {
		t.Fatalf("range [%d,%d]", day.Start(), day.End())
	}
}

func TestDayTimestampsOffset(t *testing.T) {
	g := New(Config{Seed: 7, DisableGaps: true})
	day3 := g.HouseDay(0, 3)
	if day3.Start() != 3*timeseries.SecondsPerDay {
		t.Fatalf("day 3 starts at %d", day3.Start())
	}
}

func TestValuesPositive(t *testing.T) {
	g := New(Config{Seed: 9, DisableGaps: true})
	for h := 0; h < g.Houses(); h++ {
		day := g.HouseDay(h, 0)
		for _, p := range day.Points[:1000] {
			if p.V <= 0 || math.IsNaN(p.V) || math.IsInf(p.V, 0) {
				t.Fatalf("house %d: bad value %v", h, p.V)
			}
		}
	}
}

func TestMainsSumToTotal(t *testing.T) {
	g := New(Config{Seed: 3})
	m0, m1 := g.MainsDay(1, 2)
	total := g.HouseDay(1, 2)
	sum := timeseries.Sum("check", m0, m1)
	if sum.Len() != total.Len() {
		t.Fatalf("lengths: %d vs %d", sum.Len(), total.Len())
	}
	for i := range sum.Points {
		if math.Abs(sum.Points[i].V-total.Points[i].V) > 1e-9 {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestHousesAreDistinctiveInShape(t *testing.T) {
	// Houses must be tellable apart by their *rhythm*: the normalised mean
	// hourly profile of a house should be closer to the same house on other
	// days than to any other house. Levels deliberately overlap (day-to-day
	// occupancy swings), mirroring REDD, where classification hinges on
	// usage patterns rather than absolute consumption.
	g := New(Config{Seed: 5, DisableGaps: true})

	// profile averages the hourly loads of weekdays [d0, d1) and normalises
	// by its own mean, removing level.
	profile := func(h, d0, d1 int) []float64 {
		prof := make([]float64, 24)
		n := 0
		for d := d0; d < d1; d++ {
			day := g.HouseDay(h, d).Resample(3600)
			for i, p := range day.Points {
				prof[i%24] += p.V
			}
			n++
		}
		var mean float64
		for i := range prof {
			prof[i] /= float64(n)
			mean += prof[i]
		}
		mean /= 24
		for i := range prof {
			prof[i] /= mean
		}
		return prof
	}
	l1 := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}

	// Weekdays only (day 0 is a Monday): split Mon/Tue vs Wed/Thu.
	within := make([]float64, g.Houses())
	full := make([][]float64, g.Houses())
	for h := 0; h < g.Houses(); h++ {
		within[h] = l1(profile(h, 0, 2), profile(h, 2, 4))
		full[h] = profile(h, 0, 4)
	}
	good := 0
	pairs := 0
	for i := 0; i < g.Houses(); i++ {
		for j := i + 1; j < g.Houses(); j++ {
			pairs++
			between := l1(full[i], full[j])
			if between > within[i] && between > within[j] {
				good++
			}
		}
	}
	if good < pairs*2/3 {
		t.Fatalf("only %d/%d house pairs are shape-distinct (within=%v)", good, pairs, within)
	}
}

func TestDiurnalStructure(t *testing.T) {
	// Evening (18-22h) load should exceed small-hours (1-5h) load on average
	// over a week, for most houses.
	g := New(Config{Seed: 11, DisableGaps: true})
	ok := 0
	for h := 0; h < g.Houses(); h++ {
		var evening, night float64
		for d := 0; d < 7; d++ {
			day := g.HouseDay(h, d)
			evening += day.Slice(day.Start()+18*3600, day.Start()+22*3600).Summary().Mean
			night += day.Slice(day.Start()+1*3600, day.Start()+5*3600).Summary().Mean
		}
		if evening > night {
			ok++
		}
	}
	if ok < g.Houses()-1 {
		t.Fatalf("only %d/%d houses show diurnal structure", ok, g.Houses())
	}
}

func TestLogNormalMarginal(t *testing.T) {
	// Fig. 2: the distribution of power levels is right-skewed like a
	// log-normal: mean > median, and the log-values should have modest
	// skewness compared to raw values.
	g := New(Config{Seed: 13, DisableGaps: true})
	vals := g.HouseDay(0, 0).Values()
	mean, median := stats.Mean(vals), stats.Median(vals)
	if !(mean > median) {
		t.Fatalf("expected right skew: mean %v <= median %v", mean, median)
	}
	// Skewness of logs should be much smaller than skewness of raw values.
	if skew(logs(vals)) >= skew(vals) {
		t.Fatalf("log skew %v >= raw skew %v", skew(logs(vals)), skew(vals))
	}
}

func logs(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, math.Log(x))
		}
	}
	return out
}

func skew(xs []float64) float64 {
	m, s := stats.Mean(xs), stats.StdDev(xs)
	var sum float64
	for _, x := range xs {
		d := (x - m) / s
		sum += d * d * d
	}
	return sum / float64(len(xs))
}

func TestGapsOccur(t *testing.T) {
	g := New(Config{Seed: 17, Days: 30})
	sawGap := false
	for d := 0; d < 30 && !sawGap; d++ {
		day := g.HouseDay(0, d)
		if int64(day.Len()) < timeseries.SecondsPerDay {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatal("no gaps in 30 days with gaps enabled")
	}
}

func TestHouse5IsGappy(t *testing.T) {
	// House index 4 must fail the paper's 20 h coverage threshold far more
	// often than the others, so forecasting can skip it like the paper does.
	g := New(Config{Seed: 19, Days: 20})
	badDays := func(h int) int {
		bad := 0
		for d := 0; d < g.Days(); d++ {
			if int64(g.HouseDay(h, d).Len()) < 20*3600 {
				bad++
			}
		}
		return bad
	}
	b4 := badDays(4)
	b0 := badDays(0)
	if b4 <= b0 || b4 < g.Days()/2 {
		t.Fatalf("house5 bad days = %d, house1 = %d; want house5 chronically gappy", b4, b0)
	}
}

func TestWeekendDiffersFromWeekday(t *testing.T) {
	// Morning (7-9h) weekend load pattern differs from weekday: cooking and
	// lighting shift late. Compare averaged morning load over several weeks.
	g := New(Config{Seed: 23, DisableGaps: true})
	var wd, we, wdN, weN float64
	for d := 0; d < 21; d++ {
		day := g.HouseDay(1, d)
		m := day.Slice(day.Start()+7*3600, day.Start()+9*3600).Summary().Mean
		if weekend(d) {
			we += m
			weN++
		} else {
			wd += m
			wdN++
		}
	}
	if wdN == 0 || weN == 0 {
		t.Fatal("need both weekdays and weekends in 21 days")
	}
	if math.Abs(wd/wdN-we/weN) < 1 {
		t.Fatalf("weekday %v vs weekend %v morning load suspiciously identical", wd/wdN, we/weN)
	}
}

func TestHouseRangeAndResampled(t *testing.T) {
	g := New(Config{Seed: 29, DisableGaps: true})
	s := g.House(0, 0, 2)
	if s.Len() != 2*timeseries.SecondsPerDay {
		t.Fatalf("Len = %d", s.Len())
	}
	r := g.HouseResampled(0, 0, 2, 3600)
	if r.Len() != 48 {
		t.Fatalf("resampled Len = %d, want 48", r.Len())
	}
	// Resampled-on-the-fly must equal resample-after-concatenation.
	r2 := s.Resample(3600)
	for i := range r.Points {
		if math.Abs(r.Points[i].V-r2.Points[i].V) > 1e-9 {
			t.Fatalf("resample mismatch at %d: %v vs %v", i, r.Points[i], r2.Points[i])
		}
	}
}

func TestHouseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for house out of range")
		}
	}()
	New(Config{}).HouseDay(99, 0)
}

func TestConfigDefaults(t *testing.T) {
	g := New(Config{})
	if g.Houses() != 6 || g.Days() != 30 {
		t.Fatalf("defaults = %d houses, %d days", g.Houses(), g.Days())
	}
}
