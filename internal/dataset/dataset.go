// Package dataset generates a synthetic smart-meter dataset standing in for
// REDD (Kolter & Johnson, 2011), which the paper evaluates on but which is
// not redistributable. The generator reproduces the properties the paper's
// experiments depend on:
//
//   - 1 Hz house-level power, obtained by summing two mains channels;
//   - log-normal marginal distribution of power levels (paper Fig. 2);
//   - strong diurnal structure (day/night) and weekday/weekend variation;
//   - per-house distinctive appliance fleets and consumption levels, so that
//     day-vectors are classifiable by house;
//   - missing-data gaps, with one chronically gappy house (the paper skips
//     house 5 in forecasting "because there is not enough data").
//
// Generation is deterministic: (Seed, house, day) fully determine a day of
// data, so experiments are reproducible and days can be generated lazily
// without holding months of 1 Hz data in memory.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"symmeter/internal/timeseries"
)

// DefaultHouses is the number of houses in REDD and in the default config.
const DefaultHouses = 6

// SecondsPerDay mirrors timeseries.SecondsPerDay for local arithmetic.
const secondsPerDay = timeseries.SecondsPerDay

// Config parameterises the generator.
type Config struct {
	// Houses is the number of houses to simulate (default 6, like REDD).
	Houses int
	// Days is the number of days available per house (default 30).
	Days int
	// Seed makes the whole dataset deterministic.
	Seed int64
	// DisableGaps turns off missing-data simulation (useful in tests).
	DisableGaps bool
	// SeasonalAmplitude adds a slow sinusoidal modulation of the
	// weather-driven loads (HVAC) with the given relative amplitude
	// (0 disables it; 0.8 swings HVAC intensity by ±80% over a season).
	// This supports the paper's §4 seasonal-change study (the Irish CER
	// direction) and the adaptive lookup-table extension.
	SeasonalAmplitude float64
	// SeasonalPeriodDays is the season length (default 90 days).
	SeasonalPeriodDays int
	// ShiftDay, when positive, applies a lasting consumption change from
	// that day on — the paper's §4 "having an additional family member"
	// scenario for on-the-fly table modification.
	ShiftDay int
	// ShiftFactor scales the household's loads from ShiftDay on
	// (default 2 when ShiftDay is set).
	ShiftFactor float64
}

func (c Config) withDefaults() Config {
	if c.Houses <= 0 {
		c.Houses = DefaultHouses
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	if c.SeasonalPeriodDays <= 0 {
		c.SeasonalPeriodDays = 90
	}
	if c.ShiftDay > 0 && c.ShiftFactor <= 0 {
		c.ShiftFactor = 2
	}
	return c
}

// Generator produces the synthetic dataset.
type Generator struct {
	cfg      Config
	profiles []houseProfile
}

// New builds a generator; house profiles are drawn deterministically from
// cfg.Seed so the same seed always yields the same houses.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg}
	for h := 0; h < cfg.Houses; h++ {
		g.profiles = append(g.profiles, newHouseProfile(rand.New(rand.NewSource(mix(cfg.Seed, int64(h), -1)))))
	}
	// House index 4 ("house 5") is chronically gappy, mirroring REDD.
	if cfg.Houses >= 5 {
		g.profiles[4].gapProb = 0.95
		g.profiles[4].longGapProb = 0.8
	}
	return g
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// Houses returns the number of houses.
func (g *Generator) Houses() int { return g.cfg.Houses }

// Days returns the number of days per house.
func (g *Generator) Days() int { return g.cfg.Days }

// mix combines seed components into a new seed (splitmix64 finalizer).
func mix(parts ...int64) int64 {
	var z uint64 = 0x9E3779B97F4A7C15
	for _, p := range parts {
		z ^= uint64(p) * 0xBF58476D1CE4E5B9
		z ^= z >> 30
		z *= 0x94D049BB133111EB
		z ^= z >> 31
	}
	return int64(z & math.MaxInt64)
}

// appliance kinds.
type applianceKind int

const (
	kindStandby applianceKind = iota
	kindFridge
	kindHVAC
	kindLighting
	kindCooking
	kindLaundry
	kindKettle
	// kindRoutine is a timer-driven load (water heater, pool pump) firing at
	// fixed house-specific hours every day: the strong per-house temporal
	// signature that makes day-vectors classifiable by shape, not just level.
	kindRoutine
	// kindSpike is a rare very-high-power event (electric oven, dryer
	// element): it stretches the observed value range far beyond the bulk of
	// the distribution, which is what makes *uniform* separators waste most
	// symbols on nearly-empty bins (the paper's Fig. 2 log-normal tail).
	kindSpike
)

// appliance is one load in a house, assigned to a mains phase.
type appliance struct {
	kind  applianceKind
	phase int     // which mains channel (0 or 1) carries this load
	power float64 // nominal on-power in watts

	// Kind-specific parameters.
	onDur, offDur int       // fridge duty cycle (seconds)
	startHour     float64   // lighting/cooking anchor hour
	spanHours     float64   // lighting span
	eventsPerDay  float64   // kettle events
	dailyProb     float64   // laundry/HVAC engagement probability
	routineHours  []float64 // kindRoutine fire times (hours)
	routineDur    float64   // kindRoutine duration (hours)
}

// houseProfile is the set of appliances plus gap behaviour for one house.
type houseProfile struct {
	appliances  []appliance
	gapProb     float64 // probability a day contains any gap
	longGapProb float64 // probability a gappy day contains a >4 h outage
	noiseSigma  float64 // per-second multiplicative log-noise
}

// newHouseProfile draws a distinctive house. The parameter ranges are wide on
// purpose: classification in the paper works because houses differ in level
// and rhythm, and uses that contrast.
func newHouseProfile(rng *rand.Rand) houseProfile {
	// Houses differ strongly in scale (REDD-like), but the per-day
	// occupancy factor below swings each house's level by more than the
	// between-house gaps, so absolute level alone is a weak fingerprint —
	// the regime in which per-house quantile tables beat both raw values
	// and a single global table (paper Figs. 5–7).
	scale := 0.5 + rng.Float64()*2.0
	p := houseProfile{
		gapProb:     0.15 + rng.Float64()*0.15,
		longGapProb: 0.08,
		noiseSigma:  0.08 + rng.Float64()*0.10,
	}
	add := func(a appliance) { p.appliances = append(p.appliances, a) }

	add(appliance{kind: kindStandby, phase: 0,
		power: (60 + rng.Float64()*140) * scale})
	add(appliance{kind: kindFridge, phase: rng.Intn(2),
		power: (90 + rng.Float64()*110) * scale,
		onDur: 600 + rng.Intn(900), offDur: 1200 + rng.Intn(1800)})
	// Every house heats/cools something; sizes differ wildly. (Seasonal
	// modulation acts on this load, so it must exist everywhere.)
	add(appliance{kind: kindHVAC, phase: rng.Intn(2),
		power:     (400 + rng.Float64()*1600) * scale,
		dailyProb: 0.4 + rng.Float64()*0.5,
		onDur:     900 + rng.Intn(1800), offDur: 900 + rng.Intn(2700)})
	add(appliance{kind: kindLighting, phase: rng.Intn(2),
		power:     (80 + rng.Float64()*320) * scale,
		startHour: 16.5 + rng.Float64()*3.5, spanHours: 4 + rng.Float64()*3})
	add(appliance{kind: kindCooking, phase: rng.Intn(2),
		power:     (900 + rng.Float64()*1600) * scale,
		startHour: 17.5 + rng.Float64()*2.5})
	add(appliance{kind: kindLaundry, phase: rng.Intn(2),
		power:     (400 + rng.Float64()*1400) * scale,
		dailyProb: 0.15 + rng.Float64()*0.3})
	add(appliance{kind: kindKettle, phase: rng.Intn(2),
		power:        (800 + rng.Float64()*1400) * scale,
		eventsPerDay: 2 + rng.Float64()*8})
	// Two timer loads at house-specific fixed hours (e.g. water heater at
	// 05:40 and 21:10): the dominant shape signature.
	add(appliance{kind: kindRoutine, phase: rng.Intn(2),
		power:        (1000 + rng.Float64()*1500) * scale,
		routineHours: []float64{4 + rng.Float64()*4, 19 + rng.Float64()*4},
		routineDur:   0.5 + rng.Float64()*0.75})
	// Oven / dryer element: rare but huge, defining the range's far tail.
	add(appliance{kind: kindSpike, phase: rng.Intn(2),
		power:     (3500 + rng.Float64()*3000) * scale,
		dailyProb: 0.25 + rng.Float64()*0.25})
	return p
}

// weekend reports whether day index d is a Saturday/Sunday under the
// convention that day 0 is a Monday.
func weekend(d int) bool { m := d % 7; return m == 5 || m == 6 }

// HouseDay generates one day of 1 Hz total-load data for house h, day d,
// including gaps. Timestamps run [d*86400, (d+1)*86400).
func (g *Generator) HouseDay(h, d int) *timeseries.Series {
	m0, m1 := g.MainsDay(h, d)
	return timeseries.Sum(fmt.Sprintf("house%d", h+1), m0, m1)
}

// MainsDay generates the two mains channels for house h, day d. The paper
// uses "the total power consumption of the house, by summing the two main
// power time series"; exposing the channels separately lets tests and
// examples exercise that step.
func (g *Generator) MainsDay(h, d int) (*timeseries.Series, *timeseries.Series) {
	if h < 0 || h >= g.cfg.Houses {
		panic(fmt.Sprintf("dataset: house %d out of range [0,%d)", h, g.cfg.Houses))
	}
	prof := g.profiles[h]
	rng := rand.New(rand.NewSource(mix(g.cfg.Seed, int64(h), int64(d))))

	// Per-day occupancy/weather factor: variable loads swing by ±50% day to
	// day, like real households. This makes the daily *level* an unreliable
	// house fingerprint while the timer-driven *rhythms* stay stable — the
	// regime in which the paper's per-house quantile tables beat a single
	// global table (Fig. 7).
	dayFactor := math.Exp(rng.NormFloat64() * 0.45)
	if dayFactor < 0.35 {
		dayFactor = 0.35
	}
	if dayFactor > 2.8 {
		dayFactor = 2.8
	}

	// Per-phase load arrays for the day.
	var load [2][]float64
	load[0] = make([]float64, secondsPerDay)
	load[1] = make([]float64, secondsPerDay)
	// Standby drifts independently (chargers and gadgets come and go): a
	// stable night-time level would otherwise be an unrealistically clean
	// house fingerprint for raw-value classifiers.
	standbyFactor := math.Exp(rng.NormFloat64() * 0.25)

	// Seasonal modulation of weather-driven load (§4 seasonal change).
	season := 1.0
	if g.cfg.SeasonalAmplitude > 0 {
		season = 1 + g.cfg.SeasonalAmplitude*
			math.Sin(2*math.Pi*float64(d)/float64(g.cfg.SeasonalPeriodDays))
		if season < 0.05 {
			season = 0.05
		}
	}
	// Structural occupancy change (§4 "additional family member"): a
	// lasting multiplicative shift of the whole household from ShiftDay on.
	shift := 1.0
	if g.cfg.ShiftDay > 0 && d >= g.cfg.ShiftDay {
		shift = g.cfg.ShiftFactor
	}

	for _, a := range prof.appliances {
		scaled := a
		switch a.kind {
		case kindHVAC:
			scaled.power *= dayFactor * season
		case kindLighting:
			// Darker season, more lighting: a milder seasonal coupling.
			scaled.power *= dayFactor * (1 + 0.3*(season-1))
		case kindCooking, kindLaundry, kindKettle:
			scaled.power *= dayFactor
		case kindStandby:
			scaled.power *= standbyFactor
		}
		scaled.power *= shift
		addLoad(load[scaled.phase], scaled, rng, weekend(d))
	}

	// Multiplicative log-normal flicker gives the log-normal-ish marginal
	// (Fig. 2) and the fine-grained fluctuation residential load shows.
	sigma := prof.noiseSigma
	for p := 0; p < 2; p++ {
		for i := range load[p] {
			load[p][i] *= math.Exp(sigma * rng.NormFloat64())
		}
	}

	// Gaps: drop the same seconds from both phases (the meter is one device).
	var missing []bool
	if !g.cfg.DisableGaps {
		missing = gapMask(prof, rng)
	}

	start := int64(d) * secondsPerDay
	mk := func(p int) *timeseries.Series {
		pts := make([]timeseries.Point, 0, secondsPerDay)
		for i := 0; i < secondsPerDay; i++ {
			if missing != nil && missing[i] {
				continue
			}
			pts = append(pts, timeseries.Point{T: start + int64(i), V: load[p][i]})
		}
		return timeseries.MustNew(fmt.Sprintf("house%d/mains%d", h+1, p+1), pts)
	}
	return mk(0), mk(1)
}

// gapMask returns a per-second missing mask for the day, or nil when the day
// has no gaps.
func gapMask(prof houseProfile, rng *rand.Rand) []bool {
	if rng.Float64() >= prof.gapProb {
		return nil
	}
	mask := make([]bool, secondsPerDay)
	nGaps := 1 + rng.Intn(3)
	for i := 0; i < nGaps; i++ {
		dur := 120 + rng.Intn(1800) // 2 min .. 32 min
		begin := rng.Intn(secondsPerDay - dur)
		for s := begin; s < begin+dur; s++ {
			mask[s] = true
		}
	}
	if rng.Float64() < prof.longGapProb {
		dur := 4*3600 + rng.Intn(10*3600) // 4 h .. 14 h outage
		begin := rng.Intn(secondsPerDay - dur)
		for s := begin; s < begin+dur; s++ {
			mask[s] = true
		}
	}
	return mask
}

// addLoad renders one appliance's contribution into the per-second array.
func addLoad(load []float64, a appliance, rng *rand.Rand, isWeekend bool) {
	switch a.kind {
	case kindStandby:
		for i := range load {
			load[i] += a.power
		}
	case kindFridge:
		period := a.onDur + a.offDur
		phase := rng.Intn(period)
		for i := range load {
			if (i+phase)%period < a.onDur {
				load[i] += a.power
			}
		}
	case kindHVAC:
		// Engaged every day at a weather-like varying intensity — day-to-day
		// variation without the all-or-nothing swings that would make two
		// days of history unrepresentative (the paper's Fig. 4 shows the
		// statistics converging within a day).
		intensity := a.dailyProb * (0.5 + rng.Float64()*0.5)
		period := a.onDur + a.offDur
		phase := rng.Intn(period)
		for i := range load {
			hour := float64(i) / 3600
			duty := float64(a.onDur) * intensity
			if hour >= 8 && hour < 17 && !isWeekend {
				duty /= 2 // nobody home on weekdays
			}
			if float64((i+phase)%period) < duty {
				load[i] += a.power
			}
		}
	case kindLighting:
		start := a.startHour + rng.NormFloat64()*0.25
		span := a.spanHours + rng.NormFloat64()*0.5
		if isWeekend {
			span += 1.0 // later evenings
		}
		paint(load, start, start+span, a.power)
		// Morning lights.
		mStart := 6.5 + rng.NormFloat64()*0.3
		if isWeekend {
			mStart += 1.5 // sleeping in
		}
		paint(load, mStart, mStart+1.0, a.power*0.6)
	case kindCooking:
		// Dinner nearly every day; breakfast/lunch events with weekend shift.
		dinner := a.startHour + rng.NormFloat64()*0.3
		paint(load, dinner, dinner+0.4+rng.Float64()*0.4, a.power)
		if rng.Float64() < 0.7 {
			b := 7.0 + rng.NormFloat64()*0.3
			if isWeekend {
				b += 1.8
			}
			paint(load, b, b+0.2+rng.Float64()*0.2, a.power*0.7)
		}
		if isWeekend && rng.Float64() < 0.6 {
			l := 12.5 + rng.NormFloat64()*0.5
			paint(load, l, l+0.3+rng.Float64()*0.3, a.power*0.8)
		}
	case kindLaundry:
		prob := a.dailyProb
		if isWeekend {
			prob *= 2
		}
		if rng.Float64() < prob {
			start := 9 + rng.Float64()*9
			paint(load, start, start+1+rng.Float64(), a.power)
		}
	case kindKettle:
		n := poisson(rng, a.eventsPerDay)
		for i := 0; i < n; i++ {
			start := 6.5 + rng.Float64()*16 // waking hours
			paint(load, start, start+float64(60+rng.Intn(240))/3600, a.power)
		}
	case kindRoutine:
		for _, h := range a.routineHours {
			start := h + rng.NormFloat64()*0.05 // timers are punctual
			paint(load, start, start+a.routineDur, a.power)
		}
	case kindSpike:
		if rng.Float64() >= a.dailyProb {
			return
		}
		events := 1 + rng.Intn(2)
		for i := 0; i < events; i++ {
			start := 8 + rng.Float64()*13 // daytime use
			paint(load, start, start+0.25+rng.Float64()*0.5, a.power)
		}
	}
}

// paint adds power to load for the half-open hour interval [fromH, toH),
// clamped to the day.
func paint(load []float64, fromH, toH, power float64) {
	from := int(fromH * 3600)
	to := int(toH * 3600)
	if from < 0 {
		from = 0
	}
	if to > len(load) {
		to = len(load)
	}
	for i := from; i < to; i++ {
		load[i] += power
	}
}

// poisson draws a Poisson-distributed count via Knuth's method (fine for
// small lambda).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// House concatenates days [fromDay, toDay) of total house load. For long
// ranges at 1 Hz this allocates toDay-fromDay × 86400 points; prefer
// HouseResampled for aggregate workloads.
func (g *Generator) House(h, fromDay, toDay int) *timeseries.Series {
	var all []timeseries.Point
	for d := fromDay; d < toDay; d++ {
		day := g.HouseDay(h, d)
		all = append(all, day.Points...)
	}
	return timeseries.MustNew(fmt.Sprintf("house%d", h+1), all)
}

// HouseResampled generates days [fromDay, toDay) and resamples each day to
// the given window (seconds) on the fly, keeping memory proportional to one
// day of 1 Hz data.
func (g *Generator) HouseResampled(h, fromDay, toDay int, window int64) *timeseries.Series {
	var all []timeseries.Point
	for d := fromDay; d < toDay; d++ {
		day := g.HouseDay(h, d).Resample(window)
		all = append(all, day.Points...)
	}
	return timeseries.MustNew(fmt.Sprintf("house%d@%ds", h+1, window), all)
}
