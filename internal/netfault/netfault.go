// Package netfault injects scripted connection faults — the network twin of
// internal/faultfs. It wraps net.Conn, net.Listener and a dialer behind one
// Injector whose fault schedule scripts every failure class the ingest and
// query paths must survive:
//
//	Reset      connection reset (SO_LINGER 0 where possible, so the peer
//	           sees a genuine RST, not a FIN) — mid-frame when combined
//	           with AfterBytes
//	ShortWrite half the buffer hits the wire, then the connection resets:
//	           a torn frame for the peer's decoder
//	BlackHole  bytes vanish: writes report success but never arrive, reads
//	           swallow data until the deadline fires — the wedged-NAT shape
//	           that only read/write deadlines can unwedge
//	Delay      latency injection before the operation proceeds
//	Error      the operation fails with a scripted error but the
//	           connection survives (accept-loop transient, EINTR-ish)
//
// Matching mirrors faultfs: a fault applies to operations of its Op and
// fires on its N'th match (1-based; 0 means 1) and — when Sticky — on every
// match after that. AfterBytes switches a fault to byte-count triggering:
// it fires on the operation that crosses the cumulative byte threshold in
// that direction, splitting writes exactly at the boundary so a frame tears
// at a scripted byte offset. Counters (per-op totals, bytes each way,
// resets) let tests assert the schedule actually exercised the wire.
//
// A BlackHole that fires latches the struck connection's direction: once a
// path eats bytes it stays dark for that connection's lifetime (the
// half-dead-path shape), while a fresh dial gets a clean path unless the
// fault is Sticky.
package netfault

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Op selects which connection operation a fault applies to.
type Op int

const (
	OpAccept Op = iota
	OpRead
	OpWrite

	opCount
)

func (o Op) String() string {
	switch o {
	case OpAccept:
		return "accept"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Action is what a firing fault does to the operation.
type Action int

const (
	// Reset fails the operation with ErrReset and closes the underlying
	// connection with SO_LINGER 0 when it is TCP, so the peer sees an RST.
	// On OpAccept the connection is accepted, reset and still returned —
	// the server meets a corpse, not an accept error.
	Reset Action = iota
	// ShortWrite writes half the buffer (or up to the AfterBytes boundary),
	// then resets: the peer is left holding a torn frame. Read and accept
	// faults with this action behave like Reset.
	ShortWrite
	// BlackHole swallows the direction: writes report full success without
	// delivering, reads discard arriving bytes and block until the
	// connection's deadline or close. The struck direction stays dark for
	// that connection's lifetime.
	BlackHole
	// Delay sleeps the fault's Delay, then lets the operation proceed.
	Delay
	// Error fails the operation with Err (default ErrInjected) and leaves
	// the connection open — on OpAccept, the transient accept-loop shape.
	Error
)

func (a Action) String() string {
	switch a {
	case Reset:
		return "reset"
	case ShortWrite:
		return "shortwrite"
	case BlackHole:
		return "blackhole"
	case Delay:
		return "delay"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Injected error sentinels.
var (
	// ErrReset is the error a Reset or ShortWrite fault reports to the
	// struck side.
	ErrReset = errors.New("netfault: connection reset by schedule")
	// ErrInjected is the default error for Action Error faults.
	ErrInjected = errors.New("netfault: injected error")
)

// Fault is one scripted network failure. Matching: the fault applies to
// operations of its Op. With AfterBytes zero it fires on its N'th match
// (1-based; 0 means 1) and, when Sticky, on every match after that. With
// AfterBytes > 0 it instead fires on the first matching operation once the
// Injector's cumulative byte count in that direction reaches the threshold;
// a write that crosses the boundary is split so exactly AfterBytes total
// bytes pass before the action applies.
type Fault struct {
	Op         Op
	N          int
	AfterBytes int64
	Action     Action
	Delay      time.Duration
	Err        error
	Sticky     bool

	hits  int  // matches so far (under Injector.mu)
	spent bool // byte-triggered faults fire once unless Sticky
}

func (f *Fault) want() int {
	if f.N <= 0 {
		return 1
	}
	return f.N
}

// Injector owns a fault schedule and the counters shared by every
// connection it wraps. The zero value is unusable; use New.
type Injector struct {
	mu     sync.Mutex
	faults []*Fault
	counts [opCount]int64

	bytesRead    int64
	bytesWritten int64
	resets       int64
	dials        int64
	conns        int64
}

// New builds an Injector armed with the given schedule.
func New(faults ...Fault) *Injector {
	inj := &Injector{}
	inj.SetFaults(faults...)
	return inj
}

// SetFaults replaces the schedule (arming a dying network mid-test,
// disarming it to model recovery). Counters are preserved.
func (inj *Injector) SetFaults(faults ...Fault) {
	fs := make([]*Fault, len(faults))
	for i := range faults {
		f := faults[i]
		fs[i] = &f
	}
	inj.mu.Lock()
	inj.faults = fs
	inj.mu.Unlock()
}

// Counts returns the number of operations seen per Op (including ones a
// fault failed).
func (inj *Injector) Counts(op Op) int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts[op]
}

// BytesRead returns the cumulative bytes delivered to readers (including
// bytes a black hole swallowed).
func (inj *Injector) BytesRead() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.bytesRead
}

// BytesWritten returns the cumulative bytes accepted from writers
// (including bytes a black hole swallowed).
func (inj *Injector) BytesWritten() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.bytesWritten
}

// Resets returns how many connections the schedule has reset.
func (inj *Injector) Resets() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.resets
}

// Dials returns how many connections were opened through Dial.
func (inj *Injector) Dials() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.dials
}

// Remaining reports how many scheduled faults have not fired yet — tests
// assert zero to prove the schedule actually exercised the wire.
func (inj *Injector) Remaining() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, f := range inj.faults {
		if f.AfterBytes > 0 {
			if !f.spent {
				n++
			}
		} else if f.hits < f.want() {
			n++
		}
	}
	return n
}

// check counts the operation and reports the fault that fires on it, if
// any, plus how many payload bytes pass through before the action applies
// (only ever non-zero for byte-triggered writes).
func (inj *Injector) check(op Op, n int) (*Fault, int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.counts[op]++
	var done int64
	switch op {
	case OpRead:
		done = inj.bytesRead
	case OpWrite:
		done = inj.bytesWritten
	}
	for _, f := range inj.faults {
		if f.Op != op {
			continue
		}
		if f.AfterBytes > 0 {
			if f.spent && !f.Sticky {
				continue
			}
			crossed := done >= f.AfterBytes
			if op == OpWrite {
				crossed = done+int64(n) >= f.AfterBytes
			}
			if !crossed {
				continue
			}
			f.spent = true
			prefix := 0
			if op == OpWrite && f.AfterBytes > done {
				prefix = int(f.AfterBytes - done)
				if prefix > n {
					prefix = n
				}
			}
			return f, prefix
		}
		f.hits++
		if f.hits == f.want() || (f.Sticky && f.hits > f.want()) {
			return f, 0
		}
	}
	return nil, 0
}

func (inj *Injector) addRead(n int) {
	inj.mu.Lock()
	inj.bytesRead += int64(n)
	inj.mu.Unlock()
}

func (inj *Injector) addWritten(n int) {
	inj.mu.Lock()
	inj.bytesWritten += int64(n)
	inj.mu.Unlock()
}

func (inj *Injector) addReset() {
	inj.mu.Lock()
	inj.resets++
	inj.mu.Unlock()
}

// Dial opens a TCP connection through the injector.
func (inj *Injector) Dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	inj.mu.Lock()
	inj.dials++
	inj.mu.Unlock()
	return inj.Conn(c), nil
}

// Conn wraps an established connection so its reads and writes route
// through the schedule.
func (inj *Injector) Conn(c net.Conn) net.Conn {
	inj.mu.Lock()
	inj.conns++
	inj.mu.Unlock()
	return &conn{Conn: c, inj: inj}
}

// Listener wraps ln so accepts — and every accepted connection — route
// through the schedule.
func (inj *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	f, _ := l.inj.check(OpAccept, 0)
	if f != nil {
		switch f.Action {
		case Delay:
			time.Sleep(f.Delay)
		case Error:
			err := f.Err
			if err == nil {
				err = ErrInjected
			}
			return nil, err
		default: // Reset, ShortWrite, BlackHole: accept a corpse
			c, err := l.Listener.Accept()
			if err != nil {
				return nil, err
			}
			resetConn(c)
			l.inj.addReset()
			return l.inj.Conn(c), nil
		}
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// resetConn closes c so the peer sees an RST where the transport allows it.
func resetConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

type conn struct {
	net.Conn
	inj *Injector

	mu        sync.Mutex
	blackRead bool
	blackWrit bool
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dark := c.blackRead
	c.mu.Unlock()
	if dark {
		return c.swallowReads()
	}
	f, _ := c.inj.check(OpRead, 0)
	if f != nil {
		switch f.Action {
		case Delay:
			time.Sleep(f.Delay)
		case Error:
			err := f.Err
			if err == nil {
				err = ErrInjected
			}
			return 0, err
		case BlackHole:
			c.mu.Lock()
			c.blackRead = true
			c.mu.Unlock()
			return c.swallowReads()
		default: // Reset, ShortWrite
			resetConn(c.Conn)
			c.inj.addReset()
			return 0, ErrReset
		}
	}
	n, err := c.Conn.Read(p)
	c.inj.addRead(n)
	return n, err
}

// swallowReads discards arriving bytes until the connection's read deadline
// fires or the peer goes away — the caller sees only that terminal error,
// never data.
func (c *conn) swallowReads() (int, error) {
	buf := make([]byte, 4096)
	for {
		n, err := c.Conn.Read(buf)
		c.inj.addRead(n)
		if err != nil {
			return 0, err
		}
	}
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dark := c.blackWrit
	c.mu.Unlock()
	if dark {
		c.inj.addWritten(len(p))
		return len(p), nil
	}
	f, prefix := c.inj.check(OpWrite, len(p))
	if f == nil {
		n, err := c.Conn.Write(p)
		c.inj.addWritten(n)
		return n, err
	}
	switch f.Action {
	case Delay:
		time.Sleep(f.Delay)
		n, err := c.Conn.Write(p)
		c.inj.addWritten(n)
		return n, err
	case Error:
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		return 0, err
	case BlackHole:
		n := 0
		if prefix > 0 {
			var err error
			n, err = c.Conn.Write(p[:prefix])
			c.inj.addWritten(n)
			if err != nil {
				return n, err
			}
		}
		c.mu.Lock()
		c.blackWrit = true
		c.mu.Unlock()
		c.inj.addWritten(len(p) - n)
		return len(p), nil
	case ShortWrite:
		cut := prefix
		if cut == 0 {
			cut = len(p) / 2
		}
		n, _ := c.Conn.Write(p[:cut])
		c.inj.addWritten(n)
		resetConn(c.Conn)
		c.inj.addReset()
		return n, fmt.Errorf("netfault: short write (%d of %d bytes): %w", n, len(p), ErrReset)
	default: // Reset
		n := 0
		if prefix > 0 {
			n, _ = c.Conn.Write(p[:prefix])
			c.inj.addWritten(n)
		}
		resetConn(c.Conn)
		c.inj.addReset()
		return n, ErrReset
	}
}
