package netfault

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pair returns a wrapped client conn dialed through inj to a TCP echo-less
// server whose raw accepted conn is handed back for the test to drive.
func pair(t *testing.T, inj *Injector) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err = inj.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-accepted
	t.Cleanup(func() { server.Close() })
	return client, server
}

func TestResetAfterBytesTearsMidBuffer(t *testing.T) {
	inj := New(Fault{Op: OpWrite, AfterBytes: 10, Action: Reset})
	client, server := pair(t, inj)

	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	n, err := client.Write(msg)
	if n != 10 {
		t.Fatalf("wrote %d bytes before reset, want exactly 10", n)
	}
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}

	// The peer sees exactly the 10 bytes that made it, then an error.
	got := make([]byte, 64)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	rn, _ := io.ReadFull(server, got[:10])
	if rn != 10 {
		t.Fatalf("peer read %d bytes, want 10", rn)
	}
	if _, err := server.Read(got); err == nil {
		t.Fatal("peer read after reset succeeded, want error")
	}
	if inj.Resets() != 1 {
		t.Fatalf("Resets() = %d, want 1", inj.Resets())
	}
	if inj.Remaining() != 0 {
		t.Fatalf("Remaining() = %d, want 0", inj.Remaining())
	}
}

func TestShortWriteDeliversHalf(t *testing.T) {
	inj := New(Fault{Op: OpWrite, N: 2, Action: ShortWrite})
	client, server := pair(t, inj)

	if _, err := client.Write([]byte("abcdefgh")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := client.Write([]byte("ijklmnop"))
	if n != 4 {
		t.Fatalf("short write delivered %d bytes, want 4", n)
	}
	if !errors.Is(err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset family", err)
	}
	// The peer holds the first frame plus the torn half, then the reset.
	got := make([]byte, 12)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil || string(got) != "abcdefghijkl" {
		t.Fatalf("peer got %q (%v), want torn prefix \"abcdefghijkl\"", got, err)
	}
	if _, err := server.Read(got); err == nil {
		t.Fatal("peer read past the reset succeeded")
	}
}

func TestBlackHoleWriteSwallowsForever(t *testing.T) {
	inj := New(Fault{Op: OpWrite, N: 2, Action: BlackHole})
	client, server := pair(t, inj)

	if _, err := client.Write([]byte("visible!")); err != nil {
		t.Fatal(err)
	}
	// Second and every later write vanish but report success.
	for i := 0; i < 3; i++ {
		n, err := client.Write([]byte("darkness"))
		if n != 8 || err != nil {
			t.Fatalf("black-holed write = (%d, %v), want (8, nil)", n, err)
		}
	}
	got := make([]byte, 8)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil || string(got) != "visible!" {
		t.Fatalf("peer got %q (%v), want \"visible!\"", got[:], err)
	}
	server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, err := server.Read(got); err == nil {
		t.Fatalf("peer read %d swallowed bytes, want deadline error", n)
	}
	if inj.BytesWritten() != 8+3*8 {
		t.Fatalf("BytesWritten() = %d, want %d", inj.BytesWritten(), 8+3*8)
	}
}

func TestBlackHoleReadHonorsDeadline(t *testing.T) {
	inj := New(Fault{Op: OpRead, N: 1, Action: BlackHole})
	client, server := pair(t, inj)

	if _, err := server.Write([]byte("lost ack")); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 8)
	start := time.Now()
	_, err := client.Read(buf)
	if err == nil {
		t.Fatal("black-holed read returned data")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("black-holed read returned before the deadline")
	}
	// The direction stays dark: a second read also times out even though
	// bytes are queued.
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := client.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("second read = %v, want deadline exceeded", err)
	}
}

func TestDelayInjectsLatencyThenDelivers(t *testing.T) {
	inj := New(Fault{Op: OpWrite, N: 1, Action: Delay, Delay: 80 * time.Millisecond})
	client, server := pair(t, inj)

	start := time.Now()
	if _, err := client.Write([]byte("slowpoke")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 60ms of injected latency", d)
	}
	got := make([]byte, 8)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil || string(got) != "slowpoke" {
		t.Fatalf("peer got %q (%v)", got, err)
	}
}

func TestAcceptErrorIsTransient(t *testing.T) {
	inj := New(Fault{Op: OpAccept, N: 1, Action: Error})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	ln := inj.Listener(base)

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := net.Dial("tcp", base.Addr().String())
		if err == nil {
			c.Close()
		}
	}()
	if _, err := ln.Accept(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first accept = %v, want ErrInjected", err)
	}
	c, err := ln.Accept()
	if err != nil {
		t.Fatalf("second accept = %v, want success", err)
	}
	c.Close()
	<-done
	if inj.Counts(OpAccept) != 2 {
		t.Fatalf("Counts(OpAccept) = %d, want 2", inj.Counts(OpAccept))
	}
}

func TestAcceptResetHandsServerACorpse(t *testing.T) {
	inj := New(Fault{Op: OpAccept, N: 1, Action: Reset})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	ln := inj.Listener(base)

	go func() {
		c, err := net.Dial("tcp", base.Addr().String())
		if err == nil {
			defer c.Close()
			buf := make([]byte, 1)
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			c.Read(buf)
		}
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept = %v, want a (reset) conn", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read from reset-at-accept conn succeeded")
	}
	if inj.Resets() != 1 {
		t.Fatalf("Resets() = %d, want 1", inj.Resets())
	}
}

func TestStickyFaultKeepsFiring(t *testing.T) {
	inj := New(Fault{Op: OpWrite, N: 2, Action: Error, Sticky: true})
	client, _ := pair(t, inj)

	if _, err := client.Write([]byte("ok")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Write([]byte("no")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d = %v, want ErrInjected", i+2, err)
		}
	}
}

func TestCountersTrackBothDirections(t *testing.T) {
	inj := New()
	client, server := pair(t, inj)

	if _, err := client.Write([]byte("ping!")); err != nil {
		t.Fatal(err)
	}
	// Reads only count through wrapped conns; the raw server side doesn't.
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(server, buf)
		server.Write([]byte("pong?"))
	}()
	buf := make([]byte, 5)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if inj.BytesWritten() != 5 {
		t.Fatalf("BytesWritten() = %d, want 5", inj.BytesWritten())
	}
	if inj.BytesRead() != 5 {
		t.Fatalf("BytesRead() = %d, want 5", inj.BytesRead())
	}
	if inj.Dials() != 1 {
		t.Fatalf("Dials() = %d, want 1", inj.Dials())
	}
	if inj.Counts(OpWrite) < 1 || inj.Counts(OpRead) < 1 {
		t.Fatal("op counts not tracked")
	}
}
