package faultfs_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"symmeter/internal/faultfs"
)

func writeOnce(t *testing.T, fs *faultfs.FS, path string, p []byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(p)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func TestFaultFiresOnNthMatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.dat")
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, Path: "x.dat", N: 2})

	if err := writeOnce(t, fs, path, []byte("one")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := writeOnce(t, fs, path, []byte("two")); !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("second write: got %v, want ErrIO", err)
	}
	// One-shot: the third matching write goes through.
	if err := writeOnce(t, fs, path, []byte("three")); err != nil {
		t.Fatalf("third write after one-shot fault: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(len("one")+len("three")) {
		t.Fatalf("file size %d: the failed write must not land bytes", st.Size())
	}
}

func TestStickyFaultKeepsFiring(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "y.dat")
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, N: 2, Sticky: true, Err: faultfs.ErrNoSpace})

	if err := writeOnce(t, fs, path, []byte("ok")); err != nil {
		t.Fatalf("write before fault: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := writeOnce(t, fs, path, []byte("no")); !errors.Is(err, faultfs.ErrNoSpace) {
			t.Fatalf("sticky write %d: got %v, want ErrNoSpace", i, err)
		}
	}
	fs.SetFaults() // disarm: the disk comes back
	if err := writeOnce(t, fs, path, []byte("ok")); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
}

func TestShortWriteLandsHalfTheBuffer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.dat")
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, Short: true})

	payload := []byte("0123456789abcdef")
	err := writeOnce(t, fs, path, payload)
	if !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("short write: got %v, want ErrIO", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != len(payload)/2 {
		t.Fatalf("short write landed %d bytes, want %d", len(got), len(payload)/2)
	}
}

func TestRenameMatchesBothPaths(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.tmp")
	dst := filepath.Join(dir, "b.json")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Matching on the destination name: the fault string never appears in
	// the source path, so this proves Rename matches "oldpath -> newpath".
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpRename, Path: "b.json", Sticky: true})
	if err := fs.Rename(src, dst); !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("rename: got %v, want ErrIO", err)
	}
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed rename must not create the destination: %v", err)
	}
}

func TestBalancesAndCounts(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	f, err := fs.OpenFile(filepath.Join(dir, "z.dat"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenBalance(); got != 1 {
		t.Fatalf("open balance with one open file: %d", got)
	}
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenBalance(); got != 0 {
		t.Fatalf("open balance after close: %d", got)
	}
	counts := fs.Counts()
	if counts[faultfs.OpOpen] != 1 || counts[faultfs.OpWrite] != 1 ||
		counts[faultfs.OpSync] != 1 || counts[faultfs.OpClose] != 1 {
		t.Fatalf("counts %v: want one open, write, sync, close", counts)
	}
}

// TestCloseFaultStillReleasesDescriptor: an injected close failure must not
// wedge the balance — the descriptor is gone either way.
func TestCloseFaultStillReleasesDescriptor(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpClose})
	f, err := fs.OpenFile(filepath.Join(dir, "c.dat"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("close: got %v, want ErrIO", err)
	}
	if got := fs.OpenBalance(); got != 0 {
		t.Fatalf("open balance after failed close: %d", got)
	}
}
