// Package faultfs is a deterministic fault injector behind the storage.FS
// seam: tests script exactly which filesystem operation fails, with which
// error, on which path, and whether the failure is one-shot or sticky —
// turning "what if the disk dies mid-fsync" from a thought experiment into
// a table-driven test. It also keeps per-op counters and open/close +
// mmap/munmap balances, so leak tests can prove a failed recovery released
// everything it touched.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"symmeter/internal/storage"
)

// Op identifies one filesystem operation class for fault matching and
// counting.
type Op int

const (
	OpOpen Op = iota // OpenFile and Open
	OpWrite
	OpWriteAt
	OpReadAt
	OpSync
	OpClose
	OpTruncate // File.Truncate and FS.Truncate
	OpRename
	OpRemove
	OpMkdir
	OpStat // File.Stat and FS.Stat
	OpReadFile
	OpReadDir
	OpMmap
	OpSyncDir
	opCount
)

func (o Op) String() string {
	names := [...]string{"open", "write", "writeat", "readat", "sync", "close",
		"truncate", "rename", "remove", "mkdir", "stat", "readfile", "readdir",
		"mmap", "syncdir"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Injection errors. Plain sentinels (no syscall dependency) — what matters
// to the engine is that they are non-nil I/O failures, not their errno.
var (
	// ErrIO models a medium error (EIO): the device lost the operation.
	ErrIO = errors.New("faultfs: injected I/O error")
	// ErrNoSpace models a full volume (ENOSPC).
	ErrNoSpace = errors.New("faultfs: injected no space left on device")
)

// Fault is one scripted failure. Matching: the fault applies to operations
// of its Op whose path contains Path (empty matches every path; Rename
// matches against "oldpath -> newpath"). The fault fires on its N'th match
// (1-based; 0 means 1), and — when Sticky — on every match after that, the
// dying-disk shape. Err defaults to ErrIO. Short makes a Write fault inject
// a short write: half the buffer is written before the error, leaving a
// torn record for recovery to handle.
type Fault struct {
	Op     Op
	Path   string
	N      int
	Err    error
	Short  bool
	Sticky bool

	hits int // matches so far (under FS.mu)
}

func (f *Fault) want() int {
	if f.N <= 0 {
		return 1
	}
	return f.N
}

// FS wraps a storage.FS with scripted faults. The zero value is unusable;
// use New. Faults can be swapped at runtime with SetFaults (arming a dying
// disk mid-test, disarming it to model recovery).
type FS struct {
	base storage.FS

	mu     sync.Mutex
	faults []*Fault
	counts [opCount]int

	opens   int
	closes  int
	mmaps   int
	munmaps int
}

// New builds a fault-injecting FS over the real filesystem.
func New(faults ...Fault) *FS {
	f := &FS{base: storage.OsFS{}}
	f.SetFaults(faults...)
	return f
}

// SetFaults replaces the fault schedule (hit counts start over).
func (f *FS) SetFaults(faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = make([]*Fault, len(faults))
	for i := range faults {
		fc := faults[i]
		f.faults[i] = &fc
	}
}

// Counts returns how many operations of each class have run (including
// ones that were failed by injection).
func (f *FS) Counts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := make(map[Op]int, opCount)
	for op, n := range f.counts {
		if n > 0 {
			m[Op(op)] = n
		}
	}
	return m
}

// OpenBalance returns successful opens minus closes — zero when every file
// handle was released.
func (f *FS) OpenBalance() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens - f.closes
}

// MmapBalance returns successful mmaps minus munmaps.
func (f *FS) MmapBalance() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mmaps - f.munmaps
}

// check counts the operation and reports whether a fault fires on it.
func (f *FS) check(op Op, path string) (short bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for _, ft := range f.faults {
		if ft.Op != op {
			continue
		}
		if ft.Path != "" && !strings.Contains(path, ft.Path) {
			continue
		}
		ft.hits++
		if ft.hits == ft.want() || (ft.Sticky && ft.hits > ft.want()) {
			e := ft.Err
			if e == nil {
				e = ErrIO
			}
			return ft.Short, e
		}
	}
	return false, nil
}

// file wraps a storage.File so per-file operations route through the
// injector.
type file struct {
	storage.File
	fs   *FS
	path string
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (storage.File, error) {
	if _, err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	g, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.opens++
	f.mu.Unlock()
	return &file{File: g, fs: f, path: name}, nil
}

func (f *FS) Open(name string) (storage.File, error) {
	if _, err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	g, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.opens++
	f.mu.Unlock()
	return &file{File: g, fs: f, path: name}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if _, err := f.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := f.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.check(OpMkdir, path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	if _, err := f.check(OpStat, name); err != nil {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, oldpath+" -> "+newpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if _, err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FS) Truncate(name string, size int64) error {
	if _, err := f.check(OpTruncate, name); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *FS) Mmap(fl storage.File, length int) ([]byte, error) {
	w, ok := fl.(*file)
	if !ok {
		return nil, fmt.Errorf("faultfs: Mmap of a file not opened through this FS: %T", fl)
	}
	if _, err := f.check(OpMmap, w.path); err != nil {
		return nil, err
	}
	b, err := f.base.Mmap(w.File, length)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.mmaps++
	f.mu.Unlock()
	return b, nil
}

func (f *FS) Munmap(b []byte) error {
	f.mu.Lock()
	f.munmaps++
	f.mu.Unlock()
	return f.base.Munmap(b)
}

func (f *FS) SyncDir(dir string) error {
	if _, err := f.check(OpSyncDir, dir); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

func (fl *file) Write(p []byte) (int, error) {
	short, err := fl.fs.check(OpWrite, fl.path)
	if err != nil {
		if short && len(p) > 1 {
			// A torn write: half the buffer reaches the file before the
			// device dies — the shape recovery's torn-tail rule must absorb.
			n, werr := fl.File.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return fl.File.Write(p)
}

func (fl *file) WriteAt(p []byte, off int64) (int, error) {
	short, err := fl.fs.check(OpWriteAt, fl.path)
	if err != nil {
		if short && len(p) > 1 {
			n, werr := fl.File.WriteAt(p[:len(p)/2], off)
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return fl.File.WriteAt(p, off)
}

func (fl *file) ReadAt(p []byte, off int64) (int, error) {
	if _, err := fl.fs.check(OpReadAt, fl.path); err != nil {
		return 0, err
	}
	return fl.File.ReadAt(p, off)
}

func (fl *file) Sync() error {
	if _, err := fl.fs.check(OpSync, fl.path); err != nil {
		return err
	}
	return fl.File.Sync()
}

func (fl *file) Truncate(size int64) error {
	if _, err := fl.fs.check(OpTruncate, fl.path); err != nil {
		return err
	}
	return fl.File.Truncate(size)
}

func (fl *file) Stat() (os.FileInfo, error) {
	if _, err := fl.fs.check(OpStat, fl.path); err != nil {
		return nil, err
	}
	return fl.File.Stat()
}

func (fl *file) Close() error {
	if _, err := fl.fs.check(OpClose, fl.path); err != nil {
		// Even a failed close releases the descriptor on every platform the
		// engine targets; count it so balances stay meaningful.
		fl.fs.mu.Lock()
		fl.fs.closes++
		fl.fs.mu.Unlock()
		fl.File.Close()
		return err
	}
	fl.fs.mu.Lock()
	fl.fs.closes++
	fl.fs.mu.Unlock()
	return fl.File.Close()
}
