// Package stats provides the statistics the symbolic-representation pipeline
// depends on: batch quantiles over all values and over distinct values (the
// paper's median and distinctmedian separator learners), histograms (Fig. 2),
// accumulative prefix statistics (Fig. 4), and log-normal distribution
// helpers used by the synthetic dataset generator.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over no data.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum value; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum value; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// It sorts a copy; the input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the type-7 quantile over already-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// KQuantiles returns the k-1 interior separators that divide the ordered
// data into k equal-sized subsets — exactly the separators of the paper's
// *median* horizontal segmentation. The returned slice has length k-1 and is
// non-decreasing.
func KQuantiles(xs []float64, k int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if k < 2 {
		return nil, errors.New("stats: k must be >= 2")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	seps := make([]float64, k-1)
	for i := 1; i < k; i++ {
		seps[i-1] = quantileSorted(sorted, float64(i)/float64(k))
	}
	return seps, nil
}

// Distinct returns the sorted distinct values of xs.
func Distinct(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := sorted[:1]
	for _, x := range sorted[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// KQuantilesDistinct computes k-quantile separators over the *set* of
// distinct values — the paper's *distinctmedian* learner, which avoids bias
// toward values that occur very often (e.g. standby power).
func KQuantilesDistinct(xs []float64, k int) ([]float64, error) {
	d := Distinct(xs)
	if len(d) == 0 {
		return nil, ErrEmpty
	}
	if k < 2 {
		return nil, errors.New("stats: k must be >= 2")
	}
	seps := make([]float64, k-1)
	for i := 1; i < k; i++ {
		seps[i-1] = quantileSorted(d, float64(i)/float64(k))
	}
	return seps, nil
}
