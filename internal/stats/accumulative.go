package stats

import "sort"

// Accumulative computes prefix ("accumulative") statistics over a stream of
// values: at any point it can report the mean, median and median of distinct
// values of everything seen so far. This reproduces Fig. 4 of the paper,
// which tracks how those three statistics converge over the first days of
// data and justifies learning separators from two days of history.
//
// Values are buffered; Snapshot sorts only the unsorted suffix and merges,
// so a stream of n values with s snapshots costs O(n log n + s·n) rather
// than O(s·n log n).
type Accumulative struct {
	sorted  []float64 // sorted prefix
	pending []float64 // values added since the last snapshot
	sum     float64
	count   int
}

// Add records one value.
func (a *Accumulative) Add(x float64) {
	a.pending = append(a.pending, x)
	a.sum += x
	a.count++
}

// Count returns how many values have been added.
func (a *Accumulative) Count() int { return a.count }

// Mean returns the running mean in O(1).
func (a *Accumulative) Mean() float64 {
	if a.count == 0 {
		return 0
	}
	return a.sum / float64(a.count)
}

// consolidate merges pending values into the sorted prefix.
func (a *Accumulative) consolidate() {
	if len(a.pending) == 0 {
		return
	}
	sort.Float64s(a.pending)
	merged := make([]float64, 0, len(a.sorted)+len(a.pending))
	i, j := 0, 0
	for i < len(a.sorted) && j < len(a.pending) {
		if a.sorted[i] <= a.pending[j] {
			merged = append(merged, a.sorted[i])
			i++
		} else {
			merged = append(merged, a.pending[j])
			j++
		}
	}
	merged = append(merged, a.sorted[i:]...)
	merged = append(merged, a.pending[j:]...)
	a.sorted = merged
	a.pending = a.pending[:0]
}

// Point is one snapshot of the accumulative statistics.
type Point struct {
	Count          int
	Mean           float64
	Median         float64
	DistinctMedian float64
}

// Snapshot reports the statistics over everything added so far.
func (a *Accumulative) Snapshot() Point {
	a.consolidate()
	p := Point{Count: a.count, Mean: a.Mean()}
	if a.count == 0 {
		return p
	}
	p.Median = quantileSorted(a.sorted, 0.5)
	// Median of distinct values: dedupe the sorted prefix without copying
	// the whole slice when few duplicates exist.
	distinct := make([]float64, 0, len(a.sorted))
	for i, x := range a.sorted {
		if i == 0 || x != a.sorted[i-1] {
			distinct = append(distinct, x)
		}
	}
	p.DistinctMedian = quantileSorted(distinct, 0.5)
	return p
}

// Median returns the running median (consolidating first).
func (a *Accumulative) Median() float64 {
	a.consolidate()
	if len(a.sorted) == 0 {
		return 0
	}
	return quantileSorted(a.sorted, 0.5)
}
