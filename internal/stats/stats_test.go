package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{
		"Mean": Mean, "Variance": Variance, "StdDev": StdDev,
		"Min": Min, "Max": Max, "Median": Median,
	} {
		if got := f(nil); !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.7); got != 42 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Fatal("Quantile mutated input")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestKQuantiles(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	seps, err := KQuantiles(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{25.75, 50.5, 75.25}
	for i := range seps {
		if !almostEq(seps[i], want[i], 1e-9) {
			t.Fatalf("seps = %v, want %v", seps, want)
		}
	}
	if _, err := KQuantiles(nil, 4); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := KQuantiles(xs, 1); err == nil {
		t.Fatal("expected error on k < 2")
	}
}

func TestDistinct(t *testing.T) {
	got := Distinct([]float64{3, 1, 3, 2, 1, 1})
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("Distinct = %v", got)
	}
	if Distinct(nil) != nil {
		t.Fatal("Distinct(nil) should be nil")
	}
}

func TestKQuantilesDistinctAvoidsFrequencyBias(t *testing.T) {
	// 97 copies of 0 plus {100, 200, 300}: plain quantiles put all separators
	// at 0, distinct quantiles spread them over the value range.
	xs := make([]float64, 0, 100)
	for i := 0; i < 97; i++ {
		xs = append(xs, 0)
	}
	xs = append(xs, 100, 200, 300)
	plain, err := KQuantiles(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0] != 0 || plain[1] != 0 || plain[2] != 0 {
		t.Fatalf("plain quantiles = %v, want all 0", plain)
	}
	dist, err := KQuantilesDistinct(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(dist[0] > 0 && dist[1] > dist[0] && dist[2] > dist[1]) {
		t.Fatalf("distinct quantiles = %v, want strictly increasing > 0", dist)
	}
}

func TestKQuantilesDistinctEqualWhenAllDistinct(t *testing.T) {
	// The paper: "If the real values have enough precision to always be
	// different this becomes equivalent to median".
	xs := []float64{5, 9, 1, 7, 3, 8, 2, 6, 4, 10}
	a, _ := KQuantiles(xs, 5)
	b, _ := KQuantilesDistinct(xs, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("median %v != distinctmedian %v on all-distinct data", a, b)
	}
}

// Property: KQuantiles separators are non-decreasing and within [min, max].
func TestKQuantilesProperty(t *testing.T) {
	f := func(seed int64, n uint8, kk uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%200) + 1
		k := int(kk%15) + 2
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = rng.Float64() * 1e4
		}
		seps, err := KQuantiles(xs, k)
		if err != nil || len(seps) != k-1 {
			return false
		}
		lo, hi := Min(xs), Max(xs)
		for i, s := range seps {
			if s < lo || s > hi {
				return false
			}
			if i > 0 && s < seps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 5, 9.999, 10, 49.999, 50, -1, math.NaN()})
	if h.Counts[0] != 3 {
		t.Fatalf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Over != 1 || h.Under != 1 {
		t.Fatalf("over/under = %d/%d", h.Over, h.Under)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Mode() != 0 {
		t.Fatalf("Mode = %v", h.Mode())
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, bad := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestAccumulativeMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var acc Accumulative
	var all []float64
	for i := 0; i < 5000; i++ {
		x := math.Floor(rng.Float64()*50) * 10 // many duplicates
		acc.Add(x)
		all = append(all, x)
		if i%997 == 0 {
			p := acc.Snapshot()
			if !almostEq(p.Mean, Mean(all), 1e-9) {
				t.Fatalf("at %d: mean %v != %v", i, p.Mean, Mean(all))
			}
			if !almostEq(p.Median, Median(all), 1e-9) {
				t.Fatalf("at %d: median %v != %v", i, p.Median, Median(all))
			}
			if !almostEq(p.DistinctMedian, Median(Distinct(all)), 1e-9) {
				t.Fatalf("at %d: distinctmedian %v != %v", i, p.DistinctMedian, Median(Distinct(all)))
			}
			if p.Count != i+1 {
				t.Fatalf("count %d != %d", p.Count, i+1)
			}
		}
	}
}

func TestAccumulativeEmpty(t *testing.T) {
	var acc Accumulative
	p := acc.Snapshot()
	if p.Count != 0 || p.Mean != 0 || acc.Median() != 0 {
		t.Fatalf("empty snapshot = %+v", p)
	}
}

func TestAccumulativeInterleavedSnapshots(t *testing.T) {
	var acc Accumulative
	acc.Add(3)
	if acc.Median() != 3 {
		t.Fatal("median of {3}")
	}
	acc.Add(1)
	acc.Add(2)
	if got := acc.Median(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v", got)
	}
	acc.Add(10)
	p := acc.Snapshot()
	if p.Median != 2.5 || p.Count != 4 {
		t.Fatalf("snapshot = %+v", p)
	}
}

func TestRunningMedianMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rm RunningMedian
	var all []float64
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64() * 100
		rm.Add(x)
		all = append(all, x)
		if i%101 == 0 {
			sorted := append([]float64(nil), all...)
			sort.Float64s(sorted)
			var want float64
			n := len(sorted)
			if n%2 == 1 {
				want = sorted[n/2]
			} else {
				want = (sorted[n/2-1] + sorted[n/2]) / 2
			}
			if !almostEq(rm.Median(), want, 1e-9) {
				t.Fatalf("at %d: running median %v != %v", i, rm.Median(), want)
			}
		}
	}
	if rm.Count() != 2000 {
		t.Fatalf("Count = %d", rm.Count())
	}
}

func TestRunningMedianEmpty(t *testing.T) {
	var rm RunningMedian
	if rm.Median() != 0 || rm.Count() != 0 {
		t.Fatal("empty RunningMedian should report 0")
	}
}

func TestNormInvRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-5, 0.01, 0.02425, 0.1, 0.25, 0.5, 0.75, 0.9, 0.97575, 0.99, 1 - 1e-5} {
		x := NormInv(p)
		back := NormCDF(x)
		if !almostEq(back, p, 1e-12) {
			t.Errorf("NormCDF(NormInv(%g)) = %g", p, back)
		}
	}
	if NormInv(0.5) != 0 {
		t.Fatalf("NormInv(0.5) = %v", NormInv(0.5))
	}
	if !math.IsInf(NormInv(0), -1) || !math.IsInf(NormInv(1), 1) {
		t.Fatal("NormInv boundary values")
	}
	if !math.IsInf(NormInv(math.NaN()), -1) {
		t.Fatal("NormInv(NaN) should be -Inf (treated as <=0)")
	}
}

func TestNormInvKnownBreakpoints(t *testing.T) {
	// SAX alphabet-4 breakpoints: -0.6745, 0, 0.6745.
	if got := NormInv(0.25); !almostEq(got, -0.6744897501960817, 1e-9) {
		t.Fatalf("NormInv(0.25) = %v", got)
	}
	if got := NormInv(0.75); !almostEq(got, 0.6744897501960817, 1e-9) {
		t.Fatalf("NormInv(0.75) = %v", got)
	}
}

func TestLogNormal(t *testing.T) {
	d := LogNormal{Mu: 5, Sigma: 0.5}
	if !almostEq(d.Median(), math.Exp(5), 1e-9) {
		t.Fatal("median")
	}
	if !almostEq(d.Mean(), math.Exp(5+0.125), 1e-9) {
		t.Fatal("mean")
	}
	if !almostEq(d.Quantile(0.5), d.Median(), 1e-9) {
		t.Fatal("quantile(0.5) != median")
	}
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = d.Rand(rng)
	}
	fit := FitLogNormal(xs)
	if !almostEq(fit.Mu, 5, 0.02) || !almostEq(fit.Sigma, 0.5, 0.02) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLogNormalIgnoresNonPositive(t *testing.T) {
	fit := FitLogNormal([]float64{-1, 0, math.E, math.E, math.E})
	if !almostEq(fit.Mu, 1, 1e-12) || !almostEq(fit.Sigma, 0, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
}
