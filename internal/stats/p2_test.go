package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2Validation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewP2Quantile(q); err == nil {
			t.Errorf("q=%v should be rejected", q)
		}
	}
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("empty estimator should report 0")
	}
}

func TestP2SmallSamplesExact(t *testing.T) {
	e, _ := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 3} {
		e.Add(x)
	}
	if got := e.Value(); got != 3 {
		t.Fatalf("median of {1,3,5} = %v", got)
	}
	if e.Count() != 3 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestP2AccuracyOnDistributions(t *testing.T) {
	cases := []struct {
		name string
		gen  func(*rand.Rand) float64
		// tol is relative to the distribution's interquartile scale.
		tol float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }, 0.05},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64()*10 + 50 }, 0.05},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*0.8 + 5) }, 0.12},
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	for _, c := range cases {
		for _, q := range quantiles {
			rng := rand.New(rand.NewSource(42))
			est, _ := NewP2Quantile(q)
			all := make([]float64, 0, 50000)
			for i := 0; i < 50000; i++ {
				x := c.gen(rng)
				est.Add(x)
				all = append(all, x)
			}
			exact := Quantile(all, q)
			scale := Quantile(all, 0.75) - Quantile(all, 0.25)
			if err := math.Abs(est.Value() - exact); err > c.tol*scale {
				t.Errorf("%s q=%v: P² %v vs exact %v (err %v, scale %v)",
					c.name, q, est.Value(), exact, err, scale)
			}
		}
	}
}

func TestP2MonotoneAcrossQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ests := make([]*P2Quantile, 0, 3)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		e, _ := NewP2Quantile(q)
		ests = append(ests, e)
	}
	for i := 0; i < 20000; i++ {
		x := math.Exp(rng.NormFloat64())
		for _, e := range ests {
			e.Add(x)
		}
	}
	if !(ests[0].Value() < ests[1].Value() && ests[1].Value() < ests[2].Value()) {
		t.Fatalf("quantile estimates not ordered: %v %v %v",
			ests[0].Value(), ests[1].Value(), ests[2].Value())
	}
}

func TestP2ConstantStream(t *testing.T) {
	e, _ := NewP2Quantile(0.5)
	for i := 0; i < 100; i++ {
		e.Add(7)
	}
	if e.Value() != 7 {
		t.Fatalf("constant stream median = %v", e.Value())
	}
}

func TestP2SortedInput(t *testing.T) {
	// Monotone input is a known stress case for online quantiles.
	e, _ := NewP2Quantile(0.5)
	n := 10001
	for i := 0; i < n; i++ {
		e.Add(float64(i))
	}
	exact := float64(n-1) / 2
	if math.Abs(e.Value()-exact) > float64(n)*0.05 {
		t.Fatalf("sorted input median = %v, want ~%v", e.Value(), exact)
	}
}
