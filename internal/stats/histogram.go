package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Min, Min + BinWidth*len(Counts)).
// It reproduces the Fig. 2 artifact: the distribution of power levels.
type Histogram struct {
	Min      float64
	BinWidth float64
	Counts   []int64
	// Under and Over count values falling outside the bin range.
	Under, Over int64
}

// NewHistogram creates a histogram with n bins of the given width starting
// at min. It panics if n <= 0 or width <= 0 (programmer error).
func NewHistogram(min, width float64, n int) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs n > 0 and width > 0")
	}
	return &Histogram{Min: min, BinWidth: width, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	idx := int(math.Floor((x - h.Min) / h.BinWidth))
	switch {
	case idx < 0:
		h.Under++
	case idx >= len(h.Counts):
		h.Over++
	default:
		h.Counts[idx]++
	}
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the lower edge of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Min + float64(best)*h.BinWidth
}

// WriteTo renders the histogram as an ASCII bar chart, one row per bin,
// scaled so the largest bar is width 60.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	var max int64 = 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var written int64
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(float64(c)/float64(max)*60))
		n, err := fmt.Fprintf(w, "%8.0f %10d %s\n", h.Min+float64(i)*h.BinWidth, c, bar)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
