package stats

import (
	"math"
	"math/rand"
)

// LogNormal is a log-normal distribution: ln(X) ~ N(Mu, Sigma²).
// The paper observes (Fig. 2) that 1 Hz smart-meter power levels follow a
// log-normal distribution; the synthetic dataset generator draws appliance
// load levels from it, and tests verify the generated marginals match.
type LogNormal struct {
	Mu, Sigma float64
}

// Rand draws one sample using the provided source.
func (d LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}

// Mean returns E[X] = exp(mu + sigma²/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Median returns exp(mu).
func (d LogNormal) Median() float64 { return math.Exp(d.Mu) }

// Quantile returns the q-quantile via the inverse normal CDF.
func (d LogNormal) Quantile(q float64) float64 {
	return math.Exp(d.Mu + d.Sigma*NormInv(q))
}

// FitLogNormal estimates (mu, sigma) from positive samples by the method of
// moments on the logs. Non-positive samples are ignored.
func FitLogNormal(xs []float64) LogNormal {
	var logs []float64
	for _, x := range xs {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	return LogNormal{Mu: Mean(logs), Sigma: StdDev(logs)}
}

// NormInv computes the inverse of the standard normal CDF using the
// Acklam rational approximation (relative error < 1.15e-9), refined with one
// Halley step against math.Erfc for near machine precision. These are the
// "pre-defined values from a table" that SAX uses for its breakpoints; we
// compute them instead of tabulating.
func NormInv(p float64) float64 {
	if math.IsNaN(p) || p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One step of Halley's method on CDF(x) - p = 0.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormCDF is the standard normal cumulative distribution function.
func NormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
