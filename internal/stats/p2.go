package stats

import (
	"errors"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory using
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers whose heights
// approximate the quantile curve, adjusted with piecewise-parabolic
// interpolation as observations arrive.
//
// The symbolic pipeline uses it for sensor-side separator learning
// (symbolic.StreamingTableBuilder): a meter cannot buffer two days of 1 Hz
// measurements, but k-1 P² estimators need only ~5(k-1) floats.
type P2Quantile struct {
	p float64
	// marker heights and positions (1-based positions per the paper).
	q  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64
	// bootstrap buffer for the first five observations.
	init  []float64
	count int
}

// NewP2Quantile estimates the q-th quantile, 0 < q < 1.
func NewP2Quantile(q float64) (*P2Quantile, error) {
	if q <= 0 || q >= 1 {
		return nil, errors.New("stats: P² quantile must be in (0,1)")
	}
	e := &P2Quantile{p: q}
	e.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	// Pre-size the bootstrap buffer so Add never allocates — estimators sit
	// on lock-free recording paths (internal/metrics) whose AllocsPerRun
	// pins forbid even the five startup appends from growing a slice.
	e.init = make([]float64, 0, 5)
	return e, nil
}

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if len(e.init) < 5 {
		e.init = append(e.init, x)
		if len(e.init) == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.n[i] = float64(i + 1)
			}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}

	// Find the cell k containing x and clamp extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < e.q[i] {
				k = i - 1
				break
			}
		}
	}
	// Increment positions of markers above the cell.
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	// Update desired positions.
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := sign(d)
			qNew := e.parabolic(i, s)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func sign(x float64) float64 {
	if x >= 0 {
		return 1
	}
	return -1
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction.
func (e *P2Quantile) linear(i int, d float64) float64 {
	return e.q[i] + d*(e.q[i+int(d)]-e.q[i])/(e.n[i+int(d)]-e.n[i])
}

// Count returns the number of observations.
func (e *P2Quantile) Count() int { return e.count }

// Value returns the current quantile estimate. For fewer than five
// observations it falls back to the exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if len(e.init) < 5 {
		sorted := append([]float64(nil), e.init...)
		sort.Float64s(sorted)
		return quantileSorted(sorted, e.p)
	}
	return e.q[2]
}
