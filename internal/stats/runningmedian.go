package stats

import "container/heap"

// RunningMedian maintains the exact median of a stream in O(log n) per
// insertion using the classic two-heap technique. It backs the online
// variants of the separator learners where a sensor wants to refresh its
// lookup table periodically without re-sorting history.
type RunningMedian struct {
	lo maxHeap // values <= median
	hi minHeap // values >= median
}

// Add inserts a value into the stream.
func (r *RunningMedian) Add(x float64) {
	if r.lo.Len() == 0 || x <= r.lo.data[0] {
		heap.Push(&r.lo, x)
	} else {
		heap.Push(&r.hi, x)
	}
	// Rebalance so that len(lo) == len(hi) or len(lo) == len(hi)+1.
	switch {
	case r.lo.Len() > r.hi.Len()+1:
		heap.Push(&r.hi, heap.Pop(&r.lo))
	case r.hi.Len() > r.lo.Len():
		heap.Push(&r.lo, heap.Pop(&r.hi))
	}
}

// Count returns the number of values added.
func (r *RunningMedian) Count() int { return r.lo.Len() + r.hi.Len() }

// Median returns the current median: the middle element for odd counts, the
// mean of the two middle elements for even counts. Zero for empty streams.
func (r *RunningMedian) Median() float64 {
	switch {
	case r.Count() == 0:
		return 0
	case r.lo.Len() > r.hi.Len():
		return r.lo.data[0]
	default:
		return (r.lo.data[0] + r.hi.data[0]) / 2
	}
}

type maxHeap struct{ data []float64 }

func (h maxHeap) Len() int            { return len(h.data) }
func (h maxHeap) Less(i, j int) bool  { return h.data[i] > h.data[j] }
func (h maxHeap) Swap(i, j int)       { h.data[i], h.data[j] = h.data[j], h.data[i] }
func (h *maxHeap) Push(x interface{}) { h.data = append(h.data, x.(float64)) }
func (h *maxHeap) Pop() interface{} {
	n := len(h.data)
	x := h.data[n-1]
	h.data = h.data[:n-1]
	return x
}

type minHeap struct{ data []float64 }

func (h minHeap) Len() int            { return len(h.data) }
func (h minHeap) Less(i, j int) bool  { return h.data[i] < h.data[j] }
func (h minHeap) Swap(i, j int)       { h.data[i], h.data[j] = h.data[j], h.data[i] }
func (h *minHeap) Push(x interface{}) { h.data = append(h.data, x.(float64)) }
func (h *minHeap) Pop() interface{} {
	n := len(h.data)
	x := h.data[n-1]
	h.data = h.data[:n-1]
	return x
}
