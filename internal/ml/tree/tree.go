// Package tree implements a C4.5-style decision tree, standing in for
// Weka's J48 in the paper's Table 1. It supports nominal multiway splits and
// numeric binary splits chosen by gain ratio, pessimistic error pruning with
// a confidence factor (C4.5 / J48 semantics), and a randomised mode —
// per-node random feature subsets without pruning — that package forest
// composes into the paper's Random Forest.
package tree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"symmeter/internal/ml"
	"symmeter/internal/stats"
)

// Config controls tree induction.
type Config struct {
	// MinLeaf is the minimum number of instances per leaf (C4.5 default 2).
	MinLeaf int
	// Prune enables pessimistic error pruning (J48 default true).
	Prune bool
	// CF is the pruning confidence factor (J48 default 0.25).
	CF float64
	// RandomFeatures, when positive, evaluates only that many randomly
	// chosen attributes per node (Random Forest mode).
	RandomFeatures int
	// Seed seeds the feature sampler in RandomFeatures mode.
	Seed int64
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
}

// DefaultConfig mirrors J48 defaults.
func DefaultConfig() Config {
	return Config{MinLeaf: 2, Prune: true, CF: 0.25}
}

// Classifier is a trained decision tree.
type Classifier struct {
	cfg    Config
	schema *ml.Schema
	root   *node
	rng    *rand.Rand
	// scratch buffers reused across split evaluations (training is
	// single-goroutine); without them, wide datasets like the paper's
	// "raw 1sec" row (86400 numeric attributes) generate one short-lived
	// slice per attribute per node.
	scratchPairs []pair
	scratchLeft  []float64
	scratchRight []float64
}

// node is one tree node. Leaves carry a class; internal nodes carry a split.
type node struct {
	// dist is the training class distribution reaching this node.
	dist []float64
	// class is the majority class at this node.
	class int

	// leaf marks terminal nodes.
	leaf bool

	// attr is the split attribute for internal nodes.
	attr int
	// threshold applies to numeric splits: x <= threshold goes to child 0.
	threshold float64
	// children are the branches: one per nominal value, or two for numeric.
	children []*node
}

// New returns a tree with the given configuration.
func New(cfg Config) *Classifier {
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	if cfg.CF <= 0 || cfg.CF >= 1 {
		cfg.CF = 0.25
	}
	return &Classifier{cfg: cfg}
}

// NewDefault returns a J48-default tree.
func NewDefault() *Classifier { return New(DefaultConfig()) }

// Fit induces the tree.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyTrainingSet
	}
	c.schema = d.Schema
	c.rng = rand.New(rand.NewSource(c.cfg.Seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	usedNominal := make([]bool, d.Schema.NumAttrs())
	c.root = c.build(d, idx, usedNominal, 0)
	if c.cfg.Prune {
		c.prune(c.root)
	}
	return nil
}

// distribution tallies class counts over the instance indices.
func distribution(d *ml.Dataset, idx []int) []float64 {
	dist := make([]float64, d.Schema.NumClasses())
	for _, i := range idx {
		dist[d.Instances[i].Class]++
	}
	return dist
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func entropy(dist []float64) float64 {
	var n float64
	for _, c := range dist {
		n += c
	}
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range dist {
		if c > 0 {
			p := c / n
			h -= p * math.Log2(p)
		}
	}
	return h
}

// split describes a candidate split.
type split struct {
	attr      int
	threshold float64 // numeric only
	gainRatio float64
	gain      float64
	parts     [][]int // instance indices per branch
}

// build grows the tree recursively.
func (c *Classifier) build(d *ml.Dataset, idx []int, usedNominal []bool, depth int) *node {
	dist := distribution(d, idx)
	n := &node{dist: dist, class: argmax(dist)}

	pure := false
	for _, cnt := range dist {
		if cnt == float64(len(idx)) {
			pure = true
		}
	}
	if pure || len(idx) < 2*c.cfg.MinLeaf ||
		(c.cfg.MaxDepth > 0 && depth >= c.cfg.MaxDepth) {
		n.leaf = true
		return n
	}

	best := c.bestSplit(d, idx, usedNominal)
	if best == nil {
		n.leaf = true
		return n
	}

	n.attr = best.attr
	n.threshold = best.threshold
	n.children = make([]*node, len(best.parts))
	isNominal := d.Schema.Attrs[best.attr].Kind == ml.Nominal
	if isNominal {
		usedNominal[best.attr] = true
	}
	for b, part := range best.parts {
		if len(part) == 0 {
			// Empty branch: a leaf predicting the parent majority.
			n.children[b] = &node{leaf: true, class: n.class, dist: make([]float64, len(dist))}
			continue
		}
		n.children[b] = c.build(d, part, usedNominal, depth+1)
	}
	if isNominal {
		usedNominal[best.attr] = false
	}
	return n
}

// candidateAttrs returns the attribute indices to evaluate at a node,
// sampling only among attributes still usable on this path (nominal
// attributes already split on are excluded before sampling, so the random
// subset is never wasted on them).
func (c *Classifier) candidateAttrs(numAttrs int, usedNominal []bool) []int {
	all := make([]int, 0, numAttrs)
	for i := 0; i < numAttrs; i++ {
		if !usedNominal[i] {
			all = append(all, i)
		}
	}
	if c.cfg.RandomFeatures <= 0 || c.cfg.RandomFeatures >= len(all) {
		return all
	}
	c.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:c.cfg.RandomFeatures]
}

// bestSplit evaluates candidate attributes and returns the best split by
// gain ratio (among splits with positive gain), or nil if none qualifies.
func (c *Classifier) bestSplit(d *ml.Dataset, idx []int, usedNominal []bool) *split {
	var best *split
	for _, a := range c.candidateAttrs(d.Schema.NumAttrs(), usedNominal) {
		attr := d.Schema.Attrs[a]
		var s *split
		if attr.Kind == ml.Nominal {
			s = c.nominalSplit(d, idx, a)
		} else {
			s = c.numericSplit(d, idx, a)
		}
		if s == nil || s.gain <= 1e-10 {
			continue
		}
		if best == nil || s.gainRatio > best.gainRatio {
			best = s
		}
	}
	return best
}

// nominalSplit partitions by category.
func (c *Classifier) nominalSplit(d *ml.Dataset, idx []int, a int) *split {
	nv := d.Schema.Attrs[a].NumValues()
	parts := make([][]int, nv)
	missing := 0
	for _, i := range idx {
		v := d.Instances[i].X[a]
		if math.IsNaN(v) {
			missing++
			continue
		}
		parts[int(v)] = append(parts[int(v)], i)
	}
	n := float64(len(idx) - missing)
	if n == 0 {
		return nil
	}
	// Require at least two non-trivial branches.
	nonEmpty := 0
	for _, p := range parts {
		if len(p) >= c.cfg.MinLeaf {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return nil
	}
	parentH := entropy(distribution(d, idx))
	var info, splitInfo float64
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		w := float64(len(p)) / n
		info += w * entropy(distribution(d, p))
		splitInfo -= w * math.Log2(w)
	}
	gain := parentH - info
	if splitInfo < 1e-10 {
		return nil
	}
	return &split{attr: a, gain: gain, gainRatio: gain / splitInfo, parts: parts}
}

// pair is one (value, class, instance) triple used by numeric splits.
type pair struct {
	v     float64
	class int
	i     int
}

// numericSplit finds the best binary threshold by scanning sorted values.
func (c *Classifier) numericSplit(d *ml.Dataset, idx []int, a int) *split {
	pairs := c.scratchPairs[:0]
	for _, i := range idx {
		v := d.Instances[i].X[a]
		if math.IsNaN(v) {
			continue
		}
		pairs = append(pairs, pair{v: v, class: d.Instances[i].Class, i: i})
	}
	c.scratchPairs = pairs
	if len(pairs) < 2*c.cfg.MinLeaf {
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	n := float64(len(pairs))
	nc := d.Schema.NumClasses()
	if cap(c.scratchLeft) < nc {
		c.scratchLeft = make([]float64, nc)
		c.scratchRight = make([]float64, nc)
	}
	total := make([]float64, nc)
	for _, p := range pairs {
		total[p.class]++
	}
	parentH := entropy(total)

	left := c.scratchLeft[:nc]
	right := c.scratchRight[:nc]
	for cl := range left {
		left[cl] = 0
	}
	bestGain := -1.0
	bestPos := -1
	var nl float64
	for pos := 0; pos < len(pairs)-1; pos++ {
		left[pairs[pos].class]++
		nl++
		if pairs[pos].v == pairs[pos+1].v {
			continue // can only cut between distinct values
		}
		if int(nl) < c.cfg.MinLeaf || len(pairs)-int(nl) < c.cfg.MinLeaf {
			continue
		}
		for cl := 0; cl < nc; cl++ {
			right[cl] = total[cl] - left[cl]
		}
		info := nl/n*entropy(left) + (n-nl)/n*entropy(right)
		if g := parentH - info; g > bestGain {
			bestGain = g
			bestPos = pos
		}
	}
	if bestPos < 0 || bestGain <= 0 {
		return nil
	}
	threshold := (pairs[bestPos].v + pairs[bestPos+1].v) / 2
	parts := make([][]int, 2)
	for _, p := range pairs {
		if p.v <= threshold {
			parts[0] = append(parts[0], p.i)
		} else {
			parts[1] = append(parts[1], p.i)
		}
	}
	wl := float64(len(parts[0])) / n
	wr := float64(len(parts[1])) / n
	splitInfo := -wl*math.Log2(wl) - wr*math.Log2(wr)
	if splitInfo < 1e-10 {
		return nil
	}
	return &split{
		attr: a, threshold: threshold,
		gain: bestGain, gainRatio: bestGain / splitInfo,
		parts: parts,
	}
}

// prune applies C4.5 pessimistic subtree replacement bottom-up and returns
// the estimated subtree error count.
func (c *Classifier) prune(n *node) float64 {
	total := 0.0
	for _, cnt := range n.dist {
		total += cnt
	}
	leafErrors := total - n.dist[n.class]
	leafEstimate := leafErrors + addErrs(total, leafErrors, c.cfg.CF)
	if n.leaf {
		return leafEstimate
	}
	var subtreeEstimate float64
	for _, ch := range n.children {
		subtreeEstimate += c.prune(ch)
	}
	if leafEstimate <= subtreeEstimate+0.1 {
		n.leaf = true
		n.children = nil
		return leafEstimate
	}
	return subtreeEstimate
}

// addErrs computes the pessimistic extra errors for a leaf covering N
// instances with e observed errors, at confidence CF — Weka's
// Stats.addErrs, which J48 pruning is built on.
func addErrs(n, e, cf float64) float64 {
	if n == 0 {
		return 0
	}
	if e < 1 {
		// Base case: upper bound when no errors observed.
		base := n * (1 - math.Pow(cf, 1/n))
		if e == 0 {
			return base
		}
		return base + e*(addErrs(n, 1, cf)-base)
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := stats.NormInv(1 - cf)
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}

// predictNode walks the tree; missing values follow the heaviest branch.
func (c *Classifier) predictNode(n *node, x []float64) *node {
	for !n.leaf {
		v := x[n.attr]
		var next *node
		if math.IsNaN(v) {
			next = heaviestChild(n)
		} else if c.schema.Attrs[n.attr].Kind == ml.Nominal {
			vi := int(v)
			if vi < 0 || vi >= len(n.children) {
				next = heaviestChild(n)
			} else {
				next = n.children[vi]
			}
		} else {
			if v <= n.threshold {
				next = n.children[0]
			} else {
				next = n.children[1]
			}
		}
		n = next
	}
	return n
}

func heaviestChild(n *node) *node {
	best := n.children[0]
	bestW := -1.0
	for _, ch := range n.children {
		var w float64
		for _, c := range ch.dist {
			w += c
		}
		if w > bestW {
			bestW = w
			best = ch
		}
	}
	return best
}

// Predict returns the predicted class.
func (c *Classifier) Predict(x []float64) int {
	if c.root == nil {
		panic(ml.ErrNotFitted)
	}
	return c.predictNode(c.root, x).class
}

// PredictProba returns the Laplace-smoothed class distribution of the leaf
// the instance falls into.
func (c *Classifier) PredictProba(x []float64) []float64 {
	if c.root == nil {
		panic(ml.ErrNotFitted)
	}
	leaf := c.predictNode(c.root, x)
	out := make([]float64, len(leaf.dist))
	var total float64
	for _, cnt := range leaf.dist {
		total += cnt
	}
	for i, cnt := range leaf.dist {
		out[i] = (cnt + 1) / (total + float64(len(leaf.dist)))
	}
	return out
}

// Depth returns the tree depth (leaf-only trees have depth 0).
func (c *Classifier) Depth() int { return depth(c.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	d := 0
	for _, ch := range n.children {
		if cd := depth(ch); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Leaves returns the number of leaves.
func (c *Classifier) Leaves() int { return leaves(c.root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	total := 0
	for _, ch := range n.children {
		total += leaves(ch)
	}
	return total
}

// String renders a compact description.
func (c *Classifier) String() string {
	if c.root == nil {
		return "tree(unfitted)"
	}
	return fmt.Sprintf("tree(depth=%d, leaves=%d)", c.Depth(), c.Leaves())
}

var _ ml.ProbClassifier = (*Classifier)(nil)
