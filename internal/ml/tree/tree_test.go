package tree

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/ml"
)

// conjunctionDataset labels an instance "yes" iff p=1 AND q=1. Unlike XOR,
// the first split already has positive gain, so greedy gain-ratio induction
// (C4.5 semantics) can learn it.
func conjunctionDataset(t *testing.T, n int) *ml.Dataset {
	t.Helper()
	schema, err := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("p", []string{"0", "1"}),
		ml.NominalAttr("q", []string{"0", "1"}),
	}, []string{"no", "yes"})
	if err != nil {
		t.Fatal(err)
	}
	d := ml.NewDataset(schema)
	for i := 0; i < n; i++ {
		p, q := float64(i%2), float64((i/2)%2)
		class := 0
		if p == 1 && q == 1 {
			class = 1
		}
		d.MustAdd([]float64{p, q}, class)
	}
	return d
}

func TestLearnsConjunction(t *testing.T) {
	d := conjunctionDataset(t, 40)
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		x    []float64
		want int
	}{
		{[]float64{0, 0}, 0}, {[]float64{0, 1}, 0},
		{[]float64{1, 0}, 0}, {[]float64{1, 1}, 1},
	} {
		if got := tr.Predict(c.x); got != c.want {
			t.Fatalf("Predict(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if tr.Depth() != 2 {
		t.Fatalf("conjunction tree depth = %d, want 2", tr.Depth())
	}
}

func TestXORHasZeroGainAndStaysLeaf(t *testing.T) {
	// Balanced XOR offers zero information gain on either attribute, so a
	// faithful greedy C4.5 refuses to split — documenting the known
	// limitation rather than hiding it.
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("p", []string{"0", "1"}),
		ml.NominalAttr("q", []string{"0", "1"}),
	}, []string{"no", "yes"})
	d := ml.NewDataset(schema)
	for i := 0; i < 40; i++ {
		p, q := float64(i%2), float64((i/2)%2)
		class := 0
		if p != q {
			class = 1
		}
		d.MustAdd([]float64{p, q}, class)
	}
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() != 1 {
		t.Fatalf("XOR should yield a stump under greedy gain, got %d leaves", tr.Leaves())
	}
}

func TestNumericThresholdSplit(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"lo", "hi"})
	d := ml.NewDataset(schema)
	for i := 0; i < 20; i++ {
		d.MustAdd([]float64{float64(i)}, 0)
		d.MustAdd([]float64{float64(i) + 100}, 1)
	}
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Predict([]float64{5}) != 0 || tr.Predict([]float64{105}) != 1 {
		t.Fatal("threshold split failed")
	}
	if tr.Depth() != 1 || tr.Leaves() != 2 {
		t.Fatalf("expected a single split: depth=%d leaves=%d", tr.Depth(), tr.Leaves())
	}
}

func TestNumericReusableAlongPath(t *testing.T) {
	// A three-band numeric pattern needs the same attribute twice.
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	for i := 0; i < 10; i++ {
		d.MustAdd([]float64{float64(i)}, 0)        // 0..9   -> a
		d.MustAdd([]float64{float64(i) + 100}, 1)  // 100..  -> b
		d.MustAdd([]float64{float64(i) + 1000}, 0) // 1000.. -> a
	}
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Predict([]float64{5}) != 0 || tr.Predict([]float64{105}) != 1 || tr.Predict([]float64{1005}) != 0 {
		t.Fatal("numeric attribute must be reusable at deeper nodes")
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	for i := 0; i < 10; i++ {
		d.MustAdd([]float64{float64(i)}, 0)
	}
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 || tr.Leaves() != 1 {
		t.Fatalf("pure data should give a stump: depth=%d leaves=%d", tr.Depth(), tr.Leaves())
	}
	if tr.Predict([]float64{3}) != 0 {
		t.Fatal("stump predicts majority")
	}
}

func TestFitEmptyErrors(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	if err := NewDefault().Fit(ml.NewDataset(schema)); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestPredictUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDefault().Predict([]float64{1})
}

func TestMissingValuesAtPrediction(t *testing.T) {
	d := conjunctionDataset(t, 40)
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Must route through the heaviest branch without panicking.
	got := tr.Predict([]float64{math.NaN(), math.NaN()})
	if got != 0 && got != 1 {
		t.Fatalf("Predict(missing) = %d", got)
	}
}

func TestUnseenNominalValueFallsBack(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("s", []string{"a", "b", "c"}),
	}, []string{"x", "y"})
	d := ml.NewDataset(schema)
	for i := 0; i < 10; i++ {
		d.MustAdd([]float64{0}, 0)
		d.MustAdd([]float64{1}, 1)
	}
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Value "c" (index 2) never seen: lands in an empty-branch leaf carrying
	// the parent majority — a valid class either way.
	if got := tr.Predict([]float64{2}); got != 0 && got != 1 {
		t.Fatalf("Predict(unseen) = %d", got)
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	// Random labels: an unpruned tree overfits to many leaves; pruning
	// should collapse most of it.
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("x1"), ml.NumericAttr("x2"),
	}, []string{"a", "b"})
	build := func(prune bool) *Classifier {
		d := ml.NewDataset(schema)
		r := rand.New(rand.NewSource(7)) // same data both times
		for i := 0; i < 200; i++ {
			d.MustAdd([]float64{r.Float64(), r.Float64()}, r.Intn(2))
		}
		tr := New(Config{MinLeaf: 2, Prune: prune, CF: 0.25})
		if err := tr.Fit(d); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	unpruned := build(false)
	pruned := build(true)
	if pruned.Leaves() >= unpruned.Leaves() {
		t.Fatalf("pruning did not shrink: %d -> %d leaves", unpruned.Leaves(), pruned.Leaves())
	}
}

func TestPruningKeepsSignal(t *testing.T) {
	// A clean pattern must survive pruning.
	d := conjunctionDataset(t, 80)
	tr := New(Config{MinLeaf: 2, Prune: true, CF: 0.25})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Predict([]float64{1, 1}) != 1 || tr.Predict([]float64{0, 0}) != 0 {
		t.Fatal("pruning destroyed a clean pattern")
	}
}

func TestRandomFeaturesMode(t *testing.T) {
	d := conjunctionDataset(t, 80)
	tr := New(Config{MinLeaf: 1, RandomFeatures: 1, Seed: 5})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	// With 1 random feature per node it may need more depth, but must still
	// learn the training patterns.
	correct := 0
	for _, c := range [][3]float64{{0, 0, 0}, {1, 1, 1}, {0, 1, 0}, {1, 0, 0}} {
		if tr.Predict([]float64{c[0], c[1]}) == int(c[2]) {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("random-feature tree got %d/4 on training patterns", correct)
	}
}

func TestMaxDepthBounds(t *testing.T) {
	d := conjunctionDataset(t, 80)
	tr := New(Config{MinLeaf: 1, MaxDepth: 1, Prune: false})
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Fatalf("Depth = %d, want <= 1", tr.Depth())
	}
}

func TestPredictProba(t *testing.T) {
	d := conjunctionDataset(t, 40)
	tr := NewDefault()
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := tr.PredictProba([]float64{1, 1})
	if len(p) != 2 {
		t.Fatalf("proba len = %d", len(p))
	}
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("Laplace-smoothed probabilities must be in (0,1): %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if p[1] <= p[0] {
		t.Fatalf("AND(1,1)=yes should dominate: %v", p)
	}
}

func TestAddErrs(t *testing.T) {
	// Sanity properties of the pessimistic error bound.
	if got := addErrs(0, 0, 0.25); got != 0 {
		t.Fatalf("addErrs(0,0) = %v", got)
	}
	prev := math.Inf(1)
	for _, e := range []float64{0, 1, 2, 5} {
		extra := addErrs(20, e, 0.25)
		if extra <= 0 {
			t.Fatalf("addErrs(20,%v) = %v, want > 0", e, extra)
		}
		if extra > prev+3 {
			t.Fatalf("addErrs grew implausibly: %v -> %v", prev, extra)
		}
		prev = extra
	}
	// Saturated case: e close to n.
	if got := addErrs(10, 10, 0.25); got != 0 {
		t.Fatalf("addErrs(10,10) = %v, want 0", got)
	}
}

func TestStringRendering(t *testing.T) {
	tr := NewDefault()
	if tr.String() != "tree(unfitted)" {
		t.Fatalf("String = %q", tr.String())
	}
	d := conjunctionDataset(t, 40)
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.String() == "tree(unfitted)" {
		t.Fatal("fitted tree should describe itself")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	d := conjunctionDataset(t, 80)
	a := New(Config{MinLeaf: 1, RandomFeatures: 1, Seed: 42})
	b := New(Config{MinLeaf: 1, RandomFeatures: 1, Seed: 42})
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		x := []float64{float64(i % 2), float64((i / 2) % 2)}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same seed must give same tree")
		}
	}
}
