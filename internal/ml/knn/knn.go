// Package knn implements a k-nearest-neighbour classifier with pluggable
// per-attribute distance semantics: nominal attributes contribute 0/1
// mismatch, numeric attributes contribute range-normalised absolute
// difference (Weka IBk's default HEOM-style metric). It rounds out the
// paper's "any algorithm supporting nominal values" claim with an instance-
// based learner and powers the segmentation-by-similarity example.
package knn

import (
	"math"
	"sort"

	"symmeter/internal/ml"
)

// Classifier is a k-NN model; Fit stores the training data and per-numeric
// attribute ranges.
type Classifier struct {
	// K is the number of neighbours (default 3).
	K int

	train  []ml.Instance
	schema *ml.Schema
	// lo/hi are per-attribute ranges for numeric normalisation.
	lo, hi []float64
}

// New returns a k-NN classifier with the given k.
func New(k int) *Classifier {
	if k <= 0 {
		k = 3
	}
	return &Classifier{K: k}
}

// Fit memorises the training set and computes numeric attribute ranges.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyTrainingSet
	}
	c.schema = d.Schema
	c.train = d.Instances
	na := d.Schema.NumAttrs()
	c.lo = make([]float64, na)
	c.hi = make([]float64, na)
	for a := 0; a < na; a++ {
		c.lo[a], c.hi[a] = math.Inf(1), math.Inf(-1)
		for _, in := range d.Instances {
			v := in.X[a]
			if math.IsNaN(v) {
				continue
			}
			if v < c.lo[a] {
				c.lo[a] = v
			}
			if v > c.hi[a] {
				c.hi[a] = v
			}
		}
	}
	return nil
}

// distance is the HEOM-style mixed metric; missing values contribute the
// maximal per-attribute distance 1.
func (c *Classifier) distance(a, b []float64) float64 {
	var sum float64
	for i, attr := range c.schema.Attrs {
		va, vb := a[i], b[i]
		if math.IsNaN(va) || math.IsNaN(vb) {
			sum++
			continue
		}
		if attr.Kind == ml.Nominal {
			if va != vb {
				sum++
			}
			continue
		}
		r := c.hi[i] - c.lo[i]
		if r <= 0 {
			continue
		}
		d := math.Abs(va-vb) / r
		sum += d * d
	}
	return sum
}

// Predict votes among the k nearest training instances (distance-weighted
// majority; ties break toward the lower class index).
func (c *Classifier) Predict(x []float64) int {
	p := c.PredictProba(x)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// PredictProba returns normalised inverse-distance-weighted votes.
func (c *Classifier) PredictProba(x []float64) []float64 {
	if c.train == nil {
		panic(ml.ErrNotFitted)
	}
	type nb struct {
		d     float64
		class int
	}
	ns := make([]nb, len(c.train))
	for i, in := range c.train {
		ns[i] = nb{d: c.distance(x, in.X), class: in.Class}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].d < ns[j].d })
	k := c.K
	if k > len(ns) {
		k = len(ns)
	}
	votes := make([]float64, c.schema.NumClasses())
	for _, n := range ns[:k] {
		votes[n.class] += 1 / (1 + n.d)
	}
	var z float64
	for _, v := range votes {
		z += v
	}
	if z > 0 {
		for i := range votes {
			votes[i] /= z
		}
	}
	return votes
}

var _ ml.ProbClassifier = (*Classifier)(nil)
