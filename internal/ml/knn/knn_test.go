package knn

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/ml"
)

func mixedDataset(t *testing.T) *ml.Dataset {
	t.Helper()
	schema, err := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("x"),
		ml.NominalAttr("s", []string{"a", "b"}),
	}, []string{"lo", "hi"})
	if err != nil {
		t.Fatal(err)
	}
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		class := i % 2
		x := float64(class)*10 + rng.NormFloat64()
		d.MustAdd([]float64{x, float64(class)}, class)
	}
	return d
}

func TestKNNClassifies(t *testing.T) {
	d := mixedDataset(t)
	c := New(3)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if c.Predict([]float64{0, 0}) != 0 || c.Predict([]float64{10, 1}) != 1 {
		t.Fatal("kNN failed on separated classes")
	}
}

func TestKNNProbaSumsToOne(t *testing.T) {
	d := mixedDataset(t)
	c := New(5)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := c.PredictProba([]float64{5, 0})
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative vote: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("votes sum to %v", sum)
	}
}

func TestKNNMissingValues(t *testing.T) {
	d := mixedDataset(t)
	c := New(3)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	got := c.Predict([]float64{math.NaN(), 1})
	if got != 0 && got != 1 {
		t.Fatalf("Predict(missing) = %d", got)
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	d.MustAdd([]float64{0}, 0)
	d.MustAdd([]float64{1}, 1)
	c := New(50)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{0.1}); got != 0 {
		t.Fatalf("Predict = %d (nearest should dominate the weighted vote)", got)
	}
}

func TestKNNConstantAttribute(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("const"), ml.NumericAttr("x"),
	}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	for i := 0; i < 20; i++ {
		d.MustAdd([]float64{7, float64(i % 2)}, i%2)
	}
	c := New(3)
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if c.Predict([]float64{7, 0}) != 0 || c.Predict([]float64{7, 1}) != 1 {
		t.Fatal("zero-range attribute must not poison the metric")
	}
}

func TestKNNValidationAndPanics(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	if err := New(3).Fit(ml.NewDataset(schema)); err == nil {
		t.Fatal("empty training set should error")
	}
	if New(0).K != 3 {
		t.Fatal("k<=0 should default to 3")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Predict([]float64{1})
}
