package forest

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/ml"
)

// noisyDataset builds a two-class problem where several weak nominal
// features each carry partial signal — the setting where forests beat
// single trees.
func noisyDataset(t *testing.T, n int, seed int64) *ml.Dataset {
	t.Helper()
	attrs := make([]ml.Attribute, 8)
	for i := range attrs {
		attrs[i] = ml.NominalAttr("s", []string{"0", "1"})
	}
	schema, err := ml.NewSchema(attrs, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		class := rng.Intn(2)
		x := make([]float64, 8)
		for j := range x {
			// Each feature agrees with the class 75% of the time.
			if rng.Float64() < 0.75 {
				x[j] = float64(class)
			} else {
				x[j] = float64(1 - class)
			}
		}
		d.MustAdd(x, class)
	}
	return d
}

func TestForestLearnsNoisyProblem(t *testing.T) {
	train := noisyDataset(t, 400, 1)
	test := noisyDataset(t, 200, 2)
	f := New(Config{Trees: 15, Seed: 3})
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, in := range test.Instances {
		if f.Predict(in.X) == in.Class {
			correct++
		}
	}
	if correct < 170 { // Bayes-optimal is ~98%; demand >= 85%
		t.Fatalf("forest accuracy %d/200", correct)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	d := noisyDataset(t, 100, 5)
	a, b := New(Config{Trees: 5, Seed: 9}), New(Config{Trees: 5, Seed: 9})
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances[:20] {
		if a.Predict(in.X) != b.Predict(in.X) {
			t.Fatal("same seed must reproduce the forest")
		}
	}
}

func TestForestProbaSumsToOne(t *testing.T) {
	d := noisyDataset(t, 100, 5)
	f := NewDefault()
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := f.PredictProba(d.Instances[0].X)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestForestEmptyErrors(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	if err := NewDefault().Fit(ml.NewDataset(schema)); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestForestUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDefault().Predict([]float64{0})
}

func TestForestDefaultsApplied(t *testing.T) {
	f := New(Config{Trees: -1})
	if f.cfg.Trees != 10 {
		t.Fatalf("Trees default = %d", f.cfg.Trees)
	}
}

func TestForestBeatsStumpOnInteraction(t *testing.T) {
	// Numeric two-moon-ish interaction: forest handles it.
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("x"), ml.NumericAttr("y"),
	}, []string{"in", "out"})
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		class := 0
		if x*x+y*y > 0.5 {
			class = 1
		}
		d.MustAdd([]float64{x, y}, class)
	}
	f := New(Config{Trees: 20, Seed: 1})
	if err := f.Fit(d); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		want := 0
		if x*x+y*y > 0.5 {
			want = 1
		}
		if f.Predict([]float64{x, y}) == want {
			correct++
		}
	}
	if correct < 160 {
		t.Fatalf("forest got %d/200 on circular boundary", correct)
	}
}
