// Package forest implements the Random Forest classifier of the paper's
// Figs. 6, 7, 9 and Table 1: bagged randomised trees voting by averaged
// class distributions, following Weka's RandomForest (which the paper used)
// — unpruned trees, per-node random feature subsets of size
// ⌊log2(numAttrs)⌋+1 by default.
package forest

import (
	"fmt"
	"math"
	"math/rand"

	"symmeter/internal/ml"
	"symmeter/internal/ml/tree"
)

// Config controls the ensemble.
type Config struct {
	// Trees is the ensemble size (Weka default 10 at the paper's time).
	Trees int
	// Features is the per-node random subset size; 0 selects the Weka
	// default ⌊log2(numAttrs)⌋+1.
	Features int
	// Seed makes training deterministic.
	Seed int64
	// MaxDepth bounds each tree; 0 means unlimited (Weka default).
	MaxDepth int
}

// DefaultConfig mirrors Weka-era defaults.
func DefaultConfig() Config { return Config{Trees: 10} }

// Classifier is a trained random forest.
type Classifier struct {
	cfg    Config
	trees  []*tree.Classifier
	schema *ml.Schema
}

// New returns a forest with the given config.
func New(cfg Config) *Classifier {
	if cfg.Trees <= 0 {
		cfg.Trees = 10
	}
	return &Classifier{cfg: cfg}
}

// NewDefault returns a default forest.
func NewDefault() *Classifier { return New(DefaultConfig()) }

// Fit trains the ensemble on bootstrap resamples.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyTrainingSet
	}
	c.schema = d.Schema
	features := c.cfg.Features
	if features <= 0 {
		features = int(math.Log2(float64(d.Schema.NumAttrs()))) + 1
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	c.trees = make([]*tree.Classifier, c.cfg.Trees)
	for t := 0; t < c.cfg.Trees; t++ {
		// Bootstrap sample with replacement.
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
		boot := d.Subset(idx)
		tr := tree.New(tree.Config{
			MinLeaf:        1,
			Prune:          false,
			RandomFeatures: features,
			Seed:           rng.Int63(),
			MaxDepth:       c.cfg.MaxDepth,
		})
		if err := tr.Fit(boot); err != nil {
			return fmt.Errorf("forest: tree %d: %w", t, err)
		}
		c.trees[t] = tr
	}
	return nil
}

// PredictProba averages the member trees' leaf distributions.
func (c *Classifier) PredictProba(x []float64) []float64 {
	if len(c.trees) == 0 {
		panic(ml.ErrNotFitted)
	}
	out := make([]float64, c.schema.NumClasses())
	for _, tr := range c.trees {
		p := tr.PredictProba(x)
		for i := range out {
			out[i] += p[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(c.trees))
	}
	return out
}

// Predict returns the class with the highest averaged probability.
func (c *Classifier) Predict(x []float64) int {
	p := c.PredictProba(x)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

var _ ml.ProbClassifier = (*Classifier)(nil)
