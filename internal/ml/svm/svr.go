// Package svm implements ε-insensitive support vector regression, standing
// in for Weka's SMOreg: the paper's §3.2 raw-value forecasting baseline
// ("we use support vector machine for regression to forecast (real value)
// residential level consumption"). Inputs and targets are min-max
// normalised like SMOreg; linear and RBF kernels are provided.
//
// Training minimises the regularised squared ε-insensitive loss over the
// kernel expansion f(x) = Σ βᵢ k(xᵢ, x) + b by functional (kernelised)
// gradient descent — the same model family as SMO-based solvers (L2-SVR),
// with a simpler optimiser that is robust at the dataset sizes the paper
// uses (hundreds of instances).
package svm

import (
	"errors"
	"math"
)

// Kernel computes k(a, b).
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// LinearKernel is the dot product (SMOreg's default polynomial of degree 1).
type LinearKernel struct{}

// Eval returns a·b.
func (LinearKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Name identifies the kernel.
func (LinearKernel) Name() string { return "linear" }

// RBFKernel is exp(-gamma·|a-b|²).
type RBFKernel struct{ Gamma float64 }

// Eval returns the Gaussian kernel value.
func (k RBFKernel) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Name identifies the kernel.
func (k RBFKernel) Name() string { return "rbf" }

// Config controls SVR training.
type Config struct {
	// C is the regularisation constant (SMOreg default 1): larger C fits
	// the data more tightly.
	C float64
	// Epsilon is the insensitivity tube half-width on normalised targets
	// (SMOreg default 1e-3).
	Epsilon float64
	// Kernel defaults to linear.
	Kernel Kernel
	// Iters is the number of optimisation sweeps (default 500).
	Iters int
	// LearningRate is the initial functional-gradient step (default 1).
	LearningRate float64
}

// DefaultConfig mirrors SMOreg-era defaults.
func DefaultConfig() Config {
	return Config{C: 1, Epsilon: 1e-3, Kernel: LinearKernel{}, Iters: 500, LearningRate: 1}
}

// SVR is a trained support vector regressor.
type SVR struct {
	cfg Config
	// Training rows (normalised) retained for kernel expansion.
	xs [][]float64
	// beta are the expansion coefficients.
	beta []float64
	b    float64
	// Normalisation ranges.
	xmin, xrange []float64
	ymin, yrange float64
}

// New returns an untrained SVR.
func New(cfg Config) *SVR {
	def := DefaultConfig()
	if cfg.C <= 0 {
		cfg.C = def.C
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = def.Epsilon
	}
	if cfg.Kernel == nil {
		cfg.Kernel = def.Kernel
	}
	if cfg.Iters <= 0 {
		cfg.Iters = def.Iters
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = def.LearningRate
	}
	return &SVR{cfg: cfg}
}

// NewDefault uses DefaultConfig.
func NewDefault() *SVR { return New(DefaultConfig()) }

// FitRegression trains on feature rows xs and targets ys.
func (s *SVR) FitRegression(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return errors.New("svm: need equal, non-zero numbers of rows and targets")
	}
	dim := len(xs[0])
	for _, x := range xs {
		if len(x) != dim {
			return errors.New("svm: ragged feature rows")
		}
	}
	s.normalise(xs, ys)
	n := len(xs)
	ny := make([]float64, n)
	for i, y := range ys {
		ny[i] = (y - s.ymin) / s.yrange
	}

	// Precompute the kernel matrix.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := s.cfg.Kernel.Eval(s.xs[i], s.xs[j])
			gram[i][j] = v
			gram[j][i] = v
		}
	}

	s.beta = make([]float64, n)
	s.b = 0
	lambda := 1 / (s.cfg.C * float64(n))
	f := make([]float64, n)
	g := make([]float64, n)
	for t := 0; t < s.cfg.Iters; t++ {
		// f = K·beta + b
		for i := 0; i < n; i++ {
			var sum float64
			gi := gram[i]
			for j, bj := range s.beta {
				if bj != 0 {
					sum += gi[j] * bj
				}
			}
			f[i] = sum + s.b
		}
		// Gradient of the squared ε-insensitive loss ½(|r|-ε)₊² (averaged):
		// proportional to the distance outside the tube, which converges far
		// faster than the ±1 subgradient of the L1 tube at these scales.
		var gSum float64
		for i := 0; i < n; i++ {
			r := f[i] - ny[i]
			switch {
			case r > s.cfg.Epsilon:
				g[i] = r - s.cfg.Epsilon
			case r < -s.cfg.Epsilon:
				g[i] = r + s.cfg.Epsilon
			default:
				g[i] = 0
			}
			gSum += g[i]
		}
		lr := s.cfg.LearningRate / (1 + float64(t)/50)
		for i := 0; i < n; i++ {
			s.beta[i] -= lr * (g[i]/float64(n) + lambda*s.beta[i])
		}
		s.b -= lr * gSum / float64(n)
	}
	return nil
}

// normalise fits min-max ranges and stores normalised training rows.
func (s *SVR) normalise(xs [][]float64, ys []float64) {
	dim := len(xs[0])
	s.xmin = make([]float64, dim)
	s.xrange = make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if x[j] < lo {
				lo = x[j]
			}
			if x[j] > hi {
				hi = x[j]
			}
		}
		s.xmin[j] = lo
		if hi > lo {
			s.xrange[j] = hi - lo
		} else {
			s.xrange[j] = 1
		}
	}
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		if y < ylo {
			ylo = y
		}
		if y > yhi {
			yhi = y
		}
	}
	s.ymin = ylo
	if yhi > ylo {
		s.yrange = yhi - ylo
	} else {
		s.yrange = 1
	}
	s.xs = make([][]float64, len(xs))
	for i, x := range xs {
		s.xs[i] = s.normX(x)
	}
}

// normX normalises a feature row.
func (s *SVR) normX(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - s.xmin[j]) / s.xrange[j]
	}
	return out
}

// PredictValue predicts the target for a raw feature row.
func (s *SVR) PredictValue(x []float64) float64 {
	if s.beta == nil {
		panic("svm: model not fitted")
	}
	nx := s.normX(x)
	f := s.b
	for i, beta := range s.beta {
		if beta != 0 {
			f += beta * s.cfg.Kernel.Eval(s.xs[i], nx)
		}
	}
	return f*s.yrange + s.ymin
}

// SupportVectors returns how many training points have non-negligible
// coefficients.
func (s *SVR) SupportVectors() int {
	n := 0
	for _, b := range s.beta {
		if math.Abs(b) > 1e-9 {
			n++
		}
	}
	return n
}
