package svm

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearRegressionRecovery(t *testing.T) {
	// y = 3x + 2 with small noise: linear SVR should track it closely.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := rng.Float64() * 10
		xs = append(xs, []float64{x})
		ys = append(ys, 3*x+2+rng.NormFloat64()*0.1)
	}
	s := New(Config{C: 10, Epsilon: 1e-3, Iters: 800})
	if err := s.FitRegression(xs, ys); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 5, 9} {
		got := s.PredictValue([]float64{x})
		want := 3*x + 2
		if math.Abs(got-want) > 1.0 {
			t.Fatalf("Predict(%v) = %v, want ~%v", x, got, want)
		}
	}
}

func TestMultiFeatureLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		a, b := rng.Float64()*5, rng.Float64()*5
		xs = append(xs, []float64{a, b})
		ys = append(ys, 2*a-b+4)
	}
	s := New(Config{C: 10, Iters: 800})
	if err := s.FitRegression(xs, ys); err != nil {
		t.Fatal(err)
	}
	got := s.PredictValue([]float64{2, 3})
	if math.Abs(got-5) > 1.2 {
		t.Fatalf("Predict = %v, want ~5", got)
	}
}

func TestRBFNonlinear(t *testing.T) {
	// y = sin(x): needs the RBF kernel.
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 2 * math.Pi
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x))
	}
	s := New(Config{C: 50, Epsilon: 0.01, Kernel: RBFKernel{Gamma: 10}, Iters: 1500})
	if err := s.FitRegression(xs, ys); err != nil {
		t.Fatal(err)
	}
	var mae float64
	n := 0
	for x := 0.3; x < 2*math.Pi-0.3; x += 0.4 {
		mae += math.Abs(s.PredictValue([]float64{x}) - math.Sin(x))
		n++
	}
	mae /= float64(n)
	if mae > 0.25 {
		t.Fatalf("RBF SVR MAE on sin = %v", mae)
	}
}

func TestConstantTarget(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 5, 5, 5}
	s := NewDefault()
	if err := s.FitRegression(xs, ys); err != nil {
		t.Fatal(err)
	}
	if got := s.PredictValue([]float64{2.5}); math.Abs(got-5) > 0.5 {
		t.Fatalf("constant target: Predict = %v", got)
	}
}

func TestFitValidation(t *testing.T) {
	s := NewDefault()
	if err := s.FitRegression(nil, nil); err == nil {
		t.Fatal("empty input should error")
	}
	if err := s.FitRegression([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if err := s.FitRegression([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestPredictUnfittedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDefault().PredictValue([]float64{1})
}

func TestKernels(t *testing.T) {
	lin := LinearKernel{}
	if lin.Eval([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("linear kernel")
	}
	if lin.Name() != "linear" {
		t.Fatal("linear name")
	}
	rbf := RBFKernel{Gamma: 1}
	if got := rbf.Eval([]float64{0}, []float64{0}); got != 1 {
		t.Fatalf("rbf self = %v", got)
	}
	if got := rbf.Eval([]float64{0}, []float64{1}); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("rbf(0,1) = %v", got)
	}
	if rbf.Name() != "rbf" {
		t.Fatal("rbf name")
	}
}

func TestSupportVectorsReported(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x)
	}
	s := NewDefault()
	if err := s.FitRegression(xs, ys); err != nil {
		t.Fatal(err)
	}
	if s.SupportVectors() < 1 {
		t.Fatal("expected at least one support vector")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	s := New(Config{})
	if s.cfg.C != 1 || s.cfg.Epsilon <= 0 || s.cfg.Kernel == nil || s.cfg.Iters <= 0 {
		t.Fatalf("defaults = %+v", s.cfg)
	}
}
