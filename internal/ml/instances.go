// Package ml is a from-scratch substitute for the Weka toolkit the paper
// uses (§3): a shared attribute/instance model plus the classifiers the
// experiments need — Naive Bayes, a C4.5-style decision tree ("J48"),
// Random Forest, multinomial Logistic regression, and ε-SVR for the raw
// forecasting baseline. A key claim of the paper is that symbolic data works
// with any algorithm supporting nominal values; this package's dataset model
// treats nominal and numeric attributes uniformly so every classifier runs
// on both raw and symbolic encodings.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes numeric from nominal attributes.
type Kind int

const (
	// Numeric attributes hold real values.
	Numeric Kind = iota
	// Nominal attributes hold an index into a fixed category list.
	Nominal
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one feature column.
type Attribute struct {
	Name string
	Kind Kind
	// Values lists the categories of a nominal attribute; empty for numeric.
	Values []string
}

// NumValues returns the number of categories of a nominal attribute.
func (a Attribute) NumValues() int { return len(a.Values) }

// NumericAttr is a convenience constructor.
func NumericAttr(name string) Attribute { return Attribute{Name: name, Kind: Numeric} }

// NominalAttr is a convenience constructor.
func NominalAttr(name string, values []string) Attribute {
	return Attribute{Name: name, Kind: Nominal, Values: values}
}

// Schema is the attribute layout plus the class labels of a dataset.
type Schema struct {
	Attrs   []Attribute
	Classes []string
}

// NewSchema validates and returns a schema.
func NewSchema(attrs []Attribute, classes []string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("ml: schema needs at least one attribute")
	}
	if len(classes) < 2 {
		return nil, errors.New("ml: schema needs at least two classes")
	}
	for i, a := range attrs {
		if a.Kind == Nominal && len(a.Values) < 1 {
			return nil, fmt.Errorf("ml: nominal attribute %d (%s) has no values", i, a.Name)
		}
	}
	return &Schema{Attrs: attrs, Classes: classes}, nil
}

// NumAttrs returns the number of feature columns.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of class labels.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// Instance is one example: feature vector plus class index. For nominal
// attributes X[i] is the category index; for numeric attributes the value.
// NaN marks a missing value.
type Instance struct {
	X     []float64
	Class int
}

// Dataset is a list of instances under a schema.
type Dataset struct {
	Schema    *Schema
	Instances []Instance
}

// NewDataset returns an empty dataset over the schema.
func NewDataset(schema *Schema) *Dataset { return &Dataset{Schema: schema} }

// Add validates and appends an instance.
func (d *Dataset) Add(x []float64, class int) error {
	if len(x) != d.Schema.NumAttrs() {
		return fmt.Errorf("ml: instance has %d attributes, schema wants %d", len(x), d.Schema.NumAttrs())
	}
	if class < 0 || class >= d.Schema.NumClasses() {
		return fmt.Errorf("ml: class %d out of range [0,%d)", class, d.Schema.NumClasses())
	}
	for i, v := range x {
		a := d.Schema.Attrs[i]
		if a.Kind == Nominal && !math.IsNaN(v) {
			idx := int(v)
			if float64(idx) != v || idx < 0 || idx >= a.NumValues() {
				return fmt.Errorf("ml: attribute %d (%s): nominal index %v out of range [0,%d)",
					i, a.Name, v, a.NumValues())
			}
		}
	}
	d.Instances = append(d.Instances, Instance{X: x, Class: class})
	return nil
}

// MustAdd is Add but panics on error; for tests and generated data whose
// validity is guaranteed by construction.
func (d *Dataset) MustAdd(x []float64, class int) {
	if err := d.Add(x, class); err != nil {
		panic(err)
	}
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// ClassCounts tallies instances per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Schema.NumClasses())
	for _, in := range d.Instances {
		counts[in.Class]++
	}
	return counts
}

// MajorityClass returns the most frequent class (lowest index wins ties).
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best := 0
	for i, c := range counts {
		if c > counts[best] {
			best = i
		}
	}
	return best
}

// Subset returns a dataset view containing the instances at the given
// indices (instances are shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := NewDataset(d.Schema)
	out.Instances = make([]Instance, len(idx))
	for i, j := range idx {
		out.Instances[i] = d.Instances[j]
	}
	return out
}

// Classifier is the interface every model implements.
type Classifier interface {
	// Fit trains on the dataset.
	Fit(d *Dataset) error
	// Predict returns the predicted class index for a feature vector.
	Predict(x []float64) int
}

// ProbClassifier is implemented by models that expose class probabilities.
type ProbClassifier interface {
	Classifier
	// PredictProba returns a probability per class, summing to 1.
	PredictProba(x []float64) []float64
}

// Regressor is the interface for real-valued prediction (SVR baseline).
type Regressor interface {
	// FitRegression trains on (xs, ys) pairs.
	FitRegression(xs [][]float64, ys []float64) error
	// PredictValue returns the predicted value for a feature vector.
	PredictValue(x []float64) float64
}

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("ml: model not fitted")

// ErrEmptyTrainingSet reports fitting on no instances.
var ErrEmptyTrainingSet = errors.New("ml: empty training set")
