package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// blobs builds n points in `k` well-separated 1-D blobs and returns the
// values plus true labels.
func blobs(n, k int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		vals[i] = float64(c)*100 + rng.NormFloat64()*3
		labels[i] = c
	}
	return vals, labels
}

func l1Dist(vals []float64) DistanceFunc {
	return func(i, j int) float64 { return math.Abs(vals[i] - vals[j]) }
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	vals, labels := blobs(60, 3, 1)
	res, err := KMedoids(60, 3, l1Dist(vals), 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Purity(res.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Fatalf("purity = %v on separated blobs", p)
	}
	ari, err := AdjustedRandIndex(res.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("ARI = %v on separated blobs", ari)
	}
}

func TestAgglomerativeSeparatesBlobs(t *testing.T) {
	vals, labels := blobs(45, 3, 2)
	res, err := Agglomerative(45, 3, l1Dist(vals))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Purity(res.Assign, labels)
	if p < 0.99 {
		t.Fatalf("purity = %v", p)
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	sizes := res.Sizes()
	for _, s := range sizes {
		if s != 15 {
			t.Fatalf("sizes = %v, want 15 each", sizes)
		}
	}
}

func TestKMedoidsValidation(t *testing.T) {
	vals, _ := blobs(10, 2, 3)
	if _, err := KMedoids(10, 0, l1Dist(vals), 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KMedoids(10, 11, l1Dist(vals), 1); err == nil {
		t.Fatal("k>n should error")
	}
	res, err := KMedoids(10, 10, l1Dist(vals), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton clusters are a valid degenerate case.
	if res.K != 10 {
		t.Fatalf("K = %d", res.K)
	}
}

func TestAgglomerativeValidation(t *testing.T) {
	vals, _ := blobs(8, 2, 4)
	if _, err := Agglomerative(8, 0, l1Dist(vals)); err == nil {
		t.Fatal("k=0 should error")
	}
	res, err := Agglomerative(8, 1, l1Dist(vals))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 puts everything in one cluster")
		}
	}
}

func TestKMedoidsDeterministicSeed(t *testing.T) {
	vals, _ := blobs(40, 2, 5)
	a, _ := KMedoids(40, 2, l1Dist(vals), 9)
	b, _ := KMedoids(40, 2, l1Dist(vals), 9)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestPurityKnownValues(t *testing.T) {
	// Clusters {0,0,1,1}, labels {0,1,1,1}: cluster 0 majority 1 of 2,
	// cluster 1 majority 2 of 2 → purity 3/4.
	p, err := Purity([]int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	if err != nil || p != 0.75 {
		t.Fatalf("Purity = %v, %v", p, err)
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := Purity([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("mismatch should error")
	}
}

func TestARIProperties(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	// Perfect agreement (relabeled): ARI = 1.
	perfect := []int{2, 2, 2, 0, 0, 0, 1, 1, 1}
	ari, err := AdjustedRandIndex(perfect, labels)
	if err != nil || math.Abs(ari-1) > 1e-12 {
		t.Fatalf("perfect ARI = %v, %v", ari, err)
	}
	// Everything in one cluster: ARI = 0.
	ones := make([]int, 9)
	ari, _ = AdjustedRandIndex(ones, labels)
	if math.Abs(ari) > 1e-12 {
		t.Fatalf("degenerate ARI = %v", ari)
	}
	// Random assignments: ARI near 0 on average.
	rng := rand.New(rand.NewSource(11))
	var sum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		randAssign := make([]int, 9)
		for j := range randAssign {
			randAssign[j] = rng.Intn(3)
		}
		a, _ := AdjustedRandIndex(randAssign, labels)
		sum += a
	}
	if mean := sum / trials; math.Abs(mean) > 0.1 {
		t.Fatalf("random ARI mean = %v, want ~0", mean)
	}
	if _, err := AdjustedRandIndex(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestMatrixSymmetric(t *testing.T) {
	vals, _ := blobs(10, 2, 13)
	m := Matrix(10, l1Dist(vals))
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("diagonal must be 0")
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatal("matrix must be symmetric")
			}
		}
	}
}
