// Package cluster provides distance-based clustering for the paper's
// customer-segmentation scenario in its unsupervised form: k-medoids (PAM)
// and average-linkage agglomerative clustering over an arbitrary distance
// function, plus the external quality metrics (purity, adjusted Rand index)
// used to score clusterings against known house labels.
//
// Symbolic day-vectors plug in through the distance measures of
// internal/symbolic; raw vectors use plain L1/L2 — one more demonstration
// that the symbolic representation "is not linked to any specific
// algorithm".
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// DistanceFunc returns the distance between items i and j of a dataset.
type DistanceFunc func(i, j int) float64

// Matrix precomputes a symmetric distance matrix from a DistanceFunc.
func Matrix(n int, dist DistanceFunc) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(i, j)
			m[i][j] = d
			m[j][i] = d
		}
	}
	return m
}

// Result is a clustering: Assign[i] is the cluster index of item i.
type Result struct {
	Assign []int
	K      int
}

// Sizes returns items per cluster.
func (r Result) Sizes() []int {
	out := make([]int, r.K)
	for _, c := range r.Assign {
		out[c]++
	}
	return out
}

// KMedoids runs the PAM-style k-medoids algorithm: greedy medoid
// initialisation (k-means++-like, seeded), then alternating assignment and
// medoid refinement until stable.
func KMedoids(n, k int, dist DistanceFunc, seed int64) (Result, error) {
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("cluster: k=%d outside [1,%d]", k, n)
	}
	m := Matrix(n, dist)
	rng := rand.New(rand.NewSource(seed))

	// Initialisation: first medoid random, then greedily farthest-first.
	medoids := []int{rng.Intn(n)}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, md := range medoids {
				if m[i][md] < d {
					d = m[i][md]
				}
			}
			if d > bestD {
				bestD = d
				best = i
			}
		}
		medoids = append(medoids, best)
	}

	assign := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		// Assignment step.
		changed := false
		for i := 0; i < n; i++ {
			best := 0
			for c := 1; c < k; c++ {
				if m[i][medoids[c]] < m[i][medoids[best]] {
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Medoid update: the member minimising total distance to its
		// cluster.
		for c := 0; c < k; c++ {
			bestCost := math.Inf(1)
			bestIdx := medoids[c]
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				var cost float64
				for j := 0; j < n; j++ {
					if assign[j] == c {
						cost += m[i][j]
					}
				}
				if cost < bestCost {
					bestCost = cost
					bestIdx = i
				}
			}
			medoids[c] = bestIdx
		}
		if !changed && iter > 0 {
			break
		}
	}
	return Result{Assign: assign, K: k}, nil
}

// Agglomerative runs average-linkage hierarchical clustering, cutting the
// dendrogram at k clusters.
func Agglomerative(n, k int, dist DistanceFunc) (Result, error) {
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("cluster: k=%d outside [1,%d]", k, n)
	}
	m := Matrix(n, dist)
	// clusters holds member lists; nil slots are merged away.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	active := n
	// linkage computes average pairwise distance between two clusters.
	linkage := func(a, b []int) float64 {
		var sum float64
		for _, i := range a {
			for _, j := range b {
				sum += m[i][j]
			}
		}
		return sum / float64(len(a)*len(b))
	}
	for active > k {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if clusters[i] == nil {
				continue
			}
			for j := i + 1; j < n; j++ {
				if clusters[j] == nil {
					continue
				}
				if d := linkage(clusters[i], clusters[j]); d < best {
					best = d
					bi, bj = i, j
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters[bj] = nil
		active--
	}
	assign := make([]int, n)
	c := 0
	for _, members := range clusters {
		if members == nil {
			continue
		}
		for _, i := range members {
			assign[i] = c
		}
		c++
	}
	return Result{Assign: assign, K: k}, nil
}

// Purity scores a clustering against ground-truth labels: the fraction of
// items belonging to their cluster's majority label.
func Purity(assign, labels []int) (float64, error) {
	if len(assign) != len(labels) || len(assign) == 0 {
		return 0, errors.New("cluster: need equal, non-zero assignments and labels")
	}
	counts := map[[2]int]int{}
	clusterTotals := map[int]int{}
	for i := range assign {
		counts[[2]int{assign[i], labels[i]}]++
		clusterTotals[assign[i]]++
	}
	majority := map[int]int{}
	for key, c := range counts {
		if c > majority[key[0]] {
			majority[key[0]] = c
		}
	}
	var correct int
	for _, c := range majority {
		correct += c
	}
	return float64(correct) / float64(len(assign)), nil
}

// AdjustedRandIndex scores a clustering against labels, corrected for
// chance: 1 for perfect agreement, ~0 for random assignments.
func AdjustedRandIndex(assign, labels []int) (float64, error) {
	if len(assign) != len(labels) || len(assign) == 0 {
		return 0, errors.New("cluster: need equal, non-zero assignments and labels")
	}
	n := len(assign)
	cont := map[[2]int]int{}
	rowSums := map[int]int{}
	colSums := map[int]int{}
	for i := 0; i < n; i++ {
		cont[[2]int{assign[i], labels[i]}]++
		rowSums[assign[i]]++
		colSums[labels[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumA, sumB float64
	for _, c := range cont {
		sumIJ += choose2(c)
	}
	for _, c := range rowSums {
		sumA += choose2(c)
	}
	for _, c := range colSums {
		sumB += choose2(c)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 0, nil
	}
	return (sumIJ - expected) / (maxIdx - expected), nil
}
