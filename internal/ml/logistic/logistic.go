// Package logistic implements multinomial logistic regression with L2
// (ridge) regularisation, standing in for Weka's Logistic in Table 1.
// Nominal attributes are one-hot encoded; numeric attributes are
// standardised. Training uses full-batch gradient descent with backtracking
// step control, which converges reliably at the dataset sizes the paper
// evaluates (hundreds of instances).
package logistic

import (
	"math"

	"symmeter/internal/ml"
)

// Config controls training.
type Config struct {
	// Ridge is the L2 penalty (Weka default 1e-8).
	Ridge float64
	// MaxIter bounds gradient steps.
	MaxIter int
	// Tol stops early when the gradient norm falls below it.
	Tol float64
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config {
	return Config{Ridge: 1e-8, MaxIter: 500, Tol: 1e-6}
}

// Classifier is a trained multinomial logistic model.
type Classifier struct {
	cfg    Config
	schema *ml.Schema
	// enc maps raw attribute vectors to the dense one-hot design row.
	enc *encoder
	// w[c][j] are the weights for class c over encoded feature j (the last
	// class is the reference with implicit zero weights, like Weka).
	w [][]float64
}

// New returns an untrained classifier.
func New(cfg Config) *Classifier {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 500
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	return &Classifier{cfg: cfg}
}

// NewDefault uses DefaultConfig.
func NewDefault() *Classifier { return New(DefaultConfig()) }

// encoder turns instances into standardized one-hot rows with a bias term.
type encoder struct {
	schema *ml.Schema
	// offsets[a] is the first output column of attribute a.
	offsets []int
	// width is the encoded row length including the trailing bias 1.
	width int
	// mean/std standardise numeric columns.
	mean, std []float64
}

func newEncoder(d *ml.Dataset) *encoder {
	e := &encoder{schema: d.Schema}
	e.offsets = make([]int, d.Schema.NumAttrs())
	col := 0
	for a, attr := range d.Schema.Attrs {
		e.offsets[a] = col
		if attr.Kind == ml.Nominal {
			col += attr.NumValues()
		} else {
			col++
		}
	}
	e.width = col + 1 // bias
	e.mean = make([]float64, col)
	e.std = make([]float64, col)
	for i := range e.std {
		e.std[i] = 1
	}
	// Standardise numeric columns from training data.
	for a, attr := range d.Schema.Attrs {
		if attr.Kind != ml.Numeric {
			continue
		}
		j := e.offsets[a]
		var sum, sq, n float64
		for _, in := range d.Instances {
			v := in.X[a]
			if math.IsNaN(v) {
				continue
			}
			sum += v
			sq += v * v
			n++
		}
		if n > 0 {
			m := sum / n
			variance := sq/n - m*m
			if variance < 0 {
				variance = 0
			}
			s := math.Sqrt(variance)
			if s < 1e-9 {
				s = 1
			}
			e.mean[j], e.std[j] = m, s
		}
	}
	return e
}

// encode writes the dense row for x into out (length width).
func (e *encoder) encode(x []float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for a, attr := range e.schema.Attrs {
		v := x[a]
		if math.IsNaN(v) {
			continue // missing: all-zero block
		}
		j := e.offsets[a]
		if attr.Kind == ml.Nominal {
			vi := int(v)
			if vi >= 0 && vi < attr.NumValues() {
				out[j+vi] = 1
			}
		} else {
			out[j] = (v - e.mean[j]) / e.std[j]
		}
	}
	out[e.width-1] = 1 // bias
}

// sparseEntry is one non-zero cell of an encoded design row. One-hot
// encoded nominal attributes make rows extremely sparse; training iterates
// non-zeros only, which matters at the paper's 96-attribute × 16-symbol
// configurations.
type sparseEntry struct {
	j int
	v float64
}

// Fit trains by maximising the L2-penalised multinomial log-likelihood.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyTrainingSet
	}
	c.schema = d.Schema
	c.enc = newEncoder(d)
	n := d.Len()
	nc := d.Schema.NumClasses()
	width := c.enc.width

	// Pre-encode the design matrix, sparsely.
	rows := make([][]sparseEntry, n)
	dense := make([]float64, width)
	for i, in := range d.Instances {
		c.enc.encode(in.X, dense)
		for j, v := range dense {
			if v != 0 {
				rows[i] = append(rows[i], sparseEntry{j: j, v: v})
			}
		}
	}

	// Weights for nc-1 classes (last class is reference).
	c.w = make([][]float64, nc-1)
	for i := range c.w {
		c.w[i] = make([]float64, width)
	}

	step := 0.5
	prevLoss := math.Inf(1)
	probs := make([]float64, nc)
	grad := make([][]float64, nc-1)
	for i := range grad {
		grad[i] = make([]float64, width)
	}
	for iter := 0; iter < c.cfg.MaxIter; iter++ {
		for i := range grad {
			for j := range grad[i] {
				grad[i][j] = 0
			}
		}
		loss := 0.0
		for i := 0; i < n; i++ {
			c.scoresSparse(rows[i], probs)
			softmaxInPlace(probs)
			y := d.Instances[i].Class
			loss -= math.Log(math.Max(probs[y], 1e-300))
			for cl := 0; cl < nc-1; cl++ {
				delta := probs[cl]
				if cl == y {
					delta -= 1
				}
				g := grad[cl]
				for _, e := range rows[i] {
					g[e.j] += delta * e.v
				}
			}
		}
		// Ridge penalty (not on bias).
		var gnorm float64
		for cl := range grad {
			for j := 0; j < width-1; j++ {
				grad[cl][j] += c.cfg.Ridge * c.w[cl][j]
				loss += 0.5 * c.cfg.Ridge * c.w[cl][j] * c.w[cl][j]
			}
			for j := range grad[cl] {
				gnorm += grad[cl][j] * grad[cl][j]
			}
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < c.cfg.Tol {
			break
		}
		// Backtracking: if the loss went up, halve the step and continue;
		// otherwise grow it slightly.
		if loss > prevLoss {
			step *= 0.5
			if step < 1e-12 {
				break
			}
		} else {
			step *= 1.05
		}
		prevLoss = loss
		lr := step / float64(n)
		for cl := range c.w {
			g := grad[cl]
			w := c.w[cl]
			for j := range w {
				w[j] -= lr * g[j]
			}
		}
	}
	return nil
}

// scores fills out[0..nc-1] with linear scores (reference class scores 0).
func (c *Classifier) scores(row []float64, out []float64) {
	nc := c.schema.NumClasses()
	for cl := 0; cl < nc-1; cl++ {
		var s float64
		w := c.w[cl]
		for j, rv := range row {
			if rv != 0 {
				s += w[j] * rv
			}
		}
		out[cl] = s
	}
	out[nc-1] = 0
}

// scoresSparse is scores over a sparse row.
func (c *Classifier) scoresSparse(row []sparseEntry, out []float64) {
	nc := c.schema.NumClasses()
	for cl := 0; cl < nc-1; cl++ {
		var s float64
		w := c.w[cl]
		for _, e := range row {
			s += w[e.j] * e.v
		}
		out[cl] = s
	}
	out[nc-1] = 0
}

func softmaxInPlace(xs []float64) {
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	var z float64
	for i := range xs {
		xs[i] = math.Exp(xs[i] - max)
		z += xs[i]
	}
	for i := range xs {
		xs[i] /= z
	}
}

// PredictProba returns class probabilities.
func (c *Classifier) PredictProba(x []float64) []float64 {
	if c.w == nil {
		panic(ml.ErrNotFitted)
	}
	row := make([]float64, c.enc.width)
	c.enc.encode(x, row)
	out := make([]float64, c.schema.NumClasses())
	c.scores(row, out)
	softmaxInPlace(out)
	return out
}

// Predict returns the most probable class.
func (c *Classifier) Predict(x []float64) int {
	p := c.PredictProba(x)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

var _ ml.ProbClassifier = (*Classifier)(nil)
