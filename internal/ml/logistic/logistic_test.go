package logistic

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/ml"
)

func TestLinearlySeparableNumeric(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("x"), ml.NumericAttr("y"),
	}, []string{"neg", "pos"})
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x, y := rng.NormFloat64(), rng.NormFloat64()
		class := 0
		if x+y > 0 {
			class = 1
		}
		d.MustAdd([]float64{x, y}, class)
	}
	lg := NewDefault()
	if err := lg.Fit(d); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		x, y := rng.NormFloat64(), rng.NormFloat64()
		want := 0
		if x+y > 0 {
			want = 1
		}
		if lg.Predict([]float64{x, y}) == want {
			correct++
		}
	}
	if correct < 185 {
		t.Fatalf("logistic accuracy %d/200 on separable data", correct)
	}
}

func TestMulticlassNominal(t *testing.T) {
	// Three classes keyed by a nominal attribute.
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("s", []string{"a", "b", "c"}),
		ml.NominalAttr("noise", []string{"x", "y"}),
	}, []string{"c0", "c1", "c2"})
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		class := rng.Intn(3)
		v := float64(class)
		if rng.Float64() < 0.1 {
			v = float64(rng.Intn(3))
		}
		d.MustAdd([]float64{v, float64(rng.Intn(2))}, class)
	}
	lg := NewDefault()
	if err := lg.Fit(d); err != nil {
		t.Fatal(err)
	}
	for class := 0; class < 3; class++ {
		if got := lg.Predict([]float64{float64(class), 0}); got != class {
			t.Fatalf("Predict(s=%d) = %d", class, got)
		}
	}
}

func TestProbaSumsToOne(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b", "c"})
	d := ml.NewDataset(schema)
	for i := 0; i < 30; i++ {
		d.MustAdd([]float64{float64(i % 3)}, i%3)
	}
	lg := NewDefault()
	if err := lg.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := lg.PredictProba([]float64{1})
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative probability: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestMissingValuesHandled(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("x"), ml.NominalAttr("s", []string{"a", "b"}),
	}, []string{"p", "q"})
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		class := rng.Intn(2)
		x := []float64{float64(class)*2 - 1 + rng.NormFloat64()*0.2, float64(class)}
		if i%10 == 0 {
			x[0] = math.NaN()
		}
		d.MustAdd(x, class)
	}
	lg := NewDefault()
	if err := lg.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := lg.Predict([]float64{math.NaN(), 1}); got != 1 {
		t.Fatalf("Predict(missing numeric) = %d", got)
	}
}

func TestEmptyErrorsAndUnfittedPanics(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	if err := NewDefault().Fit(ml.NewDataset(schema)); err == nil {
		t.Fatal("empty training set should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDefault().Predict([]float64{0})
}

func TestZeroVarianceNumericAttr(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NumericAttr("const"), ml.NumericAttr("x"),
	}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	for i := 0; i < 40; i++ {
		class := i % 2
		d.MustAdd([]float64{7, float64(class)}, class)
	}
	lg := NewDefault()
	if err := lg.Fit(d); err != nil {
		t.Fatal(err)
	}
	if lg.Predict([]float64{7, 0}) != 0 || lg.Predict([]float64{7, 1}) != 1 {
		t.Fatal("constant attribute broke training")
	}
}

func TestConfigDefaults(t *testing.T) {
	lg := New(Config{})
	if lg.cfg.MaxIter != 500 || lg.cfg.Tol <= 0 {
		t.Fatalf("defaults = %+v", lg.cfg)
	}
}
