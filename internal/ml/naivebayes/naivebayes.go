// Package naivebayes implements the Naive Bayes classifier used throughout
// the paper's classification and forecasting experiments (Figs. 5, 8 and
// Table 1). Nominal attributes use category frequencies with Laplace
// smoothing; numeric attributes use per-class Gaussians — matching Weka's
// NaiveBayes defaults closely enough for the paper's comparisons.
package naivebayes

import (
	"math"

	"symmeter/internal/ml"
)

// Classifier is a mixed nominal/numeric Naive Bayes model.
type Classifier struct {
	schema *ml.Schema
	// logPrior[c] is log P(class = c), Laplace-smoothed.
	logPrior []float64
	// nominal[a][c][v] is log P(attr a = v | class c) for nominal attrs.
	nominal [][][]float64
	// gauss[a][c] holds the Gaussian parameters for numeric attrs.
	gauss [][]gaussian
}

type gaussian struct {
	mean, std float64
	ok        bool // false when the class had no values for this attribute
}

// minStd floors the Gaussian standard deviation like Weka does (precision
// floor) so single-valued attributes do not produce infinite densities.
const minStd = 1e-3

// New returns an untrained Naive Bayes classifier.
func New() *Classifier { return &Classifier{} }

// Fit estimates priors and per-attribute likelihoods.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrEmptyTrainingSet
	}
	c.schema = d.Schema
	nc := d.Schema.NumClasses()
	na := d.Schema.NumAttrs()

	// Priors with Laplace smoothing.
	counts := d.ClassCounts()
	c.logPrior = make([]float64, nc)
	for i, n := range counts {
		c.logPrior[i] = math.Log(float64(n+1) / float64(d.Len()+nc))
	}

	c.nominal = make([][][]float64, na)
	c.gauss = make([][]gaussian, na)
	for a := 0; a < na; a++ {
		attr := d.Schema.Attrs[a]
		if attr.Kind == ml.Nominal {
			c.fitNominal(d, a, nc)
		} else {
			c.fitNumeric(d, a, nc)
		}
	}
	return nil
}

func (c *Classifier) fitNominal(d *ml.Dataset, a, nc int) {
	nv := d.Schema.Attrs[a].NumValues()
	table := make([][]float64, nc)
	for cl := 0; cl < nc; cl++ {
		table[cl] = make([]float64, nv)
	}
	classTotals := make([]float64, nc)
	for _, in := range d.Instances {
		v := in.X[a]
		if math.IsNaN(v) {
			continue
		}
		table[in.Class][int(v)]++
		classTotals[in.Class]++
	}
	for cl := 0; cl < nc; cl++ {
		for v := 0; v < nv; v++ {
			table[cl][v] = math.Log((table[cl][v] + 1) / (classTotals[cl] + float64(nv)))
		}
	}
	c.nominal[a] = table
}

func (c *Classifier) fitNumeric(d *ml.Dataset, a, nc int) {
	sums := make([]float64, nc)
	sqs := make([]float64, nc)
	ns := make([]float64, nc)
	for _, in := range d.Instances {
		v := in.X[a]
		if math.IsNaN(v) {
			continue
		}
		sums[in.Class] += v
		sqs[in.Class] += v * v
		ns[in.Class]++
	}
	gs := make([]gaussian, nc)
	for cl := 0; cl < nc; cl++ {
		if ns[cl] == 0 {
			continue
		}
		mean := sums[cl] / ns[cl]
		variance := sqs[cl]/ns[cl] - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance)
		if std < minStd {
			std = minStd
		}
		gs[cl] = gaussian{mean: mean, std: std, ok: true}
	}
	c.gauss[a] = gs
}

// logLikelihoods returns the unnormalised per-class log scores.
func (c *Classifier) logLikelihoods(x []float64) []float64 {
	nc := c.schema.NumClasses()
	scores := append([]float64(nil), c.logPrior...)
	for a, attr := range c.schema.Attrs {
		v := x[a]
		if math.IsNaN(v) {
			continue // missing attributes contribute nothing
		}
		if attr.Kind == ml.Nominal {
			vi := int(v)
			if vi < 0 || vi >= attr.NumValues() {
				continue
			}
			for cl := 0; cl < nc; cl++ {
				scores[cl] += c.nominal[a][cl][vi]
			}
		} else {
			for cl := 0; cl < nc; cl++ {
				g := c.gauss[a][cl]
				if !g.ok {
					scores[cl] += math.Log(1e-12)
					continue
				}
				z := (v - g.mean) / g.std
				scores[cl] += -0.5*z*z - math.Log(g.std) - 0.5*math.Log(2*math.Pi)
			}
		}
	}
	return scores
}

// Predict returns the class with the highest posterior. It panics if called
// before Fit (programmer error surfaced loudly, matching the Classifier
// contract used by the evaluation harness).
func (c *Classifier) Predict(x []float64) int {
	scores := c.logLikelihoods(x)
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return best
}

// PredictProba returns normalised posteriors via log-sum-exp.
func (c *Classifier) PredictProba(x []float64) []float64 {
	scores := c.logLikelihoods(x)
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	var z float64
	for i := range scores {
		scores[i] = math.Exp(scores[i] - max)
		z += scores[i]
	}
	for i := range scores {
		scores[i] /= z
	}
	return scores
}

var _ ml.ProbClassifier = (*Classifier)(nil)
