package naivebayes

import (
	"math"
	"math/rand"
	"testing"

	"symmeter/internal/ml"
)

func nominalDataset(t *testing.T) *ml.Dataset {
	t.Helper()
	// The classic weather-style toy: class 0 prefers value 0, class 1
	// prefers value 2.
	schema, err := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("sym1", []string{"a", "b", "c"}),
		ml.NominalAttr("sym2", []string{"a", "b", "c"}),
	}, []string{"h1", "h2"})
	if err != nil {
		t.Fatal(err)
	}
	d := ml.NewDataset(schema)
	for i := 0; i < 20; i++ {
		d.MustAdd([]float64{0, float64(i % 2)}, 0)
		d.MustAdd([]float64{2, float64(2 - i%2)}, 1)
	}
	return d
}

func TestFitEmptyErrors(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	if err := New().Fit(ml.NewDataset(schema)); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestNominalClassification(t *testing.T) {
	d := nominalDataset(t)
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := nb.Predict([]float64{0, 0}); got != 0 {
		t.Fatalf("Predict([0,0]) = %d, want 0", got)
	}
	if got := nb.Predict([]float64{2, 2}); got != 1 {
		t.Fatalf("Predict([2,2]) = %d, want 1", got)
	}
}

func TestGaussianClassification(t *testing.T) {
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x"), ml.NumericAttr("y")},
		[]string{"lo", "hi"})
	d := ml.NewDataset(schema)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d.MustAdd([]float64{rng.NormFloat64() + 0, rng.NormFloat64() + 0}, 0)
		d.MustAdd([]float64{rng.NormFloat64() + 5, rng.NormFloat64() + 5}, 1)
	}
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if nb.Predict([]float64{rng.NormFloat64(), rng.NormFloat64()}) == 0 {
			correct++
		}
		if nb.Predict([]float64{rng.NormFloat64() + 5, rng.NormFloat64() + 5}) == 1 {
			correct++
		}
	}
	if correct < 190 {
		t.Fatalf("accuracy %d/200 on well-separated Gaussians", correct)
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	d := nominalDataset(t)
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := nb.PredictProba([]float64{0, 1})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestMissingValuesIgnored(t *testing.T) {
	d := nominalDataset(t)
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	// All-missing instance falls back to the prior (balanced here), and must
	// not panic or return out-of-range classes.
	got := nb.Predict([]float64{math.NaN(), math.NaN()})
	if got != 0 && got != 1 {
		t.Fatalf("Predict(all missing) = %d", got)
	}
	// Training with missing values must not crash either.
	d.MustAdd([]float64{math.NaN(), 0}, 0)
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceSmoothingUnseenValue(t *testing.T) {
	// A value never seen in training must not zero out the posterior.
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("s", []string{"a", "b", "c"}),
	}, []string{"x", "y"})
	d := ml.NewDataset(schema)
	for i := 0; i < 5; i++ {
		d.MustAdd([]float64{0}, 0)
		d.MustAdd([]float64{1}, 1)
	}
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := nb.PredictProba([]float64{2}) // value "c" unseen
	if math.IsNaN(p[0]) || p[0] <= 0 || p[1] <= 0 {
		t.Fatalf("smoothing failed: %v", p)
	}
}

func TestSingleValuedNumericAttribute(t *testing.T) {
	// Zero-variance attribute: the std floor must avoid division by zero.
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	for i := 0; i < 4; i++ {
		d.MustAdd([]float64{1}, 0)
		d.MustAdd([]float64{2}, 1)
	}
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]float64{1}) != 0 || nb.Predict([]float64{2}) != 1 {
		t.Fatal("exact-value prediction failed")
	}
}

func TestClassWithNoNumericValues(t *testing.T) {
	// One class has only missing numerics; prediction must stay finite.
	schema, _ := ml.NewSchema([]ml.Attribute{ml.NumericAttr("x")}, []string{"a", "b"})
	d := ml.NewDataset(schema)
	d.MustAdd([]float64{1}, 0)
	d.MustAdd([]float64{1.5}, 0)
	d.MustAdd([]float64{math.NaN()}, 1)
	d.MustAdd([]float64{math.NaN()}, 1)
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	p := nb.PredictProba([]float64{1.2})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Fatalf("NaN probabilities: %v", p)
	}
	if nb.Predict([]float64{1.2}) != 0 {
		t.Fatal("class with data should win near its mean")
	}
}

func TestPriorsInfluenceTies(t *testing.T) {
	// With a non-informative attribute, the majority class wins.
	schema, _ := ml.NewSchema([]ml.Attribute{
		ml.NominalAttr("s", []string{"a"}),
	}, []string{"rare", "common"})
	d := ml.NewDataset(schema)
	d.MustAdd([]float64{0}, 0)
	for i := 0; i < 9; i++ {
		d.MustAdd([]float64{0}, 1)
	}
	nb := New()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]float64{0}) != 1 {
		t.Fatal("prior should favour the common class")
	}
}
