package ar

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitRecoversAR2(t *testing.T) {
	// y_t = 5 + 0.6 y_{t-1} - 0.3 y_{t-2} + small noise.
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 2000)
	series[0], series[1] = 5, 5
	for t2 := 2; t2 < len(series); t2++ {
		series[t2] = 5 + 0.6*series[t2-1] - 0.3*series[t2-2] + rng.NormFloat64()*0.05
	}
	m, err := Fit(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-0.6) > 0.05 || math.Abs(m.Coef[1]+0.3) > 0.05 {
		t.Fatalf("coef = %v, want ~[0.6 -0.3]", m.Coef)
	}
	if math.Abs(m.Intercept-5) > 0.5 {
		t.Fatalf("intercept = %v, want ~5", m.Intercept)
	}
}

func TestPredictAndForecast(t *testing.T) {
	// Perfect AR(1): y_t = 2 + 0.5 y_{t-1}.
	series := make([]float64, 200)
	series[0] = 10
	for i := 1; i < len(series); i++ {
		series[i] = 2 + 0.5*series[i-1]
	}
	m, err := Fit(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict([]float64{4})
	if err != nil || math.Abs(got-4) > 0.01 {
		t.Fatalf("Predict = %v, %v (want 2+0.5*4 = 4)", got, err)
	}
	fc, err := m.Forecast(series, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed point of the recursion is 4.
	for _, v := range fc {
		if math.Abs(v-4) > 0.05 {
			t.Fatalf("forecast = %v, want ~4", fc)
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("order 0 should error")
	}
	if _, err := Fit([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("too-short series should error")
	}
}

func TestPredictValidation(t *testing.T) {
	series := make([]float64, 50)
	for i := range series {
		series[i] = float64(i % 7)
	}
	m, err := Fit(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong lag count should error")
	}
	if _, err := m.Forecast([]float64{1}, 3); err == nil {
		t.Fatal("short history should error")
	}
}

func TestSeasonalNaive(t *testing.T) {
	history := []float64{1, 2, 3, 10, 20, 30}
	fc, err := SeasonalNaive(history, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 10, 20}
	for i := range want {
		if fc[i] != want[i] {
			t.Fatalf("forecast = %v, want %v", fc, want)
		}
	}
	if _, err := SeasonalNaive([]float64{1}, 3, 2); err == nil {
		t.Fatal("short history should error")
	}
	if _, err := SeasonalNaive(history, 0, 2); err == nil {
		t.Fatal("period 0 should error")
	}
}

func TestForecastDailyPattern(t *testing.T) {
	// AR(24) captures a clean daily pattern well.
	series := make([]float64, 24*20)
	for i := range series {
		hour := i % 24
		series[i] = 100 + 50*math.Sin(2*math.Pi*float64(hour)/24)
	}
	m, err := Fit(series, 24)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(series, 24)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i, v := range fc {
		hour := (len(series) + i) % 24
		truth := 100 + 50*math.Sin(2*math.Pi*float64(hour)/24)
		mae += math.Abs(v - truth)
	}
	mae /= 24
	if mae > 1 {
		t.Fatalf("AR(24) MAE on clean daily pattern = %v", mae)
	}
}
