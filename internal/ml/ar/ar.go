// Package ar implements autoregressive load forecasting — the AR(p) core of
// the ARMA models the paper cites among standard short-term load
// forecasting techniques (Huang & Shih 2003; Taylor 2010). It serves as a
// second raw-value forecasting baseline next to the SVR, fitted by ordinary
// least squares over lagged values with an optional daily-seasonal naive
// component.
package ar

import (
	"errors"
	"math"
)

// Model is a fitted AR(p) model: y_t = c + Σ φ_i · y_{t-i}.
type Model struct {
	// Coef holds φ_1..φ_p.
	Coef []float64
	// Intercept is c.
	Intercept float64
	// P is the order.
	P int
}

// Fit estimates an AR(p) model from the series by least squares on the lag
// matrix (conditional MLE). The series must have at least 2p+2 points.
func Fit(series []float64, p int) (*Model, error) {
	if p < 1 {
		return nil, errors.New("ar: order must be >= 1")
	}
	n := len(series) - p
	if n < p+2 {
		return nil, errors.New("ar: series too short for requested order")
	}
	// Build normal equations for [1, y_{t-1..t-p}] → y_t.
	dim := p + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	atb := make([]float64, dim)
	row := make([]float64, dim)
	for t := p; t < len(series); t++ {
		row[0] = 1
		for i := 1; i <= p; i++ {
			row[i] = series[t-i]
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * series[t]
		}
	}
	// Ridge for numerical safety.
	for i := 1; i < dim; i++ {
		ata[i][i] += 1e-8
	}
	sol, err := solve(ata, atb)
	if err != nil {
		return nil, err
	}
	return &Model{Intercept: sol[0], Coef: sol[1:], P: p}, nil
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, errors.New("ar: singular normal equations")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// Predict returns the one-step forecast given the most recent p values
// (lags[0] is y_{t-p} ... lags[p-1] is y_{t-1}).
func (m *Model) Predict(lags []float64) (float64, error) {
	if len(lags) != m.P {
		return 0, errors.New("ar: wrong number of lags")
	}
	y := m.Intercept
	for i := 1; i <= m.P; i++ {
		y += m.Coef[i-1] * lags[m.P-i]
	}
	return y, nil
}

// Forecast iterates Predict h steps ahead, feeding predictions back.
func (m *Model) Forecast(history []float64, h int) ([]float64, error) {
	if len(history) < m.P {
		return nil, errors.New("ar: history shorter than order")
	}
	buf := append([]float64(nil), history[len(history)-m.P:]...)
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		y, err := m.Predict(buf)
		if err != nil {
			return nil, err
		}
		out[i] = y
		buf = append(buf[1:], y)
	}
	return out, nil
}

// SeasonalNaive returns the naive daily-seasonal forecast: the value
// `period` steps earlier. It is the standard sanity baseline for hourly
// load (period 24).
func SeasonalNaive(history []float64, period, h int) ([]float64, error) {
	if period <= 0 || len(history) < period {
		return nil, errors.New("ar: history shorter than one period")
	}
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		out[i] = history[len(history)-period+(i%period)]
	}
	return out, nil
}
