package ml

import (
	"math"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		NominalAttr("color", []string{"red", "green", "blue"}),
		NumericAttr("weight"),
	}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(nil, []string{"a", "b"}); err == nil {
		t.Fatal("no attributes should error")
	}
	if _, err := NewSchema([]Attribute{NumericAttr("x")}, []string{"only"}); err == nil {
		t.Fatal("one class should error")
	}
	if _, err := NewSchema([]Attribute{NominalAttr("x", nil)}, []string{"a", "b"}); err == nil {
		t.Fatal("empty nominal values should error")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.NumAttrs() != 2 || s.NumClasses() != 2 {
		t.Fatalf("schema = %+v", s)
	}
	if s.Attrs[0].NumValues() != 3 {
		t.Fatal("NumValues")
	}
	if Numeric.String() != "numeric" || Nominal.String() != "nominal" || Kind(9).String() == "" {
		t.Fatal("Kind.String coverage")
	}
}

func TestDatasetAddValidation(t *testing.T) {
	d := NewDataset(testSchema(t))
	if err := d.Add([]float64{0, 1.5}, 0); err != nil {
		t.Fatalf("valid add: %v", err)
	}
	if err := d.Add([]float64{1}, 0); err == nil {
		t.Fatal("wrong width should error")
	}
	if err := d.Add([]float64{0, 1}, 5); err == nil {
		t.Fatal("class out of range should error")
	}
	if err := d.Add([]float64{3, 1}, 0); err == nil {
		t.Fatal("nominal index out of range should error")
	}
	if err := d.Add([]float64{0.5, 1}, 0); err == nil {
		t.Fatal("fractional nominal index should error")
	}
	if err := d.Add([]float64{math.NaN(), math.NaN()}, 1); err != nil {
		t.Fatalf("missing values should be allowed: %v", err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestMustAddPanics(t *testing.T) {
	d := NewDataset(testSchema(t))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MustAdd([]float64{9, 9}, 0)
}

func TestClassCountsAndMajority(t *testing.T) {
	d := NewDataset(testSchema(t))
	d.MustAdd([]float64{0, 1}, 0)
	d.MustAdd([]float64{1, 2}, 1)
	d.MustAdd([]float64{2, 3}, 1)
	counts := d.ClassCounts()
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("ClassCounts = %v", counts)
	}
	if d.MajorityClass() != 1 {
		t.Fatalf("MajorityClass = %d", d.MajorityClass())
	}
}

func TestSubsetSharesInstances(t *testing.T) {
	d := NewDataset(testSchema(t))
	d.MustAdd([]float64{0, 1}, 0)
	d.MustAdd([]float64{1, 2}, 1)
	d.MustAdd([]float64{2, 3}, 0)
	sub := d.Subset([]int{2, 0})
	if sub.Len() != 2 {
		t.Fatalf("Len = %d", sub.Len())
	}
	if sub.Instances[0].X[0] != 2 || sub.Instances[1].X[0] != 0 {
		t.Fatalf("Subset order wrong: %+v", sub.Instances)
	}
}
