// Package storage is the durability layer under the in-memory aggregation
// store: a per-shard write-ahead log for everything a session commits, plus
// immutable segment files that sealed blocks spill into the moment they
// seal, plus crash recovery that rebuilds a byte-identical store from the
// newest segment manifest and the WAL tails above it.
//
// The split mirrors the store's own hot/cold split. The WAL is the hot
// tail's durability: every Append batch and table push is framed, CRC'd and
// written (one write(2) per batch) before the store commits it, so an
// acknowledged batch survives process death in every sync mode and OS death
// per the chosen SyncMode. Segments are the sealed data's durability *and*
// its eviction: the seal path hands each finished 512-symbol block to the
// shard's segment writer, which appends the packed payload to a
// preallocated, mmapped file and returns the mapped bytes for the store to
// adopt — after which queries aggregate directly over the on-disk words
// through the same packed-domain kernels, and resident memory is bounded by
// live tails, summaries and directories no matter how much history
// accumulates.
//
// Recovery replays in two layers: manifest-listed segments rebuild each
// meter's sealed chain (summaries and the firstT directory come from the
// segment footer — no payload is decoded), then the WAL replays through the
// normal Append path with each meter's already-restored point count skipped,
// rebuilding the live tails and any blocks that sealed after the last
// finished segment. Anything torn at the very end of a WAL was never
// acknowledged and is truncated; damage anywhere else fails recovery loudly
// (ErrWALCorrupt) rather than silently dropping acknowledged data.
//
// Every filesystem operation goes through the FS seam (fs.go), and every
// durability failure is classified by the health state machine (health.go):
// the engine degrades to queries-only instead of crashing or lying, and
// heals onto a fresh WAL generation when the directory recovers.
package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"symmeter/internal/metrics"
	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if missing). Its layout:
	// MANIFEST.json, wal/shard-NNNN[-GGGGGG].wal, seg/NNNN-SSSSSS.seg.
	Dir string
	// Shards is the store's shard count for a fresh directory; an existing
	// directory's manifest takes precedence (the WAL files are per-shard).
	Shards int
	// Sync is the WAL durability mode; the default is SyncGroup.
	Sync SyncMode
	// GroupInterval is the background fsync cadence under SyncGroup
	// (default 2ms) — the OS-crash data-loss bound.
	GroupInterval time.Duration
	// SegmentBytes caps one segment file's preallocated size (default 4MiB,
	// min 64KiB).
	SegmentBytes int
	// FS is the filesystem the engine writes through; nil means the real
	// one (OsFS). Tests inject internal/faultfs here.
	FS FS
	// ProbeInterval is the cadence of the background health probe that
	// re-tests a degraded data directory (default 500ms).
	ProbeInterval time.Duration
	// Metrics is the registry the engine's telemetry (WAL latency recorders,
	// health gauges, fault counters) registers on. Nil creates a private
	// registry, so the recording paths never branch on telemetry being
	// enabled. Pass the serving registry to expose the series on /metrics;
	// never share one registry between two engines — the series collide.
	Metrics *metrics.Registry
}

// RecoveryStats reports what Open rebuilt.
type RecoveryStats struct {
	// Segments and SegmentBlocks/SegmentPoints count the sealed state
	// restored from manifest-listed segment files without decoding.
	Segments      int
	SegmentBlocks int
	SegmentPoints int64
	// WALRecords is the total parsed log records; ReplayedPoints the points
	// re-appended through the store (tails plus post-manifest seals);
	// SkippedPoints the points the segment restore already covered.
	WALRecords     int
	ReplayedPoints int64
	SkippedPoints  int64
	// TornTails counts WAL files whose unacknowledged trailing write was
	// dropped and truncated.
	TornTails int
	// Meters is the number of recovered meters.
	Meters int
}

// meterMeta is the engine's per-meter ingest state (current epoch and symbol
// level), used to frame WAL batch records and pre-validate appends before
// they are logged, plus the sequenced-ingest high-water mark. Fields are
// written only by the meter's single session goroutine (the same
// serialization the wire protocol imposes); cross-session visibility rides
// the store's shard lock in EndSession/StartSession.
type meterMeta struct {
	epoch int
	level int
	// seq is the highest committed session sequence number — the value a
	// reconnecting client learns in its handshake ack. It advances only
	// after the store commit, so an acked seq is always readable.
	seq uint64
}

// Engine wraps a server.Store with the WAL + segment durability layer. It
// implements server.Ingest, so a Service routes session writes through it
// unchanged. Flush and Close require ingest to be quiesced (sessions
// drained): the segment writers run under the store's shard locks on the
// seal path and are not otherwise synchronized.
type Engine struct {
	opts  Options
	fs    FS
	store *server.Store
	segs  []*segmentWriter

	// wals holds each shard's current log behind an atomic pointer so a
	// heal can rotate in a fresh generation while appends are in flight; a
	// retired log stays open (its records are the replay source and
	// stragglers may still touch it) until Close.
	wals      []atomic.Pointer[wal]
	walGen    atomic.Uint64
	retiredMu sync.Mutex
	retired   []*wal

	meters sync.Map // meterID → *meterMeta

	manMu sync.Mutex
	man   manifest

	mapsMu sync.Mutex
	maps   [][]byte

	health healthState
	met    *engineMetrics

	stop   chan struct{}
	syncWG sync.WaitGroup
	closed atomic.Bool

	recovered RecoveryStats
}

// Open recovers (or initializes) the data directory and returns the engine
// with its rebuilt store. The store answers queries immediately; install the
// engine as the service's Ingest to make new traffic durable.
func Open(opts Options) (*Engine, error) {
	if opts.Dir == "" {
		return nil, errors.New("storage: Options.Dir is required")
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SegmentBytes < 64<<10 {
		opts.SegmentBytes = 64 << 10
	}
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = 2 * time.Millisecond
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 500 * time.Millisecond
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = OsFS{}
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "wal"), filepath.Join(opts.Dir, "seg")} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	man, haveMan, migrated, err := loadManifest(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	if !haveMan {
		man = manifest{Format: manifestFormat, Shards: opts.Shards}
	}
	if !haveMan || migrated {
		if err := writeManifest(fsys, opts.Dir, man); err != nil {
			return nil, err
		}
	}
	// The directory's shard count wins: the WAL is partitioned by it.
	opts.Shards = man.Shards

	reg := opts.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	e := &Engine{
		opts:  opts,
		fs:    fsys,
		store: server.NewStore(man.Shards),
		man:   man,
		met:   newEngineMetrics(reg),
	}
	e.registerHealthMetrics()
	e.walGen.Store(man.WALGen)
	if err := e.recover(); err != nil {
		e.unwind()
		return nil, err
	}
	e.stop = make(chan struct{})
	// The probe runs for the engine's lifetime (idle while Healthy) so a
	// degrade never has to race a goroutine start against Close.
	e.syncWG.Add(1)
	go e.probeLoop(opts.ProbeInterval)
	if opts.Sync == SyncGroup {
		e.syncWG.Add(1)
		go e.groupSync()
	}
	return e, nil
}

// Store returns the recovered (and live) aggregation store.
func (e *Engine) Store() *server.Store { return e.store }

// Recovery returns what Open rebuilt.
func (e *Engine) Recovery() RecoveryStats { return e.recovered }

// Sync returns the engine's WAL durability mode.
func (e *Engine) Sync() SyncMode { return e.opts.Sync }

func (e *Engine) segDir() string { return filepath.Join(e.opts.Dir, "seg") }

// walGenPath names shard's log at the given generation. Generation 0 is the
// original pre-rotation layout (format 1 directories have only it).
func (e *Engine) walGenPath(shard int, gen uint64) string {
	if gen == 0 {
		return filepath.Join(e.opts.Dir, "wal", fmt.Sprintf("shard-%04d.wal", shard))
	}
	return filepath.Join(e.opts.Dir, "wal", fmt.Sprintf("shard-%04d-%06d.wal", shard, gen))
}

// walGenOf parses a log file name's generation; ok is false for names that
// are not shard logs.
func walGenOf(name string) (gen uint64, ok bool) {
	if !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "shard-"), ".wal")
	switch parts := strings.Split(mid, "-"); len(parts) {
	case 1:
		return 0, true
	case 2:
		g, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return g, true
	}
	return 0, false
}

// recover rebuilds the store: orphan cleanup, segment restore, WAL replay,
// torn-tail truncation, seal-sink installation. On error the caller (Open)
// unwinds every file and mapping opened so far.
func (e *Engine) recover() error {
	shards := e.opts.Shards

	// 1. Drop segment files the manifest does not list — the open segment of
	// a crashed run has no footer and its blocks replay from the WAL — and
	// WAL generations above the manifest's: a heal that crashed before its
	// manifest barrier never acknowledged anything into them.
	listed := make(map[string]bool, len(e.man.Segments))
	nextSeq := make([]uint64, shards)
	for _, ms := range e.man.Segments {
		listed[ms.File] = true
		if ms.Shard >= 0 && ms.Shard < shards && ms.Seq >= nextSeq[ms.Shard] {
			nextSeq[ms.Shard] = ms.Seq + 1
		}
	}
	entries, err := e.fs.ReadDir(e.segDir())
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if !ent.IsDir() && !listed[ent.Name()] {
			if err := e.fs.Remove(filepath.Join(e.segDir(), ent.Name())); err != nil {
				return err
			}
		}
	}
	walEntries, err := e.fs.ReadDir(filepath.Join(e.opts.Dir, "wal"))
	if err != nil {
		return err
	}
	for _, ent := range walEntries {
		if gen, ok := walGenOf(ent.Name()); ok && gen > e.man.WALGen {
			if err := e.fs.Remove(filepath.Join(e.opts.Dir, "wal", ent.Name())); err != nil {
				return err
			}
		}
	}

	// 2. Load manifest segments: sealed chains per meter, in spill order
	// (manifest order is per-shard finish order), plus per-meter skip
	// counts for the replay.
	perMeter := make(map[uint64][]server.SealedBlock)
	skip := make(map[uint64]int64)
	for _, ms := range e.man.Segments {
		if ms.Shard < 0 || ms.Shard >= shards {
			return fmt.Errorf("storage: manifest segment %s claims shard %d of %d", ms.File, ms.Shard, shards)
		}
		blocks, mapping, err := loadSegment(e.fs, filepath.Join(e.segDir(), ms.File))
		if err != nil {
			return err
		}
		e.trackMapping(mapping)
		e.recovered.Segments++
		for _, sb := range blocks {
			perMeter[sb.meterID] = append(perMeter[sb.meterID], sb.blk)
			skip[sb.meterID] += int64(sb.blk.N)
			e.recovered.SegmentBlocks++
			e.recovered.SegmentPoints += int64(sb.blk.N)
		}
	}

	// 3. Read and parse every shard's WAL — all generations up to the
	// manifest's, oldest first; a shard's record stream is their
	// concatenation. Each file tolerates its own torn tail (truncated here);
	// damage anywhere else is corruption. Collect each meter's table
	// history (pass 1 — the segment restore needs tables up front).
	type shardLog struct {
		recs  []walRecord
		valid int64 // current generation's intact byte length
	}
	logs := make([]shardLog, shards)
	tables := make(map[uint64][]*symbolic.Table)
	for i := 0; i < shards; i++ {
		for g := uint64(0); g <= e.man.WALGen; g++ {
			path := e.walGenPath(i, g)
			raw, err := e.fs.ReadFile(path)
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			if err != nil {
				return err
			}
			recs, valid, torn, err := parseWAL(raw)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if torn {
				if err := e.fs.Truncate(path, valid); err != nil {
					return err
				}
				e.recovered.TornTails++
			}
			logs[i].recs = append(logs[i].recs, recs...)
			if g == e.man.WALGen {
				logs[i].valid = valid
			}
			e.recovered.WALRecords += len(recs)
			for _, rec := range recs {
				typ, _, data, err := stripSeq(rec)
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				if typ == recTable {
					m, t, err := decodeTable(data)
					if err != nil {
						return fmt.Errorf("%s: %w", path, err)
					}
					tables[m] = append(tables[m], t)
				}
			}
		}
	}

	// 4. Restore sealed chains. Only the tables the restored blocks
	// reference are installed here; the replay pushes the rest in order.
	installed := make(map[uint64]int, len(perMeter))
	restoreOrder := make([]uint64, 0, len(perMeter))
	for m := range perMeter {
		restoreOrder = append(restoreOrder, m)
	}
	sort.Slice(restoreOrder, func(i, j int) bool { return restoreOrder[i] < restoreOrder[j] })
	for _, m := range restoreOrder {
		blks := perMeter[m]
		maxEpoch := 0
		for _, b := range blks {
			if b.Epoch > maxEpoch {
				maxEpoch = b.Epoch
			}
		}
		tl := tables[m]
		if len(tl) <= maxEpoch {
			return fmt.Errorf("%w: meter %d segments reference epoch %d but the log holds %d tables", ErrWALCorrupt, m, maxEpoch, len(tl))
		}
		if err := e.store.RestoreMeter(m, tl[:maxEpoch+1], blks); err != nil {
			return err
		}
		installed[m] = maxEpoch + 1
	}

	// 5. Install the seal sink before replaying, so blocks that seal during
	// replay spill to fresh segments exactly as live ones do and recovery's
	// resident memory stays bounded too.
	e.segs = make([]*segmentWriter, shards)
	for i := range e.segs {
		e.segs[i] = &segmentWriter{eng: e, shard: i, seq: nextSeq[i], cap: e.opts.SegmentBytes}
	}
	e.store.SetSealSink(e)

	// 6. Replay the logs through the normal ingest path, skipping the
	// already-restored prefix of each meter. Sequenced records ('t'/'b')
	// replay identically to their legacy twins and additionally advance the
	// meter's sequence high-water mark — a seq is tracked even for batches
	// the segment restore already covers, since those were committed too.
	tseen := make(map[uint64]int)
	maxSeq := make(map[uint64]uint64)
	var ptsScratch []symbolic.SymbolPoint
	var symScratch []symbolic.Symbol
	for i := 0; i < shards; i++ {
		for _, rec := range logs[i].recs {
			typ, seq, data, err := stripSeq(rec)
			if err != nil {
				return fmt.Errorf("shard %d wal: %w", i, err)
			}
			switch typ {
			case recTable:
				m, t, err := decodeTable(data)
				if err != nil {
					return fmt.Errorf("shard %d wal: %w", i, err)
				}
				if seq > maxSeq[m] {
					maxSeq[m] = seq
				}
				tseen[m]++
				if tseen[m] > installed[m] {
					if err := e.ensureMeter(m); err != nil {
						return err
					}
					if err := e.store.PushTable(m, t); err != nil {
						return replayErr(err)
					}
				}
			case recBatch:
				var br batchRecord
				br, ptsScratch, symScratch, err = decodeBatch(data, ptsScratch, symScratch)
				if err != nil {
					return fmt.Errorf("shard %d wal: %w", i, err)
				}
				if seq > maxSeq[br.meterID] {
					maxSeq[br.meterID] = seq
				}
				if int(br.epoch) != tseen[br.meterID]-1 {
					return fmt.Errorf("%w: meter %d batch under epoch %d, log position implies %d", ErrWALCorrupt, br.meterID, br.epoch, tseen[br.meterID]-1)
				}
				if sk := skip[br.meterID]; sk > 0 {
					n := int64(len(br.pts))
					if sk >= n {
						skip[br.meterID] = sk - n
						e.recovered.SkippedPoints += n
						continue
					}
					br.pts = br.pts[sk:]
					skip[br.meterID] = 0
					e.recovered.SkippedPoints += sk
				}
				if err := e.ensureMeter(br.meterID); err != nil {
					return err
				}
				if _, err := e.store.Append(br.meterID, br.pts); err != nil {
					return replayErr(err)
				}
				e.recovered.ReplayedPoints += int64(len(br.pts))
			default:
				return fmt.Errorf("%w: unknown record type %#x in shard %d wal", ErrWALCorrupt, rec.typ, i)
			}
		}
	}
	// Segments holding points the log no longer reaches means the WAL was
	// damaged or swapped — refuse rather than serve a silently shorter tail.
	for m, sk := range skip {
		if sk > 0 {
			return fmt.Errorf("%w: meter %d segments hold %d points past the end of the log", ErrWALCorrupt, m, sk)
		}
	}
	e.recovered.Meters = len(tables)

	// 7. Open the current generation's logs for appending (older
	// generations stay closed — they are replay-only history).
	e.wals = make([]atomic.Pointer[wal], shards)
	for i := 0; i < shards; i++ {
		f, err := e.fs.OpenFile(e.walGenPath(i, e.man.WALGen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		e.wals[i].Store(newWAL(f, logs[i].valid))
	}

	// 8. Hand each recovered meter its ingest state for live sessions,
	// including the sequence high-water mark the next session's handshake
	// ack will carry.
	for m, tl := range tables {
		if len(tl) > 0 {
			e.meters.Store(m, &meterMeta{epoch: len(tl) - 1, level: tl[len(tl)-1].Level(), seq: maxSeq[m]})
		}
	}
	return nil
}

// unwind releases everything a failed recover() opened — WAL fds, segment
// writer fds, mappings — so a failed Open leaks nothing.
func (e *Engine) unwind() {
	for i := range e.wals {
		if w := e.wals[i].Load(); w != nil {
			w.close()
		}
	}
	for _, sw := range e.segs {
		if sw != nil && sw.f != nil {
			sw.f.Close()
			sw.f = nil
		}
	}
	e.releaseMaps()
}

// replayErr classifies a store error hit while re-applying a log record.
// The store's validation errors mean the log's *content* is inconsistent
// with itself — that is corruption. Anything else (the respill path's
// segment I/O failing with a full disk, say) is an environmental failure on
// an intact log and must not be reported as damage: telling an operator the
// WAL is corrupt invites deleting a healthy one.
func replayErr(err error) error {
	for _, verr := range []error{server.ErrBadSymbol, server.ErrNoTable, server.ErrUnknownMeter, server.ErrDuplicateMeter} {
		if errors.Is(err, verr) {
			return fmt.Errorf("%w: replay: %v", ErrWALCorrupt, err)
		}
	}
	return fmt.Errorf("storage: replay: %w", err)
}

// ensureMeter registers a meter seen first in the WAL (no live session
// exists during replay, so the session slot is released immediately).
func (e *Engine) ensureMeter(meterID uint64) error {
	if _, ok := e.store.Meter(meterID); ok {
		return nil
	}
	if err := e.store.StartSession(meterID); err != nil {
		return err
	}
	e.store.EndSession(meterID)
	return nil
}

// SealedBlock implements server.SealSink by routing the block to its shard's
// segment writer (called under that shard's store lock). A spill failure is
// NOT a seal failure: the WAL already covers every point in the block, so
// the engine keeps the heap payload, counts the fallback, and lets the
// probe re-enable spilling when the directory recovers. Ingest keeps its
// durability promise either way.
func (e *Engine) SealedBlock(meterID uint64, blk server.SealedBlock) ([]byte, error) {
	if e.health.spillDisabled.Load() {
		e.health.spillFallbacks.Add(1)
		return blk.Payload, nil
	}
	adopted, err := e.segs[e.store.ShardFor(meterID)].SealedBlock(meterID, blk)
	if err != nil {
		e.disableSpill(err)
		e.health.spillFallbacks.Add(1)
		return blk.Payload, nil
	}
	return adopted, nil
}

// --- server.Ingest --------------------------------------------------------

// ErrClosed reports writes after Close.
var ErrClosed = errors.New("storage: engine closed")

// StartSession delegates to the store (sessions are not durable state).
// A degraded engine refuses new sessions up front — the client learns
// immediately instead of on its first batch.
func (e *Engine) StartSession(meterID uint64) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if r := e.health.refuse.Load(); r != nil {
		return r.err
	}
	return e.store.StartSession(meterID)
}

// EndSession delegates to the store.
func (e *Engine) EndSession(meterID uint64) { e.store.EndSession(meterID) }

// Reserve delegates to the store.
func (e *Engine) Reserve(meterID uint64, n int) error { return e.store.Reserve(meterID, n) }

// PushTable logs the table, then commits it. The WAL write happens first —
// recovery must know the table that decodes every logged batch.
func (e *Engine) PushTable(meterID uint64, t *symbolic.Table) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if r := e.health.refuse.Load(); r != nil {
		return r.err
	}
	if _, ok := e.store.Meter(meterID); !ok {
		return fmt.Errorf("%w: %d", server.ErrUnknownMeter, meterID)
	}
	shard := e.store.ShardFor(meterID)
	if _, err := e.walAppend(shard, func(w *wal) (int64, error) {
		return w.appendTable(meterID, t)
	}); err != nil {
		return err
	}
	if err := e.store.PushTable(meterID, t); err != nil {
		return err
	}
	v, _ := e.meters.LoadOrStore(meterID, &meterMeta{epoch: -1})
	mm := v.(*meterMeta)
	mm.epoch++
	mm.level = t.Level()
	return nil
}

// Append validates the batch against the meter's current table, logs it,
// waits for durability per the sync mode, then commits it to the store. The
// validation runs before the log write so a rejected batch never poisons
// the WAL — replay must be able to re-apply every logged record.
func (e *Engine) Append(meterID uint64, pts []symbolic.SymbolPoint) (int, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if r := e.health.refuse.Load(); r != nil {
		return 0, r.err
	}
	v, ok := e.meters.Load(meterID)
	if !ok {
		if _, exists := e.store.Meter(meterID); !exists {
			return 0, fmt.Errorf("%w: %d", server.ErrUnknownMeter, meterID)
		}
		return 0, fmt.Errorf("%w: %d", server.ErrNoTable, meterID)
	}
	if len(pts) == 0 {
		return 0, nil
	}
	mm := v.(*meterMeta)
	for i := range pts {
		if pts[i].S.Level() != mm.level {
			return 0, fmt.Errorf("%w: point %d has level %d, table has level %d",
				server.ErrBadSymbol, i, pts[i].S.Level(), mm.level)
		}
	}
	shard := e.store.ShardFor(meterID)
	if _, err := e.walAppend(shard, func(w *wal) (int64, error) {
		return w.appendBatch(meterID, uint32(mm.epoch), mm.level, pts)
	}); err != nil {
		return 0, err
	}
	return e.store.Append(meterID, pts)
}

// --- server.SequencedIngest -----------------------------------------------

// LastSeq reports the meter's committed sequence high-water mark — 0 when
// the meter is unknown or all of its history predates sequencing. Called by
// the meter's session goroutine at handshake; visibility of the previous
// session's final advance rides the store's shard lock.
func (e *Engine) LastSeq(meterID uint64) uint64 {
	if v, ok := e.meters.Load(meterID); ok {
		return v.(*meterMeta).seq
	}
	return 0
}

// seqCheck applies the dense-sequence rule against the meter's high-water
// mark: at-or-below is a duplicate (suppressed but acked — the data is
// already durable), exactly hwm+1 commits, anything else is a gap the
// session must not paper over.
func seqCheck(cur, seq uint64, meterID uint64) (dup bool, err error) {
	if seq <= cur {
		return true, nil
	}
	if seq != cur+1 {
		return false, fmt.Errorf("%w: meter %d got seq %d, high-water mark %d", server.ErrSeqGap, meterID, seq, cur)
	}
	return false, nil
}

// PushTableSeq is PushTable under a session sequence number: duplicates are
// suppressed without touching the log, gaps refuse, and the WAL record
// carries the seq so recovery restores the high-water mark. The duplicate
// check runs before the degraded-refusal check on purpose — acking an
// already-durable batch is truthful even when the engine cannot accept new
// writes.
func (e *Engine) PushTableSeq(meterID, seq uint64, t *symbolic.Table) (bool, error) {
	if e.closed.Load() {
		return false, ErrClosed
	}
	if _, ok := e.store.Meter(meterID); !ok {
		return false, fmt.Errorf("%w: %d", server.ErrUnknownMeter, meterID)
	}
	if dup, err := seqCheck(e.LastSeq(meterID), seq, meterID); dup || err != nil {
		return dup, err
	}
	if r := e.health.refuse.Load(); r != nil {
		return false, r.err
	}
	shard := e.store.ShardFor(meterID)
	if _, err := e.walAppend(shard, func(w *wal) (int64, error) {
		return w.appendTableSeq(meterID, seq, t)
	}); err != nil {
		return false, err
	}
	if err := e.store.PushTable(meterID, t); err != nil {
		return false, err
	}
	v, _ := e.meters.LoadOrStore(meterID, &meterMeta{epoch: -1})
	mm := v.(*meterMeta)
	mm.epoch++
	mm.level = t.Level()
	mm.seq = seq
	return false, nil
}

// AppendSeq is Append under a session sequence number. The high-water mark
// advances only after the whole batch commits to the store, so a refused or
// failed batch stays retryable under the same seq. Empty sequenced batches
// are refused outright: they would have to be durable for the mark to
// survive recovery, and the WAL batch encoding (correctly) has no empty
// form — the client never sends them.
func (e *Engine) AppendSeq(meterID, seq uint64, pts []symbolic.SymbolPoint) (int, bool, error) {
	if e.closed.Load() {
		return 0, false, ErrClosed
	}
	v, ok := e.meters.Load(meterID)
	if !ok {
		if _, exists := e.store.Meter(meterID); !exists {
			return 0, false, fmt.Errorf("%w: %d", server.ErrUnknownMeter, meterID)
		}
		return 0, false, fmt.Errorf("%w: %d", server.ErrNoTable, meterID)
	}
	mm := v.(*meterMeta)
	if dup, err := seqCheck(mm.seq, seq, meterID); dup || err != nil {
		return 0, dup, err
	}
	if len(pts) == 0 {
		return 0, false, fmt.Errorf("storage: meter %d: empty sequenced batch (seq %d)", meterID, seq)
	}
	if r := e.health.refuse.Load(); r != nil {
		return 0, false, r.err
	}
	for i := range pts {
		if pts[i].S.Level() != mm.level {
			return 0, false, fmt.Errorf("%w: point %d has level %d, table has level %d",
				server.ErrBadSymbol, i, pts[i].S.Level(), mm.level)
		}
	}
	shard := e.store.ShardFor(meterID)
	if _, err := e.walAppend(shard, func(w *wal) (int64, error) {
		return w.appendBatchSeq(meterID, seq, uint32(mm.epoch), mm.level, pts)
	}); err != nil {
		return 0, false, err
	}
	n, err := e.store.Append(meterID, pts)
	if err == nil {
		mm.seq = seq
	}
	return n, false, err
}

// walAppend writes one record through the shard's current log and, under
// SyncAlways, waits for its covering fsync, classifying failures:
//
//   - write fails on the CURRENT log → the durability layer is broken:
//     degrade and return the typed refusal.
//   - write refused because the log was poisoned AND a heal has already
//     rotated a replacement in → retry on the fresh log.
//   - fsync fails → the record's durability is unknowable and the fsyncgate
//     rule forbids retrying the fsync (the kernel may have dropped the
//     dirty pages — a second, succeeding fsync would cover nothing): fail
//     the batch unacknowledged and degrade. The record stays in the log; if
//     it did reach disk it may legitimately replay after a crash, which is
//     exactly the contract of an *unacknowledged* write (at-most-once is
//     the client's retry discipline, the store never acks it twice).
func (e *Engine) walAppend(shard int, write func(*wal) (int64, error)) (int64, error) {
	for {
		w := e.wals[shard].Load()
		start := time.Now()
		end, err := write(w)
		e.met.walAppendLat.Since(start)
		if err != nil {
			if e.wals[shard].Load() != w {
				// Rotated mid-append. A poisoned refusal retries on the
				// fresh log; a genuine write error on the retired log does
				// not implicate the new one — fail just this batch.
				if errors.Is(err, errWALPoisoned) {
					continue
				}
				return 0, err
			}
			if !errors.Is(err, errWALPoisoned) {
				e.health.walWriteFailures.Add(1)
			}
			e.degrade("wal append", err)
			if r := e.health.refuse.Load(); r != nil {
				return 0, r.err
			}
			return 0, err
		}
		if e.opts.Sync == SyncAlways {
			syncStart := time.Now()
			err := w.syncTo(end)
			e.met.fsyncLat.Since(syncStart)
			if err != nil {
				if e.wals[shard].Load() == w {
					e.health.fsyncFailures.Add(1)
					e.degrade("wal fsync", err)
				}
				return 0, err
			}
		}
		return end, nil
	}
}

// --- Flush / Close --------------------------------------------------------

// Flush makes everything committed so far durable and fast to recover:
// every WAL is fsynced and every open segment is finished into the manifest
// (so the next Open restores sealed data from footers instead of replaying
// it). The store stays fully usable afterwards — published blocks keep
// aliasing their mappings and the next seal opens a fresh segment. Ingest
// must be quiesced while Flush runs.
func (e *Engine) Flush() error {
	var errs []error
	for i := range e.wals {
		if w := e.wals[i].Load(); w != nil {
			errs = append(errs, w.syncTo(w.written.Load()))
		}
	}
	for _, sw := range e.segs {
		errs = append(errs, sw.finish())
	}
	return errors.Join(errs...)
}

// Close flushes, closes the log files (current and retired) and releases
// the segment mappings. The store must not be queried afterwards: spilled
// blocks alias the mappings Close unmaps.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.stop != nil {
		close(e.stop)
		e.syncWG.Wait()
	}
	errs := []error{e.Flush()}
	for i := range e.wals {
		if w := e.wals[i].Load(); w != nil {
			errs = append(errs, w.close())
		}
	}
	e.retiredMu.Lock()
	for _, w := range e.retired {
		errs = append(errs, w.close())
	}
	e.retired = nil
	e.retiredMu.Unlock()
	e.releaseMaps()
	return errors.Join(errs...)
}

// Abandon releases the engine's file handles, goroutines and mappings
// WITHOUT flushing or finishing anything — the programmatic stand-in for a
// crash: on-disk state is exactly what a kill at this instant would leave
// (open segments without footers, WAL synced only as far as the mode got).
// The store must not be used afterwards. Tests and recovery benchmarks use
// it to produce crash-shaped directories without leaking descriptors.
func (e *Engine) Abandon() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	if e.stop != nil {
		close(e.stop)
		e.syncWG.Wait()
	}
	for i := range e.wals {
		if w := e.wals[i].Load(); w != nil {
			w.close()
		}
	}
	e.retiredMu.Lock()
	for _, w := range e.retired {
		w.close()
	}
	e.retired = nil
	e.retiredMu.Unlock()
	for _, sw := range e.segs {
		if sw != nil && sw.f != nil {
			sw.f.Close()
			sw.f = nil
		}
	}
	e.releaseMaps()
}

func (e *Engine) trackMapping(m []byte) {
	if m == nil {
		return
	}
	e.mapsMu.Lock()
	e.maps = append(e.maps, m)
	e.mapsMu.Unlock()
}

func (e *Engine) releaseMaps() {
	e.mapsMu.Lock()
	defer e.mapsMu.Unlock()
	for _, m := range e.maps {
		e.fs.Munmap(m)
	}
	e.maps = nil
}

// addSegment records a finished segment in the manifest, atomically. A
// transient manifest-write failure retries with capped backoff; exhausting
// the retries degrades the engine. Either way the in-memory manifest keeps
// the entry — the segment file is fully durable (finish fsynced it before
// calling here), so any later successful manifest write may list it; until
// one does, recovery treats it as an orphan and re-derives its blocks from
// the WAL.
func (e *Engine) addSegment(ms manifestSegment) error {
	e.manMu.Lock()
	defer e.manMu.Unlock()
	e.man.Segments = append(e.man.Segments, ms)
	var err error
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		if err = writeManifest(e.fs, e.opts.Dir, e.man); err == nil {
			return nil
		}
		if attempt == 2 {
			break
		}
		e.health.manifestRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 4
	}
	e.health.manifestFailures.Add(1)
	e.degrade("manifest", err)
	return err
}

// groupSync is the SyncGroup background fsync loop: every interval, any
// shard log with unsynced records gets one fsync. A failed fsync degrades
// the engine immediately — the error used to stick silently to the wal and
// surface one lost batch later; now Health() and the ingest refusal carry
// it the moment it happens.
func (e *Engine) groupSync() {
	defer e.syncWG.Done()
	t := time.NewTicker(e.opts.GroupInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		}
		for i := range e.wals {
			w := e.wals[i].Load()
			if w == nil || !w.dirty() {
				continue
			}
			start := time.Now()
			err := w.syncTo(w.written.Load())
			e.met.fsyncLat.Since(start)
			if err != nil {
				if e.wals[i].Load() == w {
					e.health.fsyncFailures.Add(1)
					e.degrade("wal group fsync", err)
				}
			}
		}
	}
}

// DiskUsage reports the data directory's current WAL and segment byte
// totals (the measured disk cost next to the store's MemoryFootprint).
func (e *Engine) DiskUsage() (walBytes, segBytes int64, err error) {
	err = filepath.WalkDir(e.opts.Dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		switch filepath.Ext(path) {
		case ".wal":
			walBytes += info.Size()
		case ".seg":
			segBytes += info.Size()
		}
		return nil
	})
	return walBytes, segBytes, err
}
