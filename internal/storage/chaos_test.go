// Chaos tests: scripted and randomized storage faults injected through the
// FS seam (internal/faultfs), checked against the degraded-mode contract —
// acked batches are always recoverable, unacked batches fail loudly, queries
// are never wrong, and the engine heals onto a fresh WAL generation when the
// directory recovers. External test package: faultfs imports storage, so
// these tests cannot live inside it.
package storage_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symmeter/internal/faultfs"
	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
)

// chaosTable mirrors the in-package tests' shared k=16 table.
func chaosTable(t testing.TB) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// chaosBatch is the deterministic batch idx of a meter's stream: 96 points,
// 15-minute cadence, a stride break every 7th batch.
func chaosBatch(meterID uint64, idx int, table *symbolic.Table) []symbolic.SymbolPoint {
	base := int64(idx) * 96 * 900
	if idx%7 == 3 {
		base += 450
	}
	pts := make([]symbolic.SymbolPoint, 96)
	for j := range pts {
		v := float64((int(meterID)*31 + idx*97 + j*13) % 4000)
		pts[j] = symbolic.SymbolPoint{T: base + int64(j)*900, S: table.Encode(v)}
	}
	return pts
}

var chaosMeters = []uint64{1, 2, 17}

func chaosOpen(t testing.TB, dir string, fsys storage.FS, sync storage.SyncMode, probe time.Duration) *storage.Engine {
	t.Helper()
	eng, err := storage.Open(storage.Options{
		Dir: dir, Shards: 4, Sync: sync, SegmentBytes: 64 << 10,
		FS: fsys, ProbeInterval: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// startMeters opens a session and pushes the table for every meter (done on
// a healthy disk, before any fault schedule is armed).
func startMeters(t testing.TB, eng *storage.Engine, table *symbolic.Table, meters []uint64) {
	t.Helper()
	for _, m := range meters {
		if err := eng.StartSession(m); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushTable(m, table); err != nil {
			t.Fatal(err)
		}
	}
}

// buildOracle replays exactly the acked batch indices into a plain in-memory
// store — the ground truth a durable engine must match.
func buildOracle(t testing.TB, table *symbolic.Table, meters []uint64, batches map[uint64][]int) *server.Store {
	t.Helper()
	st := server.NewStore(4)
	for _, m := range meters {
		if err := st.StartSession(m); err != nil {
			t.Fatal(err)
		}
		if err := st.PushTable(m, table); err != nil {
			t.Fatal(err)
		}
		for _, idx := range batches[m] {
			if _, err := st.Append(m, chaosBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

var chaosWindows = [][2]int64{
	{0, math.MaxInt64},
	{5 * 900, 777 * 900},
	{100*900 + 1, 5000 * 900},
}

// meterAgrees reports bit-exact aggregate + histogram agreement for one
// meter over windows that cut blocks on both ends.
func meterAgrees(t testing.TB, got, want *server.Store, m uint64) bool {
	t.Helper()
	ge, we := query.New(got), query.New(want)
	for _, win := range chaosWindows {
		ga, gok := ge.Aggregate(m, win[0], win[1])
		wa, wok := we.Aggregate(m, win[0], win[1])
		if gok != wok || ga.Count != wa.Count ||
			math.Float64bits(ga.Sum) != math.Float64bits(wa.Sum) ||
			math.Float64bits(ga.Min) != math.Float64bits(wa.Min) ||
			math.Float64bits(ga.Max) != math.Float64bits(wa.Max) {
			return false
		}
		var gh, wh query.Histogram
		if _, err := ge.HistogramInto(&gh, m, win[0], win[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := we.HistogramInto(&wh, m, win[0], win[1]); err != nil {
			t.Fatal(err)
		}
		if gh.Level != wh.Level || len(gh.Counts) != len(wh.Counts) {
			return false
		}
		for s := range gh.Counts {
			if gh.Counts[s] != wh.Counts[s] {
				return false
			}
		}
	}
	return true
}

func requireStoresEqual(t *testing.T, got, want *server.Store, meters []uint64) {
	t.Helper()
	if g, w := got.TotalSymbols(), want.TotalSymbols(); g != w {
		t.Fatalf("TotalSymbols: got %d, want %d", g, w)
	}
	for _, m := range meters {
		if !meterAgrees(t, got, want, m) {
			t.Fatalf("meter %d: stores disagree", m)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDegradedWALWriteRefusesThenHeals is the headline degraded-mode round
// trip: a dying disk (every WAL write fails, probes fail too) flips the
// engine to Degraded — ingest refused with the typed error, queries still
// bit-exact — and when the disk comes back, the background probe rotates to
// a fresh WAL generation and durable ingest resumes, all of it recoverable
// across a crash.
func TestDegradedWALWriteRefusesThenHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	table := chaosTable(t)
	meters := []uint64{1, 2}
	eng := chaosOpen(t, dir, ffs, storage.SyncOff, 2*time.Millisecond)
	startMeters(t, eng, table, meters)

	acked := map[uint64][]int{}
	for idx := 0; idx < 10; idx++ {
		for _, m := range meters {
			if _, err := eng.Append(m, chaosBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
			acked[m] = append(acked[m], idx)
		}
	}

	// The disk dies: every WAL write fails, and the probe file cannot sync,
	// so the engine must stay degraded until the faults clear.
	ffs.SetFaults(
		faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", Sticky: true},
		faultfs.Fault{Op: faultfs.OpSync, Path: ".probe", Sticky: true},
	)
	if _, err := eng.Append(1, chaosBatch(1, 10, table)); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("append on dead disk: got %v, want server.ErrDegraded", err)
	}
	h := eng.Health()
	if h.State != storage.StateDegraded || h.WALWriteFailures == 0 {
		t.Fatalf("health after failed write: %+v", h)
	}
	if !strings.Contains(h.Reason, "wal append") {
		t.Fatalf("reason %q, want the wal append class", h.Reason)
	}
	// Every ingest surface refuses with the same typed error, up front.
	if _, err := eng.Append(2, chaosBatch(2, 10, table)); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("second meter: %v", err)
	}
	if err := eng.PushTable(1, table); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("push table while degraded: %v", err)
	}
	if err := eng.StartSession(99); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("new session while degraded: %v", err)
	}
	// Queries keep serving exactly the acked data.
	requireStoresEqual(t, eng.Store(), buildOracle(t, table, meters, acked), meters)
	// Probes run and fail; the engine must not heal onto a dead disk.
	waitFor(t, 2*time.Second, "a failed probe", func() bool { return eng.Health().Probes > 0 })
	if st := eng.Health().State; st != storage.StateDegraded {
		t.Fatalf("state with probes failing: %v", st)
	}

	// The disk comes back: the probe heals the engine onto a fresh WAL
	// generation without any operator action.
	ffs.SetFaults()
	waitFor(t, 5*time.Second, "heal", func() bool { return eng.Health().State == storage.StateHealthy })
	h = eng.Health()
	if h.Heals == 0 || h.WALGen == 0 || h.Reason != "" {
		t.Fatalf("health after heal: %+v", h)
	}

	// Ingest resumes, including the very batch that was refused.
	for idx := 10; idx < 16; idx++ {
		for _, m := range meters {
			if _, err := eng.Append(m, chaosBatch(m, idx, table)); err != nil {
				t.Fatalf("append after heal (meter %d batch %d): %v", m, idx, err)
			}
			acked[m] = append(acked[m], idx)
		}
	}
	requireStoresEqual(t, eng.Store(), buildOracle(t, table, meters, acked), meters)

	// Crash and recover on the healthy disk: the replay spans both WAL
	// generations and restores every acked batch.
	eng.Abandon()
	re := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	defer re.Close()
	requireStoresEqual(t, re.Store(), buildOracle(t, table, meters, acked), meters)
}

// TestFsyncFailureNeverAcks pins the fsyncgate rule under SyncAlways: a
// failed covering fsync fails the batch (never acked, never committed to the
// live store), degrades the engine, and is never retried — the record it
// covered may legitimately reappear after a crash as what it is, an
// unacknowledged write.
func TestFsyncFailureNeverAcks(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	table := chaosTable(t)
	eng := chaosOpen(t, dir, ffs, storage.SyncAlways, time.Hour)
	startMeters(t, eng, table, []uint64{1})

	ffs.SetFaults(faultfs.Fault{Op: faultfs.OpSync, Path: ".wal", N: 1})
	_, err := eng.Append(1, chaosBatch(1, 0, table))
	if !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("append with dying fsync: got %v, want the injected ErrIO", err)
	}
	if errors.Is(err, server.ErrDegraded) {
		t.Fatalf("the failing batch itself reports the raw cause, not the refusal: %v", err)
	}
	h := eng.Health()
	if h.State != storage.StateDegraded || h.FsyncFailures != 1 {
		t.Fatalf("health after fsync failure: %+v", h)
	}
	if !strings.Contains(h.Reason, "wal fsync") {
		t.Fatalf("reason %q, want the wal fsync class", h.Reason)
	}
	// Unacked means uncommitted: the live store never saw the batch.
	if n := eng.Store().TotalSymbols(); n != 0 {
		t.Fatalf("live store holds %d symbols from an unacked batch", n)
	}
	// Fsyncgate: no retry. Later appends are refused before touching the
	// log, so the sync count must not move.
	syncs := ffs.Counts()[faultfs.OpSync]
	if _, err := eng.Append(1, chaosBatch(1, 0, table)); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("append while degraded: %v", err)
	}
	if got := ffs.Counts()[faultfs.OpSync]; got != syncs {
		t.Fatalf("fsync retried after failure: %d syncs, had %d", got, syncs)
	}

	// The record's bytes did reach the file (only the fsync failed), so a
	// crash recovery replays it — the legitimate fate of an unacknowledged
	// write. It must replay exactly, not torn.
	eng.Abandon()
	ffs.SetFaults()
	re := chaosOpen(t, dir, ffs, storage.SyncAlways, time.Hour)
	defer re.Close()
	requireStoresEqual(t, re.Store(),
		buildOracle(t, table, []uint64{1}, map[uint64][]int{1: {0}}), []uint64{1})
}

// TestSpillFailureFallsBackToHeap: segment I/O failure is not a seal failure
// and not a degrade — blocks stay heap-resident (the WAL covers them),
// ingest keeps acking, and recovery rebuilds everything.
func TestSpillFailureFallsBackToHeap(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	table := chaosTable(t)
	meters := []uint64{1, 2}
	eng := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	startMeters(t, eng, table, meters)

	ffs.SetFaults(faultfs.Fault{Op: faultfs.OpOpen, Path: ".seg", Sticky: true})
	acked := map[uint64][]int{}
	for idx := 0; idx < 40; idx++ { // ~7 seals per meter
		for _, m := range meters {
			if _, err := eng.Append(m, chaosBatch(m, idx, table)); err != nil {
				t.Fatalf("append with dead segment dir (meter %d batch %d): %v", m, idx, err)
			}
			acked[m] = append(acked[m], idx)
		}
	}
	h := eng.Health()
	if h.State != storage.StateHealthy {
		t.Fatalf("spill failure degraded the engine: %+v", h)
	}
	if !h.SpillDisabled || h.SpillFallbacks == 0 {
		t.Fatalf("spill should be parked on the heap: %+v", h)
	}
	requireStoresEqual(t, eng.Store(), buildOracle(t, table, meters, acked), meters)

	// Crash: every heap-resident sealed block re-derives from the WAL.
	eng.Abandon()
	ffs.SetFaults()
	re := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	defer re.Close()
	requireStoresEqual(t, re.Store(), buildOracle(t, table, meters, acked), meters)
}

// TestManifestFailureRetriesThenDegrades drives writeManifest through both
// injected failure shapes — rename EIO and ENOSPC on the temp file — and
// checks the satellite contract: retries with backoff, then degrade; the
// temp file is always cleaned up; the previous manifest still loads, so the
// next boot never comes up from a half-written manifest.
func TestManifestFailureRetriesThenDegrades(t *testing.T) {
	cases := []struct {
		name  string
		fault faultfs.Fault
	}{
		{"rename-eio", faultfs.Fault{Op: faultfs.OpRename, Path: "MANIFEST", Sticky: true}},
		{"write-enospc", faultfs.Fault{Op: faultfs.OpWrite, Path: "MANIFEST.json.tmp", Err: faultfs.ErrNoSpace, Sticky: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New()
			table := chaosTable(t)
			meters := []uint64{1, 2}
			eng := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
			startMeters(t, eng, table, meters)
			acked := map[uint64][]int{}
			for idx := 0; idx < 20; idx++ {
				for _, m := range meters {
					if _, err := eng.Append(m, chaosBatch(m, idx, table)); err != nil {
						t.Fatal(err)
					}
					acked[m] = append(acked[m], idx)
				}
			}

			// Flush finishes the open segments, and registering them hits the
			// faulted manifest replacement: retries, then degrade.
			ffs.SetFaults(tc.fault)
			if err := eng.Flush(); err == nil {
				t.Fatal("Flush with a faulted manifest succeeded")
			}
			h := eng.Health()
			if h.State != storage.StateDegraded || h.ManifestFailures == 0 {
				t.Fatalf("health after manifest failure: %+v", h)
			}
			if h.ManifestRetries < 2 {
				t.Fatalf("manifest write gave up without retrying: %+v", h)
			}
			if !strings.Contains(h.Reason, "manifest") {
				t.Fatalf("reason %q, want the manifest class", h.Reason)
			}
			if _, err := eng.Append(1, chaosBatch(1, 20, table)); !errors.Is(err, server.ErrDegraded) {
				t.Fatalf("append after manifest degrade: %v", err)
			}
			// Every failed replacement cleaned its temp file.
			if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json.tmp")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("temp manifest left behind: %v", err)
			}

			// The previous manifest is untouched and fully loadable: a crash
			// right now boots from it, with the WAL covering every acked
			// batch (the finished-but-unlisted segments are orphans).
			eng.Abandon()
			ffs.SetFaults()
			re := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
			defer re.Close()
			requireStoresEqual(t, re.Store(), buildOracle(t, table, meters, acked), meters)
		})
	}
}

// TestOpenUnwindsCleanly: a recovery that fails midway must release every
// file handle and mapping it acquired — the faultfs balances prove it.
func TestOpenUnwindsCleanly(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	table := chaosTable(t)
	meters := []uint64{1, 2}
	eng := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	startMeters(t, eng, table, meters)
	acked := map[uint64][]int{}
	for idx := 0; idx < 40; idx++ {
		for _, m := range meters {
			if _, err := eng.Append(m, chaosBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
			acked[m] = append(acked[m], idx)
		}
	}
	if err := eng.Flush(); err != nil { // manifest-listed segments for the mmap paths
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if ob, mb := ffs.OpenBalance(), ffs.MmapBalance(); ob != 0 || mb != 0 {
		t.Fatalf("clean lifecycle leaked: open balance %d, mmap balance %d", ob, mb)
	}
	haveMmap := ffs.Counts()[faultfs.OpMmap] > 0

	cases := []struct {
		name  string
		fault faultfs.Fault
		mmap  bool
	}{
		{"wal-read-fails", faultfs.Fault{Op: faultfs.OpReadFile, Path: ".wal", N: 1}, false},
		{"wal-open-fails", faultfs.Fault{Op: faultfs.OpOpen, Path: "shard-", N: 2}, false},
		{"segment-open-fails", faultfs.Fault{Op: faultfs.OpOpen, Path: ".seg", N: 1}, false},
		{"segment-mmap-fails", faultfs.Fault{Op: faultfs.OpMmap, Path: ".seg", N: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.mmap && !haveMmap {
				t.Skip("no mmap on this platform")
			}
			ffs.SetFaults(tc.fault)
			if _, err := storage.Open(storage.Options{
				Dir: dir, Shards: 4, SegmentBytes: 64 << 10, FS: ffs, ProbeInterval: time.Hour,
			}); !errors.Is(err, faultfs.ErrIO) {
				t.Fatalf("Open with injected fault: got %v, want ErrIO", err)
			}
			if ob, mb := ffs.OpenBalance(), ffs.MmapBalance(); ob != 0 || mb != 0 {
				t.Fatalf("failed Open leaked: open balance %d, mmap balance %d", ob, mb)
			}
		})
	}

	// And the directory is still fully recoverable once the faults clear.
	ffs.SetFaults()
	re := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	requireStoresEqual(t, re.Store(), buildOracle(t, table, meters, acked), meters)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if ob, mb := ffs.OpenBalance(), ffs.MmapBalance(); ob != 0 || mb != 0 {
		t.Fatalf("final lifecycle leaked: open balance %d, mmap balance %d", ob, mb)
	}
}

// TestFaultedRecoveryThenClean: a crash-shaped directory whose FIRST
// recovery attempt dies on an injected fault must fail cleanly (no leaks, no
// damage) and recover bit-exact on the next, healthy attempt.
func TestFaultedRecoveryThenClean(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New()
	table := chaosTable(t)
	meters := []uint64{1, 2}
	eng := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	startMeters(t, eng, table, meters)
	acked := map[uint64][]int{}
	for idx := 0; idx < 30; idx++ {
		for _, m := range meters {
			if _, err := eng.Append(m, chaosBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
			acked[m] = append(acked[m], idx)
		}
	}
	eng.Abandon() // crash shape: open segments without footers, WAL as written

	ffs.SetFaults(faultfs.Fault{Op: faultfs.OpReadFile, Path: ".wal", N: 2})
	if _, err := storage.Open(storage.Options{
		Dir: dir, Shards: 4, SegmentBytes: 64 << 10, FS: ffs, ProbeInterval: time.Hour,
	}); !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("faulted recovery: got %v, want ErrIO", err)
	}
	if ob, mb := ffs.OpenBalance(), ffs.MmapBalance(); ob != 0 || mb != 0 {
		t.Fatalf("faulted recovery leaked: open balance %d, mmap balance %d", ob, mb)
	}

	ffs.SetFaults()
	re := chaosOpen(t, dir, ffs, storage.SyncOff, time.Hour)
	defer re.Close()
	requireStoresEqual(t, re.Store(), buildOracle(t, table, meters, acked), meters)
}

// TestFormat1ManifestMigrates: a directory written by the pre-generation
// layout (manifest format 1, no wal_gen) opens cleanly, runs at generation
// 0, and is rewritten forward to the current format on the spot.
func TestFormat1ManifestMigrates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"),
		[]byte(`{"format": 1, "shards": 4, "segments": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	table := chaosTable(t)
	eng := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	if got := eng.Store().NumShards(); got != 4 {
		t.Fatalf("NumShards: got %d, want the format-1 manifest's 4", got)
	}
	if gen := eng.Health().WALGen; gen != 0 {
		t.Fatalf("WALGen after migration: %d, want 0", gen)
	}
	startMeters(t, eng, table, []uint64{1})
	if _, err := eng.Append(1, chaosBatch(1, 0, table)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"format": 3`) {
		t.Fatalf("manifest not migrated to format 3:\n%s", raw)
	}
	re := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	defer re.Close()
	requireStoresEqual(t, re.Store(),
		buildOracle(t, table, []uint64{1}, map[uint64][]int{1: {0}}), []uint64{1})
}

// measureAppendAllocs returns AllocsPerRun for non-sealing Append batches on
// an engine over fsys, after warming the WAL buffers and tail arenas.
func measureAppendAllocs(t *testing.T, fsys storage.FS) float64 {
	t.Helper()
	dir := t.TempDir()
	eng, err := storage.Open(storage.Options{
		Dir: dir, Shards: 4, Sync: storage.SyncOff, FS: fsys, ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	table := chaosTable(t)
	startMeters(t, eng, table, []uint64{7})
	// Warm up exactly two block cycles (lcm(512, 96) = 1536 points), landing
	// the tail at a block boundary.
	for idx := 0; idx < 32; idx++ {
		if _, err := eng.Append(7, chaosBatch(7, idx, table)); err != nil {
			t.Fatal(err)
		}
	}
	// Five more pre-built batches: the warm-up call plus four measured runs
	// fill positions 0..480 of the current block — no seal, no spill, the
	// pure WAL + tail hot path.
	batches := make([][]symbolic.SymbolPoint, 5)
	for i := range batches {
		batches[i] = chaosBatch(7, 32+i, table)
	}
	i := 0
	return testing.AllocsPerRun(4, func() {
		if _, err := eng.Append(7, batches[i]); err != nil {
			t.Fatal(err)
		}
		i++
	})
}

// TestAppendAllocsThroughSeam pins the FS seam's cost at zero: the durable
// append hot path allocates nothing through the real OsFS, and routing the
// same workload through faultfs (the worst-case seam user) adds nothing.
func TestAppendAllocsThroughSeam(t *testing.T) {
	osAllocs := measureAppendAllocs(t, nil) // nil = OsFS
	faultAllocs := measureAppendAllocs(t, faultfs.New())
	t.Logf("append allocs/run: OsFS=%v faultfs=%v", osAllocs, faultAllocs)
	if osAllocs != 0 {
		t.Errorf("steady-state durable Append allocates %v per run through OsFS, want 0", osAllocs)
	}
	if faultAllocs > osAllocs {
		t.Errorf("the FS seam costs allocations: faultfs %v vs OsFS %v", faultAllocs, osAllocs)
	}
}

// --- randomized chaos ------------------------------------------------------

// runChaos drives an engine through a fault schedule and checks the three
// invariants that define "survive a dying disk without lying":
//
//  1. the live store always equals exactly the acked batches;
//  2. a typed ErrDegraded refusal means nothing was stored (safe retry); any
//     other error leaves at most that one batch ambiguous and stops the
//     meter (its stream position is unknown — the client must reconcile);
//  3. after a crash and a clean recovery, every meter's data equals its
//     acked batches, or acked plus its single ambiguous batch.
//
// Halfway through, the fault schedule is disarmed: the probe must heal the
// engine and ingest must resume unattended for every non-stopped meter.
func runChaos(t *testing.T, sync storage.SyncMode, faults []faultfs.Fault, rounds int) {
	t.Helper()
	dir := t.TempDir()
	ffs := faultfs.New()
	table := chaosTable(t)
	eng := chaosOpen(t, dir, ffs, sync, 2*time.Millisecond)
	startMeters(t, eng, table, chaosMeters)
	ffs.SetFaults(faults...)

	acked := map[uint64][]int{}
	ambiguous := map[uint64]int{}
	next := map[uint64]int{}
	stopped := map[uint64]bool{}
	for r := 0; r < rounds; r++ {
		for _, m := range chaosMeters {
			if stopped[m] {
				continue
			}
			idx := next[m]
			_, err := eng.Append(m, chaosBatch(m, idx, table))
			switch {
			case err == nil:
				acked[m] = append(acked[m], idx)
				next[m] = idx + 1
			case errors.Is(err, server.ErrDegraded):
				// Refused up front: nothing stored, retry the same batch later.
			default:
				// Raw I/O failure: the batch's fate is ambiguous (the record
				// may or may not have reached the log). At-most-once is the
				// client's discipline — stop this meter's stream.
				ambiguous[m] = idx
				stopped[m] = true
			}
		}
		if r == rounds/2 {
			ffs.SetFaults() // the disk comes back mid-run
		}
	}

	// The probe must heal the engine and ingest must resume by itself.
	for _, m := range chaosMeters {
		if stopped[m] {
			continue
		}
		idx := next[m]
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, err := eng.Append(m, chaosBatch(m, idx, table)); err == nil {
				acked[m] = append(acked[m], idx)
				next[m] = idx + 1
				break
			} else if !errors.Is(err, server.ErrDegraded) {
				t.Fatalf("meter %d: non-degraded error after faults cleared: %v", m, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("meter %d: ingest did not resume after faults cleared (health %+v)", m, eng.Health())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Invariant 1: the live store is exactly the acked set.
	oracle := buildOracle(t, table, chaosMeters, acked)
	requireStoresEqual(t, eng.Store(), oracle, chaosMeters)

	// Invariant 3: crash, recover clean, compare per meter with the
	// two-variant rule.
	eng.Abandon()
	ffs.SetFaults()
	re := chaosOpen(t, dir, ffs, sync, time.Hour)
	defer re.Close()
	for _, m := range chaosMeters {
		if meterAgrees(t, re.Store(), oracle, m) {
			continue
		}
		idx, isAmb := ambiguous[m]
		if !isAmb {
			t.Fatalf("meter %d: recovered data disagrees with the acked batches and no write was ambiguous", m)
		}
		withAmb := buildOracle(t, table, []uint64{m},
			map[uint64][]int{m: append(append([]int(nil), acked[m]...), idx)})
		if !meterAgrees(t, re.Store(), withAmb, m) {
			t.Fatalf("meter %d: recovered data matches neither the acked batches nor acked+ambiguous", m)
		}
	}
}

// TestChaosSchedules runs the deterministic fault matrix.
func TestChaosSchedules(t *testing.T) {
	cases := []struct {
		name   string
		sync   storage.SyncMode
		faults []faultfs.Fault
	}{
		{"eio-5th-wal-write", storage.SyncOff,
			[]faultfs.Fault{{Op: faultfs.OpWrite, Path: ".wal", N: 5}}},
		{"sticky-wal-write", storage.SyncOff,
			[]faultfs.Fault{{Op: faultfs.OpWrite, Path: ".wal", N: 3, Sticky: true}}},
		{"enospc-short-write", storage.SyncOff,
			[]faultfs.Fault{{Op: faultfs.OpWrite, Path: ".wal", N: 4, Err: faultfs.ErrNoSpace, Short: true}}},
		{"fsync-dies-once", storage.SyncAlways,
			[]faultfs.Fault{{Op: faultfs.OpSync, Path: ".wal", N: 6}}},
		{"sticky-fsync", storage.SyncAlways,
			[]faultfs.Fault{{Op: faultfs.OpSync, Path: ".wal", N: 2, Sticky: true}}},
		{"segment-writes-die", storage.SyncOff,
			[]faultfs.Fault{{Op: faultfs.OpWriteAt, Path: ".seg", Sticky: true}}},
		{"manifest-rename-dies", storage.SyncOff,
			[]faultfs.Fault{{Op: faultfs.OpRename, Path: "MANIFEST", Sticky: true}}},
		{"group-fsync-dies", storage.SyncGroup,
			[]faultfs.Fault{{Op: faultfs.OpSync, Path: ".wal", N: 2, Sticky: true}}},
		{"carnage", storage.SyncAlways, []faultfs.Fault{
			{Op: faultfs.OpWrite, Path: ".wal", N: 7, Sticky: true},
			{Op: faultfs.OpSync, Path: ".wal", N: 9},
			{Op: faultfs.OpWriteAt, Path: ".seg", Sticky: true},
			{Op: faultfs.OpRename, Path: "MANIFEST", N: 1, Sticky: true},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runChaos(t, tc.sync, tc.faults, 40)
		})
	}
}

// FuzzFaultSchedule decodes arbitrary bytes into a fault schedule (4 bytes
// per fault: op, N, flags, error class) and runs the chaos invariants under
// it. Anything the fuzzer finds — a wrong query, a lost acked batch, a
// recovery failure on an intact directory — is a real durability bug.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{0, 3, 1, 0})                         // sticky wal write EIO
	f.Add([]byte{2, 2, 0, 1})                         // one-shot wal fsync ENOSPC
	f.Add([]byte{1, 1, 1, 0, 3, 1, 1, 0})             // seg writes + manifest rename, both sticky
	f.Add([]byte{0, 4, 3, 1, 2, 6, 0, 0, 4, 1, 1, 0}) // short wal write + fsync + seg open
	f.Add([]byte{5, 2, 0, 0, 6, 1, 1, 1})             // truncate + remove faults
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 16 {
			data = data[:16]
		}
		ops := []faultfs.Op{faultfs.OpWrite, faultfs.OpWriteAt, faultfs.OpSync,
			faultfs.OpRename, faultfs.OpOpen, faultfs.OpTruncate, faultfs.OpRemove}
		paths := map[faultfs.Op]string{
			faultfs.OpWrite: ".wal", faultfs.OpWriteAt: ".seg", faultfs.OpSync: ".wal",
			faultfs.OpRename: "MANIFEST", faultfs.OpOpen: ".seg",
			faultfs.OpTruncate: ".wal", faultfs.OpRemove: ".seg",
		}
		var faults []faultfs.Fault
		for i := 0; i+3 < len(data); i += 4 {
			op := ops[int(data[i])%len(ops)]
			ft := faultfs.Fault{
				Op:     op,
				Path:   paths[op],
				N:      int(data[i+1])%12 + 1,
				Sticky: data[i+2]&1 != 0,
				Short:  data[i+2]&2 != 0 && op == faultfs.OpWrite,
			}
			if data[i+3]&1 != 0 {
				ft.Err = faultfs.ErrNoSpace
			}
			faults = append(faults, ft)
		}
		modes := []storage.SyncMode{storage.SyncOff, storage.SyncGroup, storage.SyncAlways}
		runChaos(t, modes[len(data)%3], faults, 24)
	})
}
