package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"symmeter/internal/server"
)

// Sealed-segment files.
//
// A segment is one shard's spill target: the moment a block seals, its
// packed payload is written into the shard's open segment and the store
// adopts an mmapped view of those very bytes as the block's payload — the
// heap copy is recycled and from then on queries aggregate straight over the
// on-disk words through the same LUT kernels (the page cache decides what is
// actually resident). Block summaries and the firstT directory travel in the
// footer, so recovery rebuilds the RCU sealed index without touching — let
// alone decoding — a single payload byte.
//
// Layout:
//
//	magic "SYMSEG01" (8)
//	payload region: each block's packed bytes at an 8-aligned offset
//	footer: per block —
//	  meterID(u64) epoch(u32) level(u8) histK(u16) n(u32)
//	  firstT(u64) stride(u64) sum(f64) minV(f64) maxV(f64)
//	  off(u64) payloadCRC(u32) hist histK×u32
//	  (all big-endian; f64 as IEEE bits; payloadCRC is CRC-32C of the
//	  block's packed bytes, so a flipped bit in the data region fails
//	  recovery loudly instead of silently skewing edge-window kernels)
//	trailer: footerOff(u64) footerLen(u32) blocks(u32)
//	         crc32c(footer)(u32) magic "SEGFOOT1" (8)
//
// The file is created at its full capacity (ftruncate — sparse, no disk is
// allocated) and mmapped once, read-only and shared, so payload writes
// through the fd are immediately visible to the mapping via the unified
// page cache. finish() lands the footer and shrinks the file to its real
// size; the mapping stays valid for the in-bounds pages the store
// references. A segment with no footer (a crash while it was open) is
// unreadable by design — its blocks are re-derived from the WAL — and is
// deleted at recovery.
const (
	segMagic            = "SYMSEG01"
	segFooterMagic      = "SEGFOOT1"
	segTrailerLen       = 8 + 4 + 4 + 4 + 8
	segBlockMetaLen     = 8 + 4 + 1 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4
	defaultSegmentBytes = 4 << 20
)

// segBlock is one footer entry.
type segBlock struct {
	meterID uint64
	blk     server.SealedBlock
	off     int64
	crc     uint32 // CRC-32C of the payload bytes
}

// segmentWriter spills one shard's sealing blocks. All methods run under
// that shard's store lock (the seal path), so the writer needs no locking of
// its own; only finish() touches engine-shared state (the manifest),
// through the engine callback.
type segmentWriter struct {
	eng   *Engine
	shard int
	seq   uint64 // sequence of the NEXT segment to open
	cap   int

	f    File
	m    []byte // shared read-only mapping of the whole capacity (nil on !canMmap)
	path string
	off  int64
	meta []segBlock
}

func segName(shard int, seq uint64) string {
	return fmt.Sprintf("%04d-%06d.seg", shard, seq)
}

// open creates the next segment file at full capacity and maps it.
func (sw *segmentWriter) open() error {
	sw.path = filepath.Join(sw.eng.segDir(), segName(sw.shard, sw.seq))
	f, err := sw.eng.fs.OpenFile(sw.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Truncate(int64(sw.cap)); err != nil {
		f.Close()
		return err
	}
	if canMmap {
		m, err := sw.eng.fs.Mmap(f, sw.cap)
		if err != nil {
			f.Close()
			return fmt.Errorf("storage: mmap segment %s: %w", sw.path, err)
		}
		sw.m = m
		sw.eng.trackMapping(m)
	}
	sw.f = f
	sw.off = int64(len(segMagic))
	sw.meta = sw.meta[:0]
	sw.seq++
	return nil
}

// SealedBlock implements server.SealSink: the block's payload lands in the
// open segment and the returned slice aliases the mapping, which is what
// evicts the sealed bytes from the heap.
func (sw *segmentWriter) SealedBlock(meterID uint64, blk server.SealedBlock) ([]byte, error) {
	need := int64(len(blk.Payload))
	if sw.f != nil && sw.off+need > int64(sw.cap)-int64(sw.footerRoom()+segTrailerLen) {
		if err := sw.finish(); err != nil {
			return nil, err
		}
	}
	if sw.f == nil {
		if err := sw.open(); err != nil {
			return nil, err
		}
	}
	if _, err := sw.f.WriteAt(blk.Payload, sw.off); err != nil {
		return nil, fmt.Errorf("storage: segment write: %w", err)
	}
	adopted := blk.Payload
	if sw.m != nil {
		adopted = sw.m[sw.off : sw.off+need : sw.off+need]
	}
	// The footer references the caller's Hist slice; sealed summaries never
	// mutate after the seal, so aliasing is safe until finish() encodes it.
	sw.meta = append(sw.meta, segBlock{
		meterID: meterID,
		blk:     blk,
		off:     sw.off,
		crc:     crc32.Checksum(blk.Payload, crcC),
	})
	sw.off = (sw.off + need + 7) &^ 7
	return adopted, nil
}

// footerRoom returns the bytes the footer would need if the segment were
// finished right now, plus one more max-width entry — the headroom check
// that guarantees finish() always fits inside the preallocated capacity.
func (sw *segmentWriter) footerRoom() int {
	room := 0
	for i := range sw.meta {
		room += segBlockMetaLen + 4*len(sw.meta[i].blk.Hist)
	}
	return room + segBlockMetaLen + 4*1024
}

// finish writes the footer and trailer, fsyncs, shrinks the file to its real
// length and registers the segment in the manifest. The mapping stays alive:
// the store's published blocks alias it for the engine's lifetime.
func (sw *segmentWriter) finish() error {
	if sw.f == nil {
		return nil
	}
	if len(sw.meta) == 0 {
		// Nothing spilled: drop the empty file instead of manifesting it.
		err := sw.f.Close()
		sw.f = nil
		if rmErr := sw.eng.fs.Remove(sw.path); err == nil {
			err = rmErr
		}
		return err
	}
	footer := make([]byte, 0, sw.footerRoom())
	for i := range sw.meta {
		e := &sw.meta[i]
		footer = binary.BigEndian.AppendUint64(footer, e.meterID)
		footer = binary.BigEndian.AppendUint32(footer, uint32(e.blk.Epoch))
		footer = append(footer, byte(e.blk.Level))
		footer = binary.BigEndian.AppendUint16(footer, uint16(len(e.blk.Hist)))
		footer = binary.BigEndian.AppendUint32(footer, uint32(e.blk.N))
		footer = binary.BigEndian.AppendUint64(footer, uint64(e.blk.FirstT))
		footer = binary.BigEndian.AppendUint64(footer, uint64(e.blk.Stride))
		footer = binary.BigEndian.AppendUint64(footer, math.Float64bits(e.blk.Sum))
		footer = binary.BigEndian.AppendUint64(footer, math.Float64bits(e.blk.MinV))
		footer = binary.BigEndian.AppendUint64(footer, math.Float64bits(e.blk.MaxV))
		footer = binary.BigEndian.AppendUint64(footer, uint64(e.off))
		footer = binary.BigEndian.AppendUint32(footer, e.crc)
		for _, c := range e.blk.Hist {
			footer = binary.BigEndian.AppendUint32(footer, c)
		}
	}
	trailer := make([]byte, 0, segTrailerLen)
	trailer = binary.BigEndian.AppendUint64(trailer, uint64(sw.off))
	trailer = binary.BigEndian.AppendUint32(trailer, uint32(len(footer)))
	trailer = binary.BigEndian.AppendUint32(trailer, uint32(len(sw.meta)))
	trailer = binary.BigEndian.AppendUint32(trailer, crc32.Checksum(footer, crcC))
	trailer = append(trailer, segFooterMagic...)
	if _, err := sw.f.WriteAt(footer, sw.off); err != nil {
		return fmt.Errorf("storage: segment footer: %w", err)
	}
	if _, err := sw.f.WriteAt(trailer, sw.off+int64(len(footer))); err != nil {
		return fmt.Errorf("storage: segment trailer: %w", err)
	}
	if err := sw.f.Sync(); err != nil {
		return fmt.Errorf("storage: segment fsync: %w", err)
	}
	if err := sw.f.Truncate(sw.off + int64(len(footer)) + segTrailerLen); err != nil {
		return fmt.Errorf("storage: segment truncate: %w", err)
	}
	err := sw.f.Close()
	sw.f = nil
	if err != nil {
		return err
	}
	return sw.eng.addSegment(manifestSegment{File: filepath.Base(sw.path), Shard: sw.shard, Seq: sw.seq - 1})
}

// loadSegment reads a finished segment back: footer validation, one shared
// mapping, and per-block SealedBlock views whose payloads alias the mapping.
// Returned blocks are in spill (= seal) order.
func loadSegment(fsys FS, path string) (blocks []segBlock, mapping []byte, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+segTrailerLen {
		return nil, nil, fmt.Errorf("storage: segment %s: %d bytes is too small", path, size)
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-segTrailerLen); err != nil {
		return nil, nil, err
	}
	if string(trailer[20:]) != segFooterMagic {
		return nil, nil, fmt.Errorf("storage: segment %s: bad footer magic", path)
	}
	footerOff := int64(binary.BigEndian.Uint64(trailer[0:]))
	footerLen := int64(binary.BigEndian.Uint32(trailer[8:]))
	count := int(binary.BigEndian.Uint32(trailer[12:]))
	wantCRC := binary.BigEndian.Uint32(trailer[16:])
	if footerOff < int64(len(segMagic)) || footerOff+footerLen+segTrailerLen != size {
		return nil, nil, fmt.Errorf("storage: segment %s: footer bounds [%d,%d) disagree with size %d", path, footerOff, footerOff+footerLen, size)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, footerOff); err != nil {
		return nil, nil, err
	}
	if crc32.Checksum(footer, crcC) != wantCRC {
		return nil, nil, fmt.Errorf("storage: segment %s: footer CRC mismatch", path)
	}
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, nil, err
	}
	if string(hdr[:]) != segMagic {
		return nil, nil, fmt.Errorf("storage: segment %s: bad magic", path)
	}
	mapping, err = fsys.Mmap(f, int(size))
	if err != nil {
		return nil, nil, fmt.Errorf("storage: mmap segment %s: %w", path, err)
	}
	blocks = make([]segBlock, 0, count)
	off := 0
	for i := 0; i < count; i++ {
		if off+segBlockMetaLen > len(footer) {
			fsys.Munmap(mapping)
			return nil, nil, fmt.Errorf("storage: segment %s: footer truncated at block %d", path, i)
		}
		e := segBlock{meterID: binary.BigEndian.Uint64(footer[off:])}
		e.blk.Epoch = int(binary.BigEndian.Uint32(footer[off+8:]))
		e.blk.Level = int(footer[off+12])
		histK := int(binary.BigEndian.Uint16(footer[off+13:]))
		e.blk.N = int(binary.BigEndian.Uint32(footer[off+15:]))
		e.blk.FirstT = int64(binary.BigEndian.Uint64(footer[off+19:]))
		e.blk.Stride = int64(binary.BigEndian.Uint64(footer[off+27:]))
		e.blk.Sum = math.Float64frombits(binary.BigEndian.Uint64(footer[off+35:]))
		e.blk.MinV = math.Float64frombits(binary.BigEndian.Uint64(footer[off+43:]))
		e.blk.MaxV = math.Float64frombits(binary.BigEndian.Uint64(footer[off+51:]))
		e.off = int64(binary.BigEndian.Uint64(footer[off+59:]))
		e.crc = binary.BigEndian.Uint32(footer[off+67:])
		off += segBlockMetaLen
		if histK > 0 {
			if off+4*histK > len(footer) {
				fsys.Munmap(mapping)
				return nil, nil, fmt.Errorf("storage: segment %s: footer truncated in block %d histogram", path, i)
			}
			e.blk.Hist = make([]uint32, histK)
			for j := range e.blk.Hist {
				e.blk.Hist[j] = binary.BigEndian.Uint32(footer[off+4*j:])
			}
			off += 4 * histK
		}
		if e.blk.Level < 1 || e.blk.Level > 30 || e.blk.N < 1 {
			fsys.Munmap(mapping)
			return nil, nil, fmt.Errorf("storage: segment %s: block %d has level %d, n %d", path, i, e.blk.Level, e.blk.N)
		}
		need := int64((e.blk.N*e.blk.Level + 7) / 8)
		if e.off < int64(len(segMagic)) || e.off+need > footerOff {
			fsys.Munmap(mapping)
			return nil, nil, fmt.Errorf("storage: segment %s: block %d payload [%d,%d) outside data region", path, i, e.off, e.off+need)
		}
		e.blk.Payload = mapping[e.off : e.off+need : e.off+need]
		if crc32.Checksum(e.blk.Payload, crcC) != e.crc {
			fsys.Munmap(mapping)
			return nil, nil, fmt.Errorf("storage: segment %s: block %d payload CRC mismatch", path, i)
		}
		e.blk.Spilled = canMmap
		blocks = append(blocks, e)
	}
	if off != len(footer) {
		fsys.Munmap(mapping)
		return nil, nil, fmt.Errorf("storage: segment %s: %d trailing footer bytes", path, len(footer)-off)
	}
	return blocks, mapping, nil
}
