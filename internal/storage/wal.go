package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"symmeter/internal/symbolic"
)

// Per-shard write-ahead log.
//
// Every table push and every Store.Append batch is framed into the shard's
// log before it commits to the in-memory store, so the log's record sequence
// is, per meter, exactly the ingest history — replaying it through the
// normal Append path rebuilds byte-identical block chains. Records from
// different meters of one shard interleave in commit order, which is
// irrelevant to recovery (records carry their meter ID and each meter's
// subsequence is totally ordered by its single session).
//
// Record framing:
//
//	n(uint32 BE) | ^n(uint32 BE) | crc32c(body)(uint32 BE) | body
//	body = type(1) | payload
//
// The redundant ^n field plus a forward resync scan let replay tell a torn
// tail from corruption. A process crash can only leave a byte *prefix* of
// the last write, but an OS or power crash can persist the final record's
// pages out of order — a complete-looking header over a damaged body, or
// vice versa — so "in bounds" alone cannot condemn a file. Replay therefore
// applies two rules:
//
//   - Damage with NO structurally valid record anywhere after it is a torn
//     tail: everything before it is intact, the damaged region was the last
//     thing in flight (and was never acknowledged as durable under the sync
//     mode in use when the failure could lose it), and the file is
//     truncated back to the last whole record.
//   - Damage *followed by* a valid record — a flipped bit in the middle of
//     the log — is corruption and fails recovery loudly with ErrWALCorrupt:
//     records after the damage are readable and acknowledged, and the log
//     never silently drops them.
//
// The resync scan walks the remaining bytes with the cheap n == ^inv header
// probe and confirms a candidate only if its CRC also matches, so random
// damage cannot fake a successor record (probability ~2^-64 per offset).
//
// Record types:
//
//	'T': meterID(uint64) | symbolic.MarshalTable bytes
//	'B': meterID(uint64) | epoch(uint32) | level(uint8) | kind(uint8) |
//	     count(uint32) | timestamps | packed symbols (headerless, MSB-first)
//	     kind 0 (arithmetic): timestamps = firstT(int64) | stride(int64)
//	     kind 1 (explicit):   timestamps = count × int64
//	't': seq(uint64) | 'T' body — a table push committed under a session
//	     sequence number (manifest format ≥ 3)
//	'b': seq(uint64) | 'B' body — a batch committed under a session
//	     sequence number (manifest format ≥ 3)
//
// Batches off the wire are arithmetic in practice (the transport already
// reconstructs firstT + i·window), so kind 0 — 16 bytes for any batch — is
// the hot encoding; kind 1 keeps the log lossless for arbitrary Append
// callers. The sequenced variants exist for exactly-once ingest: recovery
// restores each meter's sequence high-water mark as the max seq across every
// replayed record, so a reconnecting client learns which batches survived
// the crash and replays only the rest.
const (
	walHeaderLen = 12
	recTable     = 'T'
	recBatch     = 'B'
	recSeqTable  = 't'
	recSeqBatch  = 'b'
	// maxWALRecord bounds a record body against corrupted length fields,
	// mirroring the transport's frame cap.
	maxWALRecord = 16 << 20
)

// crcC is the Castagnoli table (CRC-32C, the storage-standard polynomial
// with hardware support on current CPUs).
var crcC = crc32.MakeTable(crc32.Castagnoli)

// ErrWALCorrupt reports WAL bytes that are damaged somewhere other than a
// torn tail; recovery refuses to guess and fails loudly.
var ErrWALCorrupt = errors.New("storage: wal corrupt")

// SyncMode selects the WAL durability/latency trade (see the README's
// fsync-vs-throughput numbers).
type SyncMode int

const (
	// SyncOff never fsyncs: a batch is acknowledged once write(2) returns,
	// which survives process death (kill -9) but not OS/power failure.
	SyncOff SyncMode = iota
	// SyncGroup acknowledges after write(2) and lets a background syncer
	// fsync all shard logs on a short interval: OS-crash loss is bounded by
	// that interval, per-append latency stays at SyncOff levels.
	SyncGroup
	// SyncAlways blocks each append until an fsync covers its record.
	// Concurrent appenders share fsyncs leader-style (group commit), so the
	// cost amortizes across sessions, not per batch.
	SyncAlways
)

// ParseSyncMode maps the -fsync flag values off|group|always.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "group":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync mode %q (want off, group or always)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// errWALPoisoned marks a wal that refused a write because an earlier write
// on it already failed: the file may hold a torn record at its tail, so
// writing more behind it would bury the tear mid-log and turn a tolerated
// torn tail into fatal ErrWALCorrupt at recovery. The engine reacts by
// retrying on the replacement wal if a heal has rotated one in, or
// surfacing the original failure if not.
var errWALPoisoned = errors.New("storage: wal poisoned by earlier write failure")

// wal is one shard's append-only log.
type wal struct {
	mu  sync.Mutex // serializes record assembly + write
	f   File
	buf []byte // record assembly scratch, reused across appends

	// failed latches the first write error (under mu): the file may end in
	// a torn record, so every later write is refused with errWALPoisoned.
	failed error

	// written is the end offset of the last fully-written record, read by
	// the sync side without the append lock.
	written atomic.Int64

	// Leader-based group commit: the first waiter past the synced watermark
	// runs the fsync for everyone behind it.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncing  bool
	synced   int64
	syncErr  error
}

func newWAL(f File, off int64) *wal {
	w := &wal{f: f}
	w.written.Store(off)
	w.synced = off
	w.syncCond = sync.NewCond(&w.syncMu)
	return w
}

// appendRecord frames body (type byte already first) and writes it in a
// single Write, returning the record's end offset. The caller owns making
// body through beginRecord/w.buf under w.mu; appendRecord is called with
// w.mu held.
func (w *wal) writeLocked(buf []byte) (int64, error) {
	if w.failed != nil {
		return 0, fmt.Errorf("%w: %w", errWALPoisoned, w.failed)
	}
	bodyLen := len(buf) - walHeaderLen
	binary.BigEndian.PutUint32(buf[0:], uint32(bodyLen))
	binary.BigEndian.PutUint32(buf[4:], ^uint32(bodyLen))
	binary.BigEndian.PutUint32(buf[8:], crc32.Checksum(buf[walHeaderLen:], crcC))
	if _, err := w.f.Write(buf); err != nil {
		// A partial append leaves a torn tail — exactly what replay
		// tolerates — but this wal must never write behind it: a record
		// after the tear would make it mid-log corruption.
		w.failed = err
		return 0, fmt.Errorf("storage: wal append: %w", err)
	}
	end := w.written.Add(int64(len(buf)))
	return end, nil
}

// walHdrZero is the placeholder the record builders reserve up front and
// writeLocked fills in, keeping assembly append-only and allocation-free.
var walHdrZero [walHeaderLen]byte

// appendTable logs a table push.
func (w *wal) appendTable(meterID uint64, t *symbolic.Table) (int64, error) {
	return w.appendTableRec(recTable, 0, meterID, t)
}

// appendTableSeq logs a table push committed under a session sequence number.
func (w *wal) appendTableSeq(meterID, seq uint64, t *symbolic.Table) (int64, error) {
	return w.appendTableRec(recSeqTable, seq, meterID, t)
}

func (w *wal) appendTableRec(typ byte, seq, meterID uint64, t *symbolic.Table) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf := append(w.buf[:0], walHdrZero[:]...)
	buf = append(buf, typ)
	if typ == recSeqTable {
		buf = binary.BigEndian.AppendUint64(buf, seq)
	}
	buf = binary.BigEndian.AppendUint64(buf, meterID)
	buf = append(buf, symbolic.MarshalTable(t)...)
	w.buf = buf
	return w.writeLocked(buf)
}

// appendBatch logs one Append batch under the meter's current epoch.
func (w *wal) appendBatch(meterID uint64, epoch uint32, level int, pts []symbolic.SymbolPoint) (int64, error) {
	return w.appendBatchRec(recBatch, 0, meterID, epoch, level, pts)
}

// appendBatchSeq logs one batch committed under a session sequence number.
func (w *wal) appendBatchSeq(meterID, seq uint64, epoch uint32, level int, pts []symbolic.SymbolPoint) (int64, error) {
	return w.appendBatchRec(recSeqBatch, seq, meterID, epoch, level, pts)
}

func (w *wal) appendBatchRec(typ byte, seq, meterID uint64, epoch uint32, level int, pts []symbolic.SymbolPoint) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf := append(w.buf[:0], walHdrZero[:]...)
	buf = append(buf, typ)
	if typ == recSeqBatch {
		buf = binary.BigEndian.AppendUint64(buf, seq)
	}
	buf = binary.BigEndian.AppendUint64(buf, meterID)
	buf = binary.BigEndian.AppendUint32(buf, epoch)
	buf = append(buf, byte(level))
	kind := byte(0)
	if !arithmetic(pts) {
		kind = 1
	}
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(pts)))
	if kind == 0 {
		var firstT, stride int64
		if len(pts) > 0 {
			firstT = pts[0].T
		}
		if len(pts) > 1 {
			stride = pts[1].T - pts[0].T
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(firstT))
		buf = binary.BigEndian.AppendUint64(buf, uint64(stride))
	} else {
		for i := range pts {
			buf = binary.BigEndian.AppendUint64(buf, uint64(pts[i].T))
		}
	}
	buf = appendPackedPoints(buf, pts, level)
	w.buf = buf
	return w.writeLocked(buf)
}

// arithmetic reports whether the batch timestamps form one arithmetic
// progression (any common difference, including zero), the compact WAL
// encoding.
func arithmetic(pts []symbolic.SymbolPoint) bool {
	if len(pts) < 3 {
		return true
	}
	stride := pts[1].T - pts[0].T
	for i := 2; i < len(pts); i++ {
		if pts[i].T-pts[i-1].T != stride {
			return false
		}
	}
	return true
}

// appendPackedPoints packs the batch symbols MSB-first at the given level —
// the codec's headerless bit layout (count and level live in the record).
func appendPackedPoints(dst []byte, pts []symbolic.SymbolPoint, level int) []byte {
	var acc uint64
	accBits := 0
	for i := range pts {
		acc = acc<<uint(level) | uint64(pts[i].S.Index())
		accBits += level
		for accBits >= 8 {
			accBits -= 8
			dst = append(dst, byte(acc>>uint(accBits)))
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc<<uint(8-accBits)))
	}
	return dst
}

// syncTo blocks until an fsync covers offset upto. The first blocked caller
// becomes the leader and syncs everything written so far; later callers
// piggyback on that fsync or the next one.
func (w *wal) syncTo(upto int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.synced >= upto {
			return nil
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		target := w.written.Load()
		w.syncMu.Unlock()
		err := w.f.Sync()
		w.syncMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = fmt.Errorf("storage: wal fsync: %w", err)
		} else if target > w.synced {
			w.synced = target
		}
		w.syncCond.Broadcast()
	}
}

// dirty reports whether written records are not yet covered by an fsync —
// what the SyncGroup background syncer polls.
func (w *wal) dirty() bool {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncErr == nil && w.synced < w.written.Load()
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// --- Replay ----------------------------------------------------------------

// walRecord is one parsed record plus its end offset in the file (the
// truncation point if everything after it turns out torn).
type walRecord struct {
	typ  byte
	data []byte // payload after the type byte, aliasing the read buffer
	end  int64
}

// parseWAL splits raw log bytes into records, applying the torn-tail rules
// from the package comment. valid is the byte length of the intact prefix;
// torn reports whether trailing bytes were dropped as a torn write.
func parseWAL(data []byte) (recs []walRecord, valid int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		rem := len(data) - off
		bad := ""
		switch n, inv := headerAt(data, off); {
		case rem < walHeaderLen:
			bad = "partial header"
		case inv != ^n:
			bad = "inconsistent record header"
		case n < 1 || n > maxWALRecord:
			bad = fmt.Sprintf("impossible record length %d", n)
		case rem < walHeaderLen+int(n):
			bad = "partial body"
		case crc32.Checksum(data[off+walHeaderLen:off+walHeaderLen+int(n)], crcC) != binary.BigEndian.Uint32(data[off+8:]):
			bad = "record CRC mismatch"
		default:
			body := data[off+walHeaderLen : off+walHeaderLen+int(n)]
			off += walHeaderLen + int(n)
			recs = append(recs, walRecord{typ: body[0], data: body[1:], end: int64(off)})
			continue
		}
		// Damage. A torn final write (process or OS crash) leaves nothing
		// readable behind it; damage with an intact record after it is
		// mid-log corruption and acknowledged data would be lost silently
		// by truncating here.
		if nextValidRecord(data, off+1) {
			return nil, 0, false, fmt.Errorf("%w: %s at offset %d with intact records after it", ErrWALCorrupt, bad, off)
		}
		return recs, int64(off), true, nil
	}
	return recs, int64(off), false, nil
}

// headerAt reads a record header's length fields (zero when fewer than 8
// bytes remain — the caller's bounds checks fire first).
func headerAt(data []byte, off int) (n, inv uint32) {
	if len(data)-off < 8 {
		return 0, 0
	}
	return binary.BigEndian.Uint32(data[off:]), binary.BigEndian.Uint32(data[off+4:])
}

// nextValidRecord reports whether any offset at or after from starts a
// structurally valid record (consistent header, plausible length, matching
// body CRC). The header probe is 8 bytes and self-checking, so the CRC —
// the expensive part — runs only on the ~2^-32 of offsets that pass it.
func nextValidRecord(data []byte, from int) bool {
	for off := from; off+walHeaderLen < len(data); off++ {
		n, inv := headerAt(data, off)
		if inv != ^n || n < 1 || n > maxWALRecord {
			continue
		}
		if len(data)-off < walHeaderLen+int(n) {
			continue
		}
		if crc32.Checksum(data[off+walHeaderLen:off+walHeaderLen+int(n)], crcC) == binary.BigEndian.Uint32(data[off+8:]) {
			return true
		}
	}
	return false
}

// batchRecord is a decoded 'B' record.
type batchRecord struct {
	meterID uint64
	epoch   uint32
	level   int
	pts     []symbolic.SymbolPoint
}

// decodeBatch parses a 'B' record payload, reusing the caller's point and
// symbol scratch. Every field is bounds-checked: the payload is disk input.
func decodeBatch(data []byte, ptsScratch []symbolic.SymbolPoint, symScratch []symbolic.Symbol) (batchRecord, []symbolic.SymbolPoint, []symbolic.Symbol, error) {
	var br batchRecord
	if len(data) < 18 {
		return br, ptsScratch, symScratch, fmt.Errorf("%w: batch record of %d bytes", ErrWALCorrupt, len(data))
	}
	br.meterID = binary.BigEndian.Uint64(data[0:])
	br.epoch = binary.BigEndian.Uint32(data[8:])
	br.level = int(data[12])
	kind := data[13]
	count := int(binary.BigEndian.Uint32(data[14:]))
	if br.level < 1 || br.level > symbolic.MaxLevel {
		return br, ptsScratch, symScratch, fmt.Errorf("%w: batch at level %d", ErrWALCorrupt, br.level)
	}
	if kind > 1 {
		return br, ptsScratch, symScratch, fmt.Errorf("%w: batch timestamp kind %d", ErrWALCorrupt, kind)
	}
	rest := data[18:]
	tsBytes := 16
	if kind == 1 {
		tsBytes = 8 * count
	}
	packedBytes := (count*br.level + 7) / 8
	if count < 1 || len(rest) != tsBytes+packedBytes {
		return br, ptsScratch, symScratch, fmt.Errorf("%w: batch of %d points with %d trailing bytes, want %d", ErrWALCorrupt, count, len(rest), tsBytes+packedBytes)
	}
	symScratch = symbolic.AppendUnpackRange(symScratch[:0], rest[tsBytes:], br.level, 0, count)
	if cap(ptsScratch) < count {
		ptsScratch = make([]symbolic.SymbolPoint, count)
	}
	pts := ptsScratch[:count]
	if kind == 0 {
		firstT := int64(binary.BigEndian.Uint64(rest[0:]))
		stride := int64(binary.BigEndian.Uint64(rest[8:]))
		for i := range pts {
			pts[i] = symbolic.SymbolPoint{T: firstT + int64(i)*stride, S: symScratch[i]}
		}
	} else {
		for i := range pts {
			pts[i] = symbolic.SymbolPoint{T: int64(binary.BigEndian.Uint64(rest[8*i:])), S: symScratch[i]}
		}
	}
	br.pts = pts
	return br, ptsScratch, symScratch, nil
}

// stripSeq normalizes a possibly-sequenced record to its legacy type and
// body, returning the sequence number (0 for legacy records) — replay
// handles 't'/'b' exactly like 'T'/'B' plus a high-water-mark update.
func stripSeq(rec walRecord) (typ byte, seq uint64, data []byte, err error) {
	switch rec.typ {
	case recSeqTable, recSeqBatch:
		if len(rec.data) < 8 {
			return 0, 0, nil, fmt.Errorf("%w: sequenced record of %d bytes", ErrWALCorrupt, len(rec.data))
		}
		return rec.typ - ('a' - 'A'), binary.BigEndian.Uint64(rec.data), rec.data[8:], nil
	}
	return rec.typ, 0, rec.data, nil
}

// decodeTable parses a 'T' record payload.
func decodeTable(data []byte) (uint64, *symbolic.Table, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: table record of %d bytes", ErrWALCorrupt, len(data))
	}
	t, err := symbolic.UnmarshalTable(data[8:])
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	return binary.BigEndian.Uint64(data[0:]), t, nil
}
