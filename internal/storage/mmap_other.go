//go:build !unix

package storage

import "os"

const canMmap = false

// mmapFile on platforms without a usable mmap reads the region into the
// heap: sealed blocks stay resident, everything else behaves identically.
func mmapFile(f *os.File, length int) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

func munmapFile(b []byte) error { return nil }
