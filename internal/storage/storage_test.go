package storage

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// testTable learns the same k=16 table every storage test shares.
func testTable(t testing.TB) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	return mustTable(vals)
}

// mustTable is testTable without a testing.TB, for the re-exec'd kill child.
func mustTable(vals []float64) *symbolic.Table {
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 16)
	if err != nil {
		panic(err)
	}
	return table
}

// genBatch builds the deterministic batch `idx` of a meter's stream: 96
// regular 15-minute points (with a stream gap every 7th batch, so block
// chains include stride breaks).
func genBatch(meterID uint64, idx int, table *symbolic.Table) []symbolic.SymbolPoint {
	base := int64(idx) * 96 * 900
	if idx%7 == 3 {
		base += 450 // gap: breaks the arithmetic progression between batches
	}
	pts := make([]symbolic.SymbolPoint, 96)
	for j := range pts {
		v := float64((int(meterID)*31 + idx*97 + j*13) % 4000)
		pts[j] = symbolic.SymbolPoint{T: base + int64(j)*900, S: table.Encode(v)}
	}
	return pts
}

// applyBatches drives ing with nBatches per meter, interleaved across
// meters like concurrent sessions would.
func applyBatches(t testing.TB, ing server.Ingest, table *symbolic.Table, meters []uint64, nBatches int) {
	t.Helper()
	for _, m := range meters {
		if err := ing.StartSession(m); err != nil {
			t.Fatal(err)
		}
		if err := ing.PushTable(m, table); err != nil {
			t.Fatal(err)
		}
	}
	for idx := 0; idx < nBatches; idx++ {
		for _, m := range meters {
			if _, err := ing.Append(m, genBatch(m, idx, table)); err != nil {
				t.Fatalf("append meter %d batch %d: %v", m, idx, err)
			}
		}
	}
	for _, m := range meters {
		ing.EndSession(m)
	}
}

// oracleStore builds the plain in-memory store for the same batch sequence.
func oracleStore(t testing.TB, table *symbolic.Table, meters []uint64, nBatches int) *server.Store {
	t.Helper()
	st := server.NewStore(4)
	applyBatches(t, st, table, meters, nBatches)
	return st
}

// compareStores asserts bit-exact aggregate equivalence (Count, Sum, Min,
// Max, Histogram) between two stores for every meter over several windows,
// including ones that cut blocks on both ends.
func compareStores(t *testing.T, got, want *server.Store, meters []uint64) {
	t.Helper()
	if g, w := got.TotalSymbols(), want.TotalSymbols(); g != w {
		t.Fatalf("TotalSymbols: got %d, want %d", g, w)
	}
	ge, we := query.New(got), query.New(want)
	windows := [][2]int64{
		{0, math.MaxInt64},
		{5 * 900, 777 * 900},
		{100*900 + 1, 5000 * 900},
		{3 * 96 * 900, 9 * 96 * 900},
	}
	for _, m := range meters {
		for _, win := range windows {
			ga, gok := ge.Aggregate(m, win[0], win[1])
			wa, wok := we.Aggregate(m, win[0], win[1])
			if gok != wok {
				t.Fatalf("meter %d window %v: exists %v vs %v", m, win, gok, wok)
			}
			if ga.Count != wa.Count ||
				math.Float64bits(ga.Sum) != math.Float64bits(wa.Sum) ||
				math.Float64bits(ga.Min) != math.Float64bits(wa.Min) ||
				math.Float64bits(ga.Max) != math.Float64bits(wa.Max) {
				t.Fatalf("meter %d window %v: got %+v, want %+v", m, win, ga, wa)
			}
			var gh, wh query.Histogram
			if _, err := ge.HistogramInto(&gh, m, win[0], win[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := we.HistogramInto(&wh, m, win[0], win[1]); err != nil {
				t.Fatal(err)
			}
			if gh.Level != wh.Level || len(gh.Counts) != len(wh.Counts) {
				t.Fatalf("meter %d window %v: histogram shape %d/%d vs %d/%d", m, win, gh.Level, len(gh.Counts), wh.Level, len(wh.Counts))
			}
			for s := range gh.Counts {
				if gh.Counts[s] != wh.Counts[s] {
					t.Fatalf("meter %d window %v symbol %d: %d vs %d", m, win, s, gh.Counts[s], wh.Counts[s])
				}
			}
		}
	}
}

var testMeters = []uint64{1, 2, 17, 1017}

// openTest opens an engine over dir with small segments so tests exercise
// segment rollover, finish and multi-segment recovery.
func openTest(t testing.TB, dir string, mode SyncMode) *Engine {
	t.Helper()
	eng, err := Open(Options{Dir: dir, Shards: 4, Sync: mode, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRecoverAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	table := testTable(t)
	const nBatches = 40 // ~3840 points/meter: several sealed blocks + tail
	eng := openTest(t, dir, SyncOff)
	applyBatches(t, eng, table, testMeters, nBatches)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, SyncOff)
	defer re.Close()
	st := re.Recovery()
	if st.SegmentPoints == 0 {
		t.Errorf("clean close should restore sealed data from segments, got %+v", st)
	}
	if st.SkippedPoints != st.SegmentPoints {
		t.Errorf("replay skipped %d points, segments restored %d", st.SkippedPoints, st.SegmentPoints)
	}
	compareStores(t, re.Store(), oracleStore(t, table, testMeters, nBatches), testMeters)
}

func TestRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	table := testTable(t)
	const nBatches = 40
	eng := openTest(t, dir, SyncOff)
	applyBatches(t, eng, table, testMeters, nBatches)
	// No Close, no Flush: the WAL holds everything via write(2), the open
	// segments have no footer and must be discarded + re-derived.
	re := openTest(t, dir, SyncOff)
	defer re.Close()
	compareStores(t, re.Store(), oracleStore(t, table, testMeters, nBatches), testMeters)
	if re.Recovery().ReplayedPoints == 0 {
		t.Error("crash recovery should replay points from the WAL")
	}
}

func TestRecoverAfterFlushThenMoreWrites(t *testing.T) {
	dir := t.TempDir()
	table := testTable(t)
	eng := openTest(t, dir, SyncOff)
	applyBatches(t, eng, table, testMeters, 25)
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// Keep writing after the checkpoint: a second epoch plus more batches.
	table2 := testTable(t)
	for _, m := range testMeters {
		if err := eng.PushTable(m, table2); err != nil {
			t.Fatal(err)
		}
	}
	for idx := 25; idx < 40; idx++ {
		for _, m := range testMeters {
			if _, err := eng.Append(m, genBatch(m, idx, table2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash (no close).
	re := openTest(t, dir, SyncOff)
	defer re.Close()

	want := server.NewStore(4)
	for _, m := range testMeters {
		if err := want.StartSession(m); err != nil {
			t.Fatal(err)
		}
		if err := want.PushTable(m, table); err != nil {
			t.Fatal(err)
		}
	}
	for idx := 0; idx < 25; idx++ {
		for _, m := range testMeters {
			if _, err := want.Append(m, genBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, m := range testMeters {
		if err := want.PushTable(m, table2); err != nil {
			t.Fatal(err)
		}
	}
	for idx := 25; idx < 40; idx++ {
		for _, m := range testMeters {
			if _, err := want.Append(m, genBatch(m, idx, table2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareStores(t, re.Store(), want, testMeters)
}

func TestRecoverTwiceAccumulates(t *testing.T) {
	dir := t.TempDir()
	table := testTable(t)
	eng := openTest(t, dir, SyncOff)
	applyBatches(t, eng, table, testMeters, 20)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Second generation: recover, write more, close.
	eng2 := openTest(t, dir, SyncOff)
	for idx := 20; idx < 40; idx++ {
		for _, m := range testMeters {
			if _, err := eng2.Append(m, genBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir, SyncOff)
	defer re.Close()
	compareStores(t, re.Store(), oracleStore(t, table, testMeters, 40), testMeters)
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncGroup, SyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			table := testTable(t)
			eng := openTest(t, dir, mode)
			applyBatches(t, eng, table, testMeters[:2], 10)
			if mode == SyncGroup {
				time.Sleep(10 * time.Millisecond) // let the background syncer run once
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			re := openTest(t, dir, mode)
			defer re.Close()
			compareStores(t, re.Store(), oracleStore(t, table, testMeters[:2], 10), testMeters[:2])
		})
	}
}

func TestSpillBoundsResidentMemory(t *testing.T) {
	if !canMmap {
		t.Skip("no mmap on this platform: sealed payloads stay heap-resident")
	}
	dir := t.TempDir()
	table := testTable(t)
	const nBatches = 160 // ~15k points per meter
	eng := openTest(t, dir, SyncOff)
	defer eng.Close()
	applyBatches(t, eng, table, testMeters, nBatches)
	mem := oracleStore(t, table, testMeters, nBatches)

	persistBytes, pts := eng.Store().MemoryFootprint()
	memBytes, _ := mem.MemoryFootprint()
	if pts == 0 {
		t.Fatal("no points")
	}
	// The spilled store must not pay heap for sealed payloads: at level 4
	// they are 0.5 B/point, the dominant term of the resident footprint.
	if persistBytes >= memBytes {
		t.Errorf("spilled store resident %d B ≥ in-memory %d B for %d points", persistBytes, memBytes, pts)
	}
	walBytes, segBytes, err := eng.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if walBytes == 0 || segBytes == 0 {
		t.Errorf("disk usage wal=%d seg=%d, want both > 0", walBytes, segBytes)
	}
}

func TestRefusesNewerFormat(t *testing.T) {
	dir := t.TempDir()
	eng := openTest(t, dir, SyncOff)
	eng.Close()
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"format": 99, "shards": 4, "segments": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Shards: 4}); !errors.Is(err, ErrFormatTooNew) {
		t.Fatalf("Open with newer format: got %v, want ErrFormatTooNew", err)
	}
}

func TestManifestShardCountWins(t *testing.T) {
	dir := t.TempDir()
	table := testTable(t)
	eng, err := Open(Options{Dir: dir, Shards: 8, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, eng, table, testMeters, 10)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen asking for a different shard count: the directory's wins, and
	// the data comes back intact.
	re, err := Open(Options{Dir: dir, Shards: 3, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Store().NumShards(); got != 8 {
		t.Errorf("NumShards after reopen: got %d, want the directory's 8", got)
	}
	if got, want := re.Store().TotalSymbols(), len(testMeters)*10*96; got != want {
		t.Errorf("TotalSymbols: got %d, want %d", got, want)
	}
}
