package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"symmeter/internal/server"
)

// Degraded-mode state machine.
//
// Storage failure is a state, not an exception. The engine classifies every
// durability failure and reacts per class:
//
//	WAL write/fsync failure  → Degraded: the covering log tail is poisoned
//	                           (fsyncgate rule: after a failed fsync the
//	                           kernel may have dropped the dirty pages, so
//	                           retrying the fsync and acking would promise
//	                           durability for bytes that are gone). Ingest
//	                           is refused with server.ErrDegraded; queries
//	                           keep serving sealed + resident data.
//	segment-spill failure    → NOT degraded: the seal falls back to the
//	                           heap-resident payload (the WAL still covers
//	                           every point), spillFallbacks counts it, and
//	                           the probe re-enables spilling when the
//	                           directory recovers.
//	manifest-replace failure → retried with capped backoff inside
//	                           addSegment; only repeated failure degrades
//	                           (the segment stays unmanifested — an orphan
//	                           recovery deletes, with the WAL as cover).
//
// States: Healthy → Degraded → Recovering → Healthy. A background probe
// re-tests the data directory while Degraded; on success the engine rotates
// every shard to a fresh WAL generation (never appending behind a possibly
// torn tail), activates the generation through a manifest write, and only
// then re-admits ingest. A failure during the Recovering rotation drops
// back to Degraded with the new reason.

// HealthState is the engine's coarse condition.
type HealthState int32

const (
	// StateHealthy: full service — durable ingest and queries.
	StateHealthy HealthState = iota
	// StateDegraded: queries only; ingest is refused with a typed error
	// (server.ErrDegraded over the wire as VerdictDegraded). Entered on the
	// first unrecoverable durability failure.
	StateDegraded
	// StateRecovering: a probe succeeded and the engine is rotating to a
	// fresh WAL generation; ingest is still refused until rotation lands.
	StateRecovering
)

func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateRecovering:
		return "recovering"
	}
	return fmt.Sprintf("HealthState(%d)", int32(s))
}

// Health is a point-in-time snapshot of the engine's condition and fault
// counters, for operators (cmd/serve stats) and tests.
type Health struct {
	State  HealthState
	Reason string // first failure that caused the current degradation, "" when healthy

	// SpillDisabled reports that sealed blocks are staying heap-resident
	// because segment writes are failing; ingest still works (WAL covers it).
	SpillDisabled bool

	// Cumulative fault counters since Open.
	WALWriteFailures uint64
	FsyncFailures    uint64
	SpillFallbacks   uint64 // blocks kept on heap instead of spilled
	ManifestRetries  uint64 // manifest writes that needed a retry
	ManifestFailures uint64 // manifest writes that exhausted retries
	Probes           uint64 // background directory probes attempted
	Heals            uint64 // Degraded → Healthy round trips completed
	WALGen           uint64 // current WAL generation (0 = original logs)
}

// refusal is the prebuilt error ingest returns while degraded; one pointer
// load on the hot path, nil when healthy.
type refusal struct {
	err error
}

// healthState carries the state machine. The hot path (Append/PushTable)
// reads only the refuse pointer; transitions serialize on mu.
type healthState struct {
	refuse atomic.Pointer[refusal]
	state  atomic.Int32

	mu     sync.Mutex
	reason string

	spillDisabled atomic.Bool
	spillReason   atomic.Pointer[string]

	walWriteFailures atomic.Uint64
	fsyncFailures    atomic.Uint64
	spillFallbacks   atomic.Uint64
	manifestRetries  atomic.Uint64
	manifestFailures atomic.Uint64
	probes           atomic.Uint64
	heals            atomic.Uint64
}

// Health returns a snapshot of the engine's state and fault counters.
func (e *Engine) Health() Health {
	h := &e.health
	h.mu.Lock()
	reason := h.reason
	h.mu.Unlock()
	return Health{
		State:            HealthState(h.state.Load()),
		Reason:           reason,
		SpillDisabled:    h.spillDisabled.Load(),
		WALWriteFailures: h.walWriteFailures.Load(),
		FsyncFailures:    h.fsyncFailures.Load(),
		SpillFallbacks:   h.spillFallbacks.Load(),
		ManifestRetries:  h.manifestRetries.Load(),
		ManifestFailures: h.manifestFailures.Load(),
		Probes:           h.probes.Load(),
		Heals:            h.heals.Load(),
		WALGen:           e.walGen.Load(),
	}
}

// degrade moves the engine to Degraded with the given failure class and
// cause. The first degradation's reason sticks until a heal completes; a
// degrade during Recovering overrides the in-flight heal (its final CAS
// fails and the probe starts over).
func (e *Engine) degrade(class string, cause error) {
	h := &e.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if HealthState(h.state.Load()) == StateDegraded {
		return // keep the first reason
	}
	h.reason = fmt.Sprintf("%s: %v", class, cause)
	h.refuse.Store(&refusal{err: fmt.Errorf("%w (%s)", server.ErrDegraded, h.reason)})
	h.state.Store(int32(StateDegraded))
}

// heal attempts the Degraded → Recovering → Healthy transition: rotate
// every shard to a fresh WAL generation (activated by a manifest write) and
// re-admit ingest. Called from the probe loop after a successful directory
// probe. The rotation runs outside h.mu — it takes the manifest lock, and
// failure paths (addSegment degrading) take h.mu under it, so holding h.mu
// here would invert that order.
func (e *Engine) heal() {
	h := &e.health
	h.mu.Lock()
	if HealthState(h.state.Load()) != StateDegraded {
		h.mu.Unlock()
		return
	}
	h.state.Store(int32(StateRecovering))
	h.mu.Unlock()

	err := e.rotateWALs()

	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		// Still broken (or broken again): back to Degraded with the fresh
		// cause, unless something else already degraded us meanwhile.
		if HealthState(h.state.Load()) == StateRecovering {
			h.reason = fmt.Sprintf("wal rotation: %v", err)
			h.refuse.Store(&refusal{err: fmt.Errorf("%w (%s)", server.ErrDegraded, h.reason)})
			h.state.Store(int32(StateDegraded))
		}
		return
	}
	// A concurrent degrade() may have struck between rotation and here; its
	// state write wins and this CAS refuses to mask it.
	if h.state.CompareAndSwap(int32(StateRecovering), int32(StateHealthy)) {
		h.reason = ""
		h.refuse.Store(nil)
		h.spillDisabled.Store(false)
		h.spillReason.Store(nil)
		h.heals.Add(1)
	}
}

// disableSpill parks sealing on the heap after a segment failure. Ingest is
// unaffected — the WAL still covers every acknowledged point — so this does
// NOT degrade; the probe re-enables spilling once the directory recovers.
func (e *Engine) disableSpill(cause error) {
	h := &e.health
	if h.spillDisabled.CompareAndSwap(false, true) {
		s := cause.Error()
		h.spillReason.Store(&s)
	}
}

// probeLoop runs for the engine's lifetime, re-testing the data directory
// on an interval whenever the engine is Degraded (to heal) or spilling is
// disabled (to resume spilling). It is started unconditionally in Open so
// degrade() never races a WaitGroup.Add against Close's Wait.
func (e *Engine) probeLoop(interval time.Duration) {
	defer e.syncWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		}
		h := &e.health
		degraded := HealthState(h.state.Load()) == StateDegraded
		if !degraded && !h.spillDisabled.Load() {
			continue
		}
		h.probes.Add(1)
		if err := e.probeDir(); err != nil {
			continue
		}
		if degraded {
			e.heal() // clears spillDisabled on success too
		} else {
			h.spillDisabled.Store(false)
			h.spillReason.Store(nil)
		}
	}
}

// probeDir exercises the failure surface — create, write, fsync, remove —
// on a scratch file in the data directory. Success means the directory is
// plausibly writable again; the heal's own writes remain the real test.
func (e *Engine) probeDir() error {
	path := filepath.Join(e.opts.Dir, ".probe")
	f, err := e.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("symmeter probe\n")); err != nil {
		f.Close()
		e.fs.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		e.fs.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		e.fs.Remove(path)
		return err
	}
	return e.fs.Remove(path)
}

// rotateWALs opens a fresh log file for every shard at the next WAL
// generation, activates the generation with a manifest write (the barrier:
// a crash before it leaves the new files as deletable orphans, a crash
// after it replays them), and swaps the shard pointers. Old logs are
// retired, not closed — in-flight appends and the group syncer may still
// hold them — and get a best-effort final fsync for whatever they durably
// hold; Close reaps them.
func (e *Engine) rotateWALs() error {
	gen := e.walGen.Load() + 1
	files := make([]File, len(e.wals))
	for i := range files {
		f, err := e.fs.OpenFile(e.walGenPath(i, gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
		if err != nil {
			for _, g := range files[:i] {
				g.Close()
			}
			for j := 0; j < i; j++ {
				e.fs.Remove(e.walGenPath(j, gen))
			}
			return err
		}
		files[i] = f
	}

	// Manifest barrier: the generation exists once this lands, and replay
	// will read the new files. Until then they are orphans recovery deletes.
	e.manMu.Lock()
	prev := e.man.WALGen
	e.man.WALGen = gen
	err := writeManifest(e.fs, e.opts.Dir, e.man)
	if err != nil {
		e.man.WALGen = prev
	}
	e.manMu.Unlock()
	if err != nil {
		for i, f := range files {
			f.Close()
			e.fs.Remove(e.walGenPath(i, gen))
		}
		return err
	}
	e.walGen.Store(gen)

	e.retiredMu.Lock()
	for i, f := range files {
		old := e.wals[i].Swap(newWAL(f, 0))
		if old != nil {
			// Whatever the old log durably holds is still its replay
			// prefix; one last best-effort fsync narrows the SyncOff/Group
			// OS-crash window. Errors are expected here — the log lives on
			// the failed device — and change nothing: its records up to any
			// tear replay fine, and new ingest goes to the new generation.
			_ = old.syncTo(old.written.Load())
			e.retired = append(e.retired, old)
		}
	}
	e.retiredMu.Unlock()
	return nil
}
