//go:build unix

package storage

import (
	"os"
	"syscall"
)

// canMmap reports whether this platform serves segment payloads straight
// from a shared read-only mapping (the cold-read path). Where it is false,
// segment bytes are read into the heap instead — correctness is identical,
// only residency differs.
const canMmap = true

// mmapFile maps length bytes of f read-only and shared. A shared mapping is
// coherent with write(2) on the same file under the unified page cache, so
// the open segment's writer appends through the fd while already-published
// blocks are served from the very same pages.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping obtained from mmapFile. Callers must prove
// no published block still aliases it (the engine unmaps only on Close,
// after the store has stopped serving).
func munmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
