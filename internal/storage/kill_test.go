package storage

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"symmeter/internal/query"
	"symmeter/internal/server"
)

// TestKillNineRecovery is the kill-and-restart equivalence check: a child
// process (this test binary re-executed) ingests deterministic batches
// through a SyncOff engine, acknowledging each fully-committed round on
// stdout; the parent SIGKILLs it mid-stream, recovers the directory and
// requires (a) every acknowledged round to be present and (b) the recovered
// aggregates to be bit-exact against an in-memory oracle fed the same
// batches. Runs under -race in CI's recovery-smoke job.
func TestKillNineRecovery(t *testing.T) {
	if os.Getenv("SYMMETER_KILL_CHILD") == "1" {
		killChild()
		return
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics required")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillNineRecovery$")
	cmd.Env = append(os.Environ(), "SYMMETER_KILL_CHILD=1", "SYMMETER_KILL_DIR="+dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Read acks until the stream has sealed blocks, spilled segments and a
	// couple of flushes behind it, then kill without ceremony — the child is
	// almost certainly mid-append or mid-WAL-write.
	lastAck := -1
	sc := bufio.NewScanner(out)
	deadline := time.After(60 * time.Second)
	ackCh := make(chan int, 256)
	go func() {
		defer close(ackCh)
		for sc.Scan() {
			line := sc.Text()
			if n, ok := strings.CutPrefix(line, "ack "); ok {
				if v, err := strconv.Atoi(n); err == nil {
					ackCh <- v
				}
			}
		}
	}()
read:
	for {
		select {
		case v, ok := <-ackCh:
			if !ok {
				break read
			}
			lastAck = v
			if v >= 47 { // ~4.6k points/meter: seals, spills, one flush
				break read
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("child produced no progress (last ack %d)", lastAck)
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // signal: killed — expected
	if lastAck < 0 {
		t.Fatal("child never acknowledged a round")
	}

	eng := openTest(t, dir, SyncOff)
	defer eng.Close()
	table := testTable(t)
	ge := query.New(eng.Store())
	for _, m := range testMeters {
		h, ok := eng.Store().Meter(m)
		if !ok {
			t.Fatalf("meter %d lost", m)
		}
		n := h.TotalSymbols()
		// Batches commit atomically (the WAL record is one write), so the
		// recovered stream is a whole number of batches…
		if n%96 != 0 {
			t.Fatalf("meter %d recovered %d points — not a whole number of 96-point batches", m, n)
		}
		k := n / 96
		// …covering at least every acknowledged round.
		if k < lastAck+1 {
			t.Fatalf("meter %d recovered %d batches, but %d rounds were acknowledged", m, k, lastAck+1)
		}
		// Bit-exact equivalence against an oracle fed exactly those batches.
		want := server.NewStore(4)
		if err := want.StartSession(m); err != nil {
			t.Fatal(err)
		}
		if err := want.PushTable(m, table); err != nil {
			t.Fatal(err)
		}
		for idx := 0; idx < k; idx++ {
			if _, err := want.Append(m, genBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
		}
		we := query.New(want)
		for _, win := range [][2]int64{{0, math.MaxInt64}, {1000 * 900, 3000 * 900}} {
			ga, _ := ge.Aggregate(m, win[0], win[1])
			wa, _ := we.Aggregate(m, win[0], win[1])
			if ga.Count != wa.Count ||
				math.Float64bits(ga.Sum) != math.Float64bits(wa.Sum) ||
				math.Float64bits(ga.Min) != math.Float64bits(wa.Min) ||
				math.Float64bits(ga.Max) != math.Float64bits(wa.Max) {
				t.Fatalf("meter %d window %v: recovered %+v, oracle %+v", m, win, ga, wa)
			}
			var gh, wh query.Histogram
			if _, err := ge.HistogramInto(&gh, m, win[0], win[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := we.HistogramInto(&wh, m, win[0], win[1]); err != nil {
				t.Fatal(err)
			}
			for s := range wh.Counts {
				if gh.Counts[s] != wh.Counts[s] {
					t.Fatalf("meter %d window %v symbol %d: %d vs %d", m, win, s, gh.Counts[s], wh.Counts[s])
				}
			}
		}
	}
}

// killChild is the re-exec'd ingest loop: rounds of one batch per meter,
// an "ack N" line after round N fully commits, a Flush every 20 rounds, and
// no orderly shutdown ever — the parent's SIGKILL is the only exit.
func killChild() {
	dir := os.Getenv("SYMMETER_KILL_DIR")
	eng, err := Open(Options{Dir: dir, Shards: 4, Sync: SyncOff, SegmentBytes: 64 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(2)
	}
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	table := mustTable(vals)
	for _, m := range testMeters {
		if err := eng.StartSession(m); err != nil {
			fmt.Fprintln(os.Stderr, "child session:", err)
			os.Exit(2)
		}
		if err := eng.PushTable(m, table); err != nil {
			fmt.Fprintln(os.Stderr, "child table:", err)
			os.Exit(2)
		}
	}
	for idx := 0; ; idx++ {
		for _, m := range testMeters {
			if _, err := eng.Append(m, genBatch(m, idx, table)); err != nil {
				fmt.Fprintln(os.Stderr, "child append:", err)
				os.Exit(2)
			}
		}
		fmt.Printf("ack %d\n", idx)
		if idx > 0 && idx%20 == 0 {
			if err := eng.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "child flush:", err)
				os.Exit(2)
			}
		}
	}
}
