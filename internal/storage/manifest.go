package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the data directory's root pointer: a small JSON document
// naming every finished segment (in spill order per shard) plus the on-disk
// format version and the shard count the directory was created with.
// Recovery trusts only manifest-listed segments — an open segment at crash
// time has no footer and is deleted, its blocks re-derived from the WAL.
//
// Updates are atomic: write to a temp file, fsync, rename over
// MANIFEST.json, fsync the directory. A crash leaves either the old or the
// new manifest, never a torn one.
//
// Format versioning rule (recorded in ROADMAP.md as the contract for future
// PRs): a reader refuses a manifest whose format is NEWER than it knows
// (fail loudly rather than misread), and must migrate OLDER formats forward
// explicitly when the format ever changes.
const (
	manifestName   = "MANIFEST.json"
	manifestFormat = 1
)

// ErrFormatTooNew reports a data directory written by a newer binary.
var ErrFormatTooNew = errors.New("storage: data directory format is newer than this binary")

type manifestSegment struct {
	File  string `json:"file"`
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
}

type manifest struct {
	Format   int               `json:"format"`
	Shards   int               `json:"shards"`
	Segments []manifestSegment `json:"segments"`
}

// loadManifest reads dir's manifest; ok is false when none exists (a fresh
// directory).
func loadManifest(dir string) (manifest, bool, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, false, nil
	}
	if err != nil {
		return m, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, fmt.Errorf("storage: %s: %w", manifestName, err)
	}
	if m.Format > manifestFormat {
		return m, false, fmt.Errorf("%w: format %d, this binary reads ≤ %d", ErrFormatTooNew, m.Format, manifestFormat)
	}
	if m.Format < 1 || m.Shards < 1 {
		return m, false, fmt.Errorf("storage: %s: implausible format %d / shards %d", manifestName, m.Format, m.Shards)
	}
	return m, true, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: filesystems that refuse directory fsync (overlayfs in some CI
// containers) still performed the rename atomically, which is the property
// recovery depends on.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
