package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest is the data directory's root pointer: a small JSON document
// naming every finished segment (in spill order per shard) plus the on-disk
// format version, the shard count the directory was created with, and the
// current WAL generation (bumped whenever a degraded-mode heal rotates the
// logs — see health.go). Recovery trusts only manifest-listed segments — an
// open segment at crash time has no footer and is deleted, its blocks
// re-derived from the WAL — and only WAL generations the manifest has
// activated: generation files above wal_gen were created by a heal that
// crashed before its manifest barrier landed and are deleted unread.
//
// Updates are atomic: write to a temp file, fsync, rename over
// MANIFEST.json, fsync the directory. A crash leaves either the old or the
// new manifest, never a torn one; a *failed* write additionally removes its
// temp file so a degraded directory does not accumulate half-written
// manifests.
//
// Format versioning rule (recorded in ROADMAP.md as the contract for future
// PRs): a reader refuses a manifest whose format is NEWER than it knows
// (fail loudly rather than misread), and must migrate OLDER formats forward
// explicitly when the format ever changes.
//
// Format history:
//
//	1: format, shards, segments (PR 5)
//	2: adds wal_gen — per-directory WAL generation for degraded-mode log
//	   rotation. Logs are named shard-NNNN.wal (generation 0, the format-1
//	   layout) or shard-NNNN-GGGGGG.wal (generation ≥ 1); replay walks a
//	   shard's generations in order. A format-1 directory migrates forward
//	   as wal_gen 0; format-1 readers must refuse format-2 directories,
//	   which is exactly what the rule above makes them do.
//	3: declares that shard logs may hold sequenced record types 't'/'b'
//	   (exactly-once ingest, PR 9). No manifest field changes; the bump
//	   exists so a format-2 binary refuses the directory loudly instead of
//	   reporting the unknown record types as WAL corruption. Formats 1 and 2
//	   migrate forward without rewriting any log.
const (
	manifestName   = "MANIFEST.json"
	manifestFormat = 3
)

// ErrFormatTooNew reports a data directory written by a newer binary.
var ErrFormatTooNew = errors.New("storage: data directory format is newer than this binary")

type manifestSegment struct {
	File  string `json:"file"`
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
}

type manifest struct {
	Format   int               `json:"format"`
	Shards   int               `json:"shards"`
	WALGen   uint64            `json:"wal_gen,omitempty"`
	Segments []manifestSegment `json:"segments"`
}

// loadManifest reads dir's manifest; ok is false when none exists (a fresh
// directory). An older format is migrated forward in memory and reported via
// migrated so the caller persists the rewrite.
func loadManifest(fsys FS, dir string) (m manifest, ok, migrated bool, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, false, false, nil
	}
	if err != nil {
		return m, false, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false, false, fmt.Errorf("storage: %s: %w", manifestName, err)
	}
	if m.Format > manifestFormat {
		return m, false, false, fmt.Errorf("%w: format %d, this binary reads ≤ %d", ErrFormatTooNew, m.Format, manifestFormat)
	}
	if m.Format < 1 || m.Shards < 1 {
		return m, false, false, fmt.Errorf("storage: %s: implausible format %d / shards %d", manifestName, m.Format, m.Shards)
	}
	if m.Format < manifestFormat {
		if m.Format == 1 {
			// Format 1 predates WAL generations: all of its logs are
			// generation 0 whatever a stray field claims.
			m.WALGen = 0
		}
		// 2 → 3 changes no fields: format 3 only licenses the sequenced WAL
		// record types, and a pre-sequencing log is a valid sequenced log
		// with every high-water mark at 0.
		m.Format = manifestFormat
		migrated = true
	}
	return m, true, migrated, nil
}

// writeManifest atomically replaces dir's manifest. On any failure the temp
// file is removed (best effort): the previous manifest stays in place and
// loadable, and no half-written temp survives to confuse an operator or a
// later retry.
func writeManifest(fsys FS, dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}
