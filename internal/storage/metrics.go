package storage

import (
	"symmeter/internal/metrics"
)

// engineMetrics is the engine's registry-backed telemetry. Like the server's
// serviceMetrics, an engine always owns one (private registry when Options
// carries none), so the WAL hot path records unconditionally — no telemetry
// branch, and the latency recorders stay lock-free and zero-alloc.
type engineMetrics struct {
	reg *metrics.Registry

	// walAppendLat times one framed record write into the shard log;
	// fsyncLat times each covering fsync (per-batch under SyncAlways, per
	// dirty shard per tick under SyncGroup).
	walAppendLat *metrics.Latency
	fsyncLat     *metrics.Latency
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		reg: reg,
		walAppendLat: reg.Latency("symmeter_wal_append_seconds",
			"WAL record write latency (frame + CRC + write(2)), per batch or table."),
		fsyncLat: reg.Latency("symmeter_wal_fsync_seconds",
			"WAL fsync latency (per batch under SyncAlways, per group tick otherwise)."),
	}
}

// registerHealthMetrics exposes the health state machine and its fault
// counters as gauge/counter functions reading the same atomics Health()
// snapshots. Called once from Open, after the engine is assembled.
func (e *Engine) registerHealthMetrics() {
	reg := e.met.reg
	h := &e.health
	reg.GaugeFunc("symmeter_storage_health_state",
		"Engine health state: 0 healthy, 1 degraded (queries only), 2 recovering.",
		func() float64 { return float64(h.state.Load()) })
	reg.GaugeFunc("symmeter_storage_spill_disabled",
		"1 while sealed blocks stay heap-resident because segment writes fail, else 0.",
		func() float64 {
			if h.spillDisabled.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("symmeter_storage_wal_gen",
		"Current WAL generation (0 = original logs; bumps on each heal rotation).",
		func() float64 { return float64(e.walGen.Load()) })
	reg.CounterFunc("symmeter_storage_wal_write_failures_total",
		"WAL write failures (each degrades the engine).",
		func() float64 { return float64(h.walWriteFailures.Load()) })
	reg.CounterFunc("symmeter_storage_fsync_failures_total",
		"WAL fsync failures (each degrades the engine; the covering tail is poisoned).",
		func() float64 { return float64(h.fsyncFailures.Load()) })
	reg.CounterFunc("symmeter_storage_spill_fallbacks_total",
		"Sealed blocks kept heap-resident instead of spilled to a segment.",
		func() float64 { return float64(h.spillFallbacks.Load()) })
	reg.CounterFunc("symmeter_storage_manifest_retries_total",
		"Manifest writes that needed a retry.",
		func() float64 { return float64(h.manifestRetries.Load()) })
	reg.CounterFunc("symmeter_storage_manifest_failures_total",
		"Manifest writes that exhausted their retries (degrades the engine).",
		func() float64 { return float64(h.manifestFailures.Load()) })
	reg.CounterFunc("symmeter_storage_probes_total",
		"Background directory probes attempted while degraded or spill-disabled.",
		func() float64 { return float64(h.probes.Load()) })
	reg.CounterFunc("symmeter_storage_heals_total",
		"Degraded-to-healthy round trips completed (WAL generation rotations).",
		func() float64 { return float64(h.heals.Load()) })
}

// Metrics returns the engine's registry — the one Options.Metrics supplied,
// or the private one created in its absence.
func (e *Engine) Metrics() *metrics.Registry { return e.met.reg }
