// Sequenced-ingest durability tests: the engine's SequencedIngest
// implementation must make the per-meter high-water mark exactly as durable
// as the batches it covers — recovery restores it from the replayed WAL, a
// duplicate seq never commits twice (even across a crash), and a gap is a
// loud refusal rather than a silent reorder. External test package for the
// same reason as chaos_test.go.
package storage_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symmeter/internal/server"
	"symmeter/internal/storage"
)

// TestSequencedAppendRecoversHighWaterMark: sequenced commits survive a
// crash byte-identically AND the high-water mark comes back with them, while
// a legacy (unsequenced) meter in the same directory recovers with mark 0.
func TestSequencedAppendRecoversHighWaterMark(t *testing.T) {
	dir := t.TempDir()
	table := chaosTable(t)
	eng := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)

	if err := eng.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if dup, err := eng.PushTableSeq(1, 1, table); dup || err != nil {
		t.Fatalf("PushTableSeq: dup=%v err=%v", dup, err)
	}
	for idx := 0; idx < 3; idx++ {
		n, dup, err := eng.AppendSeq(1, uint64(2+idx), chaosBatch(1, idx, table))
		if err != nil || dup || n != 96 {
			t.Fatalf("AppendSeq idx %d: n=%d dup=%v err=%v", idx, n, dup, err)
		}
	}
	if got := eng.LastSeq(1); got != 4 {
		t.Fatalf("live LastSeq: %d, want 4", got)
	}
	startMeters(t, eng, table, []uint64{2}) // legacy meter, no seqs
	if _, err := eng.Append(2, chaosBatch(2, 0, table)); err != nil {
		t.Fatal(err)
	}
	eng.Abandon() // crash shape

	re := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	defer re.Close()
	if got := re.LastSeq(1); got != 4 {
		t.Fatalf("recovered LastSeq(1): %d, want 4", got)
	}
	if got := re.LastSeq(2); got != 0 {
		t.Fatalf("recovered LastSeq(2): %d, want 0 for a legacy meter", got)
	}
	requireStoresEqual(t, re.Store(),
		buildOracle(t, table, []uint64{1, 2}, map[uint64][]int{1: {0, 1, 2}, 2: {0}}),
		[]uint64{1, 2})
}

// TestSequencedDuplicateSuppressed: a retransmitted seq is acked as a
// duplicate without committing — live, and again after a crash when the
// client's retry races recovery's restored mark.
func TestSequencedDuplicateSuppressed(t *testing.T) {
	dir := t.TempDir()
	table := chaosTable(t)
	eng := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)

	if err := eng.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PushTableSeq(1, 1, table); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.AppendSeq(1, 2, chaosBatch(1, 0, table)); err != nil {
		t.Fatal(err)
	}
	// Retransmit both the table push and the batch.
	if dup, err := eng.PushTableSeq(1, 1, table); !dup || err != nil {
		t.Fatalf("dup PushTableSeq: dup=%v err=%v", dup, err)
	}
	n, dup, err := eng.AppendSeq(1, 2, chaosBatch(1, 0, table))
	if !dup || n != 0 || err != nil {
		t.Fatalf("dup AppendSeq: n=%d dup=%v err=%v", n, dup, err)
	}
	if got := eng.LastSeq(1); got != 2 {
		t.Fatalf("LastSeq after dups: %d, want 2", got)
	}
	eng.Abandon()

	re := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	defer re.Close()
	if err := re.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if n, dup, err := re.AppendSeq(1, 2, chaosBatch(1, 0, table)); !dup || n != 0 || err != nil {
		t.Fatalf("post-recovery dup AppendSeq: n=%d dup=%v err=%v", n, dup, err)
	}
	// Exactly one copy of the batch, despite three sends across two lives.
	requireStoresEqual(t, re.Store(),
		buildOracle(t, table, []uint64{1}, map[uint64][]int{1: {0}}), []uint64{1})
}

// TestSequencedGapRefused: a seq that skips ahead is refused with ErrSeqGap,
// commits nothing, and leaves the session able to continue at the correct
// next seq.
func TestSequencedGapRefused(t *testing.T) {
	dir := t.TempDir()
	table := chaosTable(t)
	eng := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	defer eng.Close()

	if err := eng.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PushTableSeq(1, 1, table); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.AppendSeq(1, 5, chaosBatch(1, 0, table)); !errors.Is(err, server.ErrSeqGap) {
		t.Fatalf("gap AppendSeq: got %v, want ErrSeqGap", err)
	}
	if _, err := eng.PushTableSeq(1, 9, table); !errors.Is(err, server.ErrSeqGap) {
		t.Fatalf("gap PushTableSeq: got %v, want ErrSeqGap", err)
	}
	if got := eng.LastSeq(1); got != 1 {
		t.Fatalf("LastSeq after gaps: %d, want 1", got)
	}
	if n, dup, err := eng.AppendSeq(1, 2, chaosBatch(1, 0, table)); err != nil || dup || n != 96 {
		t.Fatalf("AppendSeq after gap refusals: n=%d dup=%v err=%v", n, dup, err)
	}
	requireStoresEqual(t, eng.Store(),
		buildOracle(t, table, []uint64{1}, map[uint64][]int{1: {0}}), []uint64{1})
}

// TestFormat2ManifestMigrates: a format-2 directory (WAL generations, no
// sequencing) opens cleanly, keeps its wal_gen, and is rewritten forward to
// format 3 on the spot.
func TestFormat2ManifestMigrates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"),
		[]byte(`{"format": 2, "shards": 4, "wal_gen": 2, "segments": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	table := chaosTable(t)
	eng := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	if gen := eng.Health().WALGen; gen != 2 {
		t.Fatalf("WALGen after migration: %d, want the format-2 manifest's 2", gen)
	}
	if err := eng.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PushTableSeq(1, 1, table); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.AppendSeq(1, 2, chaosBatch(1, 0, table)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"format": 3`) {
		t.Fatalf("manifest not migrated to format 3:\n%s", raw)
	}
	if !strings.Contains(string(raw), `"wal_gen": 2`) {
		t.Fatalf("migration lost wal_gen:\n%s", raw)
	}
	re := chaosOpen(t, dir, nil, storage.SyncOff, time.Hour)
	defer re.Close()
	if got := re.LastSeq(1); got != 2 {
		t.Fatalf("recovered LastSeq at generation 2: %d, want 2", got)
	}
	requireStoresEqual(t, re.Store(),
		buildOracle(t, table, []uint64{1}, map[uint64][]int{1: {0}}), []uint64{1})
}
