package storage

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// buildWALFixture produces one shard's log bytes through the real engine:
// two meters, a table epoch change half-way, gaps, and enough batches for
// several records — the corpus every torn-write and fuzz case mutates.
func buildWALFixture(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	table := testTable(t)
	eng, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncOff, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	meters := []uint64{1, 2}
	for _, m := range meters {
		if err := eng.StartSession(m); err != nil {
			t.Fatal(err)
		}
		if err := eng.PushTable(m, table); err != nil {
			t.Fatal(err)
		}
	}
	for idx := 0; idx < 8; idx++ {
		if idx == 5 {
			if err := eng.PushTable(1, table); err != nil { // epoch change
				t.Fatal(err)
			}
		}
		for _, m := range meters {
			if _, err := eng.Append(m, genBatch(m, idx, table)); err != nil {
				t.Fatal(err)
			}
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "wal", "shard-0000.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return raw
}

// walDir materializes a single-shard data directory holding exactly the
// given log bytes (fresh manifest, no segments).
func walDir(t testing.TB, walBytes []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := writeManifest(OsFS{}, dir, manifest{Format: manifestFormat, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "seg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal", "shard-0000.wal"), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// applyRecords replays the first upto parsed records into a fresh in-memory
// store — the oracle for what recovery of that prefix must reproduce.
func applyRecords(t testing.TB, recs []walRecord, upto int) *server.Store {
	t.Helper()
	st := server.NewStore(1)
	var pts []symbolic.SymbolPoint
	var syms []symbolic.Symbol
	seen := map[uint64]bool{}
	ensure := func(m uint64) {
		if !seen[m] {
			if err := st.StartSession(m); err != nil {
				t.Fatal(err)
			}
			st.EndSession(m)
			seen[m] = true
		}
	}
	for _, rec := range recs[:upto] {
		switch rec.typ {
		case recTable:
			m, tbl, err := decodeTable(rec.data)
			if err != nil {
				t.Fatal(err)
			}
			ensure(m)
			if err := st.PushTable(m, tbl); err != nil {
				t.Fatal(err)
			}
		case recBatch:
			br, p, s, err := decodeBatch(rec.data, pts, syms)
			pts, syms = p, s
			if err != nil {
				t.Fatal(err)
			}
			ensure(br.meterID)
			if _, err := st.Append(br.meterID, br.pts); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

// sameAggregates reports whether two stores agree bit-exactly on full-range
// per-meter aggregates and histograms.
func sameAggregates(t testing.TB, got, want *server.Store) bool {
	t.Helper()
	if got.TotalSymbols() != want.TotalSymbols() {
		return false
	}
	ge, we := query.New(got), query.New(want)
	ids := want.Meters()
	for _, m := range ids {
		ga, _ := ge.Aggregate(m, 0, math.MaxInt64)
		wa, _ := we.Aggregate(m, 0, math.MaxInt64)
		if ga.Count != wa.Count ||
			math.Float64bits(ga.Sum) != math.Float64bits(wa.Sum) ||
			math.Float64bits(ga.Min) != math.Float64bits(wa.Min) ||
			math.Float64bits(ga.Max) != math.Float64bits(wa.Max) {
			return false
		}
		var gh, wh query.Histogram
		if _, err := ge.HistogramInto(&gh, m, 0, math.MaxInt64); err != nil {
			return false
		}
		if _, err := we.HistogramInto(&wh, m, 0, math.MaxInt64); err != nil {
			return false
		}
		if len(gh.Counts) != len(wh.Counts) {
			return false
		}
		for s := range gh.Counts {
			if gh.Counts[s] != wh.Counts[s] {
				return false
			}
		}
	}
	return true
}

// TestTruncatedWALRecoversPrefix is the torn-write corpus: the log cut at
// every interesting byte position must recover exactly the records that
// survived whole — never an error, never a point more or less.
func TestTruncatedWALRecoversPrefix(t *testing.T) {
	raw := buildWALFixture(t)
	recs, valid, torn, err := parseWAL(raw)
	if err != nil || torn || valid != int64(len(raw)) {
		t.Fatalf("fixture must parse clean: %v torn=%v valid=%d/%d", err, torn, valid, len(raw))
	}
	cuts := []int{0, 1, walHeaderLen - 1, walHeaderLen, walHeaderLen + 1}
	for _, rec := range recs {
		cuts = append(cuts, int(rec.end)-1, int(rec.end), int(rec.end)+5)
	}
	for _, cut := range cuts {
		if cut < 0 || cut > len(raw) {
			continue
		}
		dir := walDir(t, raw[:cut])
		eng, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncOff})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wantP := 0
		for _, rec := range recs {
			if rec.end <= int64(cut) {
				wantP++
			}
		}
		want := applyRecords(t, recs, wantP)
		if !sameAggregates(t, eng.Store(), want) {
			t.Fatalf("cut=%d: recovered state does not match the %d-record prefix", cut, wantP)
		}
		// The torn tail must also be truncated away so new appends start at
		// a record boundary.
		if st, err := os.Stat(filepath.Join(dir, "wal", "shard-0000.wal")); err != nil {
			t.Fatal(err)
		} else if wantEnd := recordEnd(recs, wantP); st.Size() != wantEnd {
			t.Fatalf("cut=%d: wal truncated to %d, want %d", cut, st.Size(), wantEnd)
		}
		eng.Close()
	}
}

func recordEnd(recs []walRecord, p int) int64 {
	if p == 0 {
		return 0
	}
	return recs[p-1].end
}

// TestCorruptWALFailsLoudly flips one byte in every region of a mid-log
// record — length, its complement, CRC, type, payload — and requires
// recovery to refuse with ErrWALCorrupt instead of silently dropping the
// intact, acknowledged records behind the damage. (Damage in the *final*
// record is the torn-tail case — see TestDamagedFinalRecordIsTornTail.)
func TestCorruptWALFailsLoudly(t *testing.T) {
	raw := buildWALFixture(t)
	recs, _, _, err := parseWAL(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Byte offsets inside the third record (well before EOF): header fields
	// and a payload byte.
	start := int(recs[1].end)
	probes := []int{start, start + 4, start + 8, start + walHeaderLen, start + walHeaderLen + 9}
	for _, pos := range probes {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		dir := walDir(t, mut)
		if _, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncOff}); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("flip at %d: Open returned %v, want ErrWALCorrupt", pos, err)
		}
	}
}

// FuzzWALReplay mutates (truncate + single byte-flip) the fixture log and
// asserts the recovery contract: either recovery fails loudly, or the
// recovered state is bit-exactly some record prefix of the original log that
// includes every record lying wholly before the first damaged byte. Silently
// dropping acknowledged records that sit before the damage — or fabricating
// state — fails the fuzz.
func FuzzWALReplay(f *testing.F) {
	raw := buildWALFixture(f)
	recs, _, _, err := parseWAL(raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), byte(0), uint32(0))
	f.Add(uint32(13), byte(0x80), uint32(0))
	f.Add(uint32(5), byte(0), uint32(100))
	f.Add(uint32(len(raw)-3), byte(0xFF), uint32(0))
	f.Add(uint32(40), byte(1), uint32(uint(len(raw)-1)))
	f.Fuzz(func(t *testing.T, pos uint32, xor byte, trunc uint32) {
		mut := append([]byte(nil), raw...)
		damagedFrom := int64(len(mut)) + 1 // "no damage" sentinel: past EOF
		if trunc != 0 && int(trunc) < len(mut) {
			mut = mut[:trunc]
			damagedFrom = int64(trunc)
		}
		if xor != 0 && len(mut) > 0 {
			p := int(pos) % len(mut)
			mut[p] ^= xor
			if int64(p) < damagedFrom {
				damagedFrom = int64(p)
			}
		}
		dir := walDir(t, mut)
		eng, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncOff})
		if err != nil {
			return // loud failure is always acceptable under corruption
		}
		defer eng.Close()
		// Recovery succeeded: the state must equal SOME prefix of the
		// original records…
		match := -1
		for p := len(recs); p >= 0; p-- {
			if sameAggregates(t, eng.Store(), applyRecords(t, recs, p)) {
				match = p
				break
			}
		}
		if match < 0 {
			t.Fatalf("recovered state matches no prefix of the original log (pos=%d xor=%#x trunc=%d)", pos, xor, trunc)
		}
		// …and that prefix must cover every record wholly before the damage:
		// those were acknowledged and readable, dropping them is data loss.
		mustHave := 0
		for _, rec := range recs {
			if rec.end <= damagedFrom {
				mustHave++
			}
		}
		if match < mustHave {
			t.Fatalf("recovery kept %d records but %d lie wholly before the damage at %d (pos=%d xor=%#x trunc=%d)",
				match, mustHave, damagedFrom, pos, xor, trunc)
		}
	})
}

// TestDamagedFinalRecordIsTornTail pins the OS-crash story: damage confined
// to the log's final record — complete-looking header over a hole-punched
// body, flipped CRC, zeroed pages — has no readable record behind it, so
// recovery must treat it as a torn tail and restore the prefix rather than
// refuse the directory (an fsync=group crash window must not brick the
// store).
func TestDamagedFinalRecordIsTornTail(t *testing.T) {
	raw := buildWALFixture(t)
	recs, _, _, err := parseWAL(raw)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	lastStart := int(recordEnd(recs, len(recs)-1))
	mutations := map[string]func([]byte){
		"crc flipped":    func(b []byte) { b[lastStart+9] ^= 0xFF },
		"body bit flip":  func(b []byte) { b[int(last.end)-3] ^= 0x10 },
		"header torn":    func(b []byte) { b[lastStart+5] ^= 0x01 },
		"body zero page": func(b []byte) { clear(b[lastStart+walHeaderLen+2 : int(last.end)-1]) },
	}
	for name, mutate := range mutations {
		mut := append([]byte(nil), raw...)
		mutate(mut)
		dir := walDir(t, mut)
		eng, err := Open(Options{Dir: dir, Shards: 1, Sync: SyncOff})
		if err != nil {
			t.Fatalf("%s: final-record damage must recover as a torn tail, got %v", name, err)
		}
		want := applyRecords(t, recs, len(recs)-1)
		if !sameAggregates(t, eng.Store(), want) {
			t.Fatalf("%s: recovered state is not the all-but-last prefix", name)
		}
		if st, err := os.Stat(filepath.Join(dir, "wal", "shard-0000.wal")); err != nil {
			t.Fatal(err)
		} else if st.Size() != int64(lastStart) {
			t.Fatalf("%s: wal truncated to %d, want %d", name, st.Size(), lastStart)
		}
		eng.Close()
	}
}

// TestCorruptSegmentPayloadFailsLoudly pins the segment payload CRC: a
// flipped bit in a finished segment's data region must fail recovery
// loudly, never silently skew edge-window kernel results.
func TestCorruptSegmentPayloadFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	table := testTable(t)
	eng := openTest(t, dir, SyncOff)
	applyBatches(t, eng, table, testMeters[:1], 20)
	if err := eng.Close(); err != nil { // finish segments into the manifest
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no finished segments (err %v)", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+5] ^= 0x04 // inside the first block's payload
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Shards: 4, Sync: SyncOff}); err == nil ||
		!strings.Contains(err.Error(), "payload CRC") {
		t.Fatalf("corrupt segment payload: got %v, want a payload CRC failure", err)
	}
}
