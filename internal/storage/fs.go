package storage

import (
	"fmt"
	"io"
	"os"
)

// The filesystem seam.
//
// Every byte the engine persists — WAL records, segment payloads, manifest
// replacements, probe files — moves through the FS interface below, so a
// test can interpose a deterministic fault injector (internal/faultfs) and
// script exactly which write fails with which error, while production runs
// on the operating system with zero indirection cost: *os.File satisfies
// File structurally (no wrapper object, no extra allocation — an interface
// holding a pointer), and osFS methods are thin one-line delegations the
// compiler sees through. The AllocsPerRun pin in the storage tests and the
// benchdiff gate in CI both hold the seam to that bargain.

// File is the subset of *os.File the storage engine writes through.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS abstracts the filesystem operations the engine performs against its
// data directory. The zero-cost production implementation is OsFS; tests
// substitute internal/faultfs to script failures per operation.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Stat stats a path.
	Stat(name string) (os.FileInfo, error)
	// Rename atomically replaces newpath with oldpath (same directory).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate truncates the named file.
	Truncate(name string, size int64) error
	// Mmap maps length bytes of f read-only and shared (or reads them into
	// the heap on platforms without mmap); Munmap releases such a mapping.
	Mmap(f File, length int) ([]byte, error)
	Munmap(b []byte) error
	// SyncDir fsyncs a directory so a just-renamed entry survives power
	// loss. Best-effort on filesystems that refuse directory fsync.
	SyncDir(dir string) error
}

// OsFS is the production FS: direct delegation to the os package. Every
// method is a thin wrapper and OpenFile returns the *os.File itself (it
// satisfies File structurally), so the seam costs nothing on the hot path.
type OsFS struct{}

func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OsFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OsFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OsFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OsFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OsFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (OsFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OsFS) Remove(name string) error                     { return os.Remove(name) }
func (OsFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// Mmap requires the real *os.File underneath (the fd is what the kernel
// maps); an FS that wraps files must unwrap before delegating here.
func (OsFS) Mmap(f File, length int) ([]byte, error) {
	of, ok := f.(*os.File)
	if !ok {
		return nil, fmt.Errorf("storage: OsFS.Mmap needs an *os.File, got %T", f)
	}
	return mmapFile(of, length)
}

func (OsFS) Munmap(b []byte) error { return munmapFile(b) }

// SyncDir fsyncs dir. Best-effort on the sync itself: filesystems that
// refuse directory fsync (overlayfs in some CI containers) still performed
// the rename atomically, which is the property recovery depends on.
func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
