// Package benchref preserves the bit-at-a-time symbol codec that the
// word-at-a-time kernel in internal/symbolic replaced. It exists for two
// reasons: differential testing (the two implementations must produce
// byte-identical output for every input) and benchmarking (BenchmarkPack /
// BenchmarkUnpack and cmd/bench report the new kernel's speedup against
// this baseline, so the perf trajectory stays measurable instead of
// disappearing with the old code).
//
// It intentionally mirrors the original implementation — one shift-and-test
// per bit — and must not be "optimised".
package benchref

import (
	"errors"
	"fmt"

	"symmeter/internal/symbolic"
)

const magic = 'S'

const maxPackCount = 1<<24 - 1

// Pack is the original bit-at-a-time packer.
func Pack(symbols []symbolic.Symbol) ([]byte, error) {
	if len(symbols) > maxPackCount {
		return nil, fmt.Errorf("benchref: cannot pack %d symbols (max %d)", len(symbols), maxPackCount)
	}
	level := 0
	if len(symbols) > 0 {
		level = symbols[0].Level()
	}
	if level == 0 && len(symbols) > 0 {
		return nil, errors.New("benchref: cannot pack level-0 symbols")
	}
	for i, s := range symbols {
		if s.Level() != level {
			return nil, fmt.Errorf("benchref: mixed levels: symbol %d has level %d, want %d", i, s.Level(), level)
		}
	}
	payloadBits := len(symbols) * level
	out := make([]byte, 5+(payloadBits+7)/8)
	out[0] = magic
	out[1] = byte(level)
	out[2] = byte(len(symbols) >> 16)
	out[3] = byte(len(symbols) >> 8)
	out[4] = byte(len(symbols))
	bitPos := 0
	payload := out[5:]
	for _, s := range symbols {
		idx := uint32(s.Index())
		for b := level - 1; b >= 0; b-- {
			if idx>>uint(b)&1 == 1 {
				payload[bitPos/8] |= 1 << uint(7-bitPos%8)
			}
			bitPos++
		}
	}
	return out, nil
}

// Unpack is the original bit-at-a-time unpacker.
func Unpack(data []byte) ([]symbolic.Symbol, error) {
	if len(data) < 5 {
		return nil, errors.New("benchref: packed data too short")
	}
	if data[0] != magic {
		return nil, fmt.Errorf("benchref: bad magic byte %#x", data[0])
	}
	level := int(data[1])
	count := int(data[2])<<16 | int(data[3])<<8 | int(data[4])
	if count == 0 {
		return []symbolic.Symbol{}, nil
	}
	if level < 1 || level > symbolic.MaxLevel {
		return nil, fmt.Errorf("benchref: bad level %d", level)
	}
	need := 5 + (count*level+7)/8
	if len(data) < need {
		return nil, fmt.Errorf("benchref: truncated payload: have %d bytes, need %d", len(data), need)
	}
	payload := data[5:]
	out := make([]symbolic.Symbol, count)
	bitPos := 0
	for i := 0; i < count; i++ {
		idx := 0
		for b := 0; b < level; b++ {
			idx <<= 1
			if payload[bitPos/8]>>uint(7-bitPos%8)&1 == 1 {
				idx |= 1
			}
			bitPos++
		}
		out[i] = symbolic.NewSymbol(idx, level)
	}
	return out, nil
}
