package benchref

import (
	"fmt"

	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// Decode-then-aggregate baselines for the compressed-domain query engine.
// This is what aggregation looked like before internal/query existed — and
// what it costs in any store that materializes points: reconstruct a meter's
// full stream (Snapshot), then loop over the float points filtering by time.
// cmd/bench and bench_test.go report the query engine's speedup against
// these, so the "never materialize" claim stays a measured number instead of
// prose.

// BaselineFleetSum sums reconstruction values over [t0, t1) across every
// meter by full reconstruction.
func BaselineFleetSum(st *server.Store, t0, t1 int64) (float64, uint64) {
	var sum float64
	var count uint64
	for _, id := range st.Meters() {
		snap, ok := st.Snapshot(id)
		if !ok {
			continue
		}
		for _, p := range snap.Points {
			if p.T >= t0 && p.T < t1 {
				sum += p.V
				count++
			}
		}
	}
	return sum, count
}

// BaselineFleetHistogram counts symbols over [t0, t1) across every meter by
// full reconstruction. All meters must share the level that sizes hist.
func BaselineFleetHistogram(st *server.Store, hist []uint64, t0, t1 int64) []uint64 {
	clear(hist)
	for _, id := range st.Meters() {
		snap, ok := st.Snapshot(id)
		if !ok {
			continue
		}
		for _, p := range snap.Points {
			if p.T >= t0 && p.T < t1 {
				hist[p.S.Index()]++
			}
		}
	}
	return hist
}

// Query-benchmark workload parameters, shared by cmd/bench and the repo's
// bench_test.go for the same reason the bench bodies are: the CI artifact
// and `go test -bench` must measure the identical workload.
const (
	// QueryFixtureMeters is the fleet size of the query fixture.
	QueryFixtureMeters = 32
	// QueryFixturePoints is symbols per meter: 4 weeks of 15-minute windows.
	QueryFixturePoints = 4 * 7 * 96
)

// QueryWindow returns the single-meter benchmark range that cuts inside
// blocks on both ends, and the number of points it covers: indices
// 100..QueryFixturePoints-100 inclusive.
func QueryWindow() (t0, t1 int64, points int) {
	return 100 * 900, int64(QueryFixturePoints-100)*900 + 450, QueryFixturePoints - 199
}

// MakeQueryStore builds the query-benchmark fixture: `meters` meters, each
// with `points` stored symbols at k=16 (the paper's headline alphabet),
// 15-minute windows, streamed through Store.Append in 96-symbol batches
// exactly as live sessions commit them.
func MakeQueryStore(meters, points int) (*server.Store, error) {
	table, err := StoreTable()
	if err != nil {
		return nil, err
	}
	st := server.NewStore(16)
	level := table.Level()
	k := table.K()
	for m := 1; m <= meters; m++ {
		id := uint64(m)
		if err := st.StartSession(id); err != nil {
			return nil, err
		}
		if err := st.PushTable(id, table); err != nil {
			return nil, err
		}
		if err := st.Reserve(id, points); err != nil {
			return nil, err
		}
		var ts int64
		for sent := 0; sent < points; {
			batch := 96
			if batch > points-sent {
				batch = points - sent
			}
			pts := make([]symbolic.SymbolPoint, batch)
			for i := range pts {
				pts[i] = symbolic.SymbolPoint{T: ts, S: symbolic.NewSymbol((m*7+int(ts/900)*11)%k, level)}
				ts += 900
			}
			if _, err := st.Append(id, pts); err != nil {
				return nil, err
			}
			sent += batch
		}
		st.EndSession(id)
	}
	return st, nil
}

// StoreTable learns the small k=16 table shared by the store and query
// benchmarks (exported so cmd/bench measures the identical fixture).
func StoreTable() (*symbolic.Table, error) {
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i * 7919 % 4000)
	}
	return symbolic.Learn(symbolic.MethodMedian, vals, 16)
}

// SanityCheckQueryFixture verifies the fixture holds what the benchmarks
// assume (meters × points symbols, all at level 4).
func SanityCheckQueryFixture(st *server.Store, meters, points int) error {
	if got, want := st.TotalSymbols(), meters*points; got != want {
		return fmt.Errorf("benchref: fixture has %d symbols, want %d", got, want)
	}
	return nil
}
