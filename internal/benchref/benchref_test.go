package benchref

import (
	"bytes"
	"math/rand"
	"testing"

	"symmeter/internal/symbolic"
)

// TestDifferential checks the word-at-a-time kernel against this package's
// bit-at-a-time original: byte-identical packed output and identical
// round-trips for random sequences at every level.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for level := 1; level <= symbolic.MaxLevel; level++ {
		for _, count := range []int{0, 1, 2, 7, 8, 9, 95, 96, 97, 1000} {
			syms := make([]symbolic.Symbol, count)
			for i := range syms {
				syms[i] = symbolic.NewSymbol(rng.Intn(1<<uint(level)), level)
			}
			want, err := Pack(syms)
			if err != nil {
				t.Fatal(err)
			}
			got, err := symbolic.Pack(syms)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("level %d count %d: packed bytes diverge:\nword    %x\nbitwise %x", level, count, got, want)
			}
			back, err := symbolic.Unpack(want)
			if err != nil {
				t.Fatal(err)
			}
			refBack, err := Unpack(got)
			if err != nil {
				t.Fatal(err)
			}
			for i := range syms {
				if back[i] != syms[i] || refBack[i] != syms[i] {
					t.Fatalf("level %d count %d: round trip diverges at %d", level, count, i)
				}
			}
		}
	}
}
