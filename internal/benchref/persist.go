package benchref

import (
	"testing"
	"time"

	"symmeter/internal/storage"
	"symmeter/internal/symbolic"
)

// Persistence benchmark bodies, shared by cmd/bench (BENCH_5.json) and
// bench_test.go exactly like the in-memory ones: ingest latency with the
// WAL in front of the store, recovery throughput from segments vs pure WAL
// replay, and cold queries over mmap-backed spilled blocks.

// MakePersistStore builds the query fixture of MakeQueryStore through a
// durable engine rooted at dir, so every sealed block is spilled and every
// batch logged. The caller owns Close.
func MakePersistStore(dir string, meters, points int, mode storage.SyncMode) (*storage.Engine, error) {
	table, err := StoreTable()
	if err != nil {
		return nil, err
	}
	eng, err := storage.Open(storage.Options{Dir: dir, Shards: 16, Sync: mode})
	if err != nil {
		return nil, err
	}
	level := table.Level()
	k := table.K()
	for m := 1; m <= meters; m++ {
		id := uint64(m)
		if err := eng.StartSession(id); err != nil {
			return nil, err
		}
		if err := eng.PushTable(id, table); err != nil {
			return nil, err
		}
		if err := eng.Reserve(id, points); err != nil {
			return nil, err
		}
		var ts int64
		pts := make([]symbolic.SymbolPoint, 96)
		for sent := 0; sent < points; {
			batch := 96
			if batch > points-sent {
				batch = points - sent
			}
			bp := pts[:batch]
			for i := range bp {
				bp[i] = symbolic.SymbolPoint{T: ts, S: symbolic.NewSymbol((m*7+int(ts/900)*11)%k, level)}
				ts += 900
			}
			if _, err := eng.Append(id, bp); err != nil {
				return nil, err
			}
			sent += batch
		}
		eng.EndSession(id)
	}
	return eng, nil
}

// BenchPersistAppend measures committing one decoded batch through the full
// durable path — WAL framing + write(2) + packed-store commit — the durable
// twin of BenchStoreAppend. The engine is recycled off-timer per slab so the
// WAL on disk stays bounded for any b.N.
func BenchPersistAppend(b *testing.B, mode storage.SyncMode) {
	table, err := StoreTable()
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]symbolic.SymbolPoint, 96)
	const slab = 1 << 13
	newEngine := func() *storage.Engine {
		eng, err := storage.Open(storage.Options{Dir: b.TempDir(), Shards: 16, Sync: mode})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.StartSession(1); err != nil {
			b.Fatal(err)
		}
		if err := eng.PushTable(1, table); err != nil {
			b.Fatal(err)
		}
		if err := eng.Reserve(1, slab*len(pts)); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	eng := newEngine()
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%slab == 0 {
			b.StopTimer()
			eng.Close()
			eng = newEngine()
			next = 0
			b.StartTimer()
		}
		for j := range pts {
			pts[j].T = (next + int64(j)) * 900
			pts[j].S = table.Encode(float64((int(next) + j) * 11 % 4000))
		}
		next += int64(len(pts))
		if _, err := eng.Append(1, pts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	eng.Close()
	reportSymbols(b, len(pts))
}

// BenchPersistIngestLatency measures per-Append latency on one hot meter
// through the WAL (the durable counterpart of BenchIngestLatency) and
// reports p50/p99.
func BenchPersistIngestLatency(b *testing.B, mode storage.SyncMode) {
	table, err := StoreTable()
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]symbolic.SymbolPoint, 96)
	const slab = 1 << 13
	mk := func() *storage.Engine {
		eng, err := storage.Open(storage.Options{Dir: b.TempDir(), Shards: 16, Sync: mode})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.StartSession(1); err != nil {
			b.Fatal(err)
		}
		if err := eng.PushTable(1, table); err != nil {
			b.Fatal(err)
		}
		if err := eng.Reserve(1, slab*len(pts)); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	eng := mk()
	var ts int64
	lat := make([]int64, 0, min(maxLatencySamples, 1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%slab == 0 {
			b.StopTimer()
			eng.Close()
			eng = mk()
			ts = 0
			b.StartTimer()
		}
		for j := range pts {
			pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j * 11 % 4000))}
			ts += 900
		}
		start := time.Now()
		if _, err := eng.Append(1, pts); err != nil {
			b.Fatal(err)
		}
		d := int64(time.Since(start))
		if len(lat) < maxLatencySamples {
			lat = append(lat, d)
		} else {
			lat[i%maxLatencySamples] = d
		}
	}
	b.StopTimer()
	eng.Close()
	b.ReportMetric(percentile(lat, 0.50), "p50-ns")
	b.ReportMetric(percentile(lat, 0.99), "p99-ns")
	reportSymbols(b, len(pts))
}

// PrepareRecoveryDir ingests the query fixture into dir and leaves it in
// one of the two recovery shapes: flushed (finished segments + manifest —
// the clean-shutdown path, sealed data restores from footers) or crashed
// (abandoned unflushed — everything replays from the WAL). Returns the
// stored point count.
func PrepareRecoveryDir(dir string, meters, points int, flush bool) (int, error) {
	eng, err := MakePersistStore(dir, meters, points, storage.SyncOff)
	if err != nil {
		return 0, err
	}
	total := eng.Store().TotalSymbols()
	if flush {
		if err := eng.Close(); err != nil {
			return 0, err
		}
	} else {
		eng.Abandon()
	}
	return total, nil
}

// BenchRecovery measures storage.Open — the full rebuild of a queryable
// store from disk — in points/sec. Every iteration prepares a fresh
// directory off-timer (recovery of a crash-shaped directory respills
// segments, so the directory cannot be reused) and times only Open.
func BenchRecovery(b *testing.B, meters, points int, flush bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		total, err := PrepareRecoveryDir(dir, meters, points, flush)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		eng, err := storage.Open(storage.Options{Dir: dir, Shards: 16, Sync: storage.SyncOff})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := eng.Store().TotalSymbols(); got != total {
			b.Fatalf("recovered %d points, want %d", got, total)
		}
		eng.Abandon()
		b.StartTimer()
	}
	reportSymbols(b, meters*points)
}
