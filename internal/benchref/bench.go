package benchref

import (
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// Shared hot-path benchmark bodies, used by both the repo's top-level
// bench_test.go and cmd/bench: BENCH_2.json and `go test -bench` measure
// the exact same code, so they cannot drift apart.

// reportSymbols attaches the throughput metric every hot-path benchmark
// reports.
func reportSymbols(b *testing.B, perOp int) {
	b.ReportMetric(float64(perOp)*float64(b.N)/b.Elapsed().Seconds(), "sym/s")
}

// BenchPackWord measures the allocating word-at-a-time Pack.
func BenchPackWord(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.Pack(syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchPackAppend measures AppendPack into a reused buffer (the
// zero-allocation sensor path).
func BenchPackAppend(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	var buf []byte
	var err error
	for i := 0; i < b.N; i++ {
		if buf, err = symbolic.AppendPack(buf[:0], syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchPackBitwise measures the preserved bit-at-a-time baseline packer.
func BenchPackBitwise(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchUnpackWord measures the allocating word-at-a-time Unpack of a frame
// holding perOp symbols.
func BenchUnpackWord(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchUnpackInto measures UnpackInto into a reused buffer (the
// zero-allocation decoder path).
func BenchUnpackInto(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	var out []symbolic.Symbol
	var err error
	for i := 0; i < b.N; i++ {
		if out, err = symbolic.UnpackInto(out, data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchUnpackBitwise measures the preserved bit-at-a-time baseline unpacker.
func BenchUnpackBitwise(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchStoreAppend measures committing one decoded batch into the sharded
// packed block store with capacity reserved — the pure validate + bit-pack +
// summary-update path. Timestamps advance monotonically across batches like
// a live meter's, so blocks fill to capacity instead of sealing per batch.
// One store holds `slab` batches and is recycled off-timer, so the
// benchmark's resident memory stays bounded for any b.N.
func BenchStoreAppend(b *testing.B, table *symbolic.Table, pts []symbolic.SymbolPoint) {
	const slab = 1 << 14
	newStore := func() *server.Store {
		st := server.NewStore(16)
		if err := st.StartSession(1); err != nil {
			b.Fatal(err)
		}
		if err := st.PushTable(1, table); err != nil {
			b.Fatal(err)
		}
		if err := st.Reserve(1, slab*len(pts)); err != nil {
			b.Fatal(err)
		}
		return st
	}
	st := newStore()
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%slab == 0 {
			b.StopTimer()
			st = newStore()
			next = 0
			b.StartTimer()
		}
		for j := range pts {
			pts[j].T = (next + int64(j)) * 900
		}
		next += int64(len(pts))
		if _, err := st.Append(1, pts); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(pts))
}

// --- Compressed-domain query benchmarks ----------------------------------

// BenchQueryFleetSum measures a fleet-wide sum over the full time range
// through the compressed-domain engine: block summaries only, one goroutine
// per shard. perOp should be the store's total symbol count.
func BenchQueryFleetSum(b *testing.B, e *query.Engine, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, count := e.FleetSum(0, 1<<60)
		if count == 0 || sum == 0 {
			b.Fatal("empty fleet sum")
		}
	}
	reportSymbols(b, perOp)
}

// BenchBaselineFleetSum measures the same query decode-then-aggregate:
// reconstruct every meter's stream, then loop the floats.
func BenchBaselineFleetSum(b *testing.B, st *server.Store, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, count := BaselineFleetSum(st, 0, 1<<60)
		if count == 0 || sum == 0 {
			b.Fatal("empty baseline sum")
		}
	}
	reportSymbols(b, perOp)
}

// BenchQueryFleetHistogram measures a fleet-wide symbol histogram through
// the engine (stored per-block histograms, parallel shards).
func BenchQueryFleetHistogram(b *testing.B, e *query.Engine, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := e.FleetHistogram(0, 1<<60)
		if err != nil {
			b.Fatal(err)
		}
		if h.Total() == 0 {
			b.Fatal("empty fleet histogram")
		}
	}
	reportSymbols(b, perOp)
}

// BenchBaselineFleetHistogram is its decode-then-aggregate counterpart.
func BenchBaselineFleetHistogram(b *testing.B, st *server.Store, k, perOp int) {
	hist := make([]uint64, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BaselineFleetHistogram(st, hist, 0, 1<<60)
		var n uint64
		for _, c := range hist {
			n += c
		}
		if n == 0 {
			b.Fatal("empty baseline histogram")
		}
	}
	reportSymbols(b, perOp)
}

// BenchQueryMeterWindow measures a single-meter aggregate over a range that
// cuts inside blocks on both ends — the per-byte LUT edge-kernel path plus
// summaries in between. perOp is the number of points the range covers.
func BenchQueryMeterWindow(b *testing.B, e *query.Engine, meterID uint64, t0, t1 int64, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, ok := e.Aggregate(meterID, t0, t1)
		if !ok || a.Count == 0 {
			b.Fatal("empty window aggregate")
		}
	}
	reportSymbols(b, perOp)
}

// --- Mixed ingest + query workload ----------------------------------------

// IngestBaseT is the first timestamp background ingest writes at: far above
// the query fixture's range, so a fixture-range fleet query has constant
// work (the live meters cost one directory probe and a lock-free tail skip
// each) no matter how much the writers have committed — which is what makes
// worker counts comparable within one benchmark run.
const IngestBaseT = int64(1) << 40

// StartBackgroundIngest launches one writer goroutine per live meter (IDs
// above the query fixture's), each streaming regular 96-point batches into
// the store as fast as the scheduler allows — a continuous stream of tail
// mutations, seals and index publications for the query side to race
// against. The returned stop function halts the writers and reports the
// total points they committed.
func StartBackgroundIngest(b *testing.B, st *server.Store, meters int) (stop func() int64) {
	table, err := StoreTable()
	if err != nil {
		b.Fatal(err)
	}
	level := table.Level()
	k := table.K()
	done := make(chan struct{})
	var wg sync.WaitGroup
	var committed atomic.Int64
	for i := 0; i < meters; i++ {
		id := uint64(10_000 + i)
		if err := st.StartSession(id); err != nil {
			b.Fatal(err)
		}
		if err := st.PushTable(id, table); err != nil {
			b.Fatal(err)
		}
		// Resume the regular stride from the meter's high-water mark: a
		// caller (testing.Benchmark auto-scaling) may start ingest on the
		// same store repeatedly, and replaying IngestBaseT would seal an
		// out-of-order block, flip the chain to unordered and defeat the
		// directory pruning the constant-work premise rests on.
		start := IngestBaseT
		if m, ok := st.Meter(id); ok {
			start += int64(m.TotalSymbols()) * 900
		}
		wg.Add(1)
		go func(id uint64, ts int64) {
			defer wg.Done()
			pts := make([]symbolic.SymbolPoint, 96)
			for {
				select {
				case <-done:
					return
				default:
				}
				for j := range pts {
					pts[j] = symbolic.SymbolPoint{T: ts, S: symbolic.NewSymbol(int(ts/900)%k, level)}
					ts += 900
				}
				if _, err := st.Append(id, pts); err != nil {
					return // benchmark teardown races are not failures
				}
				committed.Add(96)
			}
		}(id, start)
	}
	return func() int64 {
		close(done)
		wg.Wait()
		for i := 0; i < meters; i++ {
			st.EndSession(uint64(10_000 + i))
		}
		return committed.Load()
	}
}

// BenchMixedFleetAggregate measures fleet-aggregate throughput over the
// fixture's time range at the given worker-pool bound while background
// ingest keeps mutating live tails above that range. The query's work is
// constant (the live meters are skipped lock-free via their published
// directories), so the measured quantity is pure read-side scaling under
// write pressure. perOp is the fixture's exact point count.
func BenchMixedFleetAggregate(b *testing.B, e *query.Engine, workers, perOp int) {
	e.SetWorkers(workers)
	t1 := int64(QueryFixturePoints) * 900 // fixture points live at 0, 900, …
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := e.FleetAggregate(0, t1)
		if a.Count != uint64(perOp) {
			b.Fatalf("fleet aggregate saw %d fixture points, want %d", a.Count, perOp)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	reportSymbols(b, perOp)
}

// maxLatencySamples bounds the latency buffer of BenchIngestLatency: past
// it, samples wrap (the percentile is then over the most recent window).
const maxLatencySamples = 1 << 20

// BenchIngestLatency measures per-Append latency on one hot meter and
// reports its p50/p99, optionally while `readers` goroutines run continuous
// fleet aggregates and full Snapshots (the "slow reader" of the PR-3 era).
// With the lock-free read path, the with-readers p99 must sit on top of the
// solo p99 instead of inheriting the readers' scan time — reads hold the
// shard lock only for single-block tail folds.
func BenchIngestLatency(b *testing.B, readers int) {
	st := server.NewStore(16)
	table, err := StoreTable()
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]symbolic.SymbolPoint, 96)
	if err := st.StartSession(1); err != nil {
		b.Fatal(err)
	}
	if err := st.PushTable(1, table); err != nil {
		b.Fatal(err)
	}
	if err := st.Reserve(1, (1<<14)*len(pts)); err != nil {
		b.Fatal(err)
	}
	// Pre-load some sealed history so reader scans have real work.
	var ts int64
	for i := 0; i < 64; i++ {
		for j := range pts {
			pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j * 11 % 4000))}
			ts += 900
		}
		if _, err := st.Append(1, pts); err != nil {
			b.Fatal(err)
		}
	}
	// live tracks the store the measured appends currently go to (it is
	// recycled off-timer to bound memory for any b.N); the readers follow it
	// so they always contend with the measured Append on the same shards.
	var live atomic.Pointer[server.Store]
	live.Store(st)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				cur := live.Load()
				query.New(cur).FleetAggregate(0, 1<<60)
				cur.Snapshot(1) // full reconstruction: the deliberately slow reader
			}
		}()
	}
	cur := st
	lat := make([]int64, 0, min(maxLatencySamples, 1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%(1<<14) == 0 && i > 0 {
			b.StopTimer()
			ts = 0
			cur = server.NewStore(16)
			if err := cur.StartSession(1); err != nil {
				b.Fatal(err)
			}
			if err := cur.PushTable(1, table); err != nil {
				b.Fatal(err)
			}
			if err := cur.Reserve(1, (1<<14)*len(pts)); err != nil {
				b.Fatal(err)
			}
			// Give the fresh store a sealed block so reader scans have work.
			for j := range pts {
				pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j))}
				ts += 900
			}
			if _, err := cur.Append(1, pts); err != nil {
				b.Fatal(err)
			}
			live.Store(cur)
			b.StartTimer()
		}
		for j := range pts {
			pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j * 11 % 4000))}
			ts += 900
		}
		start := time.Now()
		if _, err := cur.Append(1, pts); err != nil {
			b.Fatal(err)
		}
		d := int64(time.Since(start))
		if len(lat) < maxLatencySamples {
			lat = append(lat, d)
		} else {
			lat[i%maxLatencySamples] = d
		}
	}
	b.StopTimer()
	close(done)
	wg.Wait()
	b.ReportMetric(percentile(lat, 0.50), "p50-ns")
	b.ReportMetric(percentile(lat, 0.99), "p99-ns")
	reportSymbols(b, len(pts))
}

// percentile returns the q-quantile (0..1) of the samples in ns.
func percentile(lat []int64, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]int64(nil), lat...)
	slices.Sort(s)
	i := int(q * float64(len(s)-1))
	return float64(s[i])
}
