package benchref

import (
	"testing"

	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// Shared hot-path benchmark bodies, used by both the repo's top-level
// bench_test.go and cmd/bench: BENCH_2.json and `go test -bench` measure
// the exact same code, so they cannot drift apart.

// reportSymbols attaches the throughput metric every hot-path benchmark
// reports.
func reportSymbols(b *testing.B, perOp int) {
	b.ReportMetric(float64(perOp)*float64(b.N)/b.Elapsed().Seconds(), "sym/s")
}

// BenchPackWord measures the allocating word-at-a-time Pack.
func BenchPackWord(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.Pack(syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchPackAppend measures AppendPack into a reused buffer (the
// zero-allocation sensor path).
func BenchPackAppend(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	var buf []byte
	var err error
	for i := 0; i < b.N; i++ {
		if buf, err = symbolic.AppendPack(buf[:0], syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchPackBitwise measures the preserved bit-at-a-time baseline packer.
func BenchPackBitwise(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchUnpackWord measures the allocating word-at-a-time Unpack of a frame
// holding perOp symbols.
func BenchUnpackWord(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchUnpackInto measures UnpackInto into a reused buffer (the
// zero-allocation decoder path).
func BenchUnpackInto(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	var out []symbolic.Symbol
	var err error
	for i := 0; i < b.N; i++ {
		if out, err = symbolic.UnpackInto(out, data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchUnpackBitwise measures the preserved bit-at-a-time baseline unpacker.
func BenchUnpackBitwise(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchStoreAppend measures committing one decoded batch into the sharded
// packed block store with capacity reserved — the pure validate + bit-pack +
// summary-update path. Timestamps advance monotonically across batches like
// a live meter's, so blocks fill to capacity instead of sealing per batch.
// One store holds `slab` batches and is recycled off-timer, so the
// benchmark's resident memory stays bounded for any b.N.
func BenchStoreAppend(b *testing.B, table *symbolic.Table, pts []symbolic.SymbolPoint) {
	const slab = 1 << 14
	newStore := func() *server.Store {
		st := server.NewStore(16)
		if err := st.StartSession(1); err != nil {
			b.Fatal(err)
		}
		if err := st.PushTable(1, table); err != nil {
			b.Fatal(err)
		}
		if err := st.Reserve(1, slab*len(pts)); err != nil {
			b.Fatal(err)
		}
		return st
	}
	st := newStore()
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%slab == 0 {
			b.StopTimer()
			st = newStore()
			next = 0
			b.StartTimer()
		}
		for j := range pts {
			pts[j].T = (next + int64(j)) * 900
		}
		next += int64(len(pts))
		if _, err := st.Append(1, pts); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(pts))
}

// --- Compressed-domain query benchmarks ----------------------------------

// BenchQueryFleetSum measures a fleet-wide sum over the full time range
// through the compressed-domain engine: block summaries only, one goroutine
// per shard. perOp should be the store's total symbol count.
func BenchQueryFleetSum(b *testing.B, e *query.Engine, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, count := e.FleetSum(0, 1<<60)
		if count == 0 || sum == 0 {
			b.Fatal("empty fleet sum")
		}
	}
	reportSymbols(b, perOp)
}

// BenchBaselineFleetSum measures the same query decode-then-aggregate:
// reconstruct every meter's stream, then loop the floats.
func BenchBaselineFleetSum(b *testing.B, st *server.Store, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum, count := BaselineFleetSum(st, 0, 1<<60)
		if count == 0 || sum == 0 {
			b.Fatal("empty baseline sum")
		}
	}
	reportSymbols(b, perOp)
}

// BenchQueryFleetHistogram measures a fleet-wide symbol histogram through
// the engine (stored per-block histograms, parallel shards).
func BenchQueryFleetHistogram(b *testing.B, e *query.Engine, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := e.FleetHistogram(0, 1<<60)
		if err != nil {
			b.Fatal(err)
		}
		if h.Total() == 0 {
			b.Fatal("empty fleet histogram")
		}
	}
	reportSymbols(b, perOp)
}

// BenchBaselineFleetHistogram is its decode-then-aggregate counterpart.
func BenchBaselineFleetHistogram(b *testing.B, st *server.Store, k, perOp int) {
	hist := make([]uint64, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BaselineFleetHistogram(st, hist, 0, 1<<60)
		var n uint64
		for _, c := range hist {
			n += c
		}
		if n == 0 {
			b.Fatal("empty baseline histogram")
		}
	}
	reportSymbols(b, perOp)
}

// BenchQueryMeterWindow measures a single-meter aggregate over a range that
// cuts inside blocks on both ends — the per-byte LUT edge-kernel path plus
// summaries in between. perOp is the number of points the range covers.
func BenchQueryMeterWindow(b *testing.B, e *query.Engine, meterID uint64, t0, t1 int64, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, ok := e.Aggregate(meterID, t0, t1)
		if !ok || a.Count == 0 {
			b.Fatal("empty window aggregate")
		}
	}
	reportSymbols(b, perOp)
}
