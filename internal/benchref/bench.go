package benchref

import (
	"testing"

	"symmeter/internal/server"
	"symmeter/internal/symbolic"
)

// Shared hot-path benchmark bodies, used by both the repo's top-level
// bench_test.go and cmd/bench: BENCH_2.json and `go test -bench` measure
// the exact same code, so they cannot drift apart.

// reportSymbols attaches the throughput metric every hot-path benchmark
// reports.
func reportSymbols(b *testing.B, perOp int) {
	b.ReportMetric(float64(perOp)*float64(b.N)/b.Elapsed().Seconds(), "sym/s")
}

// BenchPackWord measures the allocating word-at-a-time Pack.
func BenchPackWord(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.Pack(syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchPackAppend measures AppendPack into a reused buffer (the
// zero-allocation sensor path).
func BenchPackAppend(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	var buf []byte
	var err error
	for i := 0; i < b.N; i++ {
		if buf, err = symbolic.AppendPack(buf[:0], syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchPackBitwise measures the preserved bit-at-a-time baseline packer.
func BenchPackBitwise(b *testing.B, syms []symbolic.Symbol) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(syms); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(syms))
}

// BenchUnpackWord measures the allocating word-at-a-time Unpack of a frame
// holding perOp symbols.
func BenchUnpackWord(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := symbolic.Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchUnpackInto measures UnpackInto into a reused buffer (the
// zero-allocation decoder path).
func BenchUnpackInto(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	var out []symbolic.Symbol
	var err error
	for i := 0; i < b.N; i++ {
		if out, err = symbolic.UnpackInto(out, data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchUnpackBitwise measures the preserved bit-at-a-time baseline unpacker.
func BenchUnpackBitwise(b *testing.B, data []byte, perOp int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(data); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, perOp)
}

// BenchStoreAppend measures committing one decoded batch into the sharded
// store with capacity reserved — the pure validate + reconstruct + commit
// path. One store holds `slab` batches and is recycled off-timer, so the
// benchmark's resident memory stays bounded for any b.N.
func BenchStoreAppend(b *testing.B, table *symbolic.Table, pts []symbolic.SymbolPoint) {
	const slab = 1 << 14
	newStore := func() *server.Store {
		st := server.NewStore(16)
		if err := st.StartSession(1); err != nil {
			b.Fatal(err)
		}
		if err := st.PushTable(1, table); err != nil {
			b.Fatal(err)
		}
		if err := st.Reserve(1, slab*len(pts)); err != nil {
			b.Fatal(err)
		}
		return st
	}
	st := newStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%slab == 0 {
			b.StopTimer()
			st = newStore()
			b.StartTimer()
		}
		if _, err := st.Append(1, pts); err != nil {
			b.Fatal(err)
		}
	}
	reportSymbols(b, len(pts))
}
