package benchref

import (
	"math/rand"
	"testing"

	"symmeter/internal/symbolic"
)

// Kernel-family fixture and benchmark bodies: the raw packed-symbol kernels
// measured in isolation, big enough that the SIMD tiers run at full stride
// (the fleet-query fixtures are summary-dominated and barely touch payload
// bytes, so the dispatch-path speedup is demonstrated here). cmd/bench runs
// each body twice — once on the best available dispatch path, once forced
// scalar via symbolic.SetKernelPath — and records the ratio.

// KernelFixtureSymbols is the level-4 symbol count of the kernel fixture:
// 128 sealed blocks' worth, 32 KiB of payload.
const KernelFixtureSymbols = 128 * 512

// KernelFixture builds the level-4 kernel fixture: a packed payload of
// KernelFixtureSymbols random symbols, the same symbols as a slice (for the
// codec kernels), block-sized spans with ragged edges (for the batch fold),
// and a reconstruction-value table.
func KernelFixture() (payload []byte, syms []symbolic.Symbol, spans []symbolic.PackedSpan, values []float64) {
	rng := rand.New(rand.NewSource(17))
	n := KernelFixtureSymbols
	payload = make([]byte, n/2)
	syms = make([]symbolic.Symbol, n)
	for i := range syms {
		idx := uint32(rng.Intn(16))
		symbolic.PackSymbolAt(payload, 4, i, idx)
		syms[i] = symbolic.NewSymbol(int(idx), 4)
	}
	for start := 0; start < n; start += 512 {
		end := start + 512
		if end > n {
			end = n
		}
		// Ragged edges exercise the odd-offset handling the query engine's
		// partially-covered blocks hit.
		spans = append(spans, symbolic.PackedSpan{Payload: payload, Start: start + 1, End: end - 1})
	}
	values = make([]float64, 16)
	for i := range values {
		values[i] = rng.Float64() * 1000
	}
	return payload, syms, spans, values
}

// BenchKernelHist measures PackedRangeHistogram over the whole fixture
// payload with unaligned ends.
func BenchKernelHist(b *testing.B, payload []byte, perOp int) {
	b.ReportAllocs()
	var hist [16]uint64
	for i := 0; i < b.N; i++ {
		clear(hist[:])
		symbolic.PackedRangeHistogram(hist[:], payload, 4, 1, perOp-1)
	}
	reportSymbols(b, perOp)
}

// BenchKernelSum measures the batched sum fold the query engine runs per
// meter: one histogram over all spans, one float aggregate derived from it.
func BenchKernelSum(b *testing.B, spans []symbolic.PackedSpan, values []float64, perOp int) {
	b.ReportAllocs()
	var hist [16]uint64
	for i := 0; i < b.N; i++ {
		clear(hist[:])
		symbolic.PackedRangeHistogramBatch(hist[:], 4, spans)
		if c, _, _, _ := symbolic.HistogramAggregate(hist[:], values); c == 0 {
			b.Fatal("empty fold")
		}
	}
	reportSymbols(b, perOp)
}

// KernelBenchmarks returns the kernel-family benchmark bodies keyed by name,
// so cmd/bench and the repo's bench_test.go measure identical code.
func KernelBenchmarks() map[string]func(b *testing.B) {
	payload, syms, spans, values := KernelFixture()
	packed, err := symbolic.Pack(syms)
	if err != nil {
		panic(err)
	}
	n := KernelFixtureSymbols
	return map[string]func(b *testing.B){
		"hist":   func(b *testing.B) { BenchKernelHist(b, payload, n) },
		"sum":    func(b *testing.B) { BenchKernelSum(b, spans, values, n) },
		"unpack": func(b *testing.B) { BenchUnpackInto(b, packed, n) },
		"pack":   func(b *testing.B) { BenchPackAppend(b, syms) },
	}
}
