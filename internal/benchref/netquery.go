package benchref

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"symmeter/internal/query"
	"symmeter/internal/server"
	"symmeter/internal/symbolic"
	"symmeter/internal/transport"
	"symmeter/pkg/client"
)

// --- Remote query benchmarks ----------------------------------------------
//
// These price the wire: the same aggregates the in-process engine answers,
// asked through pkg/client over loopback TCP on one reused connection. The
// quantities that matter are the wire-over-in-process latency ratio (pure
// protocol + socket overhead, since both sides run the identical engine) and
// hot-meter ingest tail latency while net-query readers run — the remote
// continuation of the lock-free-reads story.

// StartNetQuery serves st's query engine on an ephemeral loopback port and
// returns the dial address plus a stop function. It reports plain errors
// instead of taking a testing.TB so cmd/bench can drive it outside the
// testing harness.
func StartNetQuery(st *server.Store) (addr string, stop func(), err error) {
	svc := server.New(server.Config{Store: st})
	svc.SetQueryHandler(query.New(st))
	a, err := svc.ListenQuery("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	return a.String(), func() { svc.Close() }, nil
}

// swapEngine is a server.QueryHandler that forwards to whichever engine was
// last published: the ingest-latency bench recycles its store off-timer to
// bound memory, and the serving side must follow the swap without restarting
// the listener or its client connections.
type swapEngine struct {
	p atomic.Pointer[query.Engine]
}

func (h *swapEngine) ServeQuery(req transport.QueryRequest, res *transport.QueryResult) error {
	return h.p.Load().ServeQuery(req, res)
}

// BenchNetFleetSum measures a fleet-wide sum through the full wire path —
// request encode, TCP round trip, server-side dispatch and execute, response
// decode — against the engine served at addr. perOp is the store's total
// symbol count, so sym/s is comparable with query/fleet-sum.
func BenchNetFleetSum(b *testing.B, addr string, perOp int) {
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, count, err := c.FleetSum(0, 1<<60)
		if err != nil {
			b.Fatal(err)
		}
		if count == 0 || sum == 0 {
			b.Fatal("empty fleet sum")
		}
	}
	reportSymbols(b, perOp)
}

// BenchNetMeterWindow measures a single-meter window aggregate over the wire
// — the smallest-payload query, so round-trip overhead dominates and the
// number is an honest worst case for the protocol.
func BenchNetMeterWindow(b *testing.B, addr string, meterID uint64, t0, t1 int64, perOp int) {
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := c.Aggregate(meterID, t0, t1)
		if err != nil {
			b.Fatal(err)
		}
		if a.Count == 0 {
			b.Fatal("empty window aggregate")
		}
	}
	reportSymbols(b, perOp)
}

// BenchNetWindowLatency samples per-call latency of a single-meter window
// aggregate over the wire and reports p50/p99 — the numerator of the
// wire-over-in-process ratio the report prints.
func BenchNetWindowLatency(b *testing.B, addr string, meterID uint64, t0, t1 int64, perOp int) {
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	lat := make([]int64, 0, min(maxLatencySamples, 1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		a, err := c.Aggregate(meterID, t0, t1)
		if err != nil {
			b.Fatal(err)
		}
		if a.Count == 0 {
			b.Fatal("empty window aggregate")
		}
		d := int64(time.Since(start))
		if len(lat) < maxLatencySamples {
			lat = append(lat, d)
		} else {
			lat[i%maxLatencySamples] = d
		}
	}
	b.StopTimer()
	b.ReportMetric(percentile(lat, 0.50), "p50-ns")
	b.ReportMetric(percentile(lat, 0.99), "p99-ns")
	reportSymbols(b, perOp)
}

// BenchInprocWindowLatency is the in-process twin of BenchNetWindowLatency:
// the same aggregate on the same store without the socket, the denominator
// of the wire-overhead ratio.
func BenchInprocWindowLatency(b *testing.B, e *query.Engine, meterID uint64, t0, t1 int64, perOp int) {
	lat := make([]int64, 0, min(maxLatencySamples, 1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		a, ok := e.Aggregate(meterID, t0, t1)
		if !ok || a.Count == 0 {
			b.Fatal("empty window aggregate")
		}
		d := int64(time.Since(start))
		if len(lat) < maxLatencySamples {
			lat = append(lat, d)
		} else {
			lat[i%maxLatencySamples] = d
		}
	}
	b.StopTimer()
	b.ReportMetric(percentile(lat, 0.50), "p50-ns")
	b.ReportMetric(percentile(lat, 0.99), "p99-ns")
	reportSymbols(b, perOp)
}

// BenchIngestLatencyNet is BenchIngestLatency with the slow readers moved to
// the other side of a socket: `readers` pkg/client connections run continuous
// fleet aggregates over TCP against the live store while the hot meter's
// Append latency is sampled. The acceptance story: net-query readers go
// through the same lock-free engine as in-process ones, so the ingest p50
// must sit where the in-memory solo p50 sits.
func BenchIngestLatencyNet(b *testing.B, readers int) {
	st := server.NewStore(16)
	table, err := StoreTable()
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]symbolic.SymbolPoint, 96)
	if err := st.StartSession(1); err != nil {
		b.Fatal(err)
	}
	if err := st.PushTable(1, table); err != nil {
		b.Fatal(err)
	}
	if err := st.Reserve(1, (1<<14)*len(pts)); err != nil {
		b.Fatal(err)
	}
	// Pre-load sealed history so the readers' fleet scans have real work.
	var ts int64
	for i := 0; i < 64; i++ {
		for j := range pts {
			pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j * 11 % 4000))}
			ts += 900
		}
		if _, err := st.Append(1, pts); err != nil {
			b.Fatal(err)
		}
	}
	handler := &swapEngine{}
	handler.p.Store(query.New(st))
	svc := server.New(server.Config{Store: st})
	svc.SetQueryHandler(handler)
	a, err := svc.ListenQuery("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		c, err := client.Dial(a.String())
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			defer c.Close()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := c.FleetAggregate(0, 1<<60); err != nil {
					return // benchmark teardown races are not failures
				}
			}
		}(c)
	}

	cur := st
	lat := make([]int64, 0, min(maxLatencySamples, 1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%(1<<14) == 0 && i > 0 {
			b.StopTimer()
			ts = 0
			cur = server.NewStore(16)
			if err := cur.StartSession(1); err != nil {
				b.Fatal(err)
			}
			if err := cur.PushTable(1, table); err != nil {
				b.Fatal(err)
			}
			if err := cur.Reserve(1, (1<<14)*len(pts)); err != nil {
				b.Fatal(err)
			}
			// Give the fresh store a sealed block so reader scans have work.
			for j := range pts {
				pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j))}
				ts += 900
			}
			if _, err := cur.Append(1, pts); err != nil {
				b.Fatal(err)
			}
			// Publish the fresh store to the serving side: the wire readers
			// follow the swap mid-connection.
			handler.p.Store(query.New(cur))
			b.StartTimer()
		}
		for j := range pts {
			pts[j] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(j * 11 % 4000))}
			ts += 900
		}
		start := time.Now()
		if _, err := cur.Append(1, pts); err != nil {
			b.Fatal(err)
		}
		d := int64(time.Since(start))
		if len(lat) < maxLatencySamples {
			lat = append(lat, d)
		} else {
			lat[i%maxLatencySamples] = d
		}
	}
	b.StopTimer()
	close(done)
	wg.Wait()
	b.ReportMetric(percentile(lat, 0.50), "p50-ns")
	b.ReportMetric(percentile(lat, 0.99), "p99-ns")
	reportSymbols(b, len(pts))
}
