package server

import (
	"testing"

	"symmeter/internal/symbolic"
)

// TestCollectRangeMatchesVisitRange pins CollectRange against VisitRange:
// same sealed blocks (as a set keyed by FirstT), the tail delivered through
// the callback exactly when the range reaches it, and identical lock
// accounting — zero shard locks for a sealed-only range, exactly one for a
// tail-touching one.
func TestCollectRangeMatchesVisitRange(t *testing.T) {
	s := NewStore(2)
	table := testTable(t)
	const w = 900
	seedRegular(t, s, table, 1, 4*BlockCap+100, w) // 4 sealed blocks + live tail
	m, _ := s.Meter(1)
	tailT, ok := m.LiveTailStart()
	if !ok {
		t.Fatal("no live tail")
	}

	for _, tc := range []struct {
		name     string
		t0, t1   int64
		wantTail bool
	}{
		{"sealed-only", 0, tailT, false},
		{"tail-touching", 0, tailT + 1, true},
		{"interior", int64(BlockCap+5) * w, int64(3*BlockCap-5) * w, false},
		{"tail-only", tailT, 1 << 40, true},
		{"before-stream", -1000, -1, false},
	} {
		var wantSealed []BlockView
		wantTailN := -1
		m.VisitRange(tc.t0, tc.t1, func(v BlockView) {
			if v.FirstT >= tailT {
				wantTailN = v.N
				return
			}
			wantSealed = append(wantSealed, v)
		})

		before := s.QueryLockAcquisitions()
		gotTailN := -1
		views := m.CollectRange(tc.t0, tc.t1, nil, func(v BlockView) { gotTailN = v.N })
		locks := s.QueryLockAcquisitions() - before

		if (wantTailN >= 0) != tc.wantTail {
			t.Fatalf("%s: oracle tail expectation inconsistent (VisitRange tail N=%d)", tc.name, wantTailN)
		}
		if gotTailN != wantTailN {
			t.Fatalf("%s: tail callback N = %d, VisitRange saw %d", tc.name, gotTailN, wantTailN)
		}
		if len(views) != len(wantSealed) {
			t.Fatalf("%s: CollectRange returned %d sealed views, VisitRange %d", tc.name, len(views), len(wantSealed))
		}
		byFirstT := map[int64]BlockView{}
		for _, v := range wantSealed {
			byFirstT[v.FirstT] = v
		}
		for _, v := range views {
			want, ok := byFirstT[v.FirstT]
			if !ok {
				t.Fatalf("%s: CollectRange returned unexpected block FirstT=%d", tc.name, v.FirstT)
			}
			if v.N != want.N || v.Level != want.Level || v.Sum != want.Sum || &v.Payload[0] != &want.Payload[0] {
				t.Fatalf("%s: view FirstT=%d differs between CollectRange and VisitRange", tc.name, v.FirstT)
			}
		}
		wantLocks := int64(0)
		if tc.wantTail {
			wantLocks = 1
		}
		if locks != wantLocks {
			t.Fatalf("%s: CollectRange took %d locks, want %d", tc.name, locks, wantLocks)
		}
	}

	// Empty and inverted ranges return dst unchanged without locking.
	dst := make([]BlockView, 3, 8)
	before := s.QueryLockAcquisitions()
	if got := m.CollectRange(5, 5, dst, func(BlockView) { t.Fatal("tail callback on empty range") }); len(got) != 3 {
		t.Fatalf("empty range grew dst to %d views", len(got))
	}
	if got := m.CollectRange(10, 5, dst, func(BlockView) { t.Fatal("tail callback on inverted range") }); len(got) != 3 {
		t.Fatalf("inverted range grew dst to %d views", len(got))
	}
	if got := s.QueryLockAcquisitions() - before; got != 0 {
		t.Fatalf("degenerate ranges took %d locks", got)
	}
}

// TestCollectRangeViewsRetainable pins the retention contract: sealed views
// collected before further ingest keep reading the same bytes after the
// store has sealed more blocks, grown its index and changed table epochs.
func TestCollectRangeViewsRetainable(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	const w = 900
	seedRegular(t, s, table, 1, 2*BlockCap+10, w)
	m, _ := s.Meter(1)
	tailT, _ := m.LiveTailStart()

	views := m.CollectRange(0, tailT, nil, func(BlockView) {})
	if len(views) != 2 {
		t.Fatalf("collected %d sealed views, want 2", len(views))
	}
	histBefore := make([][]uint64, len(views))
	for i, v := range views {
		histBefore[i] = make([]uint64, 1<<uint(v.Level))
		symbolic.PackedRangeHistogram(histBefore[i], v.Payload, v.Level, 0, v.N)
	}

	// Push the stream through several more seals and a table epoch change.
	seedRegular(t, s, table, 1, 3*BlockCap, w) // continues via new session
	if got := m.SealedBlocks(); got < 5 {
		t.Fatalf("sealed blocks after second seed = %d, want >= 5", got)
	}

	for i, v := range views {
		hist := make([]uint64, 1<<uint(v.Level))
		symbolic.PackedRangeHistogram(hist, v.Payload, v.Level, 0, v.N)
		for sym := range hist {
			if hist[sym] != histBefore[i][sym] {
				t.Fatalf("retained view %d: hist[%d] changed %d -> %d after further ingest", i, sym, histBefore[i][sym], hist[sym])
			}
		}
	}
}
