package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"symmeter/internal/transport"
)

// runQuerySession drives one accepted query connection: a stream of 'Q'
// frames, each answered with exactly one 'R' or 'X' frame carrying the
// request's id. It returns nil for an orderly end — an 'E' frame or a clean
// EOF between frames (query clients, unlike sensors, may simply close).
//
// Concurrency model: a fixed pool of s.queryConc workers pulls requests
// from an unbuffered channel. The read loop's blocking send is the
// backpressure — a client pipelining more than the bound stops being read
// (and eventually stops being able to write, courtesy of TCP), so one
// connection can never fan out unbounded work against the store. Each
// worker owns a reusable result struct and encode buffer, so the
// steady-state request→execute→respond path allocates nothing; responses
// are serialized by a write mutex and may interleave across requests in
// any order (the id is the correlator).
func (s *Service) runQuerySession(conn net.Conn, br *bufio.Reader) error {
	h := s.queryHandler
	var (
		writeMu  sync.Mutex
		writeErr atomic.Value // first conn.Write error, type error
	)
	respond := func(frame []byte) {
		// The write deadline (via writeFrame) is what reaps a peer that
		// pipelines requests but stops reading responses: once the socket
		// buffers fill, the write blocks, the deadline fires, and the
		// session tears down instead of wedging a worker forever.
		writeMu.Lock()
		err := s.writeFrame(conn, frame)
		writeMu.Unlock()
		if err != nil {
			// Keep only the first failure; later writes fail for the same
			// reason and would race to overwrite it.
			writeErr.CompareAndSwap(nil, err)
		}
	}

	if s.draining.Load() {
		// Graceful drain: a new query session gets a typed, retryable
		// refusal addressed to its first request instead of a bare close.
		s.met.drainRefusals.Inc()
		fr := transport.NewFrameReader(br)
		typ, payload, err := fr.Next()
		if err != nil || typ != transport.FrameQuery {
			return nil
		}
		req, _ := transport.DecodeQueryRequest(payload) // best-effort id extraction
		respond(transport.AppendQueryErrorFrame(nil, req.ID, transport.VerdictDraining, ErrDraining.Error()))
		return nil
	}

	jobs := make(chan transport.QueryRequest)
	var wg sync.WaitGroup
	for i := 0; i < s.queryConc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var res transport.QueryResult
			var buf []byte
			for req := range jobs {
				var err error
				if h == nil {
					err = errors.New("server: no query handler configured")
				} else {
					start := time.Now()
					err = h.ServeQuery(req, &res)
					s.met.queryLat.Since(start)
				}
				if err == nil {
					buf, err = transport.AppendQueryResultFrame(buf[:0], &res)
				}
				if err != nil {
					code, msg := transport.QueryErrorCode(err)
					buf = transport.AppendQueryErrorFrame(buf[:0], req.ID, code, msg)
				}
				respond(buf)
			}
		}()
	}
	finish := func(err error) error {
		close(jobs)
		wg.Wait()
		if werr, _ := writeErr.Load().(error); werr != nil && err == nil {
			err = fmt.Errorf("server: query response write: %w", werr)
		}
		return err
	}

	fr := transport.NewFrameReader(br)
	fr.SetMetrics(s.met.framesIn)
	for {
		if werr, _ := writeErr.Load().(error); werr != nil {
			return finish(nil)
		}
		typ, payload, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return finish(nil)
		}
		if err != nil {
			return finish(fmt.Errorf("server: query session: %w", err))
		}
		switch typ {
		case transport.FrameQuery:
			req, derr := transport.DecodeQueryRequest(payload)
			if derr != nil {
				// Malformed request: answer with a typed error addressed to
				// whatever id could be extracted, then drop the session — the
				// stream can no longer be trusted to be well-framed.
				code := transport.QErrBadRequest
				if errors.Is(derr, transport.ErrQueryVersionMismatch) {
					code = transport.QErrVersion
				}
				respond(transport.AppendQueryErrorFrame(nil, req.ID, code, derr.Error()))
				return finish(fmt.Errorf("server: query session: %w", derr))
			}
			jobs <- req
		case transport.FrameEnd:
			return finish(nil)
		default:
			return finish(fmt.Errorf("server: query session: %w: %#x", transport.ErrUnknownFrame, typ))
		}
	}
}
