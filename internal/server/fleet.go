package server

import (
	"fmt"
	"net"
	"sync"

	"symmeter/internal/dataset"
	"symmeter/internal/symbolic"
	"symmeter/internal/timeseries"
	"symmeter/internal/transport"
)

// FleetConfig describes a simulated meter fleet.
type FleetConfig struct {
	// Meters is the number of concurrent sensors (required, ≥ 1).
	Meters int
	// Days of live data each meter streams after its training days.
	Days int
	// TrainDays of history each meter learns its table from (default 2,
	// the paper's bootstrap).
	TrainDays int
	// SecondsPerDay caps how much of each day is used, both for training
	// and streaming (0 = the whole 86400-second day). Benchmarks use this
	// to trade realism for wall-clock.
	SecondsPerDay int64
	// Window is the vertical segmentation window in seconds (default 900).
	Window int64
	// K is the alphabet size (default 16).
	K int
	// BatchSize is symbols per 'S' frame (default 96).
	BatchSize int
	// Seed offsets each meter's synthetic generator; meter i uses Seed+i.
	Seed int64
	// RelearnPerDay rebuilds the table from each finished day and resends
	// it mid-stream (the §2.2 adaptive path) — exercises 'T' updates under
	// concurrent load.
	RelearnPerDay bool
	// DisableGaps turns off the generator's missing-data simulation.
	DisableGaps bool
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.TrainDays <= 0 {
		c.TrainDays = 2
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Window <= 0 {
		c.Window = 900
	}
	if c.K <= 0 {
		c.K = 16
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 96
	}
	return c
}

// ExpectedPointsPerMeter returns an upper bound on the symbols one meter
// will stream under this config (after defaulting) — the right value for
// Config.ReservePoints so every store commit lands in pre-allocated
// capacity. Per day: one symbol per touched window (ceiling, plus one for
// window/day misalignment) and one more for the partial-window flush a
// daily table relearn forces. Gaps can only reduce the actual count.
func (c FleetConfig) ExpectedPointsPerMeter() int {
	c = c.withDefaults()
	perDay := int64(timeseries.SecondsPerDay)
	if c.SecondsPerDay > 0 {
		perDay = c.SecondsPerDay
	}
	symbolsPerDay := (perDay+c.Window-1)/c.Window + 2
	return int(symbolsPerDay * int64(c.Days))
}

// MeterReport is one meter's end-to-end outcome.
type MeterReport struct {
	MeterID uint64
	// Sent is the raw measurements pushed into the sensor.
	Sent int
	// Symbols is how many reconstructed points the server stored (filled
	// by Evaluate).
	Symbols int
	// Matched is how many of those aligned with a ground-truth window
	// (filled by Evaluate).
	Matched int
	// MAE is the mean absolute error in watts between the server's
	// reconstruction and the true window averages (filled by Evaluate).
	MAE float64
	// Err is the sensor-side failure, nil on success.
	Err error
	// Connected reports whether the meter's TCP dial succeeded — even a
	// meter that later failed mid-stream produced a server-side session, so
	// drivers waiting for sessions (Service.AwaitSessions) must count
	// connected meters, not successful ones.
	Connected bool

	truth []timeseries.Point
}

// FleetReport aggregates a fleet run.
type FleetReport struct {
	Meters []MeterReport
	// Sent is total raw measurements across the fleet.
	Sent int
}

// truthTracker records per-window true averages by driving a parallel
// symbolic.Encoder, so fleet ground truth inherits the sensor's window
// alignment (and its out-of-order rejection) by construction instead of
// re-implementing it.
type truthTracker struct {
	enc *symbolic.Encoder
	out []timeseries.Point
}

func newTruthTracker(table *symbolic.Table, window int64) *truthTracker {
	return &truthTracker{enc: symbolic.NewEncoder(table, window)}
}

func (tt *truthTracker) push(p timeseries.Point) error {
	sp, avg, ok, err := tt.enc.PushWithValue(p)
	if err != nil {
		return err
	}
	if ok {
		tt.out = append(tt.out, timeseries.Point{T: sp.T, V: avg})
	}
	return nil
}

func (tt *truthTracker) flush() {
	if sp, avg, ok := tt.enc.FlushWithValue(); ok {
		tt.out = append(tt.out, timeseries.Point{T: sp.T, V: avg})
	}
}

// RunFleet dials addr once per meter and streams each meter's data over its
// own TCP connection, all concurrently. It returns when every sensor has
// closed its connection; drain the service before evaluating.
func RunFleet(addr string, cfg FleetConfig) (*FleetReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Meters < 1 {
		return nil, fmt.Errorf("server: fleet needs at least one meter, got %d", cfg.Meters)
	}
	rep := &FleetReport{Meters: make([]MeterReport, cfg.Meters)}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Meters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep.Meters[i] = runMeter(addr, uint64(i+1), int64(i), cfg)
		}(i)
	}
	wg.Wait()
	for i := range rep.Meters {
		rep.Sent += rep.Meters[i].Sent
	}
	return rep, nil
}

// dayPoints returns day d of the meter's series, capped to the configured
// seconds-per-day prefix.
func dayPoints(gen *dataset.Generator, d int, cap int64) []timeseries.Point {
	day := gen.HouseDay(0, d)
	pts := day.Points
	if cap <= 0 {
		return pts
	}
	limit := day.Start() + cap
	for i, p := range pts {
		if p.T >= limit {
			return pts[:i]
		}
	}
	return pts
}

func runMeter(addr string, id uint64, seedOff int64, cfg FleetConfig) MeterReport {
	rep := MeterReport{MeterID: id}
	fail := func(err error) MeterReport { rep.Err = err; return rep }

	gen := dataset.New(dataset.Config{
		Seed:        cfg.Seed + seedOff,
		Houses:      1,
		Days:        cfg.TrainDays + cfg.Days,
		DisableGaps: cfg.DisableGaps,
	})

	var builder symbolic.TableBuilder
	for d := 0; d < cfg.TrainDays; d++ {
		for _, p := range dayPoints(gen, d, cfg.SecondsPerDay) {
			builder.Push(p.V)
		}
	}
	table, err := builder.Build(symbolic.MethodMedian, cfg.K)
	if err != nil {
		return fail(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fail(err)
	}
	rep.Connected = true
	defer conn.Close()
	if err := transport.WriteHandshake(conn, id); err != nil {
		return fail(err)
	}
	sensor, err := transport.NewSensor(conn, table, cfg.Window, cfg.BatchSize)
	if err != nil {
		return fail(err)
	}

	truth := newTruthTracker(table, cfg.Window)
	for d := cfg.TrainDays; d < cfg.TrainDays+cfg.Days; d++ {
		pts := dayPoints(gen, d, cfg.SecondsPerDay)
		var dayVals []float64
		for _, p := range pts {
			if err := sensor.Push(p); err != nil {
				return fail(err)
			}
			if err := truth.push(p); err != nil {
				return fail(err)
			}
			rep.Sent++
			if cfg.RelearnPerDay {
				dayVals = append(dayVals, p.V)
			}
		}
		if cfg.RelearnPerDay && d < cfg.TrainDays+cfg.Days-1 && len(dayVals) > 0 {
			next, err := symbolic.Learn(symbolic.MethodMedian, dayVals, cfg.K)
			if err != nil {
				return fail(err)
			}
			// UpdateTable flushes the encoder's partial window; mirror that
			// in the ground truth so timestamps keep matching.
			truth.flush()
			if err := sensor.UpdateTable(next); err != nil {
				return fail(err)
			}
		}
	}
	if err := sensor.Close(); err != nil {
		return fail(err)
	}
	truth.flush()
	rep.truth = truth.out
	return rep
}

// Evaluate fills each MeterReport's server-side fields from the store:
// symbol counts and the reconstruction MAE against the meter's true window
// averages, matched by timestamp.
func (r *FleetReport) Evaluate(store *Store) {
	for i := range r.Meters {
		m := &r.Meters[i]
		st, ok := store.Snapshot(m.MeterID)
		if !ok {
			continue
		}
		m.Symbols = len(st.Points)
		var sum float64
		j := 0
		for _, tp := range m.truth {
			for j < len(st.Points) && st.Points[j].T < tp.T {
				j++
			}
			if j < len(st.Points) && st.Points[j].T == tp.T {
				sum += abs(tp.V - st.Points[j].V)
				m.Matched++
				j++
			}
		}
		if m.Matched > 0 {
			m.MAE = sum / float64(m.Matched)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
