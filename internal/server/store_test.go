package server

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"symmeter/internal/symbolic"
)

func testTable(t *testing.T) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestShardSpread(t *testing.T) {
	s := NewStore(8)
	if s.NumShards() != 8 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	// Sequential meter IDs must not all map to a few shards.
	counts := make([]int, 8)
	for id := uint64(1); id <= 1024; id++ {
		counts[s.ShardFor(id)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no meters out of 1024 sequential IDs", i)
		}
		if c > 1024/8*2 {
			t.Fatalf("shard %d got %d of 1024 meters (poor spread)", i, c)
		}
	}
}

func TestNewStoreClampsShards(t *testing.T) {
	if n := NewStore(0).NumShards(); n != 1 {
		t.Fatalf("shards = %d, want 1", n)
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := NewStore(4)
	if err := s.StartSession(7); err != nil {
		t.Fatal(err)
	}
	if err := s.StartSession(7); !errors.Is(err, ErrDuplicateMeter) {
		t.Fatalf("second session error = %v, want ErrDuplicateMeter", err)
	}
	s.EndSession(7)
	if err := s.StartSession(7); err != nil {
		t.Fatalf("reconnect after EndSession: %v", err)
	}
	st, ok := s.Snapshot(7)
	if !ok || st.Sessions != 2 {
		t.Fatalf("snapshot = %+v ok=%v, want 2 sessions", st, ok)
	}
}

func TestWritesRequireRegistration(t *testing.T) {
	s := NewStore(4)
	table := testTable(t)
	if err := s.PushTable(9, table); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("PushTable error = %v, want ErrUnknownMeter", err)
	}
	if _, err := s.Append(9, nil); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("Append error = %v, want ErrUnknownMeter", err)
	}
	if err := s.StartSession(9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(9, []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Append before table error = %v, want ErrNoTable", err)
	}
	if err := s.PushTable(9, table); err != nil {
		t.Fatal(err)
	}
	n, err := s.Append(9, []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}})
	if err != nil || n != 1 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	st, _ := s.Snapshot(9)
	if len(st.Points) != 1 || st.Points[0].T != 60 {
		t.Fatalf("points = %+v", st.Points)
	}
}

// TestConcurrentStoreAccess hammers one store from many goroutines across
// overlapping meters and shards; run under -race.
func TestConcurrentStoreAccess(t *testing.T) {
	s := NewStore(4)
	table := testTable(t)
	const meters = 64
	var wg sync.WaitGroup
	for m := 1; m <= meters; m++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := s.StartSession(id); err != nil {
				t.Error(err)
				return
			}
			defer s.EndSession(id)
			if err := s.PushTable(id, table); err != nil {
				t.Error(err)
				return
			}
			for batch := 0; batch < 10; batch++ {
				pts := make([]symbolic.SymbolPoint, 8)
				for i := range pts {
					pts[i] = symbolic.SymbolPoint{T: int64(batch*8+i) * 60, S: table.Encode(float64(i) * 100)}
				}
				if _, err := s.Append(id, pts); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(m))
	}
	// Concurrent readers while writes are in flight.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.TotalSymbols()
				s.Meters()
				s.Snapshot(uint64(i%meters + 1))
			}
		}()
	}
	wg.Wait()
	if got := s.TotalSymbols(); got != meters*10*8 {
		t.Fatalf("total symbols = %d, want %d", got, meters*10*8)
	}
	if got := len(s.Meters()); got != meters {
		t.Fatalf("meters = %d, want %d", got, meters)
	}
}
