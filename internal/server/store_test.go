package server

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"symmeter/internal/symbolic"
)

func testTable(t *testing.T) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestShardSpread(t *testing.T) {
	s := NewStore(8)
	if s.NumShards() != 8 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	// Sequential meter IDs must not all map to a few shards.
	counts := make([]int, 8)
	for id := uint64(1); id <= 1024; id++ {
		counts[s.ShardFor(id)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no meters out of 1024 sequential IDs", i)
		}
		if c > 1024/8*2 {
			t.Fatalf("shard %d got %d of 1024 meters (poor spread)", i, c)
		}
	}
}

func TestNewStoreClampsShards(t *testing.T) {
	if n := NewStore(0).NumShards(); n != 1 {
		t.Fatalf("shards = %d, want 1", n)
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := NewStore(4)
	if err := s.StartSession(7); err != nil {
		t.Fatal(err)
	}
	if err := s.StartSession(7); !errors.Is(err, ErrDuplicateMeter) {
		t.Fatalf("second session error = %v, want ErrDuplicateMeter", err)
	}
	s.EndSession(7)
	if err := s.StartSession(7); err != nil {
		t.Fatalf("reconnect after EndSession: %v", err)
	}
	st, ok := s.Snapshot(7)
	if !ok || st.Sessions != 2 {
		t.Fatalf("snapshot = %+v ok=%v, want 2 sessions", st, ok)
	}
}

func TestWritesRequireRegistration(t *testing.T) {
	s := NewStore(4)
	table := testTable(t)
	if err := s.PushTable(9, table); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("PushTable error = %v, want ErrUnknownMeter", err)
	}
	if _, err := s.Append(9, nil); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("Append error = %v, want ErrUnknownMeter", err)
	}
	if err := s.StartSession(9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(9, []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Append before table error = %v, want ErrNoTable", err)
	}
	if err := s.PushTable(9, table); err != nil {
		t.Fatal(err)
	}
	n, err := s.Append(9, []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}})
	if err != nil || n != 1 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	st, _ := s.Snapshot(9)
	if len(st.Points) != 1 || st.Points[0].T != 60 {
		t.Fatalf("points = %+v", st.Points)
	}
}

// TestConcurrentStoreAccess hammers one store from many goroutines across
// overlapping meters and shards; run under -race.
func TestConcurrentStoreAccess(t *testing.T) {
	s := NewStore(4)
	table := testTable(t)
	const meters = 64
	var wg sync.WaitGroup
	for m := 1; m <= meters; m++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := s.StartSession(id); err != nil {
				t.Error(err)
				return
			}
			defer s.EndSession(id)
			if err := s.PushTable(id, table); err != nil {
				t.Error(err)
				return
			}
			for batch := 0; batch < 10; batch++ {
				pts := make([]symbolic.SymbolPoint, 8)
				for i := range pts {
					pts[i] = symbolic.SymbolPoint{T: int64(batch*8+i) * 60, S: table.Encode(float64(i) * 100)}
				}
				if _, err := s.Append(id, pts); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(m))
	}
	// Concurrent readers while writes are in flight.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.TotalSymbols()
				s.Meters()
				s.Snapshot(uint64(i%meters + 1))
			}
		}()
	}
	wg.Wait()
	if got := s.TotalSymbols(); got != meters*10*8 {
		t.Fatalf("total symbols = %d, want %d", got, meters*10*8)
	}
	if got := len(s.Meters()); got != meters {
		t.Fatalf("meters = %d, want %d", got, meters)
	}
}

// TestAppendRejectsBatchAtomically pins the no-partial-commit contract: a
// batch containing one undecodable symbol must leave the meter's points
// exactly as they were, not half-appended.
func TestAppendRejectsBatchAtomically(t *testing.T) {
	s := NewStore(2)
	table := testTable(t) // k=8, level 3
	if err := s.StartSession(5); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(5, table); err != nil {
		t.Fatal(err)
	}
	good := []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}, {T: 120, S: table.Encode(900)}}
	if _, err := s.Append(5, good); err != nil {
		t.Fatal(err)
	}
	// Two decodable points followed by a wrong-level symbol: nothing from
	// this batch may land.
	bad := []symbolic.SymbolPoint{
		{T: 180, S: table.Encode(100)},
		{T: 240, S: table.Encode(200)},
		{T: 300, S: symbolic.NewSymbol(1, 5)},
	}
	if _, err := s.Append(5, bad); !errors.Is(err, ErrBadSymbol) {
		t.Fatalf("Append error = %v, want ErrBadSymbol", err)
	}
	st, _ := s.Snapshot(5)
	if len(st.Points) != len(good) {
		t.Fatalf("store has %d points after failed batch, want %d (partial commit)", len(st.Points), len(good))
	}
	// The meter is still usable after the refused batch.
	if n, err := s.Append(5, good); err != nil || n != 2 {
		t.Fatalf("Append after refusal = %d, %v", n, err)
	}
}

func TestReserveUnknownMeter(t *testing.T) {
	s := NewStore(1)
	if err := s.Reserve(404, 100); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("Reserve error = %v, want ErrUnknownMeter", err)
	}
}

// TestStoreAppendZeroAlloc enforces the hot ingest path's zero-allocation
// contract: with block capacity reserved, Append on a regular stream must
// not allocate — no error values, no per-point table lookups, no block or
// arena growth. Timestamps advance monotonically across batches, as a live
// meter's do; every block fills to BlockCap before sealing.
func TestStoreAppendZeroAlloc(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	const batch = 96
	const runs = 200
	pts := make([]symbolic.SymbolPoint, batch)
	syms := make([]symbolic.Symbol, batch)
	for i := range syms {
		syms[i] = table.Encode(float64(i * 10))
	}
	// +2 runs of slack: AllocsPerRun warms up with an extra call.
	if err := s.Reserve(1, (runs+2)*batch); err != nil {
		t.Fatal(err)
	}
	var next int64
	allocs := testing.AllocsPerRun(runs, func() {
		for i := range pts {
			pts[i] = symbolic.SymbolPoint{T: (next + int64(i)) * 60, S: syms[i]}
		}
		next += batch
		if _, err := s.Append(1, pts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates %.1f times per run, want 0", allocs)
	}
}

// TestBlockChainShape pins the sealing rules: blocks fill to BlockCap on a
// regular stream, seal early on a stride break (gap) or a table push (new
// epoch), and snapshots reconstruct exact timestamps through all of it.
func TestBlockChainShape(t *testing.T) {
	s := NewStore(2)
	table := testTable(t)
	if err := s.StartSession(3); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(3, table); err != nil {
		t.Fatal(err)
	}
	var want []int64
	push := func(ts ...int64) {
		t.Helper()
		pts := make([]symbolic.SymbolPoint, len(ts))
		for i, tt := range ts {
			pts[i] = symbolic.SymbolPoint{T: tt, S: table.Encode(float64(tt % 997))}
		}
		if _, err := s.Append(3, pts); err != nil {
			t.Fatal(err)
		}
		want = append(want, ts...)
	}

	// Regular minute stream crossing one block boundary.
	long := make([]int64, BlockCap+10)
	for i := range long {
		long[i] = int64(i) * 60
	}
	push(long...)
	// Gap: jumps from the established stride, then a different stride.
	push(100_000, 100_900, 101_800)
	// Epoch change seals the tail even though its stride could continue.
	if err := s.PushTable(3, table); err != nil {
		t.Fatal(err)
	}
	push(102_700, 103_600)
	// Backwards timestamp (reconnect replay) starts a fresh block.
	push(50, 110)

	st, ok := s.Snapshot(3)
	if !ok {
		t.Fatal("no snapshot")
	}
	if len(st.Points) != len(want) {
		t.Fatalf("snapshot has %d points, want %d", len(st.Points), len(want))
	}
	for i, p := range st.Points {
		if p.T != want[i] {
			t.Fatalf("point %d: T = %d, want %d", i, p.T, want[i])
		}
		if v, err := st.Tables[len(st.Tables)-1].Value(p.S); err != nil || v != p.V {
			t.Fatalf("point %d: V = %v, table gives %v (err %v)", i, p.V, v, err)
		}
	}
	if got := s.TotalSymbols(); got != len(want) {
		t.Fatalf("TotalSymbols = %d, want %d", got, len(want))
	}

	// The visitor sees the same stream the snapshot reconstructed, and every
	// block's summary matches a recount of its own payload.
	var visited int
	s.QueryMeter(3, func(v BlockView) {
		visited += v.N
		hist := make([]uint64, 1<<uint(v.Level))
		symbolic.PackedRangeHistogram(hist, v.Payload, v.Level, 0, v.N)
		var n uint64
		var sum float64
		minV, maxV := math.Inf(1), math.Inf(-1)
		for sym, c := range hist {
			n += c
			sum += float64(c) * v.Values[sym]
			if c > 0 {
				minV = math.Min(minV, v.Values[sym])
				maxV = math.Max(maxV, v.Values[sym])
			}
		}
		if int(n) != v.N || minV != v.MinV || maxV != v.MaxV {
			t.Fatalf("block summary mismatch: n=%d/%d min=%v/%v max=%v/%v", n, v.N, minV, v.MinV, maxV, v.MaxV)
		}
		if d := sum - v.Sum; d > 1e-6 || d < -1e-6 {
			t.Fatalf("block sum %v, recount %v", v.Sum, sum)
		}
		for i := 0; i < len(v.Hist); i++ {
			if uint64(v.Hist[i]) != hist[i] {
				t.Fatalf("block hist[%d] = %d, recount %d", i, v.Hist[i], hist[i])
			}
		}
	})
	if visited != len(want) {
		t.Fatalf("visitor saw %d points, want %d", visited, len(want))
	}
}

// TestMemoryFootprint verifies the packed store's headline: resident bytes
// per point are a small fraction of the 24-byte ReconPoint it replaced.
func TestMemoryFootprint(t *testing.T) {
	s := NewStore(4)
	table := testTable(t) // k=8, level 3
	const n = 8192
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(1, n); err != nil {
		t.Fatal(err)
	}
	pts := make([]symbolic.SymbolPoint, n)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 900, S: table.Encode(float64(i % 4000))}
	}
	if _, err := s.Append(1, pts); err != nil {
		t.Fatal(err)
	}
	bytes, points := s.MemoryFootprint()
	if points != n {
		t.Fatalf("points = %d, want %d", points, n)
	}
	perPoint := float64(bytes) / float64(points)
	if perPoint > 2.4 { // ≥ 10x under the 24-byte ReconPoint
		t.Fatalf("%.2f bytes/point, want ≤ 2.4 (10x reduction vs 24-byte ReconPoint)", perPoint)
	}
}

// TestDegenerateStreamMemoryBounded pins the seal-time trimming: a stream
// whose timestamps break the stride on every point (client-controlled wire
// input — out-of-order replay, alternating clocks) seals a near-empty block
// per point. Trimming must keep the cost to per-block metadata instead of a
// full 512-symbol payload plus histogram lanes each.
func TestDegenerateStreamMemoryBounded(t *testing.T) {
	s := NewStore(1)
	table := testTable(t) // k=8, level 3: full payload would be 192 B/block
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	const n = 4096
	for i := 0; i < n; i++ {
		// Alternating far-apart timestamps: every point breaks the stride.
		ts := int64(i)
		if i%2 == 1 {
			ts += 1 << 40
		}
		pts := []symbolic.SymbolPoint{{T: ts, S: table.Encode(float64(i % 997))}}
		if _, err := s.Append(1, pts); err != nil {
			t.Fatal(err)
		}
	}
	bytes, points := s.MemoryFootprint()
	if points != n {
		t.Fatalf("points = %d, want %d", points, n)
	}
	perPoint := float64(bytes) / float64(points)
	// Untrimmed, each 1-point block would pin ~328 B (192 payload + 32 hist
	// + metadata); trimmed, only the metadata and one payload byte remain.
	if perPoint > 128 {
		t.Fatalf("degenerate stream costs %.0f B/point, want ≤ 128 (seal trimming broken)", perPoint)
	}
	// The pathological chain must still reconstruct and query correctly.
	st, _ := s.Snapshot(1)
	if len(st.Points) != n {
		t.Fatalf("snapshot has %d points, want %d", len(st.Points), n)
	}
}

// TestAdversarialTimestampOverflow pins the stride guard: timestamps chosen
// to wrap the block's arithmetic progression past int64 must not corrupt
// queries — every point lands in its own block and both read paths
// (visitor-based queries and Snapshot reconstruction) see all of them.
func TestAdversarialTimestampOverflow(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	const minInt64 = -1 << 63
	// Includes the span-overflow shape: firstT ≈ -maxInt64/510 followed by
	// t=0 fixes a stride whose 511-step span exceeds int64 even though the
	// block's own lastT would not — offsets t0-firstT must never wrap.
	ts := []int64{1, 1<<62 + 1, minInt64 + 1, maxInt64, maxInt64 - 1, 0,
		-(maxInt64 / 510), 0, maxInt64 / 510 * 2}
	for _, tt := range ts {
		if _, err := s.Append(1, []symbolic.SymbolPoint{{T: tt, S: table.Encode(100)}}); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	s.QueryMeter(1, func(v BlockView) {
		visited += v.N
		if v.LastT() < v.FirstT {
			t.Fatalf("block lastT %d wrapped below firstT %d", v.LastT(), v.FirstT)
		}
	})
	if visited != len(ts) {
		t.Fatalf("queries see %d points, want %d", visited, len(ts))
	}
	st, _ := s.Snapshot(1)
	if len(st.Points) != len(ts) {
		t.Fatalf("snapshot has %d points, want %d", len(st.Points), len(ts))
	}
	for i, p := range st.Points {
		if p.T != ts[i] {
			t.Fatalf("point %d: T = %d, want %d", i, p.T, ts[i])
		}
	}
}

// TestNegativeTimestampsFormFullBlocks pins the other side of the stride
// guard: a perfectly regular stream whose timestamps sit before the epoch
// (negative int64) is ordinary input and must still pack into full blocks —
// a guard that rejects negative time would silently fragment one block per
// point and forfeit the store's memory and summary contracts.
func TestNegativeTimestampsFormFullBlocks(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	const n = BlockCap + 100
	pts := make([]symbolic.SymbolPoint, n)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: -86400 + int64(i)*900, S: table.Encode(float64(i % 997))}
	}
	if _, err := s.Append(1, pts); err != nil {
		t.Fatal(err)
	}
	blocks := 0
	s.QueryMeter(1, func(v BlockView) { blocks++ })
	if blocks != 2 {
		t.Fatalf("regular pre-epoch stream fragmented into %d blocks, want 2", blocks)
	}
}

// TestReservedArenaAccountedWhole pins MemoryFootprint's arena accounting:
// a Reserve'd meter whose degenerate stream abandons carved regions must
// still report at least the full arena allocation — the slab stays
// resident no matter what the blocks did with their slices.
func TestReservedArenaAccountedWhole(t *testing.T) {
	s := NewStore(1)
	table := testTable(t) // k=8, level 3
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	const n = 2048
	if err := s.Reserve(1, n); err != nil {
		t.Fatal(err)
	}
	nb := (n+BlockCap-1)/BlockCap + 1
	arena := int64(nb*blockBytes(table.Level()) + 4*nb*table.K())
	for i := 0; i < n; i++ {
		ts := int64(i)
		if i%2 == 1 {
			ts += 1 << 40 // every point breaks the stride
		}
		if _, err := s.Append(1, []symbolic.SymbolPoint{{T: ts, S: table.Encode(float64(i % 997))}}); err != nil {
			t.Fatal(err)
		}
	}
	bytes, points := s.MemoryFootprint()
	if points != n {
		t.Fatalf("points = %d, want %d", points, n)
	}
	if bytes < arena {
		t.Fatalf("footprint %d B under-reports the %d B reserve arena", bytes, arena)
	}
}

// TestReserveBeforeTable pins the parked-Reserve path the session handshake
// takes: Reserve lands before any table, and must still make ingest
// allocation-free once the table arrives.
func TestReserveBeforeTable(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	if err := s.StartSession(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(2, 4*BlockCap); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(2, table); err != nil {
		t.Fatal(err)
	}
	pts := make([]symbolic.SymbolPoint, BlockCap)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 60, S: table.Encode(float64(i))}
	}
	if _, err := s.Append(2, pts); err != nil { // warm the tail block
		t.Fatal(err)
	}
	var next int64 = BlockCap
	allocs := testing.AllocsPerRun(2, func() {
		for i := range pts {
			pts[i].T = (next + int64(i)) * 60
		}
		next += BlockCap
		if _, err := s.Append(2, pts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append after parked Reserve allocates %.1f times per run, want 0", allocs)
	}
}

// --- Lock-free read path (RCU-published sealed index) ---------------------

// seedRegular streams n regularly-strided points (window w) into meter id,
// in batches of 96, returning the first timestamp past the stream.
func seedRegular(t *testing.T, s *Store, table *symbolic.Table, id uint64, n int, w int64) int64 {
	t.Helper()
	if err := s.StartSession(id); err != nil {
		t.Fatal(err)
	}
	defer s.EndSession(id)
	if err := s.PushTable(id, table); err != nil {
		t.Fatal(err)
	}
	var ts int64
	for sent := 0; sent < n; {
		batch := 96
		if batch > n-sent {
			batch = n - sent
		}
		pts := make([]symbolic.SymbolPoint, batch)
		for i := range pts {
			pts[i] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64((sent + i) % 997))}
			ts += w
		}
		if _, err := s.Append(id, pts); err != nil {
			t.Fatal(err)
		}
		sent += batch
	}
	return ts
}

// TestSealedReadsLockFree pins the tentpole contract: a range query that
// ends before the live tail's first timestamp reads only the published
// index and takes zero shard-lock acquisitions; a range reaching the tail
// takes exactly the brief tail-fold lock. Meters and TotalSymbols read
// published state and never lock either.
func TestSealedReadsLockFree(t *testing.T) {
	s := NewStore(2)
	table := testTable(t)
	const w = 900
	seedRegular(t, s, table, 1, 4*BlockCap+100, w) // 4 sealed blocks + live tail
	m, ok := s.Meter(1)
	if !ok {
		t.Fatal("meter unknown")
	}
	if got := m.SealedBlocks(); got != 4 {
		t.Fatalf("sealed blocks = %d, want 4", got)
	}
	tailT, ok := m.LiveTailStart()
	if !ok {
		t.Fatal("no live tail")
	}
	if want := int64(4*BlockCap) * w; tailT != want {
		t.Fatalf("tail start = %d, want %d", tailT, want)
	}

	before := s.QueryLockAcquisitions()
	var pts int
	m.VisitRange(0, tailT, func(v BlockView) { pts += v.N })
	if pts != 4*BlockCap {
		t.Fatalf("sealed range saw %d points, want %d", pts, 4*BlockCap)
	}
	s.Meters()
	s.TotalSymbols()
	if got := s.QueryLockAcquisitions(); got != before {
		t.Fatalf("sealed-only reads took %d shard locks, want 0", got-before)
	}

	// A range reaching past the tail start folds the tail under one lock.
	pts = 0
	m.VisitRange(0, tailT+1, func(v BlockView) { pts += v.N })
	if pts != 4*BlockCap+100 {
		t.Fatalf("tail-touching range saw %d points, want %d", pts, 4*BlockCap+100)
	}
	if got := s.QueryLockAcquisitions() - before; got != 1 {
		t.Fatalf("tail-touching query took %d locks, want 1", got)
	}
}

// TestTimeDirectoryPrunes pins the O(log B + blocks in range) contract: a
// narrow range over a long time-ordered chain visits only the blocks whose
// span intersects it, not the whole chain; and a chain that replays old
// timestamps loses orderedness but none of its points.
func TestTimeDirectoryPrunes(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	const w = 900
	const nBlocks = 64
	seedRegular(t, s, table, 1, nBlocks*BlockCap+10, w)
	m, _ := s.Meter(1)
	if !m.TimeOrdered() {
		t.Fatal("regular stream not time-ordered")
	}
	// One block's interior: indices inside sealed block 10.
	t0 := int64(10*BlockCap+5) * w
	t1 := int64(10*BlockCap+50) * w
	visited := 0
	m.VisitRange(t0, t1, func(v BlockView) { visited++ })
	if visited != 1 {
		t.Fatalf("1-block range visited %d blocks, want 1 (directory not pruning)", visited)
	}
	// A range straddling two block boundaries visits exactly three blocks.
	visited = 0
	m.VisitRange(int64(9*BlockCap+100)*w, int64(11*BlockCap+100)*w, func(v BlockView) { visited++ })
	if visited != 3 {
		t.Fatalf("3-block range visited %d blocks, want 3", visited)
	}
	// Before-the-stream and after-the-sealed-chain ranges visit nothing
	// sealed (the latter pays the tail fold only).
	visited = 0
	m.VisitRange(-1000, -1, func(v BlockView) { visited++ })
	if visited != 0 {
		t.Fatalf("pre-stream range visited %d blocks, want 0", visited)
	}

	// Replayed old timestamps: orderedness is lost, correctness is not.
	if _, err := s.Append(1, []symbolic.SymbolPoint{{T: 3, S: table.Encode(1)}, {T: 5, S: table.Encode(2)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(1, []symbolic.SymbolPoint{{T: int64(nBlocks*BlockCap+20) * w, S: table.Encode(3)}}); err != nil {
		t.Fatal(err)
	}
	if m.TimeOrdered() {
		t.Fatal("replayed timestamps left the chain marked time-ordered")
	}
	got := 0
	m.VisitRange(0, int64(1<<40), func(v BlockView) {
		i0, i1 := 0, v.N
		if v.FirstT >= 1<<40 {
			i0 = i1
		}
		got += i1 - i0
	})
	if want := nBlocks*BlockCap + 10 + 3; got != want {
		t.Fatalf("unordered chain query saw %d points, want %d", got, want)
	}
}

// TestConcurrentPublishStress is the -race pin for the publication
// protocol: concurrent Append (sealing and publishing), PushTable (epoch
// changes), lock-free VisitRange readers, Snapshot reconstruction and the
// published-directory readers (Meters/TotalSymbols) all hammer the same two
// shards. Readers check per-meter full-range counts never go backwards (a
// torn publication would lose sealed blocks) and every view is internally
// consistent.
func TestConcurrentPublishStress(t *testing.T) {
	s := NewStore(2) // few shards: force meters to collide on locks
	table := testTable(t)
	const meters = 8
	const batches = 60
	const batchPts = 32
	var writers, readers sync.WaitGroup
	for id := uint64(1); id <= meters; id++ {
		if err := s.StartSession(id); err != nil {
			t.Fatal(err)
		}
		if err := s.PushTable(id, table); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	for id := uint64(1); id <= meters; id++ {
		writers.Add(1)
		go func(id uint64) {
			defer writers.Done()
			var ts int64
			for b := 0; b < batches; b++ {
				pts := make([]symbolic.SymbolPoint, batchPts)
				for i := range pts {
					pts[i] = symbolic.SymbolPoint{T: ts, S: table.Encode(float64(i))}
					ts += 60
				}
				if b%7 == 3 {
					ts += 600 // gap: forces a seal + publish
				}
				if b%13 == 5 {
					if err := s.PushTable(id, table); err != nil {
						t.Error(err)
						return
					}
				}
				if _, err := s.Append(id, pts); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			last := make(map[uint64]int)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(i%meters + 1)
				m, ok := s.Meter(id)
				if !ok {
					t.Errorf("meter %d vanished", id)
					return
				}
				n := 0
				m.VisitRange(-1, 1<<62, func(v BlockView) {
					if v.N <= 0 || v.LastT() < v.FirstT {
						t.Errorf("inconsistent view: n=%d firstT=%d lastT=%d", v.N, v.FirstT, v.LastT())
					}
					n += v.N
				})
				if n < last[id] {
					t.Errorf("meter %d count went backwards: %d -> %d", id, last[id], n)
					return
				}
				last[id] = n
				if r == 0 {
					s.TotalSymbols()
					s.Meters()
				}
				if r == 1 && i%5 == 0 {
					if st, ok := s.Snapshot(id); ok {
						for j := 1; j < len(st.Points); j++ {
							_ = st.Points[j]
						}
					}
				}
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	for id := uint64(1); id <= meters; id++ {
		s.EndSession(id)
	}
	if got, want := s.TotalSymbols(), meters*batches*batchPts; got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
	// Post-quiescence: lock-free counts equal snapshot reconstruction.
	for id := uint64(1); id <= meters; id++ {
		m, _ := s.Meter(id)
		st, _ := s.Snapshot(id)
		if m.TotalSymbols() != len(st.Points) {
			t.Fatalf("meter %d: published total %d, snapshot %d", id, m.TotalSymbols(), len(st.Points))
		}
		if m.SealedSymbols() > m.TotalSymbols() {
			t.Fatalf("meter %d: sealed %d > total %d", id, m.SealedSymbols(), m.TotalSymbols())
		}
	}
}
