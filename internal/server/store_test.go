package server

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"symmeter/internal/symbolic"
)

func testTable(t *testing.T) *symbolic.Table {
	t.Helper()
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	table, err := symbolic.Learn(symbolic.MethodMedian, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestShardSpread(t *testing.T) {
	s := NewStore(8)
	if s.NumShards() != 8 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	// Sequential meter IDs must not all map to a few shards.
	counts := make([]int, 8)
	for id := uint64(1); id <= 1024; id++ {
		counts[s.ShardFor(id)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no meters out of 1024 sequential IDs", i)
		}
		if c > 1024/8*2 {
			t.Fatalf("shard %d got %d of 1024 meters (poor spread)", i, c)
		}
	}
}

func TestNewStoreClampsShards(t *testing.T) {
	if n := NewStore(0).NumShards(); n != 1 {
		t.Fatalf("shards = %d, want 1", n)
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := NewStore(4)
	if err := s.StartSession(7); err != nil {
		t.Fatal(err)
	}
	if err := s.StartSession(7); !errors.Is(err, ErrDuplicateMeter) {
		t.Fatalf("second session error = %v, want ErrDuplicateMeter", err)
	}
	s.EndSession(7)
	if err := s.StartSession(7); err != nil {
		t.Fatalf("reconnect after EndSession: %v", err)
	}
	st, ok := s.Snapshot(7)
	if !ok || st.Sessions != 2 {
		t.Fatalf("snapshot = %+v ok=%v, want 2 sessions", st, ok)
	}
}

func TestWritesRequireRegistration(t *testing.T) {
	s := NewStore(4)
	table := testTable(t)
	if err := s.PushTable(9, table); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("PushTable error = %v, want ErrUnknownMeter", err)
	}
	if _, err := s.Append(9, nil); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("Append error = %v, want ErrUnknownMeter", err)
	}
	if err := s.StartSession(9); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(9, []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("Append before table error = %v, want ErrNoTable", err)
	}
	if err := s.PushTable(9, table); err != nil {
		t.Fatal(err)
	}
	n, err := s.Append(9, []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}})
	if err != nil || n != 1 {
		t.Fatalf("Append = %d, %v", n, err)
	}
	st, _ := s.Snapshot(9)
	if len(st.Points) != 1 || st.Points[0].T != 60 {
		t.Fatalf("points = %+v", st.Points)
	}
}

// TestConcurrentStoreAccess hammers one store from many goroutines across
// overlapping meters and shards; run under -race.
func TestConcurrentStoreAccess(t *testing.T) {
	s := NewStore(4)
	table := testTable(t)
	const meters = 64
	var wg sync.WaitGroup
	for m := 1; m <= meters; m++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := s.StartSession(id); err != nil {
				t.Error(err)
				return
			}
			defer s.EndSession(id)
			if err := s.PushTable(id, table); err != nil {
				t.Error(err)
				return
			}
			for batch := 0; batch < 10; batch++ {
				pts := make([]symbolic.SymbolPoint, 8)
				for i := range pts {
					pts[i] = symbolic.SymbolPoint{T: int64(batch*8+i) * 60, S: table.Encode(float64(i) * 100)}
				}
				if _, err := s.Append(id, pts); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(m))
	}
	// Concurrent readers while writes are in flight.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.TotalSymbols()
				s.Meters()
				s.Snapshot(uint64(i%meters + 1))
			}
		}()
	}
	wg.Wait()
	if got := s.TotalSymbols(); got != meters*10*8 {
		t.Fatalf("total symbols = %d, want %d", got, meters*10*8)
	}
	if got := len(s.Meters()); got != meters {
		t.Fatalf("meters = %d, want %d", got, meters)
	}
}

// TestAppendRejectsBatchAtomically pins the no-partial-commit contract: a
// batch containing one undecodable symbol must leave the meter's points
// exactly as they were, not half-appended.
func TestAppendRejectsBatchAtomically(t *testing.T) {
	s := NewStore(2)
	table := testTable(t) // k=8, level 3
	if err := s.StartSession(5); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(5, table); err != nil {
		t.Fatal(err)
	}
	good := []symbolic.SymbolPoint{{T: 60, S: table.Encode(100)}, {T: 120, S: table.Encode(900)}}
	if _, err := s.Append(5, good); err != nil {
		t.Fatal(err)
	}
	// Two decodable points followed by a wrong-level symbol: nothing from
	// this batch may land.
	bad := []symbolic.SymbolPoint{
		{T: 180, S: table.Encode(100)},
		{T: 240, S: table.Encode(200)},
		{T: 300, S: symbolic.NewSymbol(1, 5)},
	}
	if _, err := s.Append(5, bad); !errors.Is(err, ErrBadSymbol) {
		t.Fatalf("Append error = %v, want ErrBadSymbol", err)
	}
	st, _ := s.Snapshot(5)
	if len(st.Points) != len(good) {
		t.Fatalf("store has %d points after failed batch, want %d (partial commit)", len(st.Points), len(good))
	}
	// The meter is still usable after the refused batch.
	if n, err := s.Append(5, good); err != nil || n != 2 {
		t.Fatalf("Append after refusal = %d, %v", n, err)
	}
}

func TestReserveUnknownMeter(t *testing.T) {
	s := NewStore(1)
	if err := s.Reserve(404, 100); !errors.Is(err, ErrUnknownMeter) {
		t.Fatalf("Reserve error = %v, want ErrUnknownMeter", err)
	}
}

// TestStoreAppendZeroAlloc enforces the hot ingest path's zero-allocation
// contract: with capacity reserved, Append must not allocate — no error
// values, no per-point table lookups, no append growth.
func TestStoreAppendZeroAlloc(t *testing.T) {
	s := NewStore(1)
	table := testTable(t)
	if err := s.StartSession(1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushTable(1, table); err != nil {
		t.Fatal(err)
	}
	const batch = 96
	const runs = 200
	pts := make([]symbolic.SymbolPoint, batch)
	for i := range pts {
		pts[i] = symbolic.SymbolPoint{T: int64(i) * 60, S: table.Encode(float64(i * 10))}
	}
	// +2 runs of slack: AllocsPerRun warms up with an extra call.
	if err := s.Reserve(1, (runs+2)*batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := s.Append(1, pts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates %.1f times per run, want 0", allocs)
	}
}
