package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"symmeter/internal/symbolic"
)

// Config sizes a Service.
type Config struct {
	// Shards is the store's lock-domain count; 0 picks a default of 16.
	Shards int
	// ReservePoints, when positive, reserves packed-block capacity for that
	// many points per meter at handshake time (parked until the meter's
	// first table arrives, since the arenas are sized by its symbol level),
	// so a session whose expected volume is known up front (e.g. replaying
	// N days of fixed-window data) ingests every batch allocation-free.
	ReservePoints int
	// Store, when non-nil, is used instead of a fresh store — the recovery
	// path: a durability layer rebuilds the store from disk and hands it to
	// the service (Shards is then ignored).
	Store *Store
}

// Ingest is the write interface a session drives. A plain *Store implements
// it (the in-memory default); a durability layer wraps the store so every
// table and batch hits a write-ahead log before it commits (see
// internal/storage), without the session loop knowing either way.
type Ingest interface {
	StartSession(meterID uint64) error
	EndSession(meterID uint64)
	PushTable(meterID uint64, t *symbolic.Table) error
	Append(meterID uint64, pts []symbolic.SymbolPoint) (int, error)
	Reserve(meterID uint64, n int) error
}

// Stats is a point-in-time view of service counters.
type Stats struct {
	// Sessions is the number of connections accepted so far.
	Sessions int64
	// Active is the number of sessions currently running.
	Active int64
	// Symbols is the total number of symbols ingested into the store.
	Symbols int64
	// BytesIn is the total bytes read off all connections (the wire cost
	// of tables, symbols and framing together).
	BytesIn int64
}

// Service accepts sensor connections and runs one session goroutine per
// meter, writing into a sharded Store.
type Service struct {
	store         *Store
	ingest        Ingest
	reservePoints int

	sessions atomic.Int64
	active   atomic.Int64
	symbols  atomic.Int64
	bytesIn  atomic.Int64

	mu      sync.Mutex
	errs    []error
	closers map[net.Conn]struct{}
	ln      net.Listener
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// New returns an idle service with a fresh store (or the recovered one the
// config carries).
func New(cfg Config) *Service {
	st := cfg.Store
	if st == nil {
		shards := cfg.Shards
		if shards <= 0 {
			shards = 16
		}
		st = NewStore(shards)
	}
	return &Service{
		store:         st,
		ingest:        st,
		reservePoints: cfg.ReservePoints,
		closers:       make(map[net.Conn]struct{}),
	}
}

// SetIngest routes session writes through ing instead of the bare store —
// how a durability layer interposes its WAL. Must be called before Listen.
func (s *Service) SetIngest(ing Ingest) { s.ingest = ing }

// Store exposes the aggregation store for reporting and tests.
func (s *Service) Store() *Store { return s.store }

// Stats returns current counters.
func (s *Service) Stats() Stats {
	return Stats{
		Sessions: s.sessions.Load(),
		Active:   s.active.Load(),
		Symbols:  s.symbols.Load(),
		BytesIn:  s.bytesIn.Load(),
	}
}

// SessionErrors returns the errors of every failed session so far. An
// orderly stream contributes nothing; protocol violations and abrupt
// disconnects each contribute one typed error.
func (s *Service) SessionErrors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.errs...)
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine until Close. It returns the bound address.
func (s *Service) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	return ln.Addr(), nil
}

// serve accepts until the listener closes.
func (s *Service) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.sessions.Add(1)
		s.active.Add(1)
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.active.Add(-1)
			defer s.track(conn, false)
			defer conn.Close()
			var bytesIn int64
			symbols, err := s.runSession(conn, &bytesIn)
			s.symbols.Add(symbols)
			s.bytesIn.Add(bytesIn)
			if err != nil {
				s.mu.Lock()
				s.errs = append(s.errs, err)
				s.mu.Unlock()
			}
		}()
	}
}

// track registers or unregisters a live connection so Close can interrupt
// sessions that are still blocked reading.
func (s *Service) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed.Load() {
			// Close already ran; don't leave an unkillable session behind.
			conn.Close()
			return
		}
		s.closers[conn] = struct{}{}
	} else {
		delete(s.closers, conn)
	}
}

// AwaitSessions blocks until the service has accepted at least n sessions
// and none is still running, or until timeout elapses (it reports which).
// Fleet drivers call it between "all sensors have closed their connections"
// and Drain: a freshly-closed connection can still be sitting un-accepted
// in the listener's backlog, and closing the listener at that moment would
// silently drop it along with its data. n must count only peers that
// actually connected — a driver whose sensor died before dialing must not
// wait for a session that will never arrive.
func (s *Service) AwaitSessions(n int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		st := s.Stats()
		if st.Sessions >= n && st.Active == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Drain stops accepting and waits for in-flight sessions to finish reading
// whatever their peers already sent. Call after all sensors have closed
// their connections to get a complete store (AwaitSessions first if the
// peers only just closed).
func (s *Service) Drain() {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Close force-stops the service: the listener and every live connection
// are closed, then all session goroutines are awaited.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return errors.New("server: already closed")
	}
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	for conn := range s.closers {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
