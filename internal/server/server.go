package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"symmeter/internal/metrics"
	"symmeter/internal/symbolic"
	"symmeter/internal/transport"
)

// Config sizes a Service.
type Config struct {
	// Shards is the store's lock-domain count; 0 picks a default of 16.
	Shards int
	// ReservePoints, when positive, reserves packed-block capacity for that
	// many points per meter at handshake time (parked until the meter's
	// first table arrives, since the arenas are sized by its symbol level),
	// so a session whose expected volume is known up front (e.g. replaying
	// N days of fixed-window data) ingests every batch allocation-free.
	ReservePoints int
	// Store, when non-nil, is used instead of a fresh store — the recovery
	// path: a durability layer rebuilds the store from disk and hands it to
	// the service (Shards is then ignored).
	Store *Store
	// IdleTimeout, when positive, is the longest a connection may sit
	// between bytes before the server reaps it. Without it, a silently dead
	// client parks its session goroutine forever and — for ingest sessions —
	// its StartSession registration blocks that meter ID for the life of the
	// process. The deadline is refreshed on every read, so any frame
	// progress keeps a session alive.
	IdleTimeout time.Duration
	// QueryConcurrency bounds how many requests a single query connection
	// may have executing at once; 0 picks a default of 4. A pipelining
	// client past the bound blocks in the server's read loop (TCP
	// backpressure), so one greedy reader cannot fan out unbounded work
	// against the store.
	QueryConcurrency int
	// IngestBudget, when positive, is the per-shard admission-control bound
	// in estimated batch bytes: an ingest batch whose cost would push its
	// shard's in-flight total past the budget is refused with ErrOverloaded
	// (VerdictOverloaded on the wire) — typed, retryable backpressure
	// instead of unbounded memory growth under a flood. A batch arriving at
	// an idle shard is always admitted, so a single batch larger than the
	// whole budget cannot starve forever. 0 disables the gate.
	IngestBudget int64
	// WriteTimeout bounds every server→client response write (acks, query
	// results, verdicts). A peer that stops reading — half-dead connection,
	// black-holed path — would otherwise wedge the writing goroutine
	// forever once the socket buffer fills; with the deadline the write
	// fails, the session tears down, and WriteDeadlineReaps counts it.
	// 0 picks a default of 30s; negative disables.
	WriteTimeout time.Duration
	// Metrics, when non-nil, is the registry the service publishes its
	// telemetry into (session/batch counters, latency recorders, per-frame
	// transport counters) — what a /metrics endpoint scrapes. Nil creates a
	// private registry, so the recording paths are identical either way and
	// Stats() always works. A registry must not be shared between two
	// Services: the series names would collide.
	Metrics *metrics.Registry
}

// defaultWriteTimeout is the response-write deadline when the config leaves
// WriteTimeout zero.
const defaultWriteTimeout = 30 * time.Second

// defaultQueryConcurrency is the per-connection in-flight query bound when
// the config leaves QueryConcurrency zero.
const defaultQueryConcurrency = 4

// Ingest is the write interface a session drives. A plain *Store implements
// it (the in-memory default); a durability layer wraps the store so every
// table and batch hits a write-ahead log before it commits (see
// internal/storage), without the session loop knowing either way.
type Ingest interface {
	StartSession(meterID uint64) error
	EndSession(meterID uint64)
	PushTable(meterID uint64, t *symbolic.Table) error
	Append(meterID uint64, pts []symbolic.SymbolPoint) (int, error)
	Reserve(meterID uint64, n int) error
}

// SequencedIngest extends Ingest with the exactly-once batch contract a
// sequenced (FlagSequenced) session drives. Sequence numbers are dense and
// per-meter: seq == LastSeq+1 commits and advances the high-water mark,
// seq <= LastSeq is a duplicate from a retransmit after a lost ack —
// suppressed without writing, dup=true, still acked — and anything further
// ahead is ErrSeqGap. Both *Store (in-memory mark) and the storage engine
// (mark persisted through the WAL, restored by recovery) implement it.
type SequencedIngest interface {
	Ingest
	LastSeq(meterID uint64) uint64
	PushTableSeq(meterID uint64, seq uint64, t *symbolic.Table) (dup bool, err error)
	AppendSeq(meterID uint64, seq uint64, pts []symbolic.SymbolPoint) (n int, dup bool, err error)
}

// QueryHandler executes one decoded query request, filling res for the
// session layer to encode. query.Engine.ServeQuery implements it; the
// indirection keeps this package free of an import cycle (internal/query
// already imports internal/server for the store types).
type QueryHandler interface {
	ServeQuery(req transport.QueryRequest, res *transport.QueryResult) error
}

// Stats is a point-in-time view of service counters.
type Stats struct {
	// Sessions is the number of ingest sessions started so far.
	Sessions int64
	// Active is the number of connections currently running an ingest
	// session (or not yet classified as ingest vs query).
	Active int64
	// Symbols is the total number of symbols ingested into the store.
	Symbols int64
	// BytesIn is the total bytes read off all connections (the wire cost
	// of tables, symbols, queries and framing together).
	BytesIn int64
	// QuerySessions is the number of query sessions started so far.
	QuerySessions int64
	// ActiveQueries is the number of query sessions currently running.
	ActiveQueries int64
	// AcceptRetries counts transient Accept failures survived by the
	// accept loop's backoff-and-retry path.
	AcceptRetries int64
	// DegradedSessions counts ingest sessions refused (or torn down)
	// because the durability layer was degraded; each one was answered
	// with a VerdictDegraded frame before the connection closed.
	DegradedSessions int64
	// SequencedSessions counts ingest sessions that negotiated the
	// sequenced, acknowledged protocol.
	SequencedSessions int64
	// OverloadRefusals counts batches refused by the per-shard ingest
	// admission gate; each was answered with VerdictOverloaded.
	OverloadRefusals int64
	// DrainRefusals counts sessions (ingest handshakes and query sessions)
	// refused with VerdictDraining during graceful shutdown.
	DrainRefusals int64
	// ReconnectReplays counts sequenced handshakes that found committed
	// history (a non-zero high-water mark) — reconnects whose reply told
	// the client where to resume.
	ReconnectReplays int64
	// DuplicateBatches counts sequenced frames suppressed as already
	// committed — retransmits after a lost ack, acked without re-writing.
	DuplicateBatches int64
	// WriteDeadlineReaps counts response writes (acks, query results,
	// verdicts) that hit the write deadline, tearing down a session whose
	// peer stopped reading.
	WriteDeadlineReaps int64
}

// Service accepts sensor connections and runs one session goroutine per
// meter, writing into a sharded Store. With a QueryHandler installed it
// also answers query sessions: a connection whose first byte is a 'Q'
// frame is dispatched to the query path instead of the ingest path.
type Service struct {
	store         *Store
	ingest        Ingest
	queryHandler  QueryHandler
	reservePoints int
	idleTimeout   time.Duration
	queryConc     int
	ingestBudget  int64
	writeTimeout  time.Duration

	// inflight is the per-shard admission gauge: estimated bytes of ingest
	// batches currently being committed, bounded by ingestBudget.
	inflight []atomic.Int64
	draining atomic.Bool

	// met holds every service counter, registry-backed (see metrics.go);
	// Stats() snapshots from the same handles the hot paths bump.
	met *serviceMetrics

	mu      sync.Mutex
	errs    []error
	closers map[net.Conn]struct{}
	lns     []net.Listener
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// New returns an idle service with a fresh store (or the recovered one the
// config carries).
func New(cfg Config) *Service {
	st := cfg.Store
	if st == nil {
		shards := cfg.Shards
		if shards <= 0 {
			shards = 16
		}
		st = NewStore(shards)
	}
	conc := cfg.QueryConcurrency
	if conc <= 0 {
		conc = defaultQueryConcurrency
	}
	wt := cfg.WriteTimeout
	if wt == 0 {
		wt = defaultWriteTimeout
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	s := &Service{
		store:         st,
		ingest:        st,
		reservePoints: cfg.ReservePoints,
		idleTimeout:   cfg.IdleTimeout,
		queryConc:     conc,
		ingestBudget:  cfg.IngestBudget,
		writeTimeout:  wt,
		inflight:      make([]atomic.Int64, st.NumShards()),
		met:           newServiceMetrics(reg),
		closers:       make(map[net.Conn]struct{}),
	}
	s.registerShardGauges()
	return s
}

// SetIngest routes session writes through ing instead of the bare store —
// how a durability layer interposes its WAL. Must be called before Listen.
func (s *Service) SetIngest(ing Ingest) { s.ingest = ing }

// SetQueryHandler installs the executor for query sessions (normally
// query.New(svc.Store())). Must be called before Listen; without a handler,
// query connections are refused with an error response.
func (s *Service) SetQueryHandler(h QueryHandler) { s.queryHandler = h }

// Store exposes the aggregation store for reporting and tests.
func (s *Service) Store() *Store { return s.store }

// Stats returns current counters, snapshotted from the registry-backed
// handles the hot paths bump.
func (s *Service) Stats() Stats {
	return Stats{
		Sessions:           s.met.sessions.Value(),
		Active:             s.met.active.Value(),
		Symbols:            s.met.symbols.Value(),
		BytesIn:            s.met.bytesIn.Value(),
		QuerySessions:      s.met.querySessions.Value(),
		ActiveQueries:      s.met.activeQueries.Value(),
		AcceptRetries:      s.met.acceptRetries.Value(),
		DegradedSessions:   s.met.degradedSessions.Value(),
		SequencedSessions:  s.met.sequencedSessions.Value(),
		OverloadRefusals:   s.met.overloadRefusals.Value(),
		DrainRefusals:      s.met.drainRefusals.Value(),
		ReconnectReplays:   s.met.reconnectReplays.Value(),
		DuplicateBatches:   s.met.duplicateBatches.Value(),
		WriteDeadlineReaps: s.met.writeDeadlineReaps.Value(),
	}
}

// Metrics returns the registry the service records into — the one from
// Config.Metrics, or the private registry created when none was given.
func (s *Service) Metrics() *metrics.Registry { return s.met.reg }

// BeginDrain switches the service into graceful-drain mode: established
// sessions keep their contracts, but new ingest handshakes and new query
// sessions are answered with VerdictDraining — typed, retryable
// backpressure — instead of a bare connection close. Graceful shutdown
// (cmd/serve on SIGTERM) calls this before awaiting in-flight sessions, so
// a rolling restart looks like a busy server, not a dead one.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// pointWireCost is the admission gate's per-point byte estimate: a decoded
// SymbolPoint is a timestamp plus a symbol, ~16 bytes resident while the
// batch is in flight.
const pointWireCost = 16

// acquireIngest charges one batch against its shard's in-flight budget,
// refusing with ErrOverloaded when the budget is exhausted. A batch
// arriving at an idle shard is always admitted so oversized batches cannot
// be starved forever. Callers must releaseIngest the same cost when the
// commit finishes, success or not.
func (s *Service) acquireIngest(meterID uint64, cost int64) error {
	if s.ingestBudget <= 0 || cost == 0 {
		return nil
	}
	shard := s.store.ShardFor(meterID)
	g := &s.inflight[shard]
	if n := g.Add(cost); n > s.ingestBudget && n != cost {
		g.Add(-cost)
		s.met.overloadRefusals.Inc()
		return fmt.Errorf("%w: shard %d has %d bytes in flight, batch of %d exceeds budget %d",
			ErrOverloaded, shard, n-cost, cost, s.ingestBudget)
	}
	return nil
}

func (s *Service) releaseIngest(meterID uint64, cost int64) {
	if s.ingestBudget <= 0 || cost == 0 {
		return
	}
	s.inflight[s.store.ShardFor(meterID)].Add(-cost)
}

// writeFrame writes one server→client frame under the response write
// deadline, counting a deadline hit as a reaped slow consumer.
func (s *Service) writeFrame(conn net.Conn, frame []byte) error {
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
	}
	_, err := conn.Write(frame)
	if err == nil && len(frame) >= 5 {
		s.met.framesOut.Observe(frame[0], len(frame)-5)
	}
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		s.met.writeDeadlineReaps.Inc()
	}
	return err
}

// ingestVerdictCode maps a session-refusing error onto its wire verdict, or
// 0 for errors with no typed verdict (protocol violations, disconnects).
func ingestVerdictCode(err error) byte {
	switch {
	case errors.Is(err, ErrDegraded):
		return transport.VerdictDegraded
	case errors.Is(err, ErrOverloaded):
		return transport.VerdictOverloaded
	case errors.Is(err, ErrDraining):
		return transport.VerdictDraining
	case errors.Is(err, ErrDuplicateMeter):
		return transport.VerdictBusy
	}
	return 0
}

// SessionErrors returns the errors of every failed session so far. An
// orderly stream contributes nothing; protocol violations and abrupt
// disconnects each contribute one typed error.
func (s *Service) SessionErrors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.errs...)
}

// recordErr appends one failed session's error.
func (s *Service) recordErr(err error) {
	s.mu.Lock()
	s.errs = append(s.errs, err)
	s.mu.Unlock()
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine until Close. It returns the bound address. The
// listener accepts both ingest and query sessions, telling them apart by
// the first frame byte.
func (s *Service) Listen(addr string) (net.Addr, error) {
	return s.listen(addr, false)
}

// ListenQuery starts a query-only listener on addr: ingest frames on its
// connections are refused. Deployments that want query traffic on a
// separate port (distinct firewall rules, separate load shedding) use this
// alongside Listen; it is never required — the main listener dispatches
// queries too.
func (s *Service) ListenQuery(addr string) (net.Addr, error) {
	return s.listen(addr, true)
}

func (s *Service) listen(addr string, queryOnly bool) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln, queryOnly)
	}()
	return ln.Addr(), nil
}

// Accept-retry backoff bounds: transient failures (ECONNABORTED on a
// half-open peer, EMFILE under fd pressure) back off from 1ms doubling to
// 1s, so the loop neither spins hot nor stays down longer than a second
// past the condition clearing.
const (
	acceptBackoffMin = time.Millisecond
	acceptBackoffMax = time.Second
)

// serve accepts until the listener closes. Accept errors do not kill the
// loop: anything other than "listener closed" is retried with capped
// exponential backoff — an aborted connection or a transient fd exhaustion
// must not permanently stop a process that is otherwise healthy.
func (s *Service) serve(ln net.Listener, queryOnly bool) {
	backoff := acceptBackoffMin
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.met.acceptRetries.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		// Claim an active slot before the goroutine exists so AwaitSessions
		// can never observe an accepted-but-uncounted connection.
		s.met.active.Add(1)
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn, queryOnly)
		}()
	}
}

// handleConn classifies one accepted connection by its first frame byte and
// runs the matching session loop. The pre-claimed active slot either stays
// (ingest) or transfers to the query counters once classified, so ingest
// drain semantics (AwaitSessions, Drain) never count query readers.
func (s *Service) handleConn(conn net.Conn, queryOnly bool) {
	defer s.track(conn, false)
	defer conn.Close()
	var r io.Reader = conn
	if s.idleTimeout > 0 {
		r = &idleReader{conn: conn, timeout: s.idleTimeout}
	}
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	defer func() { s.met.bytesIn.Add(cr.n) }()

	first, perr := br.Peek(1)
	if perr == nil && first[0] == transport.FrameQuery {
		s.met.querySessions.Inc()
		s.met.activeQueries.Add(1)
		s.met.active.Add(-1)
		defer s.met.activeQueries.Add(-1)
		if err := s.runQuerySession(conn, br); err != nil {
			s.recordErr(err)
		}
		return
	}
	defer s.met.active.Add(-1)
	if queryOnly {
		// An ingest (or garbage) stream on the query port: refuse without
		// registering a meter session. Peek errors land here too — there is
		// nothing to answer a peer that never sent a byte.
		s.recordErr(fmt.Errorf("server: non-query stream on query-only listener: %w", transport.ErrUnknownFrame))
		return
	}
	// Ingest path. A Peek error falls through on purpose: runSession's
	// handshake read reproduces it as the usual ErrBadHandshake-wrapped
	// session error.
	s.met.sessions.Inc()
	symbols, err := s.runSession(conn, br)
	s.met.symbols.Add(symbols)
	if err != nil {
		if code := ingestVerdictCode(err); code != 0 {
			// The parting 'X' frame: tell the sensor *why* its stream ended —
			// degraded storage, overload, drain, or a busy meter — all typed
			// and retryable, before the connection closes. Best effort — a
			// peer that already hung up just misses the hint.
			if code == transport.VerdictDegraded {
				s.met.degradedSessions.Inc()
			}
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			frame := transport.AppendQueryErrorFrame(nil, 0, code, err.Error())
			_, _ = conn.Write(frame)
		}
		s.recordErr(err)
	}
}

// track registers or unregisters a live connection so Close can interrupt
// sessions that are still blocked reading.
func (s *Service) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed.Load() {
			// Close already ran; don't leave an unkillable session behind.
			conn.Close()
			return
		}
		s.closers[conn] = struct{}{}
	} else {
		delete(s.closers, conn)
	}
}

// AwaitSessions blocks until the service has accepted at least n ingest
// sessions and none is still running, or until timeout elapses (it reports
// which). Fleet drivers call it between "all sensors have closed their
// connections" and Drain: a freshly-closed connection can still be sitting
// un-accepted in the listener's backlog, and closing the listener at that
// moment would silently drop it along with its data. n must count only
// peers that actually connected — a driver whose sensor died before dialing
// must not wait for a session that will never arrive. Query sessions are
// counted separately and never hold this up.
func (s *Service) AwaitSessions(n int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		st := s.Stats()
		if st.Sessions >= n && st.Active == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Drain stops accepting and waits for in-flight sessions to finish reading
// whatever their peers already sent. Call after all sensors have closed
// their connections to get a complete store (AwaitSessions first if the
// peers only just closed).
func (s *Service) Drain() {
	s.mu.Lock()
	lns := s.lns
	s.lns = nil
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.wg.Wait()
}

// Close force-stops the service: every listener and live connection is
// closed, then all session goroutines are awaited.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return errors.New("server: already closed")
	}
	s.mu.Lock()
	lns := s.lns
	s.lns = nil
	for conn := range s.closers {
		conn.Close()
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
