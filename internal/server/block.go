package server

import (
	"symmeter/internal/symbolic"
)

// The block store keeps every meter's stream packed at rest: a chain of
// fixed-capacity blocks, each holding up to BlockCap symbols in the codec's
// headerless bit layout plus a small summary (count, per-symbol histogram,
// min/max/sum of reconstruction values under the block's table epoch). Timestamps are not stored per point — a block records its first
// timestamp and the stride between points, and seals itself whenever an
// arriving point breaks the arithmetic progression (a gap in the stream) or
// the meter's lookup table changes (a new epoch). At the paper's headline
// k=16 this is ~0.5 payload bytes per point instead of the 24-byte
// ReconPoint the store used to materialize, and the summaries let the query
// engine answer aggregates over fully-covered blocks in O(1) without
// touching the payload at all.

const (
	// BlockCap is the symbol capacity of one packed block.
	BlockCap = 512
	// maxHistLevel bounds the per-block histogram: blocks at level ≤ 8
	// (k ≤ 256) carry one. At levels 7–8 the lanes cost more than the
	// payload they summarize (1 KiB vs 512 B at k=256) — a deliberate
	// memory-for-query-speed trade that keeps full-block Histogram O(k);
	// past k=256 the trade stops paying, so finer alphabets keep only
	// count/sum/min/max and answer histogram queries by kernel scan.
	maxHistLevel = 8
)

// blockBytes is the payload size of a full block at the given level.
func blockBytes(level int) int { return (BlockCap*level + 7) / 8 }

// block is one packed segment of a meter's stream. Blocks are append-only:
// once a successor block exists, a block is sealed and never mutated again,
// which is what lets snapshots and queries read sealed blocks outside the
// shard lock.
type block struct {
	epoch  uint32 // index into the meter's table history
	level  uint8  // symbol bits (copied from the epoch's table)
	n      uint32 // symbols stored
	firstT int64  // timestamp of the first symbol
	stride int64  // timestamp step; 0 until the block holds two points
	sum    float64
	// minV and maxV are reconstruction-value extremes, tracked in the value
	// domain at ingest so queries need no assumption about how the table
	// maps symbol indices to values.
	minV    float64
	maxV    float64
	payload []byte   // headerless packed symbols, blockBytes(level) long
	hist    []uint32 // per-symbol counts when level ≤ maxHistLevel, else nil
	// payloadFromArena / histFromArena record that the slice was carved from
	// the meter's reserve arena: the slab outlives the block, so seal-time
	// trimming would free nothing (the arena is accounted whole instead).
	payloadFromArena bool
	histFromArena    bool
	// spilled records that the payload now aliases a durable segment file
	// (an mmapped region handed back by the store's SealSink): the bytes are
	// no longer heap-resident, so MemoryFootprint excludes them.
	spilled bool
}

// lastT returns the timestamp of the block's last point (n must be ≥ 1).
func (b *block) lastT() int64 { return b.firstT + int64(b.n-1)*b.stride }

// strideFor returns the stride a second point at time t would fix for a
// block starting at firstT, rejecting anything whose arithmetic progression
// could overflow int64 within BlockCap points. Timestamps are
// client-controlled wire input: without this guard an adversarial stride
// wraps lastT negative and queries diverge from Snapshot or panic on
// wrapped offsets. Rejected points simply open their own block.
//
// Both the block's span ((BlockCap-1)·stride) and its end (firstT + span)
// must fit in int64 — queries subtract firstT from in-range timestamps, so
// every offset up to the span must be representable. Negative timestamps
// (pre-epoch streams) are ordinary input and pass these checks unharmed.
func strideFor(firstT, t int64) (int64, bool) {
	if t <= firstT {
		return 0, false
	}
	if firstT < 0 && t > maxInt64+firstT { // t-firstT would overflow
		return 0, false
	}
	stride := t - firstT
	if stride > maxInt64/int64(BlockCap-1) { // span would overflow
		return 0, false
	}
	if span := stride * int64(BlockCap-1); firstT > maxInt64-span { // lastT would overflow
		return 0, false
	}
	return stride, true
}

const maxInt64 = 1<<63 - 1

// accepts reports whether a point at time t under the given epoch can extend
// the block's arithmetic timestamp progression.
func (b *block) accepts(t int64, epoch uint32) bool {
	if b.epoch != epoch || b.n >= BlockCap {
		return false
	}
	switch b.n {
	case 0:
		return true
	case 1:
		// The second point fixes the stride; it must move forward and keep
		// the whole block's progression inside int64.
		_, ok := strideFor(b.firstT, t)
		return ok
	default:
		return t == b.firstT+int64(b.n)*b.stride
	}
}

// seal trims a block that is about to get a successor down to what it
// actually holds: the payload is copy-shrunk to its used bytes and a
// histogram wider than the block's point count is dropped (queries kernel-
// scan such blocks anyway). Timestamps are client-controlled wire input, so
// a stream that keeps breaking the stride seals near-empty blocks — without
// trimming, each would pin a full BlockCap payload plus k histogram lanes,
// a memory-amplification vector. Arena-carved slices are left alone: their
// slab outlives the block either way, so trimming would only add an
// allocation (the arena's size is bounded by Reserve and accounted whole).
// Full blocks (the regular-stream case) are untouched, keeping the
// zero-alloc Append contract. Per-block metadata (~100 bytes) still bounds
// the degenerate worst case; policing meters that produce pathological
// block counts is a separate concern.
func (b *block) seal() {
	if !b.payloadFromArena {
		if used := (int(b.n)*int(b.level) + 7) / 8; used < len(b.payload) {
			b.payload = append(make([]byte, 0, used), b.payload[:used]...)
		}
	}
	if !b.histFromArena && b.hist != nil && int(b.n) < len(b.hist) {
		b.hist = nil
	}
}

// push appends one point. The caller must have checked accepts.
func (b *block) push(t int64, idx uint32, v float64) {
	switch b.n {
	case 0:
		b.firstT = t
		b.minV = v
		b.maxV = v
	case 1:
		b.stride = t - b.firstT
	}
	symbolic.PackSymbolAt(b.payload, int(b.level), int(b.n), idx)
	if b.hist != nil {
		b.hist[idx]++
	}
	b.sum += v
	if v < b.minV {
		b.minV = v
	}
	if v > b.maxV {
		b.maxV = v
	}
	b.n++
}

// BlockView is a read-only view of one packed block plus its epoch table's
// lookup data. Views of sealed blocks (everything CollectRange returns in
// its slice) are immutable and may be retained for the store's lifetime.
// The live tail's view — delivered only through VisitRange's callback or
// CollectRange's tail callback, under the shard read lock — must not be
// retained past the callback: its Payload and Hist keep growing after the
// lock is released.
type BlockView struct {
	// FirstT and Stride define the block's timestamps: point i lives at
	// FirstT + i·Stride. Stride is 0 while the block holds a single point.
	FirstT int64
	Stride int64
	// N is the number of symbols in the block.
	N int
	// Level is the symbol width in bits; the alphabet has 1<<Level symbols.
	Level int
	// Epoch is the index of the block's table in the meter's table history.
	Epoch int
	// Payload is the headerless packed symbol data (N·Level bits used).
	Payload []byte
	// Hist is the per-symbol count summary, nil when Level > 8.
	Hist []uint32
	// Sum is the sum of reconstruction values over the whole block.
	Sum float64
	// MinV and MaxV are the smallest and largest reconstruction value in
	// the block, tracked in the value domain at ingest — no assumption
	// about the symbol→value mapping is needed to use them.
	MinV, MaxV float64
	// Values maps symbol index to reconstruction value under the epoch's
	// table.
	Values []float64
}

// LastT returns the timestamp of the view's last point.
func (v BlockView) LastT() int64 { return v.FirstT + int64(v.N-1)*v.Stride }
