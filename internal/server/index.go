package server

import (
	"math"
	"sort"

	"symmeter/internal/symbolic"
)

// Lock-free read path over sealed data.
//
// A meter's block chain has exactly one mutable element: the tail. Everything
// before it is sealed — immutable until process exit. This file exploits that
// with an RCU-style publication protocol: each meterEntry carries an
// atomically-swapped *sealedIndex describing its sealed prefix, republished
// by the writer at the single moment a block seals (gains a successor). The
// index also carries a sparse time directory — the firstT of every sealed
// block — so a range query binary-searches to the blocks it covers instead
// of walking the whole chain.
//
// Readers never take the shard lock for sealed data. They briefly take it
// only to fold the live tail block (bounded: one block, ≤ BlockCap symbols),
// and only when the queried range can actually reach the tail — which a
// published atomic tailFirstT answers without locking. Writers pay one
// pointer swap per ~BlockCap points; readers pay two atomic loads.
//
// Safety rests on three invariants, all maintained under the shard's write
// lock (writers to one meter are serialized by it):
//
//  1. Sealed blocks are never mutated after the index that contains them is
//     published (seal-time trimming happens before the swap).
//  2. The slices inside a sealedIndex (blocks, firstTs, tables) are
//     append-only derivations: a newer index may share their backing arrays,
//     but only cells beyond every published length are ever written, and
//     readers index strictly below their own header's length.
//  3. tailFirstT is stored before the tail's first point is pushed, and the
//     index swap happens before tailFirstT moves to the next tail — so the
//     double-load in Meter.VisitRange (index, tailFirstT, index again) either
//     proves a consistent generation or falls back to the locked path.

// sealedIndex is the published, immutable view of one meter's sealed chain.
// A nil tables/blocks/firstTs (the shared emptyIndex) means nothing has
// sealed yet.
type sealedIndex struct {
	// tables is the meter's table history as of publication; every sealed
	// block's epoch indexes into it.
	tables []*symbolic.Table
	// blocks is the sealed prefix of the chain, in append order.
	blocks []block
	// firstTs is the sparse time directory: firstTs[i] == blocks[i].firstT.
	// Kept as a dedicated array so the binary search touches 8 bytes per
	// probe instead of a whole block struct.
	firstTs []int64
	// total is the symbol count across all sealed blocks.
	total int
	// ordered reports that the sealed blocks are time-disjoint and ascending
	// (prev.lastT ≤ next.firstT for every adjacent pair), which is what makes
	// the directory binary-searchable. Streams that replay old timestamps
	// clear it; queries then fall back to a full chain walk with per-block
	// overlap checks — still correct, just unpruned.
	ordered bool
}

// emptyIndex is the published state of a meter with no sealed blocks yet.
// Shared: it is immutable.
var emptyIndex = sealedIndex{ordered: true}

// rangeBlocks returns the index range [lo, hi) of sealed blocks whose time
// span may intersect [t0, t1). O(log B) when the chain is time-ordered,
// [0, len) otherwise. Callers still per-block overlap-check: a block in
// range spans the query interval but may hold no point exactly inside it.
func (ix *sealedIndex) rangeBlocks(t0, t1 int64) (lo, hi int) {
	n := len(ix.blocks)
	if n == 0 || t0 >= t1 {
		return 0, 0
	}
	if !ix.ordered {
		return 0, n
	}
	// First block whose last point is at or past t0: earlier blocks end
	// before the range starts. lastT is monotone when ordered.
	lo = sort.Search(n, func(i int) bool { return ix.blocks[i].lastT() >= t0 })
	// First block starting at or past t1: it and everything after begin
	// outside the half-open range.
	hi = lo + sort.Search(n-lo, func(i int) bool { return ix.firstTs[lo+i] >= t1 })
	return lo, hi
}

// visitRange invokes fn for every sealed block in the pruned [lo, hi) range,
// building views against the index's own table history (not the live one —
// the live one may gain tables concurrently, and these are the tables the
// sealed epochs actually index).
func (ix *sealedIndex) visitRange(t0, t1 int64, fn func(BlockView)) {
	lo, hi := ix.rangeBlocks(t0, t1)
	for i := lo; i < hi; i++ {
		fn(viewOf(&ix.blocks[i], ix.tables))
	}
}

// appendRange appends a view of every sealed block in the pruned [lo, hi)
// range to dst, against the index's own table history.
func (ix *sealedIndex) appendRange(t0, t1 int64, dst []BlockView) []BlockView {
	lo, hi := ix.rangeBlocks(t0, t1)
	for i := lo; i < hi; i++ {
		dst = append(dst, viewOf(&ix.blocks[i], ix.tables))
	}
	return dst
}

// noTail is the tailFirstT sentinel while a meter has no live tail (or the
// tail has no points yet): no timestamp can be ≥ it under a half-open range,
// so every query may skip the tail.
const noTail = math.MaxInt64

// Meter is a lock-free handle to one meter's published state, obtained from
// Store.Meter or Store.ShardMeters without taking any shard lock. The handle
// stays valid for the store's lifetime (meters are never removed).
type Meter struct {
	e  *meterEntry
	sh *shard
}

// ID returns the meter's identifier.
func (m Meter) ID() uint64 { return m.e.id }

// SealedBlocks returns the number of published sealed blocks.
func (m Meter) SealedBlocks() int { return len(m.e.idx.Load().blocks) }

// SealedSymbols returns the number of points in published sealed blocks.
func (m Meter) SealedSymbols() int { return m.e.idx.Load().total }

// TotalSymbols returns the meter's stored point count, tail included,
// without locking.
func (m Meter) TotalSymbols() int { return int(m.e.total.Load()) }

// TimeOrdered reports whether the sealed chain is time-ordered, i.e. whether
// range queries can prune via the time directory.
func (m Meter) TimeOrdered() bool { return m.e.idx.Load().ordered }

// LiveTailStart returns the first timestamp of the live (unsealed) tail
// block; ok is false when the meter has no live tail. Queries ending at or
// before this bound never touch a lock.
func (m Meter) LiveTailStart() (int64, bool) {
	tf := m.e.tailFirstT.Load()
	return tf, tf != noTail
}

// VisitRange invokes fn for every block that may hold points in [t0, t1):
// the directory-pruned sealed blocks, read lock-free from the published
// index, plus the live tail — folded under a brief shard read lock, and only
// when the range can actually reach it. Callers must still per-block filter
// with the view's timestamps (pruning is by block span, not by point).
// Visit order is unspecified; fn must be order-insensitive and must not
// retain the view's slices.
func (m Meter) VisitRange(t0, t1 int64, fn func(BlockView)) {
	if t0 >= t1 {
		return
	}
	e := m.e
	idx := e.idx.Load()
	if t1 <= e.tailFirstT.Load() && e.idx.Load() == idx {
		// The second load proves no seal was published between reading the
		// index and reading the tail bound, so they describe one generation:
		// every point of that generation's tail is ≥ tailFirstT ≥ t1, outside
		// the half-open range. Sealed data alone answers the query — no lock.
		idx.visitRange(t0, t1, fn)
		return
	}
	// The range may reach the live tail (or a seal raced us). Take the shard
	// read lock briefly: under it the published index is stable, the tail
	// cannot grow, and folding the tail is bounded by one block.
	m.sh.queryLocks.Add(1)
	m.sh.mu.RLock()
	idx = e.idx.Load()
	if tail := e.tail(); tail != nil && tail.n > 0 && tail.firstT < t1 && tail.lastT() >= t0 {
		fn(e.view(tail))
	}
	m.sh.mu.RUnlock()
	idx.visitRange(t0, t1, fn)
}

// CollectRange is the batch counterpart of VisitRange, built for callers
// that hand whole chains to batch kernels: views of every sealed block that
// may hold points in [t0, t1) are appended to dst and returned, while the
// live tail — whose payload keeps mutating and must be folded under the
// shard read lock — is delivered through the tail callback (invoked at most
// once, and only when the range can reach it).
//
// The returned sealed views MAY be retained and read after CollectRange
// returns, for as long as the store lives: sealed blocks are immutable once
// their index is published. The tail callback's view must not outlive the
// callback, exactly as with VisitRange. Order is unspecified; dst is
// extended in sealed-chain order after the tail callback fires.
func (m Meter) CollectRange(t0, t1 int64, dst []BlockView, tail func(BlockView)) []BlockView {
	if t0 >= t1 {
		return dst
	}
	e := m.e
	idx := e.idx.Load()
	if t1 <= e.tailFirstT.Load() && e.idx.Load() == idx {
		// Same double-load proof as VisitRange: the range cannot reach this
		// generation's tail, sealed data answers it lock-free.
		return idx.appendRange(t0, t1, dst)
	}
	m.sh.queryLocks.Add(1)
	m.sh.mu.RLock()
	idx = e.idx.Load()
	if tl := e.tail(); tl != nil && tl.n > 0 && tl.firstT < t1 && tl.lastT() >= t0 {
		tail(e.view(tl))
	}
	m.sh.mu.RUnlock()
	return idx.appendRange(t0, t1, dst)
}

// publish swaps in a new sealed index after e's former tail (now
// e.blocks[len(idx.blocks)]) was sealed. Caller holds the shard write lock.
// Allocation-free when Reserve pre-sized the index arena and directory.
func (e *meterEntry) publish() {
	old := e.idx.Load()
	n := len(old.blocks)
	b := &e.blocks[n]
	e.dirFirst = append(e.dirFirst, b.firstT)
	ni := e.nextIndexSlot()
	*ni = sealedIndex{
		tables:  e.tables,
		blocks:  e.blocks[:n+1],
		firstTs: e.dirFirst[:n+1],
		total:   old.total + int(b.n),
		ordered: old.ordered && (n == 0 || e.blocks[n-1].lastT() <= b.firstT),
	}
	e.idx.Store(ni)
}

// nextIndexSlot carves a sealedIndex struct from the reserve arena, falling
// back to the allocator for unreserved meters.
func (e *meterEntry) nextIndexSlot() *sealedIndex {
	if len(e.idxArena) > 0 {
		ni := &e.idxArena[0]
		e.idxArena = e.idxArena[1:]
		return ni
	}
	return new(sealedIndex)
}

// viewOf builds a read-only visitor view of one block under the given table
// history (the published index's for sealed blocks, the live one for the
// tail).
func viewOf(b *block, tables []*symbolic.Table) BlockView {
	table := tables[b.epoch]
	return BlockView{
		FirstT:  b.firstT,
		Stride:  b.stride,
		N:       int(b.n),
		Level:   int(b.level),
		Epoch:   int(b.epoch),
		Payload: b.payload,
		Hist:    b.hist,
		Sum:     b.sum,
		MinV:    b.minV,
		MaxV:    b.maxV,
		Values:  table.ReconstructionValues(),
	}
}

// shardDir is a shard's published meter directory, swapped copy-on-write
// under the shard lock whenever a meter registers (rare: once per meter
// lifetime), so lookups and fleet iteration never lock. The map is fully
// copied per registration — O(meters in this shard), which stays small
// because shard count scales with fleet size; the list shares its backing
// array append-only (entry pointers are stable, cells below any published
// length are never rewritten).
type shardDir struct {
	meters map[uint64]*meterEntry
	list   []Meter
}

var emptyShardDir = shardDir{}
