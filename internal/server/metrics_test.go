package server

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"symmeter/internal/metrics"
)

// TestStatsRegistryBacked proves the Stats snapshot and the /metrics
// exposition read the same counters: after real fleet traffic, every Stats
// field must appear in the registry scrape with the identical value.
func TestStatsRegistryBacked(t *testing.T) {
	reg := metrics.New()
	svc := New(Config{Shards: 4, Metrics: reg})
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	rep, err := RunFleet(addr.String(), FleetConfig{
		Meters: 3, Days: 1, SecondsPerDay: 600, Window: 60, Seed: 1, DisableGaps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !svc.AwaitSessions(int64(len(rep.Meters)), 10*time.Second) {
		t.Fatal("sessions did not settle")
	}

	if svc.Metrics() != reg {
		t.Fatal("Metrics() must return the configured registry")
	}
	st := svc.Stats()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for name, v := range map[string]int64{
		"symmeter_ingest_sessions_total":      st.Sessions,
		"symmeter_ingest_sessions_active":     st.Active,
		"symmeter_ingest_symbols_total":       st.Symbols,
		"symmeter_net_bytes_in_total":         st.BytesIn,
		"symmeter_query_sessions_total":       st.QuerySessions,
		"symmeter_accept_retries_total":       st.AcceptRetries,
		"symmeter_drain_refusals_total":       st.DrainRefusals,
		"symmeter_write_deadline_reaps_total": st.WriteDeadlineReaps,
	} {
		want := fmt.Sprintf("%s %d\n", name, v)
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q (Stats and registry disagree)", strings.TrimSpace(want))
		}
	}
	if st.Sessions != 3 || st.Symbols == 0 || st.BytesIn == 0 {
		t.Fatalf("implausible stats after fleet run: %+v", st)
	}
	// Batch commits were timed: count equals committed batches (>0), and the
	// summary carries P² quantile samples for them.
	if !strings.Contains(out, `symmeter_ingest_batch_seconds{quantile="0.95"}`) {
		t.Error("scrape missing the ingest batch p95 series")
	}
	if strings.Contains(out, "symmeter_ingest_batch_seconds_count 0\n") {
		t.Error("ingest batch latency recorder saw no samples")
	}
	// Per-shard admission gauges exist for every shard and read 0 at rest.
	for shard := 0; shard < 4; shard++ {
		want := fmt.Sprintf("symmeter_ingest_inflight_bytes{shard=\"%d\"} 0\n", shard)
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", strings.TrimSpace(want))
		}
	}
}

// TestPrivateRegistryDefault: a Service without Config.Metrics still records
// (into its own registry), so hot paths never branch on telemetry.
func TestPrivateRegistryDefault(t *testing.T) {
	svc := New(Config{Shards: 2})
	if svc.Metrics() == nil {
		t.Fatal("nil Config.Metrics must yield a private registry")
	}
	var buf bytes.Buffer
	if err := svc.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "symmeter_ingest_sessions_total 0") {
		t.Fatal("private registry missing the service families")
	}
}
